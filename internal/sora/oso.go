package sora

import "fmt"

// OSO is one Operational Safety Objective from SORA v2.0 Table 6.
type OSO struct {
	Number int
	Text   string
	// PerSAIL is the required robustness at SAIL I..VI; index 0 = SAIL I.
	// A nil-equivalent None means the OSO is optional at that SAIL.
	PerSAIL [6]Robustness
}

// OSORequirement is an OSO with the robustness demanded for one SAIL.
type OSORequirement struct {
	OSO      OSO
	Required Robustness
}

// osoTable transcribes SORA v2.0 Table 6 (O→None, L→Low, M→Medium, H→High).
var osoTable = []OSO{
	{1, "Ensure the operator is competent and/or proven", [6]Robustness{None, Low, Medium, High, High, High}},
	{2, "UAS manufactured by competent and/or proven entity", [6]Robustness{None, None, Low, Medium, High, High}},
	{3, "UAS maintained by competent and/or proven entity", [6]Robustness{Low, Low, Medium, Medium, High, High}},
	{4, "UAS developed to authority recognized design standards", [6]Robustness{None, None, None, Low, Medium, High}},
	{5, "UAS is designed considering system safety and reliability", [6]Robustness{None, None, Low, Medium, High, High}},
	{6, "C3 link performance is appropriate for the operation", [6]Robustness{None, Low, Low, Medium, High, High}},
	{7, "Inspection of the UAS to ensure consistency with the ConOps", [6]Robustness{Low, Low, Medium, Medium, High, High}},
	{8, "Operational procedures are defined, validated and adhered to (technical issue)", [6]Robustness{Low, Medium, High, High, High, High}},
	{9, "Remote crew trained, current and able to control abnormal situations (technical issue)", [6]Robustness{Low, Low, Medium, Medium, High, High}},
	{10, "Safe recovery from a technical issue", [6]Robustness{Low, Low, Medium, Medium, High, High}},
	{11, "Procedures in place to handle deterioration of external systems", [6]Robustness{Low, Medium, High, High, High, High}},
	{12, "UAS designed to manage deterioration of external systems", [6]Robustness{Low, Low, Medium, Medium, High, High}},
	{13, "External services supporting the UAS operation are adequate", [6]Robustness{Low, Low, Medium, High, High, High}},
	{14, "Operational procedures are defined, validated and adhered to (human error)", [6]Robustness{Low, Medium, High, High, High, High}},
	{15, "Remote crew trained, current and able to control abnormal situations (human error)", [6]Robustness{Low, Low, Medium, Medium, High, High}},
	{16, "Multi-crew coordination", [6]Robustness{Low, Low, Medium, Medium, High, High}},
	{17, "Remote crew is fit to operate", [6]Robustness{Low, Low, Medium, Medium, High, High}},
	{18, "Automatic protection of the flight envelope from human errors", [6]Robustness{None, None, Low, Medium, High, High}},
	{19, "Safe recovery from human error", [6]Robustness{None, None, Low, Medium, Medium, High}},
	{20, "A human-factors evaluation has been performed and the HMI found appropriate", [6]Robustness{None, Low, Low, Medium, Medium, High}},
	{21, "Operational procedures are defined, validated and adhered to (adverse conditions)", [6]Robustness{Low, Medium, High, High, High, High}},
	{22, "The remote crew is trained to identify critical environmental conditions and avoid them", [6]Robustness{Low, Low, Medium, Medium, Medium, High}},
	{23, "Environmental conditions for safe operation are defined, measurable and adhered to", [6]Robustness{Low, Low, Medium, Medium, High, High}},
	{24, "UAS is designed and qualified for adverse environmental conditions", [6]Robustness{None, None, Medium, High, High, High}},
}

// OSOList returns the 24 SORA operational safety objectives.
func OSOList() []OSO {
	out := make([]OSO, len(osoTable))
	copy(out, osoTable)
	return out
}

// OSOsForSAIL returns every OSO with the robustness required at the SAIL.
func OSOsForSAIL(s SAIL) []OSORequirement {
	if s < SAILI || s > SAILVI {
		panic(fmt.Sprintf("sora: invalid %v", s))
	}
	out := make([]OSORequirement, 0, len(osoTable))
	for _, o := range osoTable {
		out = append(out, OSORequirement{OSO: o, Required: o.PerSAIL[s-1]})
	}
	return out
}

// OSOBurden summarizes how demanding a SAIL is: the number of OSOs required
// at each robustness level.
func OSOBurden(s SAIL) map[Robustness]int {
	burden := map[Robustness]int{}
	for _, req := range OSOsForSAIL(s) {
		burden[req.Required]++
	}
	return burden
}
