package sora

import (
	"fmt"
	"strings"
)

// Report renders a human-readable assessment in the structure of the
// paper's Section III-D walkthrough.
func (a Assessment) Report(opName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SORA assessment — %s\n", opName)
	fmt.Fprintf(&b, "  intrinsic GRC : %d\n", a.IntrinsicGRC)
	fmt.Fprintf(&b, "  final GRC     : %d\n", a.FinalGRC)
	fmt.Fprintf(&b, "  initial ARC   : %s\n", a.InitialARC)
	fmt.Fprintf(&b, "  residual ARC  : %s\n", a.ResidualARC)
	if a.Err != nil {
		fmt.Fprintf(&b, "  SAIL          : not assignable (%v)\n", a.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  SAIL          : %s\n", a.SAIL)
	burden := map[Robustness]int{}
	for _, req := range a.OSOs {
		burden[req.Required]++
	}
	fmt.Fprintf(&b, "  OSO burden    : %d High, %d Medium, %d Low, %d Optional (of %d)\n",
		burden[High], burden[Medium], burden[Low], burden[None], len(a.OSOs))
	return b.String()
}

// CriteriaTable renders Table III or IV side by side with the classical M1
// criteria, as the paper presents them.
func CriteriaTable(kind CriterionKind) string {
	var b strings.Builder
	var elCriteria []Criterion
	if kind == Integrity {
		fmt.Fprintln(&b, "Level of Integrity Assessment Criteria for Emergency Landing (Table III)")
		elCriteria = ELIntegrityCriteria()
	} else {
		fmt.Fprintln(&b, "Level of Assurance Assessment Criteria for Emergency Landing (Table IV)")
		elCriteria = ELAssuranceCriteria()
	}
	for _, level := range []Robustness{Low, Medium, High} {
		fmt.Fprintf(&b, "%s:\n", level)
		for _, c := range elCriteria {
			if c.Level == level {
				fmt.Fprintf(&b, "  [%s] %s\n", c.ID, c.Text)
			}
		}
	}
	return b.String()
}
