package sora

import "fmt"

// This file encodes the paper's contribution to the SORA: the integrity
// criteria (Table III) and assurance criteria (Table IV) under which an
// Emergency Landing function can claim active-M1 mitigation credit, plus an
// evidence-based evaluator that determines the integrity/assurance levels an
// implementation achieves.

// CriterionKind separates integrity criteria from assurance criteria.
type CriterionKind int

// Criterion kinds.
const (
	Integrity CriterionKind = iota
	Assurance
)

// String names the kind.
func (k CriterionKind) String() string {
	if k == Integrity {
		return "integrity"
	}
	return "assurance"
}

// Criterion is one requirement of Table III or Table IV.
type Criterion struct {
	// ID is the paper-style identifier, e.g. "EL-I-L1" (integrity, low,
	// first item).
	ID string
	// Kind is integrity or assurance.
	Kind CriterionKind
	// Level is the robustness level the criterion contributes to.
	Level Robustness
	// Text is the criterion as proposed by the paper.
	Text string
}

// ELIntegrityCriteria returns the paper's Table III ("proposed new criteria
// for EL (active-M1)").
func ELIntegrityCriteria() []Criterion {
	return []Criterion{
		{ID: "EL-I-L1", Kind: Integrity, Level: Low,
			Text: "The selected landing zones do not contain high risk areas (as defined in the severity analysis)"},
		{ID: "EL-I-L2", Kind: Integrity, Level: Low,
			Text: "The method is effective under the conditions of the operation (specific city, flight altitude, time of the day, season)"},
		{ID: "EL-I-M1", Kind: Integrity, Level: Medium,
			Text: "Landing zone selection takes into account improbable single malfunctions or failures, meteorological conditions (e.g. wind), UAV latencies, behavior and performance when activating the measure"},
		{ID: "EL-I-H1", Kind: Integrity, Level: High,
			Text: "Same as Medium (validated against adverse conditions and failures in the landing zone definition)"},
	}
}

// ELAssuranceCriteria returns the paper's Table IV.
func ELAssuranceCriteria() []Criterion {
	return []Criterion{
		{ID: "EL-A-L1", Kind: Assurance, Level: Low,
			Text: "The applicant declares that the required level of integrity is achieved"},
		{ID: "EL-A-M1", Kind: Assurance, Level: Medium,
			Text: "Supporting evidence to claim the required level of integrity (testing on public datasets, testing in context)"},
		{ID: "EL-A-M2", Kind: Assurance, Level: Medium,
			Text: "The video data used for in-context testing are recorded and verified by applicable authority"},
		{ID: "EL-A-M3", Kind: Assurance, Level: Medium,
			Text: "Safety monitoring techniques are in place to ensure proper behavior of any function relying on complex computer vision or machine learning"},
		{ID: "EL-A-H1", Kind: Assurance, Level: High,
			Text: "The claimed level of integrity is validated by a competent third party"},
		{ID: "EL-A-H2", Kind: Assurance, Level: High,
			Text: "The method was extensively validated under a wide range of external conditions (lighting, weather)"},
	}
}

// M1Criteria returns the existing SORA Annex B criteria for classical M1,
// kept for the side-by-side comparison the paper's tables draw.
func M1Criteria() []Criterion {
	return []Criterion{
		{ID: "M1-I-L1", Kind: Integrity, Level: Low,
			Text: "A ground risk buffer with at least a 1-to-1 rule"},
		{ID: "M1-I-L2", Kind: Integrity, Level: Low,
			Text: "The applicant evaluates the area of operations by on-site inspections to justify lowering the density of people at risk"},
		{ID: "M1-I-M1", Kind: Integrity, Level: Medium,
			Text: "Ground risk buffer accounts for improbable single malfunctions, meteorological conditions, UAV latencies, behavior and performance; authoritative density data is used"},
		{ID: "M1-A-L1", Kind: Assurance, Level: Low,
			Text: "The applicant declares that the required level of integrity is achieved"},
		{ID: "M1-A-M1", Kind: Assurance, Level: Medium,
			Text: "Supporting evidence (testing, analysis, simulation, inspection, design review, experience); average density map from static sourcing verified by authority"},
		{ID: "M1-A-H1", Kind: Assurance, Level: High,
			Text: "Claimed level of integrity validated by a competent third party; near-real-time density map from dynamic sourcing"},
	}
}

// Evidence records which EL criteria an implementation satisfies, keyed by
// criterion ID. Missing entries count as unsatisfied.
type Evidence map[string]bool

// EvaluateEL determines the integrity and assurance levels achieved by an EL
// implementation from its evidence, following the cumulative reading of
// Tables III/IV: a level is achieved only when all its criteria and all
// criteria of lower levels hold.
func EvaluateEL(ev Evidence) (integrity, assurance Robustness) {
	integrity = achievedLevel(ELIntegrityCriteria(), ev)
	assurance = achievedLevel(ELAssuranceCriteria(), ev)
	return integrity, assurance
}

func achievedLevel(criteria []Criterion, ev Evidence) Robustness {
	achieved := None
	for _, level := range []Robustness{Low, Medium, High} {
		ok := true
		for _, c := range criteria {
			if c.Level == level && !ev[c.ID] {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		achieved = level
	}
	return achieved
}

// ELMitigation builds the active-M1 mitigation claim from evidence.
func ELMitigation(ev Evidence) Mitigation {
	integ, assur := EvaluateEL(ev)
	return Mitigation{Type: ActiveM1, Integrity: integ, Assurance: assur}
}

// CriterionByID returns the criterion with the given ID from both tables.
func CriterionByID(id string) (Criterion, error) {
	for _, c := range append(ELIntegrityCriteria(), ELAssuranceCriteria()...) {
		if c.ID == id {
			return c, nil
		}
	}
	return Criterion{}, fmt.Errorf("sora: unknown EL criterion %q", id)
}
