package sora

import "fmt"

// MitigationType is one of the SORA ground-risk mitigation families, plus
// the paper's proposed active-M1 extension.
type MitigationType int

// Mitigation types.
const (
	// M1 reduces the number of people at risk via strategic (pre-flight)
	// ground buffers.
	M1 MitigationType = iota
	// M2 reduces the effect of ground impact (e.g. parachute).
	M2
	// M3 is the emergency response plan.
	M3
	// ActiveM1 is the paper's proposal: Emergency Landing that actively
	// identifies a safe landing zone from live data, claiming M1-type
	// credit under the Table III/IV criteria.
	ActiveM1
)

// String names the mitigation type.
func (m MitigationType) String() string {
	switch m {
	case M1:
		return "M1 strategic mitigation"
	case M2:
		return "M2 reduction of ground impact effects"
	case M3:
		return "M3 emergency response plan"
	case ActiveM1:
		return "active-M1 emergency landing"
	default:
		return fmt.Sprintf("mitigation(%d)", int(m))
	}
}

// Mitigation is one claimed mitigation with its demonstrated robustness.
type Mitigation struct {
	Type      MitigationType
	Integrity Robustness
	Assurance Robustness
}

// Robustness returns min(integrity, assurance), the SORA combination rule.
func (m Mitigation) Robustness() Robustness {
	return CombineRobustness(m.Integrity, m.Assurance)
}

// grcCredit returns the GRC correction of a mitigation at a robustness
// level, per SORA v2.0 Table 3. Positive values increase the GRC (the M3
// penalty when no adequate ERP exists).
func grcCredit(t MitigationType, r Robustness) int {
	switch t {
	case M1, ActiveM1: // the paper proposes EL claims M1-type credit
		switch r {
		case Low:
			return -1
		case Medium:
			return -2
		case High:
			return -4
		}
		return 0
	case M2:
		switch r {
		case Medium:
			return -1
		case High:
			return -2
		}
		return 0
	case M3:
		switch r {
		case None, Low:
			return 1
		case Medium:
			return 0
		case High:
			return -1
		}
	}
	return 0
}

// FinalGRC applies the mitigations to the intrinsic GRC per SORA v2.0. An
// absent M3 costs +1 (the table's None/Low row), which reproduces the
// paper's "final GRC is at least 6 (7 if no M3 with medium robustness is
// proposed)".
func FinalGRC(intrinsic int, mitigations []Mitigation) int {
	g := intrinsic
	hasM3 := false
	for _, m := range mitigations {
		r := m.Robustness()
		g += grcCredit(m.Type, r)
		if m.Type == M3 {
			hasM3 = true
		}
	}
	if !hasM3 {
		g += grcCredit(M3, None)
	}
	if g < 1 {
		g = 1
	}
	return g
}

// Operation is a complete SORA input: the UAV, its mission profile and the
// claimed mitigations.
type Operation struct {
	Name string

	SpanM          float64
	KineticEnergyJ float64
	Scenario       OperationalScenario
	Airspace       Airspace

	Mitigations []Mitigation
}

// Assessment is the outcome of running the SORA on an operation.
type Assessment struct {
	IntrinsicGRC int
	FinalGRC     int
	InitialARC   ARC
	ResidualARC  ARC
	SAIL         SAIL
	// Err is non-nil when the operation falls outside the specific
	// category (final GRC above 7).
	Err error
	// OSOs lists the applicable operational safety objectives with their
	// required robustness at the assessed SAIL.
	OSOs []OSORequirement
}

// Assess runs the full SORA chain: intrinsic GRC → mitigated GRC → ARC →
// SAIL → OSO requirements.
func Assess(op Operation) Assessment {
	out := Assessment{
		IntrinsicGRC: IntrinsicGRC(op.Scenario, op.SpanM, op.KineticEnergyJ),
		InitialARC:   InitialARC(op.Airspace),
	}
	out.FinalGRC = FinalGRC(out.IntrinsicGRC, op.Mitigations)
	// No tactical air-risk mitigation modeled: the paper keeps ARC-c via a
	// segregated corridor assumption.
	out.ResidualARC = out.InitialARC
	sail, err := sailFromGRCARC(out.FinalGRC, out.ResidualARC)
	out.SAIL, out.Err = sail, err
	if err == nil {
		out.OSOs = OSOsForSAIL(sail)
	}
	return out
}
