package sora

import (
	"strings"
	"testing"
	"testing/quick"
)

// mediDelivery returns the paper's case study parameters (Section III-A).
func mediDelivery() Operation {
	return Operation{
		Name:           "MEDI DELIVERY",
		SpanM:          1.0,
		KineticEnergyJ: 8230,
		Scenario:       BVLOSPopulated,
		Airspace:       Airspace{MaxHeightFt: 394, Urban: true}, // 120 m ≈ 394 ft
	}
}

func TestPaperSectionIIIDNumbers(t *testing.T) {
	// Intrinsic GRC 6, ARC-c, SAIL V with M3@medium; SAIL VI without M3.
	op := mediDelivery()
	op.Mitigations = []Mitigation{{Type: M3, Integrity: Medium, Assurance: Medium}}
	a := Assess(op)
	if a.IntrinsicGRC != 6 {
		t.Errorf("intrinsic GRC = %d, want 6", a.IntrinsicGRC)
	}
	if a.InitialARC != ARCc {
		t.Errorf("initial ARC = %v, want ARC-c", a.InitialARC)
	}
	if a.FinalGRC != 6 {
		t.Errorf("final GRC with M3@medium = %d, want 6", a.FinalGRC)
	}
	if a.Err != nil || a.SAIL != SAILV {
		t.Errorf("SAIL = %v (err %v), want SAIL V", a.SAIL, a.Err)
	}

	noM3 := mediDelivery()
	b := Assess(noM3)
	if b.FinalGRC != 7 {
		t.Errorf("final GRC without M3 = %d, want 7 (paper: 'at least 6, 7 if no M3')", b.FinalGRC)
	}
	if b.Err != nil || b.SAIL != SAILVI {
		t.Errorf("SAIL without M3 = %v, want SAIL VI", b.SAIL)
	}
}

func TestELMitigationLowersSAIL(t *testing.T) {
	// The paper's motivation: with EL accepted as an active-M1 mitigation at
	// medium robustness, the final GRC drops by 2, easing certification.
	op := mediDelivery()
	op.Mitigations = []Mitigation{
		{Type: M3, Integrity: Medium, Assurance: Medium},
		{Type: ActiveM1, Integrity: Medium, Assurance: Medium},
	}
	a := Assess(op)
	if a.FinalGRC != 4 {
		t.Errorf("final GRC with EL@medium = %d, want 4", a.FinalGRC)
	}
	if a.SAIL != SAILIV {
		t.Errorf("SAIL with EL = %v, want SAIL IV", a.SAIL)
	}
	baseline := mediDelivery()
	baseline.Mitigations = []Mitigation{{Type: M3, Integrity: Medium, Assurance: Medium}}
	if base := Assess(baseline); a.SAIL >= base.SAIL {
		t.Errorf("EL did not lower SAIL: %v vs %v", a.SAIL, base.SAIL)
	}
	// OSO burden must shrink accordingly.
	withEL := OSOBurden(a.SAIL)[High]
	without := OSOBurden(SAILV)[High]
	if withEL >= without {
		t.Errorf("high-robustness OSO count with EL (%d) not below without (%d)", withEL, without)
	}
}

func TestIntrinsicGRCTable(t *testing.T) {
	tests := []struct {
		name     string
		scenario OperationalScenario
		span, ke float64
		want     int
	}{
		{"micro VLOS controlled", ControlledGround, 0.5, 300, 1},
		{"paper case", BVLOSPopulated, 1.0, 8230, 6},
		{"small VLOS sparse", VLOSSparse, 1.0, 600, 2},
		{"3m BVLOS sparse", BVLOSSparse, 3.0, 20_000, 4},
		{"8m VLOS populated", VLOSPopulated, 8.0, 500_000, 6},
		{"heavy BVLOS populated", BVLOSPopulated, 10, 2e6, 10},
		{"KE dominates dimension", VLOSSparse, 0.8, 50_000, 4}, // col 2 via energy
		{"gathering VLOS", VLOSGathering, 1, 700, 7},
		{"gathering BVLOS", BVLOSGathering, 1, 700, 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IntrinsicGRC(tt.scenario, tt.span, tt.ke); got != tt.want {
				t.Errorf("IntrinsicGRC(%v, %v, %v) = %d, want %d",
					tt.scenario, tt.span, tt.ke, got, tt.want)
			}
		})
	}
}

func TestInitialARC(t *testing.T) {
	tests := []struct {
		name string
		a    Airspace
		want ARC
	}{
		{"paper urban <500ft", Airspace{MaxHeightFt: 394, Urban: true}, ARCc},
		{"rural <500ft", Airspace{MaxHeightFt: 394}, ARCb},
		{"above 500ft", Airspace{MaxHeightFt: 1000, Urban: true}, ARCd},
		{"controlled", Airspace{MaxHeightFt: 300, Controlled: true}, ARCd},
		{"atypical segregated", Airspace{MaxHeightFt: 394, Urban: true, Atypical: true}, ARCa},
	}
	for _, tt := range tests {
		if got := InitialARC(tt.a); got != tt.want {
			t.Errorf("%s: ARC = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestFinalGRCMitigationCredits(t *testing.T) {
	m3med := Mitigation{Type: M3, Integrity: Medium, Assurance: Medium}
	tests := []struct {
		name string
		mits []Mitigation
		want int
	}{
		{"no mitigations: M3 penalty", nil, 7},
		{"M3 medium", []Mitigation{m3med}, 6},
		{"M3 high", []Mitigation{{Type: M3, Integrity: High, Assurance: High}}, 5},
		{"M1 low + M3 med", []Mitigation{{Type: M1, Integrity: Low, Assurance: Low}, m3med}, 5},
		{"M1 high + M3 med", []Mitigation{{Type: M1, Integrity: High, Assurance: High}, m3med}, 2},
		{"M2 medium + M3 med", []Mitigation{{Type: M2, Integrity: Medium, Assurance: Medium}, m3med}, 5},
		{"M2 low gives nothing", []Mitigation{{Type: M2, Integrity: Low, Assurance: Low}, m3med}, 6},
		{"robustness = min(I,A)", []Mitigation{{Type: M1, Integrity: High, Assurance: Low}, m3med}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FinalGRC(6, tt.mits); got != tt.want {
				t.Errorf("FinalGRC(6, %v) = %d, want %d", tt.name, got, tt.want)
			}
		})
	}
}

func TestFinalGRCFloorsAtOne(t *testing.T) {
	mits := []Mitigation{
		{Type: M1, Integrity: High, Assurance: High},
		{Type: M3, Integrity: High, Assurance: High},
	}
	if got := FinalGRC(2, mits); got != 1 {
		t.Errorf("FinalGRC floor = %d, want 1", got)
	}
}

func TestSAILOutsideSpecificCategory(t *testing.T) {
	op := mediDelivery()
	op.SpanM = 10
	op.KineticEnergyJ = 2e6 // BVLOS populated col 4 → GRC 10
	a := Assess(op)
	if a.Err == nil {
		t.Fatal("expected specific-category error for GRC 10")
	}
	if !strings.Contains(a.Err.Error(), "certified") {
		t.Errorf("error should mention certified category: %v", a.Err)
	}
}

func TestCombineRobustness(t *testing.T) {
	if CombineRobustness(High, Low) != Low || CombineRobustness(Low, High) != Low {
		t.Error("robustness must be the minimum of integrity and assurance")
	}
	if CombineRobustness(Medium, Medium) != Medium {
		t.Error("equal levels combine to themselves")
	}
	property := func(i, a uint8) bool {
		ri, ra := Robustness(i%4), Robustness(a%4)
		c := CombineRobustness(ri, ra)
		return c <= ri && c <= ra && (c == ri || c == ra)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOSOTable(t *testing.T) {
	list := OSOList()
	if len(list) != 24 {
		t.Fatalf("OSO count = %d, want 24", len(list))
	}
	for i, o := range list {
		if o.Number != i+1 {
			t.Errorf("OSO %d numbered %d", i+1, o.Number)
		}
		if o.Text == "" {
			t.Errorf("OSO %d missing text", o.Number)
		}
		// Requirements must be monotone non-decreasing with SAIL.
		for s := 1; s < 6; s++ {
			if o.PerSAIL[s] < o.PerSAIL[s-1] {
				t.Errorf("OSO %d robustness decreases from SAIL %d to %d", o.Number, s, s+1)
			}
		}
	}
	// Higher SAIL must impose a strictly heavier High-robustness burden.
	prev := -1
	for s := SAILI; s <= SAILVI; s++ {
		burden := OSOBurden(s)[High]
		if burden < prev {
			t.Errorf("high burden decreased at %v", s)
		}
		prev = burden
	}
	if OSOBurden(SAILVI)[High] != 24 {
		t.Errorf("SAIL VI should require all 24 OSOs at High, got %d", OSOBurden(SAILVI)[High])
	}
}

func TestELCriteriaEvaluation(t *testing.T) {
	// No evidence: None/None.
	integ, assur := EvaluateEL(Evidence{})
	if integ != None || assur != None {
		t.Errorf("empty evidence = %v/%v, want None/None", integ, assur)
	}
	// Low integrity requires both low criteria.
	integ, _ = EvaluateEL(Evidence{"EL-I-L1": true})
	if integ != None {
		t.Errorf("half the low criteria gave %v", integ)
	}
	integ, _ = EvaluateEL(Evidence{"EL-I-L1": true, "EL-I-L2": true})
	if integ != Low {
		t.Errorf("low criteria met gave %v", integ)
	}
	// Medium requires low + medium (cumulative).
	integ, _ = EvaluateEL(Evidence{"EL-I-M1": true})
	if integ != None {
		t.Errorf("medium without low gave %v", integ)
	}
	full := Evidence{
		"EL-I-L1": true, "EL-I-L2": true, "EL-I-M1": true, "EL-I-H1": true,
		"EL-A-L1": true, "EL-A-M1": true, "EL-A-M2": true, "EL-A-M3": true,
	}
	integ, assur = EvaluateEL(full)
	if integ != High {
		t.Errorf("full integrity evidence = %v, want High", integ)
	}
	if assur != Medium {
		t.Errorf("assurance without third-party validation = %v, want Medium", assur)
	}
	m := ELMitigation(full)
	if m.Type != ActiveM1 || m.Robustness() != Medium {
		t.Errorf("EL mitigation = %v robustness %v, want ActiveM1 Medium", m.Type, m.Robustness())
	}
}

func TestCriterionByID(t *testing.T) {
	c, err := CriterionByID("EL-A-M3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Text, "monitoring") {
		t.Errorf("EL-A-M3 text %q should mention monitoring", c.Text)
	}
	if _, err := CriterionByID("nope"); err == nil {
		t.Error("expected error for unknown ID")
	}
}

func TestStringers(t *testing.T) {
	tests := []struct {
		v    interface{ String() string }
		want string
	}{
		{ARCc, "ARC-c"}, {ARCa, "ARC-a"}, {SAILV, "SAIL V"}, {SAILI, "SAIL I"},
		{High, "High"}, {None, "None"},
		{BVLOSPopulated, "BVLOS in populated environment"},
		{ActiveM1, "active-M1 emergency landing"},
		{Integrity, "integrity"}, {Assurance, "assurance"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestReportRendering(t *testing.T) {
	op := mediDelivery()
	op.Mitigations = []Mitigation{{Type: M3, Integrity: Medium, Assurance: Medium}}
	rep := Assess(op).Report(op.Name)
	for _, want := range []string{"MEDI DELIVERY", "intrinsic GRC : 6", "ARC-c", "SAIL V"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	tbl := CriteriaTable(Integrity)
	if !strings.Contains(tbl, "Table III") || !strings.Contains(tbl, "EL-I-L1") {
		t.Errorf("criteria table malformed:\n%s", tbl)
	}
	tbl = CriteriaTable(Assurance)
	if !strings.Contains(tbl, "Table IV") {
		t.Errorf("assurance table malformed:\n%s", tbl)
	}
}
