// Package sora implements the JARUS Specific Operations Risk Assessment
// (SORA v2.0) process the paper applies in Section III: intrinsic ground
// risk class (GRC) determination, air risk class (ARC), the M1/M2/M3
// mitigation scheme with robustness levels, the SAIL matrix, the OSO
// requirement table — and the paper's proposed extension: Emergency Landing
// as an *active-M1* mitigation with its own integrity and assurance
// criteria (Tables III and IV).
package sora

import "fmt"

// Robustness is the SORA robustness scale, the combination of integrity
// (how much safety gain) and assurance (how convincingly demonstrated).
type Robustness int

// Robustness levels.
const (
	None Robustness = iota
	Low
	Medium
	High
)

// String returns the SORA name of the level.
func (r Robustness) String() string {
	switch r {
	case None:
		return "None"
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	default:
		return fmt.Sprintf("Robustness(%d)", int(r))
	}
}

// CombineRobustness implements the SORA rule that overall robustness is the
// weaker of integrity and assurance.
func CombineRobustness(integrity, assurance Robustness) Robustness {
	if assurance < integrity {
		return assurance
	}
	return integrity
}

// ARC is the air risk class.
type ARC int

// Air risk classes a (lowest) to d (highest).
const (
	ARCa ARC = iota + 1
	ARCb
	ARCc
	ARCd
)

// String returns the SORA notation, e.g. "ARC-c".
func (a ARC) String() string {
	if a < ARCa || a > ARCd {
		return fmt.Sprintf("ARC(%d)", int(a))
	}
	return "ARC-" + string(rune('a'+int(a-ARCa)))
}

// SAIL is the Specific Assurance and Integrity Level, I (lowest) to VI.
type SAIL int

// SAIL levels.
const (
	SAILI SAIL = iota + 1
	SAILII
	SAILIII
	SAILIV
	SAILV
	SAILVI
)

// String returns the SAIL in Roman notation.
func (s SAIL) String() string {
	romans := []string{"I", "II", "III", "IV", "V", "VI"}
	if s < SAILI || s > SAILVI {
		return fmt.Sprintf("SAIL(%d)", int(s))
	}
	return "SAIL " + romans[s-1]
}

// OperationalScenario is the SORA Table 2 row: where and how the UAV flies.
type OperationalScenario int

// Operational scenarios in increasing ground-risk order.
const (
	ControlledGround OperationalScenario = iota
	VLOSSparse
	BVLOSSparse
	VLOSPopulated
	BVLOSPopulated
	VLOSGathering
	BVLOSGathering
)

// String names the scenario.
func (s OperationalScenario) String() string {
	switch s {
	case ControlledGround:
		return "VLOS/BVLOS over controlled ground area"
	case VLOSSparse:
		return "VLOS in sparsely populated environment"
	case BVLOSSparse:
		return "BVLOS in sparsely populated environment"
	case VLOSPopulated:
		return "VLOS in populated environment"
	case BVLOSPopulated:
		return "BVLOS in populated environment"
	case VLOSGathering:
		return "VLOS over gathering of people"
	case BVLOSGathering:
		return "BVLOS over gathering of people"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// sizeColumn returns the SORA Table 2 column index (0-3) from the UAV
// characteristic dimension (m) and typical kinetic energy (J). The column is
// the worse (larger) of the two attributes.
func sizeColumn(spanM, kineticEnergyJ float64) int {
	colDim := 3
	switch {
	case spanM <= 1:
		colDim = 0
	case spanM <= 3:
		colDim = 1
	case spanM <= 8:
		colDim = 2
	}
	colKE := 3
	switch {
	case kineticEnergyJ < 700:
		colKE = 0
	case kineticEnergyJ < 34_000:
		colKE = 1
	case kineticEnergyJ < 1_084_000:
		colKE = 2
	}
	if colKE > colDim {
		return colKE
	}
	return colDim
}

// intrinsicGRCTable is SORA v2.0 Table 2, indexed [scenario][sizeColumn].
// A value of 0 marks combinations outside the specific category.
var intrinsicGRCTable = [7][4]int{
	ControlledGround: {1, 2, 3, 4},
	VLOSSparse:       {2, 3, 4, 5},
	BVLOSSparse:      {3, 4, 5, 6},
	VLOSPopulated:    {4, 5, 6, 8},
	BVLOSPopulated:   {5, 6, 8, 10},
	VLOSGathering:    {7, 7, 7, 7},
	BVLOSGathering:   {8, 8, 8, 8},
}

// IntrinsicGRC computes the SORA Table 2 intrinsic ground risk class.
func IntrinsicGRC(scenario OperationalScenario, spanM, kineticEnergyJ float64) int {
	if scenario < ControlledGround || scenario > BVLOSGathering {
		panic(fmt.Sprintf("sora: unknown scenario %d", int(scenario)))
	}
	return intrinsicGRCTable[scenario][sizeColumn(spanM, kineticEnergyJ)]
}

// Airspace describes the operational airspace for ARC determination.
type Airspace struct {
	// MaxHeightFt is the maximum flight height above ground (feet).
	MaxHeightFt float64
	// Controlled marks controlled airspace or airport/heliport environment.
	Controlled bool
	// Urban marks flight over a populated (urban) area.
	Urban bool
	// Atypical marks segregated/atypical airspace (e.g. a reserved
	// corridor), which maps to ARC-a by definition.
	Atypical bool
}

// InitialARC determines the initial air risk class from the airspace,
// following the SORA v2.0 decision tree in simplified form.
func InitialARC(a Airspace) ARC {
	switch {
	case a.Atypical:
		return ARCa
	case a.MaxHeightFt > 500 || a.Controlled:
		return ARCd
	case a.Urban:
		return ARCc // <500 ft, uncontrolled, over urban area
	default:
		return ARCb // <500 ft, uncontrolled, rural
	}
}

// sailTable is SORA v2.0 Table 4, indexed [finalGRC][ARC]. Zero means the
// operation falls outside the specific category.
func sailFromGRCARC(finalGRC int, arc ARC) (SAIL, error) {
	if finalGRC > 7 {
		return 0, fmt.Errorf("final GRC %d exceeds 7: operation outside the specific category (certified category required)", finalGRC)
	}
	if finalGRC < 1 {
		finalGRC = 1
	}
	switch {
	case finalGRC <= 2:
		return map[ARC]SAIL{ARCa: SAILI, ARCb: SAILII, ARCc: SAILIV, ARCd: SAILVI}[arc], nil
	case finalGRC == 3:
		return map[ARC]SAIL{ARCa: SAILII, ARCb: SAILII, ARCc: SAILIV, ARCd: SAILVI}[arc], nil
	case finalGRC == 4:
		return map[ARC]SAIL{ARCa: SAILIII, ARCb: SAILIII, ARCc: SAILIV, ARCd: SAILVI}[arc], nil
	case finalGRC == 5:
		return map[ARC]SAIL{ARCa: SAILIV, ARCb: SAILIV, ARCc: SAILIV, ARCd: SAILVI}[arc], nil
	case finalGRC == 6:
		return map[ARC]SAIL{ARCa: SAILV, ARCb: SAILV, ARCc: SAILV, ARCd: SAILVI}[arc], nil
	default: // 7
		return SAILVI, nil
	}
}
