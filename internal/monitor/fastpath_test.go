package monitor

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"safeland/internal/imaging"
	"safeland/internal/nn"
	"safeland/internal/segment"
)

func noisyImage(side int, seed int64) *imaging.Image {
	rng := rand.New(rand.NewSource(seed))
	img := imaging.NewImage(side, side)
	for i := range img.Pix {
		img.Pix[i] = imaging.RGB{R: rng.Float32(), G: rng.Float32(), B: rng.Float32()}
	}
	return img
}

// TestMCStatsMatchesNaiveReplay pins the deterministic-prefix fast path:
// MCStats (prefix computed once, stochastic suffix replayed per sample)
// must be byte-identical to the seed formulation that re-ran the whole
// network on every Monte-Carlo sample.
func TestMCStatsMatchesNaiveReplay(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 21)
	b.Samples = 5
	img := noisyImage(32, 22)

	got := b.MCStats(img)

	// Naive full replay, exactly as the seed implementation ran it.
	nn.SetDropoutMode(m.Net, nn.AlwaysOn)
	nn.ReseedDropout(m.Net, b.Seed)
	var sum, sumSq *nn.Tensor
	for s := 0; s < b.Samples; s++ {
		probs := nn.SoftmaxChannels(m.Net.Forward(segment.ToTensor(img), false))
		if sum == nil {
			sum = probs.ZerosLike()
			sumSq = probs.ZerosLike()
		}
		for i, v := range probs.Data {
			sum.Data[i] += v
			sumSq.Data[i] += v * v
		}
	}
	nn.SetDropoutMode(m.Net, nn.Auto)
	n := float32(b.Samples)
	for i := range sum.Data {
		mu := sum.Data[i] / n
		sum.Data[i] = mu
		v := sumSq.Data[i]/n - mu*mu
		if v < 0 {
			v = 0
		}
		sumSq.Data[i] = float32(math.Sqrt(float64(v)))
	}

	for i := range sum.Data {
		if got.Mean.Data[i] != sum.Data[i] {
			t.Fatalf("mean[%d] = %v, naive replay %v", i, got.Mean.Data[i], sum.Data[i])
		}
		if got.Std.Data[i] != sumSq.Data[i] {
			t.Fatalf("std[%d] = %v, naive replay %v", i, got.Std.Data[i], sumSq.Data[i])
		}
	}
}

// TestVerifyRegionMatchesTwoScanReference pins the fused statistics scan:
// Verdict must be field-identical to the seed formulation (PixelFlags +
// CountAbove + a separate MaxScore loop over At4).
func TestVerifyRegionMatchesTwoScanReference(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 31)
	b.Samples = 5
	img := noisyImage(32, 32)

	for _, rule := range []Rule{
		DefaultRule(),
		{Tau: 0.125, Sigmas: 3, MaxFlaggedFraction: 0.25},
		{Tau: 0.5, Sigmas: 1, MaxFlaggedFraction: 1},
		{Tau: 0.01, Sigmas: 5, MaxFlaggedFraction: 0},
	} {
		got := b.VerifyRegion(img, rule)

		// Seed formulation: per-call reseeding makes the MC stream identical.
		st := b.MCStats(img)
		flags := rule.PixelFlags(st)
		flagged := flags.CountAbove(0.5)
		frac := float64(flagged) / float64(img.W*img.H)
		var maxScore float32
		_, c, h, w := st.Mean.Dims4()
		for _, cls := range imaging.BusyRoadClasses() {
			ci := int(cls)
			if ci >= c {
				continue
			}
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					s := st.Mean.At4(0, ci, y, x) + rule.Sigmas*st.Std.At4(0, ci, y, x)
					if s > maxScore {
						maxScore = s
					}
				}
			}
		}

		if got.Confirmed != (frac <= rule.MaxFlaggedFraction) {
			t.Fatalf("rule %+v: Confirmed = %v", rule, got.Confirmed)
		}
		if got.FlaggedFraction != frac {
			t.Fatalf("rule %+v: FlaggedFraction = %v, reference %v", rule, got.FlaggedFraction, frac)
		}
		if got.MaxScore != maxScore {
			t.Fatalf("rule %+v: MaxScore = %v, reference %v", rule, got.MaxScore, maxScore)
		}
		for i := range flags.Pix {
			if got.Flags.Pix[i] != flags.Pix[i] {
				t.Fatalf("rule %+v: flag %d = %v, reference %v", rule, i, got.Flags.Pix[i], flags.Pix[i])
			}
		}
	}
}

// TestConcurrentReplicaArenasRace hammers one shared frozen model across
// concurrent replicas, each with its own scratch arena: run under -race it
// pins that arenas are truly per-replica and the prefix-reuse and fused
// scans touch no shared mutable state. Every replica must produce the
// reference verdict bit-for-bit.
func TestConcurrentReplicaArenasRace(t *testing.T) {
	src := tinyModel()
	img := noisyImage(32, 41)
	rule := DefaultRule()
	rule.MaxFlaggedFraction = 0.5

	ref := NewBayesian(src, 42)
	ref.Samples = 4
	want := ref.VerifyRegion(img, rule)
	wantPred := src.Predict(img)

	const replicas = 4
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan string, replicas*rounds)
	for r := 0; r < replicas; r++ {
		clone, err := src.Clone()
		if err != nil {
			t.Fatal(err)
		}
		if clone.Scratch() == src.Scratch() {
			t.Fatal("clone shares the source's arena")
		}
		wg.Add(1)
		go func(m *segment.Model) {
			defer wg.Done()
			bay := NewBayesian(m, 42)
			bay.Samples = 4
			for i := 0; i < rounds; i++ {
				v := bay.VerifyRegion(img, rule)
				if v.Confirmed != want.Confirmed || v.FlaggedFraction != want.FlaggedFraction || v.MaxScore != want.MaxScore {
					errs <- "verdict diverged on a replica"
					return
				}
				pred, err := m.PredictCtx(t.Context(), img)
				if err != nil {
					errs <- err.Error()
					return
				}
				for j := range pred.Pix {
					if pred.Pix[j] != wantPred.Pix[j] {
						errs <- "prediction diverged on a replica"
						return
					}
				}
			}
		}(clone)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
