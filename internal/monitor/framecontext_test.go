package monitor

import (
	"context"
	"image"
	"math/rand"
	"sync"
	"testing"

	"safeland/internal/imaging"
)

// verdictsIdentical bit-compares every Verdict field, including the flag
// map contents.
func verdictsIdentical(a, b Verdict) bool {
	if a.Confirmed != b.Confirmed || a.FlaggedFraction != b.FlaggedFraction || a.MaxScore != b.MaxScore {
		return false
	}
	if (a.Flags == nil) != (b.Flags == nil) {
		return false
	}
	if a.Flags == nil {
		return true
	}
	if a.Flags.W != b.Flags.W || a.Flags.H != b.Flags.H {
		return false
	}
	for i := range a.Flags.Pix {
		if a.Flags.Pix[i] != b.Flags.Pix[i] {
			return false
		}
	}
	return true
}

// TestFrameContextZoneVerdictMatchesVerifyRegion is the tentpole parity
// pin: a cached-stem zone verdict must be byte-identical to the naive
// per-crop VerifyRegionCtx over the same rectangle, across Monte-Carlo
// sample counts and crop positions, with off-grid crops transparently
// served by the fallback path.
func TestFrameContextZoneVerdictMatchesVerifyRegion(t *testing.T) {
	m := tinyModel()
	img := noisyImage(48, 61)
	rule := DefaultRule()
	rule.MaxFlaggedFraction = 0.25
	crops := []struct {
		x0, y0, w, h int
		cached       bool
	}{
		{0, 0, 16, 16, true},   // low corner
		{16, 8, 16, 20, true},  // interior, aligned
		{32, 32, 16, 16, true}, // high corner
		{0, 0, 48, 48, true},   // whole frame
		{7, 4, 16, 16, false},  // origin off the stride-2 grid: fallback
	}
	for _, samples := range []int{2, 5, 10} {
		b := NewBayesian(m, 41)
		b.Samples = samples
		fc := b.NewFrameContext(img)
		wantCached, wantFallback := 0, 0
		for _, cr := range crops {
			got, err := fc.VerifyZoneCtx(context.Background(), cr.x0, cr.y0, cr.w, cr.h, rule)
			if err != nil {
				t.Fatalf("samples=%d VerifyZoneCtx: %v", samples, err)
			}
			want, err := b.VerifyRegionCtx(context.Background(), img.Crop(cr.x0, cr.y0, cr.w, cr.h), rule)
			if err != nil {
				t.Fatalf("samples=%d VerifyRegionCtx: %v", samples, err)
			}
			if !verdictsIdentical(got, want) {
				t.Fatalf("samples=%d crop (%d,%d) %dx%d: cached-stem verdict diverged from per-crop path\n  got:  %+v\n  want: %+v",
					samples, cr.x0, cr.y0, cr.w, cr.h, got, want)
			}
			if cr.cached {
				wantCached++
			} else {
				wantFallback++
			}
		}
		if fc.CachedCrops != wantCached || fc.FallbackCrops != wantFallback {
			t.Fatalf("samples=%d: served %d cached / %d fallback crops, want %d / %d",
				samples, fc.CachedCrops, fc.FallbackCrops, wantCached, wantFallback)
		}
		fc.Close()
	}
}

// TestFrameContextPredictMatchesModel pins the suffix-only deterministic
// prediction against the model's own full forward pass.
func TestFrameContextPredictMatchesModel(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 43)
	b.Samples = 3
	img := noisyImage(32, 63)
	fc := b.NewFrameContext(img)
	defer fc.Close()
	got, err := fc.PredictCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.PredictCtx(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != want.W || got.H != want.H {
		t.Fatalf("prediction dims %dx%d, want %dx%d", got.W, got.H, want.W, want.H)
	}
	for i := range got.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatalf("prediction pixel %d = %v, model path %v", i, got.Pix[i], want.Pix[i])
		}
	}
	// The prediction and a verdict share one frame stem; a verdict after a
	// prediction must still match the naive path.
	rule := DefaultRule()
	v, err := fc.VerifyZoneCtx(context.Background(), 8, 8, 16, 16, rule)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := b.VerifyRegionCtx(context.Background(), img.Crop(8, 8, 16, 16), rule)
	if err != nil {
		t.Fatal(err)
	}
	if !verdictsIdentical(v, ref) {
		t.Fatal("verdict after prediction diverged from per-crop path")
	}
}

// TestFrameContextFrameVerdictMatchesTiles pins the whole-frame path: every
// tile verdict must equal an independent per-crop verification of the same
// rectangle, and the aggregate must be the union of the tiles.
func TestFrameContextFrameVerdictMatchesTiles(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 47)
	b.Samples = 4
	img := noisyImage(48, 67) // 48 with 32px tiles: trailing tiles overlap
	rule := DefaultRule()
	fc := b.NewFrameContext(img)
	defer fc.Close()
	fv, err := fc.VerifyFrameCtx(context.Background(), 32, rule)
	if err != nil {
		t.Fatal(err)
	}
	if len(fv.Tiles) != 4 {
		t.Fatalf("48px frame at 32px tiles: %d tiles, want 4", len(fv.Tiles))
	}
	union := imaging.NewMap(img.W, img.H)
	var maxScore float32
	for _, tile := range fv.Tiles {
		want, err := b.VerifyRegionCtx(context.Background(), img.Crop(tile.X0, tile.Y0, tile.W, tile.H), rule)
		if err != nil {
			t.Fatal(err)
		}
		if !verdictsIdentical(tile.Verdict, want) {
			t.Fatalf("tile (%d,%d): verdict diverged from per-crop path", tile.X0, tile.Y0)
		}
		if tile.Verdict.MaxScore > maxScore {
			maxScore = tile.Verdict.MaxScore
		}
		for y := 0; y < tile.H; y++ {
			for x := 0; x < tile.W; x++ {
				if tile.Verdict.Flags.Pix[y*tile.W+x] != 0 {
					union.Pix[(tile.Y0+y)*img.W+tile.X0+x] = 1
				}
			}
		}
	}
	if fv.MaxScore != maxScore {
		t.Fatalf("aggregate MaxScore %v, tile maximum %v", fv.MaxScore, maxScore)
	}
	flagged := 0
	for i := range union.Pix {
		if union.Pix[i] != fv.Flags.Pix[i] {
			t.Fatalf("aggregate flag map differs from tile union at pixel %d", i)
		}
		if union.Pix[i] != 0 {
			flagged++
		}
	}
	if want := float64(flagged) / float64(img.W*img.H); fv.FlaggedFraction != want {
		t.Fatalf("aggregate flagged fraction %v, union fraction %v", fv.FlaggedFraction, want)
	}
	if fv.Confirmed != (fv.FlaggedFraction <= rule.MaxFlaggedFraction) {
		t.Fatal("aggregate Confirmed inconsistent with the rule tolerance")
	}
}

// TestFrameContextCancelThenReuse is the cancellation-hygiene pin: a
// context cancelled mid-verdict — including during the frame stem
// computation itself — must not leave partial state observable, so the next
// verdict on the same replica is byte-identical to an undisturbed run.
func TestFrameContextCancelThenReuse(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 53)
	b.Samples = 5
	img := noisyImage(32, 71)
	rule := DefaultRule()
	ref, err := b.VerifyRegionCtx(context.Background(), img.Crop(8, 4, 16, 16), rule)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel before the stem exists: Prime must retain nothing.
	fc := b.NewFrameContext(img)
	defer fc.Close()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fc.VerifyZoneCtx(cancelled, 8, 4, 16, 16, rule); err == nil {
		t.Fatal("cancelled verdict succeeded")
	}
	got, err := fc.VerifyZoneCtx(context.Background(), 8, 4, 16, 16, rule)
	if err != nil {
		t.Fatal(err)
	}
	if !verdictsIdentical(got, ref) {
		t.Fatal("verdict after cancelled stem computation diverged")
	}

	// Cancel after the stem exists: the suffix replay aborts, the stem
	// stays valid, and the RNG reseeding makes the retry identical.
	if _, err := fc.VerifyZoneCtx(cancelled, 8, 4, 16, 16, rule); err == nil {
		t.Fatal("cancelled verdict succeeded")
	}
	got, err = fc.VerifyZoneCtx(context.Background(), 8, 4, 16, 16, rule)
	if err != nil {
		t.Fatal(err)
	}
	if !verdictsIdentical(got, ref) {
		t.Fatal("verdict after cancelled replay diverged")
	}

	// The plain per-crop path must recover identically too.
	if _, err := b.VerifyRegionCtx(cancelled, img.Crop(8, 4, 16, 16), rule); err == nil {
		t.Fatal("cancelled VerifyRegionCtx succeeded")
	}
	again, err := b.VerifyRegionCtx(context.Background(), img.Crop(8, 4, 16, 16), rule)
	if err != nil {
		t.Fatal(err)
	}
	if !verdictsIdentical(again, ref) {
		t.Fatal("VerifyRegionCtx after cancellation diverged")
	}
}

// paintRect overwrites the rect of img (clipped) with fresh random pixels
// and returns the clipped rect.
func paintRect(img *imaging.Image, r image.Rectangle, seed int64) image.Rectangle {
	rng := rand.New(rand.NewSource(seed))
	r = r.Intersect(image.Rect(0, 0, img.W, img.H))
	for y := r.Min.Y; y < r.Max.Y; y++ {
		for x := r.Min.X; x < r.Max.X; x++ {
			img.Pix[y*img.W+x] = imaging.RGB{R: rng.Float32(), G: rng.Float32(), B: rng.Float32()}
		}
	}
	return r
}

// TestFrameContextAdvanceMatchesFreshContext is the temporal-reuse parity
// pin: after Advance moves a warm context to a mutated frame, every verdict
// and the deterministic prediction must be byte-identical to a fresh
// context opened on that frame — for crops over changed pixels, unchanged
// pixels, and straddling both.
func TestFrameContextAdvanceMatchesFreshContext(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 61)
	b.Samples = 4
	rule := DefaultRule()
	rule.MaxFlaggedFraction = 0.25

	prev := noisyImage(48, 81)
	fc := b.NewFrameContext(prev)
	defer fc.Close()
	if fc.Image() != prev {
		t.Fatal("Image() does not return the opening frame")
	}
	// Warm the stem with a verdict before advancing.
	if _, err := fc.VerifyZoneCtx(context.Background(), 0, 0, 16, 16, rule); err != nil {
		t.Fatal(err)
	}

	next := prev.Clone()
	changed := []image.Rectangle{
		paintRect(next, image.Rect(20, 24, 36, 40), 82),
		paintRect(next, image.Rect(0, 0, 6, 6), 83),
	}
	if err := fc.Advance(context.Background(), next, changed); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if fc.Image() != next {
		t.Fatal("Image() does not return the advanced frame")
	}

	ref := NewBayesian(m, 61)
	ref.Samples = 4
	fresh := ref.NewFrameContext(next)
	defer fresh.Close()

	crops := []struct{ x0, y0, w, h int }{
		{20, 24, 16, 16}, // exactly the changed patch
		{0, 0, 16, 16},   // covers the small changed corner
		{32, 0, 16, 16},  // untouched pixels only
		{12, 16, 24, 24}, // straddles changed and unchanged
		{0, 0, 48, 48},   // whole frame
	}
	for _, cr := range crops {
		got, err := fc.VerifyZoneCtx(context.Background(), cr.x0, cr.y0, cr.w, cr.h, rule)
		if err != nil {
			t.Fatalf("advanced VerifyZoneCtx: %v", err)
		}
		want, err := fresh.VerifyZoneCtx(context.Background(), cr.x0, cr.y0, cr.w, cr.h, rule)
		if err != nil {
			t.Fatalf("fresh VerifyZoneCtx: %v", err)
		}
		if !verdictsIdentical(got, want) {
			t.Fatalf("crop (%d,%d) %dx%d: advanced-context verdict diverged from fresh context",
				cr.x0, cr.y0, cr.w, cr.h)
		}
	}
	got, err := fc.PredictCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.PredictCtx(context.Background(), next)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatalf("advanced-context prediction differs from the model at pixel %d", i)
		}
	}
}

// TestFrameContextAdvanceColdAndMismatched pins the degraded paths: a cold
// context (no stem yet) and a frame of different dimensions are served by a
// reset instead of an error, and later verdicts match a fresh context.
func TestFrameContextAdvanceColdAndMismatched(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 67)
	b.Samples = 3
	rule := DefaultRule()

	// Cold: Advance before anything computed a stem.
	a := noisyImage(32, 91)
	fc := b.NewFrameContext(a)
	defer fc.Close()
	next := a.Clone()
	paintRect(next, image.Rect(4, 4, 12, 12), 92)
	if err := fc.Advance(context.Background(), next, []image.Rectangle{image.Rect(4, 4, 12, 12)}); err != nil {
		t.Fatalf("cold Advance: %v", err)
	}
	assertMatchesFresh := func(img *imaging.Image) {
		t.Helper()
		got, err := fc.VerifyZoneCtx(context.Background(), 8, 8, 16, 16, rule)
		if err != nil {
			t.Fatal(err)
		}
		refB := NewBayesian(m, 67)
		refB.Samples = 3
		fresh := refB.NewFrameContext(img)
		defer fresh.Close()
		want, err := fresh.VerifyZoneCtx(context.Background(), 8, 8, 16, 16, rule)
		if err != nil {
			t.Fatal(err)
		}
		if !verdictsIdentical(got, want) {
			t.Fatal("verdict after degraded Advance diverged from fresh context")
		}
	}
	assertMatchesFresh(next)

	// Mismatched dimensions: the context resets onto the new frame.
	smaller := noisyImage(24, 93)
	if err := fc.Advance(context.Background(), smaller, nil); err != nil {
		t.Fatalf("mismatched Advance: %v", err)
	}
	if fc.Image() != smaller {
		t.Fatal("mismatched Advance did not move the frame reference")
	}
	assertMatchesFresh(smaller)
}

// TestFrameContextAdvanceCancelGoesCold pins the error path: a cancelled
// Advance leaves the context cold but usable, and the next verdict is
// byte-identical to a fresh context on the new frame.
func TestFrameContextAdvanceCancelGoesCold(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 71)
	b.Samples = 3
	rule := DefaultRule()
	prev := noisyImage(32, 94)
	fc := b.NewFrameContext(prev)
	defer fc.Close()
	if _, err := fc.VerifyZoneCtx(context.Background(), 0, 0, 16, 16, rule); err != nil {
		t.Fatal(err)
	}
	next := prev.Clone()
	r := paintRect(next, image.Rect(8, 8, 20, 20), 95)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := fc.Advance(cancelled, next, []image.Rectangle{r}); err == nil {
		t.Fatal("cancelled Advance succeeded")
	}
	if fc.Image() != next {
		t.Fatal("failed Advance must still move to the new frame")
	}
	got, err := fc.VerifyZoneCtx(context.Background(), 8, 8, 16, 16, rule)
	if err != nil {
		t.Fatal(err)
	}
	refB := NewBayesian(m, 71)
	refB.Samples = 3
	fresh := refB.NewFrameContext(next)
	defer fresh.Close()
	want, err := fresh.VerifyZoneCtx(context.Background(), 8, 8, 16, 16, rule)
	if err != nil {
		t.Fatal(err)
	}
	if !verdictsIdentical(got, want) {
		t.Fatal("verdict after cancelled Advance diverged from fresh context")
	}
}

// TestFrameContextReplicaRaceHammer runs frame contexts on replicas sharing
// one frozen model from many goroutines — the -race run guards the shared
// weights, each replica's private arena, and the per-replica stem caches.
func TestFrameContextReplicaRaceHammer(t *testing.T) {
	src := tinyModel()
	img := noisyImage(32, 73)
	rule := DefaultRule()
	refB := NewBayesian(src, 59)
	refB.Samples = 4
	refFc := refB.NewFrameContext(img)
	refV, err := refFc.VerifyZoneCtx(context.Background(), 8, 8, 16, 16, rule)
	refFc.Close()
	if err != nil {
		t.Fatal(err)
	}

	const replicas, rounds = 4, 3
	errs := make(chan error, replicas)
	var wg sync.WaitGroup
	for r := 0; r < replicas; r++ {
		clone, err := src.Clone()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := NewBayesian(clone, 59)
			b.Samples = 4
			for i := 0; i < rounds; i++ {
				fc := b.NewFrameContext(img)
				v, err := fc.VerifyZoneCtx(context.Background(), 8, 8, 16, 16, rule)
				fc.Close()
				if err != nil {
					errs <- err
					return
				}
				if !verdictsIdentical(v, refV) {
					t.Error("replica verdict diverged from the sequential reference")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
