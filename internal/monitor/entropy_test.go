package monitor

import (
	"math"
	"testing"

	"safeland/internal/imaging"
	"safeland/internal/urban"
)

func TestMCEntropyStatsDecomposition(t *testing.T) {
	m, scenes := trainedTinyModel(t)
	b := NewBayesian(m, 13)
	b.Samples = 6
	es := b.MCEntropyStats(scenes[0].Image)

	maxEnt := float32(math.Log(float64(imaging.NumClasses)))
	for i := range es.Predictive.Pix {
		p := es.Predictive.Pix[i]
		e := es.Expected.Pix[i]
		mi := es.MutualInformation.Pix[i]
		if p < 0 || p > maxEnt+1e-4 {
			t.Fatalf("predictive entropy %v outside [0, ln 8]", p)
		}
		if e < 0 || e > maxEnt+1e-4 {
			t.Fatalf("expected entropy %v outside [0, ln 8]", e)
		}
		if mi < 0 {
			t.Fatalf("negative mutual information %v", mi)
		}
		// MI = predictive − expected (clamped): Jensen guarantees
		// predictive ≥ expected up to float error, so MI ≈ p − e.
		if diff := float64(p - e - mi); diff > 1e-3 {
			t.Fatalf("MI decomposition broken: p=%v e=%v mi=%v", p, e, mi)
		}
	}
	// Mean/std must match the plain MCStats under the same seed.
	st := b.MCStats(scenes[0].Image)
	for i := range st.Mean.Data {
		if math.Abs(float64(st.Mean.Data[i]-es.Mean.Data[i])) > 1e-6 {
			t.Fatal("entropy stats diverge from MCStats mean under same seed")
		}
	}
}

func TestEntropySignalsDetectOOD(t *testing.T) {
	m, _ := trainedTinyModel(t)
	b := NewBayesian(m, 14)
	b.Samples = 6
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 96, 96
	day := urban.Generate(cfg, urban.DefaultConditions(), 810)
	sunset := urban.Generate(cfg, urban.SunsetConditions(), 810)

	dayES := b.MCEntropyStats(day.Image)
	sunES := b.MCEntropyStats(sunset.Image)
	if sunES.Predictive.Mean() <= dayES.Predictive.Mean() {
		t.Error("predictive entropy should rise under distribution shift")
	}
	if sunES.MutualInformation.Mean() <= dayES.MutualInformation.Mean() {
		t.Error("mutual information should rise under distribution shift")
	}
}

func TestFlagsByMonotoneInThreshold(t *testing.T) {
	m, scenes := trainedTinyModel(t)
	b := NewBayesian(m, 15)
	b.Samples = 5
	es := b.MCEntropyStats(scenes[0].Image)
	for _, kind := range []UncertaintyKind{SigmaInterval, PredictiveEntropy, MutualInformation} {
		prev := -1
		for _, thr := range []float32{0.05, 0.125, 0.3, 0.8} {
			n := es.FlagsBy(kind, thr).CountAbove(0.5)
			if prev >= 0 && n > prev {
				t.Errorf("%v: flagged count increased with threshold (%d -> %d)", kind, prev, n)
			}
			prev = n
		}
	}
}

func TestSweepSignalShapes(t *testing.T) {
	m, scenes := trainedTinyModel(t)
	b := NewBayesian(m, 16)
	b.Samples = 5
	pts := SweepSignal(b, scenes[:1], MutualInformation, []float32{0.01, 0.05, 0.2})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, pt := range pts {
		if pt.Kind != MutualInformation {
			t.Error("kind not propagated")
		}
		q := pt.Quality
		if q.FlaggedFraction < 0 || q.FlaggedFraction > 1 || q.FalseWarningRate < 0 || q.FalseWarningRate > 1 {
			t.Errorf("point %d out of range: %+v", i, q)
		}
		if i > 0 && q.FlaggedFraction > pts[i-1].Quality.FlaggedFraction+1e-9 {
			t.Error("flagged fraction not non-increasing in threshold")
		}
	}
}

func TestUncertaintyKindStrings(t *testing.T) {
	for k, want := range map[UncertaintyKind]string{
		SigmaInterval:     "sigma-interval",
		PredictiveEntropy: "predictive-entropy",
		MutualInformation: "mutual-information",
	} {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}
