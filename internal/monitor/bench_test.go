package monitor

import (
	"math/rand"
	"testing"

	"safeland/internal/imaging"
	"safeland/internal/segment"
)

// benchImage builds a deterministic synthetic crop at monitor-candidate
// scale. Weights are untrained: inference cost does not depend on the
// parameter values, only on the architecture and input size.
func benchImage(side int) *imaging.Image {
	rng := rand.New(rand.NewSource(7))
	img := imaging.NewImage(side, side)
	for i := range img.Pix {
		img.Pix[i] = imaging.RGB{R: rng.Float32(), G: rng.Float32(), B: rng.Float32()}
	}
	return img
}

func benchBayesian() *Bayesian {
	cfg := segment.DefaultConfig()
	return NewBayesian(segment.New(cfg), 42)
}

// BenchmarkMCStats times one full Monte-Carlo statistics pass (10 samples)
// on a 64×64 candidate crop — the dominant cost of every monitor verdict.
func BenchmarkMCStats(b *testing.B) {
	bay := benchBayesian()
	img := benchImage(64)
	bay.MCStats(img) // warm caches outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bay.MCStats(img)
	}
}

// BenchmarkVerifyRegion times the complete monitor verdict: Monte-Carlo
// statistics plus the rule scan producing flags, flagged fraction and max
// score.
func BenchmarkVerifyRegion(b *testing.B) {
	bay := benchBayesian()
	img := benchImage(64)
	rule := DefaultRule()
	bay.VerifyRegion(img, rule)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bay.VerifyRegion(img, rule)
	}
}
