package monitor

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"safeland/internal/imaging"
	"safeland/internal/segment"
)

// benchImage builds a deterministic synthetic crop at monitor-candidate
// scale. Weights are untrained: inference cost does not depend on the
// parameter values, only on the architecture and input size.
func benchImage(side int) *imaging.Image {
	rng := rand.New(rand.NewSource(7))
	img := imaging.NewImage(side, side)
	for i := range img.Pix {
		img.Pix[i] = imaging.RGB{R: rng.Float32(), G: rng.Float32(), B: rng.Float32()}
	}
	return img
}

func benchBayesian() *Bayesian {
	cfg := segment.DefaultConfig()
	return NewBayesian(segment.New(cfg), 42)
}

// BenchmarkMCStats times one full Monte-Carlo statistics pass (10 samples)
// on a 64×64 candidate crop — the dominant cost of every monitor verdict.
func BenchmarkMCStats(b *testing.B) {
	bay := benchBayesian()
	img := benchImage(64)
	bay.MCStats(img) // warm caches outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bay.MCStats(img)
	}
}

// BenchmarkVerifyRegion times the complete monitor verdict: Monte-Carlo
// statistics plus the rule scan producing flags, flagged fraction and max
// score.
func BenchmarkVerifyRegion(b *testing.B) {
	bay := benchBayesian()
	img := benchImage(64)
	rule := DefaultRule()
	bay.VerifyRegion(img, rule)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bay.VerifyRegion(img, rule)
	}
}

// BenchmarkCropVerdictCachedStem times one 64×64 zone verdict served from
// an already-primed frame stem — the steady-state cost of every candidate
// after the first on one frame. Compare against BenchmarkMCStats /
// BenchmarkVerifyRegion, which pay the per-crop stem each time.
func BenchmarkCropVerdictCachedStem(b *testing.B) {
	bay := benchBayesian()
	frame := benchImage(192)
	rule := DefaultRule()
	fc := bay.NewFrameContext(frame)
	defer fc.Close()
	ctx := context.Background()
	if _, err := fc.VerifyZoneCtx(ctx, 64, 64, 64, 64, rule); err != nil {
		b.Fatal(err)
	}
	if fc.CachedCrops != 1 {
		b.Fatalf("warmup crop not served from the stem cache (%d cached, %d fallback)",
			fc.CachedCrops, fc.FallbackCrops)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fc.VerifyZoneCtx(ctx, 64, 64, 64, 64, rule); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullFrameVerdict times the whole-frame Bayesian verdict the
// paper's Section V-B rules out as prohibitively slow: a 192×192 frame
// verified as 64×64 tiles over one shared frame stem, frame-context setup
// included. ns/op is the whole-frame cost alone; the E12 acceptance budget
// (full frame < 10 crop verdicts) is recorded as the crop-verdicts metric,
// measured against a single-crop MCStats pass interleaved with every
// iteration so machine-load drift hits both sides of the ratio equally —
// two benchmarks run a minute apart on a loaded box do not.
func BenchmarkFullFrameVerdict(b *testing.B) {
	bay := benchBayesian()
	frame := benchImage(192)
	crop := benchImage(64)
	rule := DefaultRule()
	ctx := context.Background()
	run := func() {
		fc := bay.NewFrameContext(frame)
		defer fc.Close()
		if _, err := fc.VerifyFrameCtx(ctx, 64, rule); err != nil {
			b.Fatal(err)
		}
		if fc.FallbackCrops != 0 {
			b.Fatalf("%d tiles fell back to the naive path", fc.FallbackCrops)
		}
	}
	run() // warm caches outside the timer
	bay.MCStats(crop)
	var fullNS, cropNS int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t0 := time.Now()
		bay.MCStats(crop)
		cropNS += time.Since(t0).Nanoseconds()
		b.StartTimer()
		t0 = time.Now()
		run()
		fullNS += time.Since(t0).Nanoseconds()
	}
	b.ReportMetric(float64(fullNS)/float64(cropNS), "crop-verdicts")
}
