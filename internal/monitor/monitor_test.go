package monitor

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"safeland/internal/imaging"
	"safeland/internal/nn"
	"safeland/internal/segment"
	"safeland/internal/urban"
)

func tinyModel() *segment.Model {
	return segment.New(segment.Config{
		NumClasses:     imaging.NumClasses,
		StemChannels:   6,
		BranchChannels: 4,
		Dilations:      []int{1, 2},
		DropoutP:       0.5,
		Downsample:     true,
		Seed:           3,
	})
}

var trained struct {
	once   sync.Once
	model  *segment.Model
	scenes []*urban.Scene
}

// trainedTinyModel trains one shared model for all monitor tests. The model
// is only read afterwards (MCStats restores dropout mode), and Go runs tests
// within a package sequentially unless t.Parallel is used, which these tests
// avoid.
func trainedTinyModel(t *testing.T) (*segment.Model, []*urban.Scene) {
	t.Helper()
	trained.once.Do(func() {
		cfg := urban.DefaultConfig()
		cfg.W, cfg.H = 96, 96
		trained.scenes = urban.GenerateSet(cfg, urban.DefaultConditions(), 3, 800)
		mcfg := segment.DefaultConfig() // full-width net: calibrated σ
		mcfg.Seed = 3
		trained.model = segment.New(mcfg)
		segment.Train(trained.model, trained.scenes,
			segment.TrainConfig{Steps: 250, Batch: 2, CropSize: 64, LR: 0.01, Seed: 4})
	})
	return trained.model, trained.scenes
}

func TestMCStatsShapesAndRanges(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 11)
	b.Samples = 5
	img := imaging.NewImage(32, 32)
	st := b.MCStats(img)
	_, c, h, w := st.Mean.Dims4()
	if c != imaging.NumClasses || h != 32 || w != 32 {
		t.Fatalf("stats shape %v", st.Mean.Shape)
	}
	for i, v := range st.Mean.Data {
		if v < 0 || v > 1 {
			t.Fatalf("mean[%d]=%v outside [0,1]", i, v)
		}
		if st.Std.Data[i] < 0 {
			t.Fatalf("negative std at %d", i)
		}
	}
	// Means must sum to ~1 per pixel.
	var sum float32
	for ci := 0; ci < c; ci++ {
		sum += st.Mean.At4(0, ci, 10, 10)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("mean probs sum %v", sum)
	}
	// Dropout must produce non-degenerate spread somewhere.
	var maxStd float32
	for _, v := range st.Std.Data {
		if v > maxStd {
			maxStd = v
		}
	}
	if maxStd == 0 {
		t.Error("MC dropout produced zero variance everywhere")
	}
}

func TestMCStatsDeterministicPerSeed(t *testing.T) {
	m := tinyModel()
	img := imaging.NewImage(32, 32)
	a := NewBayesian(m, 7)
	a.Samples = 4
	s1 := a.MCStats(img)
	s2 := a.MCStats(img)
	for i := range s1.Mean.Data {
		if s1.Mean.Data[i] != s2.Mean.Data[i] {
			t.Fatal("same-seed MC stats differ")
		}
	}
	bOther := NewBayesian(m, 8)
	bOther.Samples = 4
	s3 := bOther.MCStats(img)
	diff := false
	for i := range s1.Mean.Data {
		if s1.Mean.Data[i] != s3.Mean.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds gave identical MC stats")
	}
}

func TestMCStatsRestoresDropoutMode(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 1)
	b.Samples = 3
	img := imaging.NewImage(16, 16)
	b.MCStats(img)
	// After MCStats, plain inference must be deterministic again.
	p1 := m.PredictProbs(img)
	p2 := m.PredictProbs(img)
	for i := range p1.Data {
		if p1.Data[i] != p2.Data[i] {
			t.Fatal("dropout left active after MCStats")
		}
	}
}

func TestMCStatsPanicsOnTooFewSamples(t *testing.T) {
	b := NewBayesian(tinyModel(), 1)
	b.Samples = 1
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for <2 samples")
		}
	}()
	b.MCStats(imaging.NewImage(8, 8))
}

func TestRuleConservatism(t *testing.T) {
	// The 3σ rule must flag every pixel the mean-only rule flags: the
	// monitor over-approximates, never under-approximates.
	st := Stats{Mean: nn.NewTensor(1, imaging.NumClasses, 4, 4), Std: nn.NewTensor(1, imaging.NumClasses, 4, 4)}
	rng := [16]float32{0.01, 0.05, 0.10, 0.12, 0.13, 0.2, 0.5, 0.9, 0.124, 0.126, 0.0, 1.0, 0.3, 0.07, 0.11, 0.125}
	for i, v := range rng {
		st.Mean.Set4(0, int(imaging.Road), i/4, i%4, v)
		st.Std.Set4(0, int(imaging.Road), i/4, i%4, 0.02)
	}
	meanOnly := Rule{Tau: 0.125, Sigmas: 0}
	threeSigma := Rule{Tau: 0.125, Sigmas: 3}
	f0 := meanOnly.PixelFlags(st)
	f3 := threeSigma.PixelFlags(st)
	for i := range f0.Pix {
		if f0.Pix[i] >= 0.5 && f3.Pix[i] < 0.5 {
			t.Fatalf("3σ rule cleared pixel %d that mean-only flagged", i)
		}
	}
	if f3.CountAbove(0.5) <= f0.CountAbove(0.5) {
		t.Error("3σ rule should flag strictly more pixels given nonzero std near τ")
	}
}

func TestRuleChecksAllBusyRoadClasses(t *testing.T) {
	st := Stats{Mean: nn.NewTensor(1, imaging.NumClasses, 1, 3), Std: nn.NewTensor(1, imaging.NumClasses, 1, 3)}
	// Pixel 0 high road score, pixel 1 high moving-car, pixel 2 high tree.
	st.Mean.Set4(0, int(imaging.Road), 0, 0, 0.5)
	st.Mean.Set4(0, int(imaging.MovingCar), 0, 1, 0.5)
	st.Mean.Set4(0, int(imaging.Tree), 0, 2, 0.9)
	flags := DefaultRule().PixelFlags(st)
	if flags.At(0, 0) != 1 || flags.At(1, 0) != 1 {
		t.Error("busy-road class scores not flagged")
	}
	if flags.At(2, 0) != 0 {
		t.Error("tree score flagged: rule must only consider busy-road composite")
	}
}

func TestVerifyRegionVerdicts(t *testing.T) {
	m, scenes := trainedTinyModel(t)
	b := NewBayesian(m, 5)
	b.Samples = 6

	// A region the generator guarantees road-free vs one with road: find
	// windows from ground truth.
	s := scenes[0]
	ci := imaging.NewClassIntegral(s.Labels)
	var safeRect, roadRect [4]int
	foundSafe, foundRoad := false, false
	const win = 32
	for y := 0; y+win <= s.Labels.H && !(foundSafe && foundRoad); y += 8 {
		for x := 0; x+win <= s.Labels.W; x += 8 {
			fr := ci.BusyRoadFraction(x, y, x+win, y+win)
			if fr == 0 && !foundSafe {
				safeRect = [4]int{x, y, win, win}
				foundSafe = true
			}
			if fr > 0.5 && !foundRoad {
				roadRect = [4]int{x, y, win, win}
				foundRoad = true
			}
		}
	}
	if !foundSafe || !foundRoad {
		t.Skip("scene lacks contrasting windows for this seed")
	}
	relaxed := Rule{Tau: 0.125, Sigmas: 3, MaxFlaggedFraction: 0.10}
	safeV := b.VerifyRegion(s.Image.Crop(safeRect[0], safeRect[1], safeRect[2], safeRect[3]), relaxed)
	roadV := b.VerifyRegion(s.Image.Crop(roadRect[0], roadRect[1], roadRect[2], roadRect[3]), relaxed)
	if roadV.FlaggedFraction <= safeV.FlaggedFraction {
		t.Errorf("road region flagged %.3f <= safe region %.3f",
			roadV.FlaggedFraction, safeV.FlaggedFraction)
	}
	if roadV.MaxScore <= safeV.MaxScore {
		t.Errorf("road max score %.3f <= safe %.3f", roadV.MaxScore, safeV.MaxScore)
	}
	if !roadV.Confirmed && roadV.Flags.CountAbove(0.5) == 0 {
		t.Error("rejected region carries no flags")
	}
}

func TestSweepTauMonotonic(t *testing.T) {
	m, scenes := trainedTinyModel(t)
	b := NewBayesian(m, 9)
	b.Samples = 5
	taus := []float32{0.05, 0.125, 0.3, 0.6}
	pts := SweepTau(b, scenes[:1], taus, 3)
	if len(pts) != len(taus) {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Quality.FlaggedFraction > pts[i-1].Quality.FlaggedFraction+1e-9 {
			t.Errorf("flagged fraction not non-increasing in τ: %v then %v",
				pts[i-1].Quality.FlaggedFraction, pts[i].Quality.FlaggedFraction)
		}
		if pts[i].Quality.FalseWarningRate > pts[i-1].Quality.FalseWarningRate+1e-9 {
			t.Errorf("false warnings not non-increasing in τ")
		}
	}
}

func TestEvaluateQualityRanges(t *testing.T) {
	m, scenes := trainedTinyModel(t)
	b := NewBayesian(m, 2)
	b.Samples = 5
	q := Evaluate(b, scenes[:1], DefaultRule())
	if q.Pixels != int64(scenes[0].Labels.W*scenes[0].Labels.H) {
		t.Errorf("pixels = %d", q.Pixels)
	}
	for name, v := range map[string]float64{
		"miss coverage": q.HazardMissCoverage,
		"false warning": q.FalseWarningRate,
		"flagged":       q.FlaggedFraction,
		"core recall":   q.CoreBusyRecall,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v outside [0,1]", name, v)
		}
	}
	if q.String() == "" {
		t.Error("empty quality string")
	}
}

// pollCtx cancels itself after a fixed number of Err polls, so mid-trial
// cancellation is deterministic regardless of scheduling or timing.
type pollCtx struct {
	context.Context
	polls atomic.Int32
	limit int32
}

func (c *pollCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func TestMCStatsCtxCancelsMidTrial(t *testing.T) {
	m := tinyModel()
	b := NewBayesian(m, 11)
	b.Samples = 5
	img := imaging.NewImage(32, 32)

	// Uncancelled ctx variant must match the plain path bit for bit.
	want := b.MCStats(img)
	got, err := b.MCStatsCtx(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Mean.Data {
		if want.Mean.Data[i] != got.Mean.Data[i] || want.Std.Data[i] != got.Std.Data[i] {
			t.Fatal("MCStatsCtx diverges from MCStats")
		}
	}

	// A context dying a few layer-checks in aborts mid-sample: the limit is
	// far below the polls of a full 5-sample run but inside the first pass.
	ctx := &pollCtx{Context: context.Background(), limit: 3}
	if _, err := b.MCStatsCtx(ctx, img); err != context.Canceled {
		t.Fatalf("mid-trial cancel: err = %v, want context.Canceled", err)
	}
	if _, err := b.VerifyRegionCtx(&pollCtx{Context: context.Background(), limit: 3},
		img, DefaultRule()); err != context.Canceled {
		t.Fatalf("VerifyRegionCtx cancel: err = %v, want context.Canceled", err)
	}

	// Cancellation must not leave the model stuck in Monte-Carlo mode or
	// perturb a subsequent completed run.
	after := b.MCStats(img)
	for i := range want.Mean.Data {
		if want.Mean.Data[i] != after.Mean.Data[i] {
			t.Fatal("a cancelled trial perturbed the next run's MC sequence")
		}
	}
	det := m.PredictProbs(img)
	det2 := m.PredictProbs(img)
	for i := range det.Data {
		if det.Data[i] != det2.Data[i] {
			t.Fatal("dropout left always-on after a cancelled trial")
		}
	}
}
