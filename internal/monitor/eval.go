package monitor

import (
	"fmt"

	"safeland/internal/imaging"
	"safeland/internal/urban"
)

// Quality quantifies monitor behavior against ground truth — the "formal
// quantitative study" the paper's conclusion calls for.
type Quality struct {
	// HazardMissCoverage is the fraction of busy-road pixels missed by the
	// deterministic core model that the monitor flags: the paper's headline
	// qualitative claim ("the monitor seems able to trigger uncertainty
	// warnings for a large part of the road areas not covered by the core
	// model"), made measurable.
	HazardMissCoverage float64
	// FalseWarningRate is the fraction of truly-safe pixels flagged; each
	// false warning costs a retry or an aborted flight.
	FalseWarningRate float64
	// FlaggedFraction is the overall fraction of flagged pixels.
	FlaggedFraction float64
	// CoreBusyRecall is the deterministic model's busy-road recall, for
	// reference.
	CoreBusyRecall float64
	// Pixels is the number of pixels evaluated.
	Pixels int64
}

// String renders the quality headline.
func (q Quality) String() string {
	return fmt.Sprintf("miss-coverage %.3f, false-warning %.3f, flagged %.3f (core busy-recall %.3f)",
		q.HazardMissCoverage, q.FalseWarningRate, q.FlaggedFraction, q.CoreBusyRecall)
}

// Evaluate measures monitor quality over full scenes: for every pixel it
// compares ground truth, the deterministic core prediction, and the monitor
// flag.
func Evaluate(b *Bayesian, scenes []*urban.Scene, rule Rule) Quality {
	var missed, missedFlagged, safePx, safeFlagged, flagged, total int64
	var busyTruth, busyCaught int64
	for _, s := range scenes {
		pred := b.Model.Predict(s.Image)
		st := b.MCStats(s.Image)
		flags := rule.PixelFlags(st)
		for i, truth := range s.Labels.Pix {
			total++
			isBusy := truth.BusyRoad()
			predBusy := pred.Pix[i].BusyRoad()
			isFlagged := flags.Pix[i] >= 0.5
			if isFlagged {
				flagged++
			}
			if isBusy {
				busyTruth++
				if predBusy {
					busyCaught++
				} else {
					missed++
					if isFlagged {
						missedFlagged++
					}
				}
			} else {
				safePx++
				if isFlagged {
					safeFlagged++
				}
			}
		}
	}
	q := Quality{Pixels: total}
	if missed > 0 {
		q.HazardMissCoverage = float64(missedFlagged) / float64(missed)
	} else {
		q.HazardMissCoverage = 1 // nothing was missed: vacuously covered
	}
	if safePx > 0 {
		q.FalseWarningRate = float64(safeFlagged) / float64(safePx)
	}
	if total > 0 {
		q.FlaggedFraction = float64(flagged) / float64(total)
	}
	if busyTruth > 0 {
		q.CoreBusyRecall = float64(busyCaught) / float64(busyTruth)
	}
	return q
}

// ROCPoint is one operating point of the τ sweep.
type ROCPoint struct {
	Tau     float32
	Quality Quality
}

// SweepTau evaluates monitor quality across decision thresholds, reusing the
// expensive MC statistics across thresholds.
func SweepTau(b *Bayesian, scenes []*urban.Scene, taus []float32, sigmas float32) []ROCPoint {
	type sceneEval struct {
		scene *urban.Scene
		pred  *imaging.LabelMap
		st    Stats
	}
	evals := make([]sceneEval, len(scenes))
	for i, s := range scenes {
		evals[i] = sceneEval{scene: s, pred: b.Model.Predict(s.Image), st: b.MCStats(s.Image)}
	}
	out := make([]ROCPoint, 0, len(taus))
	for _, tau := range taus {
		rule := Rule{Tau: tau, Sigmas: sigmas}
		var missed, missedFlagged, safePx, safeFlagged, flagged, total int64
		for _, ev := range evals {
			flags := rule.PixelFlags(ev.st)
			for i, truth := range ev.scene.Labels.Pix {
				total++
				isFlagged := flags.Pix[i] >= 0.5
				if isFlagged {
					flagged++
				}
				if truth.BusyRoad() {
					if !ev.pred.Pix[i].BusyRoad() {
						missed++
						if isFlagged {
							missedFlagged++
						}
					}
				} else {
					safePx++
					if isFlagged {
						safeFlagged++
					}
				}
			}
		}
		q := Quality{Pixels: total}
		if missed > 0 {
			q.HazardMissCoverage = float64(missedFlagged) / float64(missed)
		} else {
			q.HazardMissCoverage = 1
		}
		if safePx > 0 {
			q.FalseWarningRate = float64(safeFlagged) / float64(safePx)
		}
		if total > 0 {
			q.FlaggedFraction = float64(flagged) / float64(total)
		}
		out = append(out, ROCPoint{Tau: tau, Quality: q})
	}
	return out
}
