// Package monitor implements the paper's runtime safety monitor for the
// landing-zone selection model: a Bayesian (Monte-Carlo dropout) variant of
// the segmentation network whose per-pixel predictive uncertainty feeds a
// conservative busy-road over-approximation rule (µ + 3σ ≤ τ).
//
// The monitor discharges the paper's Medium-3 assurance requirement
// (Table IV): "safety monitoring techniques are in place to ensure proper
// behavior of any function relying on complex computer vision or machine
// learning".
package monitor

import (
	"context"
	"fmt"
	"math"

	"safeland/internal/imaging"
	"safeland/internal/nn"
	"safeland/internal/segment"
)

// Bayesian wraps a trained segmentation model and produces Monte-Carlo
// predictive statistics by keeping dropout active at inference (Gal &
// Ghahramani 2016). The paper's BMSDnet.
type Bayesian struct {
	Model *segment.Model
	// Samples is the number of stochastic forward passes; the paper uses 10.
	Samples int
	// Seed makes the MC sample sequence reproducible.
	Seed int64
}

// NewBayesian wraps a model with the paper's settings (10 samples).
func NewBayesian(m *segment.Model, seed int64) *Bayesian {
	return &Bayesian{Model: m, Samples: 10, Seed: seed}
}

// Stats holds per-pixel Monte-Carlo statistics of the softmax scores, shape
// [1,C,H,W] each.
type Stats struct {
	Mean *nn.Tensor
	Std  *nn.Tensor
}

// MCStats runs Samples stochastic forward passes and returns the empirical
// mean and standard deviation of the per-pixel softmax scores. The dropout
// mode is restored afterwards, so the wrapped model can keep serving
// deterministic predictions.
func (b *Bayesian) MCStats(img *imaging.Image) Stats {
	st, err := b.MCStatsCtx(context.Background(), img)
	if err != nil {
		// Background never cancels; MCStatsCtx has no other error path.
		panic(fmt.Sprintf("monitor: %v", err))
	}
	return st
}

// MCStatsCtx is MCStats with cooperative cancellation: the context is
// honored between Monte-Carlo samples and between the network layers inside
// each sample, so a cancelled trial stops within one layer's work and
// returns ctx's error. The sample sequence is reseeded per call, so a run
// that completes is byte-identical whether or not earlier runs were
// cancelled.
func (b *Bayesian) MCStatsCtx(ctx context.Context, img *imaging.Image) (Stats, error) {
	// No arena for the moment buffers: Mean and Std escape to the caller,
	// who keeps them for as long as it likes.
	return b.mcMoments(ctx, img, nil)
}

// mcRun drives the Monte-Carlo sample loop: dropout forced AlwaysOn and
// reseeded, then the deterministic prefix — every layer before the first
// Dropout, whose inference output cannot vary across samples — is computed
// once and only the stochastic suffix is replayed per sample
// (nn.SplitAtFirstDropout). Dropout layers draw exactly the same RNG
// stream as a full replay, so the per-sample probabilities are
// byte-identical to running the whole network each time; the prefix-reuse
// tests pin this against a naive full replay.
//
// each borrows probs for the duration of the call only: the buffer returns
// to the model's arena for the next sample.
func (b *Bayesian) mcRun(ctx context.Context, img *imaging.Image, each func(probs *nn.Tensor)) error {
	sc := b.Model.Scratch()
	in := segment.ToTensorScratch(img, sc)
	stem, suffix := in, nn.Layer(b.Model.Net)
	defer func() { sc.Put(stem) }()
	if prefix, suf, ok := nn.SplitAtFirstDropout(b.Model.Net); ok {
		out, err := nn.ForwardCtx(ctx, prefix, in, false)
		if err != nil {
			return err
		}
		stem, suffix = out, suf
		if stem != in {
			sc.Put(in)
		}
	}
	return b.mcReplay(ctx, stem, suffix, each)
}

// mcReplay replays the stochastic suffix over a precomputed stem: dropout
// forced AlwaysOn and reseeded from b.Seed, then Samples suffix passes with
// a softmax over each. The stem tensor is borrowed — suffix chains never
// recycle their chain input — so callers may replay the same stem (or crops
// sliced from a frame-level one) any number of times; each call draws an
// identical RNG stream, which is what makes cached-stem verdicts
// byte-identical to per-crop ones.
//
// each borrows probs for the duration of the call only: the buffer returns
// to the model's arena for the next sample.
func (b *Bayesian) mcReplay(ctx context.Context, stem *nn.Tensor, suffix nn.Layer, each func(probs *nn.Tensor)) error {
	if b.Samples < 2 {
		panic(fmt.Sprintf("monitor: need at least 2 MC samples, have %d", b.Samples))
	}
	net := b.Model.Net
	nn.SetDropoutMode(net, nn.AlwaysOn)
	defer nn.SetDropoutMode(net, nn.Auto)
	nn.ReseedDropout(net, b.Seed)

	sc := b.Model.Scratch()
	for s := 0; s < b.Samples; s++ {
		out, err := nn.ForwardCtx(ctx, suffix, stem, false)
		if err != nil {
			return err
		}
		probs := nn.SoftmaxChannelsInPlace(out)
		each(probs)
		if probs != stem {
			sc.Put(probs)
		}
	}
	return nil
}

// mcMoments accumulates per-pixel mean and standard deviation over the
// Monte-Carlo samples. When sc is non-nil the moment buffers are drawn from
// it — callers doing so must Put Mean and Std back once read, which is what
// makes a steady-state VerifyRegionCtx allocation-free; pass nil when the
// statistics escape.
func (b *Bayesian) mcMoments(ctx context.Context, img *imaging.Image, sc *nn.Scratch) (Stats, error) {
	return b.momentsOver(sc, func(each func(*nn.Tensor)) error {
		return b.mcRun(ctx, img, each)
	})
}

// stemMoments is mcMoments over a precomputed stem (a frame stem or a crop
// sliced from one): the suffix replay replaces the full per-image run, the
// Σp/Σp² accumulation is shared, so the two paths cannot drift.
func (b *Bayesian) stemMoments(ctx context.Context, stem *nn.Tensor, suffix nn.Layer, sc *nn.Scratch) (Stats, error) {
	return b.momentsOver(sc, func(each func(*nn.Tensor)) error {
		return b.mcReplay(ctx, stem, suffix, each)
	})
}

// momentsOver accumulates per-pixel Σp and Σp² over whatever sample stream
// run produces and finalizes them into mean and standard deviation.
func (b *Bayesian) momentsOver(sc *nn.Scratch, run func(each func(*nn.Tensor)) error) (Stats, error) {
	var sum, sumSq *nn.Tensor
	err := run(func(probs *nn.Tensor) {
		if sum == nil {
			sum = sc.Get(probs.Shape...)
			sum.Zero()
			sumSq = sc.Get(probs.Shape...)
			sumSq.Zero()
		}
		for i, v := range probs.Data {
			sum.Data[i] += v
			sumSq.Data[i] += v * v
		}
	})
	if err != nil {
		sc.Put(sum)
		sc.Put(sumSq)
		return Stats{}, err
	}
	return finalizeMoments(sum, sumSq, float32(b.Samples)), nil
}

// finalizeMoments turns accumulated Σp and Σp² into the empirical mean and
// standard deviation in place: sum becomes Mean, sumSq becomes Std (the
// variance estimate is clamped at 0 before the square root — float32
// cancellation can push it fractionally negative). Both moment consumers
// (MCStats and the entropy decomposition) share this so the parity-pinned
// math cannot drift between them.
func finalizeMoments(sum, sumSq *nn.Tensor, samples float32) Stats {
	for i := range sum.Data {
		m := sum.Data[i] / samples
		sum.Data[i] = m
		v := sumSq.Data[i]/samples - m*m
		if v < 0 {
			v = 0
		}
		sumSq.Data[i] = float32(math.Sqrt(float64(v)))
	}
	return Stats{Mean: sum, Std: sumSq}
}

// Rule is the conservative pixel-safety decision rule of the paper
// (Equation 2): a pixel is safe when µ + Sigmas·σ ≤ Tau for every class of
// the busy-road composite.
type Rule struct {
	// Tau is the decision threshold; the paper picks 0.125 = 1/8 so the road
	// score stays below a uniform random guess over the 8 UAVid classes.
	Tau float32
	// Sigmas is the width of the one-sided confidence interval; the paper
	// uses 3 (the 99.7% interval).
	Sigmas float32
	// MaxFlaggedFraction is the largest fraction of flagged pixels a region
	// may contain and still be confirmed.
	MaxFlaggedFraction float64
}

// DefaultRule returns the paper's parameters: τ = 0.125, 3σ, and zero
// tolerance for flagged pixels in a confirmed zone.
func DefaultRule() Rule {
	return Rule{Tau: 0.125, Sigmas: 3, MaxFlaggedFraction: 0}
}

// PixelFlags applies the rule to MC statistics and returns a binary map:
// 1 where the pixel is flagged (possibly busy road), 0 where it is safe.
// The scan walks the statistics' backing arrays directly; the flag decision
// is the same µ + kσ > τ comparison in the same order as the per-pixel At4
// formulation it replaces.
func (r Rule) PixelFlags(st Stats) *imaging.Map {
	_, c, h, w := st.Mean.Dims4()
	out := imaging.NewMap(w, h)
	mean, std := st.Mean.Data, st.Std.Data
	for _, cls := range imaging.BusyRoadClasses() {
		ci := int(cls)
		if ci >= c {
			continue
		}
		base := ci * h * w
		for i, mu := range mean[base : base+h*w] {
			if mu+r.Sigmas*std[base+i] > r.Tau {
				out.Pix[i] = 1
			}
		}
	}
	return out
}

// Verdict is the monitor's decision about one candidate landing zone.
type Verdict struct {
	// Confirmed is true when the zone passed the conservative check.
	Confirmed bool
	// FlaggedFraction is the fraction of zone pixels violating the rule.
	FlaggedFraction float64
	// MaxScore is the largest µ + Sigmas·σ over pixels and busy-road
	// classes — how close the zone came to rejection.
	MaxScore float32
	// Flags marks the offending pixels.
	Flags *imaging.Map
}

// VerifyRegion runs Bayesian inference on a candidate zone sub-image and
// applies the rule. This is the paper's Figure 2 monitor path: only the
// cropped candidate is verified, because full-frame Bayesian inference is
// prohibitively slow (Section V-B).
func (b *Bayesian) VerifyRegion(sub *imaging.Image, rule Rule) Verdict {
	v, err := b.VerifyRegionCtx(context.Background(), sub, rule)
	if err != nil {
		// Background never cancels; a zero Verdict must not masquerade as
		// a clean monitor pass.
		panic(fmt.Sprintf("monitor: %v", err))
	}
	return v
}

// VerifyRegionCtx is VerifyRegion with cooperative cancellation: a context
// cancelled mid-trial aborts the remaining Monte-Carlo samples and returns
// ctx's error with a zero Verdict.
//
// This is the serving hot path, so the two full-image scans the seed
// implementation ran (Rule.PixelFlags plus a separate MaxScore loop) are
// fused into one pass over the statistics' backing arrays, and the moment
// buffers come from — and return to — the model replica's arena. The
// Verdict fields are bit-identical to the two-scan formulation: the same
// µ + kσ expression decides the flag, feeds the max, and is folded in the
// same class-major pixel order.
func (b *Bayesian) VerifyRegionCtx(ctx context.Context, sub *imaging.Image, rule Rule) (Verdict, error) {
	sc := b.Model.Scratch()
	st, err := b.mcMoments(ctx, sub, sc)
	if err != nil {
		return Verdict{}, err
	}
	return verdictFromMoments(st, sub.W, sub.H, rule, sc), nil
}

// verdictFromMoments applies the rule to finalized moments in one fused
// scan — the same µ + kσ expression decides the flag, feeds the max, and is
// folded in the same class-major pixel order as the seed's two-scan
// formulation. inW and inH are the verified region's input dimensions,
// which set the flagged-fraction denominator; the moment buffers return to
// the arena before the verdict escapes.
func verdictFromMoments(st Stats, inW, inH int, rule Rule, sc *nn.Scratch) Verdict {
	_, c, h, w := st.Mean.Dims4()
	mean, std := st.Mean.Data, st.Std.Data
	flags := imaging.NewMap(w, h)
	pix := flags.Pix
	flagged := 0
	var maxScore float32
	for _, cls := range imaging.BusyRoadClasses() {
		ci := int(cls)
		if ci >= c {
			continue
		}
		base := ci * h * w
		for i, mu := range mean[base : base+h*w] {
			s := mu + rule.Sigmas*std[base+i]
			if s > maxScore {
				maxScore = s
			}
			if s > rule.Tau && pix[i] == 0 {
				pix[i] = 1
				flagged++
			}
		}
	}
	sc.Put(st.Mean)
	sc.Put(st.Std)
	frac := float64(flagged) / float64(inW*inH)
	return Verdict{
		Confirmed:       frac <= rule.MaxFlaggedFraction,
		FlaggedFraction: frac,
		MaxScore:        maxScore,
		Flags:           flags,
	}
}
