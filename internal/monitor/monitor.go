// Package monitor implements the paper's runtime safety monitor for the
// landing-zone selection model: a Bayesian (Monte-Carlo dropout) variant of
// the segmentation network whose per-pixel predictive uncertainty feeds a
// conservative busy-road over-approximation rule (µ + 3σ ≤ τ).
//
// The monitor discharges the paper's Medium-3 assurance requirement
// (Table IV): "safety monitoring techniques are in place to ensure proper
// behavior of any function relying on complex computer vision or machine
// learning".
package monitor

import (
	"context"
	"fmt"
	"math"

	"safeland/internal/imaging"
	"safeland/internal/nn"
	"safeland/internal/segment"
)

// Bayesian wraps a trained segmentation model and produces Monte-Carlo
// predictive statistics by keeping dropout active at inference (Gal &
// Ghahramani 2016). The paper's BMSDnet.
type Bayesian struct {
	Model *segment.Model
	// Samples is the number of stochastic forward passes; the paper uses 10.
	Samples int
	// Seed makes the MC sample sequence reproducible.
	Seed int64
}

// NewBayesian wraps a model with the paper's settings (10 samples).
func NewBayesian(m *segment.Model, seed int64) *Bayesian {
	return &Bayesian{Model: m, Samples: 10, Seed: seed}
}

// Stats holds per-pixel Monte-Carlo statistics of the softmax scores, shape
// [1,C,H,W] each.
type Stats struct {
	Mean *nn.Tensor
	Std  *nn.Tensor
}

// MCStats runs Samples stochastic forward passes and returns the empirical
// mean and standard deviation of the per-pixel softmax scores. The dropout
// mode is restored afterwards, so the wrapped model can keep serving
// deterministic predictions.
func (b *Bayesian) MCStats(img *imaging.Image) Stats {
	st, err := b.MCStatsCtx(context.Background(), img)
	if err != nil {
		// Background never cancels; MCStatsCtx has no other error path.
		panic(fmt.Sprintf("monitor: %v", err))
	}
	return st
}

// MCStatsCtx is MCStats with cooperative cancellation: the context is
// honored between Monte-Carlo samples and between the network layers inside
// each sample, so a cancelled trial stops within one layer's work and
// returns ctx's error. The sample sequence is reseeded per call, so a run
// that completes is byte-identical whether or not earlier runs were
// cancelled.
func (b *Bayesian) MCStatsCtx(ctx context.Context, img *imaging.Image) (Stats, error) {
	if b.Samples < 2 {
		panic(fmt.Sprintf("monitor: need at least 2 MC samples, have %d", b.Samples))
	}
	nn.SetDropoutMode(b.Model.Net, nn.AlwaysOn)
	defer nn.SetDropoutMode(b.Model.Net, nn.Auto)
	nn.ReseedDropout(b.Model.Net, b.Seed)

	in := segment.ToTensor(img)
	var sum, sumSq *nn.Tensor
	for s := 0; s < b.Samples; s++ {
		out, err := nn.ForwardCtx(ctx, b.Model.Net, in, false)
		if err != nil {
			return Stats{}, err
		}
		probs := nn.SoftmaxChannels(out)
		if sum == nil {
			sum = probs.ZerosLike()
			sumSq = probs.ZerosLike()
		}
		for i, v := range probs.Data {
			sum.Data[i] += v
			sumSq.Data[i] += v * v
		}
	}
	n := float32(b.Samples)
	mean := sum
	std := sumSq
	for i := range mean.Data {
		m := mean.Data[i] / n
		mean.Data[i] = m
		v := sumSq.Data[i]/n - m*m
		if v < 0 {
			v = 0
		}
		std.Data[i] = float32(math.Sqrt(float64(v)))
	}
	return Stats{Mean: mean, Std: std}, nil
}

// Rule is the conservative pixel-safety decision rule of the paper
// (Equation 2): a pixel is safe when µ + Sigmas·σ ≤ Tau for every class of
// the busy-road composite.
type Rule struct {
	// Tau is the decision threshold; the paper picks 0.125 = 1/8 so the road
	// score stays below a uniform random guess over the 8 UAVid classes.
	Tau float32
	// Sigmas is the width of the one-sided confidence interval; the paper
	// uses 3 (the 99.7% interval).
	Sigmas float32
	// MaxFlaggedFraction is the largest fraction of flagged pixels a region
	// may contain and still be confirmed.
	MaxFlaggedFraction float64
}

// DefaultRule returns the paper's parameters: τ = 0.125, 3σ, and zero
// tolerance for flagged pixels in a confirmed zone.
func DefaultRule() Rule {
	return Rule{Tau: 0.125, Sigmas: 3, MaxFlaggedFraction: 0}
}

// PixelFlags applies the rule to MC statistics and returns a binary map:
// 1 where the pixel is flagged (possibly busy road), 0 where it is safe.
func (r Rule) PixelFlags(st Stats) *imaging.Map {
	_, c, h, w := st.Mean.Dims4()
	out := imaging.NewMap(w, h)
	for _, cls := range imaging.BusyRoadClasses() {
		ci := int(cls)
		if ci >= c {
			continue
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				mu := st.Mean.At4(0, ci, y, x)
				sd := st.Std.At4(0, ci, y, x)
				if mu+r.Sigmas*sd > r.Tau {
					out.Set(x, y, 1)
				}
			}
		}
	}
	return out
}

// Verdict is the monitor's decision about one candidate landing zone.
type Verdict struct {
	// Confirmed is true when the zone passed the conservative check.
	Confirmed bool
	// FlaggedFraction is the fraction of zone pixels violating the rule.
	FlaggedFraction float64
	// MaxScore is the largest µ + Sigmas·σ over pixels and busy-road
	// classes — how close the zone came to rejection.
	MaxScore float32
	// Flags marks the offending pixels.
	Flags *imaging.Map
}

// VerifyRegion runs Bayesian inference on a candidate zone sub-image and
// applies the rule. This is the paper's Figure 2 monitor path: only the
// cropped candidate is verified, because full-frame Bayesian inference is
// prohibitively slow (Section V-B).
func (b *Bayesian) VerifyRegion(sub *imaging.Image, rule Rule) Verdict {
	v, err := b.VerifyRegionCtx(context.Background(), sub, rule)
	if err != nil {
		// Background never cancels; a zero Verdict must not masquerade as
		// a clean monitor pass.
		panic(fmt.Sprintf("monitor: %v", err))
	}
	return v
}

// VerifyRegionCtx is VerifyRegion with cooperative cancellation: a context
// cancelled mid-trial aborts the remaining Monte-Carlo samples and returns
// ctx's error with a zero Verdict.
func (b *Bayesian) VerifyRegionCtx(ctx context.Context, sub *imaging.Image, rule Rule) (Verdict, error) {
	st, err := b.MCStatsCtx(ctx, sub)
	if err != nil {
		return Verdict{}, err
	}
	flags := rule.PixelFlags(st)
	flagged := flags.CountAbove(0.5)
	frac := float64(flagged) / float64(sub.W*sub.H)

	var maxScore float32
	_, c, h, w := st.Mean.Dims4()
	for _, cls := range imaging.BusyRoadClasses() {
		ci := int(cls)
		if ci >= c {
			continue
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				s := st.Mean.At4(0, ci, y, x) + rule.Sigmas*st.Std.At4(0, ci, y, x)
				if s > maxScore {
					maxScore = s
				}
			}
		}
	}
	return Verdict{
		Confirmed:       frac <= rule.MaxFlaggedFraction,
		FlaggedFraction: frac,
		MaxScore:        maxScore,
		Flags:           flags,
	}, nil
}
