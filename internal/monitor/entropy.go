package monitor

import (
	"context"
	"fmt"
	"math"

	"safeland/internal/imaging"
	"safeland/internal/nn"
	"safeland/internal/urban"
)

// The paper's conclusion lists "other uncertainty estimation techniques"
// as future work. This file adds the two standard alternatives to the
// σ-interval rule so they can be compared head-to-head (experiment E10):
//
//   - predictive entropy H[E[p]]: total uncertainty of the averaged
//     prediction;
//   - BALD mutual information H[E[p]] − E[H[p]]: the epistemic part only,
//     which is the theoretically right quantity for detecting
//     out-of-distribution inputs (model disagreement across dropout
//     masks), as opposed to aleatoric class ambiguity.

// EntropyStats extends the Monte-Carlo statistics with the entropy
// decomposition.
type EntropyStats struct {
	Stats
	// Predictive is H of the mean predictive distribution, per pixel
	// (nats).
	Predictive *imaging.Map
	// Expected is the mean over samples of each sample's entropy (nats).
	Expected *imaging.Map
	// MutualInformation is Predictive − Expected (clamped at 0): the BALD
	// score.
	MutualInformation *imaging.Map
}

// MCEntropyStats runs the same stochastic forward passes as MCStats —
// including the deterministic-prefix reuse and arena-backed sample loop —
// and additionally decomposes predictive uncertainty into aleatoric and
// epistemic parts. The moment and entropy buffers are freshly allocated:
// they escape to the caller.
func (b *Bayesian) MCEntropyStats(img *imaging.Image) EntropyStats {
	var sum, sumSq *nn.Tensor
	var expEnt *imaging.Map
	err := b.mcRun(context.Background(), img, func(probs *nn.Tensor) {
		if sum == nil {
			sum = probs.ZerosLike()
			sumSq = probs.ZerosLike()
			expEnt = imaging.NewMap(img.W, img.H)
		}
		for i, v := range probs.Data {
			sum.Data[i] += v
			sumSq.Data[i] += v * v
		}
		accumulateEntropy(expEnt, probs)
	})
	if err != nil {
		// Background never cancels; mcRun has no other error path.
		panic(fmt.Sprintf("monitor: %v", err))
	}
	n := float32(b.Samples)
	st := finalizeMoments(sum, sumSq, n)
	for i := range expEnt.Pix {
		expEnt.Pix[i] /= n
	}
	pred := entropyOf(st.Mean)
	mi := imaging.NewMap(img.W, img.H)
	for i := range mi.Pix {
		d := pred.Pix[i] - expEnt.Pix[i]
		if d < 0 {
			d = 0
		}
		mi.Pix[i] = d
	}
	return EntropyStats{
		Stats:             st,
		Predictive:        pred,
		Expected:          expEnt,
		MutualInformation: mi,
	}
}

// accumulateEntropy adds each pixel's sample entropy into acc.
func accumulateEntropy(acc *imaging.Map, probs *nn.Tensor) {
	_, c, h, w := probs.Dims4()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var e float64
			for ci := 0; ci < c; ci++ {
				p := float64(probs.At4(0, ci, y, x))
				if p > 1e-12 {
					e -= p * math.Log(p)
				}
			}
			acc.Pix[y*w+x] += float32(e)
		}
	}
}

// entropyOf computes per-pixel entropy of a [1,C,H,W] distribution tensor.
func entropyOf(probs *nn.Tensor) *imaging.Map {
	_, c, h, w := probs.Dims4()
	out := imaging.NewMap(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var e float64
			for ci := 0; ci < c; ci++ {
				p := float64(probs.At4(0, ci, y, x))
				if p > 1e-12 {
					e -= p * math.Log(p)
				}
			}
			out.Pix[y*w+x] = float32(e)
		}
	}
	return out
}

// UncertaintyKind selects the flagging signal of an alternative monitor.
type UncertaintyKind int

// Alternative monitor signals.
const (
	// SigmaInterval is the paper's µ+kσ ≤ τ rule on busy-road scores.
	SigmaInterval UncertaintyKind = iota
	// PredictiveEntropy flags pixels whose averaged prediction is uncertain.
	PredictiveEntropy
	// MutualInformation flags pixels where dropout masks disagree (BALD).
	MutualInformation
)

// String names the signal.
func (k UncertaintyKind) String() string {
	switch k {
	case SigmaInterval:
		return "sigma-interval"
	case PredictiveEntropy:
		return "predictive-entropy"
	case MutualInformation:
		return "mutual-information"
	default:
		return "uncertainty(?)"
	}
}

// FlagsBy applies an alternative uncertainty signal at the given threshold,
// returning a binary flag map. For SigmaInterval the threshold is τ of the
// default 3σ rule; for the entropy signals it is the nats cutoff.
func (es EntropyStats) FlagsBy(kind UncertaintyKind, threshold float32) *imaging.Map {
	switch kind {
	case PredictiveEntropy:
		return es.Predictive.Threshold(threshold)
	case MutualInformation:
		return es.MutualInformation.Threshold(threshold)
	default:
		return Rule{Tau: threshold, Sigmas: 3}.PixelFlags(es.Stats)
	}
}

// SignalPoint is one operating point of an alternative-signal sweep.
type SignalPoint struct {
	Kind      UncertaintyKind
	Threshold float32
	Quality   Quality
}

// SweepSignal evaluates one uncertainty signal across thresholds on the
// scenes, reusing the Monte-Carlo statistics. It mirrors SweepTau for the
// alternative signals so E10 can compare them at matched false-warning
// rates.
func SweepSignal(b *Bayesian, scenes []*urban.Scene, kind UncertaintyKind, thresholds []float32) []SignalPoint {
	type sceneEval struct {
		scene *urban.Scene
		pred  *imaging.LabelMap
		es    EntropyStats
	}
	evals := make([]sceneEval, len(scenes))
	for i, s := range scenes {
		evals[i] = sceneEval{scene: s, pred: b.Model.Predict(s.Image), es: b.MCEntropyStats(s.Image)}
	}
	out := make([]SignalPoint, 0, len(thresholds))
	for _, thr := range thresholds {
		var missed, missedFlagged, safePx, safeFlagged, flagged, total int64
		for _, ev := range evals {
			flags := ev.es.FlagsBy(kind, thr)
			for i, truth := range ev.scene.Labels.Pix {
				total++
				isFlagged := flags.Pix[i] >= 0.5
				if isFlagged {
					flagged++
				}
				if truth.BusyRoad() {
					if !ev.pred.Pix[i].BusyRoad() {
						missed++
						if isFlagged {
							missedFlagged++
						}
					}
				} else {
					safePx++
					if isFlagged {
						safeFlagged++
					}
				}
			}
		}
		q := Quality{Pixels: total}
		if missed > 0 {
			q.HazardMissCoverage = float64(missedFlagged) / float64(missed)
		} else {
			q.HazardMissCoverage = 1
		}
		if safePx > 0 {
			q.FalseWarningRate = float64(safeFlagged) / float64(safePx)
		}
		if total > 0 {
			q.FlaggedFraction = float64(flagged) / float64(total)
		}
		out = append(out, SignalPoint{Kind: kind, Threshold: thr, Quality: q})
	}
	return out
}
