package monitor

import (
	"context"
	"fmt"
	"image"

	"safeland/internal/imaging"
	"safeland/internal/nn"
	"safeland/internal/segment"
)

// FrameContext amortizes the deterministic work of one on-board frame
// across everything the perception stack asks about it: the full-frame stem
// (every layer before the first dropout) is computed once, the
// deterministic segmentation and every Monte-Carlo zone verdict then run
// suffix-only, with each crop's stem sliced out of the frame stem
// (nn.StemCache) instead of recomputed. Verdicts are byte-identical to the
// per-crop VerifyRegionCtx path — the parity tests pin this — because the
// sliced stems are bit-equal and the suffix replay draws the same reseeded
// RNG stream.
//
// This is what breaks the paper's Section V-B constraint: full-frame
// Bayesian monitoring was "prohibitively slow" per-crop, but tiled over a
// shared frame stem it costs roughly one suffix replay per tile
// (VerifyFrameCtx, experiment E12).
//
// A FrameContext borrows its Bayesian replica's model and arena, so it is
// single-goroutine like the replica itself. Close must be called to return
// the frame tensors to the arena; the context is then dead.
type FrameContext struct {
	b   *Bayesian
	img *imaging.Image

	in     *nn.Tensor // frame input tensor; owned until Close
	cache  *nn.StemCache
	suffix nn.Layer
	split  bool // stem cache available; false falls back to per-crop paths

	// CachedCrops and FallbackCrops count how zone verdicts were served:
	// from the sliced frame stem, or by the naive per-crop path (crops off
	// the stride grid, unsupported model shapes).
	CachedCrops   int
	FallbackCrops int

	// FaultHook, when non-nil, is consulted at the context's named
	// perception fault points — currently "reprime", after Advance has
	// re-primed the carried stem. A non-nil return means the carried state
	// is corrupt: the context resets cold (exactly as if the stem had never
	// been primed, so no corrupted bytes can reach a later verdict) and
	// Advance returns the hook's error. Chaos injection (internal/faults)
	// wires this to make stem-cache corruption a schedulable, deterministic
	// fault; it is never called on the cold path, where there is no carried
	// state to corrupt.
	FaultHook func(stage string) error
}

// NewFrameContext opens a per-frame context on the monitor's model. The
// frame is borrowed for the context's lifetime. When the model's shape does
// not support stem caching (no dropout to split at, a non-sliceable
// prefix), every method transparently falls back to the per-crop path —
// results are identical either way, only the sharing is lost.
func (b *Bayesian) NewFrameContext(frame *imaging.Image) *FrameContext {
	fc := &FrameContext{b: b, img: frame}
	if prefix, suffix, ok := nn.SplitAtFirstDropout(b.Model.Net); ok {
		if cache, cok := nn.NewStemCache(prefix, b.Model.Scratch()); cok {
			fc.cache, fc.suffix, fc.split = cache, suffix, true
		}
	}
	return fc
}

// Image returns the frame the context currently describes — the one it was
// opened on, or the latest frame a successful Advance moved it to.
func (fc *FrameContext) Image() *imaging.Image { return fc.img }

// Advance moves the context to the next frame of a descent stream without
// recomputing the unchanged part of the frame stem: the caller promises
// that frame differs from the current image only inside the changed
// rectangles (pixel coordinates, exclusive Max), the input tensor is
// rewritten there in place, and the stem cache re-primes just the affected
// outputs (nn.StemCache.Reprime). After a successful Advance the context is
// bit-identical to a fresh context opened on frame with its stem computed —
// the session parity tests pin this — so every later PredictCtx and
// VerifyZoneCtx verdict is byte-identical to a fresh-context run.
//
// An error leaves the context safe but cold: the frame reference moves to
// the new frame and the stem and input tensor are dropped, so the next use
// recomputes from scratch (the same contract a cancelled Prime has). A
// frame of different dimensions or a context without a primed stem is also
// served that way rather than rejected — Advance never fails the stream,
// it only loses the reuse.
func (fc *FrameContext) Advance(ctx context.Context, frame *imaging.Image, changed []image.Rectangle) error {
	if !fc.split || fc.in == nil || !fc.cache.Primed() ||
		frame.W != fc.img.W || frame.H != fc.img.H {
		fc.reset(frame)
		return nil
	}
	for _, r := range changed {
		r = r.Intersect(image.Rect(0, 0, frame.W, frame.H))
		if r.Empty() {
			continue
		}
		segment.UpdateTensorRect(fc.in, frame, r.Min.X, r.Min.Y, r.Dx(), r.Dy())
	}
	fc.img = frame
	if err := fc.cache.Reprime(ctx, changed); err != nil {
		// Reprime released the stem; drop the half-updated input tensor too
		// so the next ensureStem rebuilds both from the current image.
		fc.reset(frame)
		return err
	}
	if fc.FaultHook != nil {
		if err := fc.FaultHook("reprime"); err != nil {
			// Injected corruption: the just-re-primed stem is declared bad.
			// Reset cold so the next use recomputes everything from the
			// current frame — the corruption is detected, never served.
			fc.reset(frame)
			return err
		}
	}
	return nil
}

// reset points the context at frame and drops the cached tensors, so the
// next use recomputes them from frame.
func (fc *FrameContext) reset(frame *imaging.Image) {
	fc.img = frame
	if fc.cache != nil {
		fc.cache.Release()
	}
	if fc.in != nil {
		fc.b.Model.Scratch().Put(fc.in)
		fc.in = nil
	}
}

// ensureStem lazily computes the full-frame stem. A cancelled computation
// retains nothing (nn.StemCache.Prime's contract), so a later call on the
// same context starts clean — a partially-computed stem is never observable
// to subsequent verdicts.
func (fc *FrameContext) ensureStem(ctx context.Context) error {
	if fc.cache.Primed() {
		return nil
	}
	if fc.in == nil {
		fc.in = segment.ToTensorScratch(fc.img, fc.b.Model.Scratch())
	}
	return fc.cache.Prime(ctx, fc.in)
}

// PredictCtx returns the deterministic segmentation of the frame,
// byte-identical to Model.PredictCtx: the frame stem plus one suffix pass
// in deterministic mode is the same layer sequence as a full forward, and
// inactive dropout consumes no randomness.
func (fc *FrameContext) PredictCtx(ctx context.Context) (*imaging.LabelMap, error) {
	if !fc.split {
		return fc.b.Model.PredictCtx(ctx, fc.img)
	}
	if err := fc.ensureStem(ctx); err != nil {
		return nil, err
	}
	sc := fc.b.Model.Scratch()
	out, err := nn.ForwardCtx(ctx, fc.suffix, fc.cache.Stem(), false)
	if err != nil {
		return nil, err
	}
	lm := segment.LabelMapFromScores(out, fc.img.W, fc.img.H)
	if out != fc.cache.Stem() {
		sc.Put(out)
	}
	return lm, nil
}

// VerifyZoneCtx verifies the (x0, y0, w, h) crop of the frame,
// byte-identical to VerifyRegionCtx over the same crop: when the crop sits
// on the stem's stride grid its stem is sliced from the frame stem and only
// the stochastic suffix is replayed; otherwise the naive per-crop path
// runs. Cancellation mid-verdict leaves the frame stem untouched — the
// next verdict on this context reuses it as if the cancellation never
// happened.
func (fc *FrameContext) VerifyZoneCtx(ctx context.Context, x0, y0, w, h int, rule Rule) (Verdict, error) {
	if fc.split {
		if err := fc.ensureStem(ctx); err != nil {
			return Verdict{}, err
		}
		stem, ok, err := fc.cache.CropStem(ctx, x0, y0, w, h)
		if err != nil {
			return Verdict{}, err
		}
		if ok {
			fc.CachedCrops++
			sc := fc.b.Model.Scratch()
			st, err := fc.b.stemMoments(ctx, stem, fc.suffix, sc)
			sc.Put(stem)
			if err != nil {
				return Verdict{}, err
			}
			return verdictFromMoments(st, w, h, rule, sc), nil
		}
	}
	fc.FallbackCrops++
	return fc.b.VerifyRegionCtx(ctx, fc.img.Crop(x0, y0, w, h), rule)
}

// TileVerdict is one tile of a whole-frame verification.
type TileVerdict struct {
	X0, Y0, W, H int
	Verdict      Verdict
}

// FrameVerdict aggregates a tiled whole-frame verification. The embedded
// Verdict covers the full frame: Flags is the union of the tile flag maps
// in frame coordinates, FlaggedFraction counts distinct flagged frame
// pixels (overlapping tile rows are not double-counted), MaxScore is the
// maximum over tiles, and Confirmed applies the rule's flagged-fraction
// tolerance to the frame-wide fraction.
type FrameVerdict struct {
	Verdict
	Tiles []TileVerdict
}

// VerifyFrameCtx verifies the whole frame as a grid of tilePx×tilePx crops
// (each byte-identical to a VerifyZoneCtx of the same rectangle; trailing
// tiles shift left/up to stay inside the frame, so edge rows are covered by
// overlapping tiles). tilePx is rounded up to even — the downsampling model
// requires even inputs — and clamped to the frame.
func (fc *FrameContext) VerifyFrameCtx(ctx context.Context, tilePx int, rule Rule) (FrameVerdict, error) {
	fw, fh := fc.img.W, fc.img.H
	if tilePx < 2 {
		tilePx = 2
	}
	if tilePx%2 == 1 {
		tilePx++
	}
	tw, th := tilePx, tilePx
	if tw > fw {
		tw = fw
	}
	if th > fh {
		th = fh
	}
	fv := FrameVerdict{Verdict: Verdict{Flags: imaging.NewMap(fw, fh)}}
	for _, y0 := range tileOrigins(fh, th) {
		for _, x0 := range tileOrigins(fw, tw) {
			v, err := fc.VerifyZoneCtx(ctx, x0, y0, tw, th, rule)
			if err != nil {
				return FrameVerdict{}, err
			}
			fv.Tiles = append(fv.Tiles, TileVerdict{X0: x0, Y0: y0, W: tw, H: th, Verdict: v})
			if v.MaxScore > fv.MaxScore {
				fv.MaxScore = v.MaxScore
			}
			mergeFlags(fv.Flags, v.Flags, x0, y0)
		}
	}
	flagged := 0
	for _, p := range fv.Flags.Pix {
		if p != 0 {
			flagged++
		}
	}
	fv.FlaggedFraction = float64(flagged) / float64(fw*fh)
	fv.Confirmed = fv.FlaggedFraction <= rule.MaxFlaggedFraction
	return fv, nil
}

// Close returns the context's tensors to the replica's arena. The context
// must not be used afterwards.
func (fc *FrameContext) Close() {
	if fc.cache != nil {
		fc.cache.Release()
	}
	if fc.in != nil {
		fc.b.Model.Scratch().Put(fc.in)
		fc.in = nil
	}
}

// tileOrigins returns the tile origins covering [0, n) with extent t: a
// regular grid plus a final origin shifted to n-t when n is not a multiple
// of t, so the last tile overlaps instead of falling short.
func tileOrigins(n, t int) []int {
	if t >= n {
		return []int{0}
	}
	var origins []int
	for o := 0; o+t <= n; o += t {
		origins = append(origins, o)
	}
	if last := n - t; origins[len(origins)-1] != last {
		origins = append(origins, last)
	}
	return origins
}

// mergeFlags ORs a tile flag map into the frame map at (x0, y0), panicking
// on a tile that does not fit — tiles come from VerifyFrameCtx's own grid,
// so a mismatch is a bug, not an input condition.
func mergeFlags(frame, tile *imaging.Map, x0, y0 int) {
	if x0+tile.W > frame.W || y0+tile.H > frame.H {
		panic(fmt.Sprintf("monitor: %dx%d tile at (%d,%d) outside %dx%d frame",
			tile.W, tile.H, x0, y0, frame.W, frame.H))
	}
	for y := 0; y < tile.H; y++ {
		src := tile.Pix[y*tile.W : (y+1)*tile.W]
		dst := frame.Pix[(y0+y)*frame.W+x0 : (y0+y)*frame.W+x0+tile.W]
		for i, p := range src {
			if p != 0 {
				dst[i] = 1
			}
		}
	}
}
