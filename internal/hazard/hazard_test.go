package hazard

import (
	"math"
	"testing"
	"testing/quick"

	"safeland/internal/imaging"
)

func TestSeverityTable(t *testing.T) {
	tab := SeverityTable()
	if len(tab) != 5 {
		t.Fatalf("severity table has %d levels, want 5", len(tab))
	}
	for i, s := range tab {
		if int(s) != i+1 {
			t.Errorf("level %d has value %d", i, int(s))
		}
		if !s.Valid() {
			t.Errorf("%v not valid", s)
		}
		if s.String() == "" || s.Description() == "" {
			t.Errorf("level %v missing text", s)
		}
	}
	if Severity(0).Valid() || Severity(6).Valid() {
		t.Error("out-of-range severities reported valid")
	}
}

func TestMainGroundRisksMatchTableII(t *testing.T) {
	risks := MainGroundRisks()
	want := map[string]Severity{
		"R1": Catastrophic, "R2": Major, "R3": Serious, "R4": Serious, "R5": Minor,
	}
	if len(risks) != len(want) {
		t.Fatalf("got %d risks, want %d", len(risks), len(want))
	}
	for _, r := range risks {
		if want[r.ID] != r.Severity {
			t.Errorf("%s severity = %v, want %v", r.ID, r.Severity, want[r.ID])
		}
		if r.Description == "" {
			t.Errorf("%s missing description", r.ID)
		}
	}
	// R1 (busy road) must be the unique catastrophic outcome.
	catastrophic := 0
	for _, r := range risks {
		if r.Severity == Catastrophic {
			catastrophic++
		}
	}
	if catastrophic != 1 {
		t.Errorf("%d catastrophic outcomes, want exactly 1 (R1)", catastrophic)
	}
}

func TestHazardCategories(t *testing.T) {
	seen := map[string]bool{}
	for c := Category(0); c < NumCategories; c++ {
		name := c.String()
		if name == "" || seen[name] {
			t.Errorf("category %d name %q empty or duplicate", c, name)
		}
		seen[name] = true
		outs := GroundRiskOutcomes(c)
		if len(outs) == 0 {
			t.Errorf("category %v maps to no outcomes", c)
		}
		for _, id := range outs {
			if id < "R1" || id > "R5" {
				t.Errorf("category %v yields unknown outcome %q", c, id)
			}
		}
	}
}

func TestFatalityProbabilityShape(t *testing.T) {
	// Monotone increasing in energy.
	prev := 0.0
	for _, e := range []float64{10, 100, 1000, 8230, 1e5, 1e7} {
		p := FatalityProbability(e, 1)
		if p < prev {
			t.Errorf("P(fatality) decreased at E=%v: %v < %v", e, p, prev)
		}
		prev = p
	}
	// Monotone decreasing in sheltering.
	if FatalityProbability(8230, 0.5) <= FatalityProbability(8230, 7.5) {
		t.Error("more sheltering should reduce fatality probability")
	}
	// The paper's ballistic impact (8.23 kJ) on an unsheltered person is
	// near-certainly serious.
	if p := FatalityProbability(8230, 0.5); p < 0.5 {
		t.Errorf("P(fatality | 8.23 kJ, open) = %v, want > 0.5", p)
	}
	if FatalityProbability(0, 1) != 0 {
		t.Error("zero energy must be harmless")
	}
	property := func(eExp, shel uint8) bool {
		e := math.Pow(10, float64(eExp%8))
		s := 0.3 + float64(shel%100)/10
		p := FatalityProbability(e, s)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLethalArea(t *testing.T) {
	a1 := LethalArea(1)
	if a1 <= 0 {
		t.Fatal("non-positive lethal area")
	}
	if LethalArea(3) <= a1 {
		t.Error("larger UAV should have larger lethal area")
	}
	// 1 m span + 0.3 m person radius → π·0.8² ≈ 2.01 m².
	if math.Abs(a1-math.Pi*0.64) > 1e-9 {
		t.Errorf("lethal area = %v, want %v", a1, math.Pi*0.64)
	}
}

func TestAssessReproducesTableIIOrdering(t *testing.T) {
	// Build the paper's Table II situations with MEDI DELIVERY parameters
	// (8.23 kJ ballistic impact) and representative densities, and check the
	// derived severities reproduce the published ordering.
	const ke, span = 8230.0, 1.0
	busyRoad := Assess(Impact{Surface: imaging.Road, KineticEnergyJ: ke, SpanM: span,
		PeoplePerM2: 0.015, TrafficFactor: 1.0})
	people := Assess(Impact{Surface: imaging.Humans, KineticEnergyJ: ke, SpanM: span,
		PeoplePerM2: 0.25, TrafficFactor: 0})
	building := Assess(Impact{Surface: imaging.Building, KineticEnergyJ: ke, SpanM: span,
		PeoplePerM2: 0.008, TrafficFactor: 0})
	parked := Assess(Impact{Surface: imaging.StaticCar, KineticEnergyJ: ke, SpanM: span,
		PeoplePerM2: 0.002, TrafficFactor: 0})

	if busyRoad.Severity != Catastrophic {
		t.Errorf("busy road severity = %v, want Catastrophic (R1)", busyRoad.Severity)
	}
	if people.Severity != Major {
		t.Errorf("people severity = %v, want Major (R2)", people.Severity)
	}
	if building.Severity != Serious {
		t.Errorf("building severity = %v, want Serious (R4)", building.Severity)
	}
	if parked.Severity != Minor {
		t.Errorf("parked car severity = %v, want Minor (R5)", parked.Severity)
	}
	if busyRoad.ExpectedSecondary == 0 {
		t.Error("busy road impact should carry secondary accident risk")
	}
	if people.ExpectedSecondary != 0 {
		t.Error("non-road impact should have no secondary accident term")
	}
}

func TestAssessEnergyReductionHelps(t *testing.T) {
	// An M2 mitigation (parachute) cutting impact energy must cut severity
	// on people — the paper's argument that M2 reduces R2 from 4 to 2.
	hard := Assess(Impact{Surface: imaging.Humans, KineticEnergyJ: 8230, SpanM: 1,
		PeoplePerM2: 0.25})
	soft := Assess(Impact{Surface: imaging.Humans, KineticEnergyJ: 80, SpanM: 1,
		PeoplePerM2: 0.25})
	if soft.Severity >= hard.Severity {
		t.Errorf("parachute impact severity %v not below ballistic %v", soft.Severity, hard.Severity)
	}
	if soft.ExpectedFatalities >= hard.ExpectedFatalities {
		t.Error("reduced energy should reduce expected fatalities")
	}
	// But M2 does NOT defuse the busy-road outcome (the paper's key point:
	// a parachute landing on a busy road still causes accidents).
	roadSoft := Assess(Impact{Surface: imaging.Road, KineticEnergyJ: 80, SpanM: 1,
		PeoplePerM2: 0.015, TrafficFactor: 1.0})
	if roadSoft.Severity < Major {
		t.Errorf("parachute landing on busy road severity = %v, want >= Major", roadSoft.Severity)
	}
}

func TestFireProbabilityVegetation(t *testing.T) {
	veg := Assess(Impact{Surface: imaging.LowVegetation, KineticEnergyJ: 8230, SpanM: 1})
	pav := Assess(Impact{Surface: imaging.Clutter, KineticEnergyJ: 8230, SpanM: 1})
	if veg.FireProbability <= pav.FireProbability {
		t.Error("vegetation should carry higher post-crash fire probability")
	}
}
