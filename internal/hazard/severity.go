// Package hazard implements the paper's Section III-B preliminary hazard
// analysis substrate: the severity scale (Table I), the main ground-risk
// outcomes (Table II), the Belcastro-style hazard taxonomy the analysis
// extends, and a quantitative casualty model that lets the severity ratings
// be *derived* from simulated impacts instead of merely asserted.
package hazard

import "fmt"

// Severity rates the worst credible outcome of a hazardous event, following
// the paper's Table I.
type Severity int

// Severity levels (Table I).
const (
	Negligible   Severity = 1 // no effect
	Minor        Severity = 2 // slight injury or damage to the drone
	Serious      Severity = 3 // important injury or damage to critical infrastructure, environment
	Major        Severity = 4 // single fatal injury
	Catastrophic Severity = 5 // multiple fatal injuries
)

// String returns the Table I severity name.
func (s Severity) String() string {
	switch s {
	case Negligible:
		return "Negligible"
	case Minor:
		return "Minor"
	case Serious:
		return "Serious"
	case Major:
		return "Major"
	case Catastrophic:
		return "Catastrophic"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Description returns the Table I description of the level.
func (s Severity) Description() string {
	switch s {
	case Negligible:
		return "No effect"
	case Minor:
		return "Slight injury or damage to the drone"
	case Serious:
		return "Important injury or damage to critical infrastructures, environment"
	case Major:
		return "Single fatal injury"
	case Catastrophic:
		return "Multiple fatal injuries"
	default:
		return "unknown"
	}
}

// Valid reports whether s is one of the five Table I levels.
func (s Severity) Valid() bool { return s >= Negligible && s <= Catastrophic }

// SeverityTable returns Table I in order.
func SeverityTable() []Severity {
	return []Severity{Negligible, Minor, Serious, Major, Catastrophic}
}

// Outcome is one hazardous outcome of the ground-risk analysis (Table II).
type Outcome struct {
	ID          string
	Description string
	Severity    Severity
}

// MainGroundRisks returns the paper's Table II: the principal hazardous
// outcomes of losing navigation capability over a city, with their assessed
// severities.
func MainGroundRisks() []Outcome {
	return []Outcome{
		{ID: "R1", Description: "UAV causes accident involving ground vehicles", Severity: Catastrophic},
		{ID: "R2", Description: "UAV injures people on ground", Severity: Major},
		{ID: "R3", Description: "Post-crash fire that threatens wildlife and environment", Severity: Serious},
		{ID: "R4", Description: "UAV collides with infrastructure (building, bridge, power lines / sub-station)", Severity: Serious},
		{ID: "R5", Description: "UAV crashes into parked ground vehicle", Severity: Minor},
	}
}

// Category is one of the hazard categories from the Belcastro et al. (2017)
// analysis of civil UAV operations the paper builds on.
type Category int

// The fourteen Belcastro hazard categories.
const (
	LossOfControl Category = iota
	ControlledFlightIntoTerrain
	FlyAway
	LostCommunication
	LossOfNavigation
	PropulsionFailure
	MidAirCollision
	WildlifeStrike
	StructuralFailure
	AdverseWeather
	HumanOperatorError
	GroundStationFailure
	PayloadHazard
	CyberAttack

	// NumCategories is the number of hazard categories.
	NumCategories = 14
)

// categoryNames is indexed by Category.
var categoryNames = [NumCategories]string{
	"loss of control",
	"controlled flight into terrain/obstacle",
	"fly-away",
	"lost communication",
	"loss of navigation",
	"propulsion failure",
	"mid-air collision",
	"wildlife strike",
	"structural failure",
	"adverse weather",
	"human operator error",
	"ground station failure",
	"payload hazard",
	"cyber attack",
}

// String returns the category name.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// GroundRiskOutcomes maps a hazard category to the Table II outcomes it can
// credibly produce when it forces the UAV to the ground over a city.
func GroundRiskOutcomes(c Category) []string {
	switch c {
	case LossOfControl, PropulsionFailure, StructuralFailure:
		return []string{"R1", "R2", "R3", "R4", "R5"} // uncontrolled descent: everything
	case LossOfNavigation, LostCommunication, FlyAway:
		return []string{"R1", "R2", "R4", "R5"} // forced/blind landing
	case ControlledFlightIntoTerrain, MidAirCollision, WildlifeStrike:
		return []string{"R1", "R2", "R4"}
	case AdverseWeather, HumanOperatorError, GroundStationFailure, CyberAttack:
		return []string{"R1", "R2", "R4", "R5"}
	case PayloadHazard:
		return []string{"R2", "R3"}
	default:
		return nil
	}
}
