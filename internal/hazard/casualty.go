package hazard

import (
	"math"

	"safeland/internal/imaging"
)

// The casualty model follows the standard UAS ground-risk literature
// (Dalamagkidis et al.): probability of fatality as a logistic-like function
// of impact kinetic energy attenuated by a sheltering factor, combined with
// a lethal-area model and local population density to yield expected
// fatalities. The model backs Table II quantitatively and drives the
// risk-reduction comparison between landing strategies (experiment E8).

const (
	// alphaJ is the impact energy needed for 50% fatality probability at
	// sheltering factor 6 (Dalamagkidis).
	alphaJ = 1e6
	// betaJ is the impact energy threshold below which fatality probability
	// collapses.
	betaJ = 100.0
)

// FatalityProbability returns P(fatality) for a person struck by a UAV
// impacting with the given kinetic energy (J) under a sheltering factor
// (0.3 = open field ... 10 = industrial buildings). Monotone increasing in
// energy, decreasing in sheltering.
func FatalityProbability(kineticEnergyJ, sheltering float64) float64 {
	if kineticEnergyJ <= 0 {
		return 0
	}
	if sheltering < 0.3 {
		sheltering = 0.3
	}
	denom := 1 + math.Sqrt(alphaJ/betaJ)*math.Pow(betaJ/kineticEnergyJ, 3/sheltering)
	return 1 / denom
}

// Sheltering returns the sheltering factor offered by each surface class:
// how much protection bystanders near that surface enjoy.
func Sheltering(c imaging.Class) float64 {
	switch c {
	case imaging.Building:
		return 7.5 // occupants inside the structure
	case imaging.Tree:
		return 2.5 // canopy absorbs part of the impact
	case imaging.Road, imaging.MovingCar, imaging.StaticCar:
		return 1.0 // vehicle shells help little against a direct hit + secondary risk
	default:
		return 0.5 // open ground
	}
}

// LethalArea returns the ground area (m²) within which a person can be
// struck by a falling UAV of the given characteristic dimension (wingspan or
// rotor-tip diameter), using the standard person-radius inflation model.
func LethalArea(spanM float64) float64 {
	const personRadiusM = 0.3
	r := spanM/2 + personRadiusM
	return math.Pi * r * r
}

// Impact describes one ground impact to assess.
type Impact struct {
	// Surface is the semantic class of the impact point.
	Surface imaging.Class
	// KineticEnergyJ is the impact energy.
	KineticEnergyJ float64
	// SpanM is the UAV characteristic dimension.
	SpanM float64
	// PeoplePerM2 is the local exposed population density.
	PeoplePerM2 float64
	// TrafficFactor in [0, 1.6] scales the secondary-accident risk when the
	// surface belongs to the busy-road composite.
	TrafficFactor float64
}

// Assessment quantifies an impact.
type Assessment struct {
	PFatalityPerPerson float64
	ExpectedDirect     float64 // expected direct fatalities
	ExpectedSecondary  float64 // expected fatalities from induced road accidents
	ExpectedFatalities float64
	FireProbability    float64
	Severity           Severity
}

// Assess computes the expected outcome of an impact and classifies its
// severity on the Table I scale.
func Assess(im Impact) Assessment {
	shelter := Sheltering(im.Surface)
	p := FatalityProbability(im.KineticEnergyJ, shelter)
	area := LethalArea(im.SpanM)
	direct := im.PeoplePerM2 * area * p

	// Secondary accidents: a UAV dropping onto flowing traffic can trigger
	// multi-vehicle collisions whose expected toll greatly exceeds the
	// direct strike — the mechanism that makes R1 catastrophic in Table II.
	// Parked cars belong to the busy-road composite for avoidance purposes
	// but carry no flowing traffic.
	var secondary float64
	if im.Surface == imaging.Road || im.Surface == imaging.MovingCar {
		pAccident := math.Min(1, 0.55*im.TrafficFactor)
		const fatalitiesPerAccident = 1.8
		secondary = pAccident * fatalitiesPerAccident
	}

	// Post-crash fire driven by battery energy; more likely on vegetation.
	fire := 0.03
	if im.Surface == imaging.Tree || im.Surface == imaging.LowVegetation {
		fire = 0.12
	}

	total := direct + secondary
	return Assessment{
		PFatalityPerPerson: p,
		ExpectedDirect:     direct,
		ExpectedSecondary:  secondary,
		ExpectedFatalities: total,
		FireProbability:    fire,
		Severity:           severityFromImpact(im, total),
	}
}

// FireOutcomeSeverity rates the post-crash-fire outcome (Table II R3) on a
// given surface: a battery fire in vegetation threatens wildlife and
// environment (Serious); on mineral surfaces it stays local (Minor).
func FireOutcomeSeverity(c imaging.Class) Severity {
	if c == imaging.LowVegetation || c == imaging.Tree {
		return Serious
	}
	return Minor
}

// severityFromImpact maps the expected toll and context onto Table I.
func severityFromImpact(im Impact, expectedFatalities float64) Severity {
	switch {
	case expectedFatalities >= 1.0:
		return Catastrophic
	case expectedFatalities >= 0.25:
		return Major
	case im.Surface == imaging.Building:
		return Serious // structural/infrastructure damage
	case im.Surface == imaging.StaticCar:
		return Minor // property damage, vehicle likely unoccupied
	case expectedFatalities >= 0.02:
		return Serious
	case im.KineticEnergyJ > 500:
		return Minor // drone destroyed, slight injury potential
	default:
		return Negligible
	}
}
