package experiments

import (
	"context"
	"fmt"
	"io"

	"safeland/internal/hazard"
	"safeland/internal/imaging"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

// RunE5 reproduces the Figure 1 architecture behaviorally: it injects every
// failure kind into simulated missions and tabulates which maneuver the
// safety switch engages and how the flight ends.
//
// The missions fly as a fleet: every (repeat, scene) combination of a
// failure kind runs on its own goroutine with a shared safeland.Engine as
// the landing planner, so the perception calls are served by the worker
// pool while the flight dynamics parallelize freely. The scenes are the
// corpus-backed held-out split, shared with every other experiment in the
// process. Outcomes are collected by index and aggregated in order, and
// each mission's wind is seeded per (repeat, scene), so the table is
// byte-identical to a sequential run.
func RunE5(e *Env, w io.Writer) error {
	eng, err := e.Engine()
	if err != nil {
		return fmt.Errorf("E5: %w", err)
	}
	defer eng.Close()
	ds := e.Dataset()
	spec := uav.MediDelivery()
	// The engine planner is ctx-aware (uav.LandingPlannerCtx): the mission
	// context reaches the selection, so aborting an experiment run aborts
	// in-flight plannings mid-trial instead of waiting them out.
	ctx := context.Background()

	failures := []uav.FailureKind{
		uav.CommLossTemporary, uav.CommLossPermanent, uav.MotorDegraded,
		uav.NavigationLoss, uav.BatteryCritical, uav.EngineFailure, uav.FlightControlFault,
	}
	fmt.Fprintf(w, "  %-32s %-24s %8s %10s %12s\n", "injected failure", "maneuver engaged", "safe", "impacts", "worst sev")
	for _, fk := range failures {
		runs := e.Cfg.MissionRepeats * len(ds.Test)
		outs := make([]uav.Outcome, runs)
		fleetRun(e.Workers(), runs, func(i int) {
			rep, si := i/len(ds.Test), i%len(ds.Test)
			m := missionOn(ds.Test[si], spec, eng, 18)
			m.Wind = uav.NewWind(2, 0.5, 0.8, e.Cfg.Seed+int64(100*rep+si))
			m.Failures = []uav.TimedFailure{{AtS: 5, Kind: fk, ClearAtS: clearTime(fk)}}
			outs[i] = m.RunCtx(ctx)
		})

		var safe, impacts int
		worst := hazard.Negligible
		var maneuver uav.Maneuver
		for _, out := range outs {
			maneuver = out.Maneuver
			if out.Completed {
				safe++
			}
			if out.Impacted {
				impacts++
				if out.Assessment.Severity > worst {
					worst = out.Assessment.Severity
				}
			}
		}
		worstStr := "-"
		if impacts > 0 {
			worstStr = worst.String()
		}
		fmt.Fprintf(w, "  %-32s %-24s %3d/%-4d %10d %12s\n",
			fk.String(), maneuver.String(), safe, runs, impacts, worstStr)
	}
	fmt.Fprintln(w, "\nExpected shape: transient loss recovers (H), navigable failures return to base")
	fmt.Fprintln(w, "(RB), navigation loss lands via EL at parachute energy, control loss terminates (FT).")
	return nil
}

func clearTime(fk uav.FailureKind) float64 {
	if fk.Temporary() {
		return 15
	}
	return 0
}

// missionOn builds the standard diagonal crossing mission over a scene at
// the given local hour (the hour drives exposure densities at impact).
func missionOn(scene *urban.Scene, spec uav.Spec, planner uav.LandingPlanner, hour float64) *uav.Mission {
	wW, wH := scene.Layout.WorldW, scene.Layout.WorldH
	return &uav.Mission{
		Spec:  spec,
		Scene: scene,
		Waypoints: [][2]float64{
			{wW * 0.08, wH * 0.08},
			{wW * 0.92, wH * 0.92},
		},
		Base:    [2]float64{wW * 0.08, wH * 0.08},
		Planner: planner,
		Hour:    hour,
	}
}

// RunE6 reports dataset statistics — the Figure 3 stand-in: class balance,
// scene variety across seeds and conditions, and a sample ASCII rendering.
func RunE6(e *Env, w io.Writer) error {
	ds := e.Dataset()
	var frac [imaging.NumClasses]float64
	for _, s := range ds.Train {
		f := s.Labels.Fractions()
		for c := range frac {
			frac[c] += f[c] / float64(len(ds.Train))
		}
	}
	fmt.Fprintf(w, "Class balance over %d training scenes (%dx%d px, %.2f m/px):\n",
		len(ds.Train), ds.Train[0].Labels.W, ds.Train[0].Labels.H, ds.Train[0].MPP)
	for c := imaging.Class(0); c < imaging.NumClasses; c++ {
		bar := ""
		for i := 0; i < int(frac[c]*120); i++ {
			bar += "#"
		}
		fmt.Fprintf(w, "  %-15s %6.2f%% %s\n", c, frac[c]*100, bar)
	}

	fmt.Fprintf(w, "\nConditions: in-dist %s/%s at %.0f m; OOD %s/%s at %.0f m\n",
		ds.Train[0].Cond.Lighting, ds.Train[0].Cond.Season, ds.Train[0].Cond.AltitudeM,
		ds.OOD[0].Cond.Lighting, ds.OOD[0].Cond.Season, ds.OOD[0].Cond.AltitudeM)

	fmt.Fprintln(w, "\nSample scene ground truth ('='road, '#'building, '\"'vegetation, 'T'tree, 'c/C'cars, '!'humans):")
	fmt.Fprint(w, urban.AsciiRender(ds.Train[0].Labels, 64))
	return nil
}
