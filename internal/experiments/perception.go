package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"safeland"
	"safeland/internal/imaging"
	"safeland/internal/monitor"
	"safeland/internal/scenario"
	"safeland/internal/segment"
	"safeland/internal/urban"
)

// RunE7 is the quantified Figure 4: segmentation quality in-distribution
// vs out-of-distribution, monitor coverage of the core model's misses, and
// three sub-image case studies mirroring the paper's crops.
func RunE7(e *Env, w io.Writer) error {
	ds := e.Dataset()
	m := e.Model()
	b := e.Bayesian()
	rule := monitor.DefaultRule()

	inConf := segment.Evaluate(m, ds.Test)
	oodConf := segment.Evaluate(m, ds.OOD)
	fmt.Fprintln(w, "Core model (deterministic MSDnet):")
	fmt.Fprintf(w, "  %-18s %10s %10s %14s %14s\n", "split", "pixel acc", "mean IoU", "busy recall", "busy precision")
	fmt.Fprintf(w, "  %-18s %10.3f %10.3f %14.3f %14.3f\n", "in-distribution",
		inConf.PixelAccuracy(), inConf.MeanIoU(), inConf.BusyRoadRecall(), inConf.BusyRoadPrecision())
	fmt.Fprintf(w, "  %-18s %10.3f %10.3f %14.3f %14.3f\n", "OOD (sunset)",
		oodConf.PixelAccuracy(), oodConf.MeanIoU(), oodConf.BusyRoadRecall(), oodConf.BusyRoadPrecision())

	qIn := monitor.Evaluate(b, ds.Test, rule)
	qOOD := monitor.Evaluate(b, ds.OOD, rule)
	fmt.Fprintln(w, "\nBayesian monitor (10-sample MC dropout, µ+3σ ≤ 0.125 per busy-road class):")
	fmt.Fprintf(w, "  %-18s %16s %16s %12s\n", "split", "miss coverage", "false warnings", "flagged")
	fmt.Fprintf(w, "  %-18s %16.3f %16.3f %12.3f\n", "in-distribution",
		qIn.HazardMissCoverage, qIn.FalseWarningRate, qIn.FlaggedFraction)
	fmt.Fprintf(w, "  %-18s %16.3f %16.3f %12.3f\n", "OOD (sunset)",
		qOOD.HazardMissCoverage, qOOD.FalseWarningRate, qOOD.FlaggedFraction)

	fmt.Fprintln(w, "\nPaper's qualitative claims, quantified:")
	fmt.Fprintf(w, "  - model \"performs reasonably well\" in-dist: busy-road recall %.3f\n", qIn.CoreBusyRecall)
	fmt.Fprintf(w, "  - model \"clearly fails\" on OOD: busy-road recall %.3f\n", qOOD.CoreBusyRecall)
	fmt.Fprintf(w, "  - monitor \"flags a large part of missed roads\": OOD miss coverage %.3f\n", qOOD.HazardMissCoverage)

	// Sub-image case studies (the paper's Figure 4 crops): a road crop, a
	// safe crop, and an OOD road crop missed by the model. Confirmation
	// uses the pipeline's zone tolerance (a flagged boundary rim is
	// acceptable), matching how the Decision Module consumes verdicts.
	zoneRule := rule
	zoneRule.MaxFlaggedFraction = 0.25 // the pipeline's zone tolerance
	fmt.Fprintln(w, "\nSub-image case studies (analogue of the paper's Figure 4 crops):")
	caseStudy(w, b, zoneRule, ds.Test[0], "4a-road  (in-dist, contains road)", true)
	caseStudy(w, b, zoneRule, ds.Test[0], "4a-safe  (in-dist, road-free)", false)
	caseStudy(w, b, zoneRule, ds.OOD[0], "4b-road  (OOD sunset, contains road)", true)
	caseStudy(w, b, zoneRule, ds.OOD[0], "4b-safe  (OOD sunset, road-free)", false)

	// End-to-end zone availability: the full Figure 2 pipeline served over
	// the Engine worker pool, each split's held-out scenes streamed through
	// Engine.Serve from the shared corpus (pure cache hits — the dataset
	// already resolved them). This is the operational consequence of the
	// monitor's conservatism — a distribution shift that inflates
	// uncertainty costs confirmed zones.
	eng, err := e.Engine()
	if err != nil {
		return fmt.Errorf("E7: %w", err)
	}
	defer eng.Close()
	_, testSpecs, oodSpecs := e.datasetSpecs()
	fmt.Fprintln(w, "\nZone availability, full pipeline streamed through Engine.Serve:")
	for _, split := range []struct {
		name  string
		specs []scenario.Spec
	}{{"in-distribution", testSpecs}, {"OOD (sunset)", oodSpecs}} {
		confirmed, trials := 0, 0
		for si, resp := range e.Fleet(context.Background(), eng, split.specs, scenario.SceneRequest) {
			if resp.Err != nil {
				return fmt.Errorf("E7 %s scene %d: %w", split.name, si, resp.Err)
			}
			if resp.Result.Confirmed {
				confirmed++
			}
			trials += len(resp.Result.Trials)
		}
		fmt.Fprintf(w, "  %-18s confirmed %d/%d scenes, %.1f monitor trials/scene\n",
			split.name, confirmed, len(split.specs), float64(trials)/float64(len(split.specs)))
	}
	return nil
}

// caseStudy crops a window of the requested kind from the scene, verifies
// it, and prints the verdict (plus the paper's expectation).
func caseStudy(w io.Writer, b *monitor.Bayesian, rule monitor.Rule, s *urban.Scene, label string, wantRoad bool) {
	const win = 48
	ci := imaging.NewClassIntegral(s.Labels)
	bestX, bestY, bestFr := -1, -1, -1.0
	for y := 0; y+win <= s.Labels.H; y += 8 {
		for x := 0; x+win <= s.Labels.W; x += 8 {
			fr := ci.BusyRoadFraction(x, y, x+win, y+win)
			if wantRoad {
				if fr > bestFr {
					bestX, bestY, bestFr = x, y, fr
				}
			} else {
				if bestFr < 0 || fr < bestFr {
					bestX, bestY, bestFr = x, y, fr
				}
			}
		}
	}
	if bestX < 0 || (wantRoad && bestFr < 0.05) || (!wantRoad && bestFr > 0) {
		fmt.Fprintf(w, "  %-52s (no suitable crop in scene)\n", label)
		return
	}
	sub := s.Image.Crop(bestX, bestY, win, win)
	v := b.VerifyRegion(sub, rule)
	fmt.Fprintf(w, "  %-52s truth-road %4.2f  flagged %5.3f  max(µ+3σ) %5.2f  confirmed=%v\n",
		label, bestFr, v.FlaggedFraction, v.MaxScore, v.Confirmed)
}

// RunE9 reproduces the Section V-B timing argument: Bayesian verification
// of a pre-selected sub-image is tractable; a full frame is not. The paper
// reports <5 s for 1024² vs >60 s for 3840×2160 on a Quadro P5000; the
// hardware-independent shape is the ratio ≈ pixel ratio ≈ 7.9×.
func RunE9(e *Env, w io.Writer) error {
	b := e.Bayesian()
	// Paper-proportional resolutions scaled to CPU: the full frame keeps
	// the 16:9 aspect, the sub-image keeps the 1024/3840 linear fraction.
	fullW, fullH := 384, 216
	subSide := 102 // 384 * 1024/3840 = 102.4
	if e.Cfg.SceneSize < 192 {
		fullW, fullH = 192, 108
		subSide = 52
	}
	cfg := e.SceneConfig()
	cfg.W, cfg.H = fullW, fullH
	scene := urban.Generate(cfg, urban.DefaultConditions(), e.Cfg.Seed+90)
	sub := scene.Image.Crop(0, 0, evenInt(subSide), evenInt(subSide))

	rule := monitor.DefaultRule()
	t0 := time.Now()
	b.VerifyRegion(sub, rule)
	subTime := time.Since(t0)

	t0 = time.Now()
	b.VerifyRegion(scene.Image, rule)
	fullTime := time.Since(t0)

	pixelRatio := float64(fullW*fullH) / float64(evenInt(subSide)*evenInt(subSide))
	fmt.Fprintf(w, "Monte-Carlo samples: %d\n", b.Samples)
	fmt.Fprintf(w, "  sub-image  %4dx%-4d : %10v\n", evenInt(subSide), evenInt(subSide), subTime)
	fmt.Fprintf(w, "  full frame %4dx%-4d : %10v\n", fullW, fullH, fullTime)
	fmt.Fprintf(w, "  measured ratio %.1fx, pixel ratio %.1fx (paper: >12x at 7.9x pixels)\n",
		float64(fullTime)/float64(subTime), pixelRatio)

	fmt.Fprintln(w, "\nScaling in MC samples (sub-image):")
	for _, n := range []int{2, 5, 10} {
		bn := e.Bayesian()
		bn.Samples = n
		t0 = time.Now()
		bn.VerifyRegion(sub, rule)
		fmt.Fprintf(w, "  %2d samples: %10v\n", n, time.Since(t0))
	}

	// The timing fleet: the full monitored selection over a stream of
	// emergency scenes, served once on a single worker and once on the
	// configured pool. The scenes flow from the shared corpus through
	// Engine.Serve — the single-worker pass generates them just ahead of
	// consumption, the pool pass replays them from cache. On a multi-core
	// runner the pool cuts wall-clock near-linearly until the
	// internally-parallel forward passes contend; the responses themselves
	// are byte-identical (per-call monitor reseeding), so the speedup is
	// free of result drift.
	fleetSpecs := scenario.Set(e.SceneConfig(), urban.DefaultConditions(), e.Cfg.CompareScenes, e.Cfg.Seed+91)
	fleetReq := func(_ int, s *urban.Scene) safeland.SelectRequest {
		return safeland.SelectRequest{Scene: s}
	}
	fmt.Fprintf(w, "\nSelection fleet: %d scenes (%dpx) streamed through Engine.Serve:\n",
		len(fleetSpecs), e.Cfg.SceneSize)
	pools := []int{1}
	if e.Workers() > 1 {
		pools = append(pools, e.Workers())
	}
	wall := make([]time.Duration, len(pools))
	for i, workers := range pools {
		eng, err := e.EngineWith(safeland.PipelineSelector(), workers)
		if err != nil {
			return fmt.Errorf("E9: %w", err)
		}
		t0 = time.Now()
		for si, resp := range e.Fleet(context.Background(), eng, fleetSpecs, fleetReq) {
			if resp.Err != nil {
				eng.Close()
				return fmt.Errorf("E9 scene %d: %w", si, resp.Err)
			}
		}
		wall[i] = time.Since(t0)
		// Release this pool's parallelism share before the next pool is
		// timed: a stale reservation would shrink its per-op fan-out.
		eng.Close()
		fmt.Fprintf(w, "  %d worker(s): %10v\n", workers, wall[i])
	}
	if len(wall) > 1 && wall[1] > 0 {
		fmt.Fprintf(w, "  batch speedup %.2fx at %d workers (GOMAXPROCS %d)\n",
			float64(wall[0])/float64(wall[1]), e.Workers(), runtime.GOMAXPROCS(0))
	}

	fmt.Fprintln(w, "\nConclusion: verifying only pre-selected sub-images (Figure 2 architecture) is")
	fmt.Fprintln(w, "what makes runtime Bayesian monitoring feasible on embedded hardware.")
	return nil
}

func evenInt(v int) int {
	if v%2 == 1 {
		return v + 1
	}
	return v
}

// RunE10 is the quantitative monitor study the paper's conclusion calls
// for: τ sweep, confidence-interval width ablation, MC sample count, and
// dropout-rate ablation.
func RunE10(e *Env, w io.Writer) error {
	ds := e.Dataset()
	b := e.Bayesian()

	evalScenes := ds.OOD
	if len(evalScenes) > 2 {
		evalScenes = evalScenes[:2]
	}

	fmt.Fprintln(w, "τ sweep (3σ rule, OOD scenes) — detection of model-missed road vs false warnings:")
	taus := []float32{0.05, 0.08, 0.125, 0.2, 0.3, 0.5}
	fmt.Fprintf(w, "  %8s %16s %16s %12s\n", "tau", "miss coverage", "false warnings", "flagged")
	for _, pt := range monitor.SweepTau(b, evalScenes, taus, 3) {
		marker := ""
		if pt.Tau == 0.125 {
			marker = "  <- paper's τ=1/8"
		}
		fmt.Fprintf(w, "  %8.3f %16.3f %16.3f %12.3f%s\n",
			pt.Tau, pt.Quality.HazardMissCoverage, pt.Quality.FalseWarningRate, pt.Quality.FlaggedFraction, marker)
	}

	fmt.Fprintln(w, "\nConfidence-interval width (τ=0.125, OOD) — the conservatism ablation:")
	fmt.Fprintf(w, "  %8s %16s %16s\n", "σ mult", "miss coverage", "false warnings")
	for _, k := range []float32{0, 1, 2, 3} {
		q := monitor.Evaluate(b, evalScenes, monitor.Rule{Tau: 0.125, Sigmas: k})
		marker := ""
		if k == 3 {
			marker = "  <- paper's 99.7% interval"
		}
		fmt.Fprintf(w, "  %8.0f %16.3f %16.3f%s\n", k, q.HazardMissCoverage, q.FalseWarningRate, marker)
	}

	fmt.Fprintln(w, "\nMC sample count (τ=0.125, 3σ, OOD):")
	fmt.Fprintf(w, "  %8s %16s %16s\n", "samples", "miss coverage", "false warnings")
	// Each sample count evaluates on its own frozen-weights monitor replica,
	// so the rows run as a fleet; results are collected by index and printed
	// in order, keeping the table identical to a sequential sweep.
	counts := []int{2, 5, 10, 20}
	countQ := make([]monitor.Quality, len(counts))
	countErr := make([]error, len(counts))
	fleetRun(e.Workers(), len(counts), func(i int) {
		bn, err := e.BayesianReplica()
		if err != nil {
			countErr[i] = err
			return
		}
		bn.Samples = counts[i]
		countQ[i] = monitor.Evaluate(bn, evalScenes, monitor.DefaultRule())
	})
	for i, n := range counts {
		if countErr[i] != nil {
			return fmt.Errorf("E10 samples=%d: %w", n, countErr[i])
		}
		marker := ""
		if n == 10 {
			marker = "  <- paper's setting"
		}
		fmt.Fprintf(w, "  %8d %16.3f %16.3f%s\n", n, countQ[i].HazardMissCoverage, countQ[i].FalseWarningRate, marker)
	}

	fmt.Fprintln(w, "\nUncertainty-signal comparison (paper future work: 'other uncertainty")
	fmt.Fprintln(w, "estimation techniques'; OOD scenes, threshold sweeps per signal):")
	fmt.Fprintf(w, "  %-22s %10s %16s %16s\n", "signal", "threshold", "miss coverage", "false warnings")
	signals := []struct {
		kind monitor.UncertaintyKind
		thrs []float32
	}{
		{monitor.SigmaInterval, []float32{0.08, 0.125, 0.2}},
		{monitor.PredictiveEntropy, []float32{0.3, 0.6, 1.0}},
		{monitor.MutualInformation, []float32{0.05, 0.12, 0.25}},
	}
	for _, sig := range signals {
		for _, pt := range monitor.SweepSignal(b, evalScenes, sig.kind, sig.thrs) {
			fmt.Fprintf(w, "  %-22s %10.3f %16.3f %16.3f\n",
				pt.Kind, pt.Threshold, pt.Quality.HazardMissCoverage, pt.Quality.FalseWarningRate)
		}
	}

	fmt.Fprintln(w, "\nDropout-rate ablation (retrained models, τ=0.125, 3σ, OOD):")
	fmt.Fprintf(w, "  %8s %16s %16s %14s\n", "rate", "miss coverage", "false warnings", "in-dist acc")
	// Each rate retrains an independent seeded model, so the whole ablation
	// is a fleet of train-and-evaluate jobs; ordered collection keeps the
	// table deterministic.
	rates := []float64{0.1, 0.3, 0.5}
	type ablation struct {
		q   monitor.Quality
		acc float64
	}
	abl := make([]ablation, len(rates))
	fleetRun(e.Workers(), len(rates), func(i int) {
		p := rates[i]
		mcfg := segment.DefaultConfig()
		mcfg.DropoutP = p
		mcfg.Seed = e.Cfg.Seed + int64(p*100)
		m := segment.New(mcfg)
		segment.Train(m, ds.Train, segment.TrainConfig{
			Steps:    e.Cfg.TrainSteps / 2,
			Batch:    2,
			CropSize: e.Cfg.CropSize,
			LR:       e.Cfg.TrainLR,
			Seed:     e.Cfg.Seed + 7,
		})
		bm := monitor.NewBayesian(m, e.Cfg.Seed+8)
		bm.Samples = e.Cfg.MCSamples
		abl[i] = ablation{
			q:   monitor.Evaluate(bm, evalScenes, monitor.DefaultRule()),
			acc: segment.Evaluate(m, ds.Test[:1]).PixelAccuracy(),
		}
	})
	for i, p := range rates {
		marker := ""
		if p == 0.5 {
			marker = "  <- paper's setting"
		}
		fmt.Fprintf(w, "  %8.1f %16.3f %16.3f %14.3f%s\n",
			p, abl[i].q.HazardMissCoverage, abl[i].q.FalseWarningRate, abl[i].acc, marker)
	}
	return nil
}
