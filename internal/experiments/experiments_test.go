package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var sharedEnv struct {
	once sync.Once
	env  *Env
}

// quickEnv returns one shared quick-scale environment: the trained model is
// reused across experiment tests.
func quickEnv(t *testing.T) *Env {
	t.Helper()
	sharedEnv.once.Do(func() {
		sharedEnv.env = NewEnv(QuickConfig(), nil)
	})
	return sharedEnv.env
}

func TestRegistryComplete(t *testing.T) {
	exps := All()
	if len(exps) != 10 {
		t.Fatalf("registry has %d experiments, want 10 (E1–E10)", len(exps))
	}
	seen := map[string]bool{}
	for i, exp := range exps {
		want := "E" + string(rune('1'+i))
		if i == 9 {
			want = "E10"
		}
		if exp.ID != want {
			t.Errorf("experiment %d has ID %q, want %q", i, exp.ID, want)
		}
		if exp.Title == "" || exp.Run == nil {
			t.Errorf("experiment %s incomplete", exp.ID)
		}
		if seen[exp.ID] {
			t.Errorf("duplicate experiment ID %s", exp.ID)
		}
		seen[exp.ID] = true
	}
}

func TestRunByIDUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunByID("E99", quickEnv(t), &buf); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestE1Severity(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE1(quickEnv(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Catastrophic", "Multiple fatal injuries", "8230"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q", want)
		}
	}
}

func TestE2TableII(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE2(quickEnv(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "WARNING") {
		t.Errorf("E2 derived severities diverge from Table II:\n%s", out)
	}
	for _, id := range []string{"R1", "R2", "R3", "R4", "R5"} {
		if !strings.Contains(out, id) {
			t.Errorf("E2 missing outcome %s", id)
		}
	}
}

func TestE3SORANumbers(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE3(quickEnv(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"48.5", "8.23", "final GRC 6", "SAIL V", "final GRC 7", "SAIL VI", "final GRC 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 output missing %q:\n%s", want, out)
		}
	}
}

func TestE4Criteria(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE4(quickEnv(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table III", "Table IV", "EL-A-M3", "robustness"} {
		if !strings.Contains(out, want) {
			t.Errorf("E4 output missing %q", want)
		}
	}
}

func TestE6DatasetStats(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE6(quickEnv(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"road", "building", "sunset", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("E6 output missing %q", want)
		}
	}
}

// TestE5E7E8E9E10 exercises the model-dependent experiments end to end at
// quick scale; correctness of the numbers is asserted loosely (shapes), the
// full-scale run is cmd/elbench's job.
func TestE5E7E8E9E10(t *testing.T) {
	if testing.Short() {
		t.Skip("trained-model experiments")
	}
	env := quickEnv(t)
	for _, id := range []string{"E7", "E5", "E8", "E9", "E10"} {
		var buf bytes.Buffer
		if err := RunByID(id, env, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
		t.Logf("%s output:\n%s", id, buf.String())
	}
}
