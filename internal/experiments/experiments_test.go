package experiments

import (
	"bytes"
	"io"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"safeland/internal/nn"
	"safeland/internal/scenario"
)

var sharedEnv struct {
	once sync.Once
	env  *Env
}

// quickEnv returns one shared quick-scale environment: the trained model is
// reused across experiment tests.
func quickEnv(t *testing.T) *Env {
	t.Helper()
	sharedEnv.once.Do(func() {
		sharedEnv.env = NewEnv(QuickConfig(), nil)
	})
	return sharedEnv.env
}

func TestRegistryComplete(t *testing.T) {
	exps := All()
	wantIDs := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}
	if len(exps) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d (E1–E14)", len(exps), len(wantIDs))
	}
	seen := map[string]bool{}
	for i, exp := range exps {
		if exp.ID != wantIDs[i] {
			t.Errorf("experiment %d has ID %q, want %q", i, exp.ID, wantIDs[i])
		}
		if exp.Title == "" || exp.Run == nil {
			t.Errorf("experiment %s incomplete", exp.ID)
		}
		if seen[exp.ID] {
			t.Errorf("duplicate experiment ID %s", exp.ID)
		}
		seen[exp.ID] = true
	}
}

func TestRunByIDUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunByID("E99", quickEnv(t), &buf); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestE1Severity(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE1(quickEnv(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Catastrophic", "Multiple fatal injuries", "8230"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q", want)
		}
	}
}

func TestE2TableII(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE2(quickEnv(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "WARNING") {
		t.Errorf("E2 derived severities diverge from Table II:\n%s", out)
	}
	for _, id := range []string{"R1", "R2", "R3", "R4", "R5"} {
		if !strings.Contains(out, id) {
			t.Errorf("E2 missing outcome %s", id)
		}
	}
}

func TestE3SORANumbers(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE3(quickEnv(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"48.5", "8.23", "final GRC 6", "SAIL V", "final GRC 7", "SAIL VI", "final GRC 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 output missing %q:\n%s", want, out)
		}
	}
}

func TestE4Criteria(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE4(quickEnv(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table III", "Table IV", "EL-A-M3", "robustness"} {
		if !strings.Contains(out, want) {
			t.Errorf("E4 output missing %q", want)
		}
	}
}

func TestE6DatasetStats(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE6(quickEnv(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"road", "building", "sunset", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("E6 output missing %q", want)
		}
	}
}

// TestE5E7E8E9E10 exercises the model-dependent experiments end to end at
// quick scale; correctness of the numbers is asserted loosely (shapes), the
// full-scale run is cmd/elbench's job.
func TestE5E7E8E9E10(t *testing.T) {
	if testing.Short() {
		t.Skip("trained-model experiments")
	}
	env := quickEnv(t)
	for _, id := range []string{"E7", "E5", "E8", "E9", "E10"} {
		var buf bytes.Buffer
		if err := RunByID(id, env, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
		t.Logf("%s output:\n%s", id, buf.String())
	}
}

// TestE12FullFrame runs the full-frame monitoring comparison at quick
// scale: the in-experiment parity spot check must pass, no tile may fall
// back to the naive path on the standard model shape, and everything but
// the wall-clock lines must be deterministic across runs.
func TestE12FullFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("trained-model experiment")
	}
	env := quickEnv(t)
	var first, second bytes.Buffer
	if err := RunE12(env, &first); err != nil {
		t.Fatal(err)
	}
	out := first.String()
	for _, want := range []string{"crop-only", "full-frame", "Parity spot check", "acceptance budget", "disputed"} {
		if !strings.Contains(out, want) {
			t.Errorf("E12 output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("E12 tiles fell back to the naive per-crop path:\n%s", out)
	}
	if err := RunE12(env, &second); err != nil {
		t.Fatal(err)
	}
	if maskTimings(first.String()) != maskTimings(second.String()) {
		t.Errorf("E12 report not deterministic:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
}

// TestE13Sessions runs the descent-session comparison at quick scale: the
// in-experiment reuse-disabled parity check must pass, the temporal fast
// path must actually engage somewhere in the splits, and everything but
// the wall-clock figures must be deterministic across runs.
func TestE13Sessions(t *testing.T) {
	if testing.Short() {
		t.Skip("trained-model experiment")
	}
	env := quickEnv(t)
	var first, second bytes.Buffer
	if err := RunE13(env, &first); err != nil {
		t.Fatal(err)
	}
	out := first.String()
	for _, want := range []string{"session", "Parity spot check", "agreement", "Engine stats"} {
		if !strings.Contains(out, want) {
			t.Errorf("E13 output missing %q:\n%s", want, out)
		}
	}
	if err := RunE13(env, &second); err != nil {
		t.Fatal(err)
	}
	if maskTimings(first.String()) != maskTimings(second.String()) {
		t.Errorf("E13 report not deterministic:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
	t.Logf("E13 output:\n%s", out)
}

// descentTableBlock extracts the per-split descent table (header line plus
// its rows) from an experiment report — the block E14's fault-free arm
// must reproduce byte-identically from E13.
func descentTableBlock(t *testing.T, out string) string {
	t.Helper()
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if !strings.HasPrefix(l, "  split") {
			continue
		}
		j := i + 1
		for j < len(lines) && (strings.HasPrefix(lines[j], "  in-distribution") || strings.HasPrefix(lines[j], "  OOD")) {
			j++
		}
		return strings.Join(lines[i:j], "\n")
	}
	t.Fatalf("no descent table in output:\n%s", out)
	return ""
}

// TestE14ChaosDrill runs the chaos drill at quick scale. The in-experiment
// assertions already enforce the serving contract (zero hard-failed
// frames, degraded verdicts never confirmed, honest fleet counters); here
// we additionally pin the fault-free arm byte-identical to E13's table
// (timings masked — the numbers that survive masking are the verdicts),
// check the published schedule actually appears, and pin the whole report
// deterministic across runs.
func TestE14ChaosDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("trained-model experiment")
	}
	env := quickEnv(t)
	var e13, first, second bytes.Buffer
	if err := RunE13(env, &e13); err != nil {
		t.Fatal(err)
	}
	if err := RunE14(env, &first); err != nil {
		t.Fatal(err)
	}
	out := first.String()
	for _, want := range []string{
		"Published fault schedule", "shard-blackout@shard0", "Chaos arm",
		"Fleet counters", "Zero hard-failed frames", "degraded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E14 output missing %q:\n%s", want, out)
		}
	}
	ffTable := descentTableBlock(t, out)
	e13Table := descentTableBlock(t, e13.String())
	if maskTimings(ffTable) != maskTimings(e13Table) {
		t.Errorf("E14 fault-free arm diverges from E13's table:\n--- E13 ---\n%s\n--- E14 ---\n%s",
			e13Table, ffTable)
	}
	if err := RunE14(env, &second); err != nil {
		t.Fatal(err)
	}
	if maskTimings(first.String()) != maskTimings(second.String()) {
		t.Errorf("E14 report not deterministic:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
	t.Logf("E14 output:\n%s", out)
}

// TestE8ParallelMatchesSequential is the fleet-layer acceptance check: the
// E8 strategy-comparison report must be byte-identical whether the scene
// fleet runs on one Engine worker or four. The shared trained model is
// reused across both runs; only Cfg.Workers differs.
func TestE8ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("trained-model experiment")
	}
	env := quickEnv(t)
	restore := env.Cfg.Workers
	defer func() { env.Cfg.Workers = restore }()

	var seq, par bytes.Buffer
	env.Cfg.Workers = 1
	if err := RunE8(env, &seq); err != nil {
		t.Fatal(err)
	}
	env.Cfg.Workers = 4
	if err := RunE8(env, &par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("E8 report diverges between 1 and 4 workers:\n--- sequential ---\n%s\n--- 4 workers ---\n%s",
			seq.String(), par.String())
	}
}

// TestExperimentsStreamMatchesBatch is the streaming-migration acceptance
// check at the experiments layer: the E8 and E9 reports produced by
// streaming scene fleets through Corpus.Stream + Engine.Serve must be
// byte-identical to the materialized SelectBatch path, at 1 worker and at
// a pool (E9's wall-clock lines are masked — they measure, not report,
// determinism).
func TestExperimentsStreamMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("trained-model experiment")
	}
	env := quickEnv(t)
	restoreWorkers, restoreBatch := env.Cfg.Workers, env.batchFleet
	defer func() { env.Cfg.Workers, env.batchFleet = restoreWorkers, restoreBatch }()

	runs := []struct {
		name    string
		workers int
		batch   bool
	}{
		{"batch-1", 1, true},
		{"stream-1", 1, false},
		{"batch-4", 4, true},
		{"stream-4", 4, false},
	}
	// E8 prints no measurements: every run — batch or stream, 1 or 4
	// workers — must be byte-identical.
	var e8Ref string
	for _, r := range runs {
		env.Cfg.Workers, env.batchFleet = r.workers, r.batch
		var buf bytes.Buffer
		if err := RunE8(env, &buf); err != nil {
			t.Fatalf("E8 %s: %v", r.name, err)
		}
		if e8Ref == "" {
			e8Ref = buf.String()
			continue
		}
		if buf.String() != e8Ref {
			t.Errorf("E8 %s report diverges:\n--- %s ---\n%s\n--- reference ---\n%s",
				r.name, r.name, buf.String(), e8Ref)
		}
	}

	// E9's report shape depends on the worker count (the pool pass and
	// speedup line only exist with workers > 1), so stream is compared to
	// batch at each count, with the wall-clock figures masked.
	for _, workers := range []int{1, 4} {
		var byMode [2]string
		for mode, batch := range []bool{true, false} {
			env.Cfg.Workers, env.batchFleet = workers, batch
			var buf bytes.Buffer
			if err := RunE9(env, &buf); err != nil {
				t.Fatalf("E9 workers=%d batch=%v: %v", workers, batch, err)
			}
			byMode[mode] = maskTimings(buf.String())
		}
		if byMode[0] != byMode[1] {
			t.Errorf("E9 stream diverges from batch at %d workers:\n--- batch ---\n%s\n--- stream ---\n%s",
				workers, byMode[0], byMode[1])
		}
	}
}

// timingRe matches Go duration strings (multi-unit alternatives ordered
// longest-first so "800ms" doesn't half-match as "800m"+"s"), their %10v
// padding, speedup/ratio factors and the GOMAXPROCS figure — the measured
// (non-deterministic) parts of E9.
var timingRe = regexp.MustCompile(`\s*(\d+(\.\d+)?(ms|µs|ns|h|m|s))+|\d+(\.\d+)?x|GOMAXPROCS \d+`)

func maskTimings(s string) string { return timingRe.ReplaceAllString(s, "•") }

// TestRepeatedEnvHitsSceneCache pins the shared-generation guarantee: two
// Envs with the same configuration resolve their datasets from one corpus,
// and the second pays zero scene generations.
func TestRepeatedEnvHitsSceneCache(t *testing.T) {
	corpus := scenario.NewCorpus()

	first := NewEnv(QuickConfig(), nil)
	first.Corpus = corpus
	first.Dataset()
	st := corpus.Stats()
	wantScenes := int64(first.Cfg.TrainScenes + first.Cfg.TestScenes + first.Cfg.OODScenes)
	if st.Generated != wantScenes {
		t.Fatalf("first env generated %d scenes, want %d", st.Generated, wantScenes)
	}

	second := NewEnv(QuickConfig(), nil)
	second.Corpus = corpus
	ds := second.Dataset()
	st2 := corpus.Stats()
	if st2.Generated != wantScenes {
		t.Fatalf("repeated env regenerated scenes: %d generations, want %d", st2.Generated, wantScenes)
	}
	if st2.Hits-st.Hits != wantScenes {
		t.Fatalf("repeated env hit the cache %d times, want %d", st2.Hits-st.Hits, wantScenes)
	}
	if ds.Train[0] != first.Dataset().Train[0] {
		t.Fatal("repeated env did not receive the cached scene instances")
	}

	// NewEnv defaults to the process-wide shared corpus.
	if NewEnv(QuickConfig(), nil).Corpus != scenario.Shared() {
		t.Fatal("NewEnv does not default to the shared corpus")
	}
}

// TestEngineSharesEnvModelWeights pins the fleet memory layout at the
// experiments layer: an Env-built engine wraps the Env's cached trained
// model (no retraining per engine), and a monitor replica aliases its
// parameter tensors instead of copying them — worker replicas are built
// from the same frozen-weights Clone path.
func TestEngineSharesEnvModelWeights(t *testing.T) {
	if testing.Short() {
		t.Skip("trained-model experiment")
	}
	env := quickEnv(t)
	eng, err := env.Engine()
	if err != nil {
		t.Fatal(err)
	}
	src := env.Model()
	if eng.System().Pipeline.Model != src {
		t.Fatal("engine source system does not wrap the env's trained model")
	}
	rep, err := env.BayesianReplica()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model == src {
		t.Fatal("monitor replica shares the model instance (must be a clone)")
	}
	if !nn.SharesParams(rep.Model.Net, src.Net) {
		t.Fatal("monitor replica copied the weights instead of sharing them")
	}
}

func TestFleetRunCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 17
		var hits [n]atomic.Int32
		fleetRun(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
	fleetRun(4, 0, func(int) { t.Fatal("fn called for empty fleet") })
}

func benchmarkExperimentE8(b *testing.B, workers int) {
	sharedEnv.once.Do(func() {
		sharedEnv.env = NewEnv(QuickConfig(), nil)
	})
	env := sharedEnv.env
	restore := env.Cfg.Workers
	defer func() { env.Cfg.Workers = restore }()
	env.Cfg.Workers = workers
	env.Model() // pay the training fixture outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := RunE8(env, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentE8Workers{1,4,8} trace the strategy-fleet scaling
// curve; on a multi-core runner the 4-worker point should beat 1 worker
// while producing byte-identical reports (TestE8ParallelMatchesSequential).
func BenchmarkExperimentE8Workers1(b *testing.B) { benchmarkExperimentE8(b, 1) }

func BenchmarkExperimentE8Workers4(b *testing.B) { benchmarkExperimentE8(b, 4) }

func BenchmarkExperimentE8Workers8(b *testing.B) { benchmarkExperimentE8(b, 8) }
