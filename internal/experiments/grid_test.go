package experiments

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"safeland/internal/hazard"
	"safeland/internal/scenario"
)

// TestMarginalsByAggregatesExactly pins the per-axis marginal aggregation
// on known synthetic outcomes: counts, fatality sums, severity histograms
// and group order must match exactly.
func TestMarginalsByAggregatesExactly(t *testing.T) {
	values := []string{"a", "b", "a", "c", "b", "a"}
	outs := []gridOutcome{
		{Confirmed: true, Landed: true, Impacted: true, Severity: hazard.Minor, Fatalities: 0.25},
		{Rejected: true, Impacted: true, Severity: hazard.Catastrophic, Fatalities: 1.5},
		{Confirmed: true, Impacted: true, Severity: hazard.Major, Fatalities: 0.5},
		{}, // no candidates, no impact
		{Confirmed: true, Landed: true, Impacted: true, Severity: hazard.Negligible},
		{Rejected: true, Impacted: true, Severity: hazard.Minor, Fatalities: 0.25},
	}
	want := []axisMarginal{
		{Value: "a", N: 3, Confirmed: 2, Rejected: 1, Landed: 1, Fatalities: 1.0,
			Severities: map[hazard.Severity]int{hazard.Minor: 2, hazard.Major: 1}},
		{Value: "b", N: 2, Confirmed: 1, Rejected: 1, Landed: 1, Fatalities: 1.5,
			Severities: map[hazard.Severity]int{hazard.Catastrophic: 1, hazard.Negligible: 1}},
		{Value: "c", N: 1, Severities: map[hazard.Severity]int{}},
	}
	got := marginalsBy(values, outs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("marginals mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Modal severity: plain majority for "a", tie broken toward the higher
	// level for "b", Negligible for the impact-free "c".
	for i, wantSev := range []hazard.Severity{hazard.Minor, hazard.Catastrophic, hazard.Negligible} {
		if got[i].ModalSeverity() != wantSev {
			t.Errorf("group %q modal severity = %s, want %s", got[i].Value, got[i].ModalSeverity(), wantSev)
		}
	}

	if len(marginalsBy(nil, nil)) != 0 {
		t.Fatal("empty input must produce no marginals")
	}
}

// TestE11ParallelMatchesSequential is the grid-fleet acceptance check,
// mirroring the E8/E9 pins: the E11 report must be byte-identical whether
// the scenario fleet runs on one Engine worker or four. E11 prints no
// wall-clock measurements, so the comparison is raw bytes (maskTimings is
// applied anyway so a future timing line fails loudly in review, not here).
func TestE11ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("trained-model experiment")
	}
	env := quickEnv(t)
	restoreWorkers, restoreGrid := env.Cfg.Workers, env.Cfg.Grid
	defer func() { env.Cfg.Workers, env.Cfg.Grid = restoreWorkers, restoreGrid }()
	// A 2-per-axis sub-grid (32 scenarios, 8 scenes) keeps the double run
	// test-budget friendly; it still spans every axis, which is what the
	// determinism pin needs.
	env.Cfg.Grid = scenario.DefaultAxes().Truncate(2)

	var seq, par bytes.Buffer
	env.Cfg.Workers = 1
	if err := RunE11(env, &seq); err != nil {
		t.Fatal(err)
	}
	env.Cfg.Workers = 4
	if err := RunE11(env, &par); err != nil {
		t.Fatal(err)
	}
	if maskTimings(seq.String()) != maskTimings(par.String()) {
		t.Errorf("E11 report diverges between 1 and 4 workers:\n--- sequential ---\n%s\n--- 4 workers ---\n%s",
			seq.String(), par.String())
	}
}

// TestE11EngineStatsGridDedup pins the 243→27 dedup on the production path
// for the default grid: the fleet's scene traffic, observed through
// Engine.Stats' corpus counters, must be exactly 27 generations and 216
// in-memory cache hits — one generation per layout × density × hour cell,
// every wind × failure variant served from cache.
func TestE11EngineStatsGridDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("trained-model experiment")
	}
	env := quickEnv(t)
	env.Model() // resolve dataset + model on the shared corpus first
	restoreCorpus := env.Corpus
	defer func() { env.Corpus = restoreCorpus }()
	env.Corpus = scenario.NewCorpus() // isolate the grid's cache traffic

	axes := scenario.DefaultAxes()
	scens, err := axes.Enumerate(env.Cfg.SceneSize, env.Cfg.Seed+110)
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 243 || axes.DistinctScenes() != 27 {
		t.Fatalf("default grid is %d scenarios / %d scenes, want 243 / 27", len(scens), axes.DistinctScenes())
	}
	eng, err := env.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := gridSelect(env, eng, scens); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Corpus.Generated != 27 {
		t.Errorf("default grid generated %d scenes, want 27", st.Corpus.Generated)
	}
	if st.Corpus.Hits != 216 {
		t.Errorf("default grid hit the cache %d times, want 216", st.Corpus.Hits)
	}
	if st.Corpus.DiskHits != 0 {
		t.Errorf("in-memory corpus reported %d disk hits", st.Corpus.DiskHits)
	}
	if st.Corpus.Resident != 27 {
		t.Errorf("corpus holds %d scenes, want 27", st.Corpus.Resident)
	}
	if st.Requests != 243 || st.Served != 243 || st.Failed != 0 {
		t.Errorf("engine counters = %+v, want 243 requests / 243 served / 0 failed", st)
	}
}

func benchmarkExperimentE11(b *testing.B, workers int) {
	sharedEnv.once.Do(func() {
		sharedEnv.env = NewEnv(QuickConfig(), nil)
	})
	env := sharedEnv.env
	restoreWorkers, restoreGrid := env.Cfg.Workers, env.Cfg.Grid
	defer func() { env.Cfg.Workers, env.Cfg.Grid = restoreWorkers, restoreGrid }()
	env.Cfg.Workers = workers
	// The benchmark grid spans every axis at two variants each (32
	// scenarios, 8 scenes): enough fan-out to expose pool scaling without
	// paying the full 243-scenario fleet per iteration.
	env.Cfg.Grid = scenario.DefaultAxes().Truncate(2)
	env.Model() // pay the training fixture outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := RunE11(env, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentE11Workers{1,4,8} trace the grid-fleet scaling curve
// (make bench lands them in BENCH_grid.json); reports stay byte-identical
// across worker counts (TestE11ParallelMatchesSequential).
func BenchmarkExperimentE11Workers1(b *testing.B) { benchmarkExperimentE11(b, 1) }

func BenchmarkExperimentE11Workers4(b *testing.B) { benchmarkExperimentE11(b, 4) }

func BenchmarkExperimentE11Workers8(b *testing.B) { benchmarkExperimentE11(b, 8) }
