package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"safeland/internal/imaging"
	"safeland/internal/monitor"
	"safeland/internal/scenario"
)

// RunE12 breaks the paper's Section V-B constraint. The paper rules out
// whole-frame Bayesian monitoring as prohibitively slow and verifies only
// pre-selected sub-images; E9 reproduces that argument for the naive path.
// E12 measures what the per-frame stem cache changes: the deterministic
// prefix (every layer before the first dropout) is computed once per frame,
// so a tiled whole-frame verdict costs roughly one stochastic suffix replay
// per tile (monitor.FrameContext.VerifyFrameCtx) instead of a full forward
// per Monte-Carlo sample per tile.
//
// The experiment compares the two monitoring regimes on the held-out
// splits:
//
//   - crop-only (the paper's architecture): the full pipeline fleet runs
//     through Engine.Serve and only the candidate crops the Decision Module
//     offered are ever monitored;
//   - full-frame: the same frames verified wall-to-wall as overlapping
//     tiles over one shared frame stem, every tile byte-identical to a
//     per-crop verdict of the same rectangle (the framecontext parity
//     tests pin this).
//
// Reported per split: how much of the frame each regime monitors, the
// frame-wide coverage of core-model busy-road misses, the frame-wide false
// warning rate, and which crop-confirmed zones the full-frame map disputes.
// The latency section records the single-crop and whole-frame wall times;
// the acceptance budget (full frame < 10x one crop verdict) is tracked by
// BenchmarkFullFrameVerdict vs BenchmarkMCStats in BENCH_monitor.json /
// BENCH_nn.json.
func RunE12(e *Env, w io.Writer) error {
	rule := monitor.DefaultRule()
	zoneRule := rule
	zoneRule.MaxFlaggedFraction = 0.25 // the pipeline's zone tolerance

	eng, err := e.Engine()
	if err != nil {
		return fmt.Errorf("E12: %w", err)
	}
	defer eng.Close()
	_, testSpecs, oodSpecs := e.datasetSpecs()
	tile := evenInt(e.Cfg.CropSize)

	fmt.Fprintf(w, "Full-frame Bayesian monitoring over a shared per-frame stem (%d MC samples,\n", e.Cfg.MCSamples)
	fmt.Fprintf(w, "%dpx tiles). Crop-only rows monitor exactly what the pipeline's Decision\n", tile)
	fmt.Fprintln(w, "Module offered; full-frame rows verify every pixel of the same frames.")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-18s %-10s %10s %14s %15s %10s\n",
		"split", "regime", "monitored", "miss coverage", "false warnings", "flagged")

	b, err := e.BayesianReplica()
	if err != nil {
		return fmt.Errorf("E12: %w", err)
	}

	type tally struct {
		monitored, total         int64 // pixels under any monitor verdict
		missed, missedFlagged    int64 // core-model busy-road misses, flagged
		safe, safeFlagged        int64 // truly-safe pixels, flagged
		flagged                  int64
		confirmed, disputed      int64 // crop-confirmed zones vs the frame map
		cachedCrops, fallbackTot int
	}

	splits := []struct {
		name  string
		specs []scenario.Spec
	}{{"in-distribution", testSpecs}, {"OOD (sunset)", oodSpecs}}
	for _, split := range splits {
		resps := e.Fleet(context.Background(), eng, split.specs, scenario.SceneRequest)
		var crop, full tally
		for si, resp := range resps {
			if resp.Err != nil {
				return fmt.Errorf("E12 %s scene %d: %w", split.name, si, resp.Err)
			}
			s := e.Corpus.Scene(split.specs[si])
			fw, fh := s.Image.W, s.Image.H

			// Crop-only regime: the union of the trial crops is all the
			// monitor ever saw; flags live only inside that union.
			monitored := imaging.NewMap(fw, fh)
			cropFlags := imaging.NewMap(fw, fh)
			for _, tr := range resp.Result.Trials {
				x0, y0, size := tr.Candidate.CropRect(fw, fh)
				for y := y0; y < y0+size; y++ {
					copy(monitored.Pix[y*fw+x0:y*fw+x0+size], ones(size))
				}
				mergeFlagsAt(cropFlags, tr.Verdict.Flags, x0, y0)
			}

			// Full-frame regime: one frame context, tiled wall-to-wall.
			fc := b.NewFrameContext(s.Image)
			fv, err := fc.VerifyFrameCtx(context.Background(), tile, rule)
			if err != nil {
				fc.Close()
				return fmt.Errorf("E12 %s scene %d full-frame: %w", split.name, si, err)
			}
			full.cachedCrops += fc.CachedCrops
			full.fallbackTot += fc.FallbackCrops
			fc.Close()

			pred := resp.Result.Pred
			for i, truth := range s.Labels.Pix {
				crop.total++
				full.total++
				full.monitored++
				if monitored.Pix[i] != 0 {
					crop.monitored++
				}
				cropFlag := cropFlags.Pix[i] != 0
				fullFlag := fv.Flags.Pix[i] != 0
				if cropFlag {
					crop.flagged++
				}
				if fullFlag {
					full.flagged++
				}
				if truth.BusyRoad() && !pred.Pix[i].BusyRoad() {
					crop.missed++
					full.missed++
					if cropFlag {
						crop.missedFlagged++
					}
					if fullFlag {
						full.missedFlagged++
					}
				} else if !truth.BusyRoad() {
					crop.safe++
					full.safe++
					if cropFlag {
						crop.safeFlagged++
					}
					if fullFlag {
						full.safeFlagged++
					}
				}
			}

			// Does the frame-wide uncertainty map dispute the zone the
			// crop-only pipeline confirmed?
			if resp.Result.Confirmed {
				crop.confirmed++
				full.confirmed++
				x0, y0, size := resp.Result.Zone.CropRect(fw, fh)
				zoneFlagged := 0
				for y := y0; y < y0+size; y++ {
					for x := x0; x < x0+size; x++ {
						if fv.Flags.Pix[y*fw+x] != 0 {
							zoneFlagged++
						}
					}
				}
				if float64(zoneFlagged)/float64(size*size) > zoneRule.MaxFlaggedFraction {
					full.disputed++
				}
			}
		}
		for _, row := range []struct {
			regime string
			t      tally
		}{{"crop-only", crop}, {"full-frame", full}} {
			fmt.Fprintf(w, "  %-18s %-10s %9.1f%% %14.3f %14.3f%% %9.3f\n",
				split.name, row.regime,
				100*ratio(row.t.monitored, row.t.total),
				ratio(row.t.missedFlagged, row.t.missed),
				100*ratio(row.t.safeFlagged, row.t.safe),
				ratio(row.t.flagged, row.t.total))
		}
		fmt.Fprintf(w, "  %-18s confirmed zones: %d, disputed by the full-frame map: %d\n",
			split.name, crop.confirmed, full.disputed)
		if full.fallbackTot != 0 {
			fmt.Fprintf(w, "  %-18s WARNING: %d tiles fell back to the naive per-crop path\n",
				split.name, full.fallbackTot)
		}
	}

	// In-experiment parity spot check: one tile re-verified through the
	// naive per-crop path must be byte-identical (the unit tests pin the
	// full matrix; this guards the wiring actually used above).
	s := e.Corpus.Scene(testSpecs[0])
	fc := b.NewFrameContext(s.Image)
	fv, err := fc.VerifyFrameCtx(context.Background(), tile, rule)
	fc.Close()
	if err != nil {
		return fmt.Errorf("E12 parity: %w", err)
	}
	tl := fv.Tiles[len(fv.Tiles)/2]
	naive, err := b.VerifyRegionCtx(context.Background(), s.Image.Crop(tl.X0, tl.Y0, tl.W, tl.H), rule)
	if err != nil {
		return fmt.Errorf("E12 parity: %w", err)
	}
	if !sameVerdict(tl.Verdict, naive) {
		return fmt.Errorf("E12: cached-stem tile (%d,%d) diverged from the per-crop path", tl.X0, tl.Y0)
	}
	fmt.Fprintf(w, "\nParity spot check: tile (%d,%d) %dx%d byte-identical to the naive per-crop verdict.\n",
		tl.X0, tl.Y0, tl.W, tl.H)

	// Latency: what Section V-B's "prohibitively slow" becomes with the
	// stem shared. The steady-state per-crop number is BenchmarkMCStats in
	// BENCH_nn.json; BenchmarkFullFrameVerdict in BENCH_monitor.json tracks
	// the acceptance budget (full frame < 10x one crop verdict).
	sub := s.Image.Crop(0, 0, tile, tile)
	t0 := time.Now()
	b.VerifyRegion(sub, rule)
	cropTime := time.Since(t0)
	t0 = time.Now()
	fc = b.NewFrameContext(s.Image)
	if _, err := fc.VerifyFrameCtx(context.Background(), tile, rule); err != nil {
		fc.Close()
		return fmt.Errorf("E12 timing: %w", err)
	}
	fc.Close()
	fullTime := time.Since(t0)
	tiles := len(fv.Tiles)
	fmt.Fprintf(w, "\nLatency (%dx%d frame, %d tiles of %dpx):\n", s.Image.W, s.Image.H, tiles, tile)
	fmt.Fprintf(w, "  one crop verdict (stem recomputed): %10v\n", cropTime)
	fmt.Fprintf(w, "  whole frame (shared stem, tiled):   %10v  = %.1fx one crop\n",
		fullTime, float64(fullTime)/float64(cropTime))
	fmt.Fprintln(w, "  acceptance budget: whole frame < 10x one crop verdict (BENCH_monitor.json)")

	fmt.Fprintln(w, "\nConclusion: with the frame stem computed once and crop stems sliced from it,")
	fmt.Fprintln(w, "whole-frame Bayesian monitoring costs a few crop verdicts, not hundreds — the")
	fmt.Fprintln(w, "Section V-B sub-image restriction is an optimization choice, not a constraint.")
	return nil
}

// ratio is a safe a/b for the tally fractions; every numerator here counts
// a subset of its denominator, so an empty denominator reads as 0.
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ones returns a row of 1s for marking monitored spans; sized on demand.
func ones(n int) []float32 {
	r := make([]float32, n)
	for i := range r {
		r[i] = 1
	}
	return r
}

// mergeFlagsAt ORs a crop flag map into a frame-sized map at (x0, y0).
func mergeFlagsAt(frame, crop *imaging.Map, x0, y0 int) {
	for y := 0; y < crop.H; y++ {
		src := crop.Pix[y*crop.W : (y+1)*crop.W]
		dst := frame.Pix[(y0+y)*frame.W+x0 : (y0+y)*frame.W+x0+crop.W]
		for i, p := range src {
			if p != 0 {
				dst[i] = 1
			}
		}
	}
}

// sameVerdict bit-compares two verdicts including their flag maps.
func sameVerdict(a, b monitor.Verdict) bool {
	if a.Confirmed != b.Confirmed || a.FlaggedFraction != b.FlaggedFraction || a.MaxScore != b.MaxScore {
		return false
	}
	for i := range a.Flags.Pix {
		if a.Flags.Pix[i] != b.Flags.Pix[i] {
			return false
		}
	}
	return true
}
