package experiments

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"time"

	"safeland"
	"safeland/internal/core"
	"safeland/internal/scenario"
)

// RunE13 measures the descent-session serving mode against the paper's
// per-frame architecture. The paper's pipeline treats every frame of a
// descent as an independent selection; the 2022 continuous-descent
// follow-up (Tovanche-Picón et al., PAPERS.md) re-evaluates the zone on
// every frame of the approach. safeland.Session serves that loop
// statefully: the frame stem is carried across frames and re-primed only
// where pixels changed, and the previously confirmed zone is re-verified
// first, falling back to a full candidate search only when the monitor
// disputes it.
//
// The experiment flies one synthetic descent (scenario.DescentFrames) per
// held-out scene and serves every frame twice:
//
//   - full: an independent Engine.Select per frame — the paper's per-frame
//     recompute;
//   - session: Session.Advance with temporal reuse on.
//
// Reported per split: frames served, the fraction served by the temporal
// fast path, mean per-frame latency of both modes, and verdict agreement
// (same confirm flag; same zone rect when both confirm). A reuse-disabled
// parity spot check pins the session path byte-identical to independent
// selects on the same frames (the session unit tests pin the full matrix).
func RunE13(e *Env, w io.Writer) error {
	eng, err := e.Engine()
	if err != nil {
		return fmt.Errorf("E13: %w", err)
	}
	defer eng.Close()
	_, testSpecs, oodSpecs := e.datasetSpecs()
	const framesPerDescent = 5
	ctx := context.Background()

	fmt.Fprintf(w, "Descent sessions vs per-frame recompute: %d-frame descents over the held-out\n", framesPerDescent)
	fmt.Fprintln(w, "splits, one vehicle per scene. 'full' recomputes every frame independently;")
	fmt.Fprintln(w, "'session' carries the frame stem forward and re-verifies the confirmed zone.")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-18s %7s %7s %12s %12s %8s %10s\n",
		"split", "frames", "reused", "full/frame", "sess/frame", "speedup", "agreement")

	splits := []struct {
		name  string
		specs []scenario.Spec
	}{{"in-distribution", testSpecs}, {"OOD (sunset)", oodSpecs}}
	for _, split := range splits {
		var frames, reused, agree int
		var fullNs, sessNs int64
		for si, sp := range split.specs {
			scene := e.Corpus.Scene(sp)
			descent := scenario.Descent{Frames: framesPerDescent, Seed: e.Cfg.Seed + int64(1000*si)}
			sess, err := eng.NewSession(fmt.Sprintf("%s/%d", split.name, si))
			if err != nil {
				return fmt.Errorf("E13 %s descent %d: %w", split.name, si, err)
			}
			for k, f := range scenario.DescentFrames(scene.Image, descent) {
				req := safeland.SelectRequest{Image: f, MPP: scene.MPP}
				full := eng.Select(ctx, req)
				if full.Err != nil {
					sess.Close()
					return fmt.Errorf("E13 %s descent %d frame %d (full): %w", split.name, si, k, full.Err)
				}
				resp := sess.Advance(ctx, req)
				if resp.Err != nil {
					sess.Close()
					return fmt.Errorf("E13 %s descent %d frame %d (session): %w", split.name, si, k, resp.Err)
				}
				frames++
				fullNs += int64(full.Elapsed)
				sessNs += int64(resp.Elapsed)
				if resp.Reused {
					reused++
				}
				if sameZoneOutcome(resp.Result, full.Result, f.W, f.H) {
					agree++
				}
			}
			sess.Close()
		}
		speedup := float64(fullNs) / float64(max64(sessNs, 1))
		fmt.Fprintf(w, "  %-18s %7d %6.0f%% %12v %12v %7.1fx %6d/%d\n",
			split.name, frames,
			100*float64(reused)/float64(frames),
			time.Duration(fullNs/int64(frames)).Round(time.Microsecond),
			time.Duration(sessNs/int64(frames)).Round(time.Microsecond),
			speedup, agree, frames)
	}

	// Parity spot check: with reuse disabled, the session path must be
	// byte-identical to independent selects of the same frames.
	scene := e.Corpus.Scene(testSpecs[0])
	sess, err := eng.NewSession("parity", safeland.WithSessionReuse(false))
	if err != nil {
		return fmt.Errorf("E13 parity: %w", err)
	}
	for k, f := range scenario.DescentFrames(scene.Image, scenario.Descent{Frames: 3, Seed: e.Cfg.Seed + 7}) {
		req := safeland.SelectRequest{Image: f, MPP: scene.MPP}
		resp := sess.Advance(ctx, req)
		base := eng.Select(ctx, req)
		if resp.Err != nil || base.Err != nil {
			sess.Close()
			return fmt.Errorf("E13 parity frame %d: session err %v, select err %v", k, resp.Err, base.Err)
		}
		if !reflect.DeepEqual(resp.Result, base.Result) {
			sess.Close()
			return fmt.Errorf("E13: reuse-disabled session diverged from independent Select on frame %d", k)
		}
	}
	sess.Close()
	fmt.Fprintln(w, "\nParity spot check: reuse-disabled session byte-identical to independent selects.")

	st := eng.Stats()
	fmt.Fprintf(w, "Engine stats: %d session frames served, %d via the temporal fast path, %d preempted.\n",
		st.Frames, st.FramesReused, st.Preempted)
	fmt.Fprintln(w, "\nConclusion: on locality-bounded descent streams, carrying the frame stem across")
	fmt.Fprintln(w, "frames turns steady-state monitoring into one re-prime plus one zone verdict —")
	fmt.Fprintln(w, "the per-frame recompute is the cold-start cost, not the serving cost.")
	return nil
}

// sameZoneOutcome is the E13 agreement predicate: both modes agree on the
// confirm flag, and when both confirm, on the verified crop rectangle.
func sameZoneOutcome(a, b core.Result, w, h int) bool {
	if a.Confirmed != b.Confirmed {
		return false
	}
	if !a.Confirmed {
		return true
	}
	ax, ay, as := a.Zone.CropRect(w, h)
	bx, by, bs := b.Zone.CropRect(w, h)
	return ax == bx && ay == by && as == bs
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
