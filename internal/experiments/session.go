package experiments

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"time"

	"safeland"
	"safeland/internal/core"
	"safeland/internal/scenario"
)

// sessionHost abstracts where descent sessions are placed: a single Engine
// (E13's serving mode) or a sharded Router fleet (E14's chaos arm). Both
// satisfy it with the same NewSession signature.
type sessionHost interface {
	NewSession(vehicleID string, opts ...safeland.SessionOption) (*safeland.Session, error)
}

// descentSplit names one held-out split and its corpus specs.
type descentSplit struct {
	name  string
	specs []scenario.Spec
}

// descentSplits returns the two held-out splits the descent fleets fly
// over, in presentation order.
func descentSplits(e *Env) []descentSplit {
	_, testSpecs, oodSpecs := e.datasetSpecs()
	return []descentSplit{{"in-distribution", testSpecs}, {"OOD (sunset)", oodSpecs}}
}

// frameOutcome is one descent frame's measured outcome: the session
// verdict plus (when the runner was given a baseline engine) the
// independent per-frame recompute of the same frame.
type frameOutcome struct {
	Split    string
	Vehicle  string
	Frame    int
	W, H     int
	Res      core.Result
	Reused   bool
	Retried  int
	Degraded bool
	Cause    string
	Elapsed  time.Duration

	FullRes     core.Result
	FullElapsed time.Duration
}

// runDescentFleet flies one framesPerDescent-frame synthetic descent per
// held-out scene (both splits, one vehicle per scene) as sessions placed
// on host, returning per-frame outcomes in deterministic split/scene/frame
// order. When full is non-nil every frame is additionally served as an
// independent full.Select — the paper's per-frame recompute baseline. Any
// hard-failed frame (a response carrying Err) aborts the run: under
// degraded-mode serving every frame must resolve as served, retried, or
// explicitly Degraded.
func runDescentFleet(e *Env, host sessionHost, full *safeland.Engine, framesPerDescent int, tag string) ([]frameOutcome, error) {
	ctx := context.Background()
	var out []frameOutcome
	for _, split := range descentSplits(e) {
		for si, sp := range split.specs {
			scene := e.Corpus.Scene(sp)
			descent := scenario.Descent{Frames: framesPerDescent, Seed: e.Cfg.Seed + int64(1000*si)}
			vehicle := fmt.Sprintf("%s/%d", split.name, si)
			sess, err := host.NewSession(vehicle)
			if err != nil {
				return nil, fmt.Errorf("%s %s descent %d: %w", tag, split.name, si, err)
			}
			for k, f := range scenario.DescentFrames(scene.Image, descent) {
				req := safeland.SelectRequest{Image: f, MPP: scene.MPP}
				o := frameOutcome{Split: split.name, Vehicle: vehicle, Frame: k, W: f.W, H: f.H}
				if full != nil {
					fr := full.Select(ctx, req)
					if fr.Err != nil {
						sess.Close()
						return nil, fmt.Errorf("%s %s descent %d frame %d (full): %w", tag, split.name, si, k, fr.Err)
					}
					o.FullRes, o.FullElapsed = fr.Result, fr.Elapsed
				}
				resp := sess.Advance(ctx, req)
				if resp.Err != nil {
					sess.Close()
					return nil, fmt.Errorf("%s %s descent %d frame %d (session): %w", tag, split.name, si, k, resp.Err)
				}
				o.Res, o.Reused, o.Retried = resp.Result, resp.Reused, resp.Retried
				o.Degraded, o.Cause, o.Elapsed = resp.Degraded, resp.DegradedCause, resp.Elapsed
				out = append(out, o)
			}
			sess.Close()
		}
	}
	return out, nil
}

// splitNames returns the distinct splits of a fleet run in first-seen
// order.
func splitNames(outcomes []frameOutcome) []string {
	var names []string
	seen := map[string]bool{}
	for _, o := range outcomes {
		if !seen[o.Split] {
			seen[o.Split] = true
			names = append(names, o.Split)
		}
	}
	return names
}

// printDescentTable renders the E13 per-split comparison table — frames,
// temporal fast-path fraction, mean latency of both serving modes,
// speedup, verdict agreement — from a fleet run that carried the full
// recompute baseline. E14's fault-free arm prints through the same
// function, which is what pins it byte-identical to E13's table.
func printDescentTable(w io.Writer, outcomes []frameOutcome) {
	fmt.Fprintf(w, "  %-18s %7s %7s %12s %12s %8s %10s\n",
		"split", "frames", "reused", "full/frame", "sess/frame", "speedup", "agreement")
	for _, split := range splitNames(outcomes) {
		var frames, reused, agree int
		var fullNs, sessNs int64
		for _, o := range outcomes {
			if o.Split != split {
				continue
			}
			frames++
			fullNs += int64(o.FullElapsed)
			sessNs += int64(o.Elapsed)
			if o.Reused {
				reused++
			}
			if sameZoneOutcome(o.Res, o.FullRes, o.W, o.H) {
				agree++
			}
		}
		speedup := float64(fullNs) / float64(max64(sessNs, 1))
		fmt.Fprintf(w, "  %-18s %7d %6.0f%% %12v %12v %7.1fx %6d/%d\n",
			split, frames,
			100*float64(reused)/float64(frames),
			time.Duration(fullNs/int64(frames)).Round(time.Microsecond),
			time.Duration(sessNs/int64(frames)).Round(time.Microsecond),
			speedup, agree, frames)
	}
}

// RunE13 measures the descent-session serving mode against the paper's
// per-frame architecture. The paper's pipeline treats every frame of a
// descent as an independent selection; the 2022 continuous-descent
// follow-up (Tovanche-Picón et al., PAPERS.md) re-evaluates the zone on
// every frame of the approach. safeland.Session serves that loop
// statefully: the frame stem is carried across frames and re-primed only
// where pixels changed, and the previously confirmed zone is re-verified
// first, falling back to a full candidate search only when the monitor
// disputes it.
//
// The experiment flies one synthetic descent (scenario.DescentFrames) per
// held-out scene and serves every frame twice:
//
//   - full: an independent Engine.Select per frame — the paper's per-frame
//     recompute;
//   - session: Session.Advance with temporal reuse on.
//
// Reported per split: frames served, the fraction served by the temporal
// fast path, mean per-frame latency of both modes, and verdict agreement
// (same confirm flag; same zone rect when both confirm). A reuse-disabled
// parity spot check pins the session path byte-identical to independent
// selects on the same frames (the session unit tests pin the full matrix).
func RunE13(e *Env, w io.Writer) error {
	eng, err := e.Engine()
	if err != nil {
		return fmt.Errorf("E13: %w", err)
	}
	defer eng.Close()
	const framesPerDescent = 5
	ctx := context.Background()

	fmt.Fprintf(w, "Descent sessions vs per-frame recompute: %d-frame descents over the held-out\n", framesPerDescent)
	fmt.Fprintln(w, "splits, one vehicle per scene. 'full' recomputes every frame independently;")
	fmt.Fprintln(w, "'session' carries the frame stem forward and re-verifies the confirmed zone.")
	fmt.Fprintln(w)

	outcomes, err := runDescentFleet(e, eng, eng, framesPerDescent, "E13")
	if err != nil {
		return err
	}
	printDescentTable(w, outcomes)

	// Parity spot check: with reuse disabled, the session path must be
	// byte-identical to independent selects of the same frames.
	_, testSpecs, _ := e.datasetSpecs()
	scene := e.Corpus.Scene(testSpecs[0])
	sess, err := eng.NewSession("parity", safeland.WithSessionReuse(false))
	if err != nil {
		return fmt.Errorf("E13 parity: %w", err)
	}
	for k, f := range scenario.DescentFrames(scene.Image, scenario.Descent{Frames: 3, Seed: e.Cfg.Seed + 7}) {
		req := safeland.SelectRequest{Image: f, MPP: scene.MPP}
		resp := sess.Advance(ctx, req)
		base := eng.Select(ctx, req)
		if resp.Err != nil || base.Err != nil {
			sess.Close()
			return fmt.Errorf("E13 parity frame %d: session err %v, select err %v", k, resp.Err, base.Err)
		}
		if !reflect.DeepEqual(resp.Result, base.Result) {
			sess.Close()
			return fmt.Errorf("E13: reuse-disabled session diverged from independent Select on frame %d", k)
		}
	}
	sess.Close()
	fmt.Fprintln(w, "\nParity spot check: reuse-disabled session byte-identical to independent selects.")

	st := eng.Stats()
	fmt.Fprintf(w, "Engine stats: %d session frames served, %d via the temporal fast path, %d preempted.\n",
		st.Frames, st.FramesReused, st.Preempted)
	fmt.Fprintln(w, "\nConclusion: on locality-bounded descent streams, carrying the frame stem across")
	fmt.Fprintln(w, "frames turns steady-state monitoring into one re-prime plus one zone verdict —")
	fmt.Fprintln(w, "the per-frame recompute is the cold-start cost, not the serving cost.")
	return nil
}

// sameZoneOutcome is the E13 agreement predicate: both modes agree on the
// confirm flag, and when both confirm, on the verified crop rectangle.
func sameZoneOutcome(a, b core.Result, w, h int) bool {
	if a.Confirmed != b.Confirmed {
		return false
	}
	if !a.Confirmed {
		return true
	}
	ax, ay, as := a.Zone.CropRect(w, h)
	bx, by, bs := b.Zone.CropRect(w, h)
	return ax == bx && ay == by && as == bs
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
