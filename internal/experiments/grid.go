package experiments

import (
	"context"
	"fmt"
	"io"

	"safeland"
	"safeland/internal/hazard"
	"safeland/internal/scenario"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

// RunE11 is the grid-coverage experiment: the full scenario.Axes operating
// grid (urban layout × density × wind × failure profile × time-of-day),
// flown as a failure-injection mission fleet. It is the populated-area
// validation the paper's follow-ups (Tovanche-Picón et al. 2022, Guerin et
// al. 2022) run where the paper itself certifies on hand-picked scenes —
// and the first workload that exercises the whole serving stack at grid
// scale: every scenario's scene streams out of the shared corpus through
// Corpus.Stream into Engine.Serve for zone selection, then the E5 mission
// machinery flies the scenario under its own wind regime and failure
// profile with the streamed selection as its landing plan.
//
// The report tabulates per-axis marginals — zone availability, monitor
// rejection rate, safe-landing rate, E[fatality] — and closes with the
// corpus dedup check: wind and failure variants share scene specs, so the
// grid's scenario lookups must collapse to layout × density × hour distinct
// scenes (verified against Engine.Stats' corpus counters; an experiment
// that regenerated scenes per scenario would fail here, not just in unit
// tests). Everything printed is deterministic: per-scenario wind seeds,
// ordered collection and the monitor's per-call reseeding keep the report
// byte-identical whatever the worker count — the parity pinned by
// TestE11ParallelMatchesSequential.
func RunE11(e *Env, w io.Writer) error {
	axes := e.GridAxes()
	scens, err := axes.Enumerate(e.Cfg.SceneSize, e.Cfg.Seed+110)
	if err != nil {
		return fmt.Errorf("E11: %w", err)
	}
	eng, err := e.Engine()
	if err != nil {
		return fmt.Errorf("E11: %w", err)
	}
	defer eng.Close()

	fmt.Fprintf(w, "Scenario grid: %d layouts x %d densities x %d winds x %d failures x %d hours = %d scenarios (%dpx scenes).\n",
		len(axes.Layouts), len(axes.Densities), len(axes.Winds), len(axes.Failures), len(axes.Hours),
		len(scens), e.Cfg.SceneSize)
	fmt.Fprintln(w, "Each scenario streams its scene through Corpus.Stream into Engine.Serve for zone")
	fmt.Fprintln(w, "selection, then flies a failure-injection mission under the scenario's wind and")
	fmt.Fprintln(w, "failure profile with the streamed selection as its landing plan.")

	before := eng.Stats()
	scenes, resps, err := gridSelect(e, eng, scens)
	if err != nil {
		return err
	}
	outs := gridMissions(context.Background(), e, scens, scenes, resps)
	after := eng.Stats()

	// gridSelect aborts on the first failed response, so reaching this
	// point means every selection succeeded — the report says exactly that
	// rather than printing a failed-count that can only ever be zero.
	fmt.Fprintf(w, "\nEngine served all %d grid selections.\n", after.Served-before.Served)

	fmt.Fprintln(w, "\nPer-axis marginals (avail = zone confirmed; reject = monitor refused every")
	fmt.Fprintln(w, "candidate; land = EL touchdown at Minor severity or below; E[fatal] = mean")
	fmt.Fprintln(w, "expected fatalities per mission; modal sev = most common impact severity):")
	for _, axis := range []struct {
		title string
		value func(scenario.Scenario) string
	}{
		{"urban layout", func(sc scenario.Scenario) string { return sc.Layout.Name }},
		{"density", func(sc scenario.Scenario) string { return sc.Density.Name }},
		{"wind", func(sc scenario.Scenario) string { return sc.Wind.Name }},
		{"failure profile", func(sc scenario.Scenario) string { return sc.Failure.Name }},
		{"time of day", scenario.Scenario.HourName},
	} {
		values := make([]string, len(scens))
		for i, sc := range scens {
			values[i] = axis.value(sc)
		}
		fmt.Fprintf(w, "\n  axis: %s\n", axis.title)
		fmt.Fprintf(w, "  %-14s %5s %8s %8s %8s %10s %13s\n",
			"value", "n", "avail", "reject", "land", "E[fatal]", "modal sev")
		for _, m := range marginalsBy(values, outs) {
			n := float64(m.N)
			fmt.Fprintf(w, "  %-14s %5d %7.1f%% %7.1f%% %7.1f%% %10.4f %13s\n",
				m.Value, m.N, 100*float64(m.Confirmed)/n, 100*float64(m.Rejected)/n,
				100*float64(m.Landed)/n, m.Fatalities/n, m.ModalSeverity())
		}
	}

	// The dedup assertion on the production path: the fleet's corpus
	// lookups (one per scenario, whether generated, memory hit or disk
	// hit) must collapse to at most the grid's distinct scene specs. The
	// measured counters go to the progress log — they depend on what
	// earlier experiments already cached, so the report itself states
	// only the grid-derived facts and the verification outcome.
	delta := safeland.CorpusStats{
		Generated: after.Corpus.Generated - before.Corpus.Generated,
		Hits:      after.Corpus.Hits - before.Corpus.Hits,
		DiskHits:  after.Corpus.DiskHits - before.Corpus.DiskHits,
	}
	fmt.Fprintf(e.Log, "[E11] corpus delta: %d generated, %d cache hits, %d disk hits over %d lookups\n",
		delta.Generated, delta.Hits, delta.DiskHits, delta.Lookups())
	if delta.Lookups() != int64(len(scens)) {
		return fmt.Errorf("E11: fleet performed %d corpus lookups for %d scenarios", delta.Lookups(), len(scens))
	}
	if built := delta.Generated + delta.DiskHits; built > int64(axes.DistinctScenes()) {
		return fmt.Errorf("E11: grid dedup failed: %d scenes built/loaded, want at most %d distinct (%d scenarios)",
			built, axes.DistinctScenes(), len(scens))
	}
	fmt.Fprintf(w, "\nScene corpus dedup verified: %d scenario lookups collapsed onto at most %d\n",
		len(scens), axes.DistinctScenes())
	fmt.Fprintf(w, "distinct scenes (wind x failure collapse factor %dx) — Engine.Stats corpus counters.\n",
		len(axes.Winds)*len(axes.Failures))
	return nil
}

// gridSelect streams the scenarios' scenes through the corpus into the
// engine (Env.Fleet: Corpus.Stream + Engine.Serve, or the materialized
// SelectBatch path under the parity hook) and returns the scenes alongside
// the per-scenario selection responses. Scenes are captured from the
// request builder, so the fleet's own lookups are the only corpus traffic
// the experiment generates — what makes the dedup accounting exact.
func gridSelect(e *Env, eng *safeland.Engine, scens []scenario.Scenario) ([]*urban.Scene, []safeland.SelectResponse, error) {
	specs := make([]scenario.Spec, len(scens))
	for i, sc := range scens {
		specs[i] = sc.Spec
	}
	scenes := make([]*urban.Scene, len(specs))
	capture := func(i int, s *urban.Scene) safeland.SelectRequest {
		scenes[i] = s
		return scenario.SceneRequest(i, s)
	}
	resps := e.Fleet(context.Background(), eng, specs, capture)
	for i, resp := range resps {
		if resp.Err != nil {
			return nil, nil, fmt.Errorf("E11 scenario %q: %w", scens[i].Name, resp.Err)
		}
	}
	return scenes, resps, nil
}

// plannedZone replays a fleet's streamed selection as a uav.LandingPlanner:
// the mission's EL maneuver flies to the zone the Engine confirmed for the
// scenario's scene, and a monitor rejection (ok=false) escalates to flight
// termination — exactly the Figure 1 "no safe EL available" branch.
type plannedZone struct {
	x, y float64
	ok   bool
}

func (p plannedZone) PlanLanding(*urban.Scene, float64, float64) (float64, float64, bool) {
	return p.x, p.y, p.ok
}

// gridOutcome is one scenario's combined selection + mission outcome — the
// unit the per-axis marginals aggregate.
type gridOutcome struct {
	// Confirmed is true when the streamed selection confirmed a zone.
	Confirmed bool
	// Rejected is true when the monitor saw at least one candidate and
	// confirmed none (a refusal, as opposed to "no candidates proposed").
	Rejected bool
	// Landed is true for a safe emergency landing: the EL maneuver touched
	// down at Minor severity or below.
	Landed bool
	// Impacted and Severity describe the touchdown (Severity is meaningful
	// only when Impacted).
	Impacted bool
	Severity hazard.Severity
	// Fatalities is the impact's expected-fatalities figure.
	Fatalities float64
}

// gridMissions flies one mission per scenario as a fleet: each (scene,
// wind, failure, hour) combination runs on its own goroutine with its
// deterministic per-scenario wind seed, and outcomes are collected by index
// — the same discipline that keeps every fleet report byte-identical to a
// sequential run.
func gridMissions(ctx context.Context, e *Env, scens []scenario.Scenario, scenes []*urban.Scene, resps []safeland.SelectResponse) []gridOutcome {
	spec := uav.MediDelivery()
	outs := make([]gridOutcome, len(scens))
	fleetRun(e.Workers(), len(scens), func(i int) {
		sc := scens[i]
		res := resps[i].Result
		plan := plannedZone{ok: res.Confirmed}
		if res.Confirmed {
			plan.x, plan.y = res.Zone.CenterM(scenes[i].MPP)
		}
		m := missionOn(scenes[i], spec, plan, sc.Hour)
		m.Wind = sc.Wind.New(sc.WindSeed())
		m.Failures = []uav.TimedFailure{sc.Failure.Injection()}
		out := m.RunCtx(ctx)
		outs[i] = gridOutcome{
			Confirmed:  res.Confirmed,
			Rejected:   !res.Confirmed && len(res.Trials) > 0,
			Landed:     out.Maneuver == uav.EmergencyLanding && out.Impacted && out.Assessment.Severity <= hazard.Minor,
			Impacted:   out.Impacted,
			Severity:   out.Assessment.Severity,
			Fatalities: out.Assessment.ExpectedFatalities,
		}
	})
	return outs
}

// axisMarginal aggregates the outcomes sharing one axis value.
type axisMarginal struct {
	Value                          string
	N, Confirmed, Rejected, Landed int
	// Fatalities sums expected fatalities over the group's missions.
	Fatalities float64
	// Severities histograms the impact severities of the group.
	Severities map[hazard.Severity]int
}

// ModalSeverity returns the group's most common impact severity (ties break
// toward the higher level; Negligible when the group never impacted).
func (m axisMarginal) ModalSeverity() hazard.Severity { return modalSeverity(m.Severities) }

// marginalsBy groups outcome i under values[i], preserving first-appearance
// order — with enumeration order that is exactly the axis's variant order,
// so the marginal tables line up with the configured grid.
func marginalsBy(values []string, outs []gridOutcome) []axisMarginal {
	idx := map[string]int{}
	var ms []axisMarginal
	for i, out := range outs {
		v := values[i]
		j, ok := idx[v]
		if !ok {
			j = len(ms)
			idx[v] = j
			ms = append(ms, axisMarginal{Value: v, Severities: map[hazard.Severity]int{}})
		}
		m := &ms[j]
		m.N++
		if out.Confirmed {
			m.Confirmed++
		}
		if out.Rejected {
			m.Rejected++
		}
		if out.Landed {
			m.Landed++
		}
		if out.Impacted {
			m.Severities[out.Severity]++
		}
		m.Fatalities += out.Fatalities
	}
	return ms
}
