// Package experiments regenerates every table, figure and quantitative
// claim of the paper (experiments E1–E10 in DESIGN.md): the severity and
// ground-risk tables, the SORA case-study numbers, the EL criteria
// assessment, the Figure 1 failure-injection matrix, dataset statistics,
// the Figure 4 segmentation/monitoring study, the baseline comparison, the
// sub-image timing argument, and the monitor ablations — plus the E12
// full-frame monitoring study that revisits the Section V-B sub-image
// restriction with a shared per-frame stem.
//
// The model-dependent experiments (E5, E7–E12) run as scenario fleets over
// a safeland.Engine: scene requests stream through Engine.Serve (or
// missions share the Engine as their landing planner) across
// Config.Workers worker replicas that alias one frozen copy of the trained
// weights. Scenes come from the shared internal/scenario corpus — every
// Env in the process draws its dataset and fleet scenes from one
// content-addressed cache, so repeated Envs and repeated experiment runs
// reuse scenes instead of regenerating them, and Corpus.Stream overlaps
// the generation of scene i+1 with the perception work on scene i.
// Per-scene seeding plus the monitor's per-call reseeding keep every
// report byte-identical to a sequential SelectBatch run, whatever the
// worker count — the parity pinned by TestE8ParallelMatchesSequential and
// TestExperimentsStreamMatchesBatch.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"safeland"
	"safeland/internal/core"
	"safeland/internal/monitor"
	"safeland/internal/scenario"
	"safeland/internal/segment"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

// Config scales the experiment suite. DefaultConfig reproduces the paper at
// full (CPU-feasible) scale; QuickConfig is a smoke-test scale for CI.
type Config struct {
	Seed int64
	// TrainScenes, TestScenes, OODScenes size the dataset.
	TrainScenes, TestScenes, OODScenes int
	// SceneSize is the generated scene side in pixels.
	SceneSize int
	// TrainSteps, TrainLR, CropSize configure model fitting.
	TrainSteps int
	TrainLR    float64
	CropSize   int
	// MCSamples is the Bayesian monitor sample count (paper: 10).
	MCSamples int
	// MonteCarloImpacts sizes the E2 impact simulation.
	MonteCarloImpacts int
	// CompareScenes sizes the E8 baseline comparison.
	CompareScenes int
	// MissionRepeats sizes the E5 failure matrix.
	MissionRepeats int
	// Workers is the Engine worker-pool size the model-dependent experiment
	// fleets (E5, E7–E12) fan out over; 0 picks safeland.DefaultWorkers().
	// Per-scene seeding and the monitor's per-call reseeding keep fleet
	// output byte-identical across worker counts.
	Workers int
	// Grid is the E11 scenario grid; a grid spanning no axis (the zero
	// value) falls back to scenario.DefaultAxes(). cmd/elbench shapes it
	// with -grid/-axes.
	Grid scenario.Axes
}

// DefaultConfig returns the full-scale configuration used by cmd/elbench.
func DefaultConfig() Config {
	return Config{
		Seed:              2021, // DSN 2021
		TrainScenes:       6,
		TestScenes:        4,
		OODScenes:         4,
		SceneSize:         192,
		TrainSteps:        800,
		TrainLR:           0.008,
		CropSize:          64,
		MCSamples:         10,
		MonteCarloImpacts: 4000,
		CompareScenes:     12,
		MissionRepeats:    3,
	}
}

// QuickConfig returns a reduced configuration for tests.
func QuickConfig() Config {
	return Config{
		Seed:              2021,
		TrainScenes:       3,
		TestScenes:        2,
		OODScenes:         2,
		SceneSize:         128,
		TrainSteps:        150,
		TrainLR:           0.01,
		CropSize:          64,
		MCSamples:         5,
		MonteCarloImpacts: 300,
		CompareScenes:     3,
		MissionRepeats:    1,
	}
}

// Env lazily builds and caches the expensive shared artifacts (dataset,
// trained model, pipeline) so experiments can run independently or as a
// batch without retraining.
type Env struct {
	Cfg Config
	Log io.Writer

	// Corpus is the scene cache every generated scene goes through.
	// NewEnv wires the process-wide scenario.Shared() corpus, so scene
	// and dataset generation is shared across Envs; override it (before
	// first use) to isolate an Env or to add an on-disk layer.
	Corpus *scenario.Corpus

	// batchFleet forces Fleet onto the materialized SelectBatch path; the
	// streaming/batch parity tests flip it to pin byte-identical reports.
	batchFleet bool

	dsOnce    sync.Once
	dataset   *urban.Dataset
	dsSpecs   struct{ train, test, ood []scenario.Spec }
	modelOnce sync.Once
	model     *segment.Model
	pipeOnce  sync.Once
	pipeline  *core.Pipeline
}

// NewEnv builds an environment; log receives progress lines (nil discards).
func NewEnv(cfg Config, log io.Writer) *Env {
	if log == nil {
		log = io.Discard
	}
	return &Env{Cfg: cfg, Log: log, Corpus: scenario.Shared()}
}

// SceneConfig returns the generator settings for this environment.
func (e *Env) SceneConfig() urban.Config {
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = e.Cfg.SceneSize, e.Cfg.SceneSize
	return cfg
}

// Dataset returns the shared train/test/OOD split, resolving it through
// the scene corpus on first use. The specs mirror urban.BuildDataset's
// seeding exactly (baseSeed, +1000, +2000), so the split is byte-identical
// to a direct build — but a second Env with the same configuration serves
// every scene from cache instead of regenerating the dataset.
func (e *Env) Dataset() *urban.Dataset {
	e.dsOnce.Do(func() {
		fmt.Fprintf(e.Log, "[env] resolving dataset: %d train, %d test, %d OOD scenes (%dpx) via scene corpus\n",
			e.Cfg.TrainScenes, e.Cfg.TestScenes, e.Cfg.OODScenes, e.Cfg.SceneSize)
		cfg := e.SceneConfig()
		e.dsSpecs.train = scenario.Set(cfg, urban.DefaultConditions(), e.Cfg.TrainScenes, e.Cfg.Seed)
		e.dsSpecs.test = scenario.Set(cfg, urban.DefaultConditions(), e.Cfg.TestScenes, e.Cfg.Seed+1_000)
		e.dsSpecs.ood = scenario.Set(cfg, urban.SunsetConditions(), e.Cfg.OODScenes, e.Cfg.Seed+2_000)
		e.dataset = &urban.Dataset{
			Train: e.Corpus.Scenes(e.dsSpecs.train),
			Test:  e.Corpus.Scenes(e.dsSpecs.test),
			OOD:   e.Corpus.Scenes(e.dsSpecs.ood),
		}
	})
	return e.dataset
}

// datasetSpecs returns the corpus specs behind the dataset split, building
// the dataset if needed — how the fleets re-stream the held-out scenes
// without regenerating them.
func (e *Env) datasetSpecs() (train, test, ood []scenario.Spec) {
	e.Dataset()
	return e.dsSpecs.train, e.dsSpecs.test, e.dsSpecs.ood
}

// Fleet serves one request per spec through the engine and returns the
// responses ordered by spec index. The default path is the streaming one:
// scenes flow out of the corpus through Corpus.Stream into Engine.Serve as
// they are generated (or found cached), so scene synthesis overlaps
// perception. The batchFleet test hook materializes every scene first and
// calls SelectBatch — the pre-streaming layout — which the parity tests
// pin byte-identical to the streamed reports.
func (e *Env) Fleet(ctx context.Context, eng *safeland.Engine, specs []scenario.Spec, build scenario.BuildRequest) []safeland.SelectResponse {
	if e.batchFleet {
		if build == nil {
			build = scenario.SceneRequest
		}
		reqs := make([]safeland.SelectRequest, len(specs))
		for i, s := range e.Corpus.Scenes(specs) {
			reqs[i] = build(i, s)
		}
		return eng.SelectBatch(ctx, reqs)
	}
	return e.Corpus.ServeOrdered(ctx, eng, specs, build)
}

// Model returns the shared trained MSDnet, training it on first use.
func (e *Env) Model() *segment.Model {
	e.modelOnce.Do(func() {
		ds := e.Dataset()
		mcfg := segment.DefaultConfig()
		mcfg.Seed = e.Cfg.Seed
		e.model = segment.New(mcfg)
		fmt.Fprintf(e.Log, "[env] training MSDnet (%d params, %d steps)\n",
			e.model.ParamCount(), e.Cfg.TrainSteps)
		stats := segment.Train(e.model, ds.Train, segment.TrainConfig{
			Steps:    e.Cfg.TrainSteps,
			Batch:    2,
			CropSize: e.Cfg.CropSize,
			LR:       e.Cfg.TrainLR,
			Seed:     e.Cfg.Seed + 1,
		})
		fmt.Fprintf(e.Log, "[env] training loss %.3f -> %.3f\n", stats.FirstLoss, stats.FinalLoss)
	})
	return e.model
}

// Pipeline returns the shared EL pipeline around the trained model.
func (e *Env) Pipeline() *core.Pipeline {
	e.pipeOnce.Do(func() {
		e.pipeline = core.NewPipeline(e.Model(), e.Cfg.Seed+2)
		e.pipeline.Monitor.Samples = e.Cfg.MCSamples
	})
	return e.pipeline
}

// Bayesian returns a monitor around the trained model with the configured
// sample count.
func (e *Env) Bayesian() *monitor.Bayesian {
	b := monitor.NewBayesian(e.Model(), e.Cfg.Seed+3)
	b.Samples = e.Cfg.MCSamples
	return b
}

// BayesianReplica returns a monitor around a private frozen-weights clone
// of the trained model. The clone aliases the shared parameter tensors but
// owns its per-layer caches and dropout RNGs, and the monitor seed matches
// Bayesian(), so replicas running concurrently produce verdicts identical
// to the shared monitor's.
func (e *Env) BayesianReplica() (*monitor.Bayesian, error) {
	m, err := e.Model().Clone()
	if err != nil {
		return nil, fmt.Errorf("experiments: cloning monitor replica: %w", err)
	}
	b := monitor.NewBayesian(m, e.Cfg.Seed+3)
	b.Samples = e.Cfg.MCSamples
	return b, nil
}

// GridAxes resolves the E11 scenario grid: Cfg.Grid when it spans at least
// one axis, the reference scenario.DefaultAxes() otherwise. A partially
// -configured grid is returned as-is — Axes.Enumerate rejects its empty
// axes with a descriptive error rather than running a vacuous fleet.
func (e *Env) GridAxes() scenario.Axes {
	g := e.Cfg.Grid
	if len(g.Layouts)+len(g.Densities)+len(g.Winds)+len(g.Failures)+len(g.Hours) > 0 {
		return g
	}
	return scenario.DefaultAxes()
}

// Workers resolves the fleet worker-pool size.
func (e *Env) Workers() int {
	if e.Cfg.Workers > 0 {
		return e.Cfg.Workers
	}
	return safeland.DefaultWorkers()
}

// System wraps the shared pipeline in the public facade so engines can be
// built around it. The pipeline (and its trained model) is the cached one;
// the wrapper itself is cheap.
func (e *Env) System() *safeland.System {
	return &safeland.System{Pipeline: e.Pipeline(), Spec: uav.MediDelivery()}
}

// Engine builds a pipeline-backed engine over the shared model at the
// configured worker count. Engines are built per call rather than cached:
// worker replicas share the frozen model weights, so construction costs
// per-layer scratch allocations only, and each experiment gets a pool
// sized by the Cfg.Workers in effect when it runs.
func (e *Env) Engine() (*safeland.Engine, error) {
	return e.EngineWith(safeland.PipelineSelector(), 0)
}

// EngineWith builds an engine over the shared model with an arbitrary
// selector backend — how the E8 strategy fleet runs every landing strategy
// behind the same SelectBatch surface. workers <= 0 uses Workers(). The
// Env's scene corpus is attached as the engine's stats source, so
// Engine.Stats reports the cache feeding the fleets (E11 asserts its grid
// dedup through that surface). Extra options append after the shared ones —
// the E14 chaos fleet passes shard names, injectors and degraded mode.
func (e *Env) EngineWith(factory safeland.SelectorFactory, workers int, opts ...safeland.Option) (*safeland.Engine, error) {
	if workers <= 0 {
		workers = e.Workers()
	}
	base := []safeland.Option{
		safeland.WithSystem(e.System()),
		safeland.WithSelector(factory),
		safeland.WithWorkers(workers),
		safeland.WithCorpusStats(e.Corpus.EngineStats),
	}
	return safeland.NewEngine(append(base, opts...)...)
}

// Experiment is one registered paper artifact reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(e *Env, w io.Writer) error
}

// All returns the experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Table I — severity scale and casualty model", Run: RunE1},
		{ID: "E2", Title: "Table II — main ground risks, derived by Monte-Carlo impact simulation", Run: RunE2},
		{ID: "E3", Title: "Section III-D — MEDI DELIVERY physics and SORA assessment", Run: RunE3},
		{ID: "E4", Title: "Tables III/IV — EL criteria and implementation self-assessment", Run: RunE4},
		{ID: "E5", Title: "Figure 1 — safety-switch failure-injection matrix", Run: RunE5},
		{ID: "E6", Title: "Figure 3 — synthetic UAVid-like dataset statistics", Run: RunE6},
		{ID: "E7", Title: "Figure 4 — segmentation + runtime monitoring, in-distribution vs out-of-distribution", Run: RunE7},
		{ID: "E8", Title: "Section II-B.4 — landing strategy comparison (EL vs baselines)", Run: RunE8},
		{ID: "E9", Title: "Section V-B — Bayesian inference timing: sub-image vs full frame", Run: RunE9},
		{ID: "E10", Title: "Conclusion/future work — quantitative monitor study (τ, samples, σ, dropout)", Run: RunE10},
		{ID: "E11", Title: "Grid coverage — mission fleets over the full scenario axes (2022 populated-area validation)", Run: RunE11},
		{ID: "E12", Title: "Beyond Section V-B — full-frame Bayesian monitoring over a shared per-frame stem", Run: RunE12},
		{ID: "E13", Title: "Fleet service — descent sessions with temporal reuse vs per-frame recompute", Run: RunE13},
		{ID: "E14", Title: "Chaos drill — fleet serving under injected faults, degraded-mode FT fallback (2022 runtime-monitoring evaluation)", Run: RunE14},
	}
}

// RunByID runs one experiment by its ID.
func RunByID(id string, e *Env, w io.Writer) error {
	for _, exp := range All() {
		if exp.ID == id {
			fmt.Fprintf(w, "\n=== %s: %s ===\n", exp.ID, exp.Title)
			return exp.Run(e, w)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll runs every experiment in order, stopping at the first error.
func RunAll(e *Env, w io.Writer) error {
	for _, exp := range All() {
		fmt.Fprintf(w, "\n=== %s: %s ===\n", exp.ID, exp.Title)
		if err := exp.Run(e, w); err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
	}
	return nil
}
