package experiments

import (
	"sync"

	"safeland/internal/baseline"
	"safeland/internal/riskmap"
	"safeland/internal/urban"
)

// fleetRun executes fn(i) for i in [0, n) across up to workers goroutines
// and waits for all of them. Work items must write to disjoint memory
// (typically an index-addressed results slice): collecting outputs by index
// and aggregating them in order afterwards is what keeps a fleet's report
// byte-identical to a sequential run, whatever the scheduling.
func fleetRun(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// staticRiskmapSelector adapts the GIS static risk map to the
// baseline.Selector interface, so the E8 strategy fleet serves it through
// safeland.BaselineSelector like the other related-work methods.
type staticRiskmapSelector struct {
	cfg riskmap.StaticConfig
}

func (staticRiskmapSelector) Name() string { return "static-riskmap" }

func (s staticRiskmapSelector) Select(scene *urban.Scene, zonePx int) (baseline.Zone, bool) {
	risk := riskmap.BuildStatic(scene.Layout, scene.Labels.W, scene.Labels.H, scene.MPP, s.cfg)
	x0, y0, ok := riskmap.SelectZone(risk, zonePx)
	if !ok {
		return baseline.Zone{}, false
	}
	return baseline.Zone{X0: x0, Y0: y0, Size: zonePx}, true
}
