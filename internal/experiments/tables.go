package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"safeland/internal/core"
	"safeland/internal/hazard"
	"safeland/internal/imaging"
	"safeland/internal/sora"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

// RunE1 prints Table I and the casualty-model anchors behind it.
func RunE1(e *Env, w io.Writer) error {
	fmt.Fprintln(w, "Severity table (paper Table I):")
	for _, s := range hazard.SeverityTable() {
		fmt.Fprintf(w, "  %d  %-12s %s\n", int(s), s, s.Description())
	}
	fmt.Fprintln(w, "\nCasualty-model anchors (P(fatality) by impact energy and sheltering):")
	fmt.Fprintf(w, "  %-12s", "energy")
	shelters := []struct {
		name string
		v    float64
	}{{"open(0.5)", 0.5}, {"trees(2.5)", 2.5}, {"building(7.5)", 7.5}}
	for _, s := range shelters {
		fmt.Fprintf(w, " %14s", s.name)
	}
	fmt.Fprintln(w)
	for _, energy := range []float64{80, 700, 8230, 34_000, 1_084_000} {
		fmt.Fprintf(w, "  %-12.0f", energy)
		for _, s := range shelters {
			fmt.Fprintf(w, " %14.4f", hazard.FatalityProbability(energy, s.v))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n(8230 J is the paper's MEDI DELIVERY ballistic impact; 80 J its parachute impact.)")
	return nil
}

// RunE2 derives Table II: it samples impact points of each outcome class
// from generated city scenes, assesses each with the casualty model, and
// compares the modal derived severity against the paper's rating.
func RunE2(e *Env, w io.Writer) error {
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 20))
	scenes := urban.GenerateSet(e.SceneConfig(), urban.DefaultConditions(), 4, e.Cfg.Seed+21)
	spec := uav.MediDelivery()
	ballisticKE := uav.BallisticImpactEnergy(spec.MTOWKg, spec.CruiseAltM)

	type scenario struct {
		id      string
		desc    string
		surface func(imaging.Class) bool
		paper   hazard.Severity
	}
	scenarios := []scenario{
		{"R1", "UAV causes accident involving ground vehicles", func(c imaging.Class) bool { return c == imaging.Road || c == imaging.MovingCar }, hazard.Catastrophic},
		{"R2", "UAV injures people on ground", func(c imaging.Class) bool { return c == imaging.Humans }, hazard.Major},
		{"R3", "Post-crash fire threatens wildlife/environment", func(c imaging.Class) bool { return c == imaging.LowVegetation || c == imaging.Tree }, hazard.Serious},
		{"R4", "UAV collides with infrastructure", func(c imaging.Class) bool { return c == imaging.Building }, hazard.Serious},
		{"R5", "UAV crashes into parked ground vehicle", func(c imaging.Class) bool { return c == imaging.StaticCar }, hazard.Minor},
	}

	fmt.Fprintf(w, "%d Monte-Carlo ballistic impacts per outcome (%.1f kJ, rush hour):\n\n", e.Cfg.MonteCarloImpacts, ballisticKE/1000)
	fmt.Fprintf(w, "  %-3s %-48s %12s %10s %10s %8s\n", "ID", "outcome", "E[fatal]", "derived", "paper", "match")
	allMatch := true
	for _, sc := range scenarios {
		var sumFatal float64
		sevCounts := map[hazard.Severity]int{}
		n := 0
		for n < e.Cfg.MonteCarloImpacts {
			s := scenes[rng.Intn(len(scenes))]
			x, y := rng.Intn(s.Labels.W), rng.Intn(s.Labels.H)
			c := s.Labels.At(x, y)
			if !sc.surface(c) {
				continue
			}
			n++
			a := hazard.Assess(hazard.Impact{
				Surface:        c,
				KineticEnergyJ: ballisticKE,
				SpanM:          spec.SpanM,
				PeoplePerM2:    exposureDensity(sc.id, c),
				TrafficFactor:  urban.TrafficFactor(18), // rush hour: worst case
			})
			sumFatal += a.ExpectedFatalities
			if sc.id == "R3" {
				// R3 *is* the post-crash fire outcome: rate the fire's
				// severity, not the (small) direct strike toll.
				sevCounts[hazard.FireOutcomeSeverity(c)]++
			} else {
				sevCounts[a.Severity]++
			}
		}
		derived := modalSeverity(sevCounts)
		match := "yes"
		if derived != sc.paper {
			match = "NO"
			allMatch = false
		}
		fmt.Fprintf(w, "  %-3s %-48s %12.3f %10s %10s %8s\n",
			sc.id, sc.desc, sumFatal/float64(n), derived, sc.paper, match)
	}
	if !allMatch {
		fmt.Fprintln(w, "\nWARNING: derived severities diverge from the paper's Table II.")
	} else {
		fmt.Fprintln(w, "\nDerived severities reproduce the paper's Table II ordering exactly.")
	}
	return nil
}

// exposureDensity returns the exposed-population density for an outcome
// scenario: R2 is by definition an impact where people are present.
func exposureDensity(id string, c imaging.Class) float64 {
	if id == "R2" {
		return 0.25 // people within the lethal area by construction
	}
	return urban.ClassDensity(c, 18)
}

// modalSeverity returns the most common severity in the histogram, breaking
// ties toward the higher (more conservative) level and returning Negligible
// for an empty histogram. Both E2's derived Table II ratings and the E11
// per-axis marginals print through it, and the tie-break is load-bearing:
// map iteration order must not leak into the byte-identical fleet reports.
func modalSeverity(counts map[hazard.Severity]int) hazard.Severity {
	best, bestN := hazard.Negligible, -1
	for s, n := range counts {
		if n > bestN || (n == bestN && s > best) {
			best, bestN = s, n
		}
	}
	return best
}

// RunE3 reproduces the Section III-D walkthrough: the physics numbers and
// the SORA chain with and without mitigations, then with EL credit.
func RunE3(e *Env, w io.Writer) error {
	spec := uav.MediDelivery()
	v := uav.BallisticImpactSpeed(spec.CruiseAltM)
	ke := uav.KineticEnergy(spec.MTOWKg, v)
	fmt.Fprintf(w, "MEDI DELIVERY physics:\n")
	fmt.Fprintf(w, "  ballistic speed from %.0f m : %6.1f m/s   (paper: 48.5)\n", spec.CruiseAltM, v)
	fmt.Fprintf(w, "  kinetic energy at %.0f kg   : %6.2f kJ    (paper: 8.23)\n", spec.MTOWKg, ke/1000)

	op := sora.Operation{
		Name:           spec.Name,
		SpanM:          spec.SpanM,
		KineticEnergyJ: ke,
		Scenario:       sora.BVLOSPopulated,
		Airspace:       sora.Airspace{MaxHeightFt: spec.CruiseAltM * 3.28084, Urban: true},
	}
	m3 := sora.Mitigation{Type: sora.M3, Integrity: sora.Medium, Assurance: sora.Medium}

	fmt.Fprintln(w, "\nSORA assessments:")
	cases := []struct {
		label string
		mits  []sora.Mitigation
	}{
		{"no mitigations (paper: GRC 7, SAIL VI)", nil},
		{"M3 medium (paper: GRC 6, SAIL V)", []sora.Mitigation{m3}},
		{"M3 medium + EL low", []sora.Mitigation{m3, {Type: sora.ActiveM1, Integrity: sora.Low, Assurance: sora.Low}}},
		{"M3 medium + EL medium", []sora.Mitigation{m3, {Type: sora.ActiveM1, Integrity: sora.Medium, Assurance: sora.Medium}}},
		{"M3 medium + EL high", []sora.Mitigation{m3, {Type: sora.ActiveM1, Integrity: sora.High, Assurance: sora.High}}},
	}
	for _, c := range cases {
		op.Mitigations = c.mits
		a := sora.Assess(op)
		if a.Err != nil {
			fmt.Fprintf(w, "  %-42s GRC %d -> not assignable (%v)\n", c.label, a.FinalGRC, a.Err)
			continue
		}
		burden := sora.OSOBurden(a.SAIL)
		fmt.Fprintf(w, "  %-42s intrinsic GRC %d, final GRC %d, %s, %s, OSO@High %d\n",
			c.label, a.IntrinsicGRC, a.FinalGRC, a.ResidualARC, a.SAIL, burden[sora.High])
	}
	fmt.Fprintln(w, "\nEL as an accepted active-M1 mitigation lowers the SAIL and the high-robustness")
	fmt.Fprintln(w, "OSO burden — the paper's motivation for defining Tables III/IV.")
	return nil
}

// RunE4 prints the paper's Tables III/IV and the automated self-assessment
// of this repository's EL implementation.
func RunE4(e *Env, w io.Writer) error {
	fmt.Fprintln(w, sora.CriteriaTable(sora.Integrity))
	fmt.Fprintln(w, sora.CriteriaTable(sora.Assurance))

	fmt.Fprintln(w, "Self-assessment of this implementation:")
	cases := []struct {
		label  string
		claims core.Claims
	}{
		{"bare implementation", core.Claims{}},
		{"with in-context testing (E7 in-dist)", core.Claims{InContextTesting: true}},
		{"plus OOD validation (E7 sunset, E10)", core.Claims{InContextTesting: true, OODValidation: true}},
		{"plus authority-verified data", core.Claims{InContextTesting: true, OODValidation: true, AuthorityVerifiedData: true}},
		{"plus third-party validation", core.Claims{InContextTesting: true, OODValidation: true, AuthorityVerifiedData: true, ThirdPartyValidation: true}},
	}
	for _, c := range cases {
		integ, assur := sora.EvaluateEL(core.SelfAssessment(c.claims))
		m := core.MitigationClaim(c.claims)
		fmt.Fprintf(w, "  %-40s integrity %-6s assurance %-6s -> robustness %s\n",
			c.label, integ, assur, m.Robustness())
	}
	fmt.Fprintln(w, "\nThe monitor (EL-A-M3) is what unlocks Medium assurance — the paper's key")
	fmt.Fprintln(w, "argument for runtime monitoring of ML components.")
	return nil
}
