package experiments

import (
	"context"
	"fmt"
	"io"

	"safeland"
	"safeland/internal/baseline"
	"safeland/internal/hazard"
	"safeland/internal/imaging"
	"safeland/internal/riskmap"
	"safeland/internal/scenario"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

// RunE8 quantifies the paper's Section II-B.4 limitations argument and the
// EL risk reduction: every landing strategy picks a zone in the same
// emergency scenes, the landing is simulated (parachute from the deployment
// altitude under wind), and the impact is assessed with the casualty model.
//
// Every strategy — the monitored pipeline, the GIS hybrid, and each survey
// baseline — runs as a Selector backend behind a safeland.Engine, and its
// scenes stream out of the shared scenario corpus through Engine.Serve
// over the configured worker pool: the first strategy's fleet generates
// each scene just ahead of its selection, and every later strategy (and
// every later E8 run in the process) serves the same scenes from cache.
// Per-scene wind seeds and the monitor's per-call reseeding make the
// report byte-identical whatever the worker count, and identical between
// the streaming and materialized-batch paths.
func RunE8(e *Env, w io.Writer) error {
	specs := scenario.Set(e.SceneConfig(), urban.DefaultConditions(), e.Cfg.CompareScenes, e.Cfg.Seed+80)
	spec := uav.MediDelivery()

	// Train the tile classifier baseline on the shared training split.
	tiles := baseline.NewTileClassifier()
	tiles.Train(e.Dataset().Train, 6, e.Cfg.Seed+81)

	type method struct {
		name string
		// factory builds the strategy's Engine backend.
		factory safeland.SelectorFactory
		// deployAlt is the parachute deployment altitude; cruise altitude
		// models uncontrolled termination.
		deployAlt float64
	}
	methods := []method{
		{"EL (MSDnet + monitor)", safeland.PipelineSelector(), spec.ParachuteDeployAltM},
		{"hybrid EL + GIS (future work)", safeland.HybridSelector(), spec.ParachuteDeployAltM},
		{"static risk map (GIS)",
			safeland.BaselineSelector(staticRiskmapSelector{cfg: riskmap.DefaultStaticConfig()}), spec.ParachuteDeployAltM},
		{"canny edge density", safeland.BaselineSelector(baseline.NewCanny()), spec.ParachuteDeployAltM},
		{"tile classifier", safeland.BaselineSelector(tiles), spec.ParachuteDeployAltM},
		{"flatness (depth)", safeland.BaselineSelector(baseline.Flatness{}), spec.ParachuteDeployAltM},
		{"uncontrolled FT (parachute)", safeland.BaselineSelector(baseline.FTCenter{}), spec.CruiseAltM},
	}

	fmt.Fprintf(w, "%d emergency scenes, rush hour, wind 2 m/s with gusts.\n", len(specs))
	fmt.Fprintln(w, "Each strategy serves the scene fleet by streaming it through Engine.Serve; zone-selection")
	fmt.Fprintln(w, "quality is scored over the scenes where the method commits to a zone; a refusal")
	fmt.Fprintln(w, "falls back to flight termination from cruise altitude (identical for every")
	fmt.Fprintln(w, "method), accounted separately below.")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-30s %8s %10s %12s %12s %10s\n",
		"method", "picked", "busy-road", "E[fatal]", "worst sev", "sev>=4")

	assessAt := func(s *urban.Scene, x, y, deploy float64, seed int64) (hazard.Assessment, imaging.Class) {
		wind := uav.NewWind(2, 0.4, 0.7, seed)
		dx, dy, _, sink := uav.ParachuteDescent(deploy, spec.ParachuteSinkMS, wind, 0)
		surface := surfaceAt(s, x+dx, y+dy)
		return hazard.Assess(hazard.Impact{
			Surface:        surface,
			KineticEnergyJ: uav.KineticEnergy(spec.MTOWKg, sink),
			SpanM:          spec.SpanM,
			PeoplePerM2:    urban.ClassDensity(surface, 18),
			TrafficFactor:  urban.TrafficFactor(18),
		}), surface
	}

	for _, meth := range methods {
		eng, err := e.EngineWith(meth.factory, 0)
		if err != nil {
			return fmt.Errorf("E8 %s: %w", meth.name, err)
		}
		resps := e.Fleet(context.Background(), eng, specs, scenario.SceneRequest)
		eng.Close()

		var picked, roadHits, severe int
		var expFatal float64
		worst := hazard.Negligible
		for si, resp := range resps {
			if resp.Err != nil {
				return fmt.Errorf("E8 %s scene %d: %w", meth.name, si, resp.Err)
			}
			if !resp.Result.Confirmed {
				continue
			}
			// Cache hit: the fleet's stream already generated this scene.
			s := e.Corpus.Scene(specs[si])
			x, y := resp.Result.Zone.CenterM(s.MPP)
			picked++
			a, surface := assessAt(s, x, y, meth.deployAlt, e.Cfg.Seed+int64(si))
			if surface.BusyRoad() {
				roadHits++
			}
			expFatal += a.ExpectedFatalities
			if a.Severity > worst {
				worst = a.Severity
			}
			if a.Severity >= hazard.Major {
				severe++
			}
		}
		if picked == 0 {
			fmt.Fprintf(w, "  %-30s %5d/%-2d %10s\n", meth.name, 0, len(specs), "-")
			continue
		}
		n := float64(picked)
		fmt.Fprintf(w, "  %-30s %5d/%-2d %9.0f%% %12.4f %12s %9.0f%%\n",
			meth.name, picked, len(specs), 100*float64(roadHits)/n, expFatal/n, worst, 100*float64(severe)/n)
	}

	// The refusal fallback, common to all monitored methods: FT at the
	// emergency position, canopy from cruise altitude, full wind drift.
	var fbFatal float64
	var fbRoad int
	fbWorst := hazard.Negligible
	for si, s := range e.Corpus.Scenes(specs) {
		a, surface := assessAt(s, s.Layout.WorldW/2, s.Layout.WorldH/2, spec.CruiseAltM, e.Cfg.Seed+int64(si))
		fbFatal += a.ExpectedFatalities
		if surface.BusyRoad() {
			fbRoad++
		}
		if a.Severity > fbWorst {
			fbWorst = a.Severity
		}
	}
	n := float64(len(specs))
	fmt.Fprintf(w, "  %-30s %5s/%-2d %9.0f%% %12.4f %12s\n",
		"(refusal fallback: FT@cruise)", "-", len(specs), 100*float64(fbRoad)/n, fbFatal/n, fbWorst)

	fmt.Fprintln(w, "\nExpected shape: when EL commits it avoids busy roads; the geometry-only")
	fmt.Fprintln(w, "vision baselines (edges, flatness, tiles) sometimes select roads/parking —")
	fmt.Fprintln(w, "the paper's II-B.4 criticism. EL's refusals cost fallback terminations,")
	fmt.Fprintln(w, "whose drift from cruise altitude is exactly the risk EL exists to avoid.")
	return nil
}

func surfaceAt(s *urban.Scene, xM, yM float64) imaging.Class {
	px, py := int(xM/s.MPP), int(yM/s.MPP)
	if px < 0 {
		px = 0
	}
	if py < 0 {
		py = 0
	}
	if px >= s.Labels.W {
		px = s.Labels.W - 1
	}
	if py >= s.Labels.H {
		py = s.Labels.H - 1
	}
	return s.Labels.At(px, py)
}
