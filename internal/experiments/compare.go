package experiments

import (
	"fmt"
	"io"

	"safeland/internal/baseline"
	"safeland/internal/core"
	"safeland/internal/hazard"
	"safeland/internal/imaging"
	"safeland/internal/riskmap"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

// RunE8 quantifies the paper's Section II-B.4 limitations argument and the
// EL risk reduction: every landing strategy picks a zone in the same
// emergency scenes, the landing is simulated (parachute from the deployment
// altitude under wind), and the impact is assessed with the casualty model.
func RunE8(e *Env, w io.Writer) error {
	pipe := e.Pipeline()
	scenes := urban.GenerateSet(e.SceneConfig(), urban.DefaultConditions(), e.Cfg.CompareScenes, e.Cfg.Seed+80)
	spec := uav.MediDelivery()

	// Train the tile classifier baseline on the shared training split.
	tiles := baseline.NewTileClassifier()
	tiles.Train(e.Dataset().Train, 6, e.Cfg.Seed+81)

	type method struct {
		name string
		// pick returns the landing point in meters and whether one exists.
		pick func(s *urban.Scene) (float64, float64, bool)
		// deployAlt is the parachute deployment altitude; cruise altitude
		// models uncontrolled termination.
		deployAlt float64
	}
	zonePx := func(s *urban.Scene) int {
		z := int(pipe.Zones.ZoneSizeM / s.MPP)
		if z%2 == 1 {
			z++
		}
		return z
	}
	selectorPick := func(sel baseline.Selector) func(s *urban.Scene) (float64, float64, bool) {
		return func(s *urban.Scene) (float64, float64, bool) {
			z, ok := sel.Select(s, zonePx(s))
			if !ok {
				return 0, 0, false
			}
			x, y := z.CenterM(s.MPP)
			return x, y, true
		}
	}
	hybrid := core.NewHybrid(pipe)
	methods := []method{
		{"EL (MSDnet + monitor)", func(s *urban.Scene) (float64, float64, bool) {
			return pipe.PlanLanding(s, s.Layout.WorldW/2, s.Layout.WorldH/2)
		}, spec.ParachuteDeployAltM},
		{"hybrid EL + GIS (future work)", func(s *urban.Scene) (float64, float64, bool) {
			return hybrid.PlanLanding(s, s.Layout.WorldW/2, s.Layout.WorldH/2)
		}, spec.ParachuteDeployAltM},
		{"static risk map (GIS)", func(s *urban.Scene) (float64, float64, bool) {
			risk := riskmap.BuildStatic(s.Layout, s.Labels.W, s.Labels.H, s.MPP, riskmap.DefaultStaticConfig())
			x0, y0, ok := riskmap.SelectZone(risk, zonePx(s))
			if !ok {
				return 0, 0, false
			}
			zp := float64(zonePx(s))
			return (float64(x0) + zp/2) * s.MPP, (float64(y0) + zp/2) * s.MPP, true
		}, spec.ParachuteDeployAltM},
		{"canny edge density", selectorPick(baseline.NewCanny()), spec.ParachuteDeployAltM},
		{"tile classifier", selectorPick(tiles), spec.ParachuteDeployAltM},
		{"flatness (depth)", selectorPick(baseline.Flatness{}), spec.ParachuteDeployAltM},
		{"uncontrolled FT (parachute)", func(s *urban.Scene) (float64, float64, bool) {
			return s.Layout.WorldW / 2, s.Layout.WorldH / 2, true
		}, spec.CruiseAltM},
	}

	fmt.Fprintf(w, "%d emergency scenes, rush hour, wind 2 m/s with gusts.\n", len(scenes))
	fmt.Fprintln(w, "Zone-selection quality is scored over the scenes where the method commits")
	fmt.Fprintln(w, "to a zone; a refusal falls back to flight termination from cruise altitude")
	fmt.Fprintln(w, "(identical for every method), accounted separately below.")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-30s %8s %10s %12s %12s %10s\n",
		"method", "picked", "busy-road", "E[fatal]", "worst sev", "sev>=4")

	assessAt := func(s *urban.Scene, x, y, deploy float64, seed int64) (hazard.Assessment, imaging.Class) {
		wind := uav.NewWind(2, 0.4, 0.7, seed)
		dx, dy, _, sink := uav.ParachuteDescent(deploy, spec.ParachuteSinkMS, wind, 0)
		surface := surfaceAt(s, x+dx, y+dy)
		return hazard.Assess(hazard.Impact{
			Surface:        surface,
			KineticEnergyJ: uav.KineticEnergy(spec.MTOWKg, sink),
			SpanM:          spec.SpanM,
			PeoplePerM2:    urban.ClassDensity(surface, 18),
			TrafficFactor:  urban.TrafficFactor(18),
		}), surface
	}

	for _, meth := range methods {
		var picked, roadHits, severe int
		var expFatal float64
		worst := hazard.Negligible
		for si, s := range scenes {
			x, y, ok := meth.pick(s)
			if !ok {
				continue
			}
			picked++
			a, surface := assessAt(s, x, y, meth.deployAlt, e.Cfg.Seed+int64(si))
			if surface.BusyRoad() {
				roadHits++
			}
			expFatal += a.ExpectedFatalities
			if a.Severity > worst {
				worst = a.Severity
			}
			if a.Severity >= hazard.Major {
				severe++
			}
		}
		if picked == 0 {
			fmt.Fprintf(w, "  %-30s %5d/%-2d %10s\n", meth.name, 0, len(scenes), "-")
			continue
		}
		n := float64(picked)
		fmt.Fprintf(w, "  %-30s %5d/%-2d %9.0f%% %12.4f %12s %9.0f%%\n",
			meth.name, picked, len(scenes), 100*float64(roadHits)/n, expFatal/n, worst, 100*float64(severe)/n)
	}

	// The refusal fallback, common to all monitored methods: FT at the
	// emergency position, canopy from cruise altitude, full wind drift.
	var fbFatal float64
	var fbRoad int
	fbWorst := hazard.Negligible
	for si, s := range scenes {
		a, surface := assessAt(s, s.Layout.WorldW/2, s.Layout.WorldH/2, spec.CruiseAltM, e.Cfg.Seed+int64(si))
		fbFatal += a.ExpectedFatalities
		if surface.BusyRoad() {
			fbRoad++
		}
		if a.Severity > fbWorst {
			fbWorst = a.Severity
		}
	}
	n := float64(len(scenes))
	fmt.Fprintf(w, "  %-30s %5s/%-2d %9.0f%% %12.4f %12s\n",
		"(refusal fallback: FT@cruise)", "-", len(scenes), 100*float64(fbRoad)/n, fbFatal/n, fbWorst)

	fmt.Fprintln(w, "\nExpected shape: when EL commits it avoids busy roads; the geometry-only")
	fmt.Fprintln(w, "vision baselines (edges, flatness, tiles) sometimes select roads/parking —")
	fmt.Fprintln(w, "the paper's II-B.4 criticism. EL's refusals cost fallback terminations,")
	fmt.Fprintln(w, "whose drift from cruise altitude is exactly the risk EL exists to avoid.")
	return nil
}

func surfaceAt(s *urban.Scene, xM, yM float64) imaging.Class {
	px, py := int(xM/s.MPP), int(yM/s.MPP)
	if px < 0 {
		px = 0
	}
	if py < 0 {
		py = 0
	}
	if px >= s.Labels.W {
		px = s.Labels.W - 1
	}
	if py >= s.Labels.H {
		py = s.Labels.H - 1
	}
	return s.Labels.At(px, py)
}
