package experiments

import (
	"fmt"
	"io"
	"time"

	"safeland"
	"safeland/internal/faults"
)

// chaosRates is the published per-(point, frame) fault mix of the E14
// chaos arm: transient faults at the vehicle points, with shard blackouts
// added as explicit schedule entries (a rate cannot express "shard0 is
// down for frames 1–3").
var chaosRates = faults.Rates{
	SelectorError: 0.25,
	ReplicaStall:  0.10,
	StemCorrupt:   0.25,
}

// chaosInjector builds the E14 injector: seed-keyed transient faults plus
// a deterministic blackout window — shard0 dark for frames 1–3 of every
// descent it hosts (long enough to trip its breaker), shard1 dark for
// frame 1 only (a blip that degrades one frame without opening anything).
func chaosInjector(seed int64) *faults.Injector {
	return faults.NewInjector(seed, chaosRates).
		ScheduleFault(faults.ShardBlackout, "shard0", 1, 2, 3).
		ScheduleFault(faults.ShardBlackout, "shard1", 1)
}

// RunE14 is the chaos drill over the descent-session fleet: the same
// descents as E13, served twice.
//
//   - fault-free arm: one engine, E13's serving mode exactly — its table
//     is pinned byte-identical to E13's by TestE14ChaosDrill;
//   - chaos arm: a two-shard health-aware Router with degraded-mode
//     serving, under the published fault schedule above.
//
// The paper's argument (Figure 1) escalates a monitor refusal to the
// fault-tolerant maneuver rather than trusting a degraded perception
// stack; Guerin et al. 2022 (PAPERS.md) evaluate exactly this kind of
// runtime monitoring under injected faults. E14 extends that contract to
// the serving layer: under injected selector errors, replica stalls, stem
// corruption and shard blackouts, the fleet must report zero hard-failed
// frames — every faulted frame resolves as retried, spilled to a healthy
// shard, or explicitly Degraded with the FT baseline fallback — and a
// degraded verdict must never claim a confirmed zone.
func RunE14(e *Env, w io.Writer) error {
	const framesPerDescent = 5

	fmt.Fprintf(w, "Chaos drill: the E13 %d-frame descents served twice — fault-free on one\n", framesPerDescent)
	fmt.Fprintln(w, "engine, then under a published fault schedule on a two-shard degraded-mode")
	fmt.Fprintln(w, "fleet with health-aware spillover and bounded retry.")
	fmt.Fprintln(w)

	// Fault-free arm: identical construction and serving loop to E13, so
	// its table is byte-identical to E13's (pinned by test).
	eng, err := e.Engine()
	if err != nil {
		return fmt.Errorf("E14: %w", err)
	}
	faultFree, err := runDescentFleet(e, eng, eng, framesPerDescent, "E14 fault-free")
	if err != nil {
		eng.Close()
		return err
	}
	fmt.Fprintln(w, "Fault-free arm (E13 serving mode, pinned byte-identical to E13's table):")
	printDescentTable(w, faultFree)
	if err := eng.Close(); err != nil {
		return fmt.Errorf("E14: closing fault-free engine: %w", err)
	}

	// Published fault schedule: enumerated up front from the injector —
	// a pure function of (seed, kind, point, frame) — so the chaos run is
	// reviewable evidence, not a dice roll. A listed transient fires when
	// serving exercises its injection point (a blacked-out or cold frame
	// never reaches the re-prime hook, for instance).
	seed := e.Cfg.Seed + 140
	inj := chaosInjector(seed)
	var points []string
	for _, split := range descentSplits(e) {
		for si := range split.specs {
			points = append(points, fmt.Sprintf("%s/%d", split.name, si))
		}
	}
	points = append(points, "shard0", "shard1")
	fmt.Fprintf(w, "\nPublished fault schedule (seed %d; selector-error %.2f, replica-stall %.2f,\n",
		seed, chaosRates.SelectorError, chaosRates.ReplicaStall)
	fmt.Fprintf(w, "stem-corrupt %.2f per vehicle-frame; blackouts scheduled explicitly):\n", chaosRates.StemCorrupt)
	fmt.Fprint(w, faults.FormatSchedule(inj.Schedule(points, framesPerDescent)))

	// Chaos arm: two shards sharing the injector, degraded-mode serving,
	// one bounded retry per frame with fast deterministic-jitter backoff.
	shardWorkers := e.Workers() / 2
	if shardWorkers < 1 {
		shardWorkers = 1
	}
	mkShard := func(name string) (*safeland.Engine, error) {
		return e.EngineWith(safeland.PipelineSelector(), shardWorkers,
			safeland.WithShardName(name),
			safeland.WithFaultInjector(inj),
			safeland.WithDegradedFallback(true),
			safeland.WithRetryBackoff(time.Microsecond, time.Millisecond),
		)
	}
	shard0, err := mkShard("shard0")
	if err != nil {
		return fmt.Errorf("E14: %w", err)
	}
	shard1, err := mkShard("shard1")
	if err != nil {
		shard0.Close()
		return fmt.Errorf("E14: %w", err)
	}
	router, err := safeland.NewRouter(shard0, shard1)
	if err != nil {
		shard0.Close()
		shard1.Close()
		return fmt.Errorf("E14: %w", err)
	}
	defer router.Close()

	chaos, err := runDescentFleet(e, router, nil, framesPerDescent, "E14 chaos")
	if err != nil {
		return err
	}
	if len(chaos) != len(faultFree) {
		return fmt.Errorf("E14: chaos arm served %d frames, fault-free arm %d", len(chaos), len(faultFree))
	}

	fmt.Fprintln(w, "\nChaos arm (2 shards, degraded-mode serving, one bounded retry per frame):")
	fmt.Fprintf(w, "  %-18s %7s %9s %9s %8s %7s\n",
		"split", "frames", "served", "degraded", "retried", "reused")
	var totDegraded, totRetried int
	for _, split := range splitNames(chaos) {
		var frames, degraded, retried, reused int
		for _, o := range chaos {
			if o.Split != split {
				continue
			}
			frames++
			if o.Degraded {
				degraded++
			}
			retried += o.Retried
			if o.Reused {
				reused++
			}
		}
		totDegraded += degraded
		totRetried += retried
		// Every frame that reached an outcome was served (runDescentFleet
		// aborts on a hard failure), so availability is frames/frames.
		fmt.Fprintf(w, "  %-18s %7d %8.0f%% %9d %8d %7d\n",
			split, frames, 100.0, degraded, retried, reused)
	}

	// Safety-outcome deltas vs the fault-free arm, frame by frame. A
	// degraded verdict claiming a confirmed zone is the one outcome the
	// contract forbids outright.
	var identical, confirmedToFT, refusalToFT, diverged int
	for i, c := range chaos {
		ff := faultFree[i]
		if c.Degraded {
			if c.Res.Confirmed {
				return fmt.Errorf("E14: degraded verdict on %s frame %d claims a confirmed zone (cause %q)",
					c.Vehicle, c.Frame, c.Cause)
			}
			if c.Cause == "" {
				return fmt.Errorf("E14: degraded verdict on %s frame %d carries no cause", c.Vehicle, c.Frame)
			}
			if ff.Res.Confirmed {
				confirmedToFT++
			} else {
				refusalToFT++
			}
			continue
		}
		if sameZoneOutcome(c.Res, ff.Res, c.W, c.H) {
			identical++
		} else {
			diverged++
		}
	}

	// Fleet counters, cross-checked against the per-frame outcomes so the
	// availability claim rests on the engines' own accounting too.
	var stats safeland.EngineStats
	for _, st := range router.Stats() {
		stats.Frames += st.Frames
		stats.Degraded += st.Degraded
		stats.Retried += st.Retried
		stats.Spilled += st.Spilled
		stats.BreakerOpen += st.BreakerOpen
		stats.Failed += st.Failed
	}
	if stats.Degraded != int64(totDegraded) {
		return fmt.Errorf("E14: engines count %d degraded frames, outcomes count %d", stats.Degraded, totDegraded)
	}
	if stats.Failed != 0 {
		return fmt.Errorf("E14: %d hard-failed requests on the fleet counters", stats.Failed)
	}

	fmt.Fprintf(w, "\nFleet counters: %d frames, %d degraded, %d retries, %d spilled placements,\n",
		stats.Frames, stats.Degraded, stats.Retried, stats.Spilled)
	fmt.Fprintf(w, "%d breaker-opens, %d hard failures.\n", stats.BreakerOpen, stats.Failed)
	fmt.Fprintf(w, "Degraded-frame fraction: %.0f%% (%d/%d); every degraded verdict carried its cause\n",
		100*float64(totDegraded)/float64(len(chaos)), totDegraded, len(chaos))
	fmt.Fprintln(w, "and none claimed a confirmed zone.")
	fmt.Fprintf(w, "Safety outcomes vs fault-free: %d/%d frames identical, %d confirmed verdicts\n",
		identical, len(chaos), confirmedToFT)
	fmt.Fprintf(w, "degraded to the FT fallback, %d refusals degraded, %d diverged.\n", refusalToFT, diverged)
	fmt.Fprintln(w, "Zero hard-failed frames: every faulted frame resolved by retry, spillover, or")
	fmt.Fprintln(w, "an explicit Degraded verdict.")

	fmt.Fprintln(w, "\nConclusion: under injected faults the fleet never silently drops a frame and")
	fmt.Fprintln(w, "never launders a fallback verdict as a verified zone — faults surface as the")
	fmt.Fprintln(w, "paper's FT maneuver (Figure 1), which is exactly the degraded contract the")
	fmt.Fprintln(w, "certification argument needs.")
	return nil
}
