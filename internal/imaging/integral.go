package imaging

// Integral is a summed-area table over a scalar field, supporting O(1)
// rectangle sums. It is used by tile-based landing-zone baselines to compute
// per-tile statistics quickly.
type Integral struct {
	W, H int
	sum  []float64 // (W+1)×(H+1), sum[y][x] = sum of field over [0,x)×[0,y)
}

// NewIntegral builds the summed-area table of m.
func NewIntegral(m *Map) *Integral {
	w, h := m.W, m.H
	it := &Integral{W: w, H: h, sum: make([]float64, (w+1)*(h+1))}
	stride := w + 1
	for y := 0; y < h; y++ {
		var rowSum float64
		for x := 0; x < w; x++ {
			rowSum += float64(m.Pix[y*w+x])
			it.sum[(y+1)*stride+x+1] = it.sum[y*stride+x+1] + rowSum
		}
	}
	return it
}

// RectSum returns the sum of the field over [x0,x1)×[y0,y1). The rectangle
// is clipped to the field bounds; an empty rectangle sums to zero.
func (it *Integral) RectSum(x0, y0, x1, y1 int) float64 {
	x0, y0, x1, y1 = clipRect(x0, y0, x1, y1, it.W, it.H)
	if x0 >= x1 || y0 >= y1 {
		return 0
	}
	stride := it.W + 1
	return it.sum[y1*stride+x1] - it.sum[y0*stride+x1] -
		it.sum[y1*stride+x0] + it.sum[y0*stride+x0]
}

// RectMean returns the mean of the field over [x0,x1)×[y0,y1), 0 if empty.
func (it *Integral) RectMean(x0, y0, x1, y1 int) float64 {
	cx0, cy0, cx1, cy1 := clipRect(x0, y0, x1, y1, it.W, it.H)
	area := (cx1 - cx0) * (cy1 - cy0)
	if area <= 0 {
		return 0
	}
	return it.RectSum(x0, y0, x1, y1) / float64(area)
}

// ClassIntegral holds one summed-area table per class, enabling O(1)
// per-class pixel counts over any rectangle of a label map.
type ClassIntegral struct {
	W, H int
	per  [NumClasses]*Integral
}

// NewClassIntegral builds per-class summed-area tables of lm.
func NewClassIntegral(lm *LabelMap) *ClassIntegral {
	ci := &ClassIntegral{W: lm.W, H: lm.H}
	masks := make([]*Map, NumClasses)
	for c := 0; c < NumClasses; c++ {
		masks[c] = NewMap(lm.W, lm.H)
	}
	for i, c := range lm.Pix {
		if int(c) < NumClasses {
			masks[c].Pix[i] = 1
		}
	}
	for c := 0; c < NumClasses; c++ {
		ci.per[c] = NewIntegral(masks[c])
	}
	return ci
}

// Count returns the number of pixels of class c inside [x0,x1)×[y0,y1).
func (ci *ClassIntegral) Count(c Class, x0, y0, x1, y1 int) int {
	if !c.Valid() {
		return 0
	}
	return int(ci.per[c].RectSum(x0, y0, x1, y1) + 0.5)
}

// Fraction returns the fraction of pixels of class c inside the rectangle.
func (ci *ClassIntegral) Fraction(c Class, x0, y0, x1, y1 int) float64 {
	cx0, cy0, cx1, cy1 := clipRect(x0, y0, x1, y1, ci.W, ci.H)
	area := (cx1 - cx0) * (cy1 - cy0)
	if area <= 0 {
		return 0
	}
	return float64(ci.Count(c, x0, y0, x1, y1)) / float64(area)
}

// BusyRoadFraction returns the fraction of busy-road pixels (road + cars)
// inside the rectangle.
func (ci *ClassIntegral) BusyRoadFraction(x0, y0, x1, y1 int) float64 {
	var f float64
	for _, c := range BusyRoadClasses() {
		f += ci.Fraction(c, x0, y0, x1, y1)
	}
	return f
}
