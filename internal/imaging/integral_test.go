package imaging

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntegralRectSumMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMap(13, 9)
	for i := range m.Pix {
		m.Pix[i] = rng.Float32()
	}
	it := NewIntegral(m)
	naive := func(x0, y0, x1, y1 int) float64 {
		var s float64
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				if m.In(x, y) {
					s += float64(m.At(x, y))
				}
			}
		}
		return s
	}
	rects := [][4]int{
		{0, 0, 13, 9}, {0, 0, 1, 1}, {3, 2, 7, 8}, {12, 8, 13, 9},
		{5, 5, 5, 5}, {-3, -3, 4, 4}, {10, 2, 20, 20},
	}
	for _, r := range rects {
		got := it.RectSum(r[0], r[1], r[2], r[3])
		cx0, cy0, cx1, cy1 := clipRect(r[0], r[1], r[2], r[3], 13, 9)
		want := naive(cx0, cy0, cx1, cy1)
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("RectSum%v = %v, want %v", r, got, want)
		}
	}
}

// TestIntegralAdditivity checks the property that splitting any rectangle
// vertically yields two sums adding to the whole.
func TestIntegralAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMap(24, 24)
	for i := range m.Pix {
		m.Pix[i] = rng.Float32()
	}
	it := NewIntegral(m)
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x0, y0 := r.Intn(20), r.Intn(20)
		x1, y1 := x0+1+r.Intn(24-x0-1), y0+1+r.Intn(24-y0-1)
		if x1-x0 < 2 {
			return true
		}
		mid := x0 + 1 + r.Intn(x1-x0-1)
		whole := it.RectSum(x0, y0, x1, y1)
		split := it.RectSum(x0, y0, mid, y1) + it.RectSum(mid, y0, x1, y1)
		return math.Abs(whole-split) < 1e-4
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIntegralRectMean(t *testing.T) {
	m := NewMap(4, 4)
	m.Fill(2)
	it := NewIntegral(m)
	if got := it.RectMean(0, 0, 4, 4); math.Abs(got-2) > 1e-9 {
		t.Errorf("mean = %v, want 2", got)
	}
	if got := it.RectMean(2, 2, 2, 2); got != 0 {
		t.Errorf("empty-rect mean = %v, want 0", got)
	}
}

func TestClassIntegralCounts(t *testing.T) {
	lm := NewLabelMap(16, 16)
	lm.FillRect(0, 0, 8, 16, Road)
	lm.FillRect(8, 0, 16, 8, Building)
	ci := NewClassIntegral(lm)
	if got := ci.Count(Road, 0, 0, 16, 16); got != 128 {
		t.Errorf("road count = %d, want 128", got)
	}
	if got := ci.Count(Building, 0, 0, 16, 16); got != 64 {
		t.Errorf("building count = %d, want 64", got)
	}
	if got := ci.Count(Clutter, 8, 8, 16, 16); got != 64 {
		t.Errorf("clutter count = %d, want 64", got)
	}
	if got := ci.Fraction(Road, 0, 0, 8, 8); math.Abs(got-1) > 1e-9 {
		t.Errorf("road fraction in road quadrant = %v, want 1", got)
	}
	if got := ci.Count(Class(200), 0, 0, 16, 16); got != 0 {
		t.Errorf("invalid-class count = %d, want 0", got)
	}
}

func TestClassIntegralBusyRoadFraction(t *testing.T) {
	lm := NewLabelMap(10, 10)
	lm.FillRect(0, 0, 5, 10, Road)
	lm.FillRect(5, 0, 7, 10, StaticCar)
	lm.FillRect(7, 0, 8, 10, MovingCar)
	ci := NewClassIntegral(lm)
	if got := ci.BusyRoadFraction(0, 0, 10, 10); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("busy road fraction = %v, want 0.8", got)
	}
	if got := ci.BusyRoadFraction(8, 0, 10, 10); got != 0 {
		t.Errorf("clutter strip busy fraction = %v, want 0", got)
	}
}
