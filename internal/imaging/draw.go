package imaging

// Drawing primitives paint classes into LabelMaps and scalar values into
// Maps. They clip silently at the borders so scene generators can place
// structures partially outside the frame.

// FillRect paints the axis-aligned rectangle [x0,x1)×[y0,y1) with class c.
func (lm *LabelMap) FillRect(x0, y0, x1, y1 int, c Class) {
	x0, y0, x1, y1 = clipRect(x0, y0, x1, y1, lm.W, lm.H)
	for y := y0; y < y1; y++ {
		row := lm.Pix[y*lm.W : (y+1)*lm.W]
		for x := x0; x < x1; x++ {
			row[x] = c
		}
	}
}

// FillRect paints the axis-aligned rectangle [x0,x1)×[y0,y1) with value v.
func (m *Map) FillRect(x0, y0, x1, y1 int, v float32) {
	x0, y0, x1, y1 = clipRect(x0, y0, x1, y1, m.W, m.H)
	for y := y0; y < y1; y++ {
		row := m.Pix[y*m.W : (y+1)*m.W]
		for x := x0; x < x1; x++ {
			row[x] = v
		}
	}
}

func clipRect(x0, y0, x1, y1, w, h int) (int, int, int, int) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > w {
		x1 = w
	}
	if y1 > h {
		y1 = h
	}
	return x0, y0, x1, y1
}

// FillDisk paints a disk of the given radius centered at (cx, cy).
func (lm *LabelMap) FillDisk(cx, cy, r int, c Class) {
	r2 := r * r
	for y := cy - r; y <= cy+r; y++ {
		if y < 0 || y >= lm.H {
			continue
		}
		dy := y - cy
		for x := cx - r; x <= cx+r; x++ {
			if x < 0 || x >= lm.W {
				continue
			}
			dx := x - cx
			if dx*dx+dy*dy <= r2 {
				lm.Pix[y*lm.W+x] = c
			}
		}
	}
}

// FillDisk paints a disk of the given radius centered at (cx, cy).
func (m *Map) FillDisk(cx, cy, r int, v float32) {
	r2 := r * r
	for y := cy - r; y <= cy+r; y++ {
		if y < 0 || y >= m.H {
			continue
		}
		dy := y - cy
		for x := cx - r; x <= cx+r; x++ {
			if x < 0 || x >= m.W {
				continue
			}
			dx := x - cx
			if dx*dx+dy*dy <= r2 {
				m.Pix[y*m.W+x] = v
			}
		}
	}
}

// ThickLine paints a line from (x0, y0) to (x1, y1) with the given half
// width, using a disk stamp along a Bresenham walk. A halfWidth of 0 paints
// a one-pixel line.
func (lm *LabelMap) ThickLine(x0, y0, x1, y1, halfWidth int, c Class) {
	bresenham(x0, y0, x1, y1, func(x, y int) {
		if halfWidth <= 0 {
			if lm.In(x, y) {
				lm.Set(x, y, c)
			}
			return
		}
		lm.FillDisk(x, y, halfWidth, c)
	})
}

// ThickLine paints a line from (x0, y0) to (x1, y1) with the given half
// width into the scalar field.
func (m *Map) ThickLine(x0, y0, x1, y1, halfWidth int, v float32) {
	bresenham(x0, y0, x1, y1, func(x, y int) {
		if halfWidth <= 0 {
			if m.In(x, y) {
				m.Set(x, y, v)
			}
			return
		}
		m.FillDisk(x, y, halfWidth, v)
	})
}

// bresenham walks the integer line from (x0, y0) to (x1, y1) calling visit
// for every pixel, endpoints included.
func bresenham(x0, y0, x1, y1 int, visit func(x, y int)) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		visit(x0, y0)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// FillPolygon paints a simple polygon given by its vertices using an
// even-odd scanline fill. Degenerate polygons (fewer than 3 vertices) are
// ignored.
func (lm *LabelMap) FillPolygon(xs, ys []int, c Class) {
	fillPolygon(xs, ys, lm.W, lm.H, func(x0, x1, y int) {
		row := lm.Pix[y*lm.W : (y+1)*lm.W]
		for x := x0; x < x1; x++ {
			row[x] = c
		}
	})
}

// FillPolygon paints a simple polygon into the scalar field.
func (m *Map) FillPolygon(xs, ys []int, v float32) {
	fillPolygon(xs, ys, m.W, m.H, func(x0, x1, y int) {
		row := m.Pix[y*m.W : (y+1)*m.W]
		for x := x0; x < x1; x++ {
			row[x] = v
		}
	})
}

func fillPolygon(xs, ys []int, w, h int, span func(x0, x1, y int)) {
	n := len(xs)
	if n < 3 || len(ys) != n {
		return
	}
	minY, maxY := ys[0], ys[0]
	for _, y := range ys {
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	if minY < 0 {
		minY = 0
	}
	if maxY >= h {
		maxY = h - 1
	}
	var nodes []float64
	for y := minY; y <= maxY; y++ {
		nodes = nodes[:0]
		fy := float64(y) + 0.5
		j := n - 1
		for i := 0; i < n; i++ {
			yi, yj := float64(ys[i]), float64(ys[j])
			if (yi <= fy && yj > fy) || (yj <= fy && yi > fy) {
				t := (fy - yi) / (yj - yi)
				nodes = append(nodes, float64(xs[i])+t*float64(xs[j]-xs[i]))
			}
			j = i
		}
		// Insertion sort: node lists are tiny.
		for i := 1; i < len(nodes); i++ {
			for k := i; k > 0 && nodes[k] < nodes[k-1]; k-- {
				nodes[k], nodes[k-1] = nodes[k-1], nodes[k]
			}
		}
		for i := 0; i+1 < len(nodes); i += 2 {
			x0, x1 := int(nodes[i]+0.5), int(nodes[i+1]+0.5)
			if x0 < 0 {
				x0 = 0
			}
			if x1 > w {
				x1 = w
			}
			if x0 < x1 {
				span(x0, x1, y)
			}
		}
	}
}
