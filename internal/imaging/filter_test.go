package imaging

import (
	"math"
	"testing"
)

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0, 0.5, 1, 2, 3.7} {
		k := GaussianKernel(sigma)
		if len(k)%2 != 1 {
			t.Fatalf("sigma=%v: kernel length %d not odd", sigma, len(k))
		}
		var sum float64
		for _, v := range k {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("sigma=%v: kernel sums to %v", sigma, sum)
		}
		// Symmetry.
		for i := 0; i < len(k)/2; i++ {
			if k[i] != k[len(k)-1-i] {
				t.Errorf("sigma=%v: kernel asymmetric at %d", sigma, i)
			}
		}
	}
}

func TestGaussianBlurPreservesConstant(t *testing.T) {
	m := NewMap(16, 16)
	m.Fill(0.7)
	out := m.GaussianBlur(2)
	for i, v := range out.Pix {
		if math.Abs(float64(v-0.7)) > 1e-4 {
			t.Fatalf("pixel %d = %v, want 0.7", i, v)
		}
	}
}

func TestGaussianBlurSmoothsImpulse(t *testing.T) {
	m := NewMap(17, 17)
	m.Set(8, 8, 1)
	out := m.GaussianBlur(1.5)
	if out.At(8, 8) >= 1 {
		t.Error("blur did not spread the impulse")
	}
	if out.At(8, 8) <= out.At(0, 0) {
		t.Error("blur center not the maximum")
	}
	// Mass conservation away from borders (impulse far from edge).
	var sum float64
	for _, v := range out.Pix {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("blur mass = %v, want ≈1", sum)
	}
}

func TestImageGaussianBlur(t *testing.T) {
	im := NewImage(9, 9)
	im.Set(4, 4, RGB{1, 0.5, 0})
	out := im.GaussianBlur(1)
	if out.At(4, 4).R >= 1 || out.At(4, 4).R <= out.At(0, 0).R {
		t.Error("image blur center wrong")
	}
	// Channel independence: blue stays zero.
	for _, p := range out.Pix {
		if p.B != 0 {
			t.Fatal("blur leaked into blue channel")
		}
	}
}

func TestSobelDetectsVerticalEdge(t *testing.T) {
	m := NewMap(16, 16)
	m.FillRect(8, 0, 16, 16, 1) // step edge at x=8
	mag, _ := m.Sobel()
	var edgeCol, flatCol float32
	for y := 2; y < 14; y++ {
		edgeCol += mag.At(7, y) + mag.At(8, y)
		flatCol += mag.At(2, y) + mag.At(13, y)
	}
	if edgeCol <= flatCol {
		t.Errorf("edge response %v not above flat response %v", edgeCol, flatCol)
	}
}

func TestCannyFindsRectangleOutline(t *testing.T) {
	m := NewMap(48, 48)
	m.FillRect(12, 12, 36, 36, 1)
	edges := m.Canny(1.0, 0.1, 0.3)
	if n := edges.CountAbove(0.5); n == 0 {
		t.Fatal("Canny found no edges on a high-contrast rectangle")
	}
	// Interior and far exterior must be edge-free.
	if edges.At(24, 24) != 0 {
		t.Error("edge inside flat interior")
	}
	if edges.At(2, 2) != 0 {
		t.Error("edge in flat exterior")
	}
	// Edge pixels concentrate near the rectangle boundary (within 3 px).
	for y := 0; y < 48; y++ {
		for x := 0; x < 48; x++ {
			if edges.At(x, y) == 0 {
				continue
			}
			nearX := minAbs(x-12, x-36)
			nearY := minAbs(y-12, y-36)
			onBoundary := (nearX <= 3 && y >= 9 && y <= 39) || (nearY <= 3 && x >= 9 && x <= 39)
			if !onBoundary {
				t.Fatalf("stray edge at (%d,%d)", x, y)
			}
		}
	}
}

func minAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a < b {
		return a
	}
	return b
}

func TestCannyFlatImageNoEdges(t *testing.T) {
	m := NewMap(32, 32)
	m.Fill(0.5)
	edges := m.Canny(1.4, 0.05, 0.15)
	if n := edges.CountAbove(0.5); n != 0 {
		t.Errorf("flat image produced %d edge pixels", n)
	}
}

func TestCannyHysteresisConnectsWeakEdges(t *testing.T) {
	// A ramp edge: weak gradient should be kept only when connected to a
	// strong segment. Construct a strong edge fading into a weak one.
	m := NewMap(40, 20)
	for y := 0; y < 20; y++ {
		contrast := float32(1.0)
		if y >= 10 {
			contrast = 0.35 // weaker lower half
		}
		for x := 20; x < 40; x++ {
			m.Set(x, y, contrast)
		}
	}
	edges := m.Canny(1.0, 0.05, 0.5)
	strongFound, weakFound := false, false
	for y := 2; y < 9; y++ {
		if edges.At(19, y) == 1 || edges.At(20, y) == 1 {
			strongFound = true
		}
	}
	for y := 12; y < 18; y++ {
		if edges.At(19, y) == 1 || edges.At(20, y) == 1 {
			weakFound = true
		}
	}
	if !strongFound {
		t.Fatal("strong edge not detected")
	}
	if !weakFound {
		t.Error("hysteresis failed to extend into connected weak edge")
	}
}

func BenchmarkCanny128(b *testing.B) {
	n := NewNoise(3)
	m := NewMap(128, 128)
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			m.Set(x, y, n.FBM(float64(x), float64(y), 0.05, 3))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Canny(1.4, 0.05, 0.2)
	}
}
