package imaging

import "testing"

func TestFillRectClips(t *testing.T) {
	lm := NewLabelMap(4, 4)
	lm.FillRect(-2, -2, 10, 2, Road) // clipped to top two rows
	counts := lm.Counts()
	if counts[Road] != 8 {
		t.Fatalf("road pixels = %d, want 8", counts[Road])
	}
	m := NewMap(4, 4)
	m.FillRect(2, 2, 100, 100, 1)
	if got := m.CountAbove(0.5); got != 4 {
		t.Fatalf("map rect pixels = %d, want 4", got)
	}
}

func TestFillDisk(t *testing.T) {
	lm := NewLabelMap(11, 11)
	lm.FillDisk(5, 5, 3, Tree)
	if lm.At(5, 5) != Tree || lm.At(5, 2) != Tree || lm.At(2, 5) != Tree {
		t.Error("disk missing interior/axis pixels")
	}
	if lm.At(0, 0) != Clutter || lm.At(10, 10) != Clutter {
		t.Error("disk overflowed corners")
	}
	// Disk clipped at border must not panic and must paint in-bounds pixels.
	lm.FillDisk(0, 0, 3, Building)
	if lm.At(0, 0) != Building {
		t.Error("clipped disk did not paint origin")
	}
}

func TestThickLine(t *testing.T) {
	lm := NewLabelMap(20, 20)
	lm.ThickLine(0, 10, 19, 10, 2, Road)
	for x := 0; x < 20; x++ {
		if lm.At(x, 10) != Road {
			t.Fatalf("centerline pixel (%d,10) not painted", x)
		}
		if lm.At(x, 12) != Road || lm.At(x, 8) != Road {
			t.Fatalf("line thickness missing at x=%d", x)
		}
	}
	if lm.At(5, 14) == Road {
		t.Error("line thicker than requested")
	}
	// Zero half-width paints a single-pixel diagonal.
	lm2 := NewLabelMap(10, 10)
	lm2.ThickLine(0, 0, 9, 9, 0, MovingCar)
	if lm2.At(0, 0) != MovingCar || lm2.At(9, 9) != MovingCar || lm2.At(5, 5) != MovingCar {
		t.Error("diagonal thin line incomplete")
	}
}

func TestMapThickLine(t *testing.T) {
	m := NewMap(10, 10)
	m.ThickLine(0, 0, 9, 0, 0, 3)
	if m.At(0, 0) != 3 || m.At(9, 0) != 3 {
		t.Error("map thin line endpoints missing")
	}
	m.ThickLine(0, 5, 9, 5, 1, 7)
	if m.At(4, 4) != 7 || m.At(4, 6) != 7 {
		t.Error("map thick line width missing")
	}
}

func TestFillPolygonTriangle(t *testing.T) {
	lm := NewLabelMap(20, 20)
	lm.FillPolygon([]int{2, 18, 2}, []int{2, 2, 18}, Building)
	if lm.At(4, 4) != Building {
		t.Error("triangle interior not filled")
	}
	if lm.At(18, 18) == Building {
		t.Error("triangle filled outside hypotenuse")
	}
	// A degenerate polygon is a no-op.
	before := lm.Counts()
	lm.FillPolygon([]int{1, 2}, []int{1, 2}, Road)
	if lm.Counts() != before {
		t.Error("degenerate polygon painted pixels")
	}
}

func TestFillPolygonMatchesRect(t *testing.T) {
	a := NewLabelMap(16, 16)
	b := NewLabelMap(16, 16)
	a.FillRect(3, 4, 12, 11, Road)
	b.FillPolygon([]int{3, 12, 12, 3}, []int{4, 4, 11, 11}, Road)
	ca, cb := a.Counts(), b.Counts()
	// Scanline center-sampling may differ from half-open rects by at most a
	// one-pixel rim.
	diff := ca[Road] - cb[Road]
	if diff < 0 {
		diff = -diff
	}
	perimeter := 2 * ((12 - 3) + (11 - 4))
	if diff > perimeter {
		t.Errorf("polygon rect fill differs from FillRect by %d pixels (perimeter %d)", diff, perimeter)
	}
}

func TestMapFillPolygon(t *testing.T) {
	m := NewMap(10, 10)
	m.FillPolygon([]int{0, 9, 9, 0}, []int{0, 0, 9, 9}, 1)
	if m.At(5, 5) != 1 {
		t.Error("polygon fill missed center")
	}
}

func TestBresenhamEndpoints(t *testing.T) {
	tests := []struct{ x0, y0, x1, y1 int }{
		{0, 0, 5, 0}, {0, 0, 0, 5}, {5, 5, 0, 0}, {0, 5, 5, 0}, {3, 3, 3, 3},
	}
	for _, tt := range tests {
		var pts [][2]int
		bresenham(tt.x0, tt.y0, tt.x1, tt.y1, func(x, y int) { pts = append(pts, [2]int{x, y}) })
		if len(pts) == 0 {
			t.Fatalf("no points for %+v", tt)
		}
		if pts[0] != [2]int{tt.x0, tt.y0} {
			t.Errorf("line %+v does not start at origin: %v", tt, pts[0])
		}
		if pts[len(pts)-1] != [2]int{tt.x1, tt.y1} {
			t.Errorf("line %+v does not end at target: %v", tt, pts[len(pts)-1])
		}
	}
}
