package imaging

import "math"

// GaussianKernel returns a normalized 1-D Gaussian kernel with the given
// standard deviation. The radius is ceil(3σ), which captures 99.7% of the
// mass; sigma <= 0 yields the identity kernel.
func GaussianKernel(sigma float64) []float32 {
	if sigma <= 0 {
		return []float32{1}
	}
	r := int(math.Ceil(3 * sigma))
	k := make([]float32, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = float32(v)
		sum += v
	}
	inv := float32(1 / sum)
	for i := range k {
		k[i] *= inv
	}
	return k
}

// GaussianBlur returns the field convolved with a separable Gaussian of the
// given standard deviation, using clamp-to-edge boundary handling.
func (m *Map) GaussianBlur(sigma float64) *Map {
	k := GaussianKernel(sigma)
	return m.convolveSeparable(k)
}

// GaussianBlur returns the image blurred channel-wise with a separable
// Gaussian of the given standard deviation.
func (im *Image) GaussianBlur(sigma float64) *Image {
	k := GaussianKernel(sigma)
	r := len(k) / 2
	tmp := NewImage(im.W, im.H)
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var acc RGB
			for i := -r; i <= r; i++ {
				sx := clampInt(x+i, 0, im.W-1)
				acc = acc.Add(im.At(sx, y).Scale(k[i+r]))
			}
			tmp.Set(x, y, acc)
		}
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var acc RGB
			for i := -r; i <= r; i++ {
				sy := clampInt(y+i, 0, im.H-1)
				acc = acc.Add(tmp.At(x, sy).Scale(k[i+r]))
			}
			out.Set(x, y, acc)
		}
	}
	return out
}

func (m *Map) convolveSeparable(k []float32) *Map {
	r := len(k) / 2
	tmp := NewMap(m.W, m.H)
	out := NewMap(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			var acc float32
			for i := -r; i <= r; i++ {
				acc += m.At(clampInt(x+i, 0, m.W-1), y) * k[i+r]
			}
			tmp.Set(x, y, acc)
		}
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			var acc float32
			for i := -r; i <= r; i++ {
				acc += tmp.At(x, clampInt(y+i, 0, m.H-1)) * k[i+r]
			}
			out.Set(x, y, acc)
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sobel computes image gradients with the 3×3 Sobel operator and returns the
// gradient magnitude and the per-pixel gradient direction in radians.
func (m *Map) Sobel() (mag, dir *Map) {
	mag = NewMap(m.W, m.H)
	dir = NewMap(m.W, m.H)
	at := func(x, y int) float32 {
		return m.At(clampInt(x, 0, m.W-1), clampInt(y, 0, m.H-1))
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			gx := -at(x-1, y-1) - 2*at(x-1, y) - at(x-1, y+1) +
				at(x+1, y-1) + 2*at(x+1, y) + at(x+1, y+1)
			gy := -at(x-1, y-1) - 2*at(x, y-1) - at(x+1, y-1) +
				at(x-1, y+1) + 2*at(x, y+1) + at(x+1, y+1)
			mag.Set(x, y, float32(math.Hypot(float64(gx), float64(gy))))
			dir.Set(x, y, float32(math.Atan2(float64(gy), float64(gx))))
		}
	}
	return mag, dir
}

// Canny runs the Canny edge detector: Gaussian smoothing with sigma,
// Sobel gradients, non-maximum suppression, and double-threshold hysteresis
// with low/high magnitude thresholds. The result is a binary map (1 = edge).
func (m *Map) Canny(sigma float64, low, high float32) *Map {
	smooth := m.GaussianBlur(sigma)
	mag, dir := smooth.Sobel()

	// Non-maximum suppression along the quantized gradient direction.
	nms := NewMap(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			v := mag.At(x, y)
			if v == 0 {
				continue
			}
			// Quantize direction to one of four neighbor axes.
			a := dir.At(x, y)
			for a < 0 {
				a += math.Pi
			}
			var dx, dy int
			switch {
			case a < math.Pi/8 || a >= 7*math.Pi/8:
				dx, dy = 1, 0
			case a < 3*math.Pi/8:
				dx, dy = 1, 1
			case a < 5*math.Pi/8:
				dx, dy = 0, 1
			default:
				dx, dy = -1, 1
			}
			n1 := mag.At(clampInt(x+dx, 0, m.W-1), clampInt(y+dy, 0, m.H-1))
			n2 := mag.At(clampInt(x-dx, 0, m.W-1), clampInt(y-dy, 0, m.H-1))
			if v >= n1 && v >= n2 {
				nms.Set(x, y, v)
			}
		}
	}

	// Hysteresis: strong edges seed a BFS that absorbs connected weak edges.
	const (
		unset = 0
		weak  = 1
		edge  = 2
	)
	state := make([]uint8, m.W*m.H)
	var stack []int
	for i, v := range nms.Pix {
		switch {
		case v >= high:
			state[i] = edge
			stack = append(stack, i)
		case v >= low:
			state[i] = weak
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x, y := i%m.W, i/m.W
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := x+dx, y+dy
				if nx < 0 || ny < 0 || nx >= m.W || ny >= m.H {
					continue
				}
				j := ny*m.W + nx
				if state[j] == weak {
					state[j] = edge
					stack = append(stack, j)
				}
			}
		}
	}
	out := NewMap(m.W, m.H)
	for i, s := range state {
		if s == edge {
			out.Pix[i] = 1
		}
	}
	return out
}
