package imaging

import "math"

// DistanceTransform computes the exact Euclidean distance from every pixel
// to the nearest pixel where mask holds, using the Felzenszwalb–Huttenlocher
// lower-envelope algorithm on squared distances (O(W·H)). If no pixel
// satisfies the mask, every distance is +Inf.
//
// Landing-zone selection uses this to score candidate zones by their
// distance to the nearest busy-road pixel.
func (lm *LabelMap) DistanceTransform(mask func(Class) bool) *Map {
	inside := make([]bool, lm.W*lm.H)
	for i, c := range lm.Pix {
		inside[i] = mask(c)
	}
	return distanceTransform(inside, lm.W, lm.H)
}

// DistanceTransform computes the exact Euclidean distance from every pixel
// to the nearest pixel with value >= 0.5 (treating the map as binary).
func (m *Map) DistanceTransform() *Map {
	inside := make([]bool, m.W*m.H)
	for i, v := range m.Pix {
		inside[i] = v >= 0.5
	}
	return distanceTransform(inside, m.W, m.H)
}

func distanceTransform(inside []bool, w, h int) *Map {
	const inf = math.MaxFloat32 / 4
	sq := make([]float32, w*h)
	for i, in := range inside {
		if in {
			sq[i] = 0
		} else {
			sq[i] = inf
		}
	}

	// Column pass then row pass of the 1-D squared-distance transform.
	f := make([]float32, maxInt(w, h))
	d := make([]float32, maxInt(w, h))
	v := make([]int, maxInt(w, h))
	z := make([]float32, maxInt(w, h)+1)

	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			f[y] = sq[y*w+x]
		}
		edt1D(f[:h], d[:h], v[:h], z[:h+1])
		for y := 0; y < h; y++ {
			sq[y*w+x] = d[y]
		}
	}
	for y := 0; y < h; y++ {
		copy(f[:w], sq[y*w:(y+1)*w])
		edt1D(f[:w], d[:w], v[:w], z[:w+1])
		copy(sq[y*w:(y+1)*w], d[:w])
	}

	out := &Map{W: w, H: h, Pix: sq}
	for i, s := range sq {
		if s >= inf {
			out.Pix[i] = float32(math.Inf(1))
		} else {
			out.Pix[i] = float32(math.Sqrt(float64(s)))
		}
	}
	return out
}

// edt1D computes the 1-D squared Euclidean distance transform of sampled
// function f into d, using scratch buffers v (parabola locations) and z
// (envelope boundaries).
func edt1D(f, d []float32, v []int, z []float32) {
	n := len(f)
	if n == 0 {
		return
	}
	const inf = math.MaxFloat32
	k := 0
	v[0] = 0
	z[0] = -inf
	z[1] = inf
	for q := 1; q < n; q++ {
		var s float32
		for {
			p := v[k]
			// Intersection of parabolas rooted at q and p.
			s = ((f[q] + float32(q*q)) - (f[p] + float32(p*p))) / float32(2*(q-p))
			if s > z[k] {
				break
			}
			k--
		}
		k++
		v[k] = q
		z[k] = s
		z[k+1] = inf
	}
	k = 0
	for q := 0; q < n; q++ {
		for z[k+1] < float32(q) {
			k++
		}
		dq := float32(q - v[k])
		d[q] = dq*dq + f[v[k]]
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Components labels the 4-connected components of pixels where pred holds.
// It returns a label per pixel (-1 for pixels not matching pred, otherwise a
// component id in [0, n)) and the component count n.
func (lm *LabelMap) Components(pred func(Class) bool) (labels []int32, n int) {
	return components(lm.W, lm.H, func(i int) bool { return pred(lm.Pix[i]) })
}

// Components labels the 4-connected components of pixels with value >= 0.5.
func (m *Map) Components() (labels []int32, n int) {
	return components(m.W, m.H, func(i int) bool { return m.Pix[i] >= 0.5 })
}

func components(w, h int, in func(int) bool) ([]int32, int) {
	labels := make([]int32, w*h)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int
	next := int32(0)
	for start := 0; start < w*h; start++ {
		if !in(start) || labels[start] >= 0 {
			continue
		}
		labels[start] = next
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			x, y := i%w, i/w
			for _, nb := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
				nx, ny := nb[0], nb[1]
				if nx < 0 || ny < 0 || nx >= w || ny >= h {
					continue
				}
				j := ny*w + nx
				if in(j) && labels[j] < 0 {
					labels[j] = next
					queue = append(queue, j)
				}
			}
		}
		next++
	}
	return labels, int(next)
}

// Region summarizes one connected component.
type Region struct {
	ID                     int
	Area                   int
	MinX, MinY, MaxX, MaxY int     // inclusive bounding box
	CX, CY                 float64 // centroid
}

// Regions computes per-component statistics from a label array produced by
// Components.
func Regions(labels []int32, w, h, n int) []Region {
	regs := make([]Region, n)
	for i := range regs {
		regs[i] = Region{ID: i, MinX: w, MinY: h, MaxX: -1, MaxY: -1}
	}
	for i, l := range labels {
		if l < 0 {
			continue
		}
		r := &regs[l]
		x, y := i%w, i/w
		r.Area++
		r.CX += float64(x)
		r.CY += float64(y)
		if x < r.MinX {
			r.MinX = x
		}
		if y < r.MinY {
			r.MinY = y
		}
		if x > r.MaxX {
			r.MaxX = x
		}
		if y > r.MaxY {
			r.MaxY = y
		}
	}
	for i := range regs {
		if regs[i].Area > 0 {
			regs[i].CX /= float64(regs[i].Area)
			regs[i].CY /= float64(regs[i].Area)
		}
	}
	return regs
}
