package imaging

import (
	"math"
	"testing"
)

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{Clutter, "clutter"},
		{Building, "building"},
		{Road, "road"},
		{StaticCar, "static-car"},
		{Tree, "tree"},
		{LowVegetation, "low-vegetation"},
		{Humans, "humans"},
		{MovingCar, "moving-car"},
		{Class(42), "class(42)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", tt.c, got, tt.want)
		}
	}
}

func TestClassBusyRoad(t *testing.T) {
	want := map[Class]bool{
		Road: true, StaticCar: true, MovingCar: true,
		Clutter: false, Building: false, Tree: false, LowVegetation: false, Humans: false,
	}
	for c, expect := range want {
		if got := c.BusyRoad(); got != expect {
			t.Errorf("%v.BusyRoad() = %v, want %v", c, got, expect)
		}
	}
	if got := len(BusyRoadClasses()); got != 3 {
		t.Errorf("len(BusyRoadClasses()) = %d, want 3 (paper: road, static car, moving car)", got)
	}
}

func TestClassValid(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if !c.Valid() {
			t.Errorf("class %v should be valid", c)
		}
	}
	if Class(NumClasses).Valid() {
		t.Error("class NumClasses should be invalid")
	}
}

func TestRGBOps(t *testing.T) {
	c := RGB{0.2, 0.4, 0.6}
	if got := c.Scale(2); got != (RGB{0.4, 0.8, 1.2}) {
		t.Errorf("Scale = %v", got)
	}
	if got := c.Add(RGB{0.1, 0.1, 0.1}); math.Abs(float64(got.R-0.3)) > 1e-6 {
		t.Errorf("Add.R = %v", got.R)
	}
	if got := c.Clamp(); got != c {
		t.Errorf("Clamp of in-range color changed it: %v", got)
	}
	if got := (RGB{-1, 0.5, 2}).Clamp(); got != (RGB{0, 0.5, 1}) {
		t.Errorf("Clamp = %v, want {0 0.5 1}", got)
	}
	if got := c.Lerp(c, 0.7); got != c {
		t.Errorf("Lerp between identical colors = %v, want %v", got, c)
	}
	mid := (RGB{0, 0, 0}).Lerp(RGB{1, 1, 1}, 0.5)
	if math.Abs(float64(mid.R-0.5)) > 1e-6 {
		t.Errorf("Lerp midpoint = %v", mid)
	}
	white := RGB{1, 1, 1}
	if got := white.Luma(); math.Abs(float64(got-1)) > 1e-5 {
		t.Errorf("Luma(white) = %v, want 1", got)
	}
}

func TestPaletteDistinct(t *testing.T) {
	seen := map[RGB]Class{}
	for c := Class(0); c < NumClasses; c++ {
		p := Palette(c)
		if prev, dup := seen[p]; dup {
			t.Errorf("palette collision: %v and %v both map to %v", prev, c, p)
		}
		seen[p] = c
	}
}

func TestImageCropAndClone(t *testing.T) {
	im := NewImage(8, 6)
	for y := 0; y < 6; y++ {
		for x := 0; x < 8; x++ {
			im.Set(x, y, RGB{R: float32(x), G: float32(y)})
		}
	}
	cl := im.Clone()
	cl.Set(0, 0, RGB{9, 9, 9})
	if im.At(0, 0) == (RGB{9, 9, 9}) {
		t.Fatal("Clone aliases the original pixel buffer")
	}
	cr := im.Crop(2, 1, 4, 3)
	if cr.W != 4 || cr.H != 3 {
		t.Fatalf("crop dims = %dx%d", cr.W, cr.H)
	}
	if got := cr.At(0, 0); got != (RGB{R: 2, G: 1}) {
		t.Errorf("crop origin pixel = %v, want {2 1 0}", got)
	}
	if got := cr.At(3, 2); got != (RGB{R: 5, G: 3}) {
		t.Errorf("crop far pixel = %v, want {5 3 0}", got)
	}
}

func TestImageCropPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds crop")
		}
	}()
	NewImage(4, 4).Crop(2, 2, 4, 4)
}

func TestImageResize(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(0, 0, RGB{1, 0, 0})
	im.Set(3, 3, RGB{0, 0, 1})
	for _, resize := range []struct {
		name string
		fn   func(w, h int) *Image
	}{
		{"nearest", im.ResizeNearest},
		{"bilinear", im.ResizeBilinear},
	} {
		out := resize.fn(8, 2)
		if out.W != 8 || out.H != 2 {
			t.Errorf("%s: dims = %dx%d", resize.name, out.W, out.H)
		}
	}
	// Identity-size bilinear resize preserves a constant image exactly.
	flat := NewImage(5, 5)
	for i := range flat.Pix {
		flat.Pix[i] = RGB{0.25, 0.5, 0.75}
	}
	out := flat.ResizeBilinear(5, 5)
	for i, p := range out.Pix {
		if math.Abs(float64(p.G-0.5)) > 1e-5 {
			t.Fatalf("bilinear changed constant image at %d: %v", i, p)
		}
	}
}

func TestLabelMapCountsFractions(t *testing.T) {
	lm := NewLabelMap(10, 10)
	lm.FillRect(0, 0, 5, 10, Road) // half road
	counts := lm.Counts()
	if counts[Road] != 50 || counts[Clutter] != 50 {
		t.Fatalf("counts = %v", counts)
	}
	fr := lm.Fractions()
	if math.Abs(fr[Road]-0.5) > 1e-9 {
		t.Errorf("road fraction = %v, want 0.5", fr[Road])
	}
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
}

func TestLabelMapMask(t *testing.T) {
	lm := NewLabelMap(4, 4)
	lm.Set(1, 1, Road)
	lm.Set(2, 2, MovingCar)
	m := lm.Mask(Class.BusyRoad)
	if m.At(1, 1) != 1 || m.At(2, 2) != 1 {
		t.Error("mask missed busy-road pixels")
	}
	if m.At(0, 0) != 0 {
		t.Error("mask marked a clutter pixel")
	}
}

func TestLabelMapRenderUsesPalette(t *testing.T) {
	lm := NewLabelMap(2, 1)
	lm.Set(0, 0, Road)
	im := lm.Render()
	if im.At(0, 0) != Palette(Road) {
		t.Errorf("render(road) = %v, want %v", im.At(0, 0), Palette(Road))
	}
	if im.At(1, 0) != Palette(Clutter) {
		t.Errorf("render(clutter) = %v", im.At(1, 0))
	}
}

func TestLabelMapResizeNearest(t *testing.T) {
	lm := NewLabelMap(4, 4)
	lm.FillRect(0, 0, 2, 4, Building)
	out := lm.ResizeNearest(8, 8)
	if out.At(0, 0) != Building || out.At(7, 7) != Clutter {
		t.Error("nearest resize corrupted labels")
	}
	counts := out.Counts()
	if counts[Building] != 32 {
		t.Errorf("building pixels after 2x upsample = %d, want 32", counts[Building])
	}
}

func TestMapBasics(t *testing.T) {
	m := NewMap(3, 3)
	m.Set(1, 1, 5)
	m.Set(2, 2, -1)
	min, max := m.MinMax()
	if min != -1 || max != 5 {
		t.Errorf("MinMax = (%v, %v), want (-1, 5)", min, max)
	}
	if got := m.Mean(); math.Abs(float64(got)-4.0/9.0) > 1e-6 {
		t.Errorf("Mean = %v", got)
	}
	th := m.Threshold(1)
	if th.At(1, 1) != 1 || th.At(0, 0) != 0 || th.At(2, 2) != 0 {
		t.Error("threshold wrong")
	}
	if got := m.CountAbove(0); got != 8 { // >= 0 includes the seven zeros and the 5
		t.Errorf("CountAbove(0) = %d, want 8", got)
	}
	if got := m.CountAbove(1); got != 1 {
		t.Errorf("CountAbove(1) = %d, want 1", got)
	}
	m.Fill(2)
	if m.At(0, 0) != 2 || m.At(2, 2) != 2 {
		t.Error("Fill failed")
	}
	empty := NewMap(0, 0)
	if mn, mx := empty.MinMax(); mn != 0 || mx != 0 {
		t.Error("empty MinMax should be (0,0)")
	}
	if empty.Mean() != 0 {
		t.Error("empty Mean should be 0")
	}
}

func TestLuminance(t *testing.T) {
	im := NewImage(1, 1)
	im.Set(0, 0, RGB{1, 1, 1})
	if got := im.Luminance().At(0, 0); math.Abs(float64(got-1)) > 1e-5 {
		t.Errorf("luminance of white = %v, want 1", got)
	}
}
