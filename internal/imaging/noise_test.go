package imaging

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNoiseDeterministic(t *testing.T) {
	a, b := NewNoise(42), NewNoise(42)
	for i := 0; i < 50; i++ {
		x, y := float64(i)*1.37, float64(i)*0.61
		if a.Value(x, y, 0.3) != b.Value(x, y, 0.3) {
			t.Fatalf("same-seed noise differs at (%v,%v)", x, y)
		}
	}
}

func TestNoiseSeedsDiffer(t *testing.T) {
	a, b := NewNoise(1), NewNoise(2)
	same := 0
	for i := 0; i < 100; i++ {
		x, y := float64(i)*0.913, float64(i%7)*1.771
		if a.Value(x, y, 0.5) == b.Value(x, y, 0.5) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds agree on %d/100 samples", same)
	}
}

func TestNoiseRange(t *testing.T) {
	property := func(seed int64, xi, yi int16) bool {
		n := NewNoise(seed)
		x, y := float64(xi)/7.3, float64(yi)/11.9
		v := n.Value(x, y, 0.45)
		f := n.FBM(x, y, 0.2, 4)
		return v >= 0 && v < 1.0001 && f >= 0 && f < 1.0001
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNoiseSmoothness(t *testing.T) {
	n := NewNoise(9)
	// Adjacent samples at small steps should differ by far less than the
	// full range: value noise is C1.
	var maxStep float64
	prev := n.Value(0, 0, 0.1)
	for i := 1; i < 1000; i++ {
		v := n.Value(float64(i)*0.01, 0, 0.1)
		step := math.Abs(float64(v - prev))
		if step > maxStep {
			maxStep = step
		}
		prev = v
	}
	if maxStep > 0.05 {
		t.Errorf("max adjacent step %v too large for smooth noise", maxStep)
	}
}

func TestFBMZeroOctaves(t *testing.T) {
	n := NewNoise(3)
	if got := n.FBM(1, 2, 0.5, 0); got != 0 {
		t.Errorf("FBM with 0 octaves = %v, want 0", got)
	}
}
