// Package imaging provides the low-level image substrate used across
// safeland: float32 RGB images, UAVid-style dense label maps, scalar field
// maps, drawing primitives, filters (Gaussian, Sobel, Canny), connected
// components, exact Euclidean distance transforms, integral images and
// seeded value-noise textures.
//
// All types use row-major storage and are safe for concurrent reads; writes
// require external synchronization.
package imaging

import "fmt"

// Class is a dense semantic label following the 8-class UAVid taxonomy used
// by the paper (Lyu et al., 2020). Clutter is the zero value: an unlabeled
// pixel is background clutter.
type Class uint8

// The eight UAVid classes. The paper's "busy road" composite is the union of
// Road, StaticCar and MovingCar (Section V-B: "Equation 2 must be verified
// for the three UAVid categories that make up the busy road category").
const (
	Clutter Class = iota // background clutter
	Building
	Road
	StaticCar
	Tree
	LowVegetation
	Humans
	MovingCar

	// NumClasses is the size of the label taxonomy.
	NumClasses = 8
)

// classNames is indexed by Class.
var classNames = [NumClasses]string{
	"clutter", "building", "road", "static-car",
	"tree", "low-vegetation", "humans", "moving-car",
}

// String returns the lowercase UAVid name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Valid reports whether c is one of the eight UAVid classes.
func (c Class) Valid() bool { return c < NumClasses }

// BusyRoad reports whether the class belongs to the paper's busy-road
// composite category that emergency landing must avoid at all costs.
func (c Class) BusyRoad() bool {
	return c == Road || c == StaticCar || c == MovingCar
}

// BusyRoadClasses lists the three classes composing the busy-road category.
func BusyRoadClasses() []Class { return []Class{Road, StaticCar, MovingCar} }

// RGB is a linear-light color with components in [0, 1].
type RGB struct {
	R, G, B float32
}

// Scale returns the color multiplied component-wise by s.
func (c RGB) Scale(s float32) RGB { return RGB{c.R * s, c.G * s, c.B * s} }

// Add returns the component-wise sum of two colors.
func (c RGB) Add(o RGB) RGB { return RGB{c.R + o.R, c.G + o.G, c.B + o.B} }

// Lerp linearly interpolates between c (t=0) and o (t=1).
func (c RGB) Lerp(o RGB, t float32) RGB {
	return RGB{
		R: c.R + (o.R-c.R)*t,
		G: c.G + (o.G-c.G)*t,
		B: c.B + (o.B-c.B)*t,
	}
}

// Clamp limits every component to [0, 1].
func (c RGB) Clamp() RGB {
	cl := func(v float32) float32 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	return RGB{cl(c.R), cl(c.G), cl(c.B)}
}

// Luma returns the Rec.601 luminance of the color.
func (c RGB) Luma() float32 { return 0.299*c.R + 0.587*c.G + 0.114*c.B }

// Palette returns a reference display color for each class, loosely following
// the UAVid annotation palette.
func Palette(c Class) RGB {
	switch c {
	case Building:
		return RGB{0.50, 0.00, 0.00}
	case Road:
		return RGB{0.50, 0.25, 0.50}
	case StaticCar:
		return RGB{0.75, 0.00, 0.75}
	case Tree:
		return RGB{0.00, 0.50, 0.00}
	case LowVegetation:
		return RGB{0.50, 0.50, 0.00}
	case Humans:
		return RGB{1.00, 0.25, 0.00}
	case MovingCar:
		return RGB{0.25, 0.25, 0.75}
	default:
		return RGB{0, 0, 0}
	}
}

// Image is a dense float32 RGB image with interleaved storage.
type Image struct {
	W, H int
	Pix  []RGB // len == W*H, row-major
}

// NewImage allocates a black W×H image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}
}

// At returns the pixel at (x, y). The caller must ensure bounds.
func (im *Image) At(x, y int) RGB { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y). The caller must ensure bounds.
func (im *Image) Set(x, y int, c RGB) { im.Pix[y*im.W+x] = c }

// In reports whether (x, y) lies inside the image bounds.
func (im *Image) In(x, y int) bool { return x >= 0 && y >= 0 && x < im.W && y < im.H }

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Crop returns a copy of the rectangle [x0,x0+w)×[y0,y0+h). It panics if the
// rectangle exceeds the bounds; landing-zone geometry is validated upstream.
func (im *Image) Crop(x0, y0, w, h int) *Image {
	if x0 < 0 || y0 < 0 || x0+w > im.W || y0+h > im.H || w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: crop %dx%d at (%d,%d) out of %dx%d bounds", w, h, x0, y0, im.W, im.H))
	}
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		copy(out.Pix[y*w:(y+1)*w], im.Pix[(y0+y)*im.W+x0:(y0+y)*im.W+x0+w])
	}
	return out
}

// Luminance returns the per-pixel Rec.601 luminance as a scalar Map.
func (im *Image) Luminance() *Map {
	m := NewMap(im.W, im.H)
	for i, p := range im.Pix {
		m.Pix[i] = p.Luma()
	}
	return m
}

// ResizeNearest returns the image resampled to w×h with nearest-neighbor
// interpolation.
func (im *Image) ResizeNearest(w, h int) *Image {
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		sy := y * im.H / h
		for x := 0; x < w; x++ {
			sx := x * im.W / w
			out.Set(x, y, im.At(sx, sy))
		}
	}
	return out
}

// ResizeBilinear returns the image resampled to w×h with bilinear
// interpolation.
func (im *Image) ResizeBilinear(w, h int) *Image {
	out := NewImage(w, h)
	if w <= 0 || h <= 0 {
		return out
	}
	sx := float32(im.W) / float32(w)
	sy := float32(im.H) / float32(h)
	for y := 0; y < h; y++ {
		fy := (float32(y)+0.5)*sy - 0.5
		y0 := int(fy)
		if fy < 0 {
			y0 = 0
			fy = 0
		}
		y1 := y0 + 1
		if y1 >= im.H {
			y1 = im.H - 1
		}
		wy := fy - float32(y0)
		for x := 0; x < w; x++ {
			fx := (float32(x)+0.5)*sx - 0.5
			x0 := int(fx)
			if fx < 0 {
				x0 = 0
				fx = 0
			}
			x1 := x0 + 1
			if x1 >= im.W {
				x1 = im.W - 1
			}
			wx := fx - float32(x0)
			top := im.At(x0, y0).Lerp(im.At(x1, y0), wx)
			bot := im.At(x0, y1).Lerp(im.At(x1, y1), wx)
			out.Set(x, y, top.Lerp(bot, wy))
		}
	}
	return out
}

// LabelMap is a dense per-pixel class assignment.
type LabelMap struct {
	W, H int
	Pix  []Class // len == W*H, row-major
}

// NewLabelMap allocates a W×H label map filled with Clutter.
func NewLabelMap(w, h int) *LabelMap {
	return &LabelMap{W: w, H: h, Pix: make([]Class, w*h)}
}

// At returns the class at (x, y). The caller must ensure bounds.
func (lm *LabelMap) At(x, y int) Class { return lm.Pix[y*lm.W+x] }

// Set writes the class at (x, y). The caller must ensure bounds.
func (lm *LabelMap) Set(x, y int, c Class) { lm.Pix[y*lm.W+x] = c }

// In reports whether (x, y) lies inside the map bounds.
func (lm *LabelMap) In(x, y int) bool { return x >= 0 && y >= 0 && x < lm.W && y < lm.H }

// Clone returns a deep copy of the label map.
func (lm *LabelMap) Clone() *LabelMap {
	out := NewLabelMap(lm.W, lm.H)
	copy(out.Pix, lm.Pix)
	return out
}

// Crop returns a copy of the rectangle [x0,x0+w)×[y0,y0+h).
func (lm *LabelMap) Crop(x0, y0, w, h int) *LabelMap {
	if x0 < 0 || y0 < 0 || x0+w > lm.W || y0+h > lm.H || w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: crop %dx%d at (%d,%d) out of %dx%d bounds", w, h, x0, y0, lm.W, lm.H))
	}
	out := NewLabelMap(w, h)
	for y := 0; y < h; y++ {
		copy(out.Pix[y*w:(y+1)*w], lm.Pix[(y0+y)*lm.W+x0:(y0+y)*lm.W+x0+w])
	}
	return out
}

// Counts returns the number of pixels per class.
func (lm *LabelMap) Counts() [NumClasses]int {
	var n [NumClasses]int
	for _, c := range lm.Pix {
		if c < NumClasses {
			n[c]++
		}
	}
	return n
}

// Fractions returns the fraction of pixels per class.
func (lm *LabelMap) Fractions() [NumClasses]float64 {
	counts := lm.Counts()
	var f [NumClasses]float64
	total := float64(lm.W * lm.H)
	if total == 0 {
		return f
	}
	for i, n := range counts {
		f[i] = float64(n) / total
	}
	return f
}

// Mask returns a binary map that is 1 where pred holds and 0 elsewhere.
func (lm *LabelMap) Mask(pred func(Class) bool) *Map {
	m := NewMap(lm.W, lm.H)
	for i, c := range lm.Pix {
		if pred(c) {
			m.Pix[i] = 1
		}
	}
	return m
}

// Render paints the label map with the UAVid palette, for visual debugging.
func (lm *LabelMap) Render() *Image {
	im := NewImage(lm.W, lm.H)
	for i, c := range lm.Pix {
		im.Pix[i] = Palette(c)
	}
	return im
}

// ResizeNearest returns the label map resampled to w×h (majority is not
// needed for our use: nearest preserves thin structures well enough and is
// exactly what segmentation ground truth resizing conventionally uses).
func (lm *LabelMap) ResizeNearest(w, h int) *LabelMap {
	out := NewLabelMap(w, h)
	for y := 0; y < h; y++ {
		sy := y * lm.H / h
		for x := 0; x < w; x++ {
			out.Set(x, y, lm.At(x*lm.W/w, sy))
		}
	}
	return out
}

// Map is a dense scalar field (edge magnitude, distance, height, density...).
type Map struct {
	W, H int
	Pix  []float32 // len == W*H, row-major
}

// NewMap allocates a zeroed W×H scalar field.
func NewMap(w, h int) *Map {
	return &Map{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the value at (x, y). The caller must ensure bounds.
func (m *Map) At(x, y int) float32 { return m.Pix[y*m.W+x] }

// Set writes the value at (x, y). The caller must ensure bounds.
func (m *Map) Set(x, y int, v float32) { m.Pix[y*m.W+x] = v }

// In reports whether (x, y) lies inside the map bounds.
func (m *Map) In(x, y int) bool { return x >= 0 && y >= 0 && x < m.W && y < m.H }

// Clone returns a deep copy of the map.
func (m *Map) Clone() *Map {
	out := NewMap(m.W, m.H)
	copy(out.Pix, m.Pix)
	return out
}

// Crop returns a copy of the rectangle [x0,x0+w)×[y0,y0+h).
func (m *Map) Crop(x0, y0, w, h int) *Map {
	if x0 < 0 || y0 < 0 || x0+w > m.W || y0+h > m.H || w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: crop %dx%d at (%d,%d) out of %dx%d bounds", w, h, x0, y0, m.W, m.H))
	}
	out := NewMap(w, h)
	for y := 0; y < h; y++ {
		copy(out.Pix[y*w:(y+1)*w], m.Pix[(y0+y)*m.W+x0:(y0+y)*m.W+x0+w])
	}
	return out
}

// MinMax returns the minimum and maximum values of the field. It returns
// (0, 0) for an empty map.
func (m *Map) MinMax() (min, max float32) {
	if len(m.Pix) == 0 {
		return 0, 0
	}
	min, max = m.Pix[0], m.Pix[0]
	for _, v := range m.Pix[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Mean returns the arithmetic mean of the field, 0 for an empty map.
func (m *Map) Mean() float32 {
	if len(m.Pix) == 0 {
		return 0
	}
	var s float64
	for _, v := range m.Pix {
		s += float64(v)
	}
	return float32(s / float64(len(m.Pix)))
}

// Fill sets every pixel to v.
func (m *Map) Fill(v float32) {
	for i := range m.Pix {
		m.Pix[i] = v
	}
}

// Threshold returns a binary map that is 1 where the field is >= t.
func (m *Map) Threshold(t float32) *Map {
	out := NewMap(m.W, m.H)
	for i, v := range m.Pix {
		if v >= t {
			out.Pix[i] = 1
		}
	}
	return out
}

// CountAbove returns the number of pixels with value >= t.
func (m *Map) CountAbove(t float32) int {
	n := 0
	for _, v := range m.Pix {
		if v >= t {
			n++
		}
	}
	return n
}
