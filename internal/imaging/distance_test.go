package imaging

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteDistance computes the exact Euclidean distance transform in O(n²) for
// cross-checking the Felzenszwalb implementation.
func bruteDistance(inside []bool, w, h int) []float32 {
	out := make([]float32, w*h)
	for i := range out {
		out[i] = float32(math.Inf(1))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			best := math.Inf(1)
			for sy := 0; sy < h; sy++ {
				for sx := 0; sx < w; sx++ {
					if !inside[sy*w+sx] {
						continue
					}
					d := math.Hypot(float64(x-sx), float64(y-sy))
					if d < best {
						best = d
					}
				}
			}
			out[y*w+x] = float32(best)
		}
	}
	return out
}

func TestDistanceTransformMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		w, h := 3+rng.Intn(14), 3+rng.Intn(14)
		lm := NewLabelMap(w, h)
		for i := range lm.Pix {
			if rng.Float64() < 0.15 {
				lm.Pix[i] = Road
			}
		}
		got := lm.DistanceTransform(func(c Class) bool { return c == Road })
		inside := make([]bool, w*h)
		for i, c := range lm.Pix {
			inside[i] = c == Road
		}
		want := bruteDistance(inside, w, h)
		for i := range want {
			g, w2 := float64(got.Pix[i]), float64(want[i])
			if math.IsInf(w2, 1) {
				if !math.IsInf(g, 1) {
					t.Fatalf("trial %d pixel %d: got %v, want +Inf", trial, i, g)
				}
				continue
			}
			if math.Abs(g-w2) > 1e-3 {
				t.Fatalf("trial %d pixel %d: got %v, want %v", trial, i, g, w2)
			}
		}
	}
}

func TestDistanceTransformEmptyMask(t *testing.T) {
	lm := NewLabelMap(5, 5)
	d := lm.DistanceTransform(func(c Class) bool { return c == Road })
	for i, v := range d.Pix {
		if !math.IsInf(float64(v), 1) {
			t.Fatalf("pixel %d = %v, want +Inf for empty mask", i, v)
		}
	}
}

func TestDistanceTransformZeroOnMask(t *testing.T) {
	lm := NewLabelMap(9, 9)
	lm.FillDisk(4, 4, 2, Road)
	d := lm.DistanceTransform(func(c Class) bool { return c == Road })
	for y := 0; y < 9; y++ {
		for x := 0; x < 9; x++ {
			if lm.At(x, y) == Road && d.At(x, y) != 0 {
				t.Fatalf("distance at mask pixel (%d,%d) = %v, want 0", x, y, d.At(x, y))
			}
		}
	}
	// The far corner must be at hypot distance from the disk edge.
	want := math.Hypot(4, 4) - 2
	got := float64(d.At(8, 8))
	if math.Abs(got-want) > 1.5 { // disk rasterization tolerance
		t.Errorf("corner distance = %v, want ≈ %v", got, want)
	}
}

// TestDistanceTransformLipschitz checks the metric property that neighboring
// pixels differ by at most 1 in distance (1-Lipschitz along the grid).
func TestDistanceTransformLipschitz(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 4+rng.Intn(20), 4+rng.Intn(20)
		m := NewMap(w, h)
		placed := false
		for i := range m.Pix {
			if rng.Float64() < 0.1 {
				m.Pix[i] = 1
				placed = true
			}
		}
		if !placed {
			m.Pix[rng.Intn(w*h)] = 1
		}
		d := m.DistanceTransform()
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if x+1 < w {
					if math.Abs(float64(d.At(x+1, y)-d.At(x, y))) > 1+1e-4 {
						return false
					}
				}
				if y+1 < h {
					if math.Abs(float64(d.At(x, y+1)-d.At(x, y))) > 1+1e-4 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestComponentsSeparatesRegions(t *testing.T) {
	lm := NewLabelMap(10, 10)
	lm.FillRect(0, 0, 3, 3, Building)
	lm.FillRect(6, 6, 9, 9, Building)
	labels, n := lm.Components(func(c Class) bool { return c == Building })
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if labels[0] == labels[6*10+6] {
		t.Error("disjoint regions share a label")
	}
	if labels[5*10+5] != -1 {
		t.Error("background pixel labeled")
	}
}

func TestComponentsDiagonalNotConnected(t *testing.T) {
	m := NewMap(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	_, n := m.Components()
	if n != 2 {
		t.Fatalf("diagonal pixels should form 2 four-connected components, got %d", n)
	}
}

func TestRegions(t *testing.T) {
	lm := NewLabelMap(10, 10)
	lm.FillRect(2, 3, 5, 7, Tree) // 3 wide, 4 tall = 12 px
	labels, n := lm.Components(func(c Class) bool { return c == Tree })
	regs := Regions(labels, 10, 10, n)
	if len(regs) != 1 {
		t.Fatalf("regions = %d, want 1", len(regs))
	}
	r := regs[0]
	if r.Area != 12 {
		t.Errorf("area = %d, want 12", r.Area)
	}
	if r.MinX != 2 || r.MaxX != 4 || r.MinY != 3 || r.MaxY != 6 {
		t.Errorf("bbox = (%d,%d)-(%d,%d)", r.MinX, r.MinY, r.MaxX, r.MaxY)
	}
	if math.Abs(r.CX-3) > 1e-9 || math.Abs(r.CY-4.5) > 1e-9 {
		t.Errorf("centroid = (%v,%v), want (3,4.5)", r.CX, r.CY)
	}
}

func BenchmarkDistanceTransform256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lm := NewLabelMap(256, 256)
	for i := range lm.Pix {
		if rng.Float64() < 0.05 {
			lm.Pix[i] = Road
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm.DistanceTransform(Class.BusyRoad)
	}
}
