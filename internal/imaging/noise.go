package imaging

import "math"

// Noise is a seeded, deterministic fractal value-noise field used for
// procedural textures (asphalt grain, grass mottling, roof weathering).
// The zero value is unusable; construct with NewNoise.
type Noise struct {
	seed uint64
}

// NewNoise returns a noise field derived from the seed. Two fields with the
// same seed produce identical values.
func NewNoise(seed int64) *Noise {
	return &Noise{seed: splitmix64(uint64(seed))}
}

// hash2 produces a deterministic value in [0, 1) from integer lattice
// coordinates, decorrelated by the field seed.
func (n *Noise) hash2(x, y int64) float32 {
	h := splitmix64(uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ n.seed)
	return float32(h>>11) / float32(1<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Value returns smooth value noise in [0, 1) at continuous position (x, y)
// with the given feature frequency (features per unit distance).
func (n *Noise) Value(x, y, freq float64) float32 {
	fx, fy := x*freq, y*freq
	x0, y0 := int64(math.Floor(fx)), int64(math.Floor(fy))
	tx := float32(fx - math.Floor(fx))
	ty := float32(fy - math.Floor(fy))
	// Smoothstep fade for C1 continuity.
	tx = tx * tx * (3 - 2*tx)
	ty = ty * ty * (3 - 2*ty)
	v00 := n.hash2(x0, y0)
	v10 := n.hash2(x0+1, y0)
	v01 := n.hash2(x0, y0+1)
	v11 := n.hash2(x0+1, y0+1)
	top := v00 + (v10-v00)*tx
	bot := v01 + (v11-v01)*tx
	return top + (bot-top)*ty
}

// FBM returns fractal Brownian motion: octaves of value noise with
// per-octave frequency doubling and gain 0.5, normalized to [0, 1).
func (n *Noise) FBM(x, y, freq float64, octaves int) float32 {
	var sum, amp, norm float32 = 0, 1, 0
	for o := 0; o < octaves; o++ {
		sum += amp * n.Value(x, y, freq)
		norm += amp
		amp *= 0.5
		freq *= 2
	}
	if norm == 0 {
		return 0
	}
	return sum / norm
}
