package scenario

import (
	"math/rand"

	"safeland/internal/imaging"
)

// CloneImage deep-copies a frame. Descent synthesis mutates each frame's
// predecessor, and cached corpus scenes are immutable by contract, so every
// derived frame starts from a copy.
func CloneImage(img *imaging.Image) *imaging.Image {
	out := imaging.NewImage(img.W, img.H)
	copy(out.Pix, img.Pix)
	return out
}

// Descent parameterizes one vehicle's synthetic frame stream over a base
// scene. The zero value plus a Frames count is usable; Frames <= 0 yields
// an empty stream.
type Descent struct {
	// Frames is the stream length.
	Frames int
	// PatchPx is the side of the per-frame perturbed patch; <= 0 uses 10.
	// Consecutive frames differ only inside this patch, so the deltas are
	// locality-bounded — the shape session temporal reuse is built for.
	PatchPx int
	// Amplitude is the per-channel perturbation half-range; <= 0 uses 0.03.
	// The perturbation models sensor noise and small appearance drift, mild
	// enough that it does not read as an anomaly to the monitor.
	Amplitude float32
	// Seed drives the perturbation; DescentFrames is deterministic in
	// (base, Descent), so the same vehicle seed replays the same stream.
	Seed int64
}

// DescentFrames synthesizes the frame stream of one descent over base:
// frame k clones frame k-1 (frame 0 clones base) and perturbs a PatchPx
// patch whose position advances deterministically with k.
func DescentFrames(base *imaging.Image, d Descent) []*imaging.Image {
	patch := d.PatchPx
	if patch <= 0 {
		patch = 10
	}
	if patch > base.W {
		patch = base.W
	}
	if patch > base.H {
		patch = base.H
	}
	amp := d.Amplitude
	if amp <= 0 {
		amp = 0.03
	}
	if d.Frames <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(d.Seed))
	clamp := func(v float32) float32 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	frames := make([]*imaging.Image, d.Frames)
	prev := base
	for k := range frames {
		f := CloneImage(prev)
		x0, y0 := 0, 0
		if base.W > patch {
			x0 = (7 + 13*k) % (base.W - patch)
		}
		if base.H > patch {
			y0 = (11 + 9*k) % (base.H - patch)
		}
		for y := y0; y < y0+patch; y++ {
			for x := x0; x < x0+patch; x++ {
				p := &f.Pix[y*f.W+x]
				p.R = clamp(p.R + (rng.Float32()-0.5)*2*amp)
				p.G = clamp(p.G + (rng.Float32()-0.5)*2*amp)
				p.B = clamp(p.B + (rng.Float32()-0.5)*2*amp)
			}
		}
		frames[k] = f
		prev = f
	}
	return frames
}
