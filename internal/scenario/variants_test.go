package scenario

import (
	"reflect"
	"strings"
	"testing"

	"safeland/internal/uav"
	"safeland/internal/urban"
)

func TestAxesEnumerateEmptyAxisError(t *testing.T) {
	cases := []struct {
		axis   string
		mutate func(*Axes)
	}{
		{"Layouts", func(a *Axes) { a.Layouts = nil }},
		{"Densities", func(a *Axes) { a.Densities = nil }},
		{"Winds", func(a *Axes) { a.Winds = nil }},
		{"Failures", func(a *Axes) { a.Failures = nil }},
		{"Hours", func(a *Axes) { a.Hours = nil }},
	}
	for _, tc := range cases {
		a := DefaultAxes()
		tc.mutate(&a)
		scens, err := a.Enumerate(64, 7)
		if err == nil {
			t.Fatalf("empty %s axis enumerated %d scenarios without error", tc.axis, len(scens))
		}
		if !strings.Contains(err.Error(), tc.axis) {
			t.Errorf("empty-%s error does not name the axis: %v", tc.axis, err)
		}
		if scens != nil {
			t.Errorf("empty %s axis returned scenarios alongside the error", tc.axis)
		}
	}

	// The fully-empty grid names every axis.
	if _, err := (Axes{}).Enumerate(64, 7); err == nil {
		t.Fatal("zero-value axes enumerated without error")
	}
}

func TestAxesTruncateShapesGrid(t *testing.T) {
	a := DefaultAxes()

	cut := a.Truncate(2)
	if cut.Scenarios() != 2*2*2*2*2 {
		t.Fatalf("Truncate(2) yields %d scenarios, want 32", cut.Scenarios())
	}
	if cut.DistinctScenes() != 2*2*2 {
		t.Fatalf("Truncate(2) yields %d distinct scenes, want 8", cut.DistinctScenes())
	}
	if got := a.Truncate(0); !reflect.DeepEqual(got, a) {
		t.Fatal("Truncate(0) must keep the grid unchanged")
	}
	if got := a.Truncate(99); !reflect.DeepEqual(got, a) {
		t.Fatal("Truncate beyond the axis lengths must keep the grid unchanged")
	}

	named, err := a.TruncateAxis("winds", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(named.Winds) != 1 || len(named.Layouts) != len(a.Layouts) {
		t.Fatalf("TruncateAxis(winds, 1) got %d winds / %d layouts", len(named.Winds), len(named.Layouts))
	}
	if _, err := a.TruncateAxis("bogus", 1); err == nil {
		t.Fatal("unknown axis name must error")
	}
	if _, err := a.TruncateAxis("hours", 0); err == nil {
		t.Fatal("truncating an axis to zero variants must error")
	}
	if _, err := a.TruncateAxis("winds", len(a.Winds)+1); err == nil {
		t.Fatal("selecting more variants than the axis defines must error")
	}
	if same, err := a.TruncateAxis("winds", len(a.Winds)); err != nil || len(same.Winds) != len(a.Winds) {
		t.Fatalf("selecting the full axis must be a no-op (err=%v)", err)
	}

	wantNames := []string{"layouts", "densities", "winds", "failures", "hours"}
	if !reflect.DeepEqual(AxisNames(), wantNames) {
		t.Fatalf("AxisNames() = %v, want %v", AxisNames(), wantNames)
	}

	// A truncated grid is a sub-grid: surviving scenarios keep their seeds.
	full, err := a.Enumerate(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[string]int64{}
	for _, sc := range full {
		seeds[sc.Name] = sc.Spec.Seed
	}
	cutScens, err := cut.Enumerate(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range cutScens {
		want, ok := seeds[sc.Name]
		if !ok {
			t.Fatalf("truncated grid invented scenario %q", sc.Name)
		}
		if sc.Spec.Seed != want {
			t.Fatalf("scenario %q changed seed under truncation", sc.Name)
		}
	}
}

func TestScenarioCarriesAxisValues(t *testing.T) {
	a := DefaultAxes()
	scens, err := a.Enumerate(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scens {
		wantName := sc.Layout.Name + "/" + sc.Density.Name + "/" + sc.Wind.Name + "/" + sc.Failure.Name + "/" + sc.HourName()
		if sc.Name != wantName {
			t.Fatalf("scenario name %q does not recompose from its axis values (%q)", sc.Name, wantName)
		}
	}
}

// fuzzAxes builds a synthetic grid with nl×nd×nw×nf×nh variants, each with
// a distinct stable name, so FuzzAxesEnumerate can exercise arbitrary grid
// shapes without generating any scenes.
func fuzzAxes(nl, nd, nw, nf, nh int) Axes {
	var a Axes
	for i := 0; i < nl; i++ {
		cfg := urban.DefaultConfig()
		cfg.ParkProb += float64(i) * 0.01
		a.Layouts = append(a.Layouts, LayoutVariant{Name: sprintN("lay", i), Cfg: cfg})
	}
	for i := 0; i < nd; i++ {
		a.Densities = append(a.Densities, DensityVariant{Name: sprintN("den", i), TrafficScale: 1 + float64(i)*0.25, PedestrianScale: 1})
	}
	for i := 0; i < nw; i++ {
		a.Winds = append(a.Winds, WindVariant{Name: sprintN("wind", i), MeanMS: float64(i), GustStd: 0.2})
	}
	kinds := []uav.FailureKind{uav.NavigationLoss, uav.BatteryCritical, uav.EngineFailure}
	for i := 0; i < nf; i++ {
		a.Failures = append(a.Failures, FailureVariant{Name: sprintN("fail", i), Kind: kinds[i%len(kinds)], AtS: 5})
	}
	for i := 0; i < nh; i++ {
		a.Hours = append(a.Hours, float64(i))
	}
	return a
}

func sprintN(prefix string, i int) string { return prefix + string(rune('a'+i)) }

// FuzzAxesEnumerate fuzzes grid shapes and base seeds. Invariants: empty
// axes error instead of panicking or yielding a vacuous grid; otherwise
// enumeration is deterministic, scenario names are unique, and the number
// of distinct scene specs matches the wind×failure collapse formula.
func FuzzAxesEnumerate(f *testing.F) {
	f.Add(uint8(3), uint8(3), uint8(3), uint8(3), uint8(3), int64(7), 64)
	f.Add(uint8(0), uint8(1), uint8(1), uint8(1), uint8(1), int64(1), 32)
	f.Add(uint8(1), uint8(2), uint8(4), uint8(1), uint8(5), int64(-9), 0)
	f.Fuzz(func(t *testing.T, nl, nd, nw, nf, nh uint8, baseSeed int64, sizePx int) {
		const maxAxis = 5 // keeps the cross product small; shapes still vary
		a := fuzzAxes(int(nl%(maxAxis+1)), int(nd%(maxAxis+1)), int(nw%(maxAxis+1)), int(nf%(maxAxis+1)), int(nh%(maxAxis+1)))

		scens, err := a.Enumerate(sizePx, baseSeed)
		if a.Scenarios() == 0 {
			if err == nil {
				t.Fatalf("grid %dx%dx%dx%dx%d with an empty axis enumerated without error",
					len(a.Layouts), len(a.Densities), len(a.Winds), len(a.Failures), len(a.Hours))
			}
			return
		}
		if err != nil {
			t.Fatalf("non-empty grid errored: %v", err)
		}
		if len(scens) != a.Scenarios() {
			t.Fatalf("enumerated %d scenarios, want %d", len(scens), a.Scenarios())
		}

		again, err := a.Enumerate(sizePx, baseSeed)
		if err != nil || !reflect.DeepEqual(scens, again) {
			t.Fatal("enumeration order is not deterministic")
		}

		names := map[string]bool{}
		keys := map[string]bool{}
		for _, sc := range scens {
			if names[sc.Name] {
				t.Fatalf("duplicate scenario name %q", sc.Name)
			}
			names[sc.Name] = true
			keys[sc.Spec.Key()] = true
			if sc.Spec.Cfg.W != sizePx || sc.Spec.Cfg.H != sizePx {
				t.Fatalf("scenario %q ignores the requested scene size", sc.Name)
			}
		}
		if len(keys) != a.DistinctScenes() {
			t.Fatalf("grid of %d scenarios resolves to %d distinct scene specs, want %d (wind x failure collapse)",
				len(scens), len(keys), a.DistinctScenes())
		}
	})
}
