package scenario

import (
	"fmt"
	"hash/fnv"
	"strings"

	"safeland/internal/uav"
	"safeland/internal/urban"
)

// The variant layer enumerates the operating-condition grid the Table III
// criteria demand validation over: urban layout × density × wind × failure
// profile × time-of-day. Every combination resolves to a content-derived
// seed, so the grid is stable under reordering and extension — adding a
// variant never reshuffles the scenes of the existing ones.

// LayoutVariant is one urban-morphology preset.
type LayoutVariant struct {
	Name string
	Cfg  urban.Config
}

// DensityVariant scales the traffic and pedestrian load of a layout.
type DensityVariant struct {
	Name string
	// TrafficScale multiplies moving/parked car density.
	TrafficScale float64
	// PedestrianScale multiplies the per-block pedestrian cap.
	PedestrianScale float64
}

// WindVariant is one wind regime for the landing-phase simulation.
type WindVariant struct {
	Name    string
	MeanMS  float64
	GustStd float64
}

// New builds the variant's wind field with the given seed, blowing along
// +x (the drift direction is immaterial to the drift-magnitude criteria).
func (v WindVariant) New(seed int64) *uav.Wind {
	return uav.NewWind(v.MeanMS, 0, v.GustStd, seed)
}

// FailureVariant is one failure-injection profile for mission fleets.
type FailureVariant struct {
	Name string
	Kind uav.FailureKind
	// AtS is the injection time; ClearAtS clears a temporary failure
	// (0 = permanent).
	AtS, ClearAtS float64
}

// Injection returns the profile as a mission failure event.
func (v FailureVariant) Injection() uav.TimedFailure {
	return uav.TimedFailure{AtS: v.AtS, Kind: v.Kind, ClearAtS: v.ClearAtS}
}

// Axes spans the scenario grid; Enumerate crosses every axis.
type Axes struct {
	Layouts   []LayoutVariant
	Densities []DensityVariant
	Winds     []WindVariant
	Failures  []FailureVariant
	// Hours are local times of day; they drive exposure (diurnal density)
	// and the rendered lighting.
	Hours []float64
}

// Scenario is one fully-specified operating condition: the scene recipe
// plus the dynamic conditions (wind, failure) a mission fleet injects.
type Scenario struct {
	// Name concatenates the variant names; it doubles as the stable
	// identity the per-scenario seed derives from.
	Name    string
	Spec    Spec
	Layout  LayoutVariant
	Density DensityVariant
	Wind    WindVariant
	Failure FailureVariant
	Hour    float64
}

// HourName is the stable axis-value label for the scenario's time of day,
// matching the segment used in Name.
func (s Scenario) HourName() string { return fmt.Sprintf("h%.1f", s.Hour) }

// WindSeed is the deterministic seed for this scenario's wind field. It
// hashes the full scenario name, so two scenarios sharing a scene (same
// layout, density and hour) still fly under decorrelated gust sequences.
func (s Scenario) WindSeed() int64 { return variantSeed(s.Spec.Seed, s.Name) }

// DefaultAxes returns the reference grid: three urban morphologies, three
// load levels, three wind regimes, the three failure kinds that reach the
// emergency-landing path, and the two commute peaks plus a night slot.
func DefaultAxes() Axes {
	dense := urban.DefaultConfig()
	dense.RoadSpacingMin, dense.RoadSpacingMax = 30, 52
	dense.ParkProb, dense.PlazaProb = 0.10, 0.06
	open := urban.DefaultConfig()
	open.RoadSpacingMin, open.RoadSpacingMax = 56, 96
	open.ParkProb, open.PlazaProb = 0.34, 0.14
	return Axes{
		Layouts: []LayoutVariant{
			{Name: "dense-grid", Cfg: dense},
			{Name: "mid-city", Cfg: urban.DefaultConfig()},
			{Name: "open-suburb", Cfg: open},
		},
		Densities: []DensityVariant{
			{Name: "rush", TrafficScale: 1.5, PedestrianScale: 1.5},
			{Name: "daytime", TrafficScale: 1, PedestrianScale: 1},
			{Name: "quiet", TrafficScale: 0.35, PedestrianScale: 0.3},
		},
		Winds: []WindVariant{
			{Name: "calm", MeanMS: 0.5, GustStd: 0.2},
			{Name: "moderate", MeanMS: 2, GustStd: 0.7},
			{Name: "gusty", MeanMS: 5, GustStd: 1.5},
		},
		Failures: []FailureVariant{
			{Name: "nav-loss", Kind: uav.NavigationLoss, AtS: 5},
			{Name: "engine", Kind: uav.EngineFailure, AtS: 5},
			{Name: "battery", Kind: uav.BatteryCritical, AtS: 5},
		},
		Hours: []float64{8.5, 14, 22},
	}
}

// Scenarios returns the grid size — the product of the axis lengths (zero
// when any axis is empty).
func (a Axes) Scenarios() int {
	return len(a.Layouts) * len(a.Densities) * len(a.Winds) * len(a.Failures) * len(a.Hours)
}

// DistinctScenes returns how many distinct scene specs the grid collapses
// to under the corpus: wind and failure variants share a scene, so only
// layout × density × hour cells generate.
func (a Axes) DistinctScenes() int {
	return len(a.Layouts) * len(a.Densities) * len(a.Hours)
}

// validate rejects a grid with an empty axis: the cross product would
// silently enumerate zero scenarios, which reads as "nothing to validate"
// instead of the configuration mistake it is.
func (a Axes) validate() error {
	var empty []string
	if len(a.Layouts) == 0 {
		empty = append(empty, "Layouts")
	}
	if len(a.Densities) == 0 {
		empty = append(empty, "Densities")
	}
	if len(a.Winds) == 0 {
		empty = append(empty, "Winds")
	}
	if len(a.Failures) == 0 {
		empty = append(empty, "Failures")
	}
	if len(a.Hours) == 0 {
		empty = append(empty, "Hours")
	}
	if len(empty) > 0 {
		return fmt.Errorf("scenario: axes grid enumerates no scenarios: empty axis %s (every axis needs at least one variant)",
			strings.Join(empty, ", "))
	}
	return nil
}

// Truncate returns a copy of the grid with every axis cut to its first n
// variants; n < 1 keeps the grid unchanged. The copy shares the variant
// values (they are treated as immutable presets).
func (a Axes) Truncate(n int) Axes {
	if n < 1 {
		return a
	}
	out := a
	if len(out.Layouts) > n {
		out.Layouts = out.Layouts[:n]
	}
	if len(out.Densities) > n {
		out.Densities = out.Densities[:n]
	}
	if len(out.Winds) > n {
		out.Winds = out.Winds[:n]
	}
	if len(out.Failures) > n {
		out.Failures = out.Failures[:n]
	}
	if len(out.Hours) > n {
		out.Hours = out.Hours[:n]
	}
	return out
}

// TruncateAxis returns a copy of the grid with the named axis cut to its
// first n variants. Axis names are lowercase plurals: layouts, densities,
// winds, failures, hours. Unlike the clamp-style Truncate, a named request
// is explicit, so n must be between 1 and the axis length — asking for
// more variants than the grid defines is an error, not a silent clamp.
// Because content-derived seeds never reshuffle a surviving combination,
// truncation selects a sub-grid of the full one.
func (a Axes) TruncateAxis(name string, n int) (Axes, error) {
	if n < 1 {
		return Axes{}, fmt.Errorf("scenario: axis %q needs at least one variant (got %d)", name, n)
	}
	out := a
	var have int
	switch name {
	case "layouts":
		if have = len(out.Layouts); have >= n {
			out.Layouts = out.Layouts[:n]
		}
	case "densities":
		if have = len(out.Densities); have >= n {
			out.Densities = out.Densities[:n]
		}
	case "winds":
		if have = len(out.Winds); have >= n {
			out.Winds = out.Winds[:n]
		}
	case "failures":
		if have = len(out.Failures); have >= n {
			out.Failures = out.Failures[:n]
		}
	case "hours":
		if have = len(out.Hours); have >= n {
			out.Hours = out.Hours[:n]
		}
	default:
		return Axes{}, fmt.Errorf("scenario: unknown axis %q (want layouts, densities, winds, failures or hours)", name)
	}
	if have < n {
		return Axes{}, fmt.Errorf("scenario: axis %q has %d variants, cannot select %d", name, have, n)
	}
	return out, nil
}

// AxisNames returns the valid TruncateAxis names in enumeration order —
// the vocabulary flag parsers iterate.
func AxisNames() []string {
	return []string{"layouts", "densities", "winds", "failures", "hours"}
}

// Enumerate crosses every axis into the scenario list at the given scene
// size. Each scenario's seed derives from baseSeed and a hash of its
// variant names — seed-keyed by content, so two runs of the same grid (or
// the same combination inside two differently-shaped grids) land on the
// same scenes and the corpus deduplicates them. A grid with an empty axis
// is rejected with a descriptive error instead of enumerating an empty
// fleet.
func (a Axes) Enumerate(sizePx int, baseSeed int64) ([]Scenario, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	out := make([]Scenario, 0, a.Scenarios())
	for _, lay := range a.Layouts {
		for _, den := range a.Densities {
			for _, wind := range a.Winds {
				for _, fail := range a.Failures {
					for _, hour := range a.Hours {
						name := fmt.Sprintf("%s/%s/%s/%s/h%.1f",
							lay.Name, den.Name, wind.Name, fail.Name, hour)
						// The scene seed hashes only the scene-affecting
						// axes: wind and failure variants reuse the same
						// Spec (and key), so the corpus generates one
						// scene per layout × density × hour cell.
						sceneName := fmt.Sprintf("%s/%s/h%.1f", lay.Name, den.Name, hour)
						cfg := lay.Cfg
						cfg.W, cfg.H = sizePx, sizePx
						cfg.MovingCarsPer100M *= den.TrafficScale
						cfg.ParkedCarsPer100M *= den.TrafficScale
						cfg.HumansPerBlockMax = int(float64(cfg.HumansPerBlockMax) * den.PedestrianScale)
						cond := urban.DefaultConditions()
						cond.TimeOfDay = hour
						cond.Lighting = lightingAt(hour)
						out = append(out, Scenario{
							Name:    name,
							Spec:    Spec{Cfg: cfg, Cond: cond, Seed: variantSeed(baseSeed, sceneName)},
							Layout:  lay,
							Density: den,
							Wind:    wind,
							Failure: fail,
							Hour:    hour,
						})
					}
				}
			}
		}
	}
	return out, nil
}

// lightingAt maps a local hour onto the renderer's lighting conditions.
func lightingAt(hour float64) urban.Lighting {
	switch {
	case hour >= 19 && hour < 21.5:
		return urban.Sunset
	case hour < 6.5 || hour >= 21.5:
		return urban.Night
	default:
		return urban.Day
	}
}

// variantSeed folds a scenario's stable name into the base seed.
func variantSeed(baseSeed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return baseSeed ^ int64(h.Sum64())
}
