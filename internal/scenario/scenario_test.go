package scenario

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"safeland/internal/urban"
)

// tinySpec returns a cheap-to-generate spec; bump keeps specs distinct.
func tinySpec(bump int64) Spec {
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 64, 64
	return Spec{Cfg: cfg, Cond: urban.DefaultConditions(), Seed: 1000 + bump}
}

func TestSpecKeyDeterministicAndSensitive(t *testing.T) {
	base := tinySpec(0)
	if got, again := base.Key(), base.Key(); got != again {
		t.Fatalf("key not deterministic: %s vs %s", got, again)
	}
	if len(base.Key()) != 64 {
		t.Fatalf("key is not a sha256 hex digest: %q", base.Key())
	}

	// Every generation input must reach the content address.
	mutants := map[string]Spec{}
	m := base
	m.Seed++
	mutants["seed"] = m
	m = base
	m.Cfg.W = 66
	mutants["cfg width"] = m
	m = base
	m.Cfg.MovingCarsPer100M *= 2
	mutants["traffic density"] = m
	m = base
	m.Cfg.ParkProb += 0.1
	mutants["park probability"] = m
	m = base
	m.Cond.Lighting = urban.Sunset
	mutants["lighting"] = m
	m = base
	m.Cond.TimeOfDay = 20.5
	mutants["time of day"] = m
	m = base
	m.Cond.AltitudeM = 170
	mutants["altitude"] = m
	seen := map[string]string{base.Key(): "base"}
	for name, sp := range mutants {
		k := sp.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestSpecKeyCoversEveryGenerationInput is the drift guard for the
// content address: Spec.Key hashes an explicit field list, so a new field
// on urban.Config or urban.Conditions that Key doesn't fold in would
// silently collide cache entries (and serve the wrong scene from the disk
// layer across processes). This fails the moment either struct grows —
// extend Key, bump keyVersion, then update the counts here.
func TestSpecKeyCoversEveryGenerationInput(t *testing.T) {
	if n := reflect.TypeOf(urban.Config{}).NumField(); n != 14 {
		t.Fatalf("urban.Config has %d fields but Spec.Key hashes 14 — extend Key() and bump keyVersion", n)
	}
	if n := reflect.TypeOf(urban.Conditions{}).NumField(); n != 6 {
		t.Fatalf("urban.Conditions has %d fields but Spec.Key hashes 6 — extend Key() and bump keyVersion", n)
	}
}

func TestCorpusSceneMatchesDirectGenerate(t *testing.T) {
	sp := tinySpec(1)
	got := NewCorpus().Scene(sp)
	want := urban.Generate(sp.Cfg, sp.Cond, sp.Seed)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("corpus scene diverges from a direct urban.Generate")
	}
}

func TestCorpusCacheHitDeterminism(t *testing.T) {
	c := NewCorpus()
	sp := tinySpec(2)
	first := c.Scene(sp)
	second := c.Scene(sp)
	if first != second {
		t.Fatal("repeated lookup did not return the cached scene pointer")
	}
	st := c.Stats()
	if st.Generated != 1 || st.Hits != 1 || st.Resident != 1 {
		t.Fatalf("stats after two lookups = %+v, want 1 generated / 1 hit / 1 resident", st)
	}

	other := c.Scene(tinySpec(3))
	if other == first {
		t.Fatal("distinct specs shared a scene")
	}
	if st := c.Stats(); st.Generated != 2 {
		t.Fatalf("generated = %d after two distinct specs, want 2", st.Generated)
	}
}

func TestCorpusSingleflight(t *testing.T) {
	c := NewCorpus()
	sp := tinySpec(4)
	const callers = 8
	scenes := make([]*urban.Scene, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scenes[i] = c.Scene(sp)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if scenes[i] != scenes[0] {
			t.Fatal("concurrent callers observed different scene instances")
		}
	}
	if st := c.Stats(); st.Generated != 1 {
		t.Fatalf("%d concurrent requests generated %d times, want 1", callers, st.Generated)
	}
}

// TestCorpusPanickingGenerationStaysRetryable is the singleflight-poisoning
// regression pin: a first lookup whose generation panics must propagate the
// panic AND leave the slot retryable, so a later lookup of the same key
// generates the scene instead of being served a nil scene counted as a
// cache hit (the sync.Once slot marked itself done mid-panic).
func TestCorpusPanickingGenerationStaysRetryable(t *testing.T) {
	orig := generateScene
	defer func() { generateScene = orig }()
	calls := 0
	generateScene = func(sp Spec) *urban.Scene {
		calls++
		if calls == 1 {
			panic("scenario test: injected generation failure")
		}
		return orig(sp)
	}

	c := NewCorpus()
	sp := tinySpec(40)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first lookup did not propagate the generation panic")
			}
		}()
		c.Scene(sp)
	}()
	if st := c.Stats(); st.Generated != 0 || st.Hits != 0 || st.Resident != 0 {
		t.Fatalf("stats after failed generation = %+v, want all zero", st)
	}

	got := c.Scene(sp)
	if got == nil {
		t.Fatal("retry after failed generation returned a nil scene")
	}
	if want := urban.Generate(sp.Cfg, sp.Cond, sp.Seed); !reflect.DeepEqual(got, want) {
		t.Fatal("retried scene diverges from a direct urban.Generate")
	}
	if calls != 2 {
		t.Fatalf("generator ran %d times, want 2 (failed attempt + retry)", calls)
	}
	st := c.Stats()
	if st.Generated != 1 || st.Hits != 0 || st.Resident != 1 {
		t.Fatalf("stats after retry = %+v, want 1 generated / 0 hits / 1 resident", st)
	}
	if again := c.Scene(sp); again != got {
		t.Fatal("third lookup did not serve the cached retried scene")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("hits after cached lookup = %d, want 1", st.Hits)
	}
}

// TestCorpusNilGenerationPanics pins the other poisoning shape: a generator
// that returns nil must fail loudly instead of caching nil.
func TestCorpusNilGenerationPanics(t *testing.T) {
	orig := generateScene
	defer func() { generateScene = orig }()
	generateScene = func(Spec) *urban.Scene { return nil }
	c := NewCorpus()
	defer func() {
		if recover() == nil {
			t.Fatal("nil generation did not panic")
		}
		if st := c.Stats(); st.Resident != 0 {
			t.Fatalf("nil generation left %d resident scenes", st.Resident)
		}
	}()
	c.Scene(tinySpec(41))
}

func TestDiskCorpusRoundtrip(t *testing.T) {
	dir := t.TempDir()
	sp := tinySpec(5)

	writer := NewDiskCorpus(dir)
	want := writer.Scene(sp)
	if st := writer.Stats(); st.Generated != 1 || st.DiskHits != 0 {
		t.Fatalf("writer stats = %+v, want 1 generated / 0 disk hits", st)
	}

	// A fresh corpus over the same directory loads instead of regenerating.
	reader := NewDiskCorpus(dir)
	got := reader.Scene(sp)
	if st := reader.Stats(); st.Generated != 0 || st.DiskHits != 1 {
		t.Fatalf("reader stats = %+v, want 0 generated / 1 disk hit", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("disk roundtrip altered the scene")
	}

	// A different spec misses the disk layer and generates.
	reader.Scene(tinySpec(6))
	if st := reader.Stats(); st.Generated != 1 {
		t.Fatalf("distinct spec should generate, stats = %+v", st)
	}
}

// TestDiskCorpusCorruptEntryRegenerates pins the robustness contract of
// the disk layer: a truncated or garbled cache file reads as a miss, the
// scene is regenerated bit-identically, and the fresh store overwrites the
// bad entry so the next corpus heals back to a disk hit.
func TestDiskCorpusCorruptEntryRegenerates(t *testing.T) {
	dir := t.TempDir()
	sp := tinySpec(7)
	want := NewDiskCorpus(dir).Scene(sp)

	files, err := filepath.Glob(filepath.Join(dir, "*.scene"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one cached scene file, got %v (%v)", files, err)
	}
	for name, corrupt := range map[string]func() error{
		"truncated": func() error {
			data, err := os.ReadFile(files[0])
			if err != nil {
				return err
			}
			return os.WriteFile(files[0], data[:len(data)/2], 0o644)
		},
		"garbled": func() error {
			return os.WriteFile(files[0], []byte("not a gob stream"), 0o644)
		},
	} {
		if err := corrupt(); err != nil {
			t.Fatalf("%s: corrupting entry: %v", name, err)
		}
		c := NewDiskCorpus(dir)
		got := c.Scene(sp)
		if st := c.Stats(); st.Generated != 1 || st.DiskHits != 0 {
			t.Fatalf("%s: stats = %+v, want the corrupt entry to read as a miss", name, st)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: regenerated scene differs from the original", name)
		}
		// The regeneration overwrote the bad file: a fresh corpus hits disk.
		healed := NewDiskCorpus(dir)
		if healed.Scene(sp); healed.Stats().DiskHits != 1 {
			t.Fatalf("%s: corrupt entry was not overwritten by the regeneration", name)
		}
	}
}

func TestStreamEmitsInSpecOrder(t *testing.T) {
	c := NewCorpus()
	specs := make([]Spec, 9)
	for i := range specs {
		specs[i] = tinySpec(10 + int64(i))
	}
	var idxs []int
	for req := range c.Stream(context.Background(), specs, nil) {
		i := len(idxs)
		idxs = append(idxs, i)
		if req.Scene != c.Scene(specs[i]) {
			t.Fatalf("request %d carries the wrong scene", i)
		}
		if req.HomeX != req.Scene.Layout.WorldW/2 || req.HomeY != req.Scene.Layout.WorldH/2 {
			t.Fatalf("request %d missing the scene-center home bias", i)
		}
	}
	if len(idxs) != len(specs) {
		t.Fatalf("stream delivered %d of %d requests", len(idxs), len(specs))
	}
	if st := c.Stats(); st.Generated != int64(len(specs)) {
		t.Fatalf("stream generated %d scenes for %d specs", st.Generated, len(specs))
	}
}

func TestStreamHonorsCancellation(t *testing.T) {
	c := NewCorpus()
	specs := make([]Spec, 20)
	for i := range specs {
		specs[i] = tinySpec(40 + int64(i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	out := c.Stream(ctx, specs, nil)
	if _, ok := <-out; !ok {
		t.Fatal("stream closed before delivering anything")
	}
	cancel()
	// The channel must close; range guards against a hang via test timeout.
	n := 1
	for range out {
		n++
	}
	if n >= len(specs) {
		t.Fatalf("cancelled stream still delivered all %d requests", n)
	}
}

func TestAxesEnumerateDeterministicAndDeduplicated(t *testing.T) {
	a := DefaultAxes()
	first, err := a.Enumerate(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	second, err := a.Enumerate(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("enumeration is not deterministic")
	}
	wantLen := a.Scenarios()
	if len(first) != wantLen {
		t.Fatalf("enumerated %d scenarios, want %d", len(first), wantLen)
	}

	names := map[string]bool{}
	keys := map[string]bool{}
	for _, sc := range first {
		if names[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		keys[sc.Spec.Key()] = true
	}
	// Wind and failure variants do not change the scene recipe, so the
	// corpus collapses the grid to layout × density × hour distinct scenes
	// — the dedup the shared cache exists for.
	if len(keys) != a.DistinctScenes() {
		t.Fatalf("grid resolves to %d distinct scenes, want %d", len(keys), a.DistinctScenes())
	}

	// Seeds are content-derived: shrinking the grid must not reshuffle the
	// surviving combinations' scenes.
	sub := a
	sub.Winds = a.Winds[:1]
	sub.Hours = a.Hours[:1]
	subScens, err := sub.Enumerate(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	subSeeds := map[string]int64{}
	for _, sc := range subScens {
		subSeeds[sc.Name] = sc.Spec.Seed
	}
	for _, sc := range first {
		if seed, ok := subSeeds[sc.Name]; ok && seed != sc.Spec.Seed {
			t.Fatalf("scenario %q changed seed when the grid shrank", sc.Name)
		}
	}

	// A different base seed moves every scene.
	reseeded, err := a.Enumerate(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range reseeded {
		if sc.Spec.Seed == first[i].Spec.Seed {
			t.Fatalf("scenario %q kept its seed across base seeds", sc.Name)
		}
	}
}

func FuzzSpecKey(f *testing.F) {
	f.Add(int64(1), 64, 64, 120.0, 14.0, 0.0)
	f.Add(int64(2021), 192, 192, 170.0, 20.5, 0.3)
	f.Fuzz(func(t *testing.T, seed int64, w, h int, alt, hour, fog float64) {
		cfg := urban.DefaultConfig()
		cfg.W, cfg.H = w, h
		cond := urban.DefaultConditions()
		cond.AltitudeM = alt
		cond.TimeOfDay = hour
		cond.FogDensity = fog
		sp := Spec{Cfg: cfg, Cond: cond, Seed: seed}
		key := sp.Key()
		if len(key) != 64 {
			t.Fatalf("key length %d", len(key))
		}
		if key != sp.Key() {
			t.Fatal("key unstable")
		}
		bumped := sp
		bumped.Seed++
		if bumped.Key() == key {
			t.Fatal("seed change did not move the key")
		}
	})
}
