package scenario

import (
	"context"

	"safeland"
	"safeland/internal/urban"
)

// StreamAhead bounds how many scenes Stream generates beyond the one being
// consumed: enough to keep an Engine's worker pool fed while the next
// scenes render, small enough that cancellation does not strand a pile of
// half-wanted generations.
const StreamAhead = 4

// BuildRequest turns a generated scene into the request the fleet serves
// for it; i is the scene's position in the spec list, which Engine.Serve
// echoes back as the response Index.
type BuildRequest func(i int, s *urban.Scene) safeland.SelectRequest

// SceneRequest is the BuildRequest most fleets want: the scene attached,
// with the home bias at the scene center (the emergency position used by
// the experiment suite).
func SceneRequest(_ int, s *urban.Scene) safeland.SelectRequest {
	return safeland.SelectRequest{Scene: s, HomeX: s.Layout.WorldW / 2, HomeY: s.Layout.WorldH / 2}
}

// Stream generates the specs' scenes through the corpus and emits one
// request per spec, in spec order, on the returned channel — the producer
// side of Engine.Serve. Generation runs up to StreamAhead scenes ahead of
// consumption on background goroutines, so perception and scene synthesis
// overlap instead of serializing behind a materialized slice. The channel
// closes after the last spec's request is delivered, or early when ctx is
// cancelled. Because specs determine scenes exactly, feeding the stream to
// Serve yields responses byte-identical to SelectBatch over the
// materialized equivalent, whatever the worker count.
func (c *Corpus) Stream(ctx context.Context, specs []Spec, build BuildRequest) <-chan safeland.SelectRequest {
	if build == nil {
		build = SceneRequest
	}
	out := make(chan safeland.SelectRequest)
	slots := make([]chan *urban.Scene, len(specs))
	for i := range slots {
		slots[i] = make(chan *urban.Scene, 1)
	}
	// Admission: each generation takes a token before starting; the emitter
	// returns it once the scene is handed off, capping generate-ahead.
	tokens := make(chan struct{}, StreamAhead)
	go func() {
		for i := range specs {
			select {
			case tokens <- struct{}{}:
			case <-ctx.Done():
				return
			}
			go func(i int) {
				slots[i] <- c.Scene(specs[i])
			}(i)
		}
	}()
	go func() {
		defer close(out)
		for i := range specs {
			var s *urban.Scene
			select {
			case s = <-slots[i]:
				<-tokens
			case <-ctx.Done():
				return
			}
			select {
			case out <- build(i, s):
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// ServeOrdered is the full streaming round trip: the specs' scenes flow
// through the corpus into eng.Serve as they are generated, and the
// responses come back reordered by request index — a drop-in replacement
// for materializing the scenes and calling SelectBatch, with identical
// responses (per-scene seeding plus the monitor's per-call reseeding) but
// pipelined scene generation. SelectBatch's cancellation contract carries
// over too: requests ctx killed before they were served report ctx's
// error, not a bare missing-response marker.
func (c *Corpus) ServeOrdered(ctx context.Context, eng *safeland.Engine, specs []Spec, build BuildRequest) []safeland.SelectResponse {
	resps := safeland.Gather(eng.Serve(ctx, c.Stream(ctx, specs, build)), len(specs))
	if err := ctx.Err(); err != nil {
		for i := range resps {
			if resps[i].Err == safeland.ErrNoResponse {
				resps[i].Err = err
			}
		}
	}
	return resps
}
