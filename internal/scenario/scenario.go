// Package scenario is the shared, content-addressed scene corpus behind
// the experiment fleets and the streaming serving path.
//
// The paper's certification argument only holds if the EL function is
// validated "under the conditions of the operation" (Table III): many
// urban layouts, densities, winds, failure profiles and times of day. That
// multiplies scene generation across every experiment Env — and before
// this package, each Env regenerated identical scenes from scratch. The
// corpus deduplicates that work: a Spec is a fully-determined scene recipe
// (generator config × capture conditions × seed), its Key is a
// content address over every generation input, and a Corpus memoizes
// generated scenes by key, in memory and optionally on disk, with
// singleflight semantics so concurrent requests for the same scene pay for
// one generation.
//
// Corpus.Stream is the producer side of the pipelined serving path: it
// generates a spec list's scenes a bounded distance ahead of consumption
// and emits safeland.SelectRequests in spec order, ready to feed straight
// into Engine.Serve — scene generation overlaps perception instead of
// materializing whole slices for SelectBatch. Because urban.Generate is
// deterministic in the Spec, the streamed fleet's responses are
// byte-identical to the batch path's, whatever the worker count.
//
// The Axes/Scenario layer enumerates the operating-condition grid (urban
// layout × density × wind × failure profile × time-of-day) with
// deterministic, content-derived per-scenario seeds, giving future
// scenario-diversity work one place to grow the validation envelope.
package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"safeland/internal/urban"
)

// Spec is one fully-determined scene recipe: everything urban.Generate
// consumes. Two Specs with equal fields name the same scene, bit for bit.
type Spec struct {
	Cfg  urban.Config
	Cond urban.Conditions
	Seed int64
}

// keyVersion is baked into every content address so a change to the key
// derivation (or to the meaning of a Spec field) invalidates stale disk
// cache entries instead of serving scenes generated under old semantics.
// urban.GeneratorVersion is folded in alongside it, so changes to the
// generation algorithm itself invalidate caches the same way.
const keyVersion = 1

// Key returns the spec's content address: a SHA-256 over the canonical
// binary encoding of every generation input. Equal specs share a key;
// any field change produces a new one.
func (s Spec) Key() string {
	h := sha256.New()
	buf := make([]byte, 8)
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(keyVersion)
	u64(urban.GeneratorVersion)
	u64(uint64(s.Cfg.W))
	u64(uint64(s.Cfg.H))
	f64(s.Cfg.RoadSpacingMin)
	f64(s.Cfg.RoadSpacingMax)
	f64(s.Cfg.RoadWidthMin)
	f64(s.Cfg.RoadWidthMax)
	f64(s.Cfg.ParkProb)
	f64(s.Cfg.PlazaProb)
	f64(s.Cfg.ParkingProb)
	f64(s.Cfg.MovingCarsPer100M)
	f64(s.Cfg.ParkedCarsPer100M)
	u64(uint64(s.Cfg.HumansPerBlockMax))
	f64(s.Cfg.PondProb)
	f64(s.Cfg.PowerLineProb)
	u64(uint64(s.Cond.Lighting))
	u64(uint64(s.Cond.Season))
	f64(s.Cond.FogDensity)
	f64(s.Cond.SensorNoise)
	f64(s.Cond.AltitudeM)
	f64(s.Cond.TimeOfDay)
	u64(uint64(s.Seed))
	return hex.EncodeToString(h.Sum(nil))
}

// Generate builds the spec's scene directly, bypassing any cache. The same
// spec always produces the same scene.
func (s Spec) Generate() *urban.Scene {
	return urban.Generate(s.Cfg, s.Cond, s.Seed)
}

// Set builds n specs with consecutive seeds starting at baseSeed — the
// corpus-level mirror of urban.GenerateSet's seeding, so a fleet that used
// to materialize GenerateSet(cfg, cond, n, base) streams the identical
// scenes through the cache.
func Set(cfg urban.Config, cond urban.Conditions, n int, baseSeed int64) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{Cfg: cfg, Cond: cond, Seed: baseSeed + int64(i)}
	}
	return specs
}
