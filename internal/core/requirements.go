package core

import "safeland/internal/sora"

// Claims declares the validation activities an applicant has actually
// performed beyond what the implementation provides by construction.
// The distinction matters: Table IV assurance levels hinge on who verified
// what, not only on what the code does.
type Claims struct {
	// InContextTesting: the pipeline was tested on imagery from the
	// operational context (the E7 in-distribution evaluation).
	InContextTesting bool
	// AuthorityVerifiedData: the in-context test data were recorded and
	// verified by the applicable authority (cannot be claimed by a
	// simulation-only repository).
	AuthorityVerifiedData bool
	// OODValidation: behavior was characterized under a wide range of
	// external conditions (the E7 sunset/altitude study + E10 ablations).
	OODValidation bool
	// ThirdPartyValidation: a competent third party validated the claimed
	// integrity.
	ThirdPartyValidation bool
}

// SelfAssessment maps this implementation onto the paper's Table III/IV
// criteria and returns the evidence set for the SORA evaluator.
//
// Criteria satisfied by construction:
//   - EL-I-L1: zones exclude predicted busy-road pixels with a hard buffer
//     and demand a landable-surface majority.
//   - EL-I-L2: effectiveness under the operating conditions is measured by
//     the in-context evaluation when InContextTesting is claimed.
//   - EL-I-M1: the buffer accounts for parachute drift under wind
//     (uav.DriftBuffer), and the architecture falls back to flight
//     termination on planner failure (single-malfunction tolerance).
//   - EL-A-L1: the applicant declaration is this assessment itself.
//   - EL-A-M3: the Bayesian runtime monitor checks every ML output before
//     landing execution.
func SelfAssessment(c Claims) sora.Evidence {
	ev := sora.Evidence{
		"EL-I-L1": true,
		"EL-I-L2": c.InContextTesting,
		"EL-I-M1": true,
		"EL-I-H1": c.OODValidation,

		"EL-A-L1": true,
		"EL-A-M1": c.InContextTesting,
		"EL-A-M2": c.AuthorityVerifiedData,
		"EL-A-M3": true,
		"EL-A-H1": c.ThirdPartyValidation,
		"EL-A-H2": c.OODValidation,
	}
	return ev
}

// MitigationClaim evaluates the evidence and returns the active-M1
// mitigation this implementation can bring into a SORA assessment.
func MitigationClaim(c Claims) sora.Mitigation {
	return sora.ELMitigation(SelfAssessment(c))
}
