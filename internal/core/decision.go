package core

import (
	"fmt"

	"safeland/internal/monitor"
)

// DMState is the state of the Decision Module.
type DMState int

// Decision Module states.
const (
	// Proposing means the DM awaits the next candidate from the core
	// function.
	Proposing DMState = iota
	// Landing means a zone was confirmed and landing execution triggered.
	Landing
	// Aborted means no candidate could be confirmed within budget; the
	// flight must be terminated (parachute in place).
	Aborted
	// Degraded means the serving layer exhausted its fault budget and
	// answered with the fault-tolerant baseline zone instead of a verified
	// selection. The DecisionModule itself never enters this state — it is
	// produced above the pipeline (safeland degraded-mode serving) — and a
	// Degraded result never carries Confirmed: the monitor's refusal
	// semantics survive the fallback, the zone is best-effort geometry
	// exactly like the paper's fault-tolerant maneuver.
	Degraded
)

// String names the state.
func (s DMState) String() string {
	switch s {
	case Proposing:
		return "proposing"
	case Landing:
		return "landing"
	case Aborted:
		return "aborted"
	case Degraded:
		return "degraded-FT"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// DecisionModule is the paper's Figure 2 arbiter: it receives monitor
// verdicts on candidate zones and decides whether to trigger landing
// execution, request another trial, or abort the flight.
//
// The zero value is not usable; construct with NewDecisionModule.
type DecisionModule struct {
	// MaxTrials bounds how many candidates may be verified before aborting;
	// each trial costs flight time and battery in a degraded mode.
	MaxTrials int

	state     DMState
	trials    int
	confirmed *monitor.Verdict
}

// NewDecisionModule builds a DM with the given trial budget (minimum 1).
func NewDecisionModule(maxTrials int) *DecisionModule {
	if maxTrials < 1 {
		maxTrials = 1
	}
	return &DecisionModule{MaxTrials: maxTrials}
}

// State returns the current DM state.
func (dm *DecisionModule) State() DMState { return dm.state }

// Trials returns how many verdicts have been consumed.
func (dm *DecisionModule) Trials() int { return dm.trials }

// Offer feeds one monitor verdict for the current candidate and returns the
// new state: Landing when confirmed, Proposing when another trial is
// allowed, Aborted when the budget is exhausted.
func (dm *DecisionModule) Offer(v monitor.Verdict) DMState {
	if dm.state != Proposing {
		return dm.state
	}
	dm.trials++
	if v.Confirmed {
		dm.state = Landing
		dm.confirmed = &v
		return dm.state
	}
	if dm.trials >= dm.MaxTrials {
		dm.state = Aborted
	}
	return dm.state
}

// Exhausted signals that the core function has no further candidates; the
// DM aborts unless already landing.
func (dm *DecisionModule) Exhausted() DMState {
	if dm.state == Proposing {
		dm.state = Aborted
	}
	return dm.state
}

// Confirmed returns the verdict that triggered landing, or nil.
func (dm *DecisionModule) Confirmed() *monitor.Verdict { return dm.confirmed }

// Reset returns the DM to its initial state for a new emergency.
func (dm *DecisionModule) Reset() {
	dm.state = Proposing
	dm.trials = 0
	dm.confirmed = nil
}
