package core

import (
	"context"
	"math"

	"safeland/internal/imaging"
	"safeland/internal/riskmap"
	"safeland/internal/urban"
)

// Hybrid implements the paper's final future-work direction: "hybrid
// methods combining learning-based techniques with using public databases
// could be envisioned to improve emergency landing". It fuses the on-board
// vision pipeline with an a-priori GIS risk map: a candidate zone must
// satisfy the vision invariants (predicted-road buffer, landable majority,
// monitor confirmation) and additionally be feasible on the static map,
// with its ranking penalized by the mapped risk.
//
// The two sources fail independently — the camera misses what it cannot
// see (distribution shift), the database misses what is not mapped (live
// traffic, parked cars, crowds) — so their conjunction is strictly more
// conservative than either alone.
type Hybrid struct {
	Pipeline *Pipeline
	// StaticCfg configures the GIS layer weights.
	StaticCfg riskmap.StaticConfig
	// StaticWeight scales how strongly mapped risk demotes a candidate.
	StaticWeight float64
	// MaxStaticRisk rejects candidates whose mean mapped risk exceeds it.
	MaxStaticRisk float64
}

// NewHybrid wraps a pipeline with default GIS fusion settings.
func NewHybrid(p *Pipeline) *Hybrid {
	return &Hybrid{
		Pipeline:      p,
		StaticCfg:     riskmap.DefaultStaticConfig(),
		StaticWeight:  8,
		MaxStaticRisk: 0.5,
	}
}

// SelectAndVerify runs the fused selection on a scene with the pipeline's
// configured zone settings. It is shorthand for SelectWithConfig.
func (h *Hybrid) SelectAndVerify(scene *urban.Scene) Result {
	return h.SelectWithConfig(scene, h.Pipeline.Zones)
}

// SelectWithConfig runs the fused selection on a scene: vision candidates
// are filtered and re-ranked by the static risk map before the Bayesian
// monitor verifies them. The zone configuration is a per-call value;
// neither the hybrid nor its pipeline is mutated.
func (h *Hybrid) SelectWithConfig(scene *urban.Scene, cfg ZoneConfig) Result {
	res, _ := h.SelectWithConfigCtx(context.Background(), scene, cfg)
	return res
}

// SelectWithConfigCtx is SelectWithConfig with cooperative cancellation;
// the semantics mirror Pipeline.SelectWithConfigCtx.
func (h *Hybrid) SelectWithConfigCtx(ctx context.Context, scene *urban.Scene, cfg ZoneConfig) (Result, error) {
	p := h.Pipeline
	pred, err := p.Model.PredictCtx(ctx, scene.Image)
	if err != nil {
		return Result{}, err
	}
	static := riskmap.BuildStatic(scene.Layout, scene.Labels.W, scene.Labels.H, scene.MPP, h.StaticCfg)

	zones := cfg
	var cands []Candidate
	for _, scale := range []float64{1, 0.66, 0.4, 0.2} {
		zones.BufferM = cfg.BufferM * scale
		if zones.BufferM < zones.ZoneSizeM/4 {
			zones.BufferM = zones.ZoneSizeM / 4
		}
		if cands = h.fuse(Candidates(pred, scene.MPP, zones), static); len(cands) > 0 {
			break
		}
	}
	res := Result{Pred: pred, CandidateCount: len(cands), UsedBufferM: zones.BufferM}
	dm := NewDecisionModule(p.MaxTrials)
	for _, cand := range cands {
		sub := scene.Image.Crop(evenAlign(cand.X0, scene.Image.W, cand.SizePx),
			evenAlign(cand.Y0, scene.Image.H, cand.SizePx),
			evenSize(cand.SizePx), evenSize(cand.SizePx))
		verdict, err := p.Monitor.VerifyRegionCtx(ctx, sub, p.Rule)
		if err != nil {
			return res, err
		}
		res.Trials = append(res.Trials, Trial{Candidate: cand, Verdict: verdict})
		switch dm.Offer(verdict) {
		case Landing:
			res.Confirmed = true
			res.Zone = cand
			res.State = Landing
			return res, nil
		case Aborted:
			res.State = Aborted
			return res, nil
		}
	}
	res.State = dm.Exhausted()
	return res, nil
}

// fuse drops candidates the static map forbids and re-ranks the survivors.
func (h *Hybrid) fuse(cands []Candidate, static *imaging.Map) []Candidate {
	it := buildFiniteIntegral(static)
	kept := cands[:0:0]
	for _, c := range cands {
		mean, forbidden := it.meanRisk(c.X0, c.Y0, c.SizePx)
		if forbidden || mean > h.MaxStaticRisk {
			continue
		}
		c.Score -= h.StaticWeight * mean
		kept = append(kept, c)
	}
	// Candidates arrive sorted by vision score; the static penalty can
	// reorder them.
	for i := 1; i < len(kept); i++ {
		for j := i; j > 0 && kept[j].Score > kept[j-1].Score; j-- {
			kept[j], kept[j-1] = kept[j-1], kept[j]
		}
	}
	return kept
}

// PlanLanding implements uav.LandingPlanner with the fused selection.
func (h *Hybrid) PlanLanding(scene *urban.Scene, xM, yM float64) (float64, float64, bool) {
	zones := h.Pipeline.Zones
	zones.HomeX, zones.HomeY = xM, yM
	res := h.SelectWithConfig(scene, zones)
	if !res.Confirmed {
		return 0, 0, false
	}
	txM, tyM := res.Zone.CenterM(scene.MPP)
	return txM, tyM, true
}

// finiteIntegral tracks mean finite risk and forbidden (+Inf) coverage.
type finiteIntegral struct {
	risk *imaging.Integral
	forb *imaging.Integral
}

func buildFiniteIntegral(static *imaging.Map) finiteIntegral {
	finite := imaging.NewMap(static.W, static.H)
	forb := imaging.NewMap(static.W, static.H)
	for i, v := range static.Pix {
		if math.IsInf(float64(v), 1) {
			forb.Pix[i] = 1
		} else {
			finite.Pix[i] = v
		}
	}
	return finiteIntegral{risk: imaging.NewIntegral(finite), forb: imaging.NewIntegral(forb)}
}

func (fi finiteIntegral) meanRisk(x0, y0, size int) (mean float64, forbidden bool) {
	if fi.forb.RectSum(x0, y0, x0+size, y0+size) > 0 {
		return 0, true
	}
	return fi.risk.RectMean(x0, y0, x0+size, y0+size), false
}
