package core

import (
	"testing"

	"safeland/internal/imaging"
	"safeland/internal/urban"
)

func TestHybridConfirmedZoneSatisfiesBothSources(t *testing.T) {
	p, scenes := trainedPipeline(t)
	h := NewHybrid(p)
	for _, s := range scenes[:2] {
		res := h.SelectAndVerify(s)
		if !res.Confirmed {
			continue
		}
		z := res.Zone
		// Vision invariant: ground truth road-free.
		ci := imaging.NewClassIntegral(s.Labels)
		if fr := ci.BusyRoadFraction(z.X0, z.Y0, z.X0+z.SizePx, z.Y0+z.SizePx); fr > 0 {
			t.Errorf("hybrid zone covers %.3f busy road in truth", fr)
		}
		// GIS invariant: the zone stays off mapped roads and buildings.
		for _, r := range s.Layout.Roads {
			if rectsOverlapM(z, s.MPP, r.Rect) {
				t.Error("hybrid zone overlaps a mapped road")
			}
		}
		for _, b := range s.Layout.Buildings {
			if rectsOverlapM(z, s.MPP, b.Rect) {
				t.Error("hybrid zone overlaps a mapped building")
			}
		}
	}
}

func rectsOverlapM(z Candidate, mpp float64, r urban.RectM) bool {
	zx0 := float64(z.X0) * mpp
	zy0 := float64(z.Y0) * mpp
	zx1 := zx0 + float64(z.SizePx)*mpp
	zy1 := zy0 + float64(z.SizePx)*mpp
	return zx0 < r.X1 && r.X0 < zx1 && zy0 < r.Y1 && r.Y0 < zy1
}

func TestHybridAtLeastAsStrictAsVision(t *testing.T) {
	p, scenes := trainedPipeline(t)
	h := NewHybrid(p)
	for _, s := range scenes[:2] {
		vision := p.SelectAndVerify(s.Image, s.MPP)
		hybrid := h.SelectAndVerify(s)
		if hybrid.CandidateCount > vision.CandidateCount {
			t.Errorf("hybrid produced more candidates (%d) than vision alone (%d)",
				hybrid.CandidateCount, vision.CandidateCount)
		}
	}
}

func TestHybridPlanLandingRestoresConfig(t *testing.T) {
	p, scenes := trainedPipeline(t)
	h := NewHybrid(p)
	_, _, _ = h.PlanLanding(scenes[0], 10, 10)
	if p.Zones.HomeX != 0 || p.Zones.HomeY != 0 {
		t.Error("hybrid PlanLanding leaked home bias")
	}
}

func TestHybridFuseRejectsForbidden(t *testing.T) {
	static := imaging.NewMap(64, 64)
	// Left half forbidden, right half risk gradient.
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if x < 32 {
				static.Set(x, y, float32(infinity()))
			} else {
				static.Set(x, y, float32(x-32)/64)
			}
		}
	}
	h := &Hybrid{StaticWeight: 8, MaxStaticRisk: 0.3}
	cands := []Candidate{
		{X0: 4, Y0: 4, SizePx: 8, Score: 100},  // forbidden region
		{X0: 36, Y0: 10, SizePx: 8, Score: 10}, // low mapped risk
		{X0: 54, Y0: 10, SizePx: 8, Score: 90}, // above MaxStaticRisk
	}
	kept := h.fuse(cands, static)
	if len(kept) != 1 {
		t.Fatalf("kept %d candidates, want 1", len(kept))
	}
	if kept[0].X0 != 36 {
		t.Errorf("kept wrong candidate: %+v", kept[0])
	}
}

func infinity() float64 { return 1e38 * 10 } // overflows float32 to +Inf
