// Package core implements the paper's Emergency Landing function (Section
// V): landing-zone selection from semantic segmentation with a
// parachute-drift road buffer, the Computer/Monitor safety pattern with a
// Bayesian runtime monitor, and the Decision Module that confirms, retries
// or aborts (Figure 2). It also self-assesses the implementation against
// the paper's Table III/IV criteria to produce a SORA mitigation claim.
package core

import (
	"fmt"
	"math"
	"sort"

	"safeland/internal/imaging"
)

// ZoneConfig controls candidate landing-zone generation.
type ZoneConfig struct {
	// ZoneSizeM is the side of the square landing zone (m): the vehicle
	// span plus a touchdown dispersion margin.
	ZoneSizeM float64
	// BufferM is the required distance (m) between every zone pixel and the
	// nearest predicted busy-road pixel. Table III (low integrity): "the
	// buffer from roads must take into account the typical parachute drift
	// in nominal conditions".
	BufferM float64
	// MinSafeFraction is the minimum fraction of zone pixels predicted as
	// landable surface (low vegetation or bare clutter).
	MinSafeFraction float64
	// Stride is the candidate scan stride in pixels (0 = half zone side).
	Stride int
	// MaxCandidates caps the ranked candidate list (0 = no cap).
	MaxCandidates int
	// BorderMarginPx excludes zones touching the image border, where
	// convolution padding degrades both prediction and uncertainty
	// calibration (negative = default of a quarter zone).
	BorderMarginPx int
	// HomeX, HomeY bias the ranking toward zones near this position
	// (meters); both zero disables the bias.
	HomeX, HomeY float64
}

// DefaultZoneConfig sizes the zone for the MEDI DELIVERY vehicle: a 12 m
// zone (1 m span + GPS-free visual-servoing dispersion) and a 15 m road
// buffer covering the nominal parachute drift from the 35 m deployment
// altitude in moderate wind (EL keeps trajectory control, so it descends
// before opening the canopy; only Flight Termination deploys from cruise
// altitude).
func DefaultZoneConfig() ZoneConfig {
	return ZoneConfig{
		ZoneSizeM:       12,
		BufferM:         15,
		MinSafeFraction: 0.85,
		MaxCandidates:   16,
	}
}

// landable reports whether a predicted class is acceptable ground to touch
// down on: low vegetation (the literature's preferred surface) or bare
// clutter (pavement, soil). Buildings, trees, water-colored clutter and the
// busy-road composite are not.
func landable(c imaging.Class) bool {
	return c == imaging.LowVegetation || c == imaging.Clutter
}

// Candidate is one scored landing-zone proposal in pixel coordinates.
type Candidate struct {
	X0, Y0, SizePx int
	// MinRoadDistM is the smallest distance (m) from any zone pixel to a
	// predicted busy-road pixel.
	MinRoadDistM float64
	// SafeFraction is the fraction of zone pixels with landable predicted
	// classes.
	SafeFraction float64
	// Score ranks candidates (higher is better).
	Score float64
}

// CenterM returns the candidate center in meters.
func (c Candidate) CenterM(mpp float64) (x, y float64) {
	return (float64(c.X0) + float64(c.SizePx)/2) * mpp, (float64(c.Y0) + float64(c.SizePx)/2) * mpp
}

// CropRect returns the rectangle the monitor actually verifies for this
// candidate inside an imgW×imgH frame: the zone size rounded up to even
// (the downsampling model requires even inputs) with the origin shifted
// left/up when the rounding would cross the frame edge. The pipeline and
// the experiments share this so "the verified crop" is one definition.
func (c Candidate) CropRect(imgW, imgH int) (x0, y0, size int) {
	return evenAlign(c.X0, imgW, c.SizePx), evenAlign(c.Y0, imgH, c.SizePx), evenSize(c.SizePx)
}

// Candidates generates ranked landing-zone proposals from a predicted
// segmentation. This is the "zone selection" stage of Figure 2: it runs on
// the deterministic model output; the monitor later verifies the winners.
func Candidates(pred *imaging.LabelMap, mpp float64, cfg ZoneConfig) []Candidate {
	if mpp <= 0 {
		panic(fmt.Sprintf("core: invalid meters-per-pixel %v", mpp))
	}
	zonePx := int(math.Ceil(cfg.ZoneSizeM / mpp))
	if zonePx <= 0 || zonePx > pred.W || zonePx > pred.H {
		return nil
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = zonePx / 2
		if stride == 0 {
			stride = 1
		}
	}
	// Beyond this distance from the nearest road, extra margin adds no
	// safety: it caps scores so distance does not drown the other criteria
	// (and keeps road-free predictions comparable).
	maxUsefulDistM := 3 * cfg.BufferM
	if maxUsefulDistM < 30 {
		maxUsefulDistM = 30
	}
	dist := pred.DistanceTransform(imaging.Class.BusyRoad)
	safe := imaging.NewMap(pred.W, pred.H)
	for i, c := range pred.Pix {
		if landable(c) {
			safe.Pix[i] = 1
		}
	}
	safeIt := imaging.NewIntegral(safe)
	bufferPx := float32(cfg.BufferM / mpp)

	margin := cfg.BorderMarginPx
	if margin < 0 {
		margin = 0
	}
	if cfg.BorderMarginPx == 0 {
		margin = zonePx / 4
	}

	var cands []Candidate
	for y := margin; y+zonePx <= pred.H-margin; y += stride {
		for x := margin; x+zonePx <= pred.W-margin; x += stride {
			// Minimum distance to predicted road over the zone.
			minDist := float32(math.Inf(1))
			for yy := y; yy < y+zonePx; yy++ {
				row := dist.Pix[yy*dist.W+x : yy*dist.W+x+zonePx]
				for _, d := range row {
					if d < minDist {
						minDist = d
					}
				}
			}
			if minDist < bufferPx {
				continue
			}
			frac := safeIt.RectMean(x, y, x+zonePx, y+zonePx)
			if frac < cfg.MinSafeFraction {
				continue
			}
			distM := float64(minDist) * mpp
			if distM > maxUsefulDistM || math.IsInf(distM, 1) {
				distM = maxUsefulDistM
			}
			c := Candidate{
				X0: x, Y0: y, SizePx: zonePx,
				MinRoadDistM: distM,
				SafeFraction: frac,
			}
			c.Score = distM + 10*frac
			if cfg.HomeX != 0 || cfg.HomeY != 0 {
				cx, cy := c.CenterM(mpp)
				c.Score -= 0.08 * math.Hypot(cx-cfg.HomeX, cy-cfg.HomeY)
			}
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Score > cands[j].Score })
	cands = diversify(cands, zonePx)
	if cfg.MaxCandidates > 0 && len(cands) > cfg.MaxCandidates {
		cands = cands[:cfg.MaxCandidates]
	}
	return cands
}

// diversify greedily suppresses candidates overlapping an already-kept,
// better-scored one, so the Decision Module's retries explore genuinely
// different zones instead of shifted copies of the same block.
func diversify(sorted []Candidate, zonePx int) []Candidate {
	var kept []Candidate
	for _, c := range sorted {
		overlaps := false
		for _, k := range kept {
			if abs(c.X0-k.X0) < zonePx && abs(c.Y0-k.Y0) < zonePx {
				overlaps = true
				break
			}
		}
		if !overlaps {
			kept = append(kept, c)
		}
	}
	return kept
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
