package core

import (
	"math"
	"sync"
	"testing"

	"safeland/internal/imaging"
	"safeland/internal/monitor"
	"safeland/internal/segment"
	"safeland/internal/sora"
	"safeland/internal/urban"
)

func TestCandidatesRespectBufferAndSafety(t *testing.T) {
	// Synthetic prediction: a vertical road strip at x in [40, 56), grass
	// elsewhere.
	pred := imaging.NewLabelMap(128, 128)
	for i := range pred.Pix {
		pred.Pix[i] = imaging.LowVegetation
	}
	pred.FillRect(40, 0, 56, 128, imaging.Road)
	const mpp = 0.5
	cfg := ZoneConfig{ZoneSizeM: 8, BufferM: 10, MinSafeFraction: 0.9}
	cands := Candidates(pred, mpp, cfg)
	if len(cands) == 0 {
		t.Fatal("no candidates on a mostly-grass map")
	}
	bufferPx := cfg.BufferM / mpp
	for _, c := range cands {
		if c.MinRoadDistM < cfg.BufferM {
			t.Fatalf("candidate at (%d,%d) closer than buffer: %.1f m", c.X0, c.Y0, c.MinRoadDistM)
		}
		// Verify geometric distance to the road strip directly.
		for _, x := range []int{c.X0, c.X0 + c.SizePx - 1} {
			dist := math.Min(math.Abs(float64(x-56)), math.Abs(float64(x-39)))
			if x >= 40 && x < 56 {
				dist = 0
			}
			if dist < bufferPx-float64(c.SizePx) && c.MinRoadDistM >= cfg.BufferM {
				// Candidate spans columns whose distance is clearly under
				// buffer: would be a contradiction.
				if dist < bufferPx && distToZoneEdge(c, x) == 0 {
					t.Fatalf("candidate columns violate buffer at x=%d", x)
				}
			}
		}
		if c.SafeFraction < cfg.MinSafeFraction {
			t.Fatalf("candidate safe fraction %.2f below threshold", c.SafeFraction)
		}
	}
	// Ranking: scores non-increasing.
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates not sorted by score")
		}
	}
}

func distToZoneEdge(c Candidate, x int) float64 {
	if x >= c.X0 && x < c.X0+c.SizePx {
		return 0
	}
	return 1
}

func TestCandidatesEmptyWhenAllRoad(t *testing.T) {
	pred := imaging.NewLabelMap(64, 64)
	for i := range pred.Pix {
		pred.Pix[i] = imaging.Road
	}
	if cands := Candidates(pred, 0.5, DefaultZoneConfig()); len(cands) != 0 {
		t.Fatalf("got %d candidates on an all-road map", len(cands))
	}
}

func TestCandidatesHomeBias(t *testing.T) {
	pred := imaging.NewLabelMap(128, 128)
	for i := range pred.Pix {
		pred.Pix[i] = imaging.LowVegetation
	}
	const mpp = 0.5
	cfg := ZoneConfig{ZoneSizeM: 8, BufferM: 0, MinSafeFraction: 0.9, MaxCandidates: 1}
	cfg.HomeX, cfg.HomeY = 5, 5
	near := Candidates(pred, mpp, cfg)[0]
	cfg.HomeX, cfg.HomeY = 59, 59
	far := Candidates(pred, mpp, cfg)[0]
	nx, ny := near.CenterM(mpp)
	fx, fy := far.CenterM(mpp)
	dNear := math.Hypot(nx-5, ny-5)
	dFar := math.Hypot(fx-5, fy-5)
	if dNear >= dFar {
		t.Errorf("home bias ineffective: best zone for home (5,5) at %.1f m, for (59,59) at %.1f m", dNear, dFar)
	}
}

func TestCandidatesMaxCap(t *testing.T) {
	pred := imaging.NewLabelMap(128, 128)
	for i := range pred.Pix {
		pred.Pix[i] = imaging.Clutter
	}
	cfg := ZoneConfig{ZoneSizeM: 6, BufferM: 0, MinSafeFraction: 0.5, MaxCandidates: 5}
	if got := len(Candidates(pred, 0.5, cfg)); got != 5 {
		t.Errorf("candidate cap: got %d, want 5", got)
	}
}

func TestDecisionModuleStates(t *testing.T) {
	dm := NewDecisionModule(2)
	if dm.State() != Proposing {
		t.Fatal("fresh DM not proposing")
	}
	reject := monitor.Verdict{Confirmed: false, FlaggedFraction: 0.4}
	confirm := monitor.Verdict{Confirmed: true}

	if st := dm.Offer(reject); st != Proposing {
		t.Fatalf("after 1 reject of 2: %v", st)
	}
	if st := dm.Offer(confirm); st != Landing {
		t.Fatalf("confirmation should land: %v", st)
	}
	if dm.Confirmed() == nil || !dm.Confirmed().Confirmed {
		t.Fatal("confirmed verdict not recorded")
	}
	// Offers after landing are ignored.
	if st := dm.Offer(reject); st != Landing {
		t.Fatal("DM left Landing state")
	}

	dm.Reset()
	if dm.State() != Proposing || dm.Trials() != 0 {
		t.Fatal("reset incomplete")
	}
	dm.Offer(reject)
	if st := dm.Offer(reject); st != Aborted {
		t.Fatalf("budget exhaustion should abort: %v", st)
	}

	dm2 := NewDecisionModule(3)
	if st := dm2.Exhausted(); st != Aborted {
		t.Fatalf("exhausted candidates should abort: %v", st)
	}
	if NewDecisionModule(0).MaxTrials != 1 {
		t.Error("trial budget floor missing")
	}
}

var pipeOnce struct {
	sync.Once
	pipe   *Pipeline
	scenes []*urban.Scene
}

// trainedPipeline builds one shared trained pipeline for the heavier tests.
func trainedPipeline(t *testing.T) (*Pipeline, []*urban.Scene) {
	t.Helper()
	pipeOnce.Do(func() {
		cfg := urban.DefaultConfig()
		pipeOnce.scenes = urban.GenerateSet(cfg, urban.DefaultConditions(), 4, 300)
		mcfg := segment.DefaultConfig()
		mcfg.Seed = 5
		m := segment.New(mcfg)
		segment.Train(m, pipeOnce.scenes, segment.TrainConfig{
			Steps: 300, Batch: 2, CropSize: 64, LR: 0.01, Seed: 6,
		})
		pipeOnce.pipe = NewPipeline(m, 99)
		pipeOnce.pipe.Monitor.Samples = 6 // trimmed for test speed
	})
	return pipeOnce.pipe, pipeOnce.scenes
}

func TestPipelineSelectsSafeZone(t *testing.T) {
	p, scenes := trainedPipeline(t)
	confirmedSomewhere := false
	for _, s := range scenes {
		res := p.SelectAndVerify(s.Image, s.MPP)
		if res.CandidateCount == 0 {
			continue
		}
		if res.Confirmed {
			confirmedSomewhere = true
			// The confirmed zone must be truly road-free with margin: check
			// ground truth (the whole point of the architecture).
			ci := imaging.NewClassIntegral(s.Labels)
			z := res.Zone
			if fr := ci.BusyRoadFraction(z.X0, z.Y0, z.X0+z.SizePx, z.Y0+z.SizePx); fr > 0 {
				t.Errorf("confirmed zone contains %.3f busy-road ground truth", fr)
			}
			if res.State != Landing {
				t.Error("confirmed result not in Landing state")
			}
		}
	}
	if !confirmedSomewhere {
		t.Error("pipeline confirmed no zone across 4 scenes — monitor too strict or model too weak")
	}
}

func TestPipelineResultTrace(t *testing.T) {
	p, scenes := trainedPipeline(t)
	res := p.SelectAndVerify(scenes[0].Image, scenes[0].MPP)
	if len(res.Trials) == 0 && res.CandidateCount > 0 {
		t.Error("no trials recorded despite candidates")
	}
	if len(res.Trials) > p.MaxTrials {
		t.Errorf("%d trials exceed budget %d", len(res.Trials), p.MaxTrials)
	}
	if res.Describe() == "" {
		t.Error("empty description")
	}
	if res.Pred == nil || res.Pred.W != scenes[0].Image.W {
		t.Error("prediction not attached to result")
	}
}

func TestPipelinePlanLanding(t *testing.T) {
	p, scenes := trainedPipeline(t)
	s := scenes[0]
	tx, ty, ok := p.PlanLanding(s, s.Layout.WorldW/2, s.Layout.WorldH/2)
	if !ok {
		t.Skip("no confirmed zone in this scene")
	}
	if tx < 0 || ty < 0 || tx > s.Layout.WorldW || ty > s.Layout.WorldH {
		t.Fatalf("landing target (%.1f, %.1f) outside world", tx, ty)
	}
	// Ground truth at the target must not be busy road.
	px, py := int(tx/s.MPP), int(ty/s.MPP)
	if s.Labels.At(px, py).BusyRoad() {
		t.Error("planned landing point is on a busy road in ground truth")
	}
	// Zone config restored after planning.
	if p.Zones.HomeX != 0 || p.Zones.HomeY != 0 {
		t.Error("PlanLanding leaked home bias into pipeline config")
	}
}

// TestPipelineSafetyOnOOD asserts the safety property under distribution
// shift: whatever the pipeline confirms on out-of-distribution imagery, the
// confirmed zone must not cover busy road in ground truth — and the far
// more likely outcome is that nothing is confirmed at all.
func TestPipelineSafetyOnOOD(t *testing.T) {
	p, _ := trainedPipeline(t)
	cfg := urban.DefaultConfig()
	for seed := int64(0); seed < 3; seed++ {
		scene := urban.Generate(cfg, urban.SunsetConditions(), 900+seed)
		res := p.SelectAndVerify(scene.Image, scene.MPP)
		if !res.Confirmed {
			continue // abort is the expected, safe outcome
		}
		ci := imaging.NewClassIntegral(scene.Labels)
		z := res.Zone
		if fr := ci.BusyRoadFraction(z.X0, z.Y0, z.X0+z.SizePx, z.Y0+z.SizePx); fr > 0.05 {
			t.Errorf("seed %d: confirmed OOD zone covers %.2f busy road", seed, fr)
		}
	}
}

func TestCandidatesBorderMarginAndDiversity(t *testing.T) {
	pred := imaging.NewLabelMap(96, 96)
	for i := range pred.Pix {
		pred.Pix[i] = imaging.LowVegetation
	}
	cfg := ZoneConfig{ZoneSizeM: 8, BufferM: 0, MinSafeFraction: 0.9}
	cands := Candidates(pred, 0.5, cfg)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	zonePx := cands[0].SizePx
	margin := zonePx / 4
	for _, c := range cands {
		if c.X0 < margin || c.Y0 < margin ||
			c.X0+zonePx > 96-margin || c.Y0+zonePx > 96-margin {
			t.Fatalf("candidate (%d,%d) violates border margin %d", c.X0, c.Y0, margin)
		}
	}
	// Diversity: no two kept candidates overlap.
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			if abs(cands[i].X0-cands[j].X0) < zonePx && abs(cands[i].Y0-cands[j].Y0) < zonePx {
				t.Fatalf("candidates %d and %d overlap", i, j)
			}
		}
	}
}

func TestEvenHelpers(t *testing.T) {
	if evenSize(11) != 12 || evenSize(12) != 12 {
		t.Error("evenSize wrong")
	}
	if evenAlign(120, 128, 11) != 116 {
		t.Errorf("evenAlign = %d, want 116", evenAlign(120, 128, 11))
	}
	if evenAlign(10, 128, 12) != 10 {
		t.Error("evenAlign shifted needlessly")
	}
}

func TestSelfAssessmentLevels(t *testing.T) {
	// Bare implementation with in-context testing: integrity Medium (L1,
	// L2, M1 hold; H1 needs OOD), assurance Low (M2 authority data absent).
	integ, assur := sora.EvaluateEL(SelfAssessment(Claims{InContextTesting: true}))
	if integ != sora.Medium {
		t.Errorf("integrity = %v, want Medium", integ)
	}
	if assur != sora.Low {
		t.Errorf("assurance = %v, want Low", assur)
	}
	// With authority-verified data and OOD validation: assurance Medium,
	// integrity High.
	full := Claims{InContextTesting: true, AuthorityVerifiedData: true, OODValidation: true}
	integ, assur = sora.EvaluateEL(SelfAssessment(full))
	if integ != sora.High || assur != sora.Medium {
		t.Errorf("full claims = %v/%v, want High/Medium", integ, assur)
	}
	m := MitigationClaim(full)
	if m.Robustness() != sora.Medium {
		t.Errorf("mitigation robustness = %v, want Medium", m.Robustness())
	}
	// Third party pushes assurance to High.
	full.ThirdPartyValidation = true
	if _, assur = sora.EvaluateEL(SelfAssessment(full)); assur != sora.High {
		t.Errorf("third-party assurance = %v, want High", assur)
	}
}

func TestLandable(t *testing.T) {
	if !landable(imaging.LowVegetation) || !landable(imaging.Clutter) {
		t.Error("vegetation and clutter must be landable")
	}
	for _, c := range []imaging.Class{imaging.Road, imaging.Building, imaging.Tree,
		imaging.Humans, imaging.MovingCar, imaging.StaticCar} {
		if landable(c) {
			t.Errorf("%v must not be landable", c)
		}
	}
}

// TestPipelineTrialVerdictsMatchNaivePath pins the pipeline's frame-context
// integration: every verdict recorded in a selection's trials must be
// byte-identical to the naive per-crop VerifyRegion over the candidate's
// CropRect — the stem cache is a cost optimization, never a behavior change.
func TestPipelineTrialVerdictsMatchNaivePath(t *testing.T) {
	p, scenes := trainedPipeline(t)
	trialsChecked := 0
	for _, s := range scenes {
		res := p.SelectAndVerify(s.Image, s.MPP)
		for ti, trial := range res.Trials {
			x0, y0, size := trial.Candidate.CropRect(s.Image.W, s.Image.H)
			want := p.Monitor.VerifyRegion(s.Image.Crop(x0, y0, size, size), p.Rule)
			got := trial.Verdict
			if got.Confirmed != want.Confirmed || got.FlaggedFraction != want.FlaggedFraction ||
				got.MaxScore != want.MaxScore {
				t.Fatalf("trial %d verdict diverged from naive path:\n  got:  %+v\n  want: %+v", ti, got, want)
			}
			for i := range got.Flags.Pix {
				if got.Flags.Pix[i] != want.Flags.Pix[i] {
					t.Fatalf("trial %d flag map differs at pixel %d", ti, i)
				}
			}
			trialsChecked++
		}
	}
	if trialsChecked == 0 {
		t.Fatal("no trials to check — candidate generation produced nothing")
	}
}
