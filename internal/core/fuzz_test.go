package core

import (
	"math"
	"math/rand"
	"testing"

	"safeland/internal/imaging"
)

// FuzzZoneSelection fuzzes the Table III integrity criteria over arbitrary
// predicted segmentations: whatever the labels, the zone geometry and the
// configured thresholds, every candidate Candidates returns must keep the
// parachute-drift buffer to the nearest predicted busy-road pixel and a
// landable-surface majority — recomputed here by brute force, independent
// of the distance transform and integral image the selector uses.
func FuzzZoneSelection(f *testing.F) {
	f.Add(int64(1), uint8(48), uint8(48), 12.0, 15.0, 0.85, 0.15)
	f.Add(int64(2021), uint8(64), uint8(32), 8.0, 4.0, 0.5, 0.4)
	f.Add(int64(7), uint8(24), uint8(80), 20.0, 0.5, 0.95, 0.05)
	f.Add(int64(-9), uint8(16), uint8(16), 3.0, 25.0, 0.3, 0.8)
	f.Fuzz(func(t *testing.T, seed int64, w8, h8 uint8, zoneM, bufferM, minSafe, roadDensity float64) {
		w := 16 + int(w8)%65
		h := 16 + int(h8)%65
		const mpp = 0.5
		zoneM = clampFinite(zoneM, 2, 30)
		bufferM = clampFinite(bufferM, 0.1, 25)
		minSafe = clampFinite(minSafe, 0.2, 1)
		roadDensity = clampFinite(roadDensity, 0, 0.9)

		// An adversarial "prediction": random per-pixel classes at the
		// fuzzed road density plus a few coherent road strips, the worst of
		// speckle noise and real street geometry.
		rng := rand.New(rand.NewSource(seed))
		pred := imaging.NewLabelMap(w, h)
		classes := []imaging.Class{
			imaging.Clutter, imaging.Building, imaging.Tree,
			imaging.LowVegetation, imaging.Humans,
		}
		roadish := []imaging.Class{imaging.Road, imaging.StaticCar, imaging.MovingCar}
		for i := range pred.Pix {
			if rng.Float64() < roadDensity {
				pred.Pix[i] = roadish[rng.Intn(len(roadish))]
			} else {
				pred.Pix[i] = classes[rng.Intn(len(classes))]
			}
		}
		for s := 0; s < rng.Intn(3); s++ {
			y := rng.Intn(h)
			for x := 0; x < w; x++ {
				pred.Pix[y*w+x] = imaging.Road
			}
		}

		cfg := ZoneConfig{
			ZoneSizeM:       zoneM,
			BufferM:         bufferM,
			MinSafeFraction: minSafe,
			MaxCandidates:   8,
		}
		cands := Candidates(pred, mpp, cfg)

		var roads [][2]int
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if pred.At(x, y).BusyRoad() {
					roads = append(roads, [2]int{x, y})
				}
			}
		}
		bufferPx := bufferM / mpp
		for ci, c := range cands {
			if c.X0 < 0 || c.Y0 < 0 || c.X0+c.SizePx > w || c.Y0+c.SizePx > h {
				t.Fatalf("candidate %d out of bounds: %+v in %dx%d", ci, c, w, h)
			}
			landable := 0
			for y := c.Y0; y < c.Y0+c.SizePx; y++ {
				for x := c.X0; x < c.X0+c.SizePx; x++ {
					cl := pred.At(x, y)
					if cl.BusyRoad() {
						t.Fatalf("candidate %d contains predicted busy-road pixel (%d,%d)", ci, x, y)
					}
					if cl == imaging.LowVegetation || cl == imaging.Clutter {
						landable++
					}
				}
			}
			// The zone is a full pixel rectangle, so the min distance from
			// any zone pixel to a road pixel is the road pixel's distance
			// to its clamped projection onto the rectangle — O(roads)
			// instead of O(zonePixels × roads).
			minDist := math.Inf(1)
			for _, r := range roads {
				nx := clampInt(r[0], c.X0, c.X0+c.SizePx-1)
				ny := clampInt(r[1], c.Y0, c.Y0+c.SizePx-1)
				d := math.Hypot(float64(r[0]-nx), float64(r[1]-ny))
				if d < minDist {
					minDist = d
				}
			}
			if len(roads) > 0 && minDist < bufferPx-1e-3 {
				t.Fatalf("candidate %d violates the drift buffer: %.3f px to road, need %.3f px (%.1f m)",
					ci, minDist, bufferPx, bufferM)
			}
			frac := float64(landable) / float64(c.SizePx*c.SizePx)
			if frac < minSafe-1e-3 {
				t.Fatalf("candidate %d violates the landable majority: %.4f < %.4f", ci, frac, minSafe)
			}
			// The reported metrics must agree with the recomputation.
			if math.Abs(frac-c.SafeFraction) > 1e-3 {
				t.Fatalf("candidate %d reports safe fraction %.4f, truth %.4f", ci, c.SafeFraction, frac)
			}
		}
	})
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampFinite(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
