package core

import (
	"testing"

	"safeland/internal/monitor"
)

// TestDecisionModuleArbitration tables the Figure 2 arbiter's trial-budget
// behavior: every (budget, verdict sequence) combination must land on the
// right terminal state — confirm triggers landing execution, a rejection
// inside budget requests another candidate, and budget exhaustion (or
// running out of candidates) aborts to flight termination.
func TestDecisionModuleArbitration(t *testing.T) {
	reject := monitor.Verdict{Confirmed: false, FlaggedFraction: 0.4}
	confirm := monitor.Verdict{Confirmed: true, MaxScore: 0.05}

	cases := []struct {
		name   string
		budget int
		offers []monitor.Verdict
		// exhaust signals no further candidates after the offers.
		exhaust       bool
		want          DMState
		wantTrials    int
		wantConfirmed bool
	}{
		{"confirm on first trial", 4, []monitor.Verdict{confirm}, false, Landing, 1, true},
		{"retry then confirm", 4, []monitor.Verdict{reject, reject, confirm}, false, Landing, 3, true},
		{"confirm on last budgeted trial", 2, []monitor.Verdict{reject, confirm}, false, Landing, 2, true},
		{"abort when budget exhausted", 2, []monitor.Verdict{reject, reject}, false, Aborted, 2, false},
		{"single-trial budget aborts on reject", 1, []monitor.Verdict{reject}, false, Aborted, 1, false},
		{"confirm after abort is ignored", 1, []monitor.Verdict{reject, confirm}, false, Aborted, 1, false},
		{"reject after landing is ignored", 3, []monitor.Verdict{confirm, reject}, false, Landing, 1, true},
		{"no candidates aborts", 3, nil, true, Aborted, 0, false},
		{"candidates run out inside budget", 4, []monitor.Verdict{reject}, true, Aborted, 1, false},
		{"exhaustion after landing keeps landing", 4, []monitor.Verdict{confirm}, true, Landing, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dm := NewDecisionModule(tc.budget)
			var state DMState
			for _, v := range tc.offers {
				state = dm.Offer(v)
			}
			if tc.exhaust {
				state = dm.Exhausted()
			}
			if len(tc.offers) == 0 && !tc.exhaust {
				state = dm.State()
			}
			if state != tc.want || dm.State() != tc.want {
				t.Fatalf("state = %v (tracked %v), want %v", state, dm.State(), tc.want)
			}
			if dm.Trials() != tc.wantTrials {
				t.Errorf("trials = %d, want %d", dm.Trials(), tc.wantTrials)
			}
			if got := dm.Confirmed() != nil; got != tc.wantConfirmed {
				t.Errorf("confirmed recorded = %v, want %v", got, tc.wantConfirmed)
			}
			if tc.wantConfirmed && !dm.Confirmed().Confirmed {
				t.Error("recorded verdict is not a confirmation")
			}

			// Reset must return the arbiter to a fresh emergency regardless
			// of the terminal state it reached.
			dm.Reset()
			if dm.State() != Proposing || dm.Trials() != 0 || dm.Confirmed() != nil {
				t.Error("reset did not restore the initial state")
			}
		})
	}
}

// TestDecisionModuleBudgetFloor pins the minimum-one-trial rule: a
// non-positive budget must not produce an arbiter that can never land.
func TestDecisionModuleBudgetFloor(t *testing.T) {
	for _, budget := range []int{0, -3} {
		dm := NewDecisionModule(budget)
		if dm.MaxTrials != 1 {
			t.Fatalf("budget %d: MaxTrials = %d, want 1", budget, dm.MaxTrials)
		}
		if st := dm.Offer(monitor.Verdict{Confirmed: true}); st != Landing {
			t.Fatalf("budget %d: confirmation did not land (%v)", budget, st)
		}
	}
}
