package core

import (
	"context"
	"fmt"

	"safeland/internal/imaging"
	"safeland/internal/monitor"
	"safeland/internal/segment"
	"safeland/internal/urban"
)

// Pipeline is the full Figure 2 landing-zone selection architecture: the
// core function (deterministic MSDnet + zone selection), the Bayesian
// monitor verifying cropped candidates, and the Decision Module.
type Pipeline struct {
	Model   *segment.Model
	Monitor *monitor.Bayesian
	Rule    monitor.Rule
	Zones   ZoneConfig
	// MaxTrials is the Decision Module budget per emergency.
	MaxTrials int
}

// NewPipeline assembles the architecture around a trained model with the
// paper's monitor settings (10 MC samples, τ = 0.125, 3σ).
func NewPipeline(m *segment.Model, seed int64) *Pipeline {
	rule := monitor.DefaultRule()
	// Zone confirmation tolerates a flagged minority: the conservative 3σ
	// rule flags class boundaries and texture ambiguities even on safe
	// ground (the paper observes the same over-approximation). The hard
	// geometric invariants (no predicted busy-road pixel, drift buffer,
	// landable majority) are enforced upstream and never relax; this
	// tolerance only trades zone availability against monitor strictness —
	// experiment E10 maps that trade.
	rule.MaxFlaggedFraction = 0.25
	return &Pipeline{
		Model:     m,
		Monitor:   monitor.NewBayesian(m, seed),
		Rule:      rule,
		Zones:     DefaultZoneConfig(),
		MaxTrials: 4,
	}
}

// Trial records one verified candidate.
type Trial struct {
	Candidate Candidate
	Verdict   monitor.Verdict
}

// Result is the outcome of one emergency landing-zone selection.
type Result struct {
	// Confirmed is true when a zone passed the monitor.
	Confirmed bool
	// Zone is the confirmed candidate (valid only when Confirmed).
	Zone Candidate
	// Trials lists every candidate offered to the monitor, in order.
	Trials []Trial
	// CandidateCount is the number of zones the core function proposed.
	CandidateCount int
	// Pred is the deterministic segmentation the selection was based on.
	Pred *imaging.LabelMap
	// State is the final Decision Module state.
	State DMState
	// UsedBufferM is the road buffer that produced the candidates; smaller
	// than the configured buffer when the geometry forced degraded mode.
	UsedBufferM float64
}

// SelectAndVerify runs the complete pipeline on one on-board image with the
// pipeline's configured zone settings. It is shorthand for SelectWithConfig
// with p.Zones; see there for the selection semantics.
func (p *Pipeline) SelectAndVerify(img *imaging.Image, mpp float64) Result {
	return p.SelectWithConfig(img, mpp, p.Zones)
}

// SelectWithConfig runs the complete pipeline on one on-board image:
// segment, propose candidates, verify each with the Bayesian monitor, and
// let the Decision Module confirm, retry or abort. The zone configuration
// is a per-call value: the pipeline itself is never mutated, so one
// Pipeline may serve many differently-parameterized selections (callers
// that need parallelism still need one model replica per goroutine; see
// Replica).
//
// When the configured drift buffer fits nowhere in the scene (dense street
// grids), the buffer is relaxed stepwise. The hard invariant — no predicted
// busy-road pixel inside the zone, landable-surface majority — never
// relaxes; only the margin shrinks. This mirrors the Table III structure:
// the low-integrity criterion (no high-risk areas in the zone) is absolute,
// the medium-integrity drift margin degrades before the flight aborts.
func (p *Pipeline) SelectWithConfig(img *imaging.Image, mpp float64, cfg ZoneConfig) Result {
	res, _ := p.SelectWithConfigCtx(context.Background(), img, mpp, cfg)
	return res
}

// SelectWithConfigCtx is SelectWithConfig with cooperative cancellation
// threaded through the whole perception stack: the segmentation forward
// pass, every Monte-Carlo monitor trial, and the gaps between trials all
// honor ctx. A cancelled selection returns ctx's error together with the
// partial Result accumulated so far (completed trials are kept, Confirmed
// stays false). A selection that completes is byte-identical to a
// SelectWithConfig run: cancellation never perturbs the Monte-Carlo
// sequences of surviving calls, because the monitor reseeds per trial.
//
// The whole selection runs inside one monitor.FrameContext: the
// deterministic frame stem is computed once and shared by the segmentation
// pass and every candidate verdict, whose crop stems are sliced from it
// (nn.StemCache). The frame-context parity tests pin both against the
// per-crop formulation bit-for-bit, so this is purely a cost change.
func (p *Pipeline) SelectWithConfigCtx(ctx context.Context, img *imaging.Image, mpp float64, cfg ZoneConfig) (Result, error) {
	fc := p.Monitor.NewFrameContext(img)
	defer fc.Close()
	return p.SelectInFrame(ctx, fc, mpp, cfg)
}

// SelectInFrame runs the full selection inside an existing frame context —
// the seam descent sessions use to keep one context alive across a frame
// stream (monitor.FrameContext.Advance re-primes only changed tiles). The
// image is the context's current frame; the caller keeps ownership of fc
// and must Close it eventually. Because an advanced context is bit-identical
// to a fresh one and the monitor reseeds per trial, a selection through a
// carried-over context is byte-identical to SelectWithConfigCtx on the same
// frame — the session parity tests pin this.
func (p *Pipeline) SelectInFrame(ctx context.Context, fc *monitor.FrameContext, mpp float64, cfg ZoneConfig) (Result, error) {
	img := fc.Image()
	pred, err := fc.PredictCtx(ctx)
	if err != nil {
		return Result{}, err
	}
	zones := cfg
	var cands []Candidate
	for _, scale := range []float64{1, 0.66, 0.4, 0.2} {
		zones.BufferM = cfg.BufferM * scale
		if zones.BufferM < zones.ZoneSizeM/4 {
			zones.BufferM = zones.ZoneSizeM / 4
		}
		if cands = Candidates(pred, mpp, zones); len(cands) > 0 {
			break
		}
	}
	res := Result{Pred: pred, CandidateCount: len(cands), UsedBufferM: zones.BufferM}
	dm := NewDecisionModule(p.MaxTrials)
	for _, cand := range cands {
		x0, y0, size := cand.CropRect(img.W, img.H)
		verdict, err := fc.VerifyZoneCtx(ctx, x0, y0, size, size, p.Rule)
		if err != nil {
			return res, err
		}
		res.Trials = append(res.Trials, Trial{Candidate: cand, Verdict: verdict})
		switch dm.Offer(verdict) {
		case Landing:
			res.Confirmed = true
			res.Zone = cand
			res.State = Landing
			return res, nil
		case Aborted:
			res.State = Aborted
			return res, nil
		}
	}
	res.State = dm.Exhausted()
	return res, nil
}

// evenSize rounds a crop size up to even so the downsampling model accepts
// it.
func evenSize(s int) int {
	if s%2 == 1 {
		return s + 1
	}
	return s
}

// evenAlign shifts a crop origin left when the even-rounded size would
// exceed the image bounds.
func evenAlign(x0, w, size int) int {
	if x0+evenSize(size) > w {
		return w - evenSize(size)
	}
	return x0
}

// PlanLanding implements uav.LandingPlanner: from the scene under the
// vehicle, pick and verify a landing zone near the current position and
// return its center in meters.
func (p *Pipeline) PlanLanding(scene *urban.Scene, xM, yM float64) (txM, tyM float64, ok bool) {
	return p.PlanLandingCtx(context.Background(), scene, xM, yM)
}

// PlanLandingCtx is PlanLanding honoring ctx mid-selection (implementing
// uav.LandingPlannerCtx): a cancelled or preempted planning aborts within
// one network layer's work and reports no zone, which the mission simulator
// treats as EL unavailable.
func (p *Pipeline) PlanLandingCtx(ctx context.Context, scene *urban.Scene, xM, yM float64) (txM, tyM float64, ok bool) {
	zones := p.Zones
	zones.HomeX, zones.HomeY = xM, yM
	res, err := p.SelectWithConfigCtx(ctx, scene.Image, scene.MPP, zones)
	if err != nil || !res.Confirmed {
		return 0, 0, false
	}
	txM, tyM = res.Zone.CenterM(scene.MPP)
	return txM, tyM, true
}

// Replica returns an independent pipeline around the given model replica,
// inheriting p's monitor settings, rule, zone configuration and trial
// budget. The two pipelines share no mutable state, so they may run
// concurrently; the monitor seed carries over, keeping Monte-Carlo sample
// sequences — and therefore verdicts — identical to the original's.
func (p *Pipeline) Replica(m *segment.Model) *Pipeline {
	mon := *p.Monitor
	mon.Model = m
	q := *p
	q.Model = m
	q.Monitor = &mon
	return &q
}

// Describe renders a short trace of a result for logs and examples.
func (r Result) Describe() string {
	if r.Confirmed {
		return fmt.Sprintf("confirmed zone at (%d,%d) size %dpx after %d trial(s) — road dist %.1f m, safe %.2f",
			r.Zone.X0, r.Zone.Y0, r.Zone.SizePx, len(r.Trials), r.Zone.MinRoadDistM, r.Zone.SafeFraction)
	}
	return fmt.Sprintf("aborted after %d trial(s) of %d candidates", len(r.Trials), r.CandidateCount)
}
