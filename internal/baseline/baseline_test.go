package baseline

import (
	"testing"

	"safeland/internal/imaging"
	"safeland/internal/urban"
)

func testScene(seed int64) *urban.Scene {
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	return urban.Generate(cfg, urban.DefaultConditions(), seed)
}

func TestCannySelectsLowEdgeWindow(t *testing.T) {
	s := testScene(5)
	z, ok := NewCanny().Select(s, 24)
	if !ok {
		t.Fatal("no zone selected")
	}
	if z.X0 < 0 || z.Y0 < 0 || z.X0+z.Size > s.Image.W || z.Y0+z.Size > s.Image.H {
		t.Fatalf("zone out of bounds: %+v", z)
	}
	// The chosen window must have fewer edges than the scene average.
	edges := s.Image.Luminance().Canny(1.2, 0.06, 0.18)
	it := imaging.NewIntegral(edges)
	zoneMean := it.RectMean(z.X0, z.Y0, z.X0+z.Size, z.Y0+z.Size)
	sceneMean := it.RectMean(0, 0, s.Image.W, s.Image.H)
	if zoneMean > sceneMean {
		t.Errorf("zone edge density %v above scene mean %v", zoneMean, sceneMean)
	}
}

func TestFlatnessPrefersFlatGround(t *testing.T) {
	s := testScene(6)
	z, ok := Flatness{}.Select(s, 24)
	if !ok {
		t.Fatal("no zone selected")
	}
	// The selected window must not contain buildings (tall structures).
	for y := z.Y0; y < z.Y0+z.Size; y++ {
		for x := z.X0; x < z.X0+z.Size; x++ {
			if s.Labels.At(x, y) == imaging.Building {
				t.Fatalf("flatness selected a building at (%d,%d)", x, y)
			}
		}
	}
}

func TestFlatnessCanPickRoads(t *testing.T) {
	// The paper's criticism: flat surfaces include roads. Across seeds, the
	// flatness selector should sometimes choose zones containing busy-road
	// pixels — the hazardous behavior EL is designed to avoid.
	roadPicks := 0
	for seed := int64(0); seed < 10; seed++ {
		s := testScene(100 + seed)
		z, ok := Flatness{}.Select(s, 20)
		if !ok {
			continue
		}
		ci := imaging.NewClassIntegral(s.Labels)
		if ci.BusyRoadFraction(z.X0, z.Y0, z.X0+z.Size, z.Y0+z.Size) > 0.05 {
			roadPicks++
		}
	}
	if roadPicks == 0 {
		t.Skip("flatness never picked a road across these seeds; criticism not observable here")
	}
	t.Logf("flatness picked road-containing zones in %d/10 scenes", roadPicks)
}

func TestZoneCenterM(t *testing.T) {
	z := Zone{X0: 10, Y0: 20, Size: 20}
	x, y := z.CenterM(0.5)
	if x != 10 || y != 15 {
		t.Errorf("center = (%v, %v), want (10, 15)", x, y)
	}
}

func TestSelectorsRejectOversizedZones(t *testing.T) {
	s := testScene(7)
	if _, ok := NewCanny().Select(s, 1000); ok {
		t.Error("canny accepted an oversized zone")
	}
	if _, ok := NewTileClassifier().Select(s, 1000); ok {
		t.Error("tile classifier accepted an oversized zone")
	}
}

func TestTileClassifierLearnsClasses(t *testing.T) {
	scenes := []*urban.Scene{testScene(11), testScene(12)}
	tc := NewTileClassifier()
	tc.Train(scenes, 6, 3)

	// Accuracy on training tiles must beat chance substantially.
	s := scenes[0]
	edges := s.Image.Luminance().Canny(1.2, 0.06, 0.18)
	correct, total := 0, 0
	for y := 0; y+tc.TileSize <= s.Image.H; y += tc.TileSize {
		for x := 0; x+tc.TileSize <= s.Image.W; x += tc.TileSize {
			var counts [imaging.NumClasses]int
			for yy := y; yy < y+tc.TileSize; yy++ {
				for xx := x; xx < x+tc.TileSize; xx++ {
					counts[s.Labels.At(xx, yy)]++
				}
			}
			bc, bn := 0, -1
			for c, n := range counts {
				if n > bn {
					bc, bn = c, n
				}
			}
			probs := tc.ClassifyWindow(s.Image, edges, x, y, tc.TileSize)
			pc, pv := 0, -1.0
			for c, p := range probs {
				if p > pv {
					pc, pv = c, p
				}
			}
			if pc == bc {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.5 {
		t.Errorf("tile classifier train accuracy %.3f, want >= 0.5 (chance is 0.125)", acc)
	}
}

func TestTileClassifierSelectAvoidsRoadCenters(t *testing.T) {
	scenes := []*urban.Scene{testScene(21), testScene(22)}
	tc := NewTileClassifier()
	tc.Train(scenes, 6, 3)
	s := testScene(23)
	z, ok := tc.Select(s, 20)
	if !ok {
		t.Fatal("no zone")
	}
	ci := imaging.NewClassIntegral(s.Labels)
	if fr := ci.BusyRoadFraction(z.X0, z.Y0, z.X0+z.Size, z.Y0+z.Size); fr > 0.5 {
		t.Errorf("tile classifier landed mostly on road (%.2f busy fraction)", fr)
	}
}

func TestSelectorNames(t *testing.T) {
	selectors := []Selector{NewCanny(), Flatness{}, NewTileClassifier()}
	seen := map[string]bool{}
	for _, sel := range selectors {
		n := sel.Name()
		if n == "" || seen[n] {
			t.Errorf("selector name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}
