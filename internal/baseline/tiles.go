package baseline

import (
	"math"
	"math/rand"

	"safeland/internal/imaging"
	"safeland/internal/urban"
)

// TileClassifier is the classical-ML baseline: a multinomial logistic
// regression over handcrafted tile features (color statistics, edge
// density, texture energy), standing in for the SVM/shallow-CNN tile
// classifiers of Mejias (2014), Lai (2016) and Funahashi (2018).
type TileClassifier struct {
	// TileSize is the training tile side in pixels.
	TileSize int
	// W holds one weight row per class over numFeatures+1 inputs (bias
	// last).
	W [imaging.NumClasses][]float64
}

const numFeatures = 9

// features summarizes one window: RGB means, RGB stds, luminance mean, edge
// fraction and luminance texture energy.
func features(img *imaging.Image, edges *imaging.Map, x0, y0, size int) [numFeatures]float64 {
	var sumR, sumG, sumB, sumR2, sumG2, sumB2, sumL, sumL2, edge float64
	n := float64(size * size)
	for y := y0; y < y0+size; y++ {
		for x := x0; x < x0+size; x++ {
			p := img.At(x, y)
			l := float64(p.Luma())
			sumR += float64(p.R)
			sumG += float64(p.G)
			sumB += float64(p.B)
			sumR2 += float64(p.R) * float64(p.R)
			sumG2 += float64(p.G) * float64(p.G)
			sumB2 += float64(p.B) * float64(p.B)
			sumL += l
			sumL2 += l * l
			if edges.At(x, y) >= 0.5 {
				edge++
			}
		}
	}
	std := func(sum, sum2 float64) float64 {
		v := sum2/n - (sum/n)*(sum/n)
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	}
	return [numFeatures]float64{
		sumR / n, sumG / n, sumB / n,
		std(sumR, sumR2), std(sumG, sumG2), std(sumB, sumB2),
		sumL / n, edge / n, std(sumL, sumL2),
	}
}

// NewTileClassifier allocates an untrained classifier with 16 px tiles.
func NewTileClassifier() *TileClassifier {
	tc := &TileClassifier{TileSize: 16}
	for c := range tc.W {
		tc.W[c] = make([]float64, numFeatures+1)
	}
	return tc
}

// Train fits the classifier on tiles sampled from the scenes, labeling each
// tile with its majority ground-truth class.
func (tc *TileClassifier) Train(scenes []*urban.Scene, epochs int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	type sample struct {
		f [numFeatures]float64
		c int
	}
	var samples []sample
	for _, s := range scenes {
		edges := s.Image.Luminance().Canny(1.2, 0.06, 0.18)
		for y := 0; y+tc.TileSize <= s.Image.H; y += tc.TileSize {
			for x := 0; x+tc.TileSize <= s.Image.W; x += tc.TileSize {
				var counts [imaging.NumClasses]int
				for yy := y; yy < y+tc.TileSize; yy++ {
					for xx := x; xx < x+tc.TileSize; xx++ {
						counts[s.Labels.At(xx, yy)]++
					}
				}
				bc, bn := 0, -1
				for c, n := range counts {
					if n > bn {
						bc, bn = c, n
					}
				}
				samples = append(samples, sample{f: features(s.Image, edges, x, y, tc.TileSize), c: bc})
			}
		}
	}
	if len(samples) == 0 {
		return
	}
	const lr = 0.5
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		for _, s := range samples {
			probs := tc.probsFromFeatures(s.f)
			for c := 0; c < imaging.NumClasses; c++ {
				g := probs[c]
				if c == s.c {
					g -= 1
				}
				for k := 0; k < numFeatures; k++ {
					tc.W[c][k] -= lr * g * s.f[k]
				}
				tc.W[c][numFeatures] -= lr * g
			}
		}
	}
}

func (tc *TileClassifier) probsFromFeatures(f [numFeatures]float64) [imaging.NumClasses]float64 {
	var logits [imaging.NumClasses]float64
	maxL := math.Inf(-1)
	for c := 0; c < imaging.NumClasses; c++ {
		l := tc.W[c][numFeatures]
		for k := 0; k < numFeatures; k++ {
			l += tc.W[c][k] * f[k]
		}
		logits[c] = l
		if l > maxL {
			maxL = l
		}
	}
	var sum float64
	for c := range logits {
		logits[c] = math.Exp(logits[c] - maxL)
		sum += logits[c]
	}
	for c := range logits {
		logits[c] /= sum
	}
	return logits
}

// ClassifyWindow returns per-class probabilities for one window.
func (tc *TileClassifier) ClassifyWindow(img *imaging.Image, edges *imaging.Map, x0, y0, size int) [imaging.NumClasses]float64 {
	return tc.probsFromFeatures(features(img, edges, x0, y0, size))
}

// Name implements Selector.
func (tc *TileClassifier) Name() string { return "tile-classifier" }

// Select implements Selector: it scans windows and picks the one whose
// predicted class mix is most landable (vegetation/clutter, no roads, cars,
// buildings or people).
func (tc *TileClassifier) Select(scene *urban.Scene, zonePx int) (Zone, bool) {
	if zonePx <= 0 || zonePx > scene.Image.W || zonePx > scene.Image.H {
		return Zone{}, false
	}
	edges := scene.Image.Luminance().Canny(1.2, 0.06, 0.18)
	best := math.Inf(1)
	var bz Zone
	found := false
	for y := 0; y+zonePx <= scene.Image.H; y += 4 {
		for x := 0; x+zonePx <= scene.Image.W; x += 4 {
			p := tc.ClassifyWindow(scene.Image, edges, x, y, zonePx)
			hazard := p[imaging.Road] + p[imaging.MovingCar] + p[imaging.StaticCar] +
				p[imaging.Building] + p[imaging.Humans]
			score := hazard + 0.2*(1-p[imaging.LowVegetation])
			if score < best {
				best = score
				bz = Zone{X0: x, Y0: y, Size: zonePx, Score: score}
				found = true
			}
		}
	}
	return bz, found
}
