// Package baseline implements the vision-based landing-zone selection
// methods the paper's related-work section surveys, as comparison points
// for the MSDnet+monitor pipeline:
//
//   - edge-density selection on Canny maps (Mejias & Fitzgerald 2013);
//   - tile classification with a shallow learned classifier on handcrafted
//     features (Mejias 2014, Lai 2016, Funahashi 2018);
//   - flatness-based selection on a depth/height field (Marcu 2018 SafeUAV,
//     Mittal 2019).
//
// The paper's Section II-B.4 criticism — "while some studies consider flat
// areas, such as roads, as safe for landing, others specifically try to
// avoid transportation infrastructures" — becomes measurable with these:
// flat/low-edge selectors systematically pick roads and parking lots.
package baseline

import (
	"math"

	"safeland/internal/imaging"
	"safeland/internal/urban"
)

// Zone is a selected square landing window in pixel coordinates.
type Zone struct {
	X0, Y0, Size int
	// Score is selector-specific (lower = preferred).
	Score float64
}

// CenterM returns the zone center in world meters.
func (z Zone) CenterM(mpp float64) (x, y float64) {
	return (float64(z.X0) + float64(z.Size)/2) * mpp, (float64(z.Y0) + float64(z.Size)/2) * mpp
}

// Selector picks a landing zone from a scene.
type Selector interface {
	Name() string
	// Select returns the preferred zone of the given pixel size.
	Select(scene *urban.Scene, zonePx int) (Zone, bool)
}

// Canny selects the window with the lowest edge density, after Mejias &
// Fitzgerald (2013): homogeneous image regions are assumed landable.
type Canny struct {
	Sigma     float64
	Low, High float32
}

// NewCanny returns the detector with the thresholds used in the benchmarks.
func NewCanny() *Canny { return &Canny{Sigma: 1.2, Low: 0.06, High: 0.18} }

// Name implements Selector.
func (c *Canny) Name() string { return "canny-edge-density" }

// Select implements Selector.
func (c *Canny) Select(scene *urban.Scene, zonePx int) (Zone, bool) {
	edges := scene.Image.Luminance().Canny(c.Sigma, c.Low, c.High)
	return minMeanWindow(edges, zonePx, 2)
}

// Flatness selects the window with the lowest height variance and mean,
// standing in for the depth-based methods (SafeUAV): "select a flat surface
// for safe landing". It reads the scene's height field, which simulates the
// output of monocular depth estimation.
type Flatness struct{}

// Name implements Selector.
func (Flatness) Name() string { return "flatness" }

// Select implements Selector.
func (Flatness) Select(scene *urban.Scene, zonePx int) (Zone, bool) {
	h := scene.Height
	sq := imaging.NewMap(h.W, h.H)
	for i, v := range h.Pix {
		sq.Pix[i] = v * v
	}
	meanIt := imaging.NewIntegral(h)
	sqIt := imaging.NewIntegral(sq)
	best := math.Inf(1)
	var bz Zone
	found := false
	for y := 0; y+zonePx <= h.H; y += 2 {
		for x := 0; x+zonePx <= h.W; x += 2 {
			m := meanIt.RectMean(x, y, x+zonePx, y+zonePx)
			v := sqIt.RectMean(x, y, x+zonePx, y+zonePx) - m*m
			score := v + 0.05*m // flat and low
			if score < best {
				best = score
				bz = Zone{X0: x, Y0: y, Size: zonePx, Score: score}
				found = true
			}
		}
	}
	return bz, found
}

// FTCenter "selects" the zone under the current position — the scene
// center — modeling uncontrolled flight termination, which does not select
// at all. It is the paper's fault-tolerant floor (Figure 1: a monitor
// refusal escalates to the FT maneuver) and the degraded-mode fallback the
// serving stack answers with when perception is faulted: pure geometry, no
// model in the loop, so it cannot itself fail under perception faults.
type FTCenter struct{}

// Name implements Selector.
func (FTCenter) Name() string { return "ft-center" }

// Select implements Selector.
func (FTCenter) Select(scene *urban.Scene, zonePx int) (Zone, bool) {
	x0 := (scene.Labels.W - zonePx) / 2
	y0 := (scene.Labels.H - zonePx) / 2
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	return Zone{X0: x0, Y0: y0, Size: zonePx}, true
}

// minMeanWindow scans zonePx windows with the given stride and returns the
// one with the smallest mean value of m.
func minMeanWindow(m *imaging.Map, zonePx, stride int) (Zone, bool) {
	if zonePx <= 0 || zonePx > m.W || zonePx > m.H {
		return Zone{}, false
	}
	it := imaging.NewIntegral(m)
	best := math.Inf(1)
	var bz Zone
	found := false
	for y := 0; y+zonePx <= m.H; y += stride {
		for x := 0; x+zonePx <= m.W; x += stride {
			mean := it.RectMean(x, y, x+zonePx, y+zonePx)
			if mean < best {
				best = mean
				bz = Zone{X0: x, Y0: y, Size: zonePx, Score: mean}
				found = true
			}
		}
	}
	return bz, found
}
