// Package segment implements the paper's core landing-zone perception
// function: an MSDnet-style multi-scale dilated convolutional network for
// 8-class semantic segmentation of urban aerial imagery (Lyu et al. 2020),
// together with its training harness and evaluation metrics.
package segment

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"

	"safeland/internal/imaging"
	"safeland/internal/nn"
)

// Config describes an MSDnet instance. The defaults are a CPU-scale
// reduction of the paper's network: a strided stem followed by parallel
// dilated branches whose outputs are concatenated, a Monte-Carlo-capable
// dropout stage, and a 1×1 classification head.
type Config struct {
	NumClasses int
	// StemChannels is the width of the stem convolution.
	StemChannels int
	// BranchChannels is the width of each dilated branch.
	BranchChannels int
	// Dilations lists the dilation rate of each parallel branch — the
	// "multi-scale dilation" core of MSDnet.
	Dilations []int
	// DropoutP is the dropout probability. The paper uses 0.5 on all
	// relevant MSDnet layers for the Bayesian variant.
	DropoutP float64
	// Downsample runs the trunk at half resolution (stride-2 stem, 2×
	// upsampled logits), trading boundary sharpness for ~4× speed.
	Downsample bool
	// Seed drives weight initialization and dropout sampling.
	Seed int64
}

// DefaultConfig returns the configuration used across the experiments.
func DefaultConfig() Config {
	return Config{
		NumClasses:     imaging.NumClasses,
		StemChannels:   20,
		BranchChannels: 14,
		Dilations:      []int{1, 2, 4},
		DropoutP:       0.5,
		Downsample:     true,
		Seed:           1,
	}
}

// Model wraps the network with image conversion, prediction and
// checkpointing. Build one with New.
type Model struct {
	Net nn.Layer
	Cfg Config

	// frozen marks a shared-weights clone: its parameters alias another
	// model's and must never be written. Train rejects frozen models.
	frozen bool

	// scratch is this replica's tensor arena: inference outputs are drawn
	// from it and recycled, so steady-state prediction allocates nothing.
	// It is single-goroutine like the model itself; Clone gives every
	// replica its own arena.
	scratch *nn.Scratch
}

// New builds an MSDnet with freshly initialized weights.
func New(cfg Config) *Model {
	if cfg.NumClasses <= 1 {
		panic(fmt.Sprintf("segment: invalid class count %d", cfg.NumClasses))
	}
	if len(cfg.Dilations) == 0 {
		panic("segment: at least one dilation branch required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	stemStride := 1
	if cfg.Downsample {
		stemStride = 2
	}
	layers := []nn.Layer{
		nn.NewConv2D("stem", 3, cfg.StemChannels, 3, stemStride, 1, 1, rng),
		nn.NewBatchNorm2D("stem.bn", cfg.StemChannels),
		&nn.ReLU{},
		nn.NewDropout(cfg.DropoutP, cfg.Seed+101),
	}

	branches := make([]nn.Layer, len(cfg.Dilations))
	for i, d := range cfg.Dilations {
		name := fmt.Sprintf("branch%d", d)
		branches[i] = nn.NewSequential(
			nn.NewConv2D(name+".conv", cfg.StemChannels, cfg.BranchChannels, 3, 1, d, d, rng),
			nn.NewBatchNorm2D(name+".bn", cfg.BranchChannels),
			&nn.ReLU{},
		)
	}
	layers = append(layers,
		nn.NewParallelConcat(branches...),
		nn.NewDropout(cfg.DropoutP, cfg.Seed+202),
		nn.NewConv2D("head", cfg.BranchChannels*len(cfg.Dilations), cfg.NumClasses, 1, 1, 0, 1, rng),
	)
	if cfg.Downsample {
		layers = append(layers, &nn.Upsample2x{})
	}
	m := &Model{Net: nn.NewSequential(layers...), Cfg: cfg, scratch: nn.NewScratch()}
	nn.AttachScratch(m.Net, m.scratch)
	return m
}

// Scratch returns the model's per-replica tensor arena. Callers that hold
// the model may draw buffers from it and must return only buffers they
// exclusively own; tensors escaping to API callers are simply never Put
// back.
func (m *Model) Scratch() *nn.Scratch { return m.scratch }

// ParamCount returns the total number of trainable scalars.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.Net.Params() {
		n += p.Value.Numel()
	}
	return n
}

// ToTensor converts an RGB image into a centered [1,3,H,W] input tensor.
func ToTensor(img *imaging.Image) *nn.Tensor {
	return ToTensorScratch(img, nil)
}

// ToTensorScratch is ToTensor drawing the tensor from an arena (nil falls
// back to a fresh allocation). Every element is written, so arena reuse is
// value-identical.
func ToTensorScratch(img *imaging.Image, sc *nn.Scratch) *nn.Tensor {
	t := sc.Get(1, 3, img.H, img.W)
	hw := img.H * img.W
	for i, p := range img.Pix {
		t.Data[i] = p.R - 0.5
		t.Data[hw+i] = p.G - 0.5
		t.Data[2*hw+i] = p.B - 0.5
	}
	return t
}

// UpdateTensorRect rewrites the (x0, y0, w, h) window of a ToTensor-shaped
// [1,3,H,W] tensor from the same window of img, leaving every element
// outside the window untouched. Updating a previous frame's tensor at the
// changed rectangles is value-identical to converting the new frame from
// scratch — the descent-session temporal path depends on exactly that.
func UpdateTensorRect(t *nn.Tensor, img *imaging.Image, x0, y0, w, h int) {
	hw := img.H * img.W
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			i := y*img.W + x
			p := img.Pix[i]
			t.Data[i] = p.R - 0.5
			t.Data[hw+i] = p.G - 0.5
			t.Data[2*hw+i] = p.B - 0.5
		}
	}
}

// checkEven panics when a downsampling model receives odd spatial dims; the
// stride-2 stem plus 2× upsample would silently change the output size.
func (m *Model) checkEven(img *imaging.Image) {
	if m.Cfg.Downsample && (img.W%2 != 0 || img.H%2 != 0) {
		panic(fmt.Sprintf("segment: downsampling model requires even dimensions, got %dx%d", img.W, img.H))
	}
}

// Logits runs a deterministic forward pass (dropout inactive) and returns
// raw per-class scores [1,C,H,W]. The result may come from the model's
// arena; the caller owns it (it is never handed out again).
func (m *Model) Logits(img *imaging.Image) *nn.Tensor {
	m.checkEven(img)
	in := ToTensorScratch(img, m.scratch)
	out := m.Net.Forward(in, false)
	if out != in {
		m.scratch.Put(in)
	}
	return out
}

// PredictProbs returns per-pixel class probabilities [1,C,H,W] from a
// deterministic forward pass — the paper's "standard version" of the model,
// whose softmax scores are point estimates with no confidence semantics.
func (m *Model) PredictProbs(img *imaging.Image) *nn.Tensor {
	return nn.SoftmaxChannelsInPlace(m.Logits(img))
}

// Predict returns the per-pixel argmax segmentation.
func (m *Model) Predict(img *imaging.Image) *imaging.LabelMap {
	scores := m.Logits(img)
	lm := labelMap(scores, img.W, img.H)
	m.scratch.Put(scores) // the label map copied everything out
	return lm
}

// LogitsCtx is Logits with cooperative cancellation: the context is honored
// between network layers, so a cancelled caller waits for at most one
// layer's work instead of the full forward pass.
func (m *Model) LogitsCtx(ctx context.Context, img *imaging.Image) (*nn.Tensor, error) {
	m.checkEven(img)
	in := ToTensorScratch(img, m.scratch)
	out, err := nn.ForwardCtx(ctx, m.Net, in, false)
	if err != nil {
		// The chain input is never recycled mid-chain, so it is safe to
		// reclaim on cancellation — leaving it out would grow the arena by
		// one input-sized buffer per cancelled pass.
		m.scratch.Put(in)
		return nil, err
	}
	if out != in {
		m.scratch.Put(in)
	}
	return out, nil
}

// PredictCtx is Predict with cooperative cancellation; see LogitsCtx.
func (m *Model) PredictCtx(ctx context.Context, img *imaging.Image) (*imaging.LabelMap, error) {
	scores, err := m.LogitsCtx(ctx, img)
	if err != nil {
		return nil, err
	}
	lm := labelMap(scores, img.W, img.H)
	m.scratch.Put(scores)
	return lm, nil
}

func labelMap(scores *nn.Tensor, w, h int) *imaging.LabelMap {
	am := nn.ArgmaxChannels(scores)[0]
	out := imaging.NewLabelMap(w, h)
	for i, c := range am {
		out.Pix[i] = imaging.Class(c)
	}
	return out
}

// LabelMapFromScores converts raw class scores ([1,C,H,W]) into the label
// map Predict would produce for a w×h input. It lets callers that obtain
// scores without going through Logits — the monitor's frame context runs
// the suffix over a cached stem — share the exact argmax-and-cast path, so
// their predictions cannot drift from Predict's.
func LabelMapFromScores(scores *nn.Tensor, w, h int) *imaging.LabelMap {
	return labelMap(scores, w, h)
}

// Clone returns a frozen shared-weights replica: a fresh network of the
// same architecture whose parameter tensors and batch-norm statistics
// alias the original's, so an N-worker replica pool pays for one copy of
// the weights instead of N. Forward passes cache per-layer state, so a
// model instance must not be shared across goroutines; Clone is how
// concurrent servers get one replica per worker — the mutable caches
// (ReLU masks, dropout RNGs, batch-norm scratch) are private per clone,
// only the read-only weights are shared. Dropout layers are rebuilt from
// Cfg.Seed, so a reseeded Monte-Carlo sample sequence is identical on
// every clone.
//
// Frozen-weights invariant: a clone is inference-only. Train panics on it,
// and the source model must not be retrained while clones are live — an
// optimizer step on the shared tensors would race every replica. Use
// CloneDetached when an independently-trainable copy is needed.
func (m *Model) Clone() (*Model, error) {
	c := New(m.Cfg)
	if err := nn.ShareParams(c.Net, m.Net); err != nil {
		return nil, fmt.Errorf("cloning model: %w", err)
	}
	// A frozen clone can never train (Train panics on it), so the gradient
	// accumulators New allocated are dead weight — dropping them is what
	// actually brings an N-worker pool down to one param-sized footprint.
	for _, p := range c.Net.Params() {
		p.Grad = nil
	}
	c.frozen = true
	return c, nil
}

// CloneDetached returns a deep copy with its own parameter memory: the
// parameters and batch-norm statistics are serialized out of the original
// and poured into a fresh network. Unlike Clone, the result is trainable.
func (m *Model) CloneDetached() (*Model, error) {
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, m.Net); err != nil {
		return nil, fmt.Errorf("cloning model: %w", err)
	}
	c := New(m.Cfg)
	if err := nn.LoadParams(&buf, c.Net); err != nil {
		return nil, fmt.Errorf("cloning model: %w", err)
	}
	return c, nil
}

// Frozen reports whether this model is a shared-weights clone whose
// parameters must not be written.
func (m *Model) Frozen() bool { return m.frozen }

// Save writes the model parameters to path.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating checkpoint: %w", err)
	}
	defer f.Close()
	if err := nn.SaveParams(f, m.Net); err != nil {
		return fmt.Errorf("saving %s: %w", path, err)
	}
	return nil
}

// Load reads model parameters from path into an architecture built from cfg.
func Load(path string, cfg Config) (*Model, error) {
	m := New(cfg)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening checkpoint: %w", err)
	}
	defer f.Close()
	if err := nn.LoadParams(f, m.Net); err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return m, nil
}
