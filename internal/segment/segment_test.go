package segment

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"safeland/internal/imaging"
	"safeland/internal/nn"
	"safeland/internal/urban"
)

// tinyConfig returns a model small enough for fast unit tests.
func tinyConfig() Config {
	return Config{
		NumClasses:     imaging.NumClasses,
		StemChannels:   6,
		BranchChannels: 4,
		Dilations:      []int{1, 2},
		DropoutP:       0.5,
		Downsample:     true,
		Seed:           3,
	}
}

func tinyScenes(t *testing.T, n int) []*urban.Scene {
	t.Helper()
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 96, 96
	return urban.GenerateSet(cfg, urban.DefaultConditions(), n, 400)
}

func TestModelShapes(t *testing.T) {
	m := New(tinyConfig())
	img := imaging.NewImage(64, 48)
	logits := m.Logits(img)
	n, c, h, w := logits.Dims4()
	if n != 1 || c != imaging.NumClasses || h != 48 || w != 64 {
		t.Fatalf("logits shape %v", logits.Shape)
	}
	pred := m.Predict(img)
	if pred.W != 64 || pred.H != 48 {
		t.Fatalf("prediction %dx%d", pred.W, pred.H)
	}
	probs := m.PredictProbs(img)
	var sum float64
	for ci := 0; ci < imaging.NumClasses; ci++ {
		sum += float64(probs.At4(0, ci, 10, 10))
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("probs sum %v", sum)
	}
}

func TestModelOddSizePanicsWhenDownsampling(t *testing.T) {
	m := New(tinyConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd input to downsampling model")
		}
	}()
	m.Logits(imaging.NewImage(63, 48))
}

func TestFullResolutionModelAcceptsOddSizes(t *testing.T) {
	cfg := tinyConfig()
	cfg.Downsample = false
	m := New(cfg)
	pred := m.Predict(imaging.NewImage(33, 17))
	if pred.W != 33 || pred.H != 17 {
		t.Fatalf("prediction %dx%d", pred.W, pred.H)
	}
}

func TestDeterministicInference(t *testing.T) {
	m := New(tinyConfig())
	scene := tinyScenes(t, 1)[0]
	a := m.PredictProbs(scene.Image)
	b := m.PredictProbs(scene.Image)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("standard inference is not deterministic (dropout leaking?)")
		}
	}
}

func TestParamCountScalesWithConfig(t *testing.T) {
	small := New(tinyConfig())
	big := New(DefaultConfig())
	if small.ParamCount() <= 0 || big.ParamCount() <= small.ParamCount() {
		t.Fatalf("param counts small=%d big=%d", small.ParamCount(), big.ParamCount())
	}
}

func TestTrainingReducesLossAndLearnsRoads(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	scenes := tinyScenes(t, 4)
	m := New(tinyConfig())
	cfg := TrainConfig{Steps: 120, Batch: 2, CropSize: 64, LR: 0.01, Seed: 5}
	stats := Train(m, scenes, cfg)
	if stats.FinalLoss >= stats.FirstLoss {
		t.Fatalf("loss did not decrease: first %.4f final %.4f", stats.FirstLoss, stats.FinalLoss)
	}
	conf := Evaluate(m, scenes[:2])
	if acc := conf.PixelAccuracy(); acc < 0.4 {
		t.Errorf("train accuracy %.3f unreasonably low after training", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	scenes := tinyScenes(t, 2)
	cfg := TrainConfig{Steps: 6, Batch: 1, CropSize: 48, LR: 0.01, Seed: 9}
	a := New(tinyConfig())
	b := New(tinyConfig())
	Train(a, scenes, cfg)
	Train(b, scenes, cfg)
	pa, pb := a.Net.Params(), b.Net.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
				t.Fatal("training is not deterministic for identical seeds")
			}
		}
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	scenes := tinyScenes(t, 1)
	m := New(tinyConfig())
	Train(m, scenes, TrainConfig{Steps: 4, Batch: 1, CropSize: 48, LR: 0.01, Seed: 2})
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := m.PredictProbs(scenes[0].Image)
	b := loaded.PredictProbs(scenes[0].Image)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt"), tinyConfig()); err == nil {
		t.Fatal("expected error for missing checkpoint")
	}
}

func TestSafetyClassWeights(t *testing.T) {
	w := SafetyClassWeights()
	if len(w) != imaging.NumClasses {
		t.Fatalf("weights length %d", len(w))
	}
	if w[imaging.Road] <= w[imaging.Building] {
		t.Error("road weight should exceed building weight")
	}
	for _, c := range imaging.BusyRoadClasses() {
		if w[c] <= 1 {
			t.Errorf("busy-road class %v weight %v not up-weighted", c, w[c])
		}
	}
}

func TestConfusionMetrics(t *testing.T) {
	truth := imaging.NewLabelMap(4, 2)
	pred := imaging.NewLabelMap(4, 2)
	// truth: 4 road, 4 clutter; pred: 2 road correct, 2 road→clutter,
	// 1 clutter→road, 3 clutter correct.
	truth.FillRect(0, 0, 4, 1, imaging.Road)
	pred.Set(0, 0, imaging.Road)
	pred.Set(1, 0, imaging.Road)
	pred.Set(0, 1, imaging.Road)
	var c Confusion
	c.Add(truth, pred)

	if got := c.PixelAccuracy(); math.Abs(got-5.0/8) > 1e-9 {
		t.Errorf("accuracy = %v, want 0.625", got)
	}
	iou, ok := c.IoU(imaging.Road)
	if !ok || math.Abs(iou-2.0/5) > 1e-9 {
		t.Errorf("road IoU = %v ok=%v, want 0.4", iou, ok)
	}
	if got := c.Recall(imaging.Road); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("road recall = %v, want 0.5", got)
	}
	if got := c.Precision(imaging.Road); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("road precision = %v, want 2/3", got)
	}
	if got := c.BusyRoadRecall(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("busy recall = %v, want 0.5", got)
	}
	if _, ok := c.IoU(imaging.Tree); ok {
		t.Error("IoU of absent class should report not-ok")
	}
	if c.String() == "" {
		t.Error("empty string summary")
	}
}

func TestConfusionMismatchPanics(t *testing.T) {
	var c Confusion
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	c.Add(imaging.NewLabelMap(2, 2), imaging.NewLabelMap(3, 3))
}

func TestMCDropoutVariesPredictions(t *testing.T) {
	m := New(tinyConfig())
	scene := tinyScenes(t, 1)[0]
	nn.SetDropoutMode(m.Net, nn.AlwaysOn)
	defer nn.SetDropoutMode(m.Net, nn.Auto)
	a := m.PredictProbs(scene.Image)
	b := m.PredictProbs(scene.Image)
	diff := 0
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("MC dropout produced identical samples")
	}
}

func TestCloneSharesFrozenWeights(t *testing.T) {
	scenes := tinyScenes(t, 1)
	m := New(tinyConfig())
	Train(m, scenes, TrainConfig{Steps: 4, Batch: 1, CropSize: 48, LR: 0.01, Seed: 2})
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Frozen() || m.Frozen() {
		t.Fatalf("frozen flags: clone %v source %v, want true/false", c.Frozen(), m.Frozen())
	}
	if !nn.SharesParams(m.Net, c.Net) {
		t.Fatal("clone does not alias the source parameter tensors")
	}
	mp, cp := m.Net.Params(), c.Net.Params()
	for i := range mp {
		if &mp[i].Value.Data[0] != &cp[i].Value.Data[0] {
			t.Fatalf("param %d (%s) copied instead of shared", i, mp[i].Name)
		}
		if cp[i].Grad != nil {
			t.Fatalf("param %d (%s) keeps a gradient accumulator on a frozen clone", i, mp[i].Name)
		}
		if mp[i].Grad == nil {
			t.Fatalf("param %d (%s) lost the source model's gradient", i, mp[i].Name)
		}
	}
	a := m.PredictProbs(scenes[0].Image)
	b := c.PredictProbs(scenes[0].Image)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("shared-weights clone predicts differently")
		}
	}

	// The frozen invariant is enforced: training a clone must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when training a frozen clone")
		}
	}()
	Train(c, scenes, TrainConfig{Steps: 1, Batch: 1, CropSize: 48, LR: 0.01, Seed: 2})
}

func TestCloneDetachedIsIndependent(t *testing.T) {
	scenes := tinyScenes(t, 1)
	m := New(tinyConfig())
	Train(m, scenes, TrainConfig{Steps: 4, Batch: 1, CropSize: 48, LR: 0.01, Seed: 2})
	c, err := m.CloneDetached()
	if err != nil {
		t.Fatal(err)
	}
	if c.Frozen() {
		t.Fatal("detached clone reports frozen")
	}
	if nn.SharesParams(m.Net, c.Net) {
		t.Fatal("detached clone aliases the source weights")
	}
	a := m.PredictProbs(scenes[0].Image)
	b := c.PredictProbs(scenes[0].Image)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("detached clone predicts differently")
		}
	}
	// Training the detached copy must leave the source untouched.
	before := m.Net.Params()[0].Value.Clone()
	Train(c, scenes, TrainConfig{Steps: 2, Batch: 1, CropSize: 48, LR: 0.01, Seed: 3})
	after := m.Net.Params()[0].Value
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("training a detached clone mutated the source model")
		}
	}
}

func TestPredictCtxMatchesPredictAndCancels(t *testing.T) {
	m := New(tinyConfig())
	scene := tinyScenes(t, 1)[0]
	want := m.Predict(scene.Image)
	got, err := m.PredictCtx(context.Background(), scene.Image)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Pix, got.Pix) {
		t.Error("PredictCtx diverges from Predict")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.PredictCtx(ctx, scene.Image); err != context.Canceled {
		t.Errorf("cancelled PredictCtx err = %v", err)
	}
}
