package segment

import (
	"fmt"
	"io"
	"math/rand"

	"safeland/internal/imaging"
	"safeland/internal/nn"
	"safeland/internal/urban"
)

// TrainConfig controls the random-crop SGD training loop.
type TrainConfig struct {
	Steps    int
	Batch    int
	CropSize int // square crop side; must be even for downsampling models
	LR       float64
	// ClassWeights biases the loss toward safety-critical classes; nil uses
	// SafetyClassWeights.
	ClassWeights []float32
	Seed         int64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// LogEvery controls progress line frequency (default: Steps/10).
	LogEvery int
}

// DefaultTrainConfig returns the settings used by the experiment harness.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Steps:    800,
		Batch:    2,
		CropSize: 64,
		LR:       0.008,
		Seed:     7,
	}
}

// SafetyClassWeights up-weights the busy-road composite (and humans):
// missing a road pixel is the catastrophic failure mode of emergency
// landing, so recall on those classes is bought with extra loss weight.
func SafetyClassWeights() []float32 {
	w := make([]float32, imaging.NumClasses)
	for i := range w {
		w[i] = 1
	}
	w[imaging.Road] = 2.5
	w[imaging.StaticCar] = 2
	w[imaging.MovingCar] = 2
	w[imaging.Humans] = 2
	return w
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Steps     int
	FirstLoss float64
	FinalLoss float64 // mean of the last 10% of steps
	Losses    []float64
}

// Train fits the model on random crops drawn from the scenes. Identical
// inputs and seeds produce identical parameters.
func Train(m *Model, scenes []*urban.Scene, cfg TrainConfig) TrainStats {
	if m.Frozen() {
		panic("segment: training a frozen shared-weights clone would corrupt every replica sharing its parameters; train the source model (or a CloneDetached copy) instead")
	}
	if len(scenes) == 0 {
		panic("segment: no training scenes")
	}
	if cfg.Batch <= 0 || cfg.Steps <= 0 || cfg.CropSize <= 0 {
		panic(fmt.Sprintf("segment: invalid train config %+v", cfg))
	}
	weights := cfg.ClassWeights
	if weights == nil {
		weights = SafetyClassWeights()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR)
	logEvery := cfg.LogEvery
	if logEvery <= 0 {
		logEvery = cfg.Steps/10 + 1
	}

	stats := TrainStats{Steps: cfg.Steps, Losses: make([]float64, 0, cfg.Steps)}
	cs := cfg.CropSize
	x := nn.NewTensor(cfg.Batch, 3, cs, cs)
	targets := make([][]int, cfg.Batch)
	for i := range targets {
		targets[i] = make([]int, cs*cs)
	}

	for step := 0; step < cfg.Steps; step++ {
		for bi := 0; bi < cfg.Batch; bi++ {
			s := scenes[rng.Intn(len(scenes))]
			if s.Image.W < cs || s.Image.H < cs {
				panic(fmt.Sprintf("segment: scene %dx%d smaller than crop %d", s.Image.W, s.Image.H, cs))
			}
			x0 := rng.Intn(s.Image.W - cs + 1)
			y0 := rng.Intn(s.Image.H - cs + 1)
			flip := rng.Intn(2) == 0
			for y := 0; y < cs; y++ {
				for xx := 0; xx < cs; xx++ {
					sx := x0 + xx
					if flip {
						sx = x0 + cs - 1 - xx
					}
					p := s.Image.At(sx, y0+y)
					x.Set4(bi, 0, y, xx, p.R-0.5)
					x.Set4(bi, 1, y, xx, p.G-0.5)
					x.Set4(bi, 2, y, xx, p.B-0.5)
					targets[bi][y*cs+xx] = int(s.Labels.At(sx, y0+y))
				}
			}
		}
		logits := m.Net.Forward(x, true)
		loss, grad := nn.CrossEntropyLoss(logits, targets, weights)
		m.Net.Backward(grad)
		opt.Step(m.Net.Params())

		stats.Losses = append(stats.Losses, loss)
		if step == 0 {
			stats.FirstLoss = loss
		}
		if cfg.Log != nil && (step%logEvery == 0 || step == cfg.Steps-1) {
			fmt.Fprintf(cfg.Log, "step %4d/%d  loss %.4f\n", step, cfg.Steps, loss)
		}
	}
	tail := len(stats.Losses) / 10
	if tail == 0 {
		tail = 1
	}
	var sum float64
	for _, l := range stats.Losses[len(stats.Losses)-tail:] {
		sum += l
	}
	stats.FinalLoss = sum / float64(tail)
	return stats
}
