package segment

import (
	"fmt"
	"strings"

	"safeland/internal/imaging"
	"safeland/internal/urban"
)

// Confusion is an 8×8 pixel confusion matrix indexed [truth][predicted].
type Confusion struct {
	N [imaging.NumClasses][imaging.NumClasses]int64
}

// Add accumulates one truth/prediction pair of label maps.
func (c *Confusion) Add(truth, pred *imaging.LabelMap) {
	if truth.W != pred.W || truth.H != pred.H {
		panic(fmt.Sprintf("segment: confusion size mismatch %dx%d vs %dx%d",
			truth.W, truth.H, pred.W, pred.H))
	}
	for i, tc := range truth.Pix {
		pc := pred.Pix[i]
		if tc < imaging.NumClasses && pc < imaging.NumClasses {
			c.N[tc][pc]++
		}
	}
}

// PixelAccuracy returns the fraction of correctly classified pixels.
func (c *Confusion) PixelAccuracy() float64 {
	var correct, total int64
	for t := 0; t < imaging.NumClasses; t++ {
		for p := 0; p < imaging.NumClasses; p++ {
			total += c.N[t][p]
			if t == p {
				correct += c.N[t][p]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// IoU returns the intersection-over-union of one class; the second result is
// false when the class appears in neither truth nor prediction.
func (c *Confusion) IoU(cl imaging.Class) (float64, bool) {
	var inter, union int64
	inter = c.N[cl][cl]
	for k := 0; k < imaging.NumClasses; k++ {
		union += c.N[cl][k] + c.N[k][cl]
	}
	union -= inter
	if union == 0 {
		return 0, false
	}
	return float64(inter) / float64(union), true
}

// MeanIoU averages IoU over classes present in truth or prediction.
func (c *Confusion) MeanIoU() float64 {
	var sum float64
	n := 0
	for cl := imaging.Class(0); cl < imaging.NumClasses; cl++ {
		if iou, ok := c.IoU(cl); ok {
			sum += iou
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Recall returns TP/(TP+FN) for one class, 0 when the class is absent.
func (c *Confusion) Recall(cl imaging.Class) float64 {
	var tp, fn int64
	tp = c.N[cl][cl]
	for k := 0; k < imaging.NumClasses; k++ {
		if imaging.Class(k) != cl {
			fn += c.N[cl][k]
		}
	}
	if tp+fn == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fn)
}

// Precision returns TP/(TP+FP) for one class, 0 when never predicted.
func (c *Confusion) Precision(cl imaging.Class) float64 {
	var tp, fp int64
	tp = c.N[cl][cl]
	for k := 0; k < imaging.NumClasses; k++ {
		if imaging.Class(k) != cl {
			fp += c.N[k][cl]
		}
	}
	if tp+fp == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fp)
}

// BusyRoadRecall treats the busy-road composite (road + cars) as one binary
// class and returns its recall — the safety-critical number: a missed
// busy-road pixel is a pixel the core function would declare landable.
func (c *Confusion) BusyRoadRecall() float64 {
	busy := func(k int) bool { return imaging.Class(k).BusyRoad() }
	var tp, fn int64
	for t := 0; t < imaging.NumClasses; t++ {
		if !busy(t) {
			continue
		}
		for p := 0; p < imaging.NumClasses; p++ {
			if busy(p) {
				tp += c.N[t][p]
			} else {
				fn += c.N[t][p]
			}
		}
	}
	if tp+fn == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fn)
}

// BusyRoadPrecision is the binary precision of the busy-road composite.
func (c *Confusion) BusyRoadPrecision() float64 {
	busy := func(k int) bool { return imaging.Class(k).BusyRoad() }
	var tp, fp int64
	for t := 0; t < imaging.NumClasses; t++ {
		for p := 0; p < imaging.NumClasses; p++ {
			if !busy(p) {
				continue
			}
			if busy(t) {
				tp += c.N[t][p]
			} else {
				fp += c.N[t][p]
			}
		}
	}
	if tp+fp == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fp)
}

// String renders the headline metrics.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pixel accuracy %.3f, mean IoU %.3f, busy-road recall %.3f precision %.3f",
		c.PixelAccuracy(), c.MeanIoU(), c.BusyRoadRecall(), c.BusyRoadPrecision())
	return b.String()
}

// Evaluate runs the model over the scenes and accumulates a confusion
// matrix.
func Evaluate(m *Model, scenes []*urban.Scene) *Confusion {
	var conf Confusion
	for _, s := range scenes {
		pred := m.Predict(s.Image)
		conf.Add(s.Labels, pred)
	}
	return &conf
}
