package urban

import (
	"math"

	"safeland/internal/imaging"
)

// The population density model substitutes for the external density
// databases the SORA M1 mitigation and the dynamic-data EL literature rely
// on (average density maps, cellphone-usage data). It assigns a people/m²
// prior per semantic class, modulated by a diurnal activity curve.

// basePeoplePerM2 is the nominal daytime density of people exposed on each
// surface class. Values follow the orders of magnitude used in UAS
// ground-risk assessments for a mid-density city: sheltered building
// occupants count at a reduced exposure factor, busy roads carry vehicle
// occupants and crossing pedestrians, parks and plazas carry recreational
// foot traffic.
func basePeoplePerM2(c imaging.Class) float64 {
	switch c {
	case imaging.Road:
		return 0.015 // vehicle occupants + pedestrians crossing
	case imaging.MovingCar:
		return 0.30 // ~1.5 occupants per 5 m² vehicle footprint
	case imaging.StaticCar:
		return 0.02 // mostly empty parked vehicles
	case imaging.Building:
		return 0.008 // occupants behind structure (sheltering credited later)
	case imaging.Humans:
		return 1.0 // a person is present by construction
	case imaging.LowVegetation:
		return 0.004
	case imaging.Tree:
		return 0.001
	default: // clutter: pavement, plazas
		return 0.006
	}
}

// DiurnalFactor returns the relative activity level at the given local time
// in hours [0, 24): quiet at night, peaks at commute hours, sustained
// through the day. The curve integrates to roughly 1.0 over busy hours.
func DiurnalFactor(hour float64) float64 {
	hour = math.Mod(math.Mod(hour, 24)+24, 24)
	// Two commute peaks (8h30, 18h) on a daytime plateau.
	day := 0.15 + 0.65*gaussianBump(hour, 14, 5.5)
	peakAM := 0.5 * gaussianBump(hour, 8.5, 1.2)
	peakPM := 0.6 * gaussianBump(hour, 18, 1.5)
	v := day + peakAM + peakPM
	if v > 1.5 {
		v = 1.5
	}
	return v
}

// TrafficFactor returns the relative road traffic level at the given local
// time, sharing the diurnal shape with stronger commute peaks.
func TrafficFactor(hour float64) float64 {
	hour = math.Mod(math.Mod(hour, 24)+24, 24)
	base := 0.1 + 0.5*gaussianBump(hour, 13.5, 5)
	peakAM := 0.9 * gaussianBump(hour, 8.5, 1.1)
	peakPM := 1.0 * gaussianBump(hour, 18, 1.4)
	v := base + peakAM + peakPM
	if v > 1.6 {
		v = 1.6
	}
	return v
}

func gaussianBump(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

// ClassDensity returns the exposed population density (people/m²) on one
// surface class at the given local time.
func ClassDensity(c imaging.Class, hour float64) float64 {
	return basePeoplePerM2(c) * DiurnalFactor(hour)
}

// PopulationDensity computes a people/m² field over the labels at the given
// local time. It exercises the same code path as an authoritative external
// density map would (SORA M1-Medium: "authoritative density data relevant
// for the area and time of operation").
func PopulationDensity(labels *imaging.LabelMap, hour float64) *imaging.Map {
	f := DiurnalFactor(hour)
	out := imaging.NewMap(labels.W, labels.H)
	for i, c := range labels.Pix {
		out.Pix[i] = float32(basePeoplePerM2(c) * f)
	}
	return out
}

// MeanDensity returns the average people/m² of a scene at the given hour —
// the scalar the SORA intrinsic GRC bases its population-density column on.
func MeanDensity(labels *imaging.LabelMap, hour float64) float64 {
	return float64(PopulationDensity(labels, hour).Mean())
}
