package urban

import (
	"math/rand"

	"safeland/internal/imaging"
)

// Scene is one generated urban capture: the rendered image, its dense
// ground-truth labels, the height field, the vector layout behind them, and
// the conditions it was captured under.
type Scene struct {
	Image  *imaging.Image
	Labels *imaging.LabelMap
	Height *imaging.Map // meters above ground
	Layout *Layout
	Cond   Conditions
	// MPP is the ground sampling distance in meters per pixel.
	MPP  float64
	Seed int64
}

// GeneratorVersion identifies the scene-generation algorithm. Bump it
// whenever a change to Generate (or anything it calls — layout synthesis,
// rendering, noise) alters the output for identical inputs: the scenario
// corpus folds it into its content addresses, so stale on-disk caches are
// invalidated instead of silently serving scenes from the old algorithm.
const GeneratorVersion = 1

// Generate builds one scene from the config, conditions and seed. The same
// inputs always produce the same scene (for a fixed GeneratorVersion).
func Generate(cfg Config, cond Conditions, seed int64) *Scene {
	rng := rand.New(rand.NewSource(seed))
	lay, p := generateLayout(cfg, cond, rng)
	img := renderScene(p.labels, p.base, p.height, p.mpp, cond, seed)
	return &Scene{
		Image:  img,
		Labels: p.labels,
		Height: p.height,
		Layout: lay,
		Cond:   cond,
		MPP:    p.mpp,
		Seed:   seed,
	}
}

// GenerateSet builds n scenes with consecutive seeds starting at baseSeed.
func GenerateSet(cfg Config, cond Conditions, n int, baseSeed int64) []*Scene {
	scenes := make([]*Scene, n)
	for i := range scenes {
		scenes[i] = Generate(cfg, cond, baseSeed+int64(i))
	}
	return scenes
}

// Dataset is a train/test split of in-distribution scenes plus an
// out-of-distribution set, mirroring the paper's evaluation protocol:
// the model trains on UAVid-like data (train), assurance requirement
// Medium-1 is tested on held-out data (test), and High-2 is probed with
// data from outside the training distribution (ood).
type Dataset struct {
	Train []*Scene
	Test  []*Scene
	OOD   []*Scene
}

// BuildDataset generates nTrain+nTest in-distribution scenes (under cond)
// and nOOD scenes under oodCond, with disjoint deterministic seeds.
func BuildDataset(cfg Config, cond, oodCond Conditions, nTrain, nTest, nOOD int, baseSeed int64) *Dataset {
	return &Dataset{
		Train: GenerateSet(cfg, cond, nTrain, baseSeed),
		Test:  GenerateSet(cfg, cond, nTest, baseSeed+1_000),
		OOD:   GenerateSet(cfg, oodCond, nOOD, baseSeed+2_000),
	}
}

// AsciiRender returns a compact ASCII view of a label map (one character per
// cell, majority class per cell), for terminal-friendly qualitative output —
// the stand-in for the paper's Figure 3/4 visuals.
func AsciiRender(lm *imaging.LabelMap, cols int) string {
	if cols <= 0 || lm.W == 0 || lm.H == 0 {
		return ""
	}
	if cols > lm.W {
		cols = lm.W
	}
	cell := lm.W / cols
	rows := lm.H / cell
	if rows == 0 {
		rows = 1
	}
	glyphs := map[imaging.Class]byte{
		imaging.Clutter:       '.',
		imaging.Building:      '#',
		imaging.Road:          '=',
		imaging.StaticCar:     'c',
		imaging.Tree:          'T',
		imaging.LowVegetation: '"',
		imaging.Humans:        '!',
		imaging.MovingCar:     'C',
	}
	buf := make([]byte, 0, rows*(cols+1))
	for r := 0; r < rows; r++ {
		for cIdx := 0; cIdx < cols; cIdx++ {
			var counts [imaging.NumClasses]int
			for y := r * cell; y < (r+1)*cell && y < lm.H; y++ {
				for x := cIdx * cell; x < (cIdx+1)*cell && x < lm.W; x++ {
					counts[lm.At(x, y)]++
				}
			}
			bestClass, bestCount := imaging.Clutter, -1
			for cl := imaging.Class(0); cl < imaging.NumClasses; cl++ {
				// Rare thin classes (cars, humans) win ties so they stay
				// visible at coarse scale.
				w := counts[cl]
				if cl == imaging.MovingCar || cl == imaging.StaticCar || cl == imaging.Humans {
					w *= 4
				}
				if w > bestCount {
					bestCount = w
					bestClass = cl
				}
			}
			buf = append(buf, glyphs[bestClass])
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
