package urban

import (
	"math"
	"math/rand"

	"safeland/internal/imaging"
)

func sqrt64(v float64) float64 { return math.Sqrt(v) }
func exp64(v float64) float64  { return math.Exp(v) }

// textureParams returns per-class procedural texture amplitude and feature
// frequency (features per meter).
func textureParams(c imaging.Class) (amp float32, freq float64, octaves int) {
	switch c {
	case imaging.Road:
		return 0.10, 1.4, 2
	case imaging.Building:
		return 0.16, 0.35, 3
	case imaging.Tree:
		return 0.34, 0.9, 3
	case imaging.LowVegetation:
		return 0.26, 0.6, 3
	case imaging.StaticCar, imaging.MovingCar:
		return 0.08, 2.0, 1
	case imaging.Humans:
		return 0.05, 3.0, 1
	default: // clutter: pavement, soil
		return 0.14, 0.5, 3
	}
}

// renderScene converts the painted base rasters into a final RGB image under
// the given capture conditions: procedural per-class texture, cast shadows
// from the height field, lighting transform, haze/fog and sensor noise.
func renderScene(labels *imaging.LabelMap, base *imaging.Image, height *imaging.Map,
	mpp float64, cond Conditions, seed int64) *imaging.Image {

	w, h := labels.W, labels.H
	out := imaging.NewImage(w, h)
	tex := imaging.NewNoise(seed ^ 0x7ea7)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	lp := cond.Lighting.params()

	shadowLen := 0
	if lp.shadowLenPx > 0 {
		shadowLen = int(float64(lp.shadowLenPx) * 0.5 / mpp)
		if shadowLen < 1 {
			shadowLen = 1
		}
	}
	// Shadow slope: a neighbor at horizontal distance d (meters) casts a
	// shadow here when it is taller than d·slope above this pixel.
	shadowSlope := 1.8
	if cond.Lighting == Sunset {
		shadowSlope = 0.45
	}

	fogColor := imaging.RGB{R: 0.84, G: 0.85, B: 0.88}
	mid := imaging.RGB{R: 0.45, G: 0.45, B: 0.45}

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := base.At(x, y)
			cls := labels.At(x, y)

			// Procedural texture modulates the base albedo.
			amp, freq, oct := textureParams(cls)
			n := tex.FBM(float64(x)*mpp, float64(y)*mpp, freq, oct)
			c = c.Scale(1 + amp*(2*n-1))

			// Cast shadows: walk toward the sun and look for taller
			// occluders.
			if shadowLen > 0 && lp.shadowStrength > 0 {
				hHere := float64(height.At(x, y))
				for k := 1; k <= shadowLen; k++ {
					sx, sy := x+lp.shadowDirX*k, y+lp.shadowDirY*k
					if sx < 0 || sy < 0 || sx >= w || sy >= h {
						break
					}
					if float64(height.At(sx, sy))-hHere > float64(k)*mpp*shadowSlope {
						c = c.Scale(1 - lp.shadowStrength)
						break
					}
				}
			}

			// Lighting transform.
			if lp.desaturate > 0 {
				l := c.Luma()
				c = c.Lerp(imaging.RGB{R: l, G: l, B: l}, lp.desaturate)
			}
			if lp.flatten > 0 {
				c = c.Lerp(mid, lp.flatten)
			}
			c = imaging.RGB{R: c.R * lp.tint.R, G: c.G * lp.tint.G, B: c.B * lp.tint.B}.Scale(lp.gain)
			if lp.hazeAmount > 0 {
				c = c.Lerp(lp.haze, lp.hazeAmount)
			}
			if cond.FogDensity > 0 {
				c = c.Lerp(fogColor, float32(cond.FogDensity))
			}

			// Sensor noise.
			if cond.SensorNoise > 0 {
				s := float32(cond.SensorNoise)
				c.R += float32(rng.NormFloat64()) * s
				c.G += float32(rng.NormFloat64()) * s
				c.B += float32(rng.NormFloat64()) * s
			}
			out.Set(x, y, c.Clamp())
		}
	}
	return out
}
