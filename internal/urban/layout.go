package urban

import (
	"math/rand"

	"safeland/internal/imaging"
)

// Config controls the procedural layout generator. All distances are meters.
type Config struct {
	// W, H are the rendered scene dimensions in pixels.
	W, H int

	// RoadSpacingMin/Max bound the distance between parallel roads.
	RoadSpacingMin, RoadSpacingMax float64
	// RoadWidthMin/Max bound road widths.
	RoadWidthMin, RoadWidthMax float64

	// Block type probabilities; the remainder becomes building blocks.
	ParkProb, PlazaProb, ParkingProb float64

	// MovingCarsPer100M is the linear traffic density on roads.
	MovingCarsPer100M float64
	// ParkedCarsPer100M is the linear density of cars parked on road edges.
	ParkedCarsPer100M float64
	// HumansPerBlockMax caps pedestrians per plaza/park block.
	HumansPerBlockMax int

	// PondProb is the chance a park contains a pond (labeled clutter,
	// recorded in the layout for the static risk-map baseline).
	PondProb float64
	// PowerLineProb is the chance a road carries an overhead power line
	// (metadata only; sub-pixel at our ground sampling distance).
	PowerLineProb float64
}

// DefaultConfig returns generator settings producing scenes with the class
// balance of a mid-density European city: connected road grid, 50-70%
// built-up blocks, parks and plazas.
func DefaultConfig() Config {
	return Config{
		W: 192, H: 192,
		RoadSpacingMin: 40, RoadSpacingMax: 78,
		RoadWidthMin: 7, RoadWidthMax: 13,
		ParkProb: 0.22, PlazaProb: 0.10, ParkingProb: 0.12,
		MovingCarsPer100M: 2.2,
		ParkedCarsPer100M: 1.6,
		HumansPerBlockMax: 6,
		PondProb:          0.25,
		PowerLineProb:     0.35,
	}
}

// RectM is an axis-aligned rectangle in world meters.
type RectM struct {
	X0, Y0, X1, Y1 float64
}

// CenterX returns the x coordinate of the rectangle center.
func (r RectM) CenterX() float64 { return (r.X0 + r.X1) / 2 }

// CenterY returns the y coordinate of the rectangle center.
func (r RectM) CenterY() float64 { return (r.Y0 + r.Y1) / 2 }

// RoadM is a road strip with its orientation.
type RoadM struct {
	Rect       RectM
	Horizontal bool
}

// BuildingM is a building footprint with roof height.
type BuildingM struct {
	Rect    RectM
	HeightM float64
}

// CircleM is a disk in world meters.
type CircleM struct {
	X, Y, R float64
}

// CarM records a vehicle position for layout consumers.
type CarM struct {
	X, Y   float64
	Moving bool
}

// Layout is the vector world model behind a rendered scene. Database-driven
// landing-zone baselines (Bleier-style static risk maps) consume this instead
// of imagery, mirroring how the real systems consume GIS data.
type Layout struct {
	WorldW, WorldH float64 // meters
	Roads          []RoadM
	Buildings      []BuildingM
	Parks          []RectM
	Plazas         []RectM
	ParkingLots    []RectM
	Ponds          []CircleM
	PowerLines     [][4]float64 // x0, y0, x1, y1 segments in meters
	Cars           []CarM
	HumanCount     int
}

// painter accumulates the label, base-color and height rasters while the
// layout is generated.
type painter struct {
	labels *imaging.LabelMap
	base   *imaging.Image
	height *imaging.Map
	mpp    float64
}

func (p *painter) px(m float64) int { return int(m / p.mpp) }

func (p *painter) paintRect(r RectM, c imaging.Class, col imaging.RGB, h float64) {
	x0, y0 := p.px(r.X0), p.px(r.Y0)
	x1, y1 := p.px(r.X1), p.px(r.Y1)
	p.labels.FillRect(x0, y0, x1, y1, c)
	p.height.FillRect(x0, y0, x1, y1, float32(h))
	for y := max(0, y0); y < min(p.base.H, y1); y++ {
		for x := max(0, x0); x < min(p.base.W, x1); x++ {
			p.base.Set(x, y, col)
		}
	}
}

func (p *painter) paintDisk(cx, cy, r float64, c imaging.Class, col imaging.RGB, h float64) {
	pcx, pcy, pr := p.px(cx), p.px(cy), p.px(r)
	if pr < 1 {
		pr = 1
	}
	p.labels.FillDisk(pcx, pcy, pr, c)
	p.height.FillDisk(pcx, pcy, pr, float32(h))
	r2 := pr * pr
	for y := pcy - pr; y <= pcy+pr; y++ {
		for x := pcx - pr; x <= pcx+pr; x++ {
			dx, dy := x-pcx, y-pcy
			if dx*dx+dy*dy <= r2 && p.base.In(x, y) {
				p.base.Set(x, y, col)
			}
		}
	}
}

// generateLayout builds the vector layout and paints the rasters.
func generateLayout(cfg Config, cond Conditions, rng *rand.Rand) (*Layout, *painter) {
	mpp := GroundSamplingDistance(cond.AltitudeM)
	worldW := float64(cfg.W) * mpp
	worldH := float64(cfg.H) * mpp
	lay := &Layout{WorldW: worldW, WorldH: worldH}
	p := &painter{
		labels: imaging.NewLabelMap(cfg.W, cfg.H),
		base:   imaging.NewImage(cfg.W, cfg.H),
		height: imaging.NewMap(cfg.W, cfg.H),
		mpp:    mpp,
	}

	// Terrain base: pavement/soil clutter.
	groundCol := imaging.RGB{R: 0.52, G: 0.50, B: 0.47}
	p.paintRect(RectM{0, 0, worldW, worldH}, imaging.Clutter, groundCol, 0)

	// Road grid: cut positions along each axis.
	vxs := cutPositions(worldW, cfg, rng) // x centers of vertical roads
	hys := cutPositions(worldH, cfg, rng) // y centers of horizontal roads
	roadCol := imaging.RGB{R: 0.21, G: 0.21, B: 0.22}
	vWidths := make([]float64, len(vxs))
	hWidths := make([]float64, len(hys))
	for i, x := range vxs {
		w := cfg.RoadWidthMin + rng.Float64()*(cfg.RoadWidthMax-cfg.RoadWidthMin)
		vWidths[i] = w
		r := RectM{x - w/2, 0, x + w/2, worldH}
		lay.Roads = append(lay.Roads, RoadM{Rect: r, Horizontal: false})
		p.paintRect(r, imaging.Road, roadCol, 0)
		if rng.Float64() < cfg.PowerLineProb {
			lay.PowerLines = append(lay.PowerLines, [4]float64{x + w/2 + 1, 0, x + w/2 + 1, worldH})
		}
	}
	for i, y := range hys {
		w := cfg.RoadWidthMin + rng.Float64()*(cfg.RoadWidthMax-cfg.RoadWidthMin)
		hWidths[i] = w
		r := RectM{0, y - w/2, worldW, y + w/2}
		lay.Roads = append(lay.Roads, RoadM{Rect: r, Horizontal: true})
		p.paintRect(r, imaging.Road, roadCol, 0)
		if rng.Float64() < cfg.PowerLineProb {
			lay.PowerLines = append(lay.PowerLines, [4]float64{0, y + w/2 + 1, worldW, y + w/2 + 1})
		}
	}

	// Lane markings (base color only; labels stay Road).
	markCol := imaging.RGB{R: 0.72, G: 0.72, B: 0.66}
	for _, x := range vxs {
		for my := 0.0; my < worldH; my += 6 {
			p.paintDashV(x, my, my+2.5, markCol)
		}
	}
	for _, y := range hys {
		for mx := 0.0; mx < worldW; mx += 6 {
			p.paintDashH(y, mx, mx+2.5, markCol)
		}
	}

	// Blocks between roads.
	xsEdges := blockEdges(vxs, vWidths, worldW)
	ysEdges := blockEdges(hys, hWidths, worldH)
	for bi := 0; bi+1 < len(ysEdges); bi += 2 {
		for bj := 0; bj+1 < len(xsEdges); bj += 2 {
			block := RectM{xsEdges[bj], ysEdges[bi], xsEdges[bj+1], ysEdges[bi+1]}
			if block.X1-block.X0 < 8 || block.Y1-block.Y0 < 8 {
				continue
			}
			// Sidewalk margin: shrink the usable block.
			inner := RectM{block.X0 + 2.5, block.Y0 + 2.5, block.X1 - 2.5, block.Y1 - 2.5}
			r := rng.Float64()
			switch {
			case r < cfg.ParkProb:
				fillPark(lay, p, cfg, cond, inner, rng)
			case r < cfg.ParkProb+cfg.PlazaProb:
				fillPlaza(lay, p, cfg, inner, rng)
			case r < cfg.ParkProb+cfg.PlazaProb+cfg.ParkingProb:
				fillParking(lay, p, inner, rng)
			default:
				fillBuildings(lay, p, inner, rng)
			}
		}
	}

	// Traffic scaled by time of day.
	traffic := TrafficFactor(cond.TimeOfDay)
	for ri, x := range vxs {
		placeCarsVertical(lay, p, x, vWidths[ri], worldH, cfg, traffic, rng)
	}
	for ri, y := range hys {
		placeCarsHorizontal(lay, p, y, hWidths[ri], worldW, cfg, traffic, rng)
	}

	return lay, p
}

// cutPositions places parallel road centerlines along an axis of the given
// length.
func cutPositions(length float64, cfg Config, rng *rand.Rand) []float64 {
	var xs []float64
	x := cfg.RoadSpacingMin/2 + rng.Float64()*cfg.RoadSpacingMin
	for x < length {
		xs = append(xs, x)
		x += cfg.RoadSpacingMin + rng.Float64()*(cfg.RoadSpacingMax-cfg.RoadSpacingMin)
	}
	return xs
}

// blockEdges converts road centerlines+widths into alternating block
// start/end coordinates: [blockStart, blockEnd, blockStart, ...].
func blockEdges(centers, widths []float64, length float64) []float64 {
	edges := []float64{0}
	for i, c := range centers {
		edges = append(edges, c-widths[i]/2, c+widths[i]/2)
	}
	edges = append(edges, length)
	return edges
}

func (p *painter) paintDashV(x, y0, y1 float64, col imaging.RGB) {
	px := p.px(x)
	for y := p.px(y0); y <= p.px(y1); y++ {
		if p.base.In(px, y) && p.labels.At(px, y) == imaging.Road {
			p.base.Set(px, y, col)
		}
	}
}

func (p *painter) paintDashH(y, x0, x1 float64, col imaging.RGB) {
	py := p.px(y)
	for x := p.px(x0); x <= p.px(x1); x++ {
		if p.base.In(x, py) && p.labels.At(x, py) == imaging.Road {
			p.base.Set(x, py, col)
		}
	}
}

func vegetationColor(season Season, rng *rand.Rand) imaging.RGB {
	base := imaging.RGB{R: 0.28, G: 0.46, B: 0.16}
	switch season {
	case Autumn:
		base = imaging.RGB{R: 0.52, G: 0.38, B: 0.12}
	case Winter:
		base = imaging.RGB{R: 0.42, G: 0.40, B: 0.34}
	}
	j := float32(rng.Float64()*0.08 - 0.04)
	return imaging.RGB{R: base.R + j, G: base.G + j, B: base.B + j}.Clamp()
}

func treeColor(season Season, rng *rand.Rand) imaging.RGB {
	base := imaging.RGB{R: 0.10, G: 0.30, B: 0.08}
	switch season {
	case Autumn:
		base = imaging.RGB{R: 0.40, G: 0.26, B: 0.08}
	case Winter:
		base = imaging.RGB{R: 0.25, G: 0.22, B: 0.18}
	}
	j := float32(rng.Float64()*0.06 - 0.03)
	return imaging.RGB{R: base.R + j, G: base.G + j, B: base.B + j}.Clamp()
}

func fillPark(lay *Layout, p *painter, cfg Config, cond Conditions, r RectM, rng *rand.Rand) {
	lay.Parks = append(lay.Parks, r)
	p.paintRect(r, imaging.LowVegetation, vegetationColor(cond.Season, rng), 0.3)
	// Pond.
	if rng.Float64() < cfg.PondProb && r.X1-r.X0 > 16 && r.Y1-r.Y0 > 16 {
		pr := 3 + rng.Float64()*4
		cx := r.X0 + pr + rng.Float64()*(r.X1-r.X0-2*pr)
		cy := r.Y0 + pr + rng.Float64()*(r.Y1-r.Y0-2*pr)
		lay.Ponds = append(lay.Ponds, CircleM{cx, cy, pr})
		p.paintDisk(cx, cy, pr, imaging.Clutter, imaging.RGB{R: 0.13, G: 0.28, B: 0.42}, 0)
	}
	// Trees.
	area := (r.X1 - r.X0) * (r.Y1 - r.Y0)
	nTrees := int(area/120) + rng.Intn(4)
	for i := 0; i < nTrees; i++ {
		tr := 2 + rng.Float64()*3.5
		cx := r.X0 + tr + rng.Float64()*max64(r.X1-r.X0-2*tr, 1)
		cy := r.Y0 + tr + rng.Float64()*max64(r.Y1-r.Y0-2*tr, 1)
		p.paintDisk(cx, cy, tr, imaging.Tree, treeColor(cond.Season, rng), 5+rng.Float64()*7)
	}
	placeHumans(lay, p, cfg, r, rng, rng.Intn(cfg.HumansPerBlockMax+1))
}

func fillPlaza(lay *Layout, p *painter, cfg Config, r RectM, rng *rand.Rand) {
	lay.Plazas = append(lay.Plazas, r)
	col := imaging.RGB{R: 0.60, G: 0.57, B: 0.52}
	p.paintRect(r, imaging.Clutter, col, 0)
	placeHumans(lay, p, cfg, r, rng, 1+rng.Intn(cfg.HumansPerBlockMax+1))
}

func fillParking(lay *Layout, p *painter, r RectM, rng *rand.Rand) {
	lay.ParkingLots = append(lay.ParkingLots, r)
	p.paintRect(r, imaging.Clutter, imaging.RGB{R: 0.30, G: 0.30, B: 0.31}, 0)
	// Rows of parked cars.
	for y := r.Y0 + 3; y+5 < r.Y1; y += 8 {
		for x := r.X0 + 2; x+2.5 < r.X1; x += 3.5 {
			if rng.Float64() < 0.55 {
				paintCar(lay, p, x+1.1, y+2.2, false, false, rng)
			}
		}
	}
}

func fillBuildings(lay *Layout, p *painter, r RectM, rng *rand.Rand) {
	w, h := r.X1-r.X0, r.Y1-r.Y0
	nx, ny := 1, 1
	if w > 30 {
		nx = 2
	}
	if h > 30 {
		ny = 2
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			cellW, cellH := w/float64(nx), h/float64(ny)
			bx0 := r.X0 + float64(i)*cellW + 1.5 + rng.Float64()*2
			by0 := r.Y0 + float64(j)*cellH + 1.5 + rng.Float64()*2
			bx1 := r.X0 + float64(i+1)*cellW - 1.5 - rng.Float64()*2
			by1 := r.Y0 + float64(j)*cellH + cellH - 1.5 - rng.Float64()*2
			if bx1-bx0 < 5 || by1-by0 < 5 {
				continue
			}
			if rng.Float64() < 0.12 { // vacant lot
				continue
			}
			height := 9 + rng.Float64()*28
			b := BuildingM{Rect: RectM{bx0, by0, bx1, by1}, HeightM: height}
			lay.Buildings = append(lay.Buildings, b)
			p.paintRect(b.Rect, imaging.Building, roofColor(rng), height)
		}
	}
}

func roofColor(rng *rand.Rand) imaging.RGB {
	palette := []imaging.RGB{
		{R: 0.46, G: 0.21, B: 0.15}, // brick
		{R: 0.40, G: 0.40, B: 0.42}, // slate
		{R: 0.55, G: 0.46, B: 0.31}, // tan
		{R: 0.30, G: 0.31, B: 0.34}, // dark bitumen
		{R: 0.36, G: 0.41, B: 0.36}, // weathered copper
	}
	c := palette[rng.Intn(len(palette))]
	j := float32(rng.Float64()*0.08 - 0.04)
	return imaging.RGB{R: c.R + j, G: c.G + j, B: c.B + j}.Clamp()
}

func carColor(rng *rand.Rand) imaging.RGB {
	palette := []imaging.RGB{
		{R: 0.75, G: 0.10, B: 0.10}, // red
		{R: 0.12, G: 0.25, B: 0.70}, // blue
		{R: 0.88, G: 0.88, B: 0.90}, // white
		{R: 0.08, G: 0.08, B: 0.09}, // black
		{R: 0.65, G: 0.66, B: 0.70}, // silver
		{R: 0.80, G: 0.68, B: 0.10}, // yellow
	}
	return palette[rng.Intn(len(palette))]
}

// paintCar paints a ~2×4.5 m vehicle. vertical selects the long-axis
// orientation; moving selects the MovingCar vs StaticCar label.
func paintCar(lay *Layout, p *painter, cx, cy float64, vertical, moving bool, rng *rand.Rand) {
	halfL, halfW := 2.25, 1.0
	if !vertical {
		halfL, halfW = halfW, halfL
	}
	class := imaging.StaticCar
	if moving {
		class = imaging.MovingCar
	}
	r := RectM{cx - halfW, cy - halfL, cx + halfW, cy + halfL}
	p.paintRect(r, class, carColor(rng), 1.5)
	lay.Cars = append(lay.Cars, CarM{X: cx, Y: cy, Moving: moving})
}

func placeCarsVertical(lay *Layout, p *painter, roadX, roadW, worldH float64, cfg Config, traffic float64, rng *rand.Rand) {
	nMoving := poissonish(cfg.MovingCarsPer100M*traffic*worldH/100, rng)
	for i := 0; i < nMoving; i++ {
		lane := roadX - roadW/4
		if rng.Intn(2) == 0 {
			lane = roadX + roadW/4
		}
		paintCar(lay, p, lane, rng.Float64()*worldH, true, true, rng)
	}
	nParked := poissonish(cfg.ParkedCarsPer100M*worldH/100, rng)
	for i := 0; i < nParked; i++ {
		side := roadX - roadW/2 + 1.1
		if rng.Intn(2) == 0 {
			side = roadX + roadW/2 - 1.1
		}
		paintCar(lay, p, side, rng.Float64()*worldH, true, false, rng)
	}
}

func placeCarsHorizontal(lay *Layout, p *painter, roadY, roadW, worldW float64, cfg Config, traffic float64, rng *rand.Rand) {
	nMoving := poissonish(cfg.MovingCarsPer100M*traffic*worldW/100, rng)
	for i := 0; i < nMoving; i++ {
		lane := roadY - roadW/4
		if rng.Intn(2) == 0 {
			lane = roadY + roadW/4
		}
		paintCar(lay, p, rng.Float64()*worldW, lane, false, true, rng)
	}
	nParked := poissonish(cfg.ParkedCarsPer100M*worldW/100, rng)
	for i := 0; i < nParked; i++ {
		side := roadY - roadW/2 + 1.1
		if rng.Intn(2) == 0 {
			side = roadY + roadW/2 - 1.1
		}
		paintCar(lay, p, rng.Float64()*worldW, side, false, false, rng)
	}
}

func placeHumans(lay *Layout, p *painter, cfg Config, r RectM, rng *rand.Rand, n int) {
	clothing := []imaging.RGB{
		{R: 0.85, G: 0.30, B: 0.25}, {R: 0.25, G: 0.35, B: 0.75},
		{R: 0.85, G: 0.80, B: 0.70}, {R: 0.20, G: 0.20, B: 0.22},
	}
	for i := 0; i < n; i++ {
		cx := r.X0 + rng.Float64()*(r.X1-r.X0)
		cy := r.Y0 + rng.Float64()*(r.Y1-r.Y0)
		p.paintDisk(cx, cy, 0.45, imaging.Humans, clothing[rng.Intn(len(clothing))], 1.7)
		lay.HumanCount++
	}
}

// poissonish draws an integer with the given mean using a simple
// Knuth-style sampler, falling back to rounding for large means.
func poissonish(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		return int(mean + rng.NormFloat64()*sqrt64(mean) + 0.5)
	}
	l := exp64(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
