// Package urban procedurally generates labeled urban aerial scenes: road
// networks, buildings, parks, vehicles and pedestrians, rendered to RGB
// images with dense 8-class UAVid-style ground truth, a height field and a
// population density model.
//
// It substitutes for the UAVid dataset used by the paper: it provides
// in-distribution imagery to train the segmentation model on, and controlled
// out-of-distribution variants (sunset lighting, altitude change, fog) that
// reproduce the paper's Figure 4b distribution-shift experiment with exact
// pixel ground truth.
package urban

import "safeland/internal/imaging"

// Lighting selects the global illumination model of a rendered scene.
type Lighting int

// Lighting conditions. Day is the in-distribution default; Sunset is the
// paper's Figure 4b out-of-distribution condition ("taken at sunset,
// involving complex lighting conditions").
const (
	Day Lighting = iota
	Sunset
	Overcast
	Night
)

// String returns the lowercase name of the lighting condition.
func (l Lighting) String() string {
	switch l {
	case Day:
		return "day"
	case Sunset:
		return "sunset"
	case Overcast:
		return "overcast"
	case Night:
		return "night"
	default:
		return "lighting(?)"
	}
}

// Season selects the vegetation appearance of a rendered scene.
type Season int

// Seasons. Summer is the in-distribution default.
const (
	Summer Season = iota
	Autumn
	Winter
)

// String returns the lowercase name of the season.
func (s Season) String() string {
	switch s {
	case Summer:
		return "summer"
	case Autumn:
		return "autumn"
	case Winter:
		return "winter"
	default:
		return "season(?)"
	}
}

// Conditions describes the external conditions a scene is captured under.
// Table III requires EL to be "effective under the conditions of the
// operation (specific city, flight altitude, time of the day, season)";
// Conditions parameterizes exactly those axes.
type Conditions struct {
	Lighting Lighting
	Season   Season
	// FogDensity in [0, 1] blends the image toward haze.
	FogDensity float64
	// SensorNoise is the std of additive Gaussian pixel noise.
	SensorNoise float64
	// AltitudeM is the capture altitude in meters; it determines the ground
	// sampling distance together with the camera model.
	AltitudeM float64
	// TimeOfDay in hours [0, 24) drives traffic and population density.
	TimeOfDay float64
}

// DefaultConditions returns the nominal in-distribution capture conditions:
// daytime summer at the MEDI DELIVERY cruise altitude of 120 m.
func DefaultConditions() Conditions {
	return Conditions{
		Lighting:    Day,
		Season:      Summer,
		FogDensity:  0,
		SensorNoise: 0.015,
		AltitudeM:   120,
		TimeOfDay:   14,
	}
}

// SunsetConditions returns the paper's out-of-distribution condition of
// Figure 4b: sunset lighting at a different (higher) altitude.
func SunsetConditions() Conditions {
	c := DefaultConditions()
	c.Lighting = Sunset
	c.AltitudeM = 170
	c.TimeOfDay = 20.5
	c.SensorNoise = 0.03
	return c
}

// GroundSamplingDistance returns the meters-per-pixel of a nadir camera with
// the reference focal configuration at the given altitude. At 120 m the GSD
// is 0.5 m/px, scaling linearly with altitude.
func GroundSamplingDistance(altitudeM float64) float64 {
	const refAltitude, refGSD = 120.0, 0.5
	if altitudeM <= 0 {
		return refGSD
	}
	return refGSD * altitudeM / refAltitude
}

// lightingParams holds the render-time transform of a lighting condition.
type lightingParams struct {
	tint           imaging.RGB
	gain           float32
	desaturate     float32 // 0 = none, 1 = grayscale
	flatten        float32 // contrast reduction toward mid-gray
	haze           imaging.RGB
	hazeAmount     float32
	shadowStrength float32
	shadowLenPx    int // max shadow length at 0.5 m/px GSD
	shadowDirX     int
	shadowDirY     int
}

func (l Lighting) params() lightingParams {
	switch l {
	case Sunset:
		return lightingParams{
			tint:           imaging.RGB{R: 1.20, G: 0.78, B: 0.52},
			gain:           0.62,
			desaturate:     0.10,
			flatten:        0.30,
			haze:           imaging.RGB{R: 0.95, G: 0.55, B: 0.30},
			hazeAmount:     0.22,
			shadowStrength: 0.55,
			shadowLenPx:    24,
			shadowDirX:     1,
			shadowDirY:     1,
		}
	case Overcast:
		return lightingParams{
			tint:       imaging.RGB{R: 0.92, G: 0.96, B: 1.02},
			gain:       0.80,
			desaturate: 0.35,
			flatten:    0.20,
			haze:       imaging.RGB{R: 0.8, G: 0.8, B: 0.85},
			hazeAmount: 0.10,
			// diffuse light: no cast shadows
		}
	case Night:
		return lightingParams{
			tint:           imaging.RGB{R: 0.55, G: 0.62, B: 0.95},
			gain:           0.22,
			desaturate:     0.45,
			flatten:        0.15,
			shadowStrength: 0.2,
			shadowLenPx:    4,
			shadowDirX:     1,
			shadowDirY:     0,
		}
	default: // Day
		return lightingParams{
			tint:           imaging.RGB{R: 1.02, G: 1.0, B: 0.96},
			gain:           1.0,
			shadowStrength: 0.28,
			shadowLenPx:    6,
			shadowDirX:     1,
			shadowDirY:     1,
		}
	}
}
