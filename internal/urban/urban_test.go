package urban

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"safeland/internal/imaging"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 96, 96
	a := Generate(cfg, DefaultConditions(), 42)
	b := Generate(cfg, DefaultConditions(), 42)
	for i := range a.Labels.Pix {
		if a.Labels.Pix[i] != b.Labels.Pix[i] {
			t.Fatalf("labels differ at %d for identical seeds", i)
		}
	}
	for i := range a.Image.Pix {
		if a.Image.Pix[i] != b.Image.Pix[i] {
			t.Fatalf("pixels differ at %d for identical seeds", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 96, 96
	a := Generate(cfg, DefaultConditions(), 1)
	b := Generate(cfg, DefaultConditions(), 2)
	same := 0
	for i := range a.Labels.Pix {
		if a.Labels.Pix[i] == b.Labels.Pix[i] {
			same++
		}
	}
	if same == len(a.Labels.Pix) {
		t.Fatal("different seeds produced identical label maps")
	}
}

func TestSceneHasExpectedClassMix(t *testing.T) {
	cfg := DefaultConfig()
	scene := Generate(cfg, DefaultConditions(), 7)
	fr := scene.Labels.Fractions()

	if fr[imaging.Road] < 0.05 || fr[imaging.Road] > 0.6 {
		t.Errorf("road fraction %v outside plausible urban range", fr[imaging.Road])
	}
	if fr[imaging.Building] == 0 {
		t.Error("no buildings generated")
	}
	// A landable surface must exist somewhere.
	if fr[imaging.LowVegetation]+fr[imaging.Clutter] < 0.05 {
		t.Error("no landable surface (vegetation/clutter) in scene")
	}
	// Multiple seeds must consistently contain roads and cars overall.
	var roads, cars int
	for seed := int64(0); seed < 8; seed++ {
		s := Generate(cfg, DefaultConditions(), 100+seed)
		c := s.Labels.Counts()
		roads += c[imaging.Road]
		cars += c[imaging.MovingCar] + c[imaging.StaticCar]
	}
	if roads == 0 || cars == 0 {
		t.Errorf("across seeds: roads=%d cars=%d, want both > 0", roads, cars)
	}
}

func TestSceneGeometryConsistency(t *testing.T) {
	cfg := DefaultConfig()
	scene := Generate(cfg, DefaultConditions(), 11)
	// Layout buildings must coincide with Building-labeled pixels at their
	// centers.
	for _, b := range scene.Layout.Buildings {
		x := int(b.Rect.CenterX() / scene.MPP)
		y := int(b.Rect.CenterY() / scene.MPP)
		if !scene.Labels.In(x, y) {
			continue
		}
		if scene.Labels.At(x, y) != imaging.Building {
			t.Errorf("building center (%d,%d) labeled %v", x, y, scene.Labels.At(x, y))
		}
		if scene.Height.At(x, y) <= 0 {
			t.Errorf("building center (%d,%d) has zero height", x, y)
		}
	}
	// Roads lie at ground level.
	for _, r := range scene.Layout.Roads {
		x := int(r.Rect.CenterX() / scene.MPP)
		y := int(r.Rect.CenterY() / scene.MPP)
		if !scene.Labels.In(x, y) {
			continue
		}
		if h := scene.Height.At(x, y); h > 2 {
			t.Errorf("road center height = %v, want ground level", h)
		}
	}
}

func TestGSDScalesWithAltitude(t *testing.T) {
	if got := GroundSamplingDistance(120); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("GSD(120) = %v, want 0.5", got)
	}
	if got := GroundSamplingDistance(240); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("GSD(240) = %v, want 1.0", got)
	}
	if got := GroundSamplingDistance(0); got != 0.5 {
		t.Errorf("GSD(0) = %v, want fallback 0.5", got)
	}
	cfg := DefaultConfig()
	low := Generate(cfg, DefaultConditions(), 3)
	highCond := DefaultConditions()
	highCond.AltitudeM = 240
	high := Generate(cfg, highCond, 3)
	if high.MPP <= low.MPP {
		t.Errorf("MPP at 240 m (%v) not larger than at 120 m (%v)", high.MPP, low.MPP)
	}
	if high.Layout.WorldW <= low.Layout.WorldW {
		t.Error("higher altitude should cover a wider world extent")
	}
}

func TestSunsetShiftsColorDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 128, 128
	day := Generate(cfg, DefaultConditions(), 5)
	cond := SunsetConditions()
	cond.AltitudeM = 120 // isolate the lighting axis
	sun := Generate(cfg, cond, 5)

	meanChannel := func(im *imaging.Image) (r, g, b float64) {
		for _, p := range im.Pix {
			r += float64(p.R)
			g += float64(p.G)
			b += float64(p.B)
		}
		n := float64(len(im.Pix))
		return r / n, g / n, b / n
	}
	dr, dg, db := meanChannel(day.Image)
	sr, sg, sb := meanChannel(sun.Image)
	// Sunset: darker overall, with red/blue ratio strongly increased.
	if sr+sg+sb >= dr+dg+db {
		t.Errorf("sunset not darker: day sum %v, sunset sum %v", dr+dg+db, sr+sg+sb)
	}
	if sr/sb <= dr/db {
		t.Errorf("sunset red/blue ratio %v not above day %v", sr/sb, dr/db)
	}
}

func TestLightingStrings(t *testing.T) {
	tests := []struct {
		fmtr interface{ String() string }
		want string
	}{
		{Day, "day"}, {Sunset, "sunset"}, {Overcast, "overcast"}, {Night, "night"},
		{Summer, "summer"}, {Autumn, "autumn"}, {Winter, "winter"},
	}
	for _, tt := range tests {
		if got := tt.fmtr.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestBuildDatasetSplits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 64, 64
	ds := BuildDataset(cfg, DefaultConditions(), SunsetConditions(), 3, 2, 2, 50)
	if len(ds.Train) != 3 || len(ds.Test) != 2 || len(ds.OOD) != 2 {
		t.Fatalf("split sizes = %d/%d/%d", len(ds.Train), len(ds.Test), len(ds.OOD))
	}
	seeds := map[int64]bool{}
	for _, s := range append(append(append([]*Scene{}, ds.Train...), ds.Test...), ds.OOD...) {
		if seeds[s.Seed] {
			t.Fatalf("duplicate seed %d across splits", s.Seed)
		}
		seeds[s.Seed] = true
	}
	for _, s := range ds.OOD {
		if s.Cond.Lighting != Sunset {
			t.Error("OOD scene not under sunset conditions")
		}
	}
}

func TestDiurnalFactors(t *testing.T) {
	if DiurnalFactor(3) >= DiurnalFactor(14) {
		t.Error("3am activity should be below 2pm")
	}
	if TrafficFactor(18) <= TrafficFactor(3) {
		t.Error("evening rush traffic should exceed 3am")
	}
	property := func(h float64) bool {
		d, tr := DiurnalFactor(h), TrafficFactor(h)
		return d >= 0 && d <= 1.5 && tr >= 0 && tr <= 1.6
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Periodicity.
	if math.Abs(DiurnalFactor(14)-DiurnalFactor(14+24)) > 1e-9 {
		t.Error("DiurnalFactor not 24h periodic")
	}
	if math.Abs(TrafficFactor(-6)-TrafficFactor(18)) > 1e-9 {
		t.Error("TrafficFactor not periodic for negative hours")
	}
}

func TestPopulationDensity(t *testing.T) {
	lm := imaging.NewLabelMap(10, 10)
	lm.FillRect(0, 0, 5, 10, imaging.Road)
	lm.FillRect(5, 0, 10, 10, imaging.Tree)
	noon := PopulationDensity(lm, 12)
	night := PopulationDensity(lm, 3)
	if noon.At(0, 0) <= noon.At(7, 0) {
		t.Error("road density should exceed tree density")
	}
	if noon.At(0, 0) <= night.At(0, 0) {
		t.Error("noon density should exceed 3am density")
	}
	if MeanDensity(lm, 12) <= 0 {
		t.Error("mean density should be positive")
	}
}

func TestAsciiRender(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 96, 96
	scene := Generate(cfg, DefaultConditions(), 9)
	art := AsciiRender(scene.Labels, 48)
	if art == "" {
		t.Fatal("empty render")
	}
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) == 0 || len(lines[0]) != 48 {
		t.Fatalf("render shape: %d lines, first width %d", len(lines), len(lines[0]))
	}
	if !strings.ContainsAny(art, "=") {
		t.Error("no road glyphs in a default urban scene render")
	}
	if AsciiRender(scene.Labels, 0) != "" {
		t.Error("cols=0 should give empty string")
	}
}

func TestTrafficScalesCarCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 160, 160
	rush := DefaultConditions()
	rush.TimeOfDay = 18
	nightC := DefaultConditions()
	nightC.TimeOfDay = 3
	var rushCars, nightCars int
	for seed := int64(0); seed < 6; seed++ {
		rushCars += Generate(cfg, rush, 200+seed).Labels.Counts()[imaging.MovingCar]
		nightCars += Generate(cfg, nightC, 200+seed).Labels.Counts()[imaging.MovingCar]
	}
	if rushCars <= nightCars {
		t.Errorf("rush-hour moving-car pixels (%d) not above 3am (%d)", rushCars, nightCars)
	}
}

func BenchmarkGenerateScene192(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(cfg, DefaultConditions(), int64(i))
	}
}
