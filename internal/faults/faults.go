// Package faults is the deterministic chaos layer of the serving stack:
// a seed-keyed fault injector with named injection points threaded through
// the perception and serving layers, so the fault-tolerance evidence the
// paper's argument rests on (Figure 1 escalates a monitor refusal to the
// fault-tolerant maneuver; Guerin et al. 2022 evaluate monitoring under
// injected runtime faults) can be reproduced byte-for-byte.
//
// Determinism is structural, not procedural: whether a fault fires at an
// injection point is a pure function of (seed, kind, point, frame) — a
// stateless hash, no mutable RNG — so the chaos sequence cannot be
// perturbed by query order, goroutine scheduling, or how many other points
// consult the same injector. The full plan of a run is therefore
// enumerable up front (Schedule), which is what makes a chaos experiment a
// *published* fault schedule rather than a dice roll.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Kind names one class of injected fault. Each kind maps to a fixed
// injection point in the serving stack; the set is closed by design — a
// chaos schedule over unknown fault classes would not be reviewable
// evidence.
type Kind int

const (
	// SelectorError fails one selection attempt at the selector backend:
	// the perception stack reports an error instead of a result. Transient:
	// a retry of the same frame succeeds (the serving layer injects it on
	// the first attempt only).
	SelectorError Kind = iota
	// ReplicaStall delays one selection attempt on its worker replica (the
	// injector's configured stall duration) and then fails it, modeling a
	// replica that blew its compute budget. Transient like SelectorError.
	ReplicaStall
	// StemCorrupt corrupts the session's cached stem as it re-primes
	// (monitor.FrameContext.FaultHook at the "reprime" point): the carried
	// temporal state is dropped and the frame recomputes cold on retry.
	StemCorrupt
	// ShardBlackout takes the whole shard down for the frame: every
	// attempt on the shard fails, retries included, so the serving layer
	// must degrade (or the fleet layer must route around the shard).
	ShardBlackout

	numKinds
)

// Kinds returns every fault kind, in schedule order.
func Kinds() []Kind {
	return []Kind{SelectorError, ReplicaStall, StemCorrupt, ShardBlackout}
}

// String names the kind as it appears in published schedules.
func (k Kind) String() string {
	switch k {
	case SelectorError:
		return "selector-error"
	case ReplicaStall:
		return "replica-stall"
	case StemCorrupt:
		return "stem-corrupt"
	case ShardBlackout:
		return "shard-blackout"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Transient reports whether a retry of the same frame can outrun the
// fault: true for the attempt-scoped kinds, false for ShardBlackout,
// which holds for the whole frame.
func (k Kind) Transient() bool { return k != ShardBlackout }

// Rates sets the per-(point, frame) firing probability of each kind, in
// [0, 1]. The zero value injects nothing.
type Rates struct {
	SelectorError float64
	ReplicaStall  float64
	StemCorrupt   float64
	ShardBlackout float64
}

func (r Rates) rate(k Kind) float64 {
	switch k {
	case SelectorError:
		return r.SelectorError
	case ReplicaStall:
		return r.ReplicaStall
	case StemCorrupt:
		return r.StemCorrupt
	case ShardBlackout:
		return r.ShardBlackout
	default:
		return 0
	}
}

// Error is the error an injected fault surfaces as. Serving layers match
// it with errors.As to classify the failure (transient vs frame-wide) and
// to report the cause on a degraded response.
type Error struct {
	Kind  Kind
	Point string
	Frame int
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s at %s/frame %d", e.Kind, e.Point, e.Frame)
}

// AsInjected unwraps an injected-fault error, nil when err is not one.
func AsInjected(err error) *Error {
	var fe *Error
	if errors.As(err, &fe) {
		return fe
	}
	return nil
}

// Injector decides, deterministically, which faults fire where. Build it
// with NewInjector; the zero value and a nil *Injector inject nothing, so
// fault-free serving paths need no guard beyond a nil check. An Injector
// is immutable after the Schedule* calls that set it up and safe for
// concurrent use from every shard of a fleet.
type Injector struct {
	seed  int64
	rates Rates
	stall time.Duration
	// scheduled holds the explicitly scheduled faults, keyed exactly like
	// the hash decision — the two compose by OR.
	scheduled map[fireKey]bool
}

type fireKey struct {
	kind  Kind
	point string
	frame int
}

// NewInjector returns an injector firing each kind with the given rates,
// keyed by seed: two injectors with the same seed and rates answer every
// Fire query identically, in any order, from any number of goroutines.
func NewInjector(seed int64, rates Rates) *Injector {
	return &Injector{seed: seed, rates: rates}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// WithStall sets the real wall-clock delay a ReplicaStall imposes before
// failing the attempt (0, the default, fails immediately — outputs are
// identical either way, the stall only burns time). Returns the injector
// for chaining during setup; not safe once the injector is being queried.
func (in *Injector) WithStall(d time.Duration) *Injector {
	in.stall = d
	return in
}

// Stall returns the configured ReplicaStall delay.
func (in *Injector) Stall() time.Duration {
	if in == nil {
		return 0
	}
	return in.stall
}

// ScheduleFault explicitly schedules kind to fire at (point, frame), in
// addition to anything the rates decide. Explicit entries keep the same
// determinism contract (they are part of the published schedule) and let
// tests and experiments write exact fault windows — "shard0 blacks out
// for frames 1–3" — that a rate cannot express.
func (in *Injector) ScheduleFault(kind Kind, point string, frames ...int) *Injector {
	if in.scheduled == nil {
		in.scheduled = make(map[fireKey]bool)
	}
	for _, f := range frames {
		in.scheduled[fireKey{kind, point, f}] = true
	}
	return in
}

// Fire reports whether kind fires at the named injection point on the
// given frame: a pure function of (seed, kind, point, frame) plus the
// explicit schedule. A nil injector never fires.
func (in *Injector) Fire(kind Kind, point string, frame int) bool {
	if in == nil {
		return false
	}
	if in.scheduled[fireKey{kind, point, frame}] {
		return true
	}
	rate := in.rates.rate(kind)
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return unit(in.seed, uint64(kind), point, uint64(frame)) < rate
}

// Errorf returns the injected-fault error for a Fire that reported true.
func (in *Injector) Errorf(kind Kind, point string, frame int) error {
	return &Error{Kind: kind, Point: point, Frame: frame}
}

// Entry is one scheduled fault occurrence in a published plan.
type Entry struct {
	Frame int
	Point string
	Kind  Kind
}

// Schedule enumerates every fault the injector will fire over the given
// points and frames [0, frames): the published fault plan of a chaos run.
// Order is frame-major, then point (input order), then kind — stable, so
// the printed schedule is byte-reproducible.
func (in *Injector) Schedule(points []string, frames int) []Entry {
	if in == nil {
		return nil
	}
	var out []Entry
	for f := 0; f < frames; f++ {
		for _, p := range points {
			for _, k := range Kinds() {
				if in.Fire(k, p, f) {
					out = append(out, Entry{Frame: f, Point: p, Kind: k})
				}
			}
		}
	}
	return out
}

// FormatSchedule renders a plan one "frame N: kind@point" line per entry,
// sorted by the Schedule order it was produced in. An empty plan renders
// as a single "(no faults scheduled)" line.
func FormatSchedule(entries []Entry) string {
	if len(entries) == 0 {
		return "  (no faults scheduled)\n"
	}
	s := ""
	for _, e := range entries {
		s += fmt.Sprintf("  frame %d: %s@%s\n", e.Frame, e.Kind, e.Point)
	}
	return s
}

// Backoff returns the delay before retry `attempt` (0-based) of the work
// identified by key: bounded exponential growth from base, capped at max,
// plus a deterministic jitter in [0, 50%) of the exponential term derived
// from (seed, key, attempt). Deterministic jitter keeps chaos runs
// reproducible while still decorrelating the retry storms of a fleet —
// different vehicles hash to different jitter.
func Backoff(seed int64, key string, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jitter := time.Duration(unit(seed, ^uint64(0), key, uint64(attempt)) * 0.5 * float64(d))
	if d+jitter > max {
		return max
	}
	return d + jitter
}

// unit hashes (seed, tag, point, frame) into a uniform float64 in [0, 1)
// with FNV-1a over the raw bytes. 53 mantissa bits of the hash become the
// fraction, so the decision threshold is exact for any rate.
func unit(seed int64, tag uint64, point string, frame uint64) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(seed))
	mix(tag)
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= prime64
	}
	mix(frame)
	return float64(h>>11) / float64(1<<53)
}

// SortEntries orders a plan frame-major, then point, then kind — the
// canonical order for diffing two published schedules.
func SortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Frame != b.Frame {
			return a.Frame < b.Frame
		}
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		return a.Kind < b.Kind
	})
}
