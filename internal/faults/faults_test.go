package faults

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for _, k := range Kinds() {
		if in.Fire(k, "shard0", 0) {
			t.Errorf("nil injector fired %s", k)
		}
	}
	if got := in.Schedule([]string{"a"}, 10); got != nil {
		t.Errorf("nil injector scheduled %v", got)
	}
	if in.Stall() != 0 || in.Seed() != 0 {
		t.Error("nil injector has non-zero config")
	}
}

func TestRateEndpoints(t *testing.T) {
	always := NewInjector(1, Rates{SelectorError: 1})
	never := NewInjector(1, Rates{})
	for f := 0; f < 50; f++ {
		if !always.Fire(SelectorError, "p", f) {
			t.Fatalf("rate 1 did not fire at frame %d", f)
		}
		if never.Fire(SelectorError, "p", f) {
			t.Fatalf("rate 0 fired at frame %d", f)
		}
		// A kind with rate 0 stays silent even when another kind fires.
		if always.Fire(ShardBlackout, "p", f) {
			t.Fatalf("unconfigured kind fired at frame %d", f)
		}
	}
}

// TestFireIsStateless pins the core determinism property: answers do not
// depend on query order, repetition, or interleaved queries about other
// points.
func TestFireIsStateless(t *testing.T) {
	in := NewInjector(42, Rates{SelectorError: 0.3, ReplicaStall: 0.2, StemCorrupt: 0.1, ShardBlackout: 0.15})
	type q struct {
		k     Kind
		p     string
		f     int
		fired bool
	}
	var forward []q
	for f := 0; f < 40; f++ {
		for _, p := range []string{"shard0", "shard1", "uav-7"} {
			for _, k := range Kinds() {
				forward = append(forward, q{k, p, f, in.Fire(k, p, f)})
			}
		}
	}
	// Replay backwards, twice each, against a fresh injector.
	fresh := NewInjector(42, Rates{SelectorError: 0.3, ReplicaStall: 0.2, StemCorrupt: 0.1, ShardBlackout: 0.15})
	for i := len(forward) - 1; i >= 0; i-- {
		for rep := 0; rep < 2; rep++ {
			if fresh.Fire(forward[i].k, forward[i].p, forward[i].f) != forward[i].fired {
				t.Fatalf("query %d changed answer on out-of-order replay", i)
			}
		}
	}
}

func TestRatesApproximateFrequency(t *testing.T) {
	const n = 20000
	in := NewInjector(7, Rates{SelectorError: 0.25})
	fired := 0
	for f := 0; f < n; f++ {
		if in.Fire(SelectorError, "p", f) {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("rate 0.25 fired at frequency %.4f", got)
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a := NewInjector(1, Rates{SelectorError: 0.5})
	b := NewInjector(2, Rates{SelectorError: 0.5})
	same := 0
	const n = 2000
	for f := 0; f < n; f++ {
		if a.Fire(SelectorError, "p", f) == b.Fire(SelectorError, "p", f) {
			same++
		}
	}
	if same == n {
		t.Error("two seeds produced identical fault sequences")
	}
}

func TestScheduleFaultComposesWithRates(t *testing.T) {
	in := NewInjector(3, Rates{}).ScheduleFault(ShardBlackout, "shard0", 1, 2, 3)
	for f := 0; f < 6; f++ {
		want := f >= 1 && f <= 3
		if got := in.Fire(ShardBlackout, "shard0", f); got != want {
			t.Errorf("frame %d: fired=%v, want %v", f, got, want)
		}
		if in.Fire(ShardBlackout, "shard1", f) {
			t.Errorf("frame %d: scheduled fault leaked to another point", f)
		}
		if in.Fire(SelectorError, "shard0", f) {
			t.Errorf("frame %d: scheduled fault leaked to another kind", f)
		}
	}
}

func TestScheduleEnumeratesExactlyWhatFires(t *testing.T) {
	in := NewInjector(11, Rates{SelectorError: 0.4, ShardBlackout: 0.3}).
		ScheduleFault(StemCorrupt, "shard1", 2)
	points := []string{"shard0", "shard1"}
	const frames = 25
	plan := in.Schedule(points, frames)
	want := map[Entry]bool{}
	for _, e := range plan {
		want[e] = true
	}
	for f := 0; f < frames; f++ {
		for _, p := range points {
			for _, k := range Kinds() {
				if in.Fire(k, p, f) != want[Entry{Frame: f, Point: p, Kind: k}] {
					t.Fatalf("schedule disagrees with Fire at (%s, %s, %d)", k, p, f)
				}
			}
		}
	}
	// The plan is already in canonical order.
	sorted := append([]Entry(nil), plan...)
	SortEntries(sorted)
	if !reflect.DeepEqual(plan, sorted) {
		t.Error("Schedule output not in canonical order")
	}
	if !strings.Contains(FormatSchedule(plan), "stem-corrupt@shard1") {
		t.Errorf("formatted schedule missing explicit entry:\n%s", FormatSchedule(plan))
	}
	if FormatSchedule(nil) != "  (no faults scheduled)\n" {
		t.Errorf("empty schedule rendering = %q", FormatSchedule(nil))
	}
}

func TestErrorClassification(t *testing.T) {
	in := NewInjector(5, Rates{})
	err := in.Errorf(ReplicaStall, "shard0", 4)
	fe := AsInjected(err)
	if fe == nil || fe.Kind != ReplicaStall || fe.Point != "shard0" || fe.Frame != 4 {
		t.Fatalf("AsInjected = %+v", fe)
	}
	if AsInjected(errors.New("plain")) != nil {
		t.Error("plain error classified as injected")
	}
	wrapped := fmt.Errorf("serving: %w", err)
	if AsInjected(wrapped) == nil {
		t.Error("wrapped injected error not classified")
	}
	if !ReplicaStall.Transient() || !SelectorError.Transient() || !StemCorrupt.Transient() {
		t.Error("attempt-scoped kinds must be transient")
	}
	if ShardBlackout.Transient() {
		t.Error("blackout must not be transient")
	}
}

func TestBackoffBoundedAndDeterministic(t *testing.T) {
	const base, max = time.Millisecond, 16 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		d := Backoff(9, "uav-1", attempt, base, max)
		if d != Backoff(9, "uav-1", attempt, base, max) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		if d > max {
			t.Fatalf("attempt %d: backoff %v exceeds cap %v", attempt, d, max)
		}
		lower := base << uint(attempt)
		if lower > max {
			lower = max
		}
		if d < lower && d < max {
			t.Fatalf("attempt %d: backoff %v below exponential floor %v", attempt, d, lower)
		}
	}
	if Backoff(9, "k", 3, 0, max) != 0 {
		t.Error("zero base must disable backoff")
	}
	if Backoff(9, "uav-1", 2, base, max) == Backoff(9, "uav-2", 2, base, max) &&
		Backoff(9, "uav-1", 3, base, max) == Backoff(9, "uav-2", 3, base, max) &&
		Backoff(9, "uav-1", 1, base, max) == Backoff(9, "uav-2", 1, base, max) {
		t.Error("jitter does not decorrelate keys")
	}
}

// FuzzInjectorDeterminism is the chaos-reproducibility pin: for any seed,
// rates, point and frame window, two independently built injectors (one
// queried in reverse) produce the identical fault sequence, and the
// published Schedule matches the Fire answers entry for entry.
func FuzzInjectorDeterminism(f *testing.F) {
	f.Add(int64(1), 0.3, 0.2, 0.1, 0.15, "shard0", uint8(20), uint8(3))
	f.Add(int64(-7), 1.0, 0.0, 0.5, 0.9, "uav-0042", uint8(5), uint8(1))
	f.Add(int64(0), 0.0, 0.0, 0.0, 0.0, "", uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, r1, r2, r3, r4 float64, point string, frames, schedFrame uint8) {
		for _, r := range []float64{r1, r2, r3, r4} {
			if math.IsNaN(r) || r < 0 || r > 1 {
				t.Skip()
			}
		}
		rates := Rates{SelectorError: r1, ReplicaStall: r2, StemCorrupt: r3, ShardBlackout: r4}
		mk := func() *Injector {
			return NewInjector(seed, rates).ScheduleFault(StemCorrupt, point, int(schedFrame))
		}
		a, b := mk(), mk()
		n := int(frames) + 1
		seq := make([]bool, 0, n*int(numKinds))
		for fr := 0; fr < n; fr++ {
			for _, k := range Kinds() {
				seq = append(seq, a.Fire(k, point, fr))
			}
		}
		i := len(seq) - 1
		for fr := n - 1; fr >= 0; fr-- {
			ks := Kinds()
			for j := len(ks) - 1; j >= 0; j-- {
				if b.Fire(ks[j], point, fr) != seq[i] {
					t.Fatalf("reverse-order replay diverged at frame %d kind %s", fr, ks[j])
				}
				i--
			}
		}
		if !a.Fire(StemCorrupt, point, int(schedFrame)) {
			t.Fatal("explicitly scheduled fault did not fire")
		}
		planned := map[Entry]bool{}
		for _, e := range a.Schedule([]string{point}, n) {
			planned[e] = true
		}
		idx := 0
		for fr := 0; fr < n; fr++ {
			for _, k := range Kinds() {
				if seq[idx] != planned[Entry{Frame: fr, Point: point, Kind: k}] {
					t.Fatalf("Schedule disagrees with Fire at frame %d kind %s", fr, k)
				}
				idx++
			}
		}
	})
}
