package uav

import (
	"context"
	"testing"
	"testing/quick"
)

func TestDecideStateMachine(t *testing.T) {
	d := &Decide{Switch: Switch{ELAvailable: true, HoverTimeoutS: 10}}
	if m := d.Step(0, NoFailure); m != ContinueMission {
		t.Fatalf("nominal step = %v", m)
	}
	// Temporary loss: hover, then recovery resumes the mission.
	if m := d.Step(1, CommLossTemporary); m != Hover {
		t.Fatalf("temporary loss = %v", m)
	}
	if m := d.Step(5, NoFailure); m != ContinueMission {
		t.Fatalf("recovery = %v", m)
	}
	// A second temporary loss restarts the hover timer from scratch.
	if m := d.Step(20, CommLossTemporary); m != Hover {
		t.Fatalf("second loss = %v", m)
	}
	if m := d.Step(25, CommLossTemporary); m != Hover {
		t.Fatalf("within timeout = %v", m)
	}
	if m := d.Step(31, CommLossTemporary); m != ReturnToBase {
		t.Fatalf("past timeout should escalate to RB, got %v", m)
	}
}

func TestDecideHoverTimerResetOnNewFailure(t *testing.T) {
	d := &Decide{Switch: Switch{ELAvailable: true, HoverTimeoutS: 10}}
	d.Step(0, CommLossTemporary)
	d.Step(8, CommLossTemporary)
	// Failure kind changes: navigation loss overrides hover immediately.
	if m := d.Step(9, NavigationLoss); m != EmergencyLanding {
		t.Fatalf("navigation loss during hover = %v", m)
	}
}

func TestDecideDefaultTimeout(t *testing.T) {
	d := &Decide{Switch: Switch{ELAvailable: false}} // zero timeout → 30 s default
	d.Step(0, CommLossTemporary)
	if m := d.Step(29, CommLossTemporary); m != Hover {
		t.Fatalf("before default timeout = %v", m)
	}
	if m := d.Step(30, CommLossTemporary); m != ReturnToBase {
		t.Fatalf("default timeout escalation = %v", m)
	}
}

// TestSelectManeuverTotalAndOrdered property-checks that every failure kind
// yields a defined maneuver and that removing EL availability never yields a
// *less* severe response.
func TestSelectManeuverTotalAndOrdered(t *testing.T) {
	property := func(kRaw uint8, el bool) bool {
		k := FailureKind(int(kRaw) % (int(FlightControlFault) + 1))
		m := SelectManeuver(k, el)
		if m < ContinueMission || m > FlightTermination {
			return false
		}
		withEL := SelectManeuver(k, true)
		withoutEL := SelectManeuver(k, false)
		return withoutEL >= withEL
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSwitchRunRecoveryEmitsContinue(t *testing.T) {
	ctx := context.Background()
	events := make(chan HealthEvent, 4)
	decisions := make(chan Decision, 4)
	sw := &Switch{ELAvailable: true, HoverTimeoutS: 100}
	events <- HealthEvent{T: 0, Failure: CommLossTemporary}
	events <- HealthEvent{T: 5, Failure: NoFailure}
	close(events)
	sw.Run(ctx, events, decisions)
	var got []Maneuver
	for d := range decisions {
		got = append(got, d.Maneuver)
	}
	if len(got) != 2 || got[0] != Hover || got[1] != ContinueMission {
		t.Fatalf("decisions = %v, want [Hover ContinueMission]", got)
	}
}

func TestSwitchRunNoELFallsToFT(t *testing.T) {
	events := make(chan HealthEvent, 2)
	decisions := make(chan Decision, 2)
	events <- HealthEvent{T: 0, Failure: NavigationLoss}
	close(events)
	(&Switch{ELAvailable: false}).Run(context.Background(), events, decisions)
	d, ok := <-decisions
	if !ok || d.Maneuver != FlightTermination {
		t.Fatalf("decision = %+v ok=%v, want FT", d, ok)
	}
}
