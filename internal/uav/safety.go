package uav

import (
	"context"
)

// HealthEvent is one observation on the vehicle health bus. A Failure of
// NoFailure reports recovery. Tick events (same failure as before) advance
// the switch's notion of time so it can escalate lingering conditions.
type HealthEvent struct {
	T       float64 // simulation time (s)
	Failure FailureKind
}

// Decision is an output of the safety switch: the maneuver to engage.
type Decision struct {
	T        float64
	Failure  FailureKind
	Maneuver Maneuver
}

// Switch is the paper's Figure 1 safety switch: a continuous monitoring
// loop that analyses acquisition data and triggers the suitable emergency
// procedure when a critical anomaly is detected. It runs as a goroutine
// consuming health events and emitting maneuver decisions.
type Switch struct {
	// ELAvailable gates the Emergency Landing branch; without it the switch
	// falls through to Flight Termination.
	ELAvailable bool
	// HoverTimeoutS escalates a temporary loss into a permanent one after
	// this long in Hover (default 30 s).
	HoverTimeoutS float64
}

// Run consumes events until the context is cancelled or the event channel
// closes, sending a Decision whenever the selected maneuver changes. It
// closes the decisions channel on return.
func (s *Switch) Run(ctx context.Context, events <-chan HealthEvent, decisions chan<- Decision) {
	defer close(decisions)
	hoverTimeout := s.HoverTimeoutS
	if hoverTimeout <= 0 {
		hoverTimeout = 30
	}
	current := NoFailure
	maneuver := ContinueMission
	hoverSince := -1.0

	emit := func(t float64, m Maneuver) bool {
		if m == maneuver {
			return true
		}
		maneuver = m
		select {
		case decisions <- Decision{T: t, Failure: current, Maneuver: m}:
			return true
		case <-ctx.Done():
			return false
		}
	}

	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			if ev.Failure != current {
				current = ev.Failure
				hoverSince = -1
			}
			m := SelectManeuver(current, s.ELAvailable)
			if m == Hover {
				if hoverSince < 0 {
					hoverSince = ev.T
				}
				if ev.T-hoverSince >= hoverTimeout {
					// A "temporary" loss that lingers is treated as
					// permanent: escalate to Return-to-Base.
					current = CommLossPermanent
					m = SelectManeuver(current, s.ELAvailable)
				}
			}
			if !emit(ev.T, m) {
				return
			}
		}
	}
}

// Decide is the synchronous form used by the simulator: it tracks one
// failure state and applies the same escalation policy without goroutines.
type Decide struct {
	Switch     Switch
	current    FailureKind
	hoverSince float64
	hovering   bool
}

// Step feeds one observation and returns the maneuver to fly.
func (d *Decide) Step(t float64, failure FailureKind) Maneuver {
	if failure != d.current {
		d.current = failure
		d.hovering = false
	}
	m := SelectManeuver(d.current, d.Switch.ELAvailable)
	if m == Hover {
		timeout := d.Switch.HoverTimeoutS
		if timeout <= 0 {
			timeout = 30
		}
		if !d.hovering {
			d.hovering = true
			d.hoverSince = t
		}
		if t-d.hoverSince >= timeout {
			d.current = CommLossPermanent
			m = SelectManeuver(d.current, d.Switch.ELAvailable)
		}
	} else {
		d.hovering = false
	}
	return m
}
