package uav

import "fmt"

// FailureKind classifies the on-board and external failures the safety
// switch must react to, derived from the hazard analysis (Section III-B/C).
type FailureKind int

// Failure kinds.
const (
	// NoFailure is the nominal state.
	NoFailure FailureKind = iota
	// CommLossTemporary is a transient unavailability of external services
	// (C2 link drop, GNSS degradation expected to recover).
	CommLossTemporary
	// CommLossPermanent is a confirmed permanent loss of communication with
	// navigation still intact.
	CommLossPermanent
	// MotorDegraded is a partial propulsion fault that leaves the vehicle
	// navigable at reduced performance.
	MotorDegraded
	// NavigationLoss is the loss of localization (GNSS + backup) with
	// trajectory control still available — the paper's EL trigger.
	NavigationLoss
	// BatteryCritical leaves energy for a short controlled descent only.
	BatteryCritical
	// EngineFailure is a total propulsion loss.
	EngineFailure
	// FlightControlFault is a flight-control/actuation fault: attitude
	// control can no longer be guaranteed.
	FlightControlFault
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case NoFailure:
		return "nominal"
	case CommLossTemporary:
		return "temporary communication loss"
	case CommLossPermanent:
		return "permanent communication loss"
	case MotorDegraded:
		return "degraded motor"
	case NavigationLoss:
		return "loss of navigation"
	case BatteryCritical:
		return "critical battery"
	case EngineFailure:
		return "engine failure"
	case FlightControlFault:
		return "flight control fault"
	default:
		return fmt.Sprintf("failure(%d)", int(k))
	}
}

// Navigable reports whether the vehicle can still fly a planned trajectory
// back to base (position known, propulsion and control available).
func (k FailureKind) Navigable() bool {
	switch k {
	case NoFailure, CommLossTemporary, CommLossPermanent, MotorDegraded:
		return true
	default:
		return false
	}
}

// Controllable reports whether the vehicle can still control its trajectory
// locally (fly to a visually selected zone), even without global
// localization.
func (k FailureKind) Controllable() bool {
	switch k {
	case EngineFailure, FlightControlFault:
		return false
	default:
		return true
	}
}

// Temporary reports whether the failure is expected to clear on its own.
func (k FailureKind) Temporary() bool { return k == CommLossTemporary }

// Maneuver is an emergency trajectory-management mode from Figure 1.
type Maneuver int

// Maneuvers, in escalation order.
const (
	ContinueMission Maneuver = iota
	Hover
	ReturnToBase
	EmergencyLanding
	FlightTermination
)

// String names the maneuver with the paper's abbreviations.
func (m Maneuver) String() string {
	switch m {
	case ContinueMission:
		return "continue"
	case Hover:
		return "hovering (H)"
	case ReturnToBase:
		return "return-to-base (RB)"
	case EmergencyLanding:
		return "emergency landing (EL)"
	case FlightTermination:
		return "flight termination (FT)"
	default:
		return fmt.Sprintf("maneuver(%d)", int(m))
	}
}

// SelectManeuver implements the Figure 1 safety strategy:
//
//   - temporary unavailability of external services → Hover;
//   - permanent communication loss or on-board failures still allowing
//     proper navigability → Return-to-Base;
//   - loss of navigation capabilities still allowing trajectory control →
//     Emergency Landing (when an EL function is available);
//   - flight continuation impossible or no safe EL available → Flight
//     Termination (stop engines, open parachute).
func SelectManeuver(k FailureKind, elAvailable bool) Maneuver {
	switch {
	case k == NoFailure:
		return ContinueMission
	case k.Temporary():
		return Hover
	case k.Navigable():
		return ReturnToBase
	case k.Controllable():
		if elAvailable {
			return EmergencyLanding
		}
		return FlightTermination
	default:
		return FlightTermination
	}
}
