package uav

import (
	"context"
	"fmt"
	"math"

	"safeland/internal/hazard"
	"safeland/internal/imaging"
	"safeland/internal/urban"
)

// LandingPlanner selects an emergency touchdown point. The core package's
// landing-zone selection pipeline implements it; the uav package only
// depends on this interface so the simulator can also run with baseline
// planners or none at all.
type LandingPlanner interface {
	// PlanLanding picks a touchdown point (meters) reachable from (x, y).
	// ok is false when no acceptable zone exists.
	PlanLanding(scene *urban.Scene, xM, yM float64) (txM, tyM float64, ok bool)
}

// LandingPlannerCtx is the context-aware form of LandingPlanner. Planners
// that implement it (core.Pipeline, safeland.Engine) have the mission's
// context threaded into the selection, so a cancelled mission aborts the
// planning mid-trial instead of running it to completion; the aborted
// planning reports ok=false, which the safety switch treats as EL
// unavailable (the conservative interpretation: no verified zone, terminate).
type LandingPlannerCtx interface {
	LandingPlanner
	PlanLandingCtx(ctx context.Context, scene *urban.Scene, xM, yM float64) (txM, tyM float64, ok bool)
}

// planLanding dispatches to the ctx-aware planner form when available.
func planLanding(ctx context.Context, p LandingPlanner, scene *urban.Scene, xM, yM float64) (float64, float64, bool) {
	if pc, ok := p.(LandingPlannerCtx); ok {
		return pc.PlanLandingCtx(ctx, scene, xM, yM)
	}
	return p.PlanLanding(scene, xM, yM)
}

// TimedFailure schedules a failure injection.
type TimedFailure struct {
	AtS  float64
	Kind FailureKind
	// ClearAtS, when positive, recovers the failure at that time (for
	// temporary losses).
	ClearAtS float64
}

// Mission describes one simulated flight over a scene.
type Mission struct {
	Spec      Spec
	Scene     *urban.Scene
	Waypoints [][2]float64 // meters; first entry is the start
	Base      [2]float64   // meters; return-to-base target
	Failures  []TimedFailure
	Wind      *Wind
	// Planner provides Emergency Landing; nil means EL unavailable.
	Planner LandingPlanner
	// Hour is the local time of day, driving exposure densities.
	Hour float64
	// HoverTimeoutS configures the safety switch escalation.
	HoverTimeoutS float64
}

// Outcome reports how the flight ended.
type Outcome struct {
	// Maneuver is the final emergency procedure engaged (ContinueMission if
	// the flight completed nominally).
	Maneuver Maneuver
	// Failure is the failure that ended the nominal mission.
	Failure FailureKind
	// Completed is true for a nominal mission end or a safe return/landing
	// at base.
	Completed bool
	// Impacted is true when the vehicle reached the ground away from base.
	Impacted bool
	// ImpactX, ImpactY locate the touchdown (meters).
	ImpactX, ImpactY float64
	// ImpactSurface is the ground-truth class under the touchdown point.
	ImpactSurface imaging.Class
	// ImpactEnergyJ is the touchdown kinetic energy.
	ImpactEnergyJ float64
	// Assessment quantifies the consequences.
	Assessment hazard.Assessment
	// FlightTimeS is the total simulated time.
	FlightTimeS float64
	// Log records the event trace.
	Log []string
}

// Run simulates the mission with a 0.5 s step and returns the outcome.
func (m *Mission) Run() Outcome {
	return m.RunCtx(context.Background())
}

// RunCtx is Run with the context threaded into the landing planner: when
// the planner is ctx-aware (LandingPlannerCtx), cancelling ctx aborts an
// emergency-landing selection already in progress — the selection reports
// no zone and the flight terminates, the same conservative branch an
// unavailable planner takes. The flight dynamics themselves are pure
// arithmetic and run to completion regardless of ctx.
func (m *Mission) RunCtx(ctx context.Context) Outcome {
	const dt = 0.5
	if len(m.Waypoints) == 0 {
		panic("uav: mission needs at least one waypoint")
	}
	x, y := m.Waypoints[0][0], m.Waypoints[0][1]
	wpIdx := 1
	t := 0.0
	decide := &Decide{Switch: Switch{ELAvailable: m.Planner != nil, HoverTimeoutS: m.HoverTimeoutS}}
	out := Outcome{Maneuver: ContinueMission}
	logf := func(format string, args ...any) {
		out.Log = append(out.Log, fmt.Sprintf("t=%6.1fs "+format, append([]any{t}, args...)...))
	}
	logf("departure at (%.0f, %.0f), %s", x, y, m.Spec.Name)

	activeFailure := func() FailureKind {
		worst := NoFailure
		for _, f := range m.Failures {
			if t >= f.AtS && (f.ClearAtS <= 0 || t < f.ClearAtS) {
				if f.Kind > worst {
					worst = f.Kind
				}
			}
		}
		return worst
	}

	// flyToward advances toward a target and reports arrival.
	flyToward := func(tx, ty, speed float64) bool {
		dx, dy := tx-x, ty-y
		dist := math.Hypot(dx, dy)
		if dist <= speed*dt {
			x, y = tx, ty
			return true
		}
		x += dx / dist * speed * dt
		y += dy / dist * speed * dt
		return false
	}

	maxT := m.Spec.EnduranceS
	if maxT <= 0 {
		maxT = 3600
	}
	var elTarget [2]float64
	elPlanned := false

	for ; t < maxT; t += dt {
		failure := activeFailure()
		maneuver := decide.Step(t, failure)
		if maneuver > out.Maneuver {
			out.Maneuver = maneuver
			out.Failure = failure
			logf("failure %q -> %s", failure, maneuver)
		} else if maneuver < out.Maneuver && out.Maneuver == Hover {
			// Recovery from hover: resume the mission.
			out.Maneuver = maneuver
			logf("failure cleared -> %s", maneuver)
		}

		switch out.Maneuver {
		case ContinueMission:
			if wpIdx >= len(m.Waypoints) {
				out.Completed = true
				out.FlightTimeS = t
				logf("mission complete")
				return out
			}
			if flyToward(m.Waypoints[wpIdx][0], m.Waypoints[wpIdx][1], m.Spec.CruiseSpeedMS) {
				wpIdx++
			}
		case Hover:
			// Hold position.
		case ReturnToBase:
			if flyToward(m.Base[0], m.Base[1], m.Spec.CruiseSpeedMS) {
				out.Completed = true
				out.FlightTimeS = t + m.Spec.CruiseAltM/math.Max(m.Spec.DescentSpeedMS, 0.5)
				logf("landed at base")
				return out
			}
		case EmergencyLanding:
			if !elPlanned {
				tx, ty, ok := planLanding(ctx, m.Planner, m.Scene, x, y)
				if !ok {
					logf("no safe landing zone -> flight termination")
					out.Maneuver = FlightTermination
					continue
				}
				elTarget = [2]float64{tx, ty}
				elPlanned = true
				logf("landing zone selected at (%.0f, %.0f)", tx, ty)
			}
			if flyToward(elTarget[0], elTarget[1], m.Spec.CruiseSpeedMS*0.7) {
				// EL keeps trajectory control: descend over the zone to the
				// deployment altitude before opening the canopy, limiting
				// wind drift (the buffer in zone selection assumes this).
				deployAlt := m.Spec.ParachuteDeployAltM
				if deployAlt <= 0 || deployAlt > m.Spec.CruiseAltM {
					deployAlt = m.Spec.CruiseAltM
				}
				descent := (m.Spec.CruiseAltM - deployAlt) / math.Max(m.Spec.DescentSpeedMS, 0.5)
				return m.touchdown(t+descent, x, y, deployAlt, &out)
			}
		case FlightTermination:
			return m.touchdown(t, x, y, m.Spec.CruiseAltM, &out)
		}
	}
	// Endurance exhausted: battery death, ballistic fall here.
	logf("endurance exhausted")
	out.Failure = BatteryCritical
	out.Maneuver = FlightTermination
	return m.touchdown(t, x, y, -1, &out)
}

// touchdown terminates the flight at (x, y) from the given altitude: a
// parachute descent with wind drift when a canopy is available and
// fromAltM is positive, otherwise a ballistic fall from cruise. It fills
// the impact fields of out.
func (m *Mission) touchdown(t, x, y, fromAltM float64, out *Outcome) Outcome {
	alt := fromAltM
	var impactSpeed, dur float64
	if alt > 0 && m.Spec.ParachuteSinkMS > 0 {
		var dx, dy float64
		dx, dy, dur, impactSpeed = ParachuteDescent(alt, m.Spec.ParachuteSinkMS, m.Wind, t)
		x += dx
		y += dy
	} else {
		alt = m.Spec.CruiseAltM
		impactSpeed = BallisticImpactSpeed(alt)
		dur = impactSpeed / G // free-fall duration
	}
	out.FlightTimeS = t + dur
	out.Impacted = true
	out.ImpactX, out.ImpactY = x, y
	out.ImpactEnergyJ = KineticEnergy(m.Spec.MTOWKg, impactSpeed)
	out.ImpactSurface = m.surfaceAt(x, y)
	out.Assessment = hazard.Assess(hazard.Impact{
		Surface:        out.ImpactSurface,
		KineticEnergyJ: out.ImpactEnergyJ,
		SpanM:          m.Spec.SpanM,
		PeoplePerM2:    urban.ClassDensity(out.ImpactSurface, m.Hour),
		TrafficFactor:  urban.TrafficFactor(m.Hour),
	})
	out.Log = append(out.Log, fmt.Sprintf("t=%6.1fs touchdown on %s at (%.0f, %.0f), %.0f J, severity %s",
		out.FlightTimeS, out.ImpactSurface, x, y, out.ImpactEnergyJ, out.Assessment.Severity))
	return *out
}

// surfaceAt samples the ground-truth class at world position (meters),
// clamped to the scene bounds.
func (m *Mission) surfaceAt(xM, yM float64) imaging.Class {
	px := int(xM / m.Scene.MPP)
	py := int(yM / m.Scene.MPP)
	if px < 0 {
		px = 0
	}
	if py < 0 {
		py = 0
	}
	if px >= m.Scene.Labels.W {
		px = m.Scene.Labels.W - 1
	}
	if py >= m.Scene.Labels.H {
		py = m.Scene.Labels.H - 1
	}
	return m.Scene.Labels.At(px, py)
}
