package uav

import (
	"math"
	"math/rand"
)

// Wind is a first-order gust model: a constant mean vector plus an AR(1)
// turbulence component (a light-weight stand-in for a Dryden spectrum).
// Construct with NewWind; the zero value is calm air.
type Wind struct {
	MeanX, MeanY float64 // m/s
	GustStd      float64 // standard deviation of the gust component
	corrTime     float64 // gust correlation time (s)

	rng          *rand.Rand
	gustX, gustY float64
	lastT        float64
	initialized  bool
}

// NewWind builds a wind field with the given mean vector and gust standard
// deviation; gusts decorrelate over about five seconds.
func NewWind(meanX, meanY, gustStd float64, seed int64) *Wind {
	return &Wind{
		MeanX: meanX, MeanY: meanY, GustStd: gustStd,
		corrTime: 5,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Speed returns the magnitude of the mean wind.
func (w *Wind) Speed() float64 { return math.Hypot(w.MeanX, w.MeanY) }

// At returns the wind vector at simulation time t (seconds, non-decreasing
// across calls). The zero value returns calm air.
func (w *Wind) At(t float64) (wx, wy float64) {
	if w == nil || w.rng == nil {
		return 0, 0
	}
	dt := t - w.lastT
	if !w.initialized {
		dt = 0
		w.initialized = true
	}
	w.lastT = t
	if dt > 0 && w.GustStd > 0 {
		// AR(1): ρ = exp(−dt/τ); innovation variance keeps stationary std.
		rho := math.Exp(-dt / w.corrTime)
		inn := w.GustStd * math.Sqrt(1-rho*rho)
		w.gustX = rho*w.gustX + inn*w.rng.NormFloat64()
		w.gustY = rho*w.gustY + inn*w.rng.NormFloat64()
	}
	return w.MeanX + w.gustX, w.MeanY + w.gustY
}

// ParachuteDescent integrates a parachute descent from the given altitude
// under the wind field, starting at simulation time t0. It returns the
// horizontal drift vector (m), the descent duration (s) and the impact
// speed (the steady sink rate).
func ParachuteDescent(altM, sinkMS float64, w *Wind, t0 float64) (driftX, driftY, durationS, impactMS float64) {
	if altM <= 0 || sinkMS <= 0 {
		return 0, 0, 0, 0
	}
	durationS = altM / sinkMS
	const dt = 0.25
	for t := 0.0; t < durationS; t += dt {
		step := dt
		if t+dt > durationS {
			step = durationS - t
		}
		wx, wy := w.At(t0 + t)
		driftX += wx * step
		driftY += wy * step
	}
	return driftX, driftY, durationS, sinkMS
}

// DriftBuffer returns a conservative bound (m) on parachute drift from the
// given altitude: mean wind carries the canopy for the whole descent and the
// gusts add kSigma standard deviations of integrated turbulence. Landing
// zone selection enlarges its road buffer by this amount — the Table III
// low-integrity geometry requirement ("the buffer from roads must take into
// account the typical parachute drift").
func DriftBuffer(altM, sinkMS, windSpeed, gustStd, kSigma float64) float64 {
	if altM <= 0 || sinkMS <= 0 {
		return 0
	}
	duration := altM / sinkMS
	mean := windSpeed * duration
	// Integrated AR(1) noise std grows ~ sqrt(2·τ·T)·σ for T >> τ.
	const tau = 5.0
	gust := gustStd * math.Sqrt(2*tau*duration)
	return mean + kSigma*gust
}
