// Package uav is the flight substrate: vehicle specifications, ballistic and
// parachute descent physics, a gusty wind model, a failure taxonomy, the
// paper's Figure 1 safety switch (Hover / Return-to-Base / Emergency Landing
// / Flight Termination), and a mission simulator that closes the loop from
// failure injection to ground impact over a generated urban scene.
package uav

import "math"

// G is the standard gravitational acceleration (m/s²).
const G = 9.80665

// Spec is the static description of a vehicle.
type Spec struct {
	Name string
	// SpanM is the characteristic dimension (rotor-tip to rotor-tip).
	SpanM float64
	// MTOWKg is the maximum take-off weight.
	MTOWKg float64
	// CruiseAltM is the nominal flight height above ground.
	CruiseAltM float64
	// CruiseSpeedMS is the nominal horizontal speed.
	CruiseSpeedMS float64
	// EnduranceS is the nominal battery endurance at cruise.
	EnduranceS float64
	// ParachuteSinkMS is the steady descent rate under canopy.
	ParachuteSinkMS float64
	// ParachuteDeployAltM is the altitude an Emergency Landing descends to
	// (under control) before opening the canopy, limiting wind drift.
	// Flight Termination has no control left and deploys from cruise.
	ParachuteDeployAltM float64
	// DescentSpeedMS is the controlled vertical landing speed.
	DescentSpeedMS float64
}

// MediDelivery returns the paper's Section III-A case study: a rotary-wing
// UAV with ~1 m span, 7 kg MTOW, flying at 120 m over a city BVLOS.
func MediDelivery() Spec {
	return Spec{
		Name:                "MEDI DELIVERY",
		SpanM:               1.0,
		MTOWKg:              7.0,
		CruiseAltM:          120,
		CruiseSpeedMS:       15,
		EnduranceS:          25 * 60,
		ParachuteSinkMS:     5.5,
		ParachuteDeployAltM: 35,
		DescentSpeedMS:      2.5,
	}
}

// BallisticImpactSpeed returns the vertical speed (m/s) after a drag-free
// fall from the given height — the paper's "typical ballistic vertical
// speed of 48.5 m/s" for 120 m.
func BallisticImpactSpeed(heightM float64) float64 {
	if heightM <= 0 {
		return 0
	}
	return math.Sqrt(2 * G * heightM)
}

// BallisticImpactSpeedWithDrag integrates the fall with quadratic drag,
// capping the speed at terminal velocity. cdAm2 is the drag coefficient
// times frontal area (m²); airDensity defaults to 1.225 when zero.
func BallisticImpactSpeedWithDrag(heightM, massKg, cdAm2, airDensity float64) float64 {
	if heightM <= 0 || massKg <= 0 {
		return 0
	}
	if cdAm2 <= 0 {
		return BallisticImpactSpeed(heightM)
	}
	if airDensity <= 0 {
		airDensity = 1.225
	}
	// dv/dt = g − (k/m)·v², integrated over height with dt steps.
	k := 0.5 * airDensity * cdAm2
	v, h := 0.0, heightM
	const dt = 0.01
	for h > 0 {
		a := G - k*v*v/massKg
		v += a * dt
		h -= v * dt
	}
	return v
}

// KineticEnergy returns ½mv² in joules — 8.23 kJ for the paper's 7 kg at
// 48.5 m/s.
func KineticEnergy(massKg, speedMS float64) float64 {
	return 0.5 * massKg * speedMS * speedMS
}

// BallisticImpactEnergy composes the two: the impact energy of an
// uncontrolled fall from the given height.
func BallisticImpactEnergy(massKg, heightM float64) float64 {
	return KineticEnergy(massKg, BallisticImpactSpeed(heightM))
}
