package uav

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"safeland/internal/urban"
)

func TestPaperPhysicsNumbers(t *testing.T) {
	// Section III-A: 120 m → 48.5 m/s ballistic speed; 7 kg → 8.23 kJ.
	v := BallisticImpactSpeed(120)
	if math.Abs(v-48.5) > 0.1 {
		t.Errorf("ballistic speed from 120 m = %.2f m/s, want 48.5", v)
	}
	ke := BallisticImpactEnergy(7, 120)
	if math.Abs(ke-8230) > 30 {
		t.Errorf("kinetic energy = %.0f J, want ≈8230 (8.23 kJ)", ke)
	}
	spec := MediDelivery()
	if spec.SpanM != 1.0 || spec.MTOWKg != 7.0 || spec.CruiseAltM != 120 {
		t.Errorf("MediDelivery spec diverges from the paper: %+v", spec)
	}
}

func TestBallisticEdgeCases(t *testing.T) {
	if BallisticImpactSpeed(0) != 0 || BallisticImpactSpeed(-5) != 0 {
		t.Error("non-positive heights should give zero speed")
	}
	if KineticEnergy(7, 0) != 0 {
		t.Error("zero speed zero energy")
	}
	property := func(h uint16) bool {
		height := float64(h%500) + 1
		v := BallisticImpactSpeed(height)
		// invertible: h = v²/2g
		return math.Abs(v*v/(2*G)-height) < 1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBallisticWithDrag(t *testing.T) {
	noDrag := BallisticImpactSpeed(120)
	withDrag := BallisticImpactSpeedWithDrag(120, 7, 0.05, 0)
	if withDrag >= noDrag {
		t.Errorf("drag should slow the fall: %v >= %v", withDrag, noDrag)
	}
	if withDrag < noDrag*0.5 {
		t.Errorf("modest drag slowed the fall implausibly: %v", withDrag)
	}
	if got := BallisticImpactSpeedWithDrag(120, 7, 0, 0); math.Abs(got-noDrag) > 1e-9 {
		t.Error("zero drag should match the analytic fall")
	}
}

func TestWindDeterministicAndStationary(t *testing.T) {
	a := NewWind(3, -1, 1.5, 42)
	b := NewWind(3, -1, 1.5, 42)
	for i := 0; i < 50; i++ {
		ax, ay := a.At(float64(i) * 0.5)
		bx, by := b.At(float64(i) * 0.5)
		if ax != bx || ay != by {
			t.Fatal("same-seed winds differ")
		}
	}
	// Long-run mean close to the configured mean.
	w := NewWind(3, -1, 1.0, 7)
	var sx, sy float64
	const n = 20_000
	for i := 0; i < n; i++ {
		wx, wy := w.At(float64(i) * 0.5)
		sx += wx
		sy += wy
	}
	if math.Abs(sx/n-3) > 0.3 || math.Abs(sy/n+1) > 0.3 {
		t.Errorf("wind mean (%.2f, %.2f), want ≈(3, -1)", sx/n, sy/n)
	}
	// Nil and zero-value winds are calm.
	var calm *Wind
	if wx, wy := calm.At(1); wx != 0 || wy != 0 {
		t.Error("nil wind not calm")
	}
}

func TestParachuteDescent(t *testing.T) {
	w := NewWind(4, 0, 0, 1) // steady 4 m/s east
	dx, dy, dur, v := ParachuteDescent(120, 5.5, w, 0)
	wantDur := 120 / 5.5
	if math.Abs(dur-wantDur) > 1e-9 {
		t.Errorf("duration = %v, want %v", dur, wantDur)
	}
	if v != 5.5 {
		t.Errorf("impact speed = %v", v)
	}
	if math.Abs(dx-4*wantDur) > 0.5 {
		t.Errorf("drift X = %v, want ≈%v", dx, 4*wantDur)
	}
	if math.Abs(dy) > 0.5 {
		t.Errorf("drift Y = %v, want ≈0", dy)
	}
	// Parachute impact energy must be far below ballistic.
	if KineticEnergy(7, v) >= BallisticImpactEnergy(7, 120)/10 {
		t.Error("parachute did not reduce impact energy by an order of magnitude")
	}
}

func TestDriftBuffer(t *testing.T) {
	base := DriftBuffer(120, 5.5, 4, 0, 3)
	if math.Abs(base-4*120/5.5) > 1e-6 {
		t.Errorf("pure-mean drift buffer = %v", base)
	}
	gusty := DriftBuffer(120, 5.5, 4, 1.5, 3)
	if gusty <= base {
		t.Error("gusts must enlarge the buffer")
	}
	if DriftBuffer(0, 5.5, 4, 1, 3) != 0 {
		t.Error("zero altitude zero buffer")
	}
	// Higher deployment altitude → longer exposure → bigger buffer
	// (Table III: buffer accounts for deployment altitude).
	if DriftBuffer(240, 5.5, 4, 1, 3) <= DriftBuffer(120, 5.5, 4, 1, 3) {
		t.Error("buffer should grow with altitude")
	}
}

func TestSelectManeuverMatchesFigure1(t *testing.T) {
	tests := []struct {
		k    FailureKind
		el   bool
		want Maneuver
	}{
		{NoFailure, true, ContinueMission},
		{CommLossTemporary, true, Hover},
		{CommLossPermanent, true, ReturnToBase},
		{MotorDegraded, true, ReturnToBase},
		{NavigationLoss, true, EmergencyLanding},
		{NavigationLoss, false, FlightTermination}, // no EL → FT
		{BatteryCritical, true, EmergencyLanding},
		{EngineFailure, true, FlightTermination},
		{FlightControlFault, true, FlightTermination},
	}
	for _, tt := range tests {
		if got := SelectManeuver(tt.k, tt.el); got != tt.want {
			t.Errorf("SelectManeuver(%v, el=%v) = %v, want %v", tt.k, tt.el, got, tt.want)
		}
	}
}

func TestSwitchRunEscalatesHover(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan HealthEvent)
	decisions := make(chan Decision, 8)
	sw := &Switch{ELAvailable: true, HoverTimeoutS: 10}
	done := make(chan struct{})
	go func() {
		sw.Run(ctx, events, decisions)
		close(done)
	}()
	events <- HealthEvent{T: 0, Failure: CommLossTemporary}
	events <- HealthEvent{T: 5, Failure: CommLossTemporary}
	events <- HealthEvent{T: 11, Failure: CommLossTemporary} // past timeout
	close(events)
	<-done
	var got []Maneuver
	for d := range decisions {
		got = append(got, d.Maneuver)
	}
	if len(got) != 2 || got[0] != Hover || got[1] != ReturnToBase {
		t.Fatalf("decisions = %v, want [Hover ReturnToBase]", got)
	}
}

func TestSwitchRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	events := make(chan HealthEvent)
	decisions := make(chan Decision) // unbuffered, never drained
	sw := &Switch{ELAvailable: false}
	done := make(chan struct{})
	go func() {
		sw.Run(ctx, events, decisions)
		close(done)
	}()
	cancel()
	<-done // must terminate promptly without deadlock
}

// plannerFunc adapts a function to the LandingPlanner interface.
type plannerFunc func(s *urban.Scene, x, y float64) (float64, float64, bool)

func (f plannerFunc) PlanLanding(s *urban.Scene, x, y float64) (float64, float64, bool) {
	return f(s, x, y)
}

func testScene() *urban.Scene {
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	return urban.Generate(cfg, urban.DefaultConditions(), 77)
}

func baseMission(scene *urban.Scene) Mission {
	world := scene.Layout.WorldW
	return Mission{
		Spec:  MediDelivery(),
		Scene: scene,
		Waypoints: [][2]float64{
			{world * 0.1, world * 0.1},
			{world * 0.9, world * 0.9},
		},
		Base: [2]float64{world * 0.1, world * 0.1},
		Hour: 14,
	}
}

func TestMissionCompletesWithoutFailures(t *testing.T) {
	m := baseMission(testScene())
	out := m.Run()
	if !out.Completed || out.Impacted {
		t.Fatalf("nominal mission outcome: %+v", out)
	}
	if out.Maneuver != ContinueMission {
		t.Errorf("maneuver = %v", out.Maneuver)
	}
}

func TestMissionHoverRecovery(t *testing.T) {
	m := baseMission(testScene())
	m.Failures = []TimedFailure{{AtS: 2, Kind: CommLossTemporary, ClearAtS: 6}}
	m.HoverTimeoutS = 30
	out := m.Run()
	if !out.Completed {
		t.Fatalf("mission with transient loss should complete: %+v", out.Log)
	}
}

func TestMissionPermanentCommLossReturnsToBase(t *testing.T) {
	m := baseMission(testScene())
	m.Failures = []TimedFailure{{AtS: 3, Kind: CommLossPermanent}}
	out := m.Run()
	if !out.Completed || out.Impacted {
		t.Fatalf("RB should land at base: %+v", out.Log)
	}
	if out.Maneuver != ReturnToBase {
		t.Errorf("maneuver = %v, want RB", out.Maneuver)
	}
}

func TestMissionNavigationLossTriggersELOrFT(t *testing.T) {
	scene := testScene()
	// Planner that targets the center of the first open block, whatever its
	// kind; this scene geometry test does not need the real zone selector.
	planner := plannerFunc(func(s *urban.Scene, x, y float64) (float64, float64, bool) {
		for _, blocks := range [][]urban.RectM{s.Layout.Parks, s.Layout.Plazas, s.Layout.ParkingLots} {
			if len(blocks) > 0 {
				return blocks[0].CenterX(), blocks[0].CenterY(), true
			}
		}
		return x, y, true // land in place
	})
	withEL := baseMission(scene)
	withEL.Planner = planner
	withEL.Failures = []TimedFailure{{AtS: 3, Kind: NavigationLoss}}
	out := withEL.Run()
	if out.Maneuver != EmergencyLanding {
		t.Fatalf("maneuver = %v, want EL; log: %v", out.Maneuver, out.Log)
	}
	if !out.Impacted {
		t.Fatal("EL should end with a touchdown")
	}
	if out.ImpactEnergyJ >= BallisticImpactEnergy(withEL.Spec.MTOWKg, withEL.Spec.CruiseAltM)/5 {
		t.Errorf("EL impact energy %.0f J not parachute-like", out.ImpactEnergyJ)
	}

	withoutEL := baseMission(scene)
	withoutEL.Failures = []TimedFailure{{AtS: 3, Kind: NavigationLoss}}
	out2 := withoutEL.Run()
	if out2.Maneuver != FlightTermination {
		t.Fatalf("without planner maneuver = %v, want FT", out2.Maneuver)
	}
}

// ctxPlannerFunc adapts a function to LandingPlannerCtx; the plain
// PlanLanding form runs it under a background context.
type ctxPlannerFunc func(ctx context.Context, s *urban.Scene, x, y float64) (float64, float64, bool)

func (f ctxPlannerFunc) PlanLanding(s *urban.Scene, x, y float64) (float64, float64, bool) {
	return f(context.Background(), s, x, y)
}

func (f ctxPlannerFunc) PlanLandingCtx(ctx context.Context, s *urban.Scene, x, y float64) (float64, float64, bool) {
	return f(ctx, s, x, y)
}

func TestMissionRunCtxThreadsContextToPlanner(t *testing.T) {
	scene := testScene()
	// A ctx-honoring planner: refuses when the context is done, otherwise
	// lands in place.
	planner := ctxPlannerFunc(func(ctx context.Context, s *urban.Scene, x, y float64) (float64, float64, bool) {
		if ctx.Err() != nil {
			return 0, 0, false
		}
		return x, y, true
	})

	live := baseMission(scene)
	live.Planner = planner
	live.Failures = []TimedFailure{{AtS: 3, Kind: NavigationLoss}}
	if out := live.RunCtx(context.Background()); out.Maneuver != EmergencyLanding {
		t.Fatalf("live ctx: maneuver = %v, want EL; log: %v", out.Maneuver, out.Log)
	}

	// A cancelled mission context reaches the planner, whose refusal takes
	// the conservative flight-termination branch.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	dead := baseMission(scene)
	dead.Planner = planner
	dead.Failures = []TimedFailure{{AtS: 3, Kind: NavigationLoss}}
	if out := dead.RunCtx(cancelled); out.Maneuver != FlightTermination {
		t.Fatalf("cancelled ctx: maneuver = %v, want FT; log: %v", out.Maneuver, out.Log)
	}
}

func TestMissionPlannerFailureFallsBackToFT(t *testing.T) {
	m := baseMission(testScene())
	m.Planner = plannerFunc(func(*urban.Scene, float64, float64) (float64, float64, bool) {
		return 0, 0, false
	})
	m.Failures = []TimedFailure{{AtS: 3, Kind: NavigationLoss}}
	out := m.Run()
	if out.Maneuver != FlightTermination {
		t.Fatalf("maneuver = %v, want FT after planner failure", out.Maneuver)
	}
}

func TestMissionEngineFailureImpactsImmediately(t *testing.T) {
	m := baseMission(testScene())
	m.Failures = []TimedFailure{{AtS: 4, Kind: EngineFailure}}
	out := m.Run()
	if out.Maneuver != FlightTermination || !out.Impacted {
		t.Fatalf("engine failure outcome: %+v", out)
	}
	// FT opens the parachute: impact energy far below ballistic.
	ballistic := BallisticImpactEnergy(m.Spec.MTOWKg, m.Spec.CruiseAltM)
	if out.ImpactEnergyJ >= ballistic/5 {
		t.Errorf("FT impact %.0f J vs ballistic %.0f J: parachute missing", out.ImpactEnergyJ, ballistic)
	}
	if !out.ImpactSurface.Valid() {
		t.Error("impact surface not sampled")
	}
}

func TestMissionNoParachuteBallistic(t *testing.T) {
	m := baseMission(testScene())
	m.Spec.ParachuteSinkMS = 0 // no canopy installed
	m.Failures = []TimedFailure{{AtS: 4, Kind: EngineFailure}}
	out := m.Run()
	want := BallisticImpactEnergy(m.Spec.MTOWKg, m.Spec.CruiseAltM)
	if math.Abs(out.ImpactEnergyJ-want) > 1 {
		t.Errorf("ballistic impact = %.0f J, want %.0f", out.ImpactEnergyJ, want)
	}
	if out.Assessment.Severity < 2 {
		t.Error("ballistic urban impact should not be negligible")
	}
}

func TestMissionWindDriftsParachute(t *testing.T) {
	scene := testScene()
	m := baseMission(scene)
	m.Wind = NewWind(6, 0, 0, 3)
	m.Failures = []TimedFailure{{AtS: 4, Kind: EngineFailure}}
	out := m.Run()
	calm := baseMission(scene)
	calm.Failures = m.Failures
	outCalm := calm.Run()
	if out.ImpactX <= outCalm.ImpactX {
		t.Errorf("eastward wind should drift impact east: %v vs %v", out.ImpactX, outCalm.ImpactX)
	}
}

func TestManeuverStrings(t *testing.T) {
	for m, want := range map[Maneuver]string{
		Hover: "hovering (H)", ReturnToBase: "return-to-base (RB)",
		EmergencyLanding: "emergency landing (EL)", FlightTermination: "flight termination (FT)",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	for k := NoFailure; k <= FlightControlFault; k++ {
		if k.String() == "" {
			t.Errorf("failure %d has empty name", k)
		}
	}
}
