package nn

import (
	"math/rand"
	"runtime"
	"testing"
)

// miniMSDNet builds a small replica of the segmentation architecture —
// stem, dropout, parallel dilated branches, dropout, head, upsample — so
// the arena and split tests exercise every layer kind and both container
// types. Identical seeds build identical networks.
func miniMSDNet(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential(
		NewConv2D("stem", 3, 6, 3, 2, 1, 1, rng),
		NewBatchNorm2D("stem.bn", 6),
		&ReLU{},
		NewDropout(0.5, seed+101),
		NewParallelConcat(
			NewSequential(NewConv2D("b1", 6, 4, 3, 1, 1, 1, rng), NewBatchNorm2D("b1.bn", 4), &ReLU{}),
			NewSequential(NewConv2D("b2", 6, 4, 3, 1, 2, 2, rng), NewBatchNorm2D("b2.bn", 4), &ReLU{}),
		),
		NewDropout(0.5, seed+202),
		NewConv2D("head", 8, 5, 1, 1, 0, 1, rng),
		&Upsample2x{},
	)
}

func TestScratchReusesBuffers(t *testing.T) {
	sc := NewScratch()
	a := sc.Get(2, 3, 4)
	if a.Numel() != 24 {
		t.Fatalf("numel %d", a.Numel())
	}
	sc.Put(a)
	b := sc.Get(4, 3, 2) // same element count, different shape
	if &a.Data[0] != &b.Data[0] {
		t.Fatal("Get did not reuse the freed buffer")
	}
	if b.Shape[0] != 4 || b.Shape[1] != 3 || b.Shape[2] != 2 {
		t.Fatalf("reused shape %v", b.Shape)
	}
	if sc.Reuses() != 1 {
		t.Fatalf("reuses = %d, want 1", sc.Reuses())
	}
	c := sc.Get(2, 2) // no free buffer of this size
	if &c.Data[0] == &b.Data[0] {
		t.Fatal("distinct sizes shared a buffer")
	}
}

func TestScratchNilIsSafe(t *testing.T) {
	var sc *Scratch
	tr := sc.Get(1, 2, 3)
	if tr.Numel() != 6 {
		t.Fatalf("nil Get numel %d", tr.Numel())
	}
	sc.Put(tr) // no-op
	if sc.Reuses() != 0 {
		t.Fatal("nil Reuses not zero")
	}
}

// TestArenaForwardBitIdentical pins the whole point of the arena: an
// inference pass drawing every intermediate from a warm (dirty) arena must
// produce byte-identical outputs to a fresh-allocation pass, both with
// dropout inactive and in the reseeded Monte-Carlo mode.
func TestArenaForwardBitIdentical(t *testing.T) {
	plain := miniMSDNet(5)
	arena := miniMSDNet(5)
	sc := NewScratch()
	AttachScratch(arena, sc)
	x := randomInput([]int{1, 3, 16, 16}, 6)

	for round := 0; round < 3; round++ {
		a := plain.Forward(x, false)
		b := arena.Forward(x, false)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("round %d: eval output %d differs: %v vs %v", round, i, a.Data[i], b.Data[i])
			}
		}
		sc.Put(b)
	}
	if sc.Reuses() == 0 {
		t.Fatal("arena never reused a buffer")
	}

	for round := 0; round < 2; round++ {
		SetDropoutMode(plain, AlwaysOn)
		ReseedDropout(plain, 99)
		a := plain.Forward(x, false)
		SetDropoutMode(plain, Auto)
		SetDropoutMode(arena, AlwaysOn)
		ReseedDropout(arena, 99)
		b := arena.Forward(x, false)
		SetDropoutMode(arena, Auto)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("round %d: MC output %d differs", round, i)
			}
		}
		sc.Put(b)
	}
}

// TestArenaCutsSteadyStateAllocations asserts the arena's purpose
// quantitatively: a warm arena-backed forward allocates a small fraction of
// what a fresh-allocation forward does.
func TestArenaCutsSteadyStateAllocations(t *testing.T) {
	plain := miniMSDNet(7)
	arena := miniMSDNet(7)
	sc := NewScratch()
	AttachScratch(arena, sc)
	x := randomInput([]int{1, 3, 16, 16}, 8)
	sc.Put(arena.Forward(x, false)) // warm the free lists

	// The strict invariant: once warm, the arena never misses — no tensor
	// buffer is allocated by any further forward pass.
	misses := sc.misses
	for i := 0; i < 5; i++ {
		sc.Put(arena.Forward(x, false))
	}
	if sc.misses != misses {
		t.Fatalf("warm arena missed %d times during steady-state forwards", sc.misses-misses)
	}

	// And the aggregate effect: object counts drop to the parallelFor
	// closure noise, well below the fresh-allocation baseline.
	without := testing.AllocsPerRun(20, func() { plain.Forward(x, false) })
	with := testing.AllocsPerRun(20, func() { sc.Put(arena.Forward(x, false)) })
	if with > without/3 {
		t.Fatalf("arena forward allocates %.1f objects/run vs %.1f without — expected at least 3x fewer", with, without)
	}
}

// TestArenaTrainingBypasses pins that training passes never draw from the
// arena: Backward needs intact caches, so train=true must allocate fresh
// tensors even with an arena attached.
func TestArenaTrainingBypasses(t *testing.T) {
	net := miniMSDNet(9)
	sc := NewScratch()
	AttachScratch(net, sc)
	x := randomInput([]int{1, 3, 16, 16}, 10)
	// Inference warms the arena, then a training pass must not consume it.
	sc.Put(net.Forward(x, false))
	before := sc.gets
	out := net.Forward(x, true)
	if sc.gets != before {
		t.Fatalf("training pass drew %d buffers from the arena", sc.gets-before)
	}
	dout := out.ZerosLike()
	dout.Fill(1)
	net.Backward(dout) // must not panic on recycled caches
}

// TestConvBackwardAfterArenaInferencePanics pins the stale-cache guard: an
// arena-backed inference pass recycles the conv's input mid-chain, so a
// Backward after it must fail loudly instead of silently differentiating
// overwritten data. (Without an arena, eval-mode Forward + Backward remains
// supported — the gradient tests rely on it.)
func TestConvBackwardAfterArenaInferencePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c := NewConv2D("c", 1, 1, 3, 1, 1, 1, rng)
	sc := NewScratch()
	AttachScratch(c, sc)
	x := randomInput([]int{1, 1, 8, 8}, 20)
	out := c.Forward(x, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward after arena-backed inference forward must panic")
		}
	}()
	c.Backward(out.ZerosLike())
}

func TestAttachScratchReachesEveryLayer(t *testing.T) {
	net := miniMSDNet(11)
	sc := NewScratch()
	AttachScratch(net, sc)
	if net.sc != sc {
		t.Fatal("sequential not attached")
	}
	count := 0
	Walk(net, func(l Layer) {
		count++
		switch v := l.(type) {
		case *Conv2D:
			if v.sc != sc {
				t.Fatalf("conv %s not attached", v.W.Name)
			}
		case *BatchNorm2D:
			if v.sc != sc {
				t.Fatal("batchnorm not attached")
			}
		case *ReLU:
			if v.sc != sc {
				t.Fatal("relu not attached")
			}
		case *Dropout:
			if v.sc != sc {
				t.Fatal("dropout not attached")
			}
		case *Upsample2x:
			if v.sc != sc {
				t.Fatal("upsample not attached")
			}
		}
	})
	if count == 0 {
		t.Fatal("walk visited nothing")
	}
}

func TestSplitAtFirstDropout(t *testing.T) {
	net := miniMSDNet(13)
	prefix, suffix, ok := SplitAtFirstDropout(net)
	if !ok {
		t.Fatal("split failed on dropout-bearing net")
	}
	ps, ss := prefix.(*Sequential), suffix.(*Sequential)
	if len(ps.Layers) != 3 || len(ss.Layers) != 5 {
		t.Fatalf("split %d + %d layers, want 3 + 5", len(ps.Layers), len(ss.Layers))
	}
	if containsDropout(prefix) {
		t.Fatal("prefix contains a dropout")
	}
	if _, isDrop := ss.Layers[0].(*Dropout); !isDrop {
		t.Fatal("suffix does not start at the dropout")
	}
	// The split aliases the original layers, shares no new parameters.
	if &ps.Layers[0] == nil || ps.Layers[0] != net.Layers[0] {
		t.Fatal("prefix does not alias the original layers")
	}

	// Running prefix then suffix must equal running the full net, for the
	// same dropout stream.
	x := randomInput([]int{1, 3, 16, 16}, 14)
	SetDropoutMode(net, AlwaysOn)
	defer SetDropoutMode(net, Auto)
	ReseedDropout(net, 55)
	want := net.Forward(x, false)
	ReseedDropout(net, 55)
	stem := prefix.Forward(x, false)
	got := suffix.Forward(stem, false)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("split forward differs at %d", i)
		}
	}
}

func TestSplitAtFirstDropoutDegenerateCases(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	conv := NewConv2D("c", 1, 1, 1, 1, 0, 1, rng)
	if _, suffix, ok := SplitAtFirstDropout(conv); ok || suffix != Layer(conv) {
		t.Fatal("non-sequential should not split")
	}
	noDrop := NewSequential(NewConv2D("c", 1, 2, 3, 1, 1, 1, rng), &ReLU{})
	if _, _, ok := SplitAtFirstDropout(noDrop); ok {
		t.Fatal("dropout-free net should not split")
	}
	dropFirst := NewSequential(NewDropout(0.5, 1), NewConv2D("c", 1, 1, 1, 1, 0, 1, rng))
	if _, _, ok := SplitAtFirstDropout(dropFirst); ok {
		t.Fatal("leading dropout leaves an empty prefix; must not split")
	}
	// A dropout nested inside a container splits before the container.
	nested := NewSequential(
		&ReLU{},
		NewParallelConcat(NewSequential(NewDropout(0.5, 2), NewConv2D("n", 1, 1, 1, 1, 0, 1, rng))),
	)
	prefix, _, ok := SplitAtFirstDropout(nested)
	if !ok {
		t.Fatal("nested dropout should split")
	}
	if got := len(prefix.(*Sequential).Layers); got != 1 {
		t.Fatalf("nested split prefix has %d layers, want 1", got)
	}
}

func TestSoftmaxChannelsInPlaceMatches(t *testing.T) {
	logits := randomInput([]int{2, 5, 3, 4}, 16)
	for i := range logits.Data {
		logits.Data[i] *= 10
	}
	want := SoftmaxChannels(logits)
	mut := logits.Clone()
	got := SoftmaxChannelsInPlace(mut)
	if got != mut {
		t.Fatal("InPlace did not return its argument")
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("in-place softmax differs at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestSetParallelismCapsAndRestores(t *testing.T) {
	defer SetParallelism(0)
	max := runtime.GOMAXPROCS(0)
	SetParallelism(1)
	if got := Parallelism(); got != 1 {
		t.Fatalf("capped parallelism = %d, want 1", got)
	}
	SetParallelism(max + 100) // above GOMAXPROCS: the cap only shrinks
	if got := Parallelism(); got != max {
		t.Fatalf("over-cap parallelism = %d, want %d", got, max)
	}
	SetParallelism(-3) // negative resets
	if got := Parallelism(); got != max {
		t.Fatalf("reset parallelism = %d, want %d", got, max)
	}

	// A capped op still computes the same bits.
	rng := rand.New(rand.NewSource(17))
	c := NewConv2D("c", 2, 3, 3, 1, 1, 1, rng)
	x := randomInput([]int{2, 2, 12, 12}, 18)
	want := c.Forward(x, false)
	SetParallelism(1)
	got := c.Forward(x, false)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("capped conv differs at %d", i)
		}
	}
}

// TestDropoutReseedReusesSource pins that the allocation-free in-place
// reseed produces the same stream as rebuilding the source from scratch.
func TestDropoutReseedReusesSource(t *testing.T) {
	a := NewDropout(0.5, 1)
	b := NewDropout(0.5, 2) // different initial seed
	a.Mode, b.Mode = AlwaysOn, AlwaysOn
	x := NewTensor(1, 1, 16, 16)
	x.Fill(1)
	// Burn some of b's stream so its internal state diverges before reseed.
	b.Forward(x, false)
	a.Reseed(42)
	b.Reseed(42)
	av := a.Forward(x, false)
	bv := b.Forward(x, false)
	for i := range av.Data {
		if av.Data[i] != bv.Data[i] {
			t.Fatal("reseeded streams differ")
		}
	}
}
