package nn

import (
	"math/rand"
	"testing"
)

// benchConvForward times one forward pass of a convolution at the given
// geometry. Allocations are reported so the BENCH_nn.json trajectory tracks
// the scratch arena's steady-state behavior alongside ns/op.
func benchConvForward(b *testing.B, inC, outC, k, stride, pad, dil, h, w int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D("c", inC, outC, k, stride, pad, dil, rng)
	x := randomInput([]int{1, inC, h, w}, 2)
	// Steady-state serving shape: outputs cycle through a per-replica arena,
	// so after warmup each forward allocates O(1) bookkeeping only.
	sc := NewScratch()
	AttachScratch(c, sc)
	sc.Put(c.Forward(x, false))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Put(c.Forward(x, false))
	}
}

// BenchmarkConvForwardSmall is a dilated branch convolution at monitor-crop
// scale — the shape the Bayesian monitor pays for on every candidate zone.
func BenchmarkConvForwardSmall(b *testing.B) {
	benchConvForward(b, 20, 14, 3, 1, 2, 2, 64, 64)
}

// BenchmarkConvForwardE8Scene is the MSDnet stem at the E8 full-scene size
// (192×192, stride-2): the per-frame segmentation cost of the experiment
// fleets.
func BenchmarkConvForwardE8Scene(b *testing.B) {
	benchConvForward(b, 3, 20, 3, 2, 1, 1, 192, 192)
}

// BenchmarkConvBackward times the gradient pass (dW, dB and the dX gather)
// of a branch convolution, the training hot path.
func BenchmarkConvBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D("c", 20, 14, 3, 1, 2, 2, rng)
	x := randomInput([]int{1, 20, 48, 48}, 2)
	out := c.Forward(x, true)
	dout := out.ZerosLike()
	for i := range dout.Data {
		dout.Data[i] = rng.Float32()*2 - 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Backward(dout)
	}
}
