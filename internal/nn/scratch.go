package nn

// Scratch is a per-replica arena of reusable tensor buffers, keyed by
// element count. It exists so steady-state inference — the Engine serving
// loop, the Bayesian monitor's Monte-Carlo trials — stops allocating: every
// layer output is drawn from the arena and returned to it as soon as the
// next layer has consumed it.
//
// Get hands out buffers with uninitialized contents; this is safe because
// every layer in this package fully overwrites its output, which is also
// what keeps arena-backed forward passes bit-identical to fresh-allocation
// ones. Callers that accumulate (+=) must Zero the buffer first.
//
// A Scratch is deliberately unsynchronized: it belongs to exactly one model
// replica, and a replica is single-goroutine by contract (forward passes
// cache per-layer state). Concurrent servers give each worker its own
// replica and therefore its own arena — arenas are never shared. The race
// tests hammer N replicas of one frozen model concurrently to pin this.
type Scratch struct {
	free map[int][]*Tensor

	gets, misses int
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch {
	return &Scratch{free: make(map[int][]*Tensor)}
}

// Get returns a tensor with the given shape, reusing a free buffer of the
// same element count when one is available. The contents are NOT zeroed on
// reuse. A nil Scratch degrades to a plain allocation, so optional arenas
// need no call-site guards.
func (s *Scratch) Get(shape ...int) *Tensor {
	if s == nil {
		return NewTensor(shape...)
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	s.gets++
	if l := s.free[n]; len(l) > 0 {
		t := l[len(l)-1]
		l[len(l)-1] = nil
		s.free[n] = l[:len(l)-1]
		t.Shape = append(t.Shape[:0], shape...)
		return t
	}
	s.misses++
	return NewTensor(shape...)
}

// Put returns a buffer to the arena for reuse. The caller must not touch t
// afterwards: the next Get of the same element count may hand it to someone
// else. Put accepts tensors that did not come from Get — they simply join
// the pool. Nil Scratch and nil tensor are no-ops.
func (s *Scratch) Put(t *Tensor) {
	if s == nil || t == nil {
		return
	}
	n := len(t.Data)
	s.free[n] = append(s.free[n], t)
}

// Reuses reports how many Get calls were served from the free list — the
// steady-state metric the arena tests pin (after warmup, every Get should
// be a reuse).
func (s *Scratch) Reuses() int {
	if s == nil {
		return 0
	}
	return s.gets - s.misses
}

// allocOut returns a layer-output tensor: from the arena on inference
// passes when one is attached, freshly allocated otherwise. Training passes
// never draw from the arena — Backward needs the cached intermediates to
// stay untouched, and recycling only happens on inference chains.
func allocOut(sc *Scratch, train bool, shape ...int) *Tensor {
	if sc == nil || train {
		return NewTensor(shape...)
	}
	return sc.Get(shape...)
}

// scratchUser is implemented by primitive layers that can draw their
// outputs from a per-replica arena.
type scratchUser interface {
	setScratch(s *Scratch)
}

// AttachScratch hands every layer reachable from l the arena to allocate
// its inference outputs from. Containers both receive the arena (they
// recycle consumed intermediates into it) and forward it to their
// sub-layers. Attach one arena per model replica; never share an arena
// between replicas that run concurrently.
func AttachScratch(l Layer, s *Scratch) {
	switch v := l.(type) {
	case *Sequential:
		v.sc = s
		for _, sub := range v.Layers {
			AttachScratch(sub, s)
		}
	case *ParallelConcat:
		v.sc = s
		for _, b := range v.Branches {
			AttachScratch(b, s)
		}
	default:
		if u, ok := l.(scratchUser); ok {
			u.setScratch(s)
		}
	}
}
