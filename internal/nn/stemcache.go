package nn

import (
	"context"
	"fmt"
	"image"
)

// StemCache serves crop-sized slices of a full-frame deterministic stem so
// the Bayesian monitor can verify many candidate zones of one frame without
// recomputing the prefix per crop. It exploits two pinned properties of the
// stack: the convolution accumulates every output element in a fixed
// icc→ky→kx tap order regardless of which bounds-hoisted kernel computed it,
// and every prefix layer after the convolution is per-element (batch-norm
// inference is a per-channel affine, ReLU a pointwise clamp). Together these
// make the frame stem value at an output position bit-equal to the crop stem
// value whenever the crop's receptive field for that position lies entirely
// inside the crop.
//
// Positions whose receptive field crosses a crop edge see the crop's zero
// padding instead of frame content, so slicing would change bits there.
// CropStem recomputes that border ring by running thin input strips of the
// crop through the prefix: a strip that shares the crop's edge reproduces
// the crop's padding exactly, and the ring rows/columns taken from the strip
// never read past the strip's real data, so they too are bit-equal to a
// naive per-crop prefix pass. The stemcache fuzz target compares CropStem
// against a direct prefix forward over the crop across random geometries.
//
// A StemCache borrows its model replica's prefix layers and arena, so it is
// single-goroutine like the replica itself.
type StemCache struct {
	prefix *Sequential
	conv   *Conv2D
	sc     *Scratch

	frame *Tensor // borrowed full-frame input; owned by the caller
	stem  *Tensor // prefix(frame); owned by the cache until Release
}

// NewStemCache validates that prefix has the sliceable shape — a Sequential
// whose first layer is a Conv2D and whose remaining layers are per-element
// (BatchNorm2D, ReLU) — and returns a cache over it. ok is false when the
// shape is unsupported; callers then fall back to per-crop prefix passes,
// which trivially preserves bit-identity.
func NewStemCache(prefix Layer, sc *Scratch) (*StemCache, bool) {
	seq, isSeq := prefix.(*Sequential)
	if !isSeq || len(seq.Layers) == 0 {
		return nil, false
	}
	conv, isConv := seq.Layers[0].(*Conv2D)
	if !isConv || conv.Stride < 1 || conv.Dilation < 1 || conv.K < 1 || conv.Pad < 0 {
		return nil, false
	}
	for _, l := range seq.Layers[1:] {
		switch l.(type) {
		case *BatchNorm2D, *ReLU:
		default:
			return nil, false
		}
	}
	return &StemCache{prefix: seq, conv: conv, sc: sc}, true
}

// Prime computes and retains the full-frame stem. The frame tensor is
// borrowed for the cache's lifetime (ring strips read from it); the caller
// keeps ownership and must not recycle it before Release. A cancelled Prime
// retains nothing — the next Prime starts from scratch, so a partially
// computed stem is never observable to later crops.
func (c *StemCache) Prime(ctx context.Context, frame *Tensor) error {
	c.Release()
	out, err := ForwardCtx(ctx, c.prefix, frame, false)
	if err != nil {
		return err
	}
	c.frame, c.stem = frame, out
	return nil
}

// Primed reports whether a frame stem is currently cached.
func (c *StemCache) Primed() bool { return c.stem != nil }

// Stem returns the cached full-frame stem (nil before Prime). The tensor is
// borrowed: it stays valid until the next Prime or Release.
func (c *StemCache) Stem() *Tensor { return c.stem }

// Release returns the cached stem to the arena and drops the frame
// reference. The cache can be primed again afterwards.
func (c *StemCache) Release() {
	if c.stem != nil {
		c.sc.Put(c.stem)
	}
	c.frame, c.stem = nil, nil
}

// Reprime updates the primed frame stem in place after the borrowed frame
// tensor was mutated, recomputing only the stem outputs whose receptive
// fields overlap a changed rectangle. The caller's contract: the tensor
// passed to Prime was modified in place, and every modified element lies
// inside one of the changed rectangles (frame pixel coordinates, exclusive
// Max). Rectangles may overlap or reach outside the frame; they are clipped,
// and overlapping recomputation is idempotent.
//
// After a successful Reprime the cached stem is bit-identical to a fresh
// Prime of the mutated frame — the reprime unit and fuzz tests pin this —
// by the same argument CropStem's ring strips rest on: every recomputed
// output either reads real frame data entirely inside the recompute window,
// or reads a genuine frame edge that the window shares, where the window's
// zero padding equals the frame's bit-for-bit.
//
// A failed or cancelled Reprime releases the stem entirely (Primed reads
// false afterwards), so a partially updated stem is never observable; the
// next Prime starts from scratch.
func (c *StemCache) Reprime(ctx context.Context, changed []image.Rectangle) error {
	if c.stem == nil {
		return fmt.Errorf("nn: Reprime on an unprimed stem cache")
	}
	_, ic, fh, fw := c.frame.Dims4()
	_, oc, foh, fow := c.stem.Dims4()
	for _, r := range changed {
		r = r.Intersect(image.Rect(0, 0, fw, fh))
		if r.Empty() {
			continue
		}
		ay, okY := c.reprimeAxis(r.Min.Y, r.Max.Y, fh, foh)
		ax, okX := c.reprimeAxis(r.Min.X, r.Max.X, fw, fow)
		if !okY || !okX {
			continue // no output taps the changed pixels (stride gaps)
		}
		in := c.sc.Get(1, ic, ay.cn, ax.cn)
		for ci := 0; ci < ic; ci++ {
			for ry := 0; ry < ay.cn; ry++ {
				src := c.frame.Data[(ci*fh+ay.c0+ry)*fw+ax.c0 : (ci*fh+ay.c0+ry)*fw+ax.c0+ax.cn]
				copy(in.Data[(ci*ay.cn+ry)*ax.cn:(ci*ay.cn+ry+1)*ax.cn], src)
			}
		}
		out, err := ForwardCtx(ctx, c.prefix, in, false)
		c.sc.Put(in)
		if err != nil {
			c.Release()
			return err
		}
		_, _, soh, sow := out.Dims4()
		if ay.oHi-ay.m >= soh || ax.oHi-ax.m >= sow {
			// The window came out shorter than the outputs it must cover —
			// a geometry bug, not an input condition.
			c.sc.Put(out)
			c.Release()
			return fmt.Errorf("nn: reprime window for %v covers outputs [%d,%d]x[%d,%d] short of [%d,%d]x[%d,%d]",
				r, ay.m, ay.m+soh-1, ax.m, ax.m+sow-1, ay.oLo, ay.oHi, ax.oLo, ax.oHi)
		}
		for ci := 0; ci < oc; ci++ {
			for oy := ay.oLo; oy <= ay.oHi; oy++ {
				srcRow := out.Data[(ci*soh+oy-ay.m)*sow : (ci*soh+oy-ay.m+1)*sow]
				dstRow := c.stem.Data[(ci*foh+oy)*fow : (ci*foh+oy+1)*fow]
				copy(dstRow[ax.oLo:ax.oHi+1], srcRow[ax.oLo-ax.m:ax.oHi-ax.m+1])
			}
		}
		c.sc.Put(out)
	}
	return nil
}

// reprimeAxis is the per-dimension geometry of one changed rectangle: the
// affected stem outputs and the frame window wide enough to recompute them.
type reprimeAxis struct {
	oLo, oHi int // affected stem outputs, inclusive
	m        int // window origin on the output lattice (frame output index)
	c0, cn   int // window [c0, c0+cn) in frame input coordinates; c0 = m·s
}

// reprimeAxis derives, along one spatial dimension, which stem outputs tap
// changed inputs [lo, hi) and the stride-aligned frame window that
// recomputes them bit-faithfully: the window either contains every tap of
// every affected output as real frame data, or shares the frame edge whose
// zero padding those taps read. n is the frame extent, out the frame-stem
// extent. ok is false when no output taps the changed inputs, possible when
// the stride exceeds the kernel extent.
func (c *StemCache) reprimeAxis(lo, hi, n, out int) (reprimeAxis, bool) {
	s, p, ext := c.conv.Stride, c.conv.Pad, (c.conv.K-1)*c.conv.Dilation
	// Output o taps inputs [o·s-p, o·s-p+ext]; invert for the range
	// overlapping [lo, hi).
	oLo := 0
	if v := lo + p - ext; v > 0 {
		oLo = (v + s - 1) / s
	}
	oHi := (hi - 1 + p) / s
	if oHi > out-1 {
		oHi = out - 1
	}
	if oLo > oHi {
		return reprimeAxis{}, false
	}
	// Start ringLo outputs early so the lowest affected output's taps are
	// real window data (the same margin CropStem's interior block keeps);
	// when that runs off the frame start, the window shares the low edge.
	ringLo := (p + s - 1) / s
	m := oLo - ringLo
	if m < 0 {
		m = 0
	}
	if maxM := (n - 1) / s; m > maxM {
		m = maxM
	}
	ax := reprimeAxis{oLo: oLo, oHi: oHi, m: m, c0: m * s}
	// Wide enough for the highest affected output's last tap; clamping to
	// the frame means the window shares the high edge.
	ax.cn = (oHi-m)*s - p + ext + 1
	if ax.cn < 1 {
		ax.cn = 1
	}
	if ax.c0+ax.cn > n {
		ax.cn = n - ax.c0
	}
	return ax, true
}

// stemAxis is the per-dimension slicing geometry of one crop: which stem
// outputs can be copied from the frame stem and which edge rings must be
// recomputed from input strips.
type stemAxis struct {
	out    int // crop stem extent
	ringLo int // outputs [0, ringLo) read the crop's low-edge padding
	lastIn int // largest output whose taps are all inside the crop
}

// axisGeometry derives the slicing geometry along one spatial dimension.
// n is the crop extent, origin the crop origin in frame coordinates. ok is
// false when the crop cannot be sliced: an origin not aligned to the stride
// grid (the crop's output lattice would not coincide with the frame's) or a
// crop so small the edge rings overlap.
func (c *StemCache) axisGeometry(origin, n int) (stemAxis, bool) {
	s, p, ext := c.conv.Stride, c.conv.Pad, (c.conv.K-1)*c.conv.Dilation
	if origin%s != 0 {
		return stemAxis{}, false
	}
	span := n + 2*p - ext - 1 // ext+1 is the full kernel extent
	if span < 0 {
		return stemAxis{}, false
	}
	ax := stemAxis{out: span/s + 1}
	ax.ringLo = (p + s - 1) / s
	if n-1-ext+p < 0 {
		return stemAxis{}, false // every output reads both paddings
	}
	ax.lastIn = (n - 1 - ext + p) / s
	if ax.lastIn >= ax.out {
		ax.lastIn = ax.out - 1
	}
	if ax.ringLo > ax.lastIn {
		return stemAxis{}, false // rings overlap: nothing to slice
	}
	return ax, true
}

// lowStrip returns the input extent a low-edge ring strip needs: outputs
// [0, ringLo) tap at most s·(ringLo-1) - p + ext.
func (c *StemCache) lowStrip(ax stemAxis, n int) int {
	if ax.ringLo == 0 {
		return 0
	}
	s, p, ext := c.conv.Stride, c.conv.Pad, (c.conv.K-1)*c.conv.Dilation
	tIn := s*(ax.ringLo-1) - p + ext + 1
	if tIn < 1 {
		tIn = 1
	}
	if tIn > n {
		tIn = n
	}
	return tIn
}

// highStrip returns the strip origin for the high-edge ring: outputs
// (lastIn, out) re-emerge at strip output index lastIn+1-b0/s when the strip
// starts at s·(lastIn+1-ringLo), which keeps the strip on the stride grid and
// the taken outputs' taps inside real strip data. The origin is clamped so at
// least one input row survives (when lastIn is limited by the crop's high
// edge the unclamped origin can reach the crop extent); any smaller
// stride-aligned origin only moves taps from strip padding into real data
// that matches the crop's, so bit-identity is unaffected.
func (c *StemCache) highStrip(ax stemAxis, n int) int {
	if ax.lastIn >= ax.out-1 {
		return -1 // no high ring
	}
	m := ax.lastIn + 1 - ax.ringLo
	if max := (n - 1) / c.conv.Stride; m > max {
		m = max
	}
	if m < 0 {
		m = 0
	}
	return c.conv.Stride * m
}

// CropStem returns the prefix output for the (x0, y0, w, h) crop of the
// primed frame, bit-identical to running the prefix over the cropped input.
// The returned tensor comes from the arena; the caller must Put it back.
// ok is false — with no tensor — when the crop cannot be served from the
// cache (unsupported geometry or unprimed cache); callers then compute the
// crop stem naively.
func (c *StemCache) CropStem(ctx context.Context, x0, y0, w, h int) (*Tensor, bool, error) {
	if c.stem == nil {
		return nil, false, nil
	}
	_, ic, fh, fw := c.frame.Dims4()
	if x0 < 0 || y0 < 0 || w < 1 || h < 1 || x0+w > fw || y0+h > fh {
		panic(fmt.Sprintf("nn: crop %dx%d at (%d,%d) outside %dx%d frame", w, h, x0, y0, fw, fh))
	}
	ay, okY := c.axisGeometry(y0, h)
	ax, okX := c.axisGeometry(x0, w)
	if !okY || !okX {
		return nil, false, nil
	}
	_, oc, foh, fow := c.stem.Dims4()
	s := c.conv.Stride
	if y0/s+ay.out > foh || x0/s+ax.out > fow {
		return nil, false, nil // crop lattice exceeds the frame stem (degenerate geometry)
	}

	dst := c.sc.Get(1, oc, ay.out, ax.out)
	// Interior block: sliced straight out of the frame stem.
	for ci := 0; ci < oc; ci++ {
		srcBase := (ci*foh+y0/s)*fow + x0/s
		dstBase := ci * ay.out * ax.out
		for oy := ay.ringLo; oy <= ay.lastIn; oy++ {
			srcRow := c.stem.Data[srcBase+oy*fow : srcBase+oy*fow+ax.out]
			dstRow := dst.Data[dstBase+oy*ax.out : dstBase+(oy+1)*ax.out]
			copy(dstRow[ax.ringLo:ax.lastIn+1], srcRow[ax.ringLo:ax.lastIn+1])
		}
	}
	// Edge rings: recomputed from thin input strips that share the crop's
	// edges, so strip padding equals crop padding bit-for-bit. Horizontal
	// strips span the full crop width (covering the corners); vertical
	// strips fill only the interior rows of their columns.
	type strip struct {
		sy, sx, sh, sw     int // strip rectangle in frame coordinates
		oy0, oy1, ox0, ox1 int // taken crop-stem outputs [oy0,oy1)×[ox0,ox1)
		roff, coff         int // taken outputs start at strip output (roff, coff)
	}
	var strips []strip
	if tIn := c.lowStrip(ay, h); tIn > 0 {
		strips = append(strips, strip{sy: y0, sx: x0, sh: tIn, sw: w,
			oy0: 0, oy1: ay.ringLo, ox0: 0, ox1: ax.out})
	}
	if b0 := c.highStrip(ay, h); b0 >= 0 {
		strips = append(strips, strip{sy: y0 + b0, sx: x0, sh: h - b0, sw: w,
			oy0: ay.lastIn + 1, oy1: ay.out, ox0: 0, ox1: ax.out,
			roff: -(b0 / c.conv.Stride)})
	}
	if tIn := c.lowStrip(ax, w); tIn > 0 {
		strips = append(strips, strip{sy: y0, sx: x0, sh: h, sw: tIn,
			oy0: ay.ringLo, oy1: ay.lastIn + 1, ox0: 0, ox1: ax.ringLo})
	}
	if b0 := c.highStrip(ax, w); b0 >= 0 {
		strips = append(strips, strip{sy: y0, sx: x0 + b0, sh: h, sw: w - b0,
			oy0: ay.ringLo, oy1: ay.lastIn + 1, ox0: ax.lastIn + 1, ox1: ax.out,
			coff: -(b0 / c.conv.Stride)})
	}
	for _, st := range strips {
		if st.oy0 >= st.oy1 || st.ox0 >= st.ox1 {
			continue
		}
		in := c.sc.Get(1, ic, st.sh, st.sw)
		for ci := 0; ci < ic; ci++ {
			for ry := 0; ry < st.sh; ry++ {
				src := c.frame.Data[(ci*fh+st.sy+ry)*fw+st.sx : (ci*fh+st.sy+ry)*fw+st.sx+st.sw]
				copy(in.Data[(ci*st.sh+ry)*st.sw:(ci*st.sh+ry+1)*st.sw], src)
			}
		}
		out, err := ForwardCtx(ctx, c.prefix, in, false)
		c.sc.Put(in)
		if err != nil {
			c.sc.Put(dst)
			return nil, false, err
		}
		_, _, soh, sow := out.Dims4()
		if st.oy1+st.roff > soh || st.ox1+st.coff > sow {
			// The strip came out shorter than the ring it must cover —
			// degenerate geometry the axis checks let through; fall back.
			c.sc.Put(out)
			c.sc.Put(dst)
			return nil, false, nil
		}
		for ci := 0; ci < oc; ci++ {
			for oy := st.oy0; oy < st.oy1; oy++ {
				srcRow := out.Data[(ci*soh+oy+st.roff)*sow : (ci*soh+oy+st.roff+1)*sow]
				dstRow := dst.Data[(ci*ay.out+oy)*ax.out : (ci*ay.out+oy+1)*ax.out]
				copy(dstRow[st.ox0:st.ox1], srcRow[st.ox0+st.coff:st.ox1+st.coff])
			}
		}
		c.sc.Put(out)
	}
	return dst, true, nil
}
