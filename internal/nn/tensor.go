// Package nn is a small, dependency-free neural network substrate: float32
// tensors, 2-D convolutions with dilation, batch normalization, dropout with
// a Monte-Carlo inference mode, sequential and parallel-concat containers,
// softmax cross-entropy, SGD/Adam optimizers and parameter serialization.
//
// It substitutes for the GPU deep-learning stack the paper's MSDnet runs on.
// The API is deliberately minimal: everything the segmentation model and the
// Bayesian monitor need, nothing more.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float32
}

// NewTensor allocates a zeroed tensor with the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("nn: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Dims4 returns the NCHW dimensions of a 4-D tensor, panicking otherwise:
// layers in this package operate on image batches exclusively.
func (t *Tensor) Dims4() (n, c, h, w int) {
	if len(t.Shape) != 4 {
		panic(fmt.Sprintf("nn: expected 4-D tensor, got shape %v", t.Shape))
	}
	return t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
}

// At4 returns the element at NCHW position (n, c, y, x).
func (t *Tensor) At4(n, c, y, x int) float32 {
	return t.Data[((n*t.Shape[1]+c)*t.Shape[2]+y)*t.Shape[3]+x]
}

// Set4 writes the element at NCHW position (n, c, y, x).
func (t *Tensor) Set4(n, c, y, x int, v float32) {
	t.Data[((n*t.Shape[1]+c)*t.Shape[2]+y)*t.Shape[3]+x] = v
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// ZerosLike returns a zeroed tensor with the same shape.
func (t *Tensor) ZerosLike() *Tensor {
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// AddScaled accumulates alpha*o into t element-wise.
func (t *Tensor) AddScaled(o *Tensor, alpha float32) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("nn: AddScaled shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += alpha * v
	}
}

// SameShape reports whether the two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// HeInit fills the tensor with Kaiming-He normal values for the given
// fan-in, the standard initialization for ReLU convolution stacks.
func (t *Tensor) HeInit(fanIn int, rng *rand.Rand) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64()) * std
	}
}

// XavierInit fills the tensor with Glorot-uniform values.
func (t *Tensor) XavierInit(fanIn, fanOut int, rng *rand.Rand) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *Tensor
	Grad  *Tensor
}

// NewParam allocates a parameter and its gradient with the given shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: NewTensor(shape...), Grad: NewTensor(shape...)}
}

// Layer is one differentiable stage. Forward caches whatever Backward needs;
// Backward consumes the gradient w.r.t. its output and returns the gradient
// w.r.t. its input, accumulating parameter gradients along the way.
type Layer interface {
	Forward(x *Tensor, train bool) *Tensor
	Backward(dout *Tensor) *Tensor
	Params() []*Param
}

// Visitor visits every primitive layer in a (possibly nested) network.
type Visitor func(Layer)

// Walker is implemented by containers that hold sub-layers.
type Walker interface {
	Walk(v Visitor)
}

// Walk applies v to every primitive layer reachable from l, including l
// itself when it is primitive.
func Walk(l Layer, v Visitor) {
	if w, ok := l.(Walker); ok {
		w.Walk(v)
		return
	}
	v(l)
}
