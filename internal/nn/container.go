package nn

import "fmt"

// Sequential chains layers, feeding each output into the next.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs every layer in order.
func (s *Sequential) Forward(x *Tensor, train bool) *Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs every layer's backward pass in reverse order.
func (s *Sequential) Backward(dout *Tensor) *Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params aggregates all nested parameters in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Walk visits every nested primitive layer.
func (s *Sequential) Walk(v Visitor) {
	for _, l := range s.Layers {
		Walk(l, v)
	}
}

// ParallelConcat feeds the same input to every branch and concatenates the
// branch outputs along the channel dimension. Branches must preserve spatial
// size. This is the multi-scale fan-out of the paper's MSDnet: each branch
// is a dilated convolution stack at a different dilation rate.
type ParallelConcat struct {
	Branches []Layer

	branchC []int // channel count per branch, recorded at forward
}

// NewParallelConcat builds a parallel-concat container.
func NewParallelConcat(branches ...Layer) *ParallelConcat {
	return &ParallelConcat{Branches: branches}
}

// Forward evaluates all branches on x and concatenates channels.
func (p *ParallelConcat) Forward(x *Tensor, train bool) *Tensor {
	if len(p.Branches) == 0 {
		panic("nn: ParallelConcat with no branches")
	}
	outs := make([]*Tensor, len(p.Branches))
	// Branches run sequentially: the inner conv loops already saturate the
	// worker pool, and nesting parallelism would oversubscribe.
	for i, b := range p.Branches {
		outs[i] = b.Forward(x, train)
	}
	return p.concat(outs)
}

// concat merges branch outputs along the channel dimension, recording the
// per-branch channel counts for Backward.
func (p *ParallelConcat) concat(outs []*Tensor) *Tensor {
	n, _, h, w := outs[0].Dims4()
	p.branchC = p.branchC[:0]
	totalC := 0
	for i, o := range outs {
		on, oc, ohh, oww := o.Dims4()
		if on != n || ohh != h || oww != w {
			panic(fmt.Sprintf("nn: branch %d output %v mismatches %v", i, o.Shape, outs[0].Shape))
		}
		p.branchC = append(p.branchC, oc)
		totalC += oc
	}
	out := NewTensor(n, totalC, h, w)
	cOff := 0
	for _, o := range outs {
		oc := o.Shape[1]
		for bi := 0; bi < n; bi++ {
			src := o.Data[bi*oc*h*w : (bi+1)*oc*h*w]
			dst := out.Data[(bi*totalC+cOff)*h*w : (bi*totalC+cOff+oc)*h*w]
			copy(dst, src)
		}
		cOff += oc
	}
	return out
}

// Backward splits the gradient back per branch and sums input gradients.
func (p *ParallelConcat) Backward(dout *Tensor) *Tensor {
	n, totalC, h, w := dout.Dims4()
	var dx *Tensor
	cOff := 0
	for i, b := range p.Branches {
		oc := p.branchC[i]
		dslice := NewTensor(n, oc, h, w)
		for bi := 0; bi < n; bi++ {
			src := dout.Data[(bi*totalC+cOff)*h*w : (bi*totalC+cOff+oc)*h*w]
			dst := dslice.Data[bi*oc*h*w : (bi+1)*oc*h*w]
			copy(dst, src)
		}
		dbx := b.Backward(dslice)
		if dx == nil {
			dx = dbx
		} else {
			dx.AddScaled(dbx, 1)
		}
		cOff += oc
	}
	return dx
}

// Params aggregates all branch parameters.
func (p *ParallelConcat) Params() []*Param {
	var ps []*Param
	for _, b := range p.Branches {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// Walk visits every nested primitive layer.
func (p *ParallelConcat) Walk(v Visitor) {
	for _, b := range p.Branches {
		Walk(b, v)
	}
}

// SetDropoutMode sets the mode of every Dropout layer reachable from l.
// Switching to AlwaysOn converts a trained network into its Monte-Carlo
// Bayesian variant.
func SetDropoutMode(l Layer, mode DropoutMode) {
	Walk(l, func(prim Layer) {
		if d, ok := prim.(*Dropout); ok {
			d.Mode = mode
		}
	})
}

// ReseedDropout reseeds every Dropout layer reachable from l with
// deterministic per-layer offsets, making an MC sample sequence reproducible.
func ReseedDropout(l Layer, seed int64) {
	i := int64(0)
	Walk(l, func(prim Layer) {
		if d, ok := prim.(*Dropout); ok {
			d.Reseed(seed + i*7919)
			i++
		}
	})
}
