package nn

import "fmt"

// Sequential chains layers, feeding each output into the next.
type Sequential struct {
	Layers []Layer

	sc *Scratch
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs every layer in order. On inference passes with an arena
// attached, each intermediate is recycled as soon as the next layer has
// consumed it, so a steady-state forward allocates nothing.
func (s *Sequential) Forward(x *Tensor, train bool) *Tensor {
	in := x
	for _, l := range s.Layers {
		next := l.Forward(x, train)
		s.recycle(x, in, next, train)
		x = next
	}
	return x
}

// recycle returns a consumed intermediate to the arena — never the chain
// input (the caller owns it), never the tensor just produced, and never on
// training passes, where Backward still needs the cached intermediates.
func (s *Sequential) recycle(t, in, next *Tensor, train bool) {
	if s.sc == nil || train || t == in || t == next {
		return
	}
	s.sc.Put(t)
}

// Backward runs every layer's backward pass in reverse order.
func (s *Sequential) Backward(dout *Tensor) *Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params aggregates all nested parameters in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Walk visits every nested primitive layer.
func (s *Sequential) Walk(v Visitor) {
	for _, l := range s.Layers {
		Walk(l, v)
	}
}

// ParallelConcat feeds the same input to every branch and concatenates the
// branch outputs along the channel dimension. Branches must preserve spatial
// size. This is the multi-scale fan-out of the paper's MSDnet: each branch
// is a dilated convolution stack at a different dilation rate.
type ParallelConcat struct {
	Branches []Layer

	branchC []int // channel count per branch, recorded at forward
	sc      *Scratch
}

// NewParallelConcat builds a parallel-concat container.
func NewParallelConcat(branches ...Layer) *ParallelConcat {
	return &ParallelConcat{Branches: branches}
}

// Forward evaluates all branches on x and concatenates channels.
func (p *ParallelConcat) Forward(x *Tensor, train bool) *Tensor {
	if len(p.Branches) == 0 {
		panic("nn: ParallelConcat with no branches")
	}
	outs := make([]*Tensor, len(p.Branches))
	// Branches run sequentially: the inner conv loops already saturate the
	// worker pool, and nesting parallelism would oversubscribe.
	for i, b := range p.Branches {
		outs[i] = b.Forward(x, train)
	}
	return p.concat(outs, x, train)
}

// concat merges branch outputs along the channel dimension, recording the
// per-branch channel counts for Backward. Consumed branch outputs are
// recycled into the arena on inference passes (never the shared input x).
func (p *ParallelConcat) concat(outs []*Tensor, x *Tensor, train bool) *Tensor {
	n, _, h, w := outs[0].Dims4()
	p.branchC = p.branchC[:0]
	totalC := 0
	for i, o := range outs {
		on, oc, ohh, oww := o.Dims4()
		if on != n || ohh != h || oww != w {
			panic(fmt.Sprintf("nn: branch %d output %v mismatches %v", i, o.Shape, outs[0].Shape))
		}
		p.branchC = append(p.branchC, oc)
		totalC += oc
	}
	out := allocOut(p.sc, train, n, totalC, h, w)
	cOff := 0
	for _, o := range outs {
		oc := o.Shape[1]
		for bi := 0; bi < n; bi++ {
			src := o.Data[bi*oc*h*w : (bi+1)*oc*h*w]
			dst := out.Data[(bi*totalC+cOff)*h*w : (bi*totalC+cOff+oc)*h*w]
			copy(dst, src)
		}
		cOff += oc
		if p.sc != nil && !train && o != x {
			p.sc.Put(o)
		}
	}
	return out
}

// Backward splits the gradient back per branch and sums input gradients.
func (p *ParallelConcat) Backward(dout *Tensor) *Tensor {
	n, totalC, h, w := dout.Dims4()
	var dx *Tensor
	cOff := 0
	for i, b := range p.Branches {
		oc := p.branchC[i]
		dslice := NewTensor(n, oc, h, w)
		for bi := 0; bi < n; bi++ {
			src := dout.Data[(bi*totalC+cOff)*h*w : (bi*totalC+cOff+oc)*h*w]
			dst := dslice.Data[bi*oc*h*w : (bi+1)*oc*h*w]
			copy(dst, src)
		}
		dbx := b.Backward(dslice)
		if dx == nil {
			dx = dbx
		} else {
			dx.AddScaled(dbx, 1)
		}
		cOff += oc
	}
	return dx
}

// Params aggregates all branch parameters.
func (p *ParallelConcat) Params() []*Param {
	var ps []*Param
	for _, b := range p.Branches {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// Walk visits every nested primitive layer.
func (p *ParallelConcat) Walk(v Visitor) {
	for _, b := range p.Branches {
		Walk(b, v)
	}
}

// SplitAtFirstDropout splits a Sequential into a deterministic prefix (all
// layers strictly before the first one containing a Dropout) and the
// remaining stochastic suffix. This is the Monte-Carlo fast path: the
// Bayesian monitor computes the prefix once per verdict and replays only
// the suffix per dropout sample, which for the MSDnet stack removes
// (Samples-1) stem evaluations without changing a single output bit —
// running prefix then suffix is the same layer sequence as running l.
//
// Invariants the caller must hold:
//   - prefix and suffix alias l's layer instances (weights, caches, dropout
//     RNGs are shared — frozen clones stay frozen, SetDropoutMode and
//     ReseedDropout on l are seen by the split). Do not run l and the split
//     concurrently; they are the same single-goroutine replica.
//   - the prefix is only reusable across samples because every non-Dropout
//     layer in this package is deterministic at inference; a hypothetical
//     stochastic layer other than Dropout would break the split.
//
// ok is false — and suffix is l itself — when l is not a Sequential, when
// no layer contains a Dropout, or when the first layer already does (an
// empty prefix buys nothing).
func SplitAtFirstDropout(l Layer) (prefix, suffix Layer, ok bool) {
	s, isSeq := l.(*Sequential)
	if !isSeq {
		return nil, l, false
	}
	split := -1
	for i, sub := range s.Layers {
		if containsDropout(sub) {
			split = i
			break
		}
	}
	if split <= 0 {
		return nil, l, false
	}
	return &Sequential{Layers: s.Layers[:split:split], sc: s.sc},
		&Sequential{Layers: s.Layers[split:], sc: s.sc}, true
}

// containsDropout reports whether any primitive layer reachable from l is a
// Dropout.
func containsDropout(l Layer) bool {
	found := false
	Walk(l, func(p Layer) {
		if _, ok := p.(*Dropout); ok {
			found = true
		}
	})
	return found
}

// SetDropoutMode sets the mode of every Dropout layer reachable from l.
// Switching to AlwaysOn converts a trained network into its Monte-Carlo
// Bayesian variant.
func SetDropoutMode(l Layer, mode DropoutMode) {
	Walk(l, func(prim Layer) {
		if d, ok := prim.(*Dropout); ok {
			d.Mode = mode
		}
	})
}

// ReseedDropout reseeds every Dropout layer reachable from l with
// deterministic per-layer offsets, making an MC sample sequence reproducible.
func ReseedDropout(l Layer, seed int64) {
	i := int64(0)
	Walk(l, func(prim Layer) {
		if d, ok := prim.(*Dropout); ok {
			d.Reseed(seed + i*7919)
			i++
		}
	})
}
