package nn

import (
	"context"
	"image"
	"math/rand"
	"testing"
)

// stemPrefix builds a Conv2D→BatchNorm2D→ReLU Sequential with randomized
// weights and non-trivial batch-norm inference statistics, the shape the
// segmentation stem has after SplitAtFirstDropout.
func stemPrefix(inC, outC, k, s, p, d int, seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	conv := NewConv2D("stem", inC, outC, k, s, p, d, rng)
	for i := range conv.B.Value.Data {
		conv.B.Value.Data[i] = float32(rng.NormFloat64() * 0.1)
	}
	bn := NewBatchNorm2D("stem.bn", outC)
	for i := 0; i < outC; i++ {
		bn.RunningMean[i] = float32(rng.NormFloat64() * 0.3)
		bn.RunningVar[i] = float32(0.5 + rng.Float64())
		bn.Gamma.Value.Data[i] = float32(0.5 + rng.Float64())
		bn.Beta.Value.Data[i] = float32(rng.NormFloat64() * 0.2)
	}
	return NewSequential(conv, bn, &ReLU{})
}

func randomFrame(c, h, w int, seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := NewTensor(1, c, h, w)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

// cropTensor extracts the (x0, y0, w, h) window of a [1,C,H,W] tensor.
func cropTensor(frame *Tensor, x0, y0, w, h int) *Tensor {
	_, c, fh, fw := frame.Dims4()
	out := NewTensor(1, c, h, w)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			src := frame.Data[(ci*fh+y0+y)*fw+x0 : (ci*fh+y0+y)*fw+x0+w]
			copy(out.Data[(ci*h+y)*w:(ci*h+y+1)*w], src)
		}
	}
	return out
}

// checkCropParity primes the cache on the frame and bit-compares CropStem
// against a direct prefix forward over the extracted crop. wantCached pins
// whether the sliced fast path must serve the crop.
func checkCropParity(t *testing.T, prefix *Sequential, sc *Scratch, frame *Tensor, x0, y0, w, h int, wantCached bool) {
	t.Helper()
	cache, ok := NewStemCache(prefix, sc)
	if !ok {
		t.Fatal("NewStemCache rejected a conv/bn/relu prefix")
	}
	if err := cache.Prime(context.Background(), frame); err != nil {
		t.Fatalf("Prime: %v", err)
	}
	defer cache.Release()
	got, ok, err := cache.CropStem(context.Background(), x0, y0, w, h)
	if err != nil {
		t.Fatalf("CropStem: %v", err)
	}
	if ok != wantCached {
		t.Fatalf("CropStem at (%d,%d) %dx%d: cached=%v, want %v", x0, y0, w, h, ok, wantCached)
	}
	if !ok {
		return
	}
	defer sc.Put(got)
	want := prefix.Forward(cropTensor(frame, x0, y0, w, h), false)
	defer sc.Put(want)
	if len(got.Data) != len(want.Data) {
		t.Fatalf("shape mismatch: got %v want %v", got.Shape, want.Shape)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("crop (%d,%d) %dx%d differs at element %d: cached %v naive %v",
				x0, y0, w, h, i, got.Data[i], want.Data[i])
		}
	}
}

func TestCropStemMatchesPrefixForward(t *testing.T) {
	type geom struct {
		name       string
		k, s, p, d int
	}
	geoms := []geom{
		{"downsample-stem", 3, 2, 1, 1}, // the segmentation stem with Downsample
		{"unit-stride", 3, 1, 1, 1},     // the stem without Downsample
		{"no-pad", 3, 1, 0, 1},
		{"dilated", 3, 2, 1, 2},
		{"pointwise", 1, 1, 0, 1},
		{"wide-kernel", 5, 2, 2, 1},
	}
	const fh, fw = 36, 32
	for gi, g := range geoms {
		g := g
		t.Run(g.name, func(t *testing.T) {
			prefix := stemPrefix(2, 3, g.k, g.s, g.p, g.d, int64(100+gi))
			sc := NewScratch()
			AttachScratch(prefix, sc)
			frame := randomFrame(2, fh, fw, int64(200+gi))
			type crop struct{ x0, y0, w, h int }
			crops := []crop{
				{0, 0, fw, fh},             // whole frame
				{0, 0, 16, 16},             // low corner
				{fw - 16, fh - 16, 16, 16}, // high corner
				{g.s * 4, g.s * 3, 16, 18}, // interior, aligned
				{0, g.s * 5, fw, 14},       // full-width band
				{g.s * 2, 0, 12, fh},       // full-height band
				{fw - 14, g.s * 2, 14, 16}, // right edge
				{g.s * 3, fh - 12, 18, 12}, // bottom edge
			}
			for _, cr := range crops {
				checkCropParity(t, prefix, sc, frame, cr.x0, cr.y0, cr.w, cr.h, true)
			}
		})
	}
}

func TestCropStemFallsBackOnUnslicedGeometry(t *testing.T) {
	prefix := stemPrefix(2, 3, 3, 2, 1, 1, 11)
	sc := NewScratch()
	AttachScratch(prefix, sc)
	frame := randomFrame(2, 32, 32, 12)
	// Origin off the stride-2 lattice: the crop's output grid does not
	// coincide with the frame's, so slicing cannot be bit-faithful.
	checkCropParity(t, prefix, sc, frame, 3, 0, 16, 16, false)
	checkCropParity(t, prefix, sc, frame, 0, 5, 16, 16, false)
	// Crop so small the edge rings overlap: nothing left to slice.
	checkCropParity(t, prefix, sc, frame, 0, 0, 3, 3, false)
}

func TestCropStemRequiresPrime(t *testing.T) {
	prefix := stemPrefix(2, 3, 3, 2, 1, 1, 21)
	sc := NewScratch()
	AttachScratch(prefix, sc)
	cache, ok := NewStemCache(prefix, sc)
	if !ok {
		t.Fatal("NewStemCache rejected a conv/bn/relu prefix")
	}
	if cache.Primed() {
		t.Fatal("cache reports primed before any Prime")
	}
	if _, ok, _ := cache.CropStem(context.Background(), 0, 0, 8, 8); ok {
		t.Fatal("CropStem served a crop from an unprimed cache")
	}
}

func TestStemCachePrimeCancelRetainsNothing(t *testing.T) {
	prefix := stemPrefix(2, 3, 3, 2, 1, 1, 31)
	sc := NewScratch()
	AttachScratch(prefix, sc)
	cache, ok := NewStemCache(prefix, sc)
	if !ok {
		t.Fatal("NewStemCache rejected a conv/bn/relu prefix")
	}
	frame := randomFrame(2, 32, 32, 32)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cache.Prime(cancelled, frame); err == nil {
		t.Fatal("Prime with a cancelled context succeeded")
	}
	if cache.Primed() {
		t.Fatal("cancelled Prime left a stem observable")
	}
	if _, ok, _ := cache.CropStem(context.Background(), 0, 0, 8, 8); ok {
		t.Fatal("CropStem served a crop after a cancelled Prime")
	}
	// A later Prime on the same cache must serve bit-faithful crops: the
	// cancelled attempt retained no partial state.
	if err := cache.Prime(context.Background(), frame); err != nil {
		t.Fatalf("Prime after cancellation: %v", err)
	}
	defer cache.Release()
	got, ok, err := cache.CropStem(context.Background(), 4, 4, 16, 16)
	if err != nil || !ok {
		t.Fatalf("CropStem after recovery: ok=%v err=%v", ok, err)
	}
	defer sc.Put(got)
	want := prefix.Forward(cropTensor(frame, 4, 4, 16, 16), false)
	defer sc.Put(want)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("post-cancel crop differs at element %d", i)
		}
	}
}

func TestStemCachePrimeReplacesPreviousFrame(t *testing.T) {
	prefix := stemPrefix(2, 3, 3, 2, 1, 1, 41)
	sc := NewScratch()
	AttachScratch(prefix, sc)
	cache, ok := NewStemCache(prefix, sc)
	if !ok {
		t.Fatal("NewStemCache rejected a conv/bn/relu prefix")
	}
	a := randomFrame(2, 32, 32, 42)
	b := randomFrame(2, 32, 32, 43)
	if err := cache.Prime(context.Background(), a); err != nil {
		t.Fatalf("Prime(a): %v", err)
	}
	if err := cache.Prime(context.Background(), b); err != nil {
		t.Fatalf("Prime(b): %v", err)
	}
	defer cache.Release()
	got, ok, err := cache.CropStem(context.Background(), 8, 8, 16, 16)
	if err != nil || !ok {
		t.Fatalf("CropStem: ok=%v err=%v", ok, err)
	}
	defer sc.Put(got)
	want := prefix.Forward(cropTensor(b, 8, 8, 16, 16), false)
	defer sc.Put(want)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("crop served from the stale frame (element %d differs)", i)
		}
	}
}

func TestNewStemCacheRejectsUnsupportedPrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	conv := NewConv2D("c", 2, 3, 3, 2, 1, 1, rng)
	cases := []struct {
		name   string
		prefix Layer
	}{
		{"bare-conv", conv},
		{"empty-sequential", NewSequential()},
		{"bn-first", NewSequential(NewBatchNorm2D("bn", 2), conv)},
		{"dropout-tail", NewSequential(conv, NewDropout(0.5, 1))},
		{"nested-sequential", NewSequential(conv, NewSequential(&ReLU{}))},
	}
	for _, tc := range cases {
		if _, ok := NewStemCache(tc.prefix, NewScratch()); ok {
			t.Errorf("NewStemCache accepted unsupported prefix %q", tc.name)
		}
	}
}

// mutateRect overwrites the (x0, y0, w, h) window of a [1,C,H,W] frame with
// fresh random values across all channels.
func mutateRect(frame *Tensor, x0, y0, w, h int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	_, c, fh, fw := frame.Dims4()
	for ci := 0; ci < c; ci++ {
		for y := y0; y < y0+h; y++ {
			for x := x0; x < x0+w; x++ {
				frame.Data[(ci*fh+y)*fw+x] = float32(rng.NormFloat64())
			}
		}
	}
}

// checkReprimeParity primes on the frame, mutates it in place at the given
// rects, Reprimes, and bit-compares the cached stem against a direct prefix
// forward over the mutated frame (what a fresh Prime would compute).
func checkReprimeParity(t *testing.T, prefix *Sequential, sc *Scratch, frame *Tensor, rects []image.Rectangle, seed int64) {
	t.Helper()
	cache, ok := NewStemCache(prefix, sc)
	if !ok {
		t.Fatal("NewStemCache rejected a conv/bn/relu prefix")
	}
	if err := cache.Prime(context.Background(), frame); err != nil {
		t.Fatalf("Prime: %v", err)
	}
	defer cache.Release()
	_, _, fh, fw := frame.Dims4()
	for i, r := range rects {
		rc := r.Intersect(image.Rect(0, 0, fw, fh))
		mutateRect(frame, rc.Min.X, rc.Min.Y, rc.Dx(), rc.Dy(), seed+int64(i))
	}
	if err := cache.Reprime(context.Background(), rects); err != nil {
		t.Fatalf("Reprime(%v): %v", rects, err)
	}
	want := prefix.Forward(frame, false)
	defer sc.Put(want)
	got := cache.Stem()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("shape mismatch: got %v want %v", got.Shape, want.Shape)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("reprimed stem for %v differs at element %d: reprimed %v fresh %v",
				rects, i, got.Data[i], want.Data[i])
		}
	}
}

func TestStemReprimeMatchesFreshPrime(t *testing.T) {
	type geom struct {
		name       string
		k, s, p, d int
	}
	geoms := []geom{
		{"downsample-stem", 3, 2, 1, 1},
		{"unit-stride", 3, 1, 1, 1},
		{"no-pad", 3, 1, 0, 1},
		{"dilated", 3, 2, 1, 2},
		{"pointwise", 1, 1, 0, 1},
		{"padded-pointwise", 1, 1, 1, 1}, // pad exceeds the kernel extent
		{"wide-kernel", 5, 2, 2, 1},
		{"sparse-stride", 3, 3, 1, 1}, // stride gaps: some pixels untapped
	}
	const fh, fw = 36, 32
	for gi, g := range geoms {
		g := g
		t.Run(g.name, func(t *testing.T) {
			prefix := stemPrefix(2, 3, g.k, g.s, g.p, g.d, int64(300+gi))
			sc := NewScratch()
			AttachScratch(prefix, sc)
			cases := [][]image.Rectangle{
				{image.Rect(8, 8, 16, 16)},                                     // interior patch
				{image.Rect(0, 0, 5, 5)},                                       // low corner
				{image.Rect(fw-5, fh-5, fw, fh)},                               // high corner
				{image.Rect(0, 12, fw, 14)},                                    // full-width band
				{image.Rect(13, 0, 14, fh)},                                    // full-height sliver
				{image.Rect(7, 7, 8, 8)},                                       // single pixel
				{image.Rect(0, 0, fw, fh)},                                     // whole frame
				{image.Rect(2, 2, 9, 9), image.Rect(20, 18, 30, 30)},           // disjoint pair
				{image.Rect(4, 4, 14, 14), image.Rect(10, 10, 20, 20)},         // overlapping pair
				{image.Rect(-4, -4, 6, 6), image.Rect(fw-2, fh-2, fw+8, fh+8)}, // clipped
			}
			for ci, rects := range cases {
				frame := randomFrame(2, fh, fw, int64(400+10*gi+ci))
				checkReprimeParity(t, prefix, sc, frame, rects, int64(500+100*gi+ci))
			}
		})
	}
}

func TestStemReprimeRequiresPrime(t *testing.T) {
	prefix := stemPrefix(2, 3, 3, 2, 1, 1, 61)
	sc := NewScratch()
	AttachScratch(prefix, sc)
	cache, ok := NewStemCache(prefix, sc)
	if !ok {
		t.Fatal("NewStemCache rejected a conv/bn/relu prefix")
	}
	if err := cache.Reprime(context.Background(), []image.Rectangle{image.Rect(0, 0, 4, 4)}); err == nil {
		t.Fatal("Reprime on an unprimed cache succeeded")
	}
}

func TestStemReprimeNoChangesIsNoOp(t *testing.T) {
	prefix := stemPrefix(2, 3, 3, 2, 1, 1, 62)
	sc := NewScratch()
	AttachScratch(prefix, sc)
	frame := randomFrame(2, 32, 32, 63)
	// Empty list and fully-out-of-frame rects must leave the stem as primed.
	checkReprimeParity(t, prefix, sc, frame, nil, 64)
	checkReprimeParity(t, prefix, sc, frame,
		[]image.Rectangle{image.Rect(40, 40, 50, 50), image.Rect(3, 3, 3, 9)}, 65)
}

func TestStemReprimeCancelReleasesStem(t *testing.T) {
	prefix := stemPrefix(2, 3, 3, 2, 1, 1, 71)
	sc := NewScratch()
	AttachScratch(prefix, sc)
	cache, ok := NewStemCache(prefix, sc)
	if !ok {
		t.Fatal("NewStemCache rejected a conv/bn/relu prefix")
	}
	frame := randomFrame(2, 32, 32, 72)
	if err := cache.Prime(context.Background(), frame); err != nil {
		t.Fatalf("Prime: %v", err)
	}
	mutateRect(frame, 4, 4, 8, 8, 73)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cache.Reprime(cancelled, []image.Rectangle{image.Rect(4, 4, 12, 12)}); err == nil {
		t.Fatal("Reprime with a cancelled context succeeded")
	}
	if cache.Primed() {
		t.Fatal("cancelled Reprime left a (partially updated) stem observable")
	}
	// The next Prime must start clean and serve bit-faithful crops.
	if err := cache.Prime(context.Background(), frame); err != nil {
		t.Fatalf("Prime after cancelled Reprime: %v", err)
	}
	defer cache.Release()
	got, ok, err := cache.CropStem(context.Background(), 4, 4, 16, 16)
	if err != nil || !ok {
		t.Fatalf("CropStem after recovery: ok=%v err=%v", ok, err)
	}
	defer sc.Put(got)
	want := prefix.Forward(cropTensor(frame, 4, 4, 16, 16), false)
	defer sc.Put(want)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("post-cancel crop differs at element %d", i)
		}
	}
}

// FuzzStemReprimeMatchesPrime drives random conv geometries, frames and
// changed rectangles through the temporal reprime path and bit-compares the
// updated stem against a direct prefix forward over the mutated frame.
func FuzzStemReprimeMatchesPrime(f *testing.F) {
	f.Add(int64(1), 3, 2, 1, 1, 36, 32, 4, 6, 16, 18)
	f.Add(int64(2), 3, 1, 1, 1, 24, 24, 0, 0, 24, 24)
	f.Add(int64(3), 1, 1, 0, 1, 20, 28, 7, 3, 9, 11)
	f.Add(int64(4), 5, 2, 2, 1, 40, 36, 10, 8, 20, 22)
	f.Add(int64(5), 3, 3, 1, 2, 33, 30, 3, 6, 15, 12)
	f.Add(int64(6), 1, 1, 2, 1, 16, 16, 5, 5, 1, 1)
	f.Fuzz(func(t *testing.T, seed int64, k, s, p, d, fh, fw, y0, x0, h, w int) {
		abs := func(v int) int {
			if v < 0 {
				return -v
			}
			return v
		}
		k = 1 + abs(k)%4
		s = 1 + abs(s)%3
		p = abs(p) % 3
		d = 1 + abs(d)%2
		fh = 10 + abs(fh)%30
		fw = 10 + abs(fw)%30
		if ext := (k-1)*d + 1; fh < ext || fw < ext {
			t.Skip("frame smaller than the kernel extent")
		}
		h = 1 + abs(h)%fh
		w = 1 + abs(w)%fw
		y0 = abs(y0) % (fh - h + 1)
		x0 = abs(x0) % (fw - w + 1)

		prefix := stemPrefix(2, 3, k, s, p, d, seed)
		sc := NewScratch()
		AttachScratch(prefix, sc)
		frame := randomFrame(2, fh, fw, seed+1)
		checkReprimeParity(t, prefix, sc, frame,
			[]image.Rectangle{image.Rect(x0, y0, x0+w, y0+h)}, seed+2)
	})
}

// FuzzCropStemMatchesPrefix drives random conv geometries, frames and crop
// windows through the stem cache and bit-compares every cache-served crop
// against a direct prefix forward over the extracted crop.
func FuzzCropStemMatchesPrefix(f *testing.F) {
	f.Add(int64(1), 3, 2, 1, 1, 36, 32, 4, 6, 16, 18)
	f.Add(int64(2), 3, 1, 1, 1, 24, 24, 0, 0, 24, 24)
	f.Add(int64(3), 1, 1, 0, 1, 20, 28, 7, 3, 9, 11)
	f.Add(int64(4), 5, 2, 2, 1, 40, 36, 10, 8, 20, 22)
	f.Add(int64(5), 3, 3, 1, 2, 33, 30, 3, 6, 15, 12)
	f.Fuzz(func(t *testing.T, seed int64, k, s, p, d, fh, fw, y0, x0, h, w int) {
		abs := func(v int) int {
			if v < 0 {
				return -v
			}
			return v
		}
		k = 1 + abs(k)%4
		s = 1 + abs(s)%3
		p = abs(p) % 3
		d = 1 + abs(d)%2
		fh = 10 + abs(fh)%30
		fw = 10 + abs(fw)%30
		if ext := (k-1)*d + 1; fh < ext || fw < ext {
			t.Skip("frame smaller than the kernel extent")
		}
		h = 1 + abs(h)%fh
		w = 1 + abs(w)%fw
		y0 = abs(y0) % (fh - h + 1)
		x0 = abs(x0) % (fw - w + 1)

		prefix := stemPrefix(2, 3, k, s, p, d, seed)
		sc := NewScratch()
		AttachScratch(prefix, sc)
		frame := randomFrame(2, fh, fw, seed+1)
		cache, ok := NewStemCache(prefix, sc)
		if !ok {
			t.Fatal("NewStemCache rejected a conv/bn/relu prefix")
		}
		if err := cache.Prime(context.Background(), frame); err != nil {
			t.Fatalf("Prime: %v", err)
		}
		defer cache.Release()
		got, ok, err := cache.CropStem(context.Background(), x0, y0, w, h)
		if err != nil {
			t.Fatalf("CropStem: %v", err)
		}
		if !ok {
			return // unsliceable geometry: callers fall back to the naive path
		}
		defer sc.Put(got)
		want := prefix.Forward(cropTensor(frame, x0, y0, w, h), false)
		defer sc.Put(want)
		if len(got.Data) != len(want.Data) {
			t.Fatalf("shape mismatch: got %v want %v", got.Shape, want.Shape)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("k=%d s=%d p=%d d=%d frame %dx%d crop (%d,%d) %dx%d: element %d cached %v naive %v",
					k, s, p, d, fw, fh, x0, y0, w, h, i, got.Data[i], want.Data[i])
			}
		}
	})
}
