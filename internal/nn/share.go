package nn

import "fmt"

// ShareParams aliases dst's parameter tensors — and the running statistics
// of its batch-norm layers — onto src's, so the two networks read the same
// weight memory while keeping private per-layer forward caches (ReLU masks,
// dropout RNGs, batch-norm scratch). This is what makes a replica pool
// memory-cheap: N workers share one copy of the parameters instead of
// paying N× the model size.
//
// The resulting pair is only safe under a frozen-weights invariant: nothing
// may write to the shared tensors while either network is in use. Training
// (optimizer steps, batch-norm running-stat updates under train=true)
// violates it; inference — including Monte-Carlo dropout, whose
// stochasticity lives in the private dropout layers — does not.
//
// Both networks must have identical architecture: parameter count, order
// and shapes are verified, as is the batch-norm layer count.
func ShareParams(dst, src Layer) error {
	sp, dp := src.Params(), dst.Params()
	if len(sp) != len(dp) {
		return fmt.Errorf("nn: sharing params between networks with %d vs %d parameters", len(dp), len(sp))
	}
	for i := range dp {
		if !equalShape(dp[i].Value.Shape, sp[i].Value.Shape) {
			return fmt.Errorf("nn: parameter %q shape %v vs %q shape %v",
				dp[i].Name, dp[i].Value.Shape, sp[i].Name, sp[i].Value.Shape)
		}
		dp[i].Value = sp[i].Value
	}
	var sbn, dbn []*BatchNorm2D
	Walk(src, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			sbn = append(sbn, bn)
		}
	})
	Walk(dst, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			dbn = append(dbn, bn)
		}
	})
	if len(sbn) != len(dbn) {
		return fmt.Errorf("nn: sharing batch-norm stats between networks with %d vs %d layers", len(dbn), len(sbn))
	}
	for i := range dbn {
		if dbn[i].C != sbn[i].C {
			return fmt.Errorf("nn: batch-norm %d channels %d vs %d", i, dbn[i].C, sbn[i].C)
		}
		dbn[i].RunningMean = sbn[i].RunningMean
		dbn[i].RunningVar = sbn[i].RunningVar
	}
	return nil
}

func equalShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SharesParams reports whether a and b read the same parameter memory —
// the pointer-equality check behind the replica-pool memory guarantee.
func SharesParams(a, b Layer) bool {
	ap, bp := a.Params(), b.Params()
	if len(ap) != len(bp) || len(ap) == 0 {
		return false
	}
	for i := range ap {
		if ap[i].Value != bp[i].Value {
			return false
		}
	}
	return true
}
