package nn

import "context"

// ContextForwarder is implemented by containers whose forward pass can be
// interrupted between sub-layers. Primitive layers stay oblivious to
// contexts: one convolution is the cancellation granularity, which keeps
// the hot loops branch-free while still bounding the latency of a cancelled
// request to a single layer's work.
type ContextForwarder interface {
	ForwardCtx(ctx context.Context, x *Tensor, train bool) (*Tensor, error)
}

// ForwardCtx runs a forward pass through l, honoring ctx between the layers
// of any container along the way. It returns ctx's error as soon as the
// context is done; the partially-computed activations are discarded.
func ForwardCtx(ctx context.Context, l Layer, x *Tensor, train bool) (*Tensor, error) {
	if cf, ok := l.(ContextForwarder); ok {
		return cf.ForwardCtx(ctx, x, train)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Forward(x, train), nil
}

// ForwardCtx implements ContextForwarder: the context is checked before
// every layer in the chain. Intermediates are recycled exactly like
// Forward; on cancellation the last intermediate is simply left to the
// garbage collector.
func (s *Sequential) ForwardCtx(ctx context.Context, x *Tensor, train bool) (*Tensor, error) {
	in := x
	for _, l := range s.Layers {
		next, err := ForwardCtx(ctx, l, x, train)
		if err != nil {
			return nil, err
		}
		s.recycle(x, in, next, train)
		x = next
	}
	return x, nil
}

// ForwardCtx implements ContextForwarder: each branch runs through the
// ctx-aware path (so a branch that is itself a container cancels mid-branch)
// and the surviving outputs are concatenated exactly like Forward.
func (p *ParallelConcat) ForwardCtx(ctx context.Context, x *Tensor, train bool) (*Tensor, error) {
	if len(p.Branches) == 0 {
		panic("nn: ParallelConcat with no branches")
	}
	outs := make([]*Tensor, len(p.Branches))
	for i, b := range p.Branches {
		var err error
		if outs[i], err = ForwardCtx(ctx, b, x, train); err != nil {
			return nil, err
		}
	}
	return p.concat(outs, x, train), nil
}
