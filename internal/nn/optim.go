package nn

import "math"

// Optimizer updates parameters from accumulated gradients and clears them.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum and optional
// decoupled weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param][]float32
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float32)}
}

// Step applies one update and zeroes the gradients.
func (o *SGD) Step(params []*Param) {
	lr := float32(o.LR)
	mom := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = make([]float32, len(p.Value.Data))
			o.velocity[p] = v
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i]
			if wd != 0 {
				g += wd * p.Value.Data[i]
			}
			v[i] = mom*v[i] + g
			p.Value.Data[i] -= lr * v[i]
			p.Grad.Data[i] = 0
		}
	}
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*Param][]float32
	v map[*Param][]float32
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float32),
		v: make(map[*Param][]float32),
	}
}

// Step applies one update and zeroes the gradients.
func (o *Adam) Step(params []*Param) {
	o.t++
	b1 := float32(o.Beta1)
	b2 := float32(o.Beta2)
	lr := o.LR * math.Sqrt(1-math.Pow(o.Beta2, float64(o.t))) / (1 - math.Pow(o.Beta1, float64(o.t)))
	wd := float32(o.WeightDecay)
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float32, len(p.Value.Data))
			v := make([]float32, len(p.Value.Data))
			o.m[p], o.v[p] = m, v
		}
		v := o.v[p]
		for i := range p.Value.Data {
			g := p.Grad.Data[i]
			if wd != 0 {
				g += wd * p.Value.Data[i]
			}
			m[i] = b1*m[i] + (1-b1)*g
			v[i] = b2*v[i] + (1-b2)*g*g
			p.Value.Data[i] -= float32(lr) * m[i] / (float32(math.Sqrt(float64(v[i]))) + float32(o.Eps))
			p.Grad.Data[i] = 0
		}
	}
}
