package nn

import (
	"math/rand"
	"testing"
)

// convRefForward is the seed implementation of Conv2D.Forward — the naive
// six-deep loop with per-element bounds checks — kept verbatim as the
// bit-exactness oracle for the hoisted interior/border fast path.
func convRefForward(c *Conv2D, x *Tensor) *Tensor {
	n, _, h, w := x.Dims4()
	oh, ow := c.OutSize(h, w)
	out := NewTensor(n, c.OutC, oh, ow)
	wdat := c.W.Value.Data
	bdat := c.B.Value.Data
	for bi := 0; bi < n; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			bias := bdat[oc]
			for oy := 0; oy < oh; oy++ {
				outRow := out.Data[((bi*c.OutC+oc)*oh+oy)*ow : ((bi*c.OutC+oc)*oh+oy+1)*ow]
				for ox := 0; ox < ow; ox++ {
					sum := bias
					for icc := 0; icc < c.InC; icc++ {
						wBase := ((oc*c.InC + icc) * c.K) * c.K
						xBase := (bi*c.InC + icc) * h * w
						for ky := 0; ky < c.K; ky++ {
							iy := oy*c.Stride - c.Pad + ky*c.Dilation
							if iy < 0 || iy >= h {
								continue
							}
							xRow := xBase + iy*w
							wRow := wBase + ky*c.K
							for kx := 0; kx < c.K; kx++ {
								ix := ox*c.Stride - c.Pad + kx*c.Dilation
								if ix < 0 || ix >= w {
									continue
								}
								sum += wdat[wRow+kx] * x.Data[xRow+ix]
							}
						}
					}
					outRow[ox] = sum
				}
			}
		}
	}
	return out
}

// convRefBackward is the seed gradient pass: naive dB/dW accumulation and
// the checked dX gather, in the reference accumulation order.
func convRefBackward(c *Conv2D, x, dout *Tensor) (dx *Tensor, dW, dB []float32) {
	n, _, h, w := x.Dims4()
	_, _, oh, ow := dout.Dims4()
	dx = x.ZerosLike()
	dW = make([]float32, len(c.W.Value.Data))
	dB = make([]float32, c.OutC)
	wdat := c.W.Value.Data

	for oc := 0; oc < c.OutC; oc++ {
		var db float32
		for bi := 0; bi < n; bi++ {
			base := (bi*c.OutC + oc) * oh * ow
			for i := 0; i < oh*ow; i++ {
				db += dout.Data[base+i]
			}
		}
		dB[oc] += db
		for icc := 0; icc < c.InC; icc++ {
			for ky := 0; ky < c.K; ky++ {
				for kx := 0; kx < c.K; kx++ {
					var dw float32
					for bi := 0; bi < n; bi++ {
						doutBase := (bi*c.OutC + oc) * oh * ow
						xBase := (bi*c.InC + icc) * h * w
						for oy := 0; oy < oh; oy++ {
							iy := oy*c.Stride - c.Pad + ky*c.Dilation
							if iy < 0 || iy >= h {
								continue
							}
							dRow := doutBase + oy*ow
							xRow := xBase + iy*w
							for ox := 0; ox < ow; ox++ {
								ix := ox*c.Stride - c.Pad + kx*c.Dilation
								if ix < 0 || ix >= w {
									continue
								}
								dw += dout.Data[dRow+ox] * x.Data[xRow+ix]
							}
						}
					}
					dW[((oc*c.InC+icc)*c.K+ky)*c.K+kx] += dw
				}
			}
		}
	}

	for bi := 0; bi < n; bi++ {
		for icc := 0; icc < c.InC; icc++ {
			dxBase := (bi*c.InC + icc) * h * w
			for iy := 0; iy < h; iy++ {
				for ix := 0; ix < w; ix++ {
					var acc float32
					for ky := 0; ky < c.K; ky++ {
						ny := iy + c.Pad - ky*c.Dilation
						if ny < 0 || ny%c.Stride != 0 {
							continue
						}
						oy := ny / c.Stride
						if oy >= oh {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							nx := ix + c.Pad - kx*c.Dilation
							if nx < 0 || nx%c.Stride != 0 {
								continue
							}
							ox := nx / c.Stride
							if ox >= ow {
								continue
							}
							for oc := 0; oc < c.OutC; oc++ {
								acc += wdat[((oc*c.InC+icc)*c.K+ky)*c.K+kx] *
									dout.Data[((bi*c.OutC+oc)*oh+oy)*ow+ox]
							}
						}
					}
					dx.Data[dxBase+iy*w+ix] = acc
				}
			}
		}
	}
	return dx, dW, dB
}

// convCase builds a conv and a random input that produce a positive output
// size, or ok=false when the geometry is degenerate.
func convCase(t testing.TB, inC, outC, k, stride, pad, dil, n, h, w int, seed int64) (*Conv2D, *Tensor, bool) {
	t.Helper()
	if k < 1 || stride < 1 || dil < 1 || pad < 0 || h < 1 || w < 1 {
		return nil, nil, false
	}
	rng := rand.New(rand.NewSource(seed))
	c := NewConv2D("c", inC, outC, k, stride, pad, dil, rng)
	if oh, ow := c.OutSize(h, w); oh <= 0 || ow <= 0 {
		return nil, nil, false
	}
	x := randomInput([]int{n, inC, h, w}, seed+1)
	return c, x, true
}

func assertSameBits(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, reference %v", name, i, got[i], want[i])
		}
	}
}

// TestConvForwardMatchesReference pins the hoisted fast path bit-identical
// to the naive reference over a stride/pad/dilation sweep with randomized
// spatial sizes — including shapes whose rows are entirely border, entirely
// interior, or mixed.
func TestConvForwardMatchesReference(t *testing.T) {
	cases := []struct{ k, stride, pad, dil int }{
		{1, 1, 0, 1}, {1, 1, 2, 1}, {2, 1, 1, 1}, {3, 1, 0, 1},
		{3, 1, 1, 1}, {3, 1, 2, 2}, {3, 1, 4, 4}, {3, 2, 1, 1},
		{3, 2, 2, 2}, {3, 3, 1, 1}, {4, 2, 3, 3}, {5, 1, 2, 1},
		{5, 2, 4, 2}, {5, 1, 6, 3}, {3, 1, 5, 1},
	}
	rng := rand.New(rand.NewSource(20240501))
	for _, tc := range cases {
		for trial := 0; trial < 4; trial++ {
			h, w := 1+rng.Intn(24), 1+rng.Intn(24)
			n := 1 + rng.Intn(2)
			seed := rng.Int63()
			c, x, ok := convCase(t, 1+rng.Intn(3), 1+rng.Intn(4), tc.k, tc.stride, tc.pad, tc.dil, n, h, w, seed)
			if !ok {
				continue
			}
			got := c.Forward(x, false)
			want := convRefForward(c, x)
			if !got.SameShape(want) {
				t.Fatalf("k=%d s=%d p=%d d=%d h=%d w=%d: shape %v vs %v",
					tc.k, tc.stride, tc.pad, tc.dil, h, w, got.Shape, want.Shape)
			}
			t.Run("", func(t *testing.T) {
				assertSameBits(t, "forward", got.Data, want.Data)
			})
		}
	}
}

// TestConvBackwardMatchesReference pins the hoisted dW/dB/dX gathers
// bit-identical to the naive reference gradients.
func TestConvBackwardMatchesReference(t *testing.T) {
	cases := []struct{ k, stride, pad, dil, h, w int }{
		{3, 1, 1, 1, 9, 11}, {3, 1, 2, 2, 12, 8}, {3, 2, 1, 1, 10, 10},
		{3, 2, 2, 2, 11, 9}, {1, 1, 0, 1, 6, 6}, {5, 1, 2, 1, 13, 7},
		{5, 2, 4, 2, 14, 14}, {2, 1, 1, 1, 7, 9}, {4, 3, 3, 2, 15, 12},
	}
	for i, tc := range cases {
		c, x, ok := convCase(t, 2, 3, tc.k, tc.stride, tc.pad, tc.dil, 2, tc.h, tc.w, int64(1000+i))
		if !ok {
			t.Fatalf("case %d degenerate", i)
		}
		out := c.Forward(x, true)
		dout := out.ZerosLike()
		rng := rand.New(rand.NewSource(int64(2000 + i)))
		for j := range dout.Data {
			dout.Data[j] = rng.Float32()*2 - 1
		}
		dx := c.Backward(dout)
		wantDx, wantDW, wantDB := convRefBackward(c, x, dout)
		assertSameBits(t, "dX", dx.Data, wantDx.Data)
		assertSameBits(t, "dW", c.W.Grad.Data, wantDW)
		assertSameBits(t, "dB", c.B.Grad.Data, wantDB)
	}
}

// FuzzConvForwardMatchesReference fuzzes the geometry space; every valid
// shape must match the reference bit-for-bit.
func FuzzConvForwardMatchesReference(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(1), uint8(1), uint8(8), uint8(8), int64(1))
	f.Add(uint8(3), uint8(2), uint8(2), uint8(2), uint8(16), uint8(9), int64(2))
	f.Add(uint8(5), uint8(1), uint8(4), uint8(3), uint8(12), uint8(20), int64(3))
	f.Add(uint8(1), uint8(3), uint8(0), uint8(1), uint8(5), uint8(5), int64(4))
	f.Add(uint8(4), uint8(2), uint8(5), uint8(2), uint8(7), uint8(15), int64(5))
	f.Fuzz(func(t *testing.T, k, stride, pad, dil, h, w uint8, seed int64) {
		c, x, ok := convCase(t, 2, 2, int(k%6), 1+int(stride%3), int(pad%7), 1+int(dil%4),
			1, 1+int(h%20), 1+int(w%20), seed)
		if !ok {
			t.Skip("degenerate geometry")
		}
		got := c.Forward(x, false)
		want := convRefForward(c, x)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("k=%d s=%d p=%d d=%d %dx%d: element %d = %v, reference %v",
					c.K, c.Stride, c.Pad, c.Dilation, x.Shape[2], x.Shape[3], i, got.Data[i], want.Data[i])
			}
		}
	})
}
