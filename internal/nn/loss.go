package nn

import (
	"fmt"
	"math"
)

// SoftmaxChannels applies a channel-wise softmax at every spatial location
// of a 4-D logits tensor, producing per-pixel class probabilities.
func SoftmaxChannels(logits *Tensor) *Tensor {
	out := logits.ZerosLike()
	softmaxChannelsInto(out, logits)
	return out
}

// SoftmaxChannelsInPlace overwrites a logits tensor with its channel-wise
// softmax and returns it. The values are bit-identical to SoftmaxChannels —
// each element of the column is read before it is written — but no output
// tensor is allocated, which is what keeps the Monte-Carlo monitor loop
// allocation-free: the network output buffer becomes the probability buffer
// and returns to the arena after accumulation.
func SoftmaxChannelsInPlace(logits *Tensor) *Tensor {
	softmaxChannelsInto(logits, logits)
	return logits
}

// softmaxChannelsInto computes the channel softmax of logits into out,
// which may alias logits: within one (bi, y, x) column every logit is read
// before its slot in out is written, and columns are independent.
func softmaxChannelsInto(out, logits *Tensor) {
	n, c, h, w := logits.Dims4()
	parallelFor(n*h, func(job int) {
		bi, y := job/h, job%h
		for x := 0; x < w; x++ {
			// max for numerical stability
			maxV := float32(math.Inf(-1))
			for ci := 0; ci < c; ci++ {
				v := logits.Data[((bi*c+ci)*h+y)*w+x]
				if v > maxV {
					maxV = v
				}
			}
			var sum float32
			for ci := 0; ci < c; ci++ {
				e := float32(math.Exp(float64(logits.Data[((bi*c+ci)*h+y)*w+x] - maxV)))
				out.Data[((bi*c+ci)*h+y)*w+x] = e
				sum += e
			}
			inv := 1 / sum
			for ci := 0; ci < c; ci++ {
				out.Data[((bi*c+ci)*h+y)*w+x] *= inv
			}
		}
	})
}

// ArgmaxChannels returns the per-pixel argmax class of a 4-D scores tensor
// as one int slice per batch element (row-major h*w).
func ArgmaxChannels(scores *Tensor) [][]int {
	n, c, h, w := scores.Dims4()
	out := make([][]int, n)
	for bi := 0; bi < n; bi++ {
		out[bi] = make([]int, h*w)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				best, bestV := 0, scores.At4(bi, 0, y, x)
				for ci := 1; ci < c; ci++ {
					if v := scores.At4(bi, ci, y, x); v > bestV {
						best, bestV = ci, v
					}
				}
				out[bi][y*w+x] = best
			}
		}
	}
	return out
}

// CrossEntropyLoss computes the mean per-pixel softmax cross entropy between
// logits [N,C,H,W] and integer targets [N][H*W], with optional per-class
// weights (nil = uniform). It returns the scalar loss and the gradient
// w.r.t. the logits, fused for numerical stability.
func CrossEntropyLoss(logits *Tensor, targets [][]int, classWeights []float32) (float64, *Tensor) {
	n, c, h, w := logits.Dims4()
	if len(targets) != n {
		panic(fmt.Sprintf("nn: %d targets for batch of %d", len(targets), n))
	}
	probs := SoftmaxChannels(logits)
	grad := logits.ZerosLike()

	var totalLoss float64
	var totalWeight float64
	// First pass: accumulate loss and total weight (serial: cheap).
	for bi := 0; bi < n; bi++ {
		if len(targets[bi]) != h*w {
			panic(fmt.Sprintf("nn: target %d has %d labels for %d pixels", bi, len(targets[bi]), h*w))
		}
		for i := 0; i < h*w; i++ {
			t := targets[bi][i]
			if t < 0 || t >= c {
				panic(fmt.Sprintf("nn: target class %d outside [0,%d)", t, c))
			}
			wgt := float64(1)
			if classWeights != nil {
				wgt = float64(classWeights[t])
			}
			y, x := i/w, i%w
			p := float64(probs.At4(bi, t, y, x))
			if p < 1e-12 {
				p = 1e-12
			}
			totalLoss += -wgt * math.Log(p)
			totalWeight += wgt
		}
	}
	if totalWeight == 0 {
		return 0, grad
	}
	invTW := float32(1 / totalWeight)

	// Second pass: gradient = weight * (softmax - onehot) / totalWeight.
	parallelFor(n, func(bi int) {
		for i := 0; i < h*w; i++ {
			t := targets[bi][i]
			wgt := float32(1)
			if classWeights != nil {
				wgt = classWeights[t]
			}
			y, x := i/w, i%w
			for ci := 0; ci < c; ci++ {
				g := probs.At4(bi, ci, y, x)
				if ci == t {
					g -= 1
				}
				grad.Set4(bi, ci, y, x, g*wgt*invTW)
			}
		}
	})
	return totalLoss / totalWeight, grad
}
