package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericGradCheck compares the analytic input gradient of a layer against
// central finite differences of the scalar objective sum(forward(x) ⊙ R).
func numericGradCheck(t *testing.T, layer Layer, x *Tensor, train bool, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := layer.Forward(x, train)
	r := out.ZerosLike()
	for i := range r.Data {
		r.Data[i] = rng.Float32()*2 - 1
	}
	dx := layer.Backward(r)

	const eps = 1e-2
	for _, idx := range sampleIndices(len(x.Data), 24, rng) {
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		up := objective(layer.Forward(x, train), r)
		x.Data[idx] = orig - eps
		down := objective(layer.Forward(x, train), r)
		x.Data[idx] = orig
		want := (up - down) / (2 * eps)
		got := float64(dx.Data[idx])
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Errorf("input grad[%d] = %v, numeric %v", idx, got, want)
		}
	}
	// Re-establish the cache for parameter checks, zeroing accumulated
	// gradients from the first backward pass.
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	layer.Forward(x, train)
	layer.Backward(r)
	for _, p := range layer.Params() {
		grad := append([]float32(nil), p.Grad.Data...)
		for _, idx := range sampleIndices(len(p.Value.Data), 12, rng) {
			orig := p.Value.Data[idx]
			p.Value.Data[idx] = orig + eps
			up := objective(layer.Forward(x, train), r)
			p.Value.Data[idx] = orig - eps
			down := objective(layer.Forward(x, train), r)
			p.Value.Data[idx] = orig
			want := (up - down) / (2 * eps)
			got := float64(grad[idx])
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Errorf("param %s grad[%d] = %v, numeric %v", p.Name, idx, got, want)
			}
		}
		p.Grad.Zero()
	}
}

func objective(out, r *Tensor) float64 {
	var s float64
	for i := range out.Data {
		s += float64(out.Data[i] * r.Data[i])
	}
	return s
}

func sampleIndices(n, k int, rng *rand.Rand) []int {
	if k > n {
		k = n
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

func randomInput(shape []int, seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := NewTensor(shape...)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	return x
}

func TestConv2DGradients(t *testing.T) {
	tests := []struct {
		name                           string
		inC, outC, k, stride, pad, dil int
		h, w                           int
	}{
		{"3x3_same", 2, 3, 3, 1, 1, 1, 6, 7},
		{"dilated2", 2, 2, 3, 1, 2, 2, 8, 8},
		{"dilated4", 1, 2, 3, 1, 4, 4, 11, 11},
		{"stride2", 2, 3, 3, 2, 1, 1, 8, 8},
		{"1x1", 4, 2, 1, 1, 0, 1, 5, 5},
		{"stride2_dilated2", 1, 2, 3, 2, 2, 2, 9, 9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			conv := NewConv2D("c", tt.inC, tt.outC, tt.k, tt.stride, tt.pad, tt.dil, rng)
			x := randomInput([]int{2, tt.inC, tt.h, tt.w}, 2)
			numericGradCheck(t, conv, x, false, 2e-2)
		})
	}
}

func TestConv2DOutSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		k, stride, pad, dil int
		h, w, wantH, wantW  int
	}{
		{3, 1, 1, 1, 16, 16, 16, 16},
		{3, 1, 2, 2, 16, 16, 16, 16},
		{3, 1, 4, 4, 16, 16, 16, 16},
		{3, 2, 1, 1, 16, 16, 8, 8},
		{1, 1, 0, 1, 9, 7, 9, 7},
	}
	for _, tt := range tests {
		c := NewConv2D("c", 1, 1, tt.k, tt.stride, tt.pad, tt.dil, rng)
		oh, ow := c.OutSize(tt.h, tt.w)
		if oh != tt.wantH || ow != tt.wantW {
			t.Errorf("k=%d s=%d p=%d d=%d: out %dx%d, want %dx%d",
				tt.k, tt.stride, tt.pad, tt.dil, oh, ow, tt.wantH, tt.wantW)
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// Identity 1x1 kernel copies the input; a 3x3 box kernel sums a patch.
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D("c", 1, 1, 1, 1, 0, 1, rng)
	c.W.Value.Data[0] = 1
	c.B.Value.Data[0] = 0
	x := randomInput([]int{1, 1, 4, 4}, 3)
	out := c.Forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatalf("identity conv mismatch at %d", i)
		}
	}
	box := NewConv2D("b", 1, 1, 3, 1, 0, 1, rng)
	box.W.Value.Fill(1)
	box.B.Value.Data[0] = 0
	ones := NewTensor(1, 1, 5, 5)
	ones.Fill(1)
	out = box.Forward(ones, false)
	if out.Shape[2] != 3 || out.Shape[3] != 3 {
		t.Fatalf("box conv output shape %v", out.Shape)
	}
	for _, v := range out.Data {
		if v != 9 {
			t.Fatalf("box conv value %v, want 9", v)
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	bn := NewBatchNorm2D("bn", 3)
	x := randomInput([]int{2, 3, 5, 4}, 4)
	numericGradCheck(t, bn, x, true, 5e-2)
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm2D("bn", 2)
	x := randomInput([]int{4, 2, 6, 6}, 5)
	for i := range x.Data {
		x.Data[i] = x.Data[i]*3 + 7 // strong offset and scale
	}
	out := bn.Forward(x, true)
	n, c, h, w := out.Dims4()
	for ci := 0; ci < c; ci++ {
		var sum, sq float64
		for bi := 0; bi < n; bi++ {
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					v := float64(out.At4(bi, ci, y, xx))
					sum += v
					sq += v * v
				}
			}
		}
		cnt := float64(n * h * w)
		mean := sum / cnt
		variance := sq/cnt - mean*mean
		if math.Abs(mean) > 1e-3 {
			t.Errorf("channel %d mean = %v, want ≈0", ci, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Errorf("channel %d var = %v, want ≈1", ci, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm2D("bn", 1)
	x := NewTensor(1, 1, 2, 2)
	x.Fill(10)
	// Without any training step, running stats are mean 0, var 1.
	out := bn.Forward(x, false)
	for _, v := range out.Data {
		if math.Abs(float64(v-10)) > 1e-3 {
			t.Fatalf("eval output %v, want ≈10 with identity running stats", v)
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := NewTensor(1, 1, 1, 4)
	copy(x.Data, []float32{-1, 0, 2, -3})
	out := r.Forward(x, true)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("relu out = %v", out.Data)
		}
	}
	dout := NewTensor(1, 1, 1, 4)
	dout.Fill(1)
	dx := r.Backward(dout)
	wantDx := []float32{0, 0, 1, 0}
	for i := range wantDx {
		if dx.Data[i] != wantDx[i] {
			t.Fatalf("relu dx = %v", dx.Data)
		}
	}
}

func TestDropoutModes(t *testing.T) {
	x := NewTensor(1, 1, 8, 8)
	x.Fill(1)

	d := NewDropout(0.5, 7)
	// Auto + eval: identity.
	out := d.Forward(x, false)
	for _, v := range out.Data {
		if v != 1 {
			t.Fatal("dropout active in eval mode under Auto")
		}
	}
	// Auto + train: some zeros, survivors scaled by 2.
	out = d.Forward(x, true)
	zeros := 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros == 0 || zeros == len(out.Data) {
		t.Fatalf("dropout zeroed %d/%d", zeros, len(out.Data))
	}
	// AlwaysOn + eval: the Monte-Carlo mode drops at inference.
	d.Mode = AlwaysOn
	out = d.Forward(x, false)
	zeros = 0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("AlwaysOn dropout inactive at inference")
	}
	// Off: identity even in training.
	d.Mode = Off
	out = d.Forward(x, true)
	for _, v := range out.Data {
		if v != 1 {
			t.Fatal("Off dropout dropped values")
		}
	}
}

func TestDropoutReseedReproducible(t *testing.T) {
	x := NewTensor(1, 1, 16, 16)
	x.Fill(1)
	d := NewDropout(0.5, 1)
	d.Mode = AlwaysOn
	d.Reseed(42)
	a := d.Forward(x, false)
	d.Reseed(42)
	b := d.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("reseeded dropout differs")
		}
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	x := randomInput([]int{1, 2, 4, 4}, 8)
	d := NewDropout(0.4, 3)
	out := d.Forward(x, true)
	dout := out.ZerosLike()
	dout.Fill(1)
	dx := d.Backward(dout)
	for i := range out.Data {
		if out.Data[i] == 0 && dx.Data[i] != 0 {
			t.Fatal("gradient leaked through dropped unit")
		}
		if out.Data[i] != 0 && dx.Data[i] == 0 {
			t.Fatal("gradient blocked on surviving unit")
		}
	}
}

func TestUpsample2x(t *testing.T) {
	u := &Upsample2x{}
	x := NewTensor(1, 1, 2, 2)
	copy(x.Data, []float32{1, 2, 3, 4})
	out := u.Forward(x, false)
	if out.Shape[2] != 4 || out.Shape[3] != 4 {
		t.Fatalf("upsample shape %v", out.Shape)
	}
	if out.At4(0, 0, 0, 0) != 1 || out.At4(0, 0, 1, 1) != 1 || out.At4(0, 0, 3, 3) != 4 {
		t.Fatalf("upsample values wrong: %v", out.Data)
	}
	dout := out.ZerosLike()
	dout.Fill(1)
	dx := u.Backward(dout)
	for _, v := range dx.Data {
		if v != 4 {
			t.Fatalf("upsample backward = %v, want 4", v)
		}
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewSequential(
		NewConv2D("c1", 1, 3, 3, 1, 1, 1, rng),
		&ReLU{},
		NewConv2D("c2", 3, 2, 3, 1, 1, 1, rng),
	)
	x := randomInput([]int{1, 1, 6, 6}, 3)
	numericGradCheck(t, net, x, false, 2e-2)
	if got := len(net.Params()); got != 4 {
		t.Errorf("params = %d, want 4", got)
	}
}

func TestParallelConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pc := NewParallelConcat(
		NewConv2D("b1", 2, 2, 3, 1, 1, 1, rng),
		NewConv2D("b2", 2, 3, 3, 1, 2, 2, rng),
	)
	x := randomInput([]int{1, 2, 6, 6}, 4)
	out := pc.Forward(x, false)
	if out.Shape[1] != 5 {
		t.Fatalf("concat channels = %d, want 5", out.Shape[1])
	}
	numericGradCheck(t, pc, x, false, 2e-2)
}

func TestSetDropoutModeWalksContainers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inner := NewSequential(NewDropout(0.5, 1), NewConv2D("c", 1, 1, 1, 1, 0, 1, rng))
	net := NewSequential(
		NewParallelConcat(inner, NewDropout(0.3, 2)),
		NewDropout(0.2, 3),
	)
	SetDropoutMode(net, AlwaysOn)
	found := 0
	Walk(net, func(l Layer) {
		if d, ok := l.(*Dropout); ok {
			found++
			if d.Mode != AlwaysOn {
				t.Error("dropout mode not set through nesting")
			}
		}
	})
	if found != 3 {
		t.Errorf("walked %d dropouts, want 3", found)
	}
}

func TestSoftmaxChannels(t *testing.T) {
	logits := NewTensor(1, 3, 2, 2)
	rng := rand.New(rand.NewSource(5))
	for i := range logits.Data {
		logits.Data[i] = rng.Float32()*10 - 5
	}
	probs := SoftmaxChannels(logits)
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			var sum float64
			for c := 0; c < 3; c++ {
				p := float64(probs.At4(0, c, y, x))
				if p < 0 || p > 1 {
					t.Fatalf("prob %v outside [0,1]", p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-5 {
				t.Fatalf("probs sum to %v", sum)
			}
		}
	}
	// Softmax is shift-invariant per pixel.
	shifted := logits.Clone()
	for i := range shifted.Data {
		shifted.Data[i] += 100
	}
	probs2 := SoftmaxChannels(shifted)
	for i := range probs.Data {
		if math.Abs(float64(probs.Data[i]-probs2.Data[i])) > 1e-5 {
			t.Fatal("softmax not shift invariant")
		}
	}
}

func TestArgmaxChannels(t *testing.T) {
	s := NewTensor(1, 3, 1, 2)
	// pixel 0: class 2 wins; pixel 1: class 0 wins
	s.Set4(0, 0, 0, 0, 0.1)
	s.Set4(0, 1, 0, 0, 0.2)
	s.Set4(0, 2, 0, 0, 0.7)
	s.Set4(0, 0, 0, 1, 0.9)
	s.Set4(0, 1, 0, 1, 0.05)
	s.Set4(0, 2, 0, 1, 0.05)
	am := ArgmaxChannels(s)
	if am[0][0] != 2 || am[0][1] != 0 {
		t.Fatalf("argmax = %v", am[0])
	}
}

func TestCrossEntropyLossGradient(t *testing.T) {
	logits := randomInput([]int{1, 4, 3, 3}, 6)
	targets := [][]int{{0, 1, 2, 3, 0, 1, 2, 3, 0}}
	loss, grad := CrossEntropyLoss(logits, targets, nil)
	if loss <= 0 {
		t.Fatalf("loss = %v, want > 0 for random logits", loss)
	}
	const eps = 1e-2
	rng := rand.New(rand.NewSource(7))
	for _, idx := range sampleIndices(len(logits.Data), 20, rng) {
		orig := logits.Data[idx]
		logits.Data[idx] = orig + eps
		up, _ := CrossEntropyLoss(logits, targets, nil)
		logits.Data[idx] = orig - eps
		down, _ := CrossEntropyLoss(logits, targets, nil)
		logits.Data[idx] = orig
		want := (up - down) / (2 * eps)
		got := float64(grad.Data[idx])
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("dlogits[%d] = %v, numeric %v", idx, got, want)
		}
	}
}

func TestCrossEntropyClassWeights(t *testing.T) {
	logits := randomInput([]int{1, 2, 1, 2}, 8)
	targets := [][]int{{0, 1}}
	// Zero weight on class 0 means only the class-1 pixel contributes.
	w := []float32{0, 1}
	lossW, gradW := CrossEntropyLoss(logits, targets, w)
	if lossW <= 0 {
		t.Fatal("weighted loss should be positive")
	}
	// Gradient at the class-0 pixel must be zero everywhere.
	for c := 0; c < 2; c++ {
		if gradW.At4(0, c, 0, 0) != 0 {
			t.Error("zero-weight pixel received gradient")
		}
	}
}

func TestTrainingConvergesOnTinyTask(t *testing.T) {
	// Two-class per-pixel classification where class = (red channel > 0).
	rng := rand.New(rand.NewSource(10))
	net := NewSequential(
		NewConv2D("c1", 1, 4, 3, 1, 1, 1, rng),
		&ReLU{},
		NewConv2D("c2", 4, 2, 1, 1, 0, 1, rng),
	)
	opt := NewAdam(0.02)
	var firstLoss, lastLoss float64
	for step := 0; step < 60; step++ {
		x := NewTensor(2, 1, 8, 8)
		targets := make([][]int, 2)
		for bi := 0; bi < 2; bi++ {
			targets[bi] = make([]int, 64)
			for i := 0; i < 64; i++ {
				v := rng.Float32()*2 - 1
				x.Data[bi*64+i] = v
				if v > 0 {
					targets[bi][i] = 1
				}
			}
		}
		logits := net.Forward(x, true)
		loss, grad := CrossEntropyLoss(logits, targets, nil)
		net.Backward(grad)
		opt.Step(net.Params())
		if step == 0 {
			firstLoss = loss
		}
		lastLoss = loss
	}
	if lastLoss >= firstLoss*0.5 {
		t.Errorf("training failed to converge: first %v, last %v", firstLoss, lastLoss)
	}
}

func TestSGDMomentumStep(t *testing.T) {
	p := NewParam("w", 2)
	p.Value.Data[0], p.Value.Data[1] = 1, -1
	p.Grad.Data[0], p.Grad.Data[1] = 0.5, -0.5
	opt := NewSGD(0.1, 0.9)
	opt.Step([]*Param{p})
	if math.Abs(float64(p.Value.Data[0]-0.95)) > 1e-6 {
		t.Errorf("after step w0 = %v, want 0.95", p.Value.Data[0])
	}
	if p.Grad.Data[0] != 0 {
		t.Error("gradient not cleared after step")
	}
	// Second identical gradient: momentum accelerates.
	p.Grad.Data[0] = 0.5
	opt.Step([]*Param{p})
	if math.Abs(float64(p.Value.Data[0]-(0.95-0.1*(0.9*0.5+0.5)))) > 1e-6 {
		t.Errorf("momentum step wrong: %v", p.Value.Data[0])
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	build := func() *Sequential {
		r := rand.New(rand.NewSource(12))
		return NewSequential(
			NewConv2D("c1", 1, 3, 3, 1, 1, 1, r),
			NewBatchNorm2D("bn", 3),
			&ReLU{},
			NewConv2D("c2", 3, 2, 1, 1, 0, 1, r),
		)
	}
	src := build()
	// Perturb parameters and running stats so they differ from a fresh net.
	for _, p := range src.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] = rng.Float32()
		}
	}
	Walk(src, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			for i := range bn.RunningMean {
				bn.RunningMean[i] = 0.5
				bn.RunningVar[i] = 2.0
			}
		}
	})
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := build()
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].Value.Data {
			if sp[i].Value.Data[j] != dp[i].Value.Data[j] {
				t.Fatalf("param %d differs after roundtrip", i)
			}
		}
	}
	Walk(dst, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			if bn.RunningMean[0] != 0.5 || bn.RunningVar[0] != 2.0 {
				t.Error("running stats not restored")
			}
		}
	})
	// Same input must produce bit-identical eval outputs.
	x := randomInput([]int{1, 1, 6, 6}, 13)
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("outputs differ after checkpoint roundtrip")
		}
	}
}

func TestLoadParamsRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	src := NewSequential(NewConv2D("c", 1, 2, 3, 1, 1, 1, rng))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	other := NewSequential(NewConv2D("c", 1, 3, 3, 1, 1, 1, rng))
	if err := LoadParams(&buf, other); err == nil {
		t.Fatal("expected error loading mismatched architecture")
	}
}

func TestTensorProperties(t *testing.T) {
	property := func(a, b int8) bool {
		h := int(a%5) + 7 // always >= 2 for int8 remainders in [-4, 4]
		w := int(b%5) + 7
		x := NewTensor(1, 1, h, w)
		if x.Numel() != h*w {
			return false
		}
		x.Fill(3)
		y := x.Clone()
		y.AddScaled(x, -1)
		for _, v := range y.Data {
			if v != 0 {
				return false
			}
		}
		return x.SameShape(y)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewTensorPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero dimension")
		}
	}()
	NewTensor(2, 0, 2)
}
