package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelCap caps per-op goroutine fan-out; 0 means no manual cap.
var parallelCap atomic.Int32

// reservedWorkers counts concurrently-serving pool workers registered via
// ReserveWorkers across the whole process.
var reservedWorkers atomic.Int64

// SetParallelism caps how many goroutines a single nn operation (one
// convolution, one batch norm, one softmax) fans out to. n <= 0 removes the
// cap. Values above the machine share are no-ops: the cap only ever shrinks
// the fan-out.
//
// The cap is a process-wide manual override that composes with the
// ReserveWorkers registry: the effective limit is the smaller of the two.
// Serving pools should not use it — they register their worker counts with
// ReserveWorkers instead, which is additive across pools rather than
// last-writer-wins.
//
// Neither mechanism ever changes results: parallelFor work items write
// disjoint memory and each item's accumulation order is internal to the
// item.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelCap.Store(int32(n))
}

// ReserveWorkers registers n goroutines that will run nn operations
// concurrently — a serving pool's worker count. While reservations are
// outstanding, every nn operation fans out to GOMAXPROCS divided by the
// total reserved workers (at least 1), so pools never multiply into
// workers × GOMAXPROCS goroutines, and two pools in one process shrink
// each other's shares instead of clobbering a global cap. The returned
// release function is idempotent and must be called when the pool stops
// serving; it restores the other pools' shares.
func ReserveWorkers(n int) (release func()) {
	if n < 1 {
		n = 1
	}
	reservedWorkers.Add(int64(n))
	var once sync.Once
	return func() {
		once.Do(func() { reservedWorkers.Add(-int64(n)) })
	}
}

// ReservedWorkers reports the total worker count currently registered via
// ReserveWorkers.
func ReservedWorkers() int { return int(reservedWorkers.Load()) }

// Parallelism reports the effective per-op goroutine limit: the machine
// share under the current ReserveWorkers registrations, further capped by
// SetParallelism.
func Parallelism() int {
	eff := runtime.GOMAXPROCS(0)
	if r := int(reservedWorkers.Load()); r > 0 {
		eff /= r
		if eff < 1 {
			eff = 1
		}
	}
	if c := int(parallelCap.Load()); c > 0 && c < eff {
		eff = c
	}
	return eff
}

// parallelFor runs fn(i) for i in [0, n) across up to Parallelism() workers.
// Work items must write to disjoint memory. Small loops run inline to avoid
// goroutine overhead.
func parallelFor(n int, fn func(i int)) {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
