package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelCap caps per-op goroutine fan-out; 0 means GOMAXPROCS.
var parallelCap atomic.Int32

// SetParallelism caps how many goroutines a single nn operation (one
// convolution, one batch norm, one softmax) fans out to. n <= 0 restores
// the default, GOMAXPROCS. Values above GOMAXPROCS are no-ops: the cap only
// ever shrinks the fan-out.
//
// The cap is process-wide. Its purpose is to stop nested oversubscription
// when a serving pool already saturates the machine: N Engine workers ×
// GOMAXPROCS goroutines per conv thrash the scheduler, so
// safeland.NewEngine sets the cap to GOMAXPROCS/workers and each op takes a
// 1/N share instead. The last constructed Engine wins; single-model callers
// that want full per-op parallelism back call SetParallelism(0).
//
// The cap never changes results: parallelFor work items write disjoint
// memory and each item's accumulation order is internal to the item.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelCap.Store(int32(n))
}

// Parallelism reports the effective per-op goroutine limit.
func Parallelism() int {
	max := runtime.GOMAXPROCS(0)
	if c := int(parallelCap.Load()); c > 0 && c < max {
		return c
	}
	return max
}

// parallelFor runs fn(i) for i in [0, n) across up to Parallelism() workers.
// Work items must write to disjoint memory. Small loops run inline to avoid
// goroutine overhead.
func parallelFor(n int, fn func(i int)) {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
