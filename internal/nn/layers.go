package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
	sc   *Scratch
}

func (r *ReLU) setScratch(s *Scratch) { r.sc = s }

// Forward zeroes negative activations.
func (r *ReLU) Forward(x *Tensor, train bool) *Tensor {
	out := allocOut(r.sc, train, x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
			out.Data[i] = v
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward passes gradient only through positive activations.
func (r *ReLU) Backward(dout *Tensor) *Tensor {
	dx := dout.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// DropoutMode selects when a Dropout layer is active.
type DropoutMode int

// Dropout modes. Auto is the conventional behavior (active only while
// training); AlwaysOn keeps dropout active at inference, which is what turns
// the trained network into its Bayesian Monte-Carlo variant (Gal &
// Ghahramani 2016, used by the paper's monitor); Off disables it entirely.
const (
	Auto DropoutMode = iota
	AlwaysOn
	Off
)

// Dropout randomly zeroes activations with probability P and rescales the
// survivors by 1/(1-P) (inverted dropout).
type Dropout struct {
	P    float64
	Mode DropoutMode

	mu   sync.Mutex
	src  rand.Source
	rng  *rand.Rand
	mask []bool
	sc   *Scratch
}

func (d *Dropout) setScratch(s *Scratch) { d.sc = s }

// NewDropout constructs a dropout layer with its own seeded RNG so that
// Monte-Carlo sampling is reproducible.
func NewDropout(p float64, seed int64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v outside [0,1)", p))
	}
	src := rand.NewSource(seed)
	return &Dropout{P: p, src: src, rng: rand.New(src)}
}

// Reseed resets the layer RNG, making a subsequent Monte-Carlo sample
// sequence reproducible. The source is reseeded in place — Source.Seed
// restores exactly the state a fresh NewSource(seed) would have, so the
// stream is unchanged while the per-verdict reseeding stops allocating.
func (d *Dropout) Reseed(seed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.src == nil {
		d.src = rand.NewSource(seed)
		d.rng = rand.New(d.src)
		return
	}
	d.src.Seed(seed)
}

func (d *Dropout) active(train bool) bool {
	switch d.Mode {
	case AlwaysOn:
		return true
	case Off:
		return false
	default:
		return train
	}
}

// Forward applies (or bypasses) the dropout mask. The output is always a
// copy (arena-backed on inference passes), never the input itself.
func (d *Dropout) Forward(x *Tensor, train bool) *Tensor {
	if !d.active(train) || d.P == 0 {
		d.mask = nil
		out := allocOut(d.sc, train, x.Shape...)
		copy(out.Data, x.Data)
		return out
	}
	out := allocOut(d.sc, train, x.Shape...)
	copy(out.Data, x.Data)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]bool, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := float32(1 / (1 - d.P))
	d.mu.Lock()
	for i := range out.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = false
			out.Data[i] = 0
		} else {
			d.mask[i] = true
			out.Data[i] *= scale
		}
	}
	d.mu.Unlock()
	return out
}

// Backward routes gradient through surviving activations only.
func (d *Dropout) Backward(dout *Tensor) *Tensor {
	if d.mask == nil {
		return dout.Clone()
	}
	dx := dout.Clone()
	scale := float32(1 / (1 - d.P))
	for i := range dx.Data {
		if d.mask[i] {
			dx.Data[i] *= scale
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil: dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// BatchNorm2D normalizes each channel over the batch and spatial dimensions,
// with learnable scale/shift and running statistics for inference.
type BatchNorm2D struct {
	C        int
	Eps      float32
	Momentum float32

	Gamma, Beta *Param

	RunningMean, RunningVar []float32

	// caches for backward
	x        *Tensor
	xhat     []float32
	mean, vr []float32

	sc *Scratch
}

func (bn *BatchNorm2D) setScratch(s *Scratch) { bn.sc = s }

// NewBatchNorm2D constructs a batch norm over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam(name+".gamma", c),
		Beta:        NewParam(name+".beta", c),
		RunningMean: make([]float32, c),
		RunningVar:  make([]float32, c),
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes with batch statistics (train) or running statistics.
func (bn *BatchNorm2D) Forward(x *Tensor, train bool) *Tensor {
	n, c, h, w := x.Dims4()
	if c != bn.C {
		panic(fmt.Sprintf("nn: batchnorm expects %d channels, got %d", bn.C, c))
	}
	out := allocOut(bn.sc, train, x.Shape...)
	cnt := float32(n * h * w)
	if bn.mean == nil {
		bn.mean = make([]float32, c)
		bn.vr = make([]float32, c)
	}
	if train {
		bn.x = x
		if cap(bn.xhat) < len(x.Data) {
			bn.xhat = make([]float32, len(x.Data))
		}
		bn.xhat = bn.xhat[:len(x.Data)]
		parallelFor(c, func(ci int) {
			var sum float64
			for bi := 0; bi < n; bi++ {
				base := (bi*c + ci) * h * w
				for i := 0; i < h*w; i++ {
					sum += float64(x.Data[base+i])
				}
			}
			mean := float32(sum / float64(cnt))
			var vsum float64
			for bi := 0; bi < n; bi++ {
				base := (bi*c + ci) * h * w
				for i := 0; i < h*w; i++ {
					d := x.Data[base+i] - mean
					vsum += float64(d * d)
				}
			}
			variance := float32(vsum / float64(cnt))
			bn.mean[ci], bn.vr[ci] = mean, variance
			bn.RunningMean[ci] = (1-bn.Momentum)*bn.RunningMean[ci] + bn.Momentum*mean
			bn.RunningVar[ci] = (1-bn.Momentum)*bn.RunningVar[ci] + bn.Momentum*variance
			inv := float32(1 / math.Sqrt(float64(variance+bn.Eps)))
			g, b := bn.Gamma.Value.Data[ci], bn.Beta.Value.Data[ci]
			for bi := 0; bi < n; bi++ {
				base := (bi*c + ci) * h * w
				for i := 0; i < h*w; i++ {
					xh := (x.Data[base+i] - mean) * inv
					bn.xhat[base+i] = xh
					out.Data[base+i] = g*xh + b
				}
			}
		})
		return out
	}
	parallelFor(c, func(ci int) {
		inv := float32(1 / math.Sqrt(float64(bn.RunningVar[ci]+bn.Eps)))
		mean := bn.RunningMean[ci]
		g, b := bn.Gamma.Value.Data[ci], bn.Beta.Value.Data[ci]
		for bi := 0; bi < n; bi++ {
			base := (bi*c + ci) * h * w
			for i := 0; i < h*w; i++ {
				out.Data[base+i] = g*(x.Data[base+i]-mean)*inv + b
			}
		}
	})
	return out
}

// Backward implements the standard batch-norm gradient.
func (bn *BatchNorm2D) Backward(dout *Tensor) *Tensor {
	x := bn.x
	if x == nil {
		panic("nn: batchnorm Backward before training Forward")
	}
	n, c, h, w := x.Dims4()
	dx := x.ZerosLike()
	m := float32(n * h * w)
	parallelFor(c, func(ci int) {
		inv := float32(1 / math.Sqrt(float64(bn.vr[ci]+bn.Eps)))
		g := bn.Gamma.Value.Data[ci]
		var dgamma, dbeta, dxhSum, dxhXhatSum float64
		for bi := 0; bi < n; bi++ {
			base := (bi*c + ci) * h * w
			for i := 0; i < h*w; i++ {
				dy := dout.Data[base+i]
				xh := bn.xhat[base+i]
				dgamma += float64(dy * xh)
				dbeta += float64(dy)
				dxh := dy * g
				dxhSum += float64(dxh)
				dxhXhatSum += float64(dxh * xh)
			}
		}
		bn.Gamma.Grad.Data[ci] += float32(dgamma)
		bn.Beta.Grad.Data[ci] += float32(dbeta)
		for bi := 0; bi < n; bi++ {
			base := (bi*c + ci) * h * w
			for i := 0; i < h*w; i++ {
				dxh := dout.Data[base+i] * g
				xh := bn.xhat[base+i]
				dx.Data[base+i] = inv * (dxh - float32(dxhSum)/m - xh*float32(dxhXhatSum)/m)
			}
		}
	})
	return dx
}

// Params returns the scale and shift parameters.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Upsample2x doubles the spatial resolution by nearest-neighbor replication.
// It lets a stride-2 stem keep the output at input resolution.
type Upsample2x struct {
	inH, inW int
	sc       *Scratch
}

func (u *Upsample2x) setScratch(s *Scratch) { u.sc = s }

// Forward replicates each pixel into a 2×2 block.
func (u *Upsample2x) Forward(x *Tensor, train bool) *Tensor {
	n, c, h, w := x.Dims4()
	u.inH, u.inW = h, w
	out := allocOut(u.sc, train, n, c, h*2, w*2)
	parallelFor(n*c, func(job int) {
		inBase := job * h * w
		outBase := job * h * w * 4
		for y := 0; y < h; y++ {
			for x2 := 0; x2 < w; x2++ {
				v := x.Data[inBase+y*w+x2]
				o := outBase + (2*y)*(2*w) + 2*x2
				out.Data[o] = v
				out.Data[o+1] = v
				out.Data[o+2*w] = v
				out.Data[o+2*w+1] = v
			}
		}
	})
	return out
}

// Backward sums the four replicated gradients back into each source pixel.
func (u *Upsample2x) Backward(dout *Tensor) *Tensor {
	n, c, oh, ow := dout.Dims4()
	h, w := oh/2, ow/2
	dx := NewTensor(n, c, h, w)
	parallelFor(n*c, func(job int) {
		inBase := job * h * w
		outBase := job * oh * ow
		for y := 0; y < h; y++ {
			for x2 := 0; x2 < w; x2++ {
				o := outBase + (2*y)*ow + 2*x2
				dx.Data[inBase+y*w+x2] = dout.Data[o] + dout.Data[o+1] +
					dout.Data[o+ow] + dout.Data[o+ow+1]
			}
		}
	})
	return dx
}

// Params returns nil: upsampling has no parameters.
func (u *Upsample2x) Params() []*Param { return nil }
