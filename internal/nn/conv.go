package nn

import (
	"fmt"
	"math/rand"
)

// Conv2D is a 2-D convolution with configurable stride, zero padding and
// dilation. Dilation is the mechanism behind the paper's Multi-Scale-Dilation
// net: parallel branches with dilation 1, 2, 4, ... observe the same input at
// growing receptive fields without losing resolution.
type Conv2D struct {
	InC, OutC int
	K         int // square kernel size
	Stride    int
	Pad       int
	Dilation  int

	W *Param // [OutC, InC, K, K]
	B *Param // [OutC]

	x *Tensor // cached input for backward
}

// NewConv2D constructs a convolution with He-initialized weights.
func NewConv2D(name string, inC, outC, k, stride, pad, dilation int, rng *rand.Rand) *Conv2D {
	if stride < 1 || dilation < 1 || k < 1 {
		panic(fmt.Sprintf("nn: invalid conv config k=%d stride=%d dilation=%d", k, stride, dilation))
	}
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, Dilation: dilation,
		W: NewParam(name+".W", outC, inC, k, k),
		B: NewParam(name+".B", outC),
	}
	c.W.Value.HeInit(inC*k*k, rng)
	return c
}

// OutSize returns the output spatial size for an input of the given size.
func (c *Conv2D) OutSize(h, w int) (oh, ow int) {
	ext := (c.K-1)*c.Dilation + 1
	oh = (h+2*c.Pad-ext)/c.Stride + 1
	ow = (w+2*c.Pad-ext)/c.Stride + 1
	return oh, ow
}

// Forward computes the convolution. The input is cached for Backward.
func (c *Conv2D) Forward(x *Tensor, train bool) *Tensor {
	n, ic, h, w := x.Dims4()
	if ic != c.InC {
		panic(fmt.Sprintf("nn: conv expects %d input channels, got %d", c.InC, ic))
	}
	oh, ow := c.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv output %dx%d non-positive for input %dx%d", oh, ow, h, w))
	}
	out := NewTensor(n, c.OutC, oh, ow)
	c.x = x

	wdat := c.W.Value.Data
	bdat := c.B.Value.Data
	// Parallelize over (batch, out-channel) pairs: disjoint output slices.
	parallelFor(n*c.OutC, func(job int) {
		bi, oc := job/c.OutC, job%c.OutC
		bias := bdat[oc]
		for oy := 0; oy < oh; oy++ {
			outRow := out.Data[((bi*c.OutC+oc)*oh+oy)*ow : ((bi*c.OutC+oc)*oh+oy+1)*ow]
			for ox := 0; ox < ow; ox++ {
				sum := bias
				for icc := 0; icc < c.InC; icc++ {
					wBase := ((oc*c.InC + icc) * c.K) * c.K
					xBase := (bi*c.InC + icc) * h * w
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride - c.Pad + ky*c.Dilation
						if iy < 0 || iy >= h {
							continue
						}
						xRow := xBase + iy*w
						wRow := wBase + ky*c.K
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride - c.Pad + kx*c.Dilation
							if ix < 0 || ix >= w {
								continue
							}
							sum += wdat[wRow+kx] * x.Data[xRow+ix]
						}
					}
				}
				outRow[ox] = sum
			}
		}
	})
	return out
}

// Backward accumulates dW and dB from the cached input and returns dX.
func (c *Conv2D) Backward(dout *Tensor) *Tensor {
	x := c.x
	if x == nil {
		panic("nn: conv Backward before Forward")
	}
	n, _, h, w := x.Dims4()
	_, _, oh, ow := dout.Dims4()
	dx := x.ZerosLike()
	wdat := c.W.Value.Data

	// dB and dW: parallel over output channels (disjoint grad slices).
	parallelFor(c.OutC, func(oc int) {
		var db float32
		for bi := 0; bi < n; bi++ {
			base := (bi*c.OutC + oc) * oh * ow
			for i := 0; i < oh*ow; i++ {
				db += dout.Data[base+i]
			}
		}
		c.B.Grad.Data[oc] += db

		for icc := 0; icc < c.InC; icc++ {
			for ky := 0; ky < c.K; ky++ {
				for kx := 0; kx < c.K; kx++ {
					var dw float32
					for bi := 0; bi < n; bi++ {
						doutBase := (bi*c.OutC + oc) * oh * ow
						xBase := (bi*c.InC + icc) * h * w
						for oy := 0; oy < oh; oy++ {
							iy := oy*c.Stride - c.Pad + ky*c.Dilation
							if iy < 0 || iy >= h {
								continue
							}
							dRow := doutBase + oy*ow
							xRow := xBase + iy*w
							for ox := 0; ox < ow; ox++ {
								ix := ox*c.Stride - c.Pad + kx*c.Dilation
								if ix < 0 || ix >= w {
									continue
								}
								dw += dout.Data[dRow+ox] * x.Data[xRow+ix]
							}
						}
					}
					c.W.Grad.Data[((oc*c.InC+icc)*c.K+ky)*c.K+kx] += dw
				}
			}
		}
	})

	// dX gather: parallel over (batch, in-channel) pairs.
	parallelFor(n*c.InC, func(job int) {
		bi, icc := job/c.InC, job%c.InC
		dxBase := (bi*c.InC + icc) * h * w
		for iy := 0; iy < h; iy++ {
			for ix := 0; ix < w; ix++ {
				var acc float32
				for ky := 0; ky < c.K; ky++ {
					ny := iy + c.Pad - ky*c.Dilation
					if ny < 0 || ny%c.Stride != 0 {
						continue
					}
					oy := ny / c.Stride
					if oy >= oh {
						continue
					}
					for kx := 0; kx < c.K; kx++ {
						nx := ix + c.Pad - kx*c.Dilation
						if nx < 0 || nx%c.Stride != 0 {
							continue
						}
						ox := nx / c.Stride
						if ox >= ow {
							continue
						}
						for oc := 0; oc < c.OutC; oc++ {
							acc += wdat[((oc*c.InC+icc)*c.K+ky)*c.K+kx] *
								dout.Data[((bi*c.OutC+oc)*oh+oy)*ow+ox]
						}
					}
				}
				dx.Data[dxBase+iy*w+ix] = acc
			}
		}
	})
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }
