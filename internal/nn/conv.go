package nn

import (
	"fmt"
	"math/rand"
)

// Conv2D is a 2-D convolution with configurable stride, zero padding and
// dilation. Dilation is the mechanism behind the paper's Multi-Scale-Dilation
// net: parallel branches with dilation 1, 2, 4, ... observe the same input at
// growing receptive fields without losing resolution.
//
// Forward and Backward split every row into an interior span — where all
// kernel taps land inside the input, so the bounds checks are hoisted out of
// the ky/kx loops entirely — and border spans that keep per-tap range
// clamping. Both paths accumulate each output element in the exact
// icc→ky→kx order of the naive reference loop (convRefForward in the
// tests), so float32 results are byte-identical to the seed implementation.
type Conv2D struct {
	InC, OutC int
	K         int // square kernel size
	Stride    int
	Pad       int
	Dilation  int

	W *Param // [OutC, InC, K, K]
	B *Param // [OutC]

	x  *Tensor // cached input for backward
	sc *Scratch
}

// NewConv2D constructs a convolution with He-initialized weights.
func NewConv2D(name string, inC, outC, k, stride, pad, dilation int, rng *rand.Rand) *Conv2D {
	if stride < 1 || dilation < 1 || k < 1 {
		panic(fmt.Sprintf("nn: invalid conv config k=%d stride=%d dilation=%d", k, stride, dilation))
	}
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, Dilation: dilation,
		W: NewParam(name+".W", outC, inC, k, k),
		B: NewParam(name+".B", outC),
	}
	c.W.Value.HeInit(inC*k*k, rng)
	return c
}

func (c *Conv2D) setScratch(s *Scratch) { c.sc = s }

// OutSize returns the output spatial size for an input of the given size.
func (c *Conv2D) OutSize(h, w int) (oh, ow int) {
	ext := (c.K-1)*c.Dilation + 1
	oh = (h+2*c.Pad-ext)/c.Stride + 1
	ow = (w+2*c.Pad-ext)/c.Stride + 1
	return oh, ow
}

// tapRange returns the contiguous index range [lo, hi] of kernel taps t in
// [0, count) whose sample position off + t*step stays inside [0, limit),
// for step >= 1. hi < lo when no tap is valid. The valid taps are always
// contiguous because the position is monotone in t — which is what lets the
// inner loops drop per-tap bounds checks without changing which terms are
// accumulated.
func tapRange(off, step, count, limit int) (lo, hi int) {
	lo, hi = 0, count-1
	if off >= limit {
		return 1, 0
	}
	if off < 0 {
		lo = (-off + step - 1) / step
	}
	if last := off + hi*step; last >= limit {
		hi = (limit - 1 - off) / step
	}
	return lo, hi
}

// Forward computes the convolution. The input is cached for Backward.
func (c *Conv2D) Forward(x *Tensor, train bool) *Tensor {
	n, ic, h, w := x.Dims4()
	if ic != c.InC {
		panic(fmt.Sprintf("nn: conv expects %d input channels, got %d", c.InC, ic))
	}
	oh, ow := c.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv output %dx%d non-positive for input %dx%d", oh, ow, h, w))
	}
	out := allocOut(c.sc, train, n, c.OutC, oh, ow)
	// Cache the input only when a Backward can legitimately follow: on
	// training passes, or without an arena (the bare-layer gradient tests
	// run eval-mode forwards). With an arena attached, an inference pass
	// recycles x mid-chain, so a stale cache would feed Backward overwritten
	// data — leave it nil and let Backward fail loudly instead.
	if train || c.sc == nil {
		c.x = x
	} else {
		c.x = nil
	}

	wdat := c.W.Value.Data
	bdat := c.B.Value.Data
	xd := x.Data
	ext := (c.K - 1) * c.Dilation
	// Interior column span [oxLo, oxHi]: every kx tap of these outputs lands
	// inside the row, so the inner loops run unchecked over contiguous Data.
	oxLo := 0
	if c.Pad > 0 {
		oxLo = (c.Pad + c.Stride - 1) / c.Stride
	}
	oxHi := -1
	if num := w - 1 - ext + c.Pad; num >= 0 {
		oxHi = num / c.Stride
		if oxHi > ow-1 {
			oxHi = ow - 1
		}
	}
	border := oxLo // first border segment is [0, border)
	if oxHi < oxLo {
		border = ow // no interior: the whole row is border
	}

	// Parallelize over (batch, out-channel) pairs: disjoint output slices.
	parallelFor(n*c.OutC, func(job int) {
		bi, oc := job/c.OutC, job%c.OutC
		bias := bdat[oc]
		wOC := oc * c.InC * c.K * c.K
		xB := bi * c.InC * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*c.Stride - c.Pad
			kyLo, kyHi := tapRange(iy0, c.Dilation, c.K, h)
			outRow := out.Data[((bi*c.OutC+oc)*oh+oy)*ow : ((bi*c.OutC+oc)*oh+oy+1)*ow]
			for ox := 0; ox < border; ox++ {
				outRow[ox] = c.edgeAt(xd, wdat, bias, wOC, xB, h, w, iy0, kyLo, kyHi, ox)
			}
			if oxHi >= oxLo {
				c.interiorRow(xd, wdat, outRow, bias, wOC, xB, h, w, iy0, kyLo, kyHi, oxLo, oxHi)
				for ox := oxHi + 1; ox < ow; ox++ {
					outRow[ox] = c.edgeAt(xd, wdat, bias, wOC, xB, h, w, iy0, kyLo, kyHi, ox)
				}
			}
		}
	})
	return out
}

// edgeAt computes one border output element: the valid ky/kx taps are
// clamped to ranges once, then accumulated unchecked in icc→ky→kx order.
func (c *Conv2D) edgeAt(xd, wdat []float32, bias float32, wOC, xB, h, w, iy0, kyLo, kyHi, ox int) float32 {
	sum := bias
	ix0 := ox*c.Stride - c.Pad
	kxLo, kxHi := tapRange(ix0, c.Dilation, c.K, w)
	if kxHi < kxLo || kyHi < kyLo {
		return sum
	}
	kk := c.K * c.K
	hw := h * w
	for icc := 0; icc < c.InC; icc++ {
		wBase := wOC + icc*kk
		xBase := xB + icc*hw
		for ky := kyLo; ky <= kyHi; ky++ {
			iy := iy0 + ky*c.Dilation
			xRow := xBase + iy*w + ix0
			wRow := wBase + ky*c.K
			for kx := kxLo; kx <= kxHi; kx++ {
				sum += wdat[wRow+kx] * xd[xRow+kx*c.Dilation]
			}
		}
	}
	return sum
}

// interiorRow accumulates the interior span [lo, hi] of one output row.
// Every tap is in bounds, so the hot loops are straight slices over
// contiguous Data; per output element the additions still arrive in the
// reference icc→ky→kx order, keeping the float32 sums byte-identical.
func (c *Conv2D) interiorRow(xd, wdat, outRow []float32, bias float32, wOC, xB, h, w, iy0, kyLo, kyHi, lo, hi int) {
	orow := outRow[lo : hi+1]
	for i := range orow {
		orow[i] = bias
	}
	if kyHi < kyLo {
		return
	}
	d := c.Dilation
	kk := c.K * c.K
	hw := h * w
	ix0 := lo*c.Stride - c.Pad // leftmost tap of output lo; >= 0 on the interior
	for icc := 0; icc < c.InC; icc++ {
		wBase := wOC + icc*kk
		xBase := xB + icc*hw
		for ky := kyLo; ky <= kyHi; ky++ {
			iy := iy0 + ky*d
			rowStart := xBase + iy*w + ix0
			wRow := wBase + ky*c.K
			switch {
			case c.Stride == 1 && c.K == 3:
				// The MSDnet workhorse: 3-tap kernel at stride 1, any
				// dilation. Three fused rounds per element, in kx order.
				w0, w1, w2 := wdat[wRow], wdat[wRow+1], wdat[wRow+2]
				x0 := xd[rowStart : rowStart+len(orow)]
				x1 := xd[rowStart+d : rowStart+d+len(orow)]
				x2 := xd[rowStart+2*d : rowStart+2*d+len(orow)]
				for i := range orow {
					v := orow[i]
					v += w0 * x0[i]
					v += w1 * x1[i]
					v += w2 * x2[i]
					orow[i] = v
				}
			case c.Stride == 1:
				for kx := 0; kx < c.K; kx++ {
					wv := wdat[wRow+kx]
					xr := xd[rowStart+kx*d : rowStart+kx*d+len(orow)]
					for i := range xr {
						orow[i] += wv * xr[i]
					}
				}
			default:
				for kx := 0; kx < c.K; kx++ {
					wv := wdat[wRow+kx]
					base := rowStart + kx*d
					for i := range orow {
						orow[i] += wv * xd[base+i*c.Stride]
					}
				}
			}
		}
	}
}

// Backward accumulates dW and dB from the cached input and returns dX.
// Like Forward, the dW and dX gathers hoist the bounds checks: valid output
// (resp. kernel) positions are clamped to contiguous ranges outside the
// inner loops, which then run unchecked — in the reference accumulation
// order, so training gradients stay byte-identical too.
func (c *Conv2D) Backward(dout *Tensor) *Tensor {
	x := c.x
	if x == nil {
		panic("nn: conv Backward before Forward")
	}
	n, _, h, w := x.Dims4()
	_, _, oh, ow := dout.Dims4()
	dx := x.ZerosLike()
	wdat := c.W.Value.Data
	xd := x.Data
	dd := dout.Data
	kk := c.K * c.K
	hw := h * w
	ohw := oh * ow

	// dB and dW: parallel over output channels (disjoint grad slices).
	parallelFor(c.OutC, func(oc int) {
		var db float32
		for bi := 0; bi < n; bi++ {
			base := (bi*c.OutC + oc) * ohw
			for _, v := range dd[base : base+ohw] {
				db += v
			}
		}
		c.B.Grad.Data[oc] += db

		for icc := 0; icc < c.InC; icc++ {
			for ky := 0; ky < c.K; ky++ {
				offY := ky*c.Dilation - c.Pad
				oyLo, oyHi := tapRange(offY, c.Stride, oh, h)
				for kx := 0; kx < c.K; kx++ {
					offX := kx*c.Dilation - c.Pad
					oxLo, oxHi := tapRange(offX, c.Stride, ow, w)
					var dw float32
					if oyHi >= oyLo && oxHi >= oxLo {
						for bi := 0; bi < n; bi++ {
							doutBase := (bi*c.OutC + oc) * ohw
							xBase := (bi*c.InC + icc) * hw
							for oy := oyLo; oy <= oyHi; oy++ {
								iy := oy*c.Stride + offY
								dRow := doutBase + oy*ow
								xRow := xBase + iy*w + offX
								if c.Stride == 1 {
									dr := dd[dRow+oxLo : dRow+oxHi+1]
									xr := xd[xRow+oxLo : xRow+oxHi+1]
									for i, dv := range dr {
										dw += dv * xr[i]
									}
								} else {
									for ox := oxLo; ox <= oxHi; ox++ {
										dw += dd[dRow+ox] * xd[xRow+ox*c.Stride]
									}
								}
							}
						}
					}
					c.W.Grad.Data[((oc*c.InC+icc)*c.K+ky)*c.K+kx] += dw
				}
			}
		}
	})

	// dX gather: parallel over (batch, in-channel) pairs. The ky/kx tap
	// ranges are clamped per input row/column; only the stride-divisibility
	// filter remains inside (and vanishes at stride 1).
	parallelFor(n*c.InC, func(job int) {
		bi, icc := job/c.InC, job%c.InC
		dxBase := (bi*c.InC + icc) * hw
		doutB := bi * c.OutC * ohw
		for iy := 0; iy < h; iy++ {
			kyHi := (iy + c.Pad) / c.Dilation
			if kyHi > c.K-1 {
				kyHi = c.K - 1
			}
			kyLo := 0
			if over := iy + c.Pad - (oh-1)*c.Stride; over > 0 {
				kyLo = (over + c.Dilation - 1) / c.Dilation
			}
			for ix := 0; ix < w; ix++ {
				kxHi := (ix + c.Pad) / c.Dilation
				if kxHi > c.K-1 {
					kxHi = c.K - 1
				}
				kxLo := 0
				if over := ix + c.Pad - (ow-1)*c.Stride; over > 0 {
					kxLo = (over + c.Dilation - 1) / c.Dilation
				}
				var acc float32
				for ky := kyLo; ky <= kyHi; ky++ {
					ny := iy + c.Pad - ky*c.Dilation
					if c.Stride > 1 && ny%c.Stride != 0 {
						continue
					}
					oy := ny / c.Stride
					wKy := icc*kk + ky*c.K
					dKy := doutB + oy*ow
					for kx := kxLo; kx <= kxHi; kx++ {
						nx := ix + c.Pad - kx*c.Dilation
						if c.Stride > 1 && nx%c.Stride != 0 {
							continue
						}
						ox := nx / c.Stride
						wIdx := wKy + kx
						dIdx := dKy + ox
						for oc := 0; oc < c.OutC; oc++ {
							acc += wdat[oc*c.InC*kk+wIdx] * dd[dIdx+oc*ohw]
						}
					}
				}
				dx.Data[dxBase+iy*w+ix] = acc
			}
		}
	})
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }
