package nn

import (
	"context"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// tinyNet builds a small but representative network: conv, batch norm,
// ReLU, dropout, and a parallel-concat of two dilated branches.
func tinyNet(seed int64) Layer {
	rng := rand.New(rand.NewSource(seed))
	branch := func(d int) Layer {
		return NewSequential(
			NewConv2D("b", 4, 3, 3, 1, d, d, rng),
			NewBatchNorm2D("b.bn", 3),
			&ReLU{},
		)
	}
	return NewSequential(
		NewConv2D("stem", 2, 4, 3, 1, 1, 1, rng),
		NewBatchNorm2D("stem.bn", 4),
		&ReLU{},
		NewDropout(0.5, seed+1),
		NewParallelConcat(branch(1), branch(2)),
		NewConv2D("head", 6, 2, 1, 1, 0, 1, rng),
	)
}

func TestShareParamsAliasesTensorsAndStats(t *testing.T) {
	src := tinyNet(1)
	dst := tinyNet(2)
	if SharesParams(src, dst) {
		t.Fatal("independent networks report shared params")
	}
	if err := ShareParams(dst, src); err != nil {
		t.Fatal(err)
	}
	if !SharesParams(src, dst) {
		t.Fatal("networks do not share params after ShareParams")
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		if sp[i].Value != dp[i].Value {
			t.Fatalf("param %d (%s) not aliased", i, sp[i].Name)
		}
		if &sp[i].Value.Data[0] != &dp[i].Value.Data[0] {
			t.Fatalf("param %d (%s) backing arrays differ", i, sp[i].Name)
		}
		if sp[i].Grad == dp[i].Grad {
			t.Fatalf("param %d (%s) shares its gradient; grads must stay private", i, sp[i].Name)
		}
	}
	var sbn, dbn []*BatchNorm2D
	Walk(src, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			sbn = append(sbn, bn)
		}
	})
	Walk(dst, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			dbn = append(dbn, bn)
		}
	})
	for i := range sbn {
		if &sbn[i].RunningMean[0] != &dbn[i].RunningMean[0] || &sbn[i].RunningVar[0] != &dbn[i].RunningVar[0] {
			t.Fatalf("batch-norm %d running stats not aliased", i)
		}
	}

	// Shared weights must produce identical inference outputs.
	x := NewTensor(1, 2, 8, 8)
	for i := range x.Data {
		x.Data[i] = float32(i%7) * 0.1
	}
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	if !reflect.DeepEqual(a.Data, b.Data) {
		t.Error("shared-weight networks diverge on the same input")
	}
}

func TestShareParamsRejectsMismatchedArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := NewSequential(NewConv2D("c", 2, 2, 1, 1, 0, 1, rng))
	if err := ShareParams(small, tinyNet(1)); err == nil {
		t.Error("mismatched architectures accepted")
	}
}

// pollCtx cancels itself after a fixed number of Err polls, making
// mid-forward cancellation deterministic regardless of timing.
type pollCtx struct {
	context.Context
	polls atomic.Int32
	limit int32
}

func (c *pollCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func TestForwardCtxMatchesForwardAndCancels(t *testing.T) {
	net := tinyNet(5)
	x := NewTensor(1, 2, 8, 8)
	for i := range x.Data {
		x.Data[i] = float32(i%5) * 0.2
	}
	want := net.Forward(x, false)
	got, err := ForwardCtx(context.Background(), net, x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Data, got.Data) {
		t.Error("ForwardCtx diverges from Forward")
	}

	// Cancelling after a few layer boundaries must surface ctx.Err and no
	// tensor; the limit lands mid-net (the tiny net has >3 checkpoints).
	ctx := &pollCtx{Context: context.Background(), limit: 3}
	out, err := ForwardCtx(ctx, net, x, false)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Error("cancelled forward returned a tensor")
	}

	// An immediately-dead context stops before any layer runs.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ForwardCtx(dead, net, x, false); err != context.Canceled {
		t.Errorf("dead context: err = %v", err)
	}
}
