package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpoints store parameter values only; the architecture is rebuilt by
// code and the values are poured back in by position. This keeps the format
// stable regardless of how containers nest.

// checkpoint is the on-wire format. Batch-norm running statistics are state
// rather than parameters, so they travel in their own fields.
type checkpoint struct {
	Names  []string
	Shapes [][]int
	Data   [][]float32

	BNMeans [][]float32
	BNVars  [][]float32
}

// SaveParams writes all parameters and batch-norm running statistics of the
// network to w in a gob-encoded checkpoint.
func SaveParams(w io.Writer, net Layer) error {
	params := net.Params()
	cp := checkpoint{
		Names:  make([]string, len(params)),
		Shapes: make([][]int, len(params)),
		Data:   make([][]float32, len(params)),
	}
	for i, p := range params {
		cp.Names[i] = p.Name
		cp.Shapes[i] = p.Value.Shape
		cp.Data[i] = p.Value.Data
	}
	Walk(net, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			cp.BNMeans = append(cp.BNMeans, bn.RunningMean)
			cp.BNVars = append(cp.BNVars, bn.RunningVar)
		}
	})
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("encoding checkpoint: %w", err)
	}
	return nil
}

// LoadParams reads a checkpoint from r into the network's parameters. The
// architecture must match: parameter count, order and shapes are verified.
func LoadParams(r io.Reader, net Layer) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("decoding checkpoint: %w", err)
	}
	params := net.Params()
	if len(params) != len(cp.Data) {
		return fmt.Errorf("checkpoint has %d parameters, network has %d", len(cp.Data), len(params))
	}
	for i, p := range params {
		if len(cp.Data[i]) != len(p.Value.Data) {
			return fmt.Errorf("parameter %q: checkpoint size %d, network size %d",
				p.Name, len(cp.Data[i]), len(p.Value.Data))
		}
		copy(p.Value.Data, cp.Data[i])
	}
	var bns []*BatchNorm2D
	Walk(net, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			bns = append(bns, bn)
		}
	})
	if len(bns) != len(cp.BNMeans) {
		return fmt.Errorf("checkpoint has %d batch-norm layers, network has %d", len(cp.BNMeans), len(bns))
	}
	for i, bn := range bns {
		if len(cp.BNMeans[i]) != len(bn.RunningMean) {
			return fmt.Errorf("batch-norm %d: checkpoint channels %d, network %d",
				i, len(cp.BNMeans[i]), len(bn.RunningMean))
		}
		copy(bn.RunningMean, cp.BNMeans[i])
		copy(bn.RunningVar, cp.BNVars[i])
	}
	return nil
}
