package riskmap

import (
	"math"
	"testing"

	"safeland/internal/imaging"
	"safeland/internal/urban"
)

func testScene(seed int64) *urban.Scene {
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	return urban.Generate(cfg, urban.DefaultConditions(), seed)
}

func TestBuildStaticForbidsFootprints(t *testing.T) {
	s := testScene(3)
	risk := BuildStatic(s.Layout, s.Labels.W, s.Labels.H, s.MPP, DefaultStaticConfig())
	// Road centers must be forbidden.
	for _, r := range s.Layout.Roads {
		px := int(r.Rect.CenterX() / s.MPP)
		py := int(r.Rect.CenterY() / s.MPP)
		if !risk.In(px, py) {
			continue
		}
		if !math.IsInf(float64(risk.At(px, py)), 1) {
			t.Errorf("road center (%d,%d) risk = %v, want +Inf", px, py, risk.At(px, py))
		}
	}
	for _, b := range s.Layout.Buildings {
		px := int(b.Rect.CenterX() / s.MPP)
		py := int(b.Rect.CenterY() / s.MPP)
		if !risk.In(px, py) {
			continue
		}
		if !math.IsInf(float64(risk.At(px, py)), 1) {
			t.Errorf("building center risk not +Inf")
		}
	}
}

func TestBuildStaticDecaysWithDistance(t *testing.T) {
	// A single road in an otherwise empty layout: risk decays to zero.
	lay := &urban.Layout{
		WorldW: 64, WorldH: 64,
		Roads: []urban.RoadM{{Rect: urban.RectM{X0: 0, Y0: 30, X1: 64, Y1: 34}, Horizontal: true}},
	}
	risk := BuildStatic(lay, 128, 128, 0.5, DefaultStaticConfig())
	nearRoad := risk.At(64, 70) // ~1 m from edge
	farther := risk.At(64, 100) // ~16 m
	veryFar := risk.At(64, 127) // ~30 m, beyond the 20 m range
	if !(nearRoad > farther) {
		t.Errorf("risk near road (%v) not above farther (%v)", nearRoad, farther)
	}
	if veryFar != 0 {
		t.Errorf("risk beyond influence range = %v, want 0", veryFar)
	}
}

func TestSelectZoneAvoidsRoads(t *testing.T) {
	s := testScene(9)
	risk := BuildStatic(s.Layout, s.Labels.W, s.Labels.H, s.MPP, DefaultStaticConfig())
	x0, y0, ok := SelectZone(risk, 16)
	if !ok {
		t.Skip("no feasible window in this scene")
	}
	ci := imaging.NewClassIntegral(s.Labels)
	if fr := ci.Fraction(imaging.Road, x0, y0, x0+16, y0+16); fr > 0 {
		t.Errorf("static map selected a zone containing road pixels (%.3f)", fr)
	}
	if fr := ci.Fraction(imaging.Building, x0, y0, x0+16, y0+16); fr > 0 {
		t.Errorf("zone contains building pixels (%.3f)", fr)
	}
}

func TestSelectZoneAllForbidden(t *testing.T) {
	risk := imaging.NewMap(32, 32)
	risk.Fill(float32(math.Inf(1)))
	if _, _, ok := SelectZone(risk, 8); ok {
		t.Error("selection should fail when everything is forbidden")
	}
	if _, _, ok := SelectZone(risk, 0); ok {
		t.Error("zero zone size should fail")
	}
	if _, _, ok := SelectZone(risk, 64); ok {
		t.Error("oversized zone should fail")
	}
}

func TestSelectZonePrefersLowRisk(t *testing.T) {
	risk := imaging.NewMap(64, 64)
	risk.Fill(1)
	risk.FillRect(40, 40, 56, 56, 0.1) // a low-risk pocket
	x0, y0, ok := SelectZone(risk, 12)
	if !ok {
		t.Fatal("no zone")
	}
	if x0 < 36 || y0 < 36 || x0 > 46 || y0 > 46 {
		t.Errorf("zone at (%d,%d), want inside the low-risk pocket", x0, y0)
	}
}

func TestWithDensityRaisesBusyAreas(t *testing.T) {
	s := testScene(15)
	static := BuildStatic(s.Layout, s.Labels.W, s.Labels.H, s.MPP, DefaultStaticConfig())
	noon := WithDensity(static, s.Labels, 12, 1.0)
	// Density refinement only adds risk.
	for i := range static.Pix {
		if math.IsInf(float64(static.Pix[i]), 1) {
			continue
		}
		if noon.Pix[i] < static.Pix[i] {
			t.Fatal("density refinement decreased risk somewhere")
		}
	}
	// A pixel on grass (low density) should gain less than a plaza pixel
	// (higher density), comparing equal-static-risk pixels.
	var grassGain, plazaGain float64
	var nGrass, nPlaza int
	for i, c := range s.Labels.Pix {
		if math.IsInf(float64(static.Pix[i]), 1) {
			continue
		}
		gain := float64(noon.Pix[i] - static.Pix[i])
		switch c {
		case imaging.Tree:
			grassGain += gain
			nGrass++
		case imaging.Humans:
			plazaGain += gain
			nPlaza++
		}
	}
	if nGrass > 0 && nPlaza > 0 && plazaGain/float64(nPlaza) <= grassGain/float64(nGrass) {
		t.Error("human-occupied pixels should gain more risk than trees")
	}
}
