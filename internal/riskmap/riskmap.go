// Package riskmap implements the database-driven landing-site selection
// methods from the paper's related work: static risk maps built from GIS
// features (Bleier et al. 2015 — distance to buildings, roads, power lines,
// water) and their refinement with time-of-day population density (Di Donato
// & Atkins 2017, which used cellphone-usage data).
//
// These serve as comparison baselines for the paper's vision-based EL: a
// database knows the street grid a priori but cannot see live hazards
// (traffic, parked cars, pedestrians) — exactly the gap active EL fills.
package riskmap

import (
	"math"

	"safeland/internal/imaging"
	"safeland/internal/urban"
)

// StaticConfig weighs the GIS feature layers of the risk map.
type StaticConfig struct {
	// Influence distances (m): risk decays linearly to zero at this range.
	BuildingRangeM  float64
	RoadRangeM      float64
	PowerLineRangeM float64
	WaterRangeM     float64
	// Feature weights at zero distance.
	BuildingWeight  float64
	RoadWeight      float64
	PowerLineWeight float64
	WaterWeight     float64
}

// DefaultStaticConfig returns weights following the Bleier model: roads and
// power lines dominate (risk to third parties and infrastructure), then
// buildings, then water (UAV loss only).
func DefaultStaticConfig() StaticConfig {
	return StaticConfig{
		BuildingRangeM: 12, RoadRangeM: 20, PowerLineRangeM: 15, WaterRangeM: 6,
		BuildingWeight: 0.7, RoadWeight: 1.0, PowerLineWeight: 0.9, WaterWeight: 0.5,
	}
}

// BuildStatic rasterizes the vector layout into a per-pixel risk field of
// the given dimensions. Pixels inside a hazard footprint get +Inf risk;
// elsewhere risk decays linearly with distance to each feature.
func BuildStatic(lay *urban.Layout, w, h int, mpp float64, cfg StaticConfig) *imaging.Map {
	inf := float32(math.Inf(1))
	risk := imaging.NewMap(w, h)

	// Rasterize feature masks, then distance-transform each layer once.
	buildings := imaging.NewMap(w, h)
	for _, b := range lay.Buildings {
		buildings.FillRect(int(b.Rect.X0/mpp), int(b.Rect.Y0/mpp), int(b.Rect.X1/mpp), int(b.Rect.Y1/mpp), 1)
	}
	roads := imaging.NewMap(w, h)
	for _, r := range lay.Roads {
		roads.FillRect(int(r.Rect.X0/mpp), int(r.Rect.Y0/mpp), int(r.Rect.X1/mpp), int(r.Rect.Y1/mpp), 1)
	}
	lines := imaging.NewMap(w, h)
	for _, pl := range lay.PowerLines {
		lines.ThickLine(int(pl[0]/mpp), int(pl[1]/mpp), int(pl[2]/mpp), int(pl[3]/mpp), 0, 1)
	}
	water := imaging.NewMap(w, h)
	for _, p := range lay.Ponds {
		water.FillDisk(int(p.X/mpp), int(p.Y/mpp), int(p.R/mpp), 1)
	}

	layers := []struct {
		mask   *imaging.Map
		rangeM float64
		weight float64
		hard   bool // footprint itself is forbidden
	}{
		{buildings, cfg.BuildingRangeM, cfg.BuildingWeight, true},
		{roads, cfg.RoadRangeM, cfg.RoadWeight, true},
		{lines, cfg.PowerLineRangeM, cfg.PowerLineWeight, true},
		{water, cfg.WaterRangeM, cfg.WaterWeight, true},
	}
	for _, layer := range layers {
		if layer.mask.CountAbove(0.5) == 0 {
			continue
		}
		dist := layer.mask.DistanceTransform()
		rangePx := float32(layer.rangeM / mpp)
		if rangePx <= 0 {
			rangePx = 1
		}
		for i, d := range dist.Pix {
			switch {
			case d == 0 && layer.hard:
				risk.Pix[i] = inf
			case d < rangePx:
				risk.Pix[i] += float32(layer.weight) * (1 - d/rangePx)
			}
		}
	}
	return risk
}

// WithDensity refines a static risk map with time-of-day population
// exposure (the Di Donato & Atkins dynamic-data idea): risk increases with
// the expected number of people present.
func WithDensity(static *imaging.Map, labels *imaging.LabelMap, hour, weight float64) *imaging.Map {
	density := urban.PopulationDensity(labels, hour)
	out := static.Clone()
	// Normalize density so the weight is comparable to feature risks.
	_, maxD := density.MinMax()
	if maxD <= 0 {
		return out
	}
	for i := range out.Pix {
		out.Pix[i] += float32(weight) * density.Pix[i] / maxD
	}
	return out
}

// SelectZone returns the top-left corner of the zonePx×zonePx window with
// the lowest mean risk, skipping windows containing forbidden (+Inf)
// pixels. ok is false when every window is forbidden.
func SelectZone(risk *imaging.Map, zonePx int) (x0, y0 int, ok bool) {
	if zonePx <= 0 || zonePx > risk.W || zonePx > risk.H {
		return 0, 0, false
	}
	// Replace +Inf with a sentinel so the integral stays finite, tracking
	// forbidden windows through a parallel indicator integral.
	finite := imaging.NewMap(risk.W, risk.H)
	forbidden := imaging.NewMap(risk.W, risk.H)
	for i, v := range risk.Pix {
		if math.IsInf(float64(v), 1) {
			forbidden.Pix[i] = 1
		} else {
			finite.Pix[i] = v
		}
	}
	riskIt := imaging.NewIntegral(finite)
	forbIt := imaging.NewIntegral(forbidden)

	best := math.Inf(1)
	bestX, bestY := -1, -1
	for y := 0; y+zonePx <= risk.H; y += 2 {
		for x := 0; x+zonePx <= risk.W; x += 2 {
			if forbIt.RectSum(x, y, x+zonePx, y+zonePx) > 0 {
				continue
			}
			mean := riskIt.RectMean(x, y, x+zonePx, y+zonePx)
			if mean < best {
				best = mean
				bestX, bestY = x, y
			}
		}
	}
	if bestX < 0 {
		return 0, 0, false
	}
	return bestX, bestY, true
}
