package safeland

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safeland/internal/core"
	"safeland/internal/faults"
	"safeland/internal/imaging"
)

// chaosFrame is a minimal valid request frame for stub-backend fault tests.
func chaosFrame() SelectRequest {
	return SelectRequest{Image: imaging.NewImage(32, 32), MPP: 1}
}

// TestBreakerTransitions pins the circuit-breaker state machine: threshold
// consecutive failures open it, cooldown recovery observations half-open
// it, a half-open failure re-opens it, a half-open success closes it.
func TestBreakerTransitions(t *testing.T) {
	var opened atomic.Int64
	b := newBreaker(3, 4, &opened)

	b.observe(false)
	b.observe(true) // success resets the consecutive count
	b.observe(false)
	b.observe(false)
	if !b.healthy() {
		t.Fatal("breaker opened below the consecutive-failure threshold")
	}
	b.observe(false)
	if b.healthy() || opened.Load() != 1 {
		t.Fatalf("breaker after 3 consecutive failures: healthy=%v opened=%d, want open/1", b.healthy(), opened.Load())
	}
	for i := 0; i < 4; i++ {
		if b.healthy() {
			t.Fatalf("breaker half-opened after only %d recovery observations", i)
		}
		b.observe(true)
	}
	if !b.healthy() {
		t.Fatal("breaker still open after the cooldown's recovery observations")
	}
	b.observe(false) // half-open probe fails: re-open immediately
	if b.healthy() || opened.Load() != 2 {
		t.Fatalf("failed probe: healthy=%v opened=%d, want open/2", b.healthy(), opened.Load())
	}
	for i := 0; i < 4; i++ {
		b.observe(true)
	}
	b.observe(true) // half-open probe succeeds: closed
	if !b.healthy() {
		t.Fatal("breaker not closed after a successful probe")
	}
	// Closed again: it takes a full threshold run to re-open.
	b.observe(false)
	b.observe(false)
	if !b.healthy() {
		t.Fatal("closed breaker re-opened below threshold after recovery")
	}
}

// TestEngineRetryRecoversTransientFault pins degraded-mode retry: an
// injected transient selector error on a request's first attempt is
// outrun by the bounded retry — the caller sees a clean response, the
// stats a retry, and nothing degrades.
func TestEngineRetryRecoversTransientFault(t *testing.T) {
	inj := faults.NewInjector(1, faults.Rates{})
	inj.ScheduleFault(faults.SelectorError, "shardA", 0)
	var calls atomic.Int32
	eng, err := NewEngine(
		WithSystem(stubSystem()), WithWorkers(1), WithSelector(stubFactory(&calls, nil)),
		WithShardName("shardA"), WithFaultInjector(inj), WithDegradedFallback(true),
		WithRetryBackoff(time.Microsecond, time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	resp := eng.Select(context.Background(), chaosFrame())
	if resp.Err != nil {
		t.Fatalf("faulted request not recovered: %v", resp.Err)
	}
	if resp.Retried != 1 || resp.Degraded {
		t.Fatalf("Retried=%d Degraded=%v, want 1/false", resp.Retried, resp.Degraded)
	}
	if !resp.Result.Confirmed {
		t.Error("recovered request lost its confirmed result")
	}
	st := eng.Stats()
	if st.Requests != 1 || st.Served != 1 || st.Failed != 0 || st.Retried != 1 || st.Degraded != 0 {
		t.Errorf("stats = %+v, want Requests/Served/Retried 1, Failed/Degraded 0", st)
	}
}

// TestEngineDegradesOnBlackout pins the degraded-mode fallback: a shard
// blackout persists across the retry, so the request resolves with the FT
// fallback zone — marked Degraded with its cause, state core.Degraded, and
// never a confirmed zone.
func TestEngineDegradesOnBlackout(t *testing.T) {
	inj := faults.NewInjector(1, faults.Rates{})
	inj.ScheduleFault(faults.ShardBlackout, "shardB", 0)
	var calls atomic.Int32
	eng, err := NewEngine(
		WithSystem(stubSystem()), WithWorkers(1), WithSelector(stubFactory(&calls, nil)),
		WithShardName("shardB"), WithFaultInjector(inj), WithDegradedFallback(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	resp := eng.Select(context.Background(), chaosFrame())
	if resp.Err != nil {
		t.Fatalf("blackout frame hard-failed: %v", resp.Err)
	}
	if !resp.Degraded || resp.DegradedCause != "shard-blackout" {
		t.Fatalf("Degraded=%v cause=%q, want true/shard-blackout", resp.Degraded, resp.DegradedCause)
	}
	if resp.Result.Confirmed {
		t.Fatal("degraded verdict claims a confirmed zone")
	}
	if resp.Result.State != core.Degraded {
		t.Fatalf("degraded state = %v, want core.Degraded", resp.Result.State)
	}
	if calls.Load() != 0 {
		t.Errorf("blacked-out shard still reached the backend %d times", calls.Load())
	}
	if z := resp.Result.Zone; z.SizePx <= 0 || z.X0 < 0 || z.Y0 < 0 {
		t.Errorf("fallback zone malformed: %+v", z)
	}
	st := eng.Stats()
	if st.Degraded != 1 || st.Failed != 0 {
		t.Errorf("stats Degraded=%d Failed=%d, want 1/0", st.Degraded, st.Failed)
	}
	// A second, unfaulted request serves normally.
	clean := eng.Select(context.Background(), chaosFrame())
	if clean.Err != nil || clean.Degraded || clean.Retried != 0 {
		t.Errorf("clean request: Err=%v Degraded=%v Retried=%d", clean.Err, clean.Degraded, clean.Retried)
	}
}

// TestEngineFaultSurfacesWithoutDegradedMode pins the default contract:
// with degraded mode off, an injected fault surfaces as the fault error —
// no retry, no fallback.
func TestEngineFaultSurfacesWithoutDegradedMode(t *testing.T) {
	inj := faults.NewInjector(1, faults.Rates{})
	inj.ScheduleFault(faults.SelectorError, "shardC", 0)
	var calls atomic.Int32
	eng, err := NewEngine(
		WithSystem(stubSystem()), WithWorkers(1), WithSelector(stubFactory(&calls, nil)),
		WithShardName("shardC"), WithFaultInjector(inj),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	resp := eng.Select(context.Background(), chaosFrame())
	fe := faults.AsInjected(resp.Err)
	if fe == nil || fe.Kind != faults.SelectorError {
		t.Fatalf("err = %v, want injected selector-error", resp.Err)
	}
	if resp.Retried != 0 || resp.Degraded {
		t.Errorf("fail-hard mode retried/degraded: %d/%v", resp.Retried, resp.Degraded)
	}
	if st := eng.Stats(); st.Failed != 1 || st.Retried != 0 || st.Degraded != 0 {
		t.Errorf("stats = %+v, want Failed 1 only", st)
	}
}

// TestSessionChaosRetryAndDegrade drives a descent session through the
// perception fault points: a stem corruption on a warm frame recovers via
// one cold retry, a shard blackout degrades the frame to the FT fallback,
// and the whole faulted descent replays byte-identically under the same
// injector seed and schedule.
func TestSessionChaosRetryAndDegrade(t *testing.T) {
	sys := quickSystem(t)
	scene := descentScene(42)
	frames := descentFrames(scene.Image, 3, 5)

	run := func() []SessionResponse {
		inj := faults.NewInjector(7, faults.Rates{})
		inj.ScheduleFault(faults.StemCorrupt, "uav-chaos", 1)
		inj.ScheduleFault(faults.ShardBlackout, "shardZ", 2)
		eng, err := NewEngine(
			WithSystem(sys), WithWorkers(1),
			WithShardName("shardZ"), WithFaultInjector(inj), WithDegradedFallback(true),
			WithRetryBackoff(time.Microsecond, time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		sess, err := eng.NewSession("uav-chaos")
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		out := make([]SessionResponse, 0, len(frames))
		for k, f := range frames {
			resp := sess.Advance(context.Background(), SelectRequest{Image: f, MPP: scene.MPP})
			if resp.Err != nil {
				t.Fatalf("frame %d hard-failed: %v", k, resp.Err)
			}
			out = append(out, resp)
		}
		if st := eng.Stats(); st.Frames != 3 || st.Retried != 1 || st.Degraded != 1 {
			t.Fatalf("stats Frames=%d Retried=%d Degraded=%d, want 3/1/1", st.Frames, st.Retried, st.Degraded)
		}
		return out
	}

	resps := run()
	if resps[0].Retried != 0 || resps[0].Degraded {
		t.Errorf("frame 0 should be clean: %+v", resps[0])
	}
	if resps[1].Retried != 1 || resps[1].Degraded || resps[1].Reused {
		t.Errorf("frame 1: Retried=%d Degraded=%v Reused=%v, want retry-recovered cold frame",
			resps[1].Retried, resps[1].Degraded, resps[1].Reused)
	}
	if !resps[2].Degraded || resps[2].DegradedCause != "shard-blackout" {
		t.Errorf("frame 2: Degraded=%v cause=%q, want blackout degradation", resps[2].Degraded, resps[2].DegradedCause)
	}
	if resps[2].Result.Confirmed || resps[2].Result.State != core.Degraded {
		t.Errorf("frame 2 degraded verdict: Confirmed=%v State=%v", resps[2].Result.Confirmed, resps[2].Result.State)
	}

	// Same seed, same schedule, fresh engine: the chaos run replays
	// byte-identically.
	again := run()
	for k := range resps {
		if !reflect.DeepEqual(resps[k].Result, again[k].Result) ||
			resps[k].Retried != again[k].Retried || resps[k].Degraded != again[k].Degraded {
			t.Fatalf("frame %d: chaos replay diverged", k)
		}
	}
}

// TestRouterSpilloverOnOpenBreaker pins health-aware failover: a
// breaker-open home shard rejects with ErrShardUnhealthy, the router spills
// the vehicle to a healthy shard (counting Spilled on the home shard), and
// enough placement knocks half-open the breaker again.
func TestRouterSpilloverOnOpenBreaker(t *testing.T) {
	e1, err := NewEngine(WithSystem(stubSystem()), WithWorkers(1), WithShardName("s0"))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(WithSystem(stubSystem()), WithWorkers(1), WithShardName("s1"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	homeID := vehicleHomedOn(t, r, e1)
	for i := 0; i < DefaultBreakerThreshold; i++ {
		e1.health.observe(false)
	}
	if e1.Healthy() || !e2.Healthy() {
		t.Fatalf("shard health = %v/%v, want open/closed", e1.Healthy(), e2.Healthy())
	}
	if _, err := e1.NewSession("direct"); !errors.Is(err, ErrShardUnhealthy) {
		t.Fatalf("open-breaker NewSession err = %v, want ErrShardUnhealthy", err)
	}

	sess, err := r.NewSession(homeID)
	if err != nil {
		t.Fatalf("router did not spill around the open breaker: %v", err)
	}
	defer sess.Close()
	if sess.eng != e2 {
		t.Fatal("spilled session not placed on the healthy shard")
	}
	st := r.Stats()
	if st[0].Spilled != 1 || st[1].Sessions != 1 {
		t.Errorf("Spilled=%d shard1 Sessions=%d, want 1/1", st[0].Spilled, st[1].Sessions)
	}
	if st[0].BreakerOpen != 1 || st[0].SessionRejects == 0 {
		t.Errorf("home shard BreakerOpen=%d SessionRejects=%d", st[0].BreakerOpen, st[0].SessionRejects)
	}

	// Keep knocking: within cooldown more attempts the breaker half-opens
	// and admits a probe placement.
	var probe *Session
	for i := 0; i < DefaultBreakerCooldown+1; i++ {
		if s, err := e1.NewSession(fmt.Sprintf("probe-%d", i)); err == nil {
			probe = s
			break
		}
	}
	if probe == nil {
		t.Fatal("breaker never half-opened for a probe placement")
	}
	probe.Close()
}

// TestRouterSpilloverOnSaturation pins the ErrSessionLimit spillover arm:
// a full home shard sheds the vehicle to the least-loaded shard instead of
// surfacing the rejection.
func TestRouterSpilloverOnSaturation(t *testing.T) {
	e1, err := NewEngine(WithSystem(stubSystem()), WithWorkers(1), WithMaxSessions(1))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(WithSystem(stubSystem()), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	first := vehicleHomedOn(t, r, e1)
	s1, err := r.NewSession(first)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()

	second := vehicleHomedOn(t, r, e1)
	for second == first {
		second = vehicleHomedOn(t, r, e1)
	}
	s2, err := r.NewSession(second)
	if err != nil {
		t.Fatalf("router did not spill around the saturated shard: %v", err)
	}
	defer s2.Close()
	if s2.eng != e2 {
		t.Fatal("overflow session not placed on the other shard")
	}
	if st := r.Stats(); st[0].Spilled != 1 {
		t.Errorf("home shard Spilled = %d, want 1", st[0].Spilled)
	}
}

// vehicleHomedOn returns a fresh vehicle ID whose home shard is eng.
// Successive calls return distinct IDs.
var vehicleSeq atomic.Int64

func vehicleHomedOn(t *testing.T, r *Router, eng *Engine) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("uav-%d", vehicleSeq.Add(1))
		if r.Engine(id) == eng {
			return id
		}
	}
	t.Fatal("no vehicle ID hashed to the requested shard")
	return ""
}

// TestSessionRunStream pins the streaming arm: Run serves every request
// from the channel in order, closes its output when the input closes, and
// shuts down cleanly on context cancellation.
func TestSessionRunStream(t *testing.T) {
	sys := quickSystem(t)
	scene := descentScene(42)
	frames := descentFrames(scene.Image, 3, 11)
	eng, err := NewEngine(WithSystem(sys), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess, err := eng.NewSession("uav-stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	in := make(chan SelectRequest)
	out := sess.Run(context.Background(), in)
	go func() {
		for _, f := range frames {
			in <- SelectRequest{Image: f, MPP: scene.MPP}
		}
		close(in)
	}()
	var got int
	for resp := range out {
		if resp.Err != nil {
			t.Errorf("streamed frame %d: %v", got, resp.Err)
		}
		got++
	}
	if got != len(frames) {
		t.Fatalf("streamed %d responses for %d frames", got, len(frames))
	}
	if st := eng.Stats(); st.Frames != int64(len(frames)) {
		t.Errorf("stats Frames = %d, want %d", st.Frames, len(frames))
	}

	// Cancellation: the stream ends without consuming further input.
	ctx, cancel := context.WithCancel(context.Background())
	in2 := make(chan SelectRequest)
	out2 := sess.Run(ctx, in2)
	cancel()
	if _, ok := <-out2; ok {
		t.Error("cancelled stream delivered a response for no request")
	}
}

// TestSessionFleetChaosHammer is the -race chaos drill: a two-shard fleet
// serves concurrent descents under random injected faults (selector
// errors, stem corruption, shard blackouts) while safety triggers fire on
// random sessions mid-advance and the faulted shard's breaker flaps. It
// asserts the degraded-mode availability contract — no hard-failed frames,
// no degraded frame claiming a confirmed zone, no lost responses — and
// that every worker replica is back in its pool afterwards.
func TestSessionFleetChaosHammer(t *testing.T) {
	sys := quickSystem(t)
	scene := descentScene(42)
	const vehicles, frames = 6, 4

	newShard := func(name string) *Engine {
		inj := faults.NewInjector(99, faults.Rates{
			SelectorError: 0.15, ReplicaStall: 0.1, StemCorrupt: 0.15, ShardBlackout: 0.1,
		})
		eng, err := NewEngine(
			WithSystem(sys), WithWorkers(2),
			WithShardName(name), WithFaultInjector(inj), WithDegradedFallback(true),
			WithRetryBackoff(time.Microsecond, time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	e1, e2 := newShard("shard0"), newShard("shard1")
	r, err := NewRouter(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var served, degraded atomic.Int64
	var wg sync.WaitGroup
	for v := 0; v < vehicles; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			trig := NewSafetyTrigger()
			sess, err := r.NewSession(fmt.Sprintf("uav-%02d", v), WithSessionTrigger(trig))
			if err != nil {
				t.Errorf("vehicle %d rejected: %v", v, err)
				return
			}
			defer sess.Close()
			if v%2 == 0 {
				// Half the fleet fires its safety trigger mid-descent, at a
				// per-vehicle pseudo-random moment.
				delay := time.Duration(rand.New(rand.NewSource(int64(v))).Intn(30)) * time.Millisecond
				go func() {
					time.Sleep(delay)
					trig.Trigger("chaos drill")
				}()
			}
			vframes := descentFrames(scene.Image, frames, int64(100+v))
			if v%3 == 0 {
				// A third of the fleet streams through Run instead of
				// calling Advance directly.
				in := make(chan SelectRequest)
				out := sess.Run(context.Background(), in)
				go func() {
					for _, f := range vframes {
						in <- SelectRequest{Image: f, MPP: scene.MPP}
					}
					close(in)
				}()
				for resp := range out {
					checkChaosResponse(t, v, resp, &served, &degraded)
				}
				return
			}
			for _, f := range vframes {
				checkChaosResponse(t, v, sess.Advance(context.Background(), SelectRequest{Image: f, MPP: scene.MPP}), &served, &degraded)
			}
		}(v)
	}
	wg.Wait()

	if got := served.Load(); got != vehicles*frames {
		t.Errorf("served %d responses for %d frames — responses were lost", got, vehicles*frames)
	}
	for i, e := range []*Engine{e1, e2} {
		if idle := e.pool.idle(); idle != e.Workers() {
			t.Errorf("shard %d leaked replicas: %d idle of %d workers", i, idle, e.Workers())
		}
	}
	st := r.Stats()
	var frameSum int64
	for _, s := range st {
		frameSum += s.Frames
	}
	if frameSum != vehicles*frames {
		t.Errorf("shard frame counters sum to %d, want %d", frameSum, vehicles*frames)
	}
	t.Logf("degraded %d/%d frames; per-shard stats: %+v / %+v", degraded.Load(), vehicles*frames, st[0], st[1])
}

func checkChaosResponse(t *testing.T, vehicle int, resp SessionResponse, served, degraded *atomic.Int64) {
	t.Helper()
	served.Add(1)
	if resp.Err != nil {
		t.Errorf("vehicle %d: frame hard-failed under chaos: %v", vehicle, resp.Err)
		return
	}
	if resp.Degraded {
		degraded.Add(1)
		if resp.Result.Confirmed {
			t.Errorf("vehicle %d: degraded frame claims a confirmed zone", vehicle)
		}
		if resp.Result.State != core.Degraded {
			t.Errorf("vehicle %d: degraded frame state = %v", vehicle, resp.Result.State)
		}
		if resp.DegradedCause == "" {
			t.Errorf("vehicle %d: degraded frame missing cause", vehicle)
		}
	}
}
