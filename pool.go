package safeland

import (
	"context"
	"sync"
)

// replicaPool hands out the engine's worker replicas in two priority
// classes. Waiters are FIFO within a class; a released replica always goes
// to a waiting safety-class request before any routine one, so a
// safety-switch activation jumps the whole routine queue. The pool is a
// pure scheduler: it never creates or destroys replicas, and the Engine's
// determinism does not depend on which replica serves which request (the
// monitor reseeds per call).
type replicaPool struct {
	mu      sync.Mutex
	free    []Selector
	safety  []chan Selector
	routine []chan Selector
}

func newReplicaPool(sels []Selector) *replicaPool {
	return &replicaPool{free: sels}
}

// tryAcquire returns a free replica without waiting.
func (p *replicaPool) tryAcquire() (Selector, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		sel := p.free[n-1]
		p.free = p.free[:n-1]
		return sel, true
	}
	return nil, false
}

// acquire returns a free replica, queueing in the given class when none is
// free. A cancelled wait returns ctx's error; when cancellation races a
// hand-off, the replica is re-released (never leaked) and the wait still
// fails.
func (p *replicaPool) acquire(ctx context.Context, safety bool) (Selector, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		sel := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return sel, nil
	}
	w := make(chan Selector, 1)
	q := &p.routine
	if safety {
		q = &p.safety
	}
	*q = append(*q, w)
	p.mu.Unlock()

	select {
	case sel := <-w:
		return sel, nil
	case <-ctx.Done():
		p.mu.Lock()
		removed := removeWaiter(q, w)
		p.mu.Unlock()
		if !removed {
			// A release dequeued us before the cancellation landed; the
			// hand-off into the buffered channel completes, so take the
			// replica back out and return it to the pool.
			p.release(<-w)
		}
		return nil, ctx.Err()
	}
}

// release hands the replica to the longest-waiting safety request, then the
// longest-waiting routine one, then back to the free list.
func (p *replicaPool) release(sel Selector) {
	p.mu.Lock()
	var w chan Selector
	switch {
	case len(p.safety) > 0:
		w, p.safety = p.safety[0], p.safety[1:]
	case len(p.routine) > 0:
		w, p.routine = p.routine[0], p.routine[1:]
	default:
		p.free = append(p.free, sel)
	}
	p.mu.Unlock()
	if w != nil {
		w <- sel
	}
}

func removeWaiter(q *[]chan Selector, w chan Selector) bool {
	for i, c := range *q {
		if c == w {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return true
		}
	}
	return false
}

// idle returns how many replicas are currently free. A quiescent pool must
// report its full worker count — the replica-leak check the chaos tests
// assert after hammering the engine.
func (p *replicaPool) idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
