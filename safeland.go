// Package safeland is a Go reproduction of "Certifying Emergency Landing
// for Safe Urban UAV" (Guerin, Delmas, Guiochet — DSN 2021): a certifiable
// Emergency Landing (EL) function for urban UAVs built from semantic
// segmentation, a Bayesian runtime monitor, a decision module, a SORA v2.0
// assessment engine, and the simulation substrates needed to evaluate all
// of it (procedural urban scenes, flight dynamics, casualty model).
//
// This root package is the high-level facade: build or load a trained
// System, ask it for landing zones, fly simulated missions, and produce the
// SORA certification argument. The building blocks live in internal/
// packages and are exercised by the examples/ programs, the cmd/ tools and
// the experiment suite (cmd/elbench).
package safeland

import (
	"fmt"
	"io"

	"safeland/internal/core"
	"safeland/internal/imaging"
	"safeland/internal/segment"
	"safeland/internal/sora"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

// Options configures NewSystem.
type Options struct {
	// Seed drives every stochastic component; identical options produce an
	// identical system.
	Seed int64
	// TrainScenes is the number of procedural scenes to train on.
	TrainScenes int
	// TrainSteps is the number of SGD steps.
	TrainSteps int
	// SceneSize is the generated scene side in pixels.
	SceneSize int
	// MCSamples is the Bayesian monitor sample count (paper: 10).
	MCSamples int
	// Progress, when non-nil, receives training progress lines.
	Progress io.Writer
}

// DefaultOptions returns the full-scale settings used by the tools.
func DefaultOptions() Options {
	return Options{
		Seed:        2021,
		TrainScenes: 6,
		TrainSteps:  800,
		SceneSize:   192,
		MCSamples:   10,
	}
}

// System is a ready-to-fly emergency landing stack: the trained perception
// model wrapped in the Figure 2 safety architecture, plus the vehicle it is
// sized for.
type System struct {
	Pipeline *core.Pipeline
	Spec     uav.Spec
}

// NewSystem generates training data, trains the segmentation model, and
// assembles the monitored landing pipeline.
func NewSystem(opts Options) *System {
	if opts.TrainScenes <= 0 || opts.TrainSteps <= 0 || opts.SceneSize <= 0 {
		o := DefaultOptions()
		if opts.TrainScenes <= 0 {
			opts.TrainScenes = o.TrainScenes
		}
		if opts.TrainSteps <= 0 {
			opts.TrainSteps = o.TrainSteps
		}
		if opts.SceneSize <= 0 {
			opts.SceneSize = o.SceneSize
		}
	}
	if opts.MCSamples <= 0 {
		opts.MCSamples = DefaultOptions().MCSamples
	}
	ucfg := urban.DefaultConfig()
	ucfg.W, ucfg.H = opts.SceneSize, opts.SceneSize
	scenes := urban.GenerateSet(ucfg, urban.DefaultConditions(), opts.TrainScenes, opts.Seed)

	mcfg := segment.DefaultConfig()
	mcfg.Seed = opts.Seed
	model := segment.New(mcfg)
	tcfg := segment.DefaultTrainConfig()
	tcfg.Steps = opts.TrainSteps
	tcfg.Seed = opts.Seed + 1
	tcfg.Log = opts.Progress
	segment.Train(model, scenes, tcfg)

	pipe := core.NewPipeline(model, opts.Seed+2)
	pipe.Monitor.Samples = opts.MCSamples
	return &System{Pipeline: pipe, Spec: uav.MediDelivery()}
}

// Load reads a previously saved model checkpoint and assembles the system
// around it.
func Load(path string, seed int64) (*System, error) {
	model, err := segment.Load(path, segment.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("safeland: loading system: %w", err)
	}
	return &System{Pipeline: core.NewPipeline(model, seed), Spec: uav.MediDelivery()}, nil
}

// Save writes the trained model checkpoint to path.
func (s *System) Save(path string) error {
	if err := s.Pipeline.Model.Save(path); err != nil {
		return fmt.Errorf("safeland: saving system: %w", err)
	}
	return nil
}

// SelectLandingZone runs the full Figure 2 pipeline on one on-board image:
// segmentation, zone proposal, Bayesian verification and the decision
// module. mpp is the ground sampling distance in meters per pixel.
func (s *System) SelectLandingZone(img *imaging.Image, mpp float64) core.Result {
	return s.Pipeline.SelectAndVerify(img, mpp)
}

// PlanLanding implements uav.LandingPlanner so the system can be dropped
// into the mission simulator's safety switch.
func (s *System) PlanLanding(scene *urban.Scene, xM, yM float64) (float64, float64, bool) {
	return s.Pipeline.PlanLanding(scene, xM, yM)
}

// Certify runs the SORA v2.0 assessment for the MEDI DELIVERY operation
// with this system claimed as an active-M1 mitigation under the given
// validation claims, alongside a Medium-robustness emergency response plan.
func (s *System) Certify(claims core.Claims) sora.Assessment {
	op := Operation(s.Spec)
	op.Mitigations = []sora.Mitigation{
		{Type: sora.M3, Integrity: sora.Medium, Assurance: sora.Medium},
		core.MitigationClaim(claims),
	}
	return sora.Assess(op)
}

// Operation builds the paper's MEDI DELIVERY SORA operation for a vehicle.
func Operation(spec uav.Spec) sora.Operation {
	return sora.Operation{
		Name:           spec.Name,
		SpanM:          spec.SpanM,
		KineticEnergyJ: uav.BallisticImpactEnergy(spec.MTOWKg, spec.CruiseAltM),
		Scenario:       sora.BVLOSPopulated,
		Airspace:       sora.Airspace{MaxHeightFt: spec.CruiseAltM * 3.28084, Urban: true},
	}
}
