// Package safeland is a Go reproduction of "Certifying Emergency Landing
// for Safe Urban UAV" (Guerin, Delmas, Guiochet — DSN 2021): a certifiable
// Emergency Landing (EL) function for urban UAVs built from semantic
// segmentation, a Bayesian runtime monitor, a decision module, a SORA v2.0
// assessment engine, and the simulation substrates needed to evaluate all
// of it (procedural urban scenes, flight dynamics, casualty model).
//
// This root package is the high-level facade. Its center is the Engine: a
// context-aware, concurrent request/response API for landing-zone
// selection. Construct one with functional options, then serve frames
// through explicit request/response types:
//
//	eng, err := safeland.NewEngine(
//		safeland.WithSeed(2021),
//		safeland.WithMonitorSamples(10),
//		safeland.WithWorkers(4),
//	)
//	resp := eng.Select(ctx, safeland.SelectRequest{Image: img, MPP: 0.5})
//
// Every entry point takes a context.Context; SelectBatch verifies N frames
// in parallel across the worker pool, and Serve turns the engine into a
// streaming service over a request channel. The selection backend is
// pluggable through the Selector interface: PipelineSelector is the
// paper's monitored Figure 2 pipeline, HybridSelector fuses it with a
// static GIS risk map, and BaselineSelector adapts the related-work survey
// methods, so all of them are interchangeable behind one API. Each worker
// owns a private replica of the trained model (the perception stack caches
// per-layer state and is deliberately not shared), and the monitor's
// per-call reseeding keeps concurrent results identical to sequential
// runs.
//
// System remains as the single-threaded assembly underneath the Engine —
// NewEngine builds or adopts one — holding the trained model, monitor and
// vehicle spec; all selection goes through the Engine (the former
// System.SelectLandingZone/PlanLanding shims are gone). The building
// blocks live in internal/ packages and are exercised by the examples/
// programs, the cmd/ tools and the experiment suite (cmd/elbench).
package safeland

import (
	"fmt"
	"io"

	"safeland/internal/core"
	"safeland/internal/segment"
	"safeland/internal/sora"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

// Options configures NewSystem.
type Options struct {
	// Seed drives every stochastic component; identical options produce an
	// identical system.
	Seed int64
	// TrainScenes is the number of procedural scenes to train on.
	TrainScenes int
	// TrainSteps is the number of SGD steps.
	TrainSteps int
	// SceneSize is the generated scene side in pixels.
	SceneSize int
	// MCSamples is the Bayesian monitor sample count (paper: 10).
	MCSamples int
	// Progress, when non-nil, receives training progress lines.
	Progress io.Writer
}

// DefaultOptions returns the full-scale settings used by the tools.
func DefaultOptions() Options {
	return Options{
		Seed:        2021,
		TrainScenes: 6,
		TrainSteps:  800,
		SceneSize:   192,
		MCSamples:   10,
	}
}

// System is a ready-to-fly emergency landing stack: the trained perception
// model wrapped in the Figure 2 safety architecture, plus the vehicle it is
// sized for.
type System struct {
	Pipeline *core.Pipeline
	Spec     uav.Spec
}

// NewSystem generates training data, trains the segmentation model, and
// assembles the monitored landing pipeline.
func NewSystem(opts Options) *System {
	if opts.TrainScenes <= 0 || opts.TrainSteps <= 0 || opts.SceneSize <= 0 {
		o := DefaultOptions()
		if opts.TrainScenes <= 0 {
			opts.TrainScenes = o.TrainScenes
		}
		if opts.TrainSteps <= 0 {
			opts.TrainSteps = o.TrainSteps
		}
		if opts.SceneSize <= 0 {
			opts.SceneSize = o.SceneSize
		}
	}
	if opts.MCSamples <= 0 {
		opts.MCSamples = DefaultOptions().MCSamples
	}
	ucfg := urban.DefaultConfig()
	ucfg.W, ucfg.H = opts.SceneSize, opts.SceneSize
	scenes := urban.GenerateSet(ucfg, urban.DefaultConditions(), opts.TrainScenes, opts.Seed)

	mcfg := segment.DefaultConfig()
	mcfg.Seed = opts.Seed
	model := segment.New(mcfg)
	tcfg := segment.DefaultTrainConfig()
	tcfg.Steps = opts.TrainSteps
	tcfg.Seed = opts.Seed + 1
	tcfg.Log = opts.Progress
	segment.Train(model, scenes, tcfg)

	pipe := core.NewPipeline(model, opts.Seed+2)
	pipe.Monitor.Samples = opts.MCSamples
	return &System{Pipeline: pipe, Spec: uav.MediDelivery()}
}

// Load reads a previously saved model checkpoint and assembles the system
// around it.
func Load(path string, seed int64) (*System, error) {
	model, err := segment.Load(path, segment.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("safeland: loading system: %w", err)
	}
	return &System{Pipeline: core.NewPipeline(model, seed), Spec: uav.MediDelivery()}, nil
}

// Save writes the trained model checkpoint to path.
func (s *System) Save(path string) error {
	if err := s.Pipeline.Model.Save(path); err != nil {
		return fmt.Errorf("safeland: saving system: %w", err)
	}
	return nil
}

// Replica returns an independent copy of the system sharing no mutable
// state with the original: the replica's network has private per-layer
// caches and dropout RNGs, while its parameters and batch-norm statistics
// alias the original's read-only tensors (the frozen-weights invariant of
// segment.Model.Clone — a replica pool pays for one copy of the weights).
// The monitor seed carries over so Monte-Carlo verdicts stay identical.
// This is how the Engine gives each worker a private perception stack.
func (s *System) Replica() (*System, error) {
	m, err := s.Pipeline.Model.Clone()
	if err != nil {
		return nil, fmt.Errorf("safeland: replicating system: %w", err)
	}
	return &System{Pipeline: s.Pipeline.Replica(m), Spec: s.Spec}, nil
}

// Certify runs the SORA v2.0 assessment for the given vehicle's MEDI
// DELIVERY-style operation with the emergency-landing function claimed as
// an active-M1 mitigation under the given validation claims, alongside a
// Medium-robustness emergency response plan. No trained model is needed:
// the claims are the evidence the assessment weighs.
func Certify(spec uav.Spec, claims core.Claims) sora.Assessment {
	op := Operation(spec)
	op.Mitigations = []sora.Mitigation{
		{Type: sora.M3, Integrity: sora.Medium, Assurance: sora.Medium},
		core.MitigationClaim(claims),
	}
	return sora.Assess(op)
}

// Certify runs the SORA v2.0 assessment for this system's vehicle; see the
// package-level Certify.
func (s *System) Certify(claims core.Claims) sora.Assessment {
	return Certify(s.Spec, claims)
}

// Operation builds the paper's MEDI DELIVERY SORA operation for a vehicle.
func Operation(spec uav.Spec) sora.Operation {
	return CustomOperation(spec.Name, spec.SpanM, spec.MTOWKg, spec.CruiseAltM, sora.BVLOSPopulated)
}

// CustomOperation builds a SORA operation for an arbitrary vehicle and
// operational scenario, deriving the ballistic kinetic energy and airspace
// from the physical parameters the same way Operation does for the
// paper's case study.
func CustomOperation(name string, spanM, mtowKg, altM float64, sc sora.OperationalScenario) sora.Operation {
	overCity := false
	switch sc {
	case sora.VLOSPopulated, sora.BVLOSPopulated, sora.VLOSGathering, sora.BVLOSGathering:
		overCity = true
	}
	return sora.Operation{
		Name:           name,
		SpanM:          spanM,
		KineticEnergyJ: uav.BallisticImpactEnergy(mtowKg, altM),
		Scenario:       sc,
		Airspace:       sora.Airspace{MaxHeightFt: altM * 3.28084, Urban: overCity},
	}
}
