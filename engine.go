package safeland

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"safeland/internal/core"
	"safeland/internal/faults"
	"safeland/internal/imaging"
	"safeland/internal/nn"
	"safeland/internal/sora"
	"safeland/internal/urban"
)

// SelectRequest describes one landing-zone selection over an on-board
// frame. The zero value is invalid: a request needs either an Image with a
// positive MPP, or a Scene (from which both default).
type SelectRequest struct {
	// Image is the on-board frame to select a zone in.
	Image *imaging.Image
	// MPP is the ground sampling distance in meters per pixel.
	MPP float64
	// Scene optionally attaches the full simulated scene. Backends that
	// fuse a-priori data (HybridSelector) or read height fields and ground
	// truth (BaselineSelector) require it; when set, Image and MPP default
	// from it.
	Scene *urban.Scene
	// HomeX, HomeY bias candidate ranking toward this position in meters
	// (both zero disables the bias), mirroring ZoneConfig.HomeX/HomeY.
	HomeX, HomeY float64
	// Deadline, when nonzero, bounds how long this one request may wait
	// for a worker, in addition to the context passed to the Engine call.
	// By default the deadline guards queueing only: a request that reaches
	// a worker before the deadline runs under the caller's context alone,
	// which — unlike the deadline — is honored mid-trial by the perception
	// stack, so cancelling the Engine call aborts a selection already in
	// progress. In degraded mode (WithDegradedFallback) the deadline is the
	// request's whole compute budget instead: it bounds queueing, retries
	// and the selection itself, and blowing it answers with the FT fallback
	// rather than an error.
	Deadline time.Time
}

// SelectResponse wraps one selection outcome with trace metadata.
type SelectResponse struct {
	// Result is the pipeline outcome; meaningful only when Err is nil.
	Result core.Result
	// Index is the request's position: its slice index in SelectBatch, its
	// arrival order in Serve, and 0 for a single Select.
	Index int
	// Selector names the backend that served (or would have served) the
	// request.
	Selector string
	// Queued is how long the request waited for a free worker.
	Queued time.Duration
	// Elapsed is the backend's processing time, excluding queueing.
	Elapsed time.Duration
	// Retried counts how many extra attempts this request took after a
	// transient fault (always 0 outside degraded mode, at most the bounded
	// retry budget inside it).
	Retried int
	// Degraded is true when the budget was exhausted and Result carries the
	// fault-tolerant fallback zone instead of a monitored selection:
	// Result.State is core.Degraded and Result.Confirmed is false — a
	// degraded answer never claims verification. Err is nil on a degraded
	// response; DegradedCause names the fault that exhausted the budget.
	Degraded bool
	// DegradedCause is the budget-exhausting fault ("selector-error",
	// "shard-blackout", "preempted", "budget-exhausted", ...); "" unless
	// Degraded.
	DegradedCause string
	// Err is non-nil when the request was cancelled, timed out while
	// queued, or was rejected by the backend (e.g. a malformed request).
	Err error
}

// CorpusStats is a snapshot of the scene-source cache counters an Engine
// surfaces through Stats when a source is attached with WithCorpusStats.
// The safeland package has no view into the cache itself (the scenario
// corpus lives above it and feeds Serve through request channels), so the
// counters arrive through the attached snapshot function.
type CorpusStats struct {
	// Generated counts scenes built by running the generator.
	Generated int64
	// Hits counts lookups served from the in-memory cache.
	Hits int64
	// DiskHits counts lookups satisfied from an on-disk layer.
	DiskHits int64
	// Resident is the number of distinct scenes currently cached.
	Resident int
}

// Lookups returns the total cache lookups the counters cover: every lookup
// is exactly one of a generation, a memory hit, or a disk hit.
func (s CorpusStats) Lookups() int64 { return s.Generated + s.Hits + s.DiskHits }

// EngineStats is a point-in-time snapshot of an Engine's serving counters —
// the service-dashboard view of the pool.
type EngineStats struct {
	// Requests counts selections accepted by Select, SelectBatch or Serve.
	Requests int64
	// Served counts requests that reached a worker's backend (Requests
	// minus the ones cancelled or timed out while queued).
	Served int64
	// Failed counts requests that ended in an error: an error response
	// (failed while queued or on a worker), or a Serve request dropped by
	// cancellation before reaching a worker (its caller-visible slot is
	// ErrNoResponse / the context's error).
	Failed int64
	// Sessions is the number of descent sessions currently open (NewSession
	// minus Session.Close), bounded by the admission limit (WithMaxSessions).
	Sessions int64
	// SessionRejects counts NewSession calls refused by admission control.
	// This is the engine's backpressure signal: a session is rejected with
	// ErrSessionLimit immediately — never queued, never blocked — so the
	// fleet layer above can shed the vehicle to another shard (Router) or
	// fall back to stateless Select calls while the rejection count tells
	// operators the shard is saturated.
	SessionRejects int64
	// Frames counts session frames served successfully by Session.Advance.
	Frames int64
	// FramesReused counts the subset of Frames served by the temporal fast
	// path: the previous confirmed zone re-verified over a re-primed stem
	// instead of a full candidate search.
	FramesReused int64
	// Preempted counts routine session advances cancelled mid-trial so
	// their worker replica could be handed to a safety-class advance.
	Preempted int64
	// Degraded counts requests and session frames answered by the
	// fault-tolerant fallback after their compute budget was exhausted
	// (WithDegradedFallback). Degraded frames are included in Frames — they
	// were served, just not by the monitored pipeline.
	Degraded int64
	// Retried counts extra attempts spent outrunning transient faults in
	// degraded mode (injected faults, preempted advances). One recovered
	// frame contributes one retry and no degradation.
	Retried int64
	// Spilled counts sessions the Router placed on this shard because the
	// vehicle's home shard was saturated or breaker-open. The counter lives
	// on the home shard — it reads as "sessions this shard shed elsewhere".
	Spilled int64
	// BreakerOpen counts transitions of this shard's circuit breaker into
	// the open state (WithBreaker). While open, NewSession rejects with
	// ErrShardUnhealthy (also counted in SessionRejects) and the Router
	// routes new vehicles around the shard.
	BreakerOpen int64
	// Corpus reports the attached scene source (WithCorpusStats); zero
	// when no source is attached.
	Corpus CorpusStats
}

// engineConfig collects the functional options.
type engineConfig struct {
	train       Options
	samples     int // 0 = keep the system's monitor setting
	system      *System
	checkpoint  string
	factory     SelectorFactory
	workers     int
	maxSessions int
	corpusStats func() CorpusStats

	// Fault-tolerance knobs (faulttolerance.go options).
	name             string
	inj              *faults.Injector
	degrade          bool
	backoffBase      time.Duration
	backoffMax       time.Duration
	breakerThreshold int
	breakerCooldown  int
}

// Option configures NewEngine.
type Option func(*engineConfig)

// WithSeed sets the seed driving training and the Monte-Carlo monitor.
func WithSeed(seed int64) Option {
	return func(c *engineConfig) { c.train.Seed = seed }
}

// WithMonitorSamples sets the Bayesian monitor's Monte-Carlo sample count
// (the paper uses 10). It applies to every worker replica, including ones
// built around a loaded checkpoint or an adopted System.
func WithMonitorSamples(n int) Option {
	return func(c *engineConfig) { c.samples = n; c.train.MCSamples = n }
}

// WithTraining sets the in-process training scale used when neither
// WithSystem nor WithCheckpoint supplies a trained model.
func WithTraining(scenes, steps, sceneSizePx int) Option {
	return func(c *engineConfig) {
		c.train.TrainScenes = scenes
		c.train.TrainSteps = steps
		c.train.SceneSize = sceneSizePx
	}
}

// WithProgress directs training progress lines to w.
func WithProgress(w io.Writer) Option {
	return func(c *engineConfig) { c.train.Progress = w }
}

// WithSystem adopts an already-trained System as the engine's source
// model. The system itself is never used to serve requests — every worker
// gets an independent replica — so the caller keeps exclusive use of it.
func WithSystem(sys *System) Option {
	return func(c *engineConfig) { c.system = sys }
}

// WithCheckpoint loads the model from a checkpoint written by Save or
// cmd/eltrain instead of training in-process.
func WithCheckpoint(path string) Option {
	return func(c *engineConfig) { c.checkpoint = path }
}

// WithSelector chooses the selection backend. The default is
// PipelineSelector (the paper's monitored Figure 2 pipeline); see
// HybridSelector and BaselineSelector for the alternatives.
func WithSelector(f SelectorFactory) Option {
	return func(c *engineConfig) { c.factory = f }
}

// WithWorkers sets the worker-pool size — the number of requests verified
// in parallel. Values below 1 are clamped to 1. The default is
// DefaultWorkers.
//
// The pool size also shrinks per-operation parallelism inside the
// perception stack: NewEngine registers its workers with
// nn.ReserveWorkers, so a convolution inside a saturated N-worker pool
// fans out to a 1/N share of the machine instead of oversubscribing it
// N-fold. Reservations are additive across Engines in one process — two
// pools split the machine between them instead of clobbering each other —
// and Engine.Close returns the engine's share. Neither changes results,
// only scheduling.
func WithWorkers(n int) Option {
	return func(c *engineConfig) { c.workers = n }
}

// WithMaxSessions bounds how many descent sessions (NewSession) may be open
// on this engine at once. Values below 1 keep the default,
// DefaultMaxSessionsPerWorker × the worker count. Admission control rejects
// the excess with ErrSessionLimit instead of blocking — see
// EngineStats.SessionRejects for the backpressure contract.
func WithMaxSessions(n int) Option {
	return func(c *engineConfig) { c.maxSessions = n }
}

// WithCorpusStats attaches a scene-source counter snapshot to the engine:
// Engine.Stats folds fn's result into its Corpus field, so one Stats call
// describes both the pool and the cache feeding it. The scenario corpus
// provides a ready adapter (scenario.Corpus.EngineStats). fn must be safe
// for concurrent use; nil detaches.
func WithCorpusStats(fn func() CorpusStats) Option {
	return func(c *engineConfig) { c.corpusStats = fn }
}

// DefaultWorkers is the worker-pool size NewEngine uses when WithWorkers
// is not given: one worker per CPU. An earlier cap of 4 guarded against the
// pool multiplying the perception stack's internal fan-out (workers ×
// per-conv goroutines oversubscribed the machine); nn.ReserveWorkers now
// divides per-op parallelism by the registered pool size instead, so the
// pool scales with the machine without compounding parallelism.
func DefaultWorkers() int {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return n
}

// DefaultMaxSessionsPerWorker scales the default session admission limit
// (WithMaxSessions) with the worker pool: session state (a cached stem per
// vehicle) is only useful if the pool can revisit it before the fleet
// churns, so the bound grows with serving capacity.
const DefaultMaxSessionsPerWorker = 64

// Engine is the concurrent request/response front end for landing-zone
// selection: a pool of worker-private System replicas behind one pluggable
// Selector backend. Construct it with NewEngine; all methods are safe for
// concurrent use.
//
// The Engine exists because the perception stack is deliberately not
// re-entrant (forward passes cache per-layer state, Monte-Carlo dropout
// keeps per-layer RNGs): instead of locking the hot path, each worker owns
// a full replica, and the monitor's per-call reseeding keeps verdicts
// byte-identical to a sequential run regardless of scheduling. Replicas
// share their parameter tensors under the frozen-weights invariant
// (segment.Model.Clone), so an N-worker pool pays for one copy of the
// model weights plus N sets of per-layer scratch state.
type Engine struct {
	sys      *System
	workers  int
	selector string
	name     string
	pool     *replicaPool
	// inj is the chaos injector (WithFaultInjector); nil injects nothing.
	inj *faults.Injector
	// degrade enables degraded-mode serving (WithDegradedFallback): budget
	// semantics for Deadline, bounded retries, FT fallback on exhaustion.
	degrade     bool
	backoffBase time.Duration
	backoffMax  time.Duration
	// health is the per-shard circuit breaker gating session placement.
	health *breaker
	// samples is the WithMonitorSamples override, re-applied to the replica
	// each NewSession builds (worker replicas get it at construction).
	samples int
	// maxSessions is the admission limit behind NewSession.
	maxSessions int
	// release returns this pool's nn.ReserveWorkers share; idempotent.
	release func()

	corpusStats func() CorpusStats

	requests atomic.Int64
	served   atomic.Int64
	failed   atomic.Int64

	sessions       atomic.Int64
	sessionRejects atomic.Int64
	frames         atomic.Int64
	framesReused   atomic.Int64
	preempted      atomic.Int64
	degraded       atomic.Int64
	retried        atomic.Int64
	spilled        atomic.Int64
	breakerOpened  atomic.Int64

	// chaosSeq numbers stateless Select/Serve requests as fault-injection
	// frame coordinates (sessions use their own per-stream frame counter).
	chaosSeq atomic.Int64

	// preemptible registers the cancel funcs of in-flight routine session
	// advances, keyed by a monotonically increasing id so preemption picks
	// the oldest. Plain Select/SelectBatch/Serve requests never register:
	// only session traffic is preemptible.
	preemptMu   sync.Mutex
	preemptSeq  int64
	preemptible map[int64]context.CancelCauseFunc
}

// NewEngine builds an engine. The model comes from, in order of
// preference: WithSystem, WithCheckpoint, or in-process training with the
// WithSeed/WithTraining/WithMonitorSamples scale (the DefaultOptions scale
// when unset).
func NewEngine(opts ...Option) (*Engine, error) {
	cfg := engineConfig{
		train: DefaultOptions(), factory: PipelineSelector(), workers: DefaultWorkers(),
		name:        "engine",
		backoffBase: 2 * time.Millisecond, backoffMax: 50 * time.Millisecond,
		breakerThreshold: DefaultBreakerThreshold, breakerCooldown: DefaultBreakerCooldown,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.factory == nil {
		cfg.factory = PipelineSelector()
	}

	sys := cfg.system
	switch {
	case sys != nil:
	case cfg.checkpoint != "":
		var err error
		if sys, err = Load(cfg.checkpoint, cfg.train.Seed); err != nil {
			return nil, err
		}
	default:
		// In-process training runs before this pool reserves its share, so
		// it fans out to whatever the machine has left: the full machine
		// when no other Engine is serving, a fair fraction otherwise.
		sys = NewSystem(cfg.train)
	}

	// The pool saturates the machine by itself: reserve its worker count so
	// per-op parallelism shrinks to a 1/N share and workers × GOMAXPROCS
	// goroutines never pile up. The reservation is additive across Engines
	// and returned by Close.
	release := nn.ReserveWorkers(cfg.workers)

	if cfg.maxSessions < 1 {
		cfg.maxSessions = DefaultMaxSessionsPerWorker * cfg.workers
	}
	e := &Engine{
		sys:         sys,
		workers:     cfg.workers,
		samples:     cfg.samples,
		maxSessions: cfg.maxSessions,
		release:     release,
		corpusStats: cfg.corpusStats,
		preemptible: make(map[int64]context.CancelCauseFunc),
		name:        cfg.name,
		inj:         cfg.inj,
		degrade:     cfg.degrade,
		backoffBase: cfg.backoffBase,
		backoffMax:  cfg.backoffMax,
	}
	e.health = newBreaker(cfg.breakerThreshold, cfg.breakerCooldown, &e.breakerOpened)
	sels := make([]Selector, 0, cfg.workers)
	for i := 0; i < cfg.workers; i++ {
		rep, err := sys.Replica()
		if err != nil {
			release()
			return nil, fmt.Errorf("safeland: building worker %d: %w", i, err)
		}
		if cfg.samples > 0 {
			rep.Pipeline.Monitor.Samples = cfg.samples
		}
		sel, err := cfg.factory(rep)
		if err != nil {
			release()
			return nil, fmt.Errorf("safeland: building worker %d: %w", i, err)
		}
		if i == 0 {
			e.selector = sel.Name()
		}
		sels = append(sels, sel)
	}
	e.pool = newReplicaPool(sels)
	return e, nil
}

// Close returns the engine's per-op parallelism reservation to the
// process-wide registry, restoring the machine share of any other Engine
// still serving. It is idempotent, never fails, and does not tear down the
// worker pool — a closed engine keeps serving, it just no longer counts
// toward the parallelism split. Callers that build short-lived Engines
// (experiments, tests) should defer Close.
func (e *Engine) Close() error {
	if e.release != nil {
		e.release()
	}
	return nil
}

// System returns the engine's source system (model, monitor, vehicle
// spec). It is not used to serve requests, so the caller may inspect or
// even run it while the engine serves traffic.
func (e *Engine) System() *System { return e.sys }

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// SelectorName returns the name of the configured backend.
func (e *Engine) SelectorName() string { return e.selector }

// Stats returns a snapshot of the engine's serving counters, plus the
// scene-source cache counters when a source is attached (WithCorpusStats).
// Counters are cumulative over the engine's lifetime; callers tracking one
// workload diff two snapshots.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Requests:       e.requests.Load(),
		Served:         e.served.Load(),
		Failed:         e.failed.Load(),
		Sessions:       e.sessions.Load(),
		SessionRejects: e.sessionRejects.Load(),
		Frames:         e.frames.Load(),
		FramesReused:   e.framesReused.Load(),
		Preempted:      e.preempted.Load(),
		Degraded:       e.degraded.Load(),
		Retried:        e.retried.Load(),
		Spilled:        e.spilled.Load(),
		BreakerOpen:    e.breakerOpened.Load(),
	}
	if e.corpusStats != nil {
		st.Corpus = e.corpusStats()
	}
	return st
}

// Save writes the engine's model checkpoint to path.
func (e *Engine) Save(path string) error { return e.sys.Save(path) }

// Certify runs the SORA v2.0 assessment for this engine's vehicle with the
// emergency-landing function claimed under the given validation claims.
func (e *Engine) Certify(claims core.Claims) sora.Assessment {
	return Certify(e.sys.Spec, claims)
}

// Select serves one request synchronously: it waits for a free worker
// (honoring ctx and the request deadline while queued) and runs the
// backend on it. The backend keeps honoring ctx mid-trial — a cancelled
// selection stops within one network layer's work and carries ctx's error
// in the response.
func (e *Engine) Select(ctx context.Context, req SelectRequest) SelectResponse {
	return e.run(ctx, req, 0)
}

func (e *Engine) run(ctx context.Context, req SelectRequest, idx int) SelectResponse {
	e.requests.Add(1)
	resp := SelectResponse{Index: idx, Selector: e.selector}
	defer func() {
		if resp.Err != nil {
			e.failed.Add(1)
		}
	}()
	// By default the request deadline only bounds queueing, so it guards
	// the wait but never reaches the backend: once a worker starts, the
	// selection runs under the caller's context alone. In degraded mode it
	// is the whole compute budget instead (see SelectRequest.Deadline).
	waitCtx := ctx
	if !req.Deadline.IsZero() {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithDeadline(ctx, req.Deadline)
		defer cancel()
	}
	frame := int(e.chaosSeq.Add(1) - 1)
	var served bool
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			e.retried.Add(1)
			resp.Retried++
			if err := sleepCtx(waitCtx, e.retryDelay(e.name, frame, attempt)); err != nil {
				lastErr = err
				break
			}
		}
		err := e.selectOnce(ctx, waitCtx, req, frame, attempt, &served, &resp)
		if err == nil {
			e.health.observe(true)
			return resp
		}
		lastErr = err
		if attempt >= e.retryBudget() || !e.retryableFault(err) || waitCtx.Err() != nil {
			break
		}
	}
	if shardFault(lastErr, ctx) {
		e.health.observe(false)
	}
	if e.degrade && degradable(lastErr, ctx) {
		if img, mpp, ferr := req.frame(); ferr == nil {
			e.degraded.Add(1)
			resp.Degraded = true
			resp.DegradedCause = degradedCause(lastErr)
			resp.Result = e.ftFallback(req, img, mpp)
			resp.Err = nil
			return resp
		}
	}
	resp.Err = lastErr
	return resp
}

// selectOnce runs one attempt at a stateless selection: blackout check,
// slot acquisition, transient injection (first attempts only), backend
// call. Queued/Elapsed accumulate across attempts on resp.
func (e *Engine) selectOnce(ctx, waitCtx context.Context, req SelectRequest, frame, attempt int, served *bool, resp *SelectResponse) error {
	if err := e.blackedOut(frame); err != nil {
		return err
	}
	enqueued := time.Now()
	sel, err := e.pool.acquire(waitCtx, false)
	resp.Queued += time.Since(enqueued)
	if err != nil {
		return err
	}
	defer e.pool.release(sel)
	if err := waitCtx.Err(); err != nil {
		return err
	}
	if !*served {
		*served = true
		e.served.Add(1)
	}
	// In degraded mode the budget bounds the compute too.
	cctx := ctx
	if e.degrade {
		cctx = waitCtx
	}
	start := time.Now()
	defer func() { resp.Elapsed += time.Since(start) }()
	if attempt == 0 {
		if err := e.injectTransient(cctx, e.name, frame); err != nil {
			return err
		}
	}
	var serr error
	resp.Result, serr = sel.Select(cctx, req)
	return serr
}

// SelectBatch serves a batch of requests across the worker pool and
// returns when all are done. Response i always corresponds to request i,
// whatever order the workers finished in. Requests cancelled while queued
// carry ctx's error in their response; completed responses are kept even
// when ctx is cancelled mid-batch.
func (e *Engine) SelectBatch(ctx context.Context, reqs []SelectRequest) []SelectResponse {
	out := make([]SelectResponse, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = e.run(ctx, reqs[i], i)
		}(i)
	}
	wg.Wait()
	return out
}

// Serve turns the engine into a streaming service: it consumes requests
// from in until in closes or ctx is cancelled, serving up to Workers of
// them concurrently, and delivers responses on the returned channel, which
// closes when the last in-flight request is done. Like SelectBatch, a
// response whose work completed is always delivered, even when ctx is
// cancelled concurrently — callers must drain the channel until it closes
// (after cancellation at most Workers responses remain, so the drain is
// short). Response order follows completion, not arrival; Index records
// each request's arrival order, so callers can join responses back to the
// frames they streamed.
func (e *Engine) Serve(ctx context.Context, in <-chan SelectRequest) <-chan SelectResponse {
	type taggedRequest struct {
		req SelectRequest
		idx int
	}
	// A single dispatcher tags arrival order before any worker competes
	// for the request, so Index is exact even under concurrency.
	tagged := make(chan taggedRequest)
	go func() {
		defer close(tagged)
		for idx := 0; ; idx++ {
			select {
			case <-ctx.Done():
				return
			case req, ok := <-in:
				if !ok {
					return
				}
				select {
				case tagged <- taggedRequest{req, idx}:
				case <-ctx.Done():
					// The request was already consumed from in but will
					// never reach a worker: account it as accepted and
					// failed, matching what the same cancellation costs a
					// queued SelectBatch request (the caller sees the slot
					// as ErrNoResponse / ctx.Err via Gather).
					e.requests.Add(1)
					e.failed.Add(1)
					return
				}
			}
		}
	}()

	out := make(chan SelectResponse)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tr := range tagged {
				// Unconditional send: a completed response is never
				// dropped on cancellation; the dispatcher has already
				// stopped feeding new work.
				out <- e.run(ctx, tr.req, tr.idx)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Gather drains a Serve output channel into a slice ordered by request
// index: response i is the response to the i-th streamed request,
// restoring SelectBatch's positional contract on the streaming path. n
// sizes the result when the caller knows how many requests were streamed
// (pass 0 when unknown); the slice grows to fit whatever arrives. Gather
// returns when out closes, so it also performs the post-cancellation drain
// Serve requires of its callers. Slots whose requests never produced a
// response — dropped by cancellation before Serve dequeued them — carry
// ErrNoResponse; callers holding the cancelled context can translate those
// to its error (scenario.Corpus.ServeOrdered does).
func Gather(out <-chan SelectResponse, n int) []SelectResponse {
	resps := make([]SelectResponse, n)
	for i := range resps {
		resps[i] = SelectResponse{Index: i, Err: ErrNoResponse}
	}
	for resp := range out {
		for resp.Index >= len(resps) {
			resps = append(resps, SelectResponse{Index: len(resps), Err: ErrNoResponse})
		}
		resps[resp.Index] = resp
	}
	return resps
}

// ErrNoResponse marks Gather slots never filled by a response — a request
// dropped (typically by cancellation) before Serve dequeued it. Match it
// with errors.Is to distinguish an unserved request from a served failure.
var ErrNoResponse = fmt.Errorf("safeland: no response delivered for this request")

// PlanLanding implements uav.LandingPlanner, so an Engine drops straight
// into the mission simulator's safety switch: the request is built from
// the scene under the vehicle with the current position as the home bias.
func (e *Engine) PlanLanding(scene *urban.Scene, xM, yM float64) (float64, float64, bool) {
	return e.PlanLandingCtx(context.Background(), scene, xM, yM)
}

// PlanLandingCtx implements uav.LandingPlannerCtx: PlanLanding with the
// mission's context threaded through the selection, so cancelling the
// mission aborts a planning already in progress. An aborted or failed
// selection reports ok=false — the safety switch's conservative "no
// verified zone" branch.
func (e *Engine) PlanLandingCtx(ctx context.Context, scene *urban.Scene, xM, yM float64) (float64, float64, bool) {
	resp := e.Select(ctx, SelectRequest{Scene: scene, HomeX: xM, HomeY: yM})
	if resp.Err != nil || !resp.Result.Confirmed {
		return 0, 0, false
	}
	txM, tyM := resp.Result.Zone.CenterM(scene.MPP)
	return txM, tyM, true
}
