package safeland

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"safeland/internal/core"
	"safeland/internal/sora"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

var sysOnce struct {
	sync.Once
	sys *System
}

// quickSystem trains one shared small system for the facade tests.
func quickSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		sysOnce.sys = NewSystem(Options{
			Seed:        7,
			TrainScenes: 3,
			TrainSteps:  150,
			SceneSize:   128,
			MCSamples:   5,
		})
	})
	return sysOnce.sys
}

func TestNewSystemDefaultsApplied(t *testing.T) {
	// Zero options must not panic: defaults fill in (verified indirectly
	// through option plumbing — a full default build is too slow for unit
	// tests, so only validate the fill-in logic via a tiny config).
	s := quickSystem(t)
	if s.Pipeline == nil || s.Pipeline.Model == nil || s.Pipeline.Monitor == nil {
		t.Fatal("system incompletely assembled")
	}
	if s.Spec.Name != "MEDI DELIVERY" {
		t.Errorf("default vehicle = %q", s.Spec.Name)
	}
	if s.Pipeline.Monitor.Samples != 5 {
		t.Errorf("MC samples = %d, want 5", s.Pipeline.Monitor.Samples)
	}
}

func TestEngineSelectLandingZone(t *testing.T) {
	s := quickSystem(t)
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	scene := urban.Generate(cfg, urban.DefaultConditions(), 42)
	eng, err := NewEngine(WithSystem(s), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	resp := eng.Select(context.Background(), SelectRequest{Image: scene.Image, MPP: scene.MPP})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	res := resp.Result
	if res.Pred == nil {
		t.Fatal("no prediction in result")
	}
	if res.Confirmed {
		// Confirmed zone must be road-free in ground truth.
		z := res.Zone
		for y := z.Y0; y < z.Y0+z.SizePx; y++ {
			for x := z.X0; x < z.X0+z.SizePx; x++ {
				if scene.Labels.At(x, y).BusyRoad() {
					t.Fatalf("confirmed zone covers busy road at (%d,%d)", x, y)
				}
			}
		}
	}
}

func TestSystemSaveLoadRoundtrip(t *testing.T) {
	s := quickSystem(t)
	path := filepath.Join(t.TempDir(), "sys.ckpt")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	// Load uses the default architecture; the quick system is smaller, so
	// loading must fail cleanly here — exercising the error path.
	if _, err := Load(path, 1); err == nil {
		t.Log("load succeeded (architectures match)")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.ckpt"), 1); err == nil {
		t.Error("expected error for missing checkpoint")
	}
}

func TestCertifyPaperNumbers(t *testing.T) {
	s := quickSystem(t)
	// Without validation claims the EL mitigation collapses to None
	// robustness: the SORA outcome equals the paper's M3-only case.
	a := s.Certify(core.Claims{})
	if a.IntrinsicGRC != 6 {
		t.Errorf("intrinsic GRC = %d, want 6", a.IntrinsicGRC)
	}
	if a.Err != nil || a.SAIL != sora.SAILV {
		t.Errorf("SAIL without claims = %v (err %v), want SAIL V", a.SAIL, a.Err)
	}
	// Full in-context + OOD + authority-verified claims: robustness Medium,
	// GRC 6-2=4 → SAIL IV.
	full := core.Claims{InContextTesting: true, OODValidation: true, AuthorityVerifiedData: true}
	a = s.Certify(full)
	if a.FinalGRC != 4 || a.SAIL != sora.SAILIV {
		t.Errorf("certified with EL = GRC %d %v, want GRC 4 SAIL IV", a.FinalGRC, a.SAIL)
	}
}

func TestOperationMatchesPaper(t *testing.T) {
	op := Operation(uav.MediDelivery())
	if op.Scenario != sora.BVLOSPopulated {
		t.Error("operation not BVLOS populated")
	}
	if op.KineticEnergyJ < 8200 || op.KineticEnergyJ > 8260 {
		t.Errorf("kinetic energy %.0f J, want ≈8230", op.KineticEnergyJ)
	}
	if sora.InitialARC(op.Airspace) != sora.ARCc {
		t.Error("airspace should map to ARC-c")
	}
}

func TestEngineAsMissionPlanner(t *testing.T) {
	s := quickSystem(t)
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	scene := urban.Generate(cfg, urban.DefaultConditions(), 43)
	eng, err := NewEngine(WithSystem(s), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	m := &uav.Mission{
		Spec:      s.Spec,
		Scene:     scene,
		Waypoints: [][2]float64{{5, 5}, {scene.Layout.WorldW - 5, scene.Layout.WorldH - 5}},
		Base:      [2]float64{5, 5},
		Planner:   eng,
		Failures:  []uav.TimedFailure{{AtS: 3, Kind: uav.NavigationLoss}},
		Hour:      14,
	}
	out := m.Run()
	if out.Maneuver != uav.EmergencyLanding && out.Maneuver != uav.FlightTermination {
		t.Fatalf("maneuver = %v, want EL or FT fallback", out.Maneuver)
	}
	if !out.Impacted {
		t.Fatal("navigation loss must end on the ground")
	}
}
