package safeland

import (
	"context"
	"fmt"
	"math"

	"safeland/internal/baseline"
	"safeland/internal/core"
	"safeland/internal/imaging"
)

// Selector is a pluggable landing-zone selection backend behind the Engine
// API. A Selector instance is driven by at most one goroutine at a time;
// the Engine builds one instance per worker through a SelectorFactory, so
// implementations may keep per-instance scratch state but must not share
// mutable state between instances.
//
// Select should honor ctx promptly where the work is long enough to
// matter: the perception-backed backends (pipeline, hybrid) thread the
// context through the segmentation forward pass and every Monte-Carlo
// monitor trial, so a cancelled request stops within one network layer's
// work and returns ctx's error. The cheap geometric baselines run their
// window scans to completion and rely on the Engine failing fast on
// requests that are cancelled while still queued.
type Selector interface {
	// Name identifies the backend in response metadata and logs.
	Name() string
	// Select picks and (where the backend supports it) verifies a landing
	// zone for one request.
	Select(ctx context.Context, req SelectRequest) (core.Result, error)
}

// SelectorFactory builds one Selector instance for one Engine worker. The
// argument is that worker's private System replica: its model, monitor and
// pipeline are owned by the worker, so the factory may wire them into the
// backend without any locking.
type SelectorFactory func(sys *System) (Selector, error)

// frame resolves the image and scale of a request, defaulting from the
// attached scene when the caller supplied one.
func (r SelectRequest) frame() (*imaging.Image, float64, error) {
	img, mpp := r.Image, r.MPP
	if r.Scene != nil {
		if img == nil {
			img = r.Scene.Image
		}
		if mpp <= 0 {
			mpp = r.Scene.MPP
		}
	}
	if img == nil {
		return nil, 0, fmt.Errorf("safeland: request has neither Image nor Scene")
	}
	if mpp <= 0 {
		return nil, 0, fmt.Errorf("safeland: request needs a positive MPP (have %v)", mpp)
	}
	return img, mpp, nil
}

// PipelineSelector returns the default backend: the paper's Figure 2
// monitored pipeline (deterministic MSDnet, Bayesian monitor, Decision
// Module) running on the worker's model replica.
func PipelineSelector() SelectorFactory {
	return func(sys *System) (Selector, error) {
		if sys == nil || sys.Pipeline == nil {
			return nil, fmt.Errorf("safeland: pipeline selector needs a trained system")
		}
		return &pipelineSelector{pipe: sys.Pipeline}, nil
	}
}

type pipelineSelector struct{ pipe *core.Pipeline }

func (s *pipelineSelector) Name() string { return "msdnet-monitor" }

func (s *pipelineSelector) Select(ctx context.Context, req SelectRequest) (core.Result, error) {
	img, mpp, err := req.frame()
	if err != nil {
		return core.Result{}, err
	}
	zones := s.pipe.Zones
	zones.HomeX, zones.HomeY = req.HomeX, req.HomeY
	return s.pipe.SelectWithConfigCtx(ctx, img, mpp, zones)
}

// HybridSelector returns the GIS-fused backend: vision candidates filtered
// and re-ranked by the static risk map before monitor verification (the
// paper's future-work direction). Requests must carry a Scene — the static
// map is built from its layout.
func HybridSelector() SelectorFactory {
	return func(sys *System) (Selector, error) {
		if sys == nil || sys.Pipeline == nil {
			return nil, fmt.Errorf("safeland: hybrid selector needs a trained system")
		}
		return &hybridSelector{h: core.NewHybrid(sys.Pipeline)}, nil
	}
}

type hybridSelector struct{ h *core.Hybrid }

func (s *hybridSelector) Name() string { return "hybrid-gis" }

func (s *hybridSelector) Select(ctx context.Context, req SelectRequest) (core.Result, error) {
	if req.Scene == nil {
		return core.Result{}, fmt.Errorf("safeland: %s selector requires SelectRequest.Scene", s.Name())
	}
	zones := s.h.Pipeline.Zones
	zones.HomeX, zones.HomeY = req.HomeX, req.HomeY
	return s.h.SelectWithConfigCtx(ctx, req.Scene, zones)
}

// BaselineSelector adapts one of the internal/baseline survey methods
// (canny edge density, flatness, tile classifier) to the Engine API, so
// the related-work comparisons run behind the same request/response
// surface as the monitored pipeline. The provided selector is shared by
// all workers; the bundled implementations only read their configuration
// during Select, which makes that safe.
//
// Baseline methods verify nothing: a pick is reported as a confirmed
// result with a single synthetic candidate and no monitor trials, and
// Result.Pred stays nil.
func BaselineSelector(sel baseline.Selector) SelectorFactory {
	return func(sys *System) (Selector, error) {
		if sel == nil {
			return nil, fmt.Errorf("safeland: nil baseline selector")
		}
		// Share the monitored pipeline's zone sizing so a cross-backend
		// comparison picks same-size zones.
		zones := core.DefaultZoneConfig()
		if sys != nil && sys.Pipeline != nil {
			zones = sys.Pipeline.Zones
		}
		return &baselineSelector{sel: sel, zones: zones}, nil
	}
}

type baselineSelector struct {
	sel   baseline.Selector
	zones core.ZoneConfig
}

func (s *baselineSelector) Name() string { return "baseline-" + s.sel.Name() }

func (s *baselineSelector) Select(_ context.Context, req SelectRequest) (core.Result, error) {
	if req.Scene == nil {
		return core.Result{}, fmt.Errorf("safeland: %s selector requires SelectRequest.Scene", s.Name())
	}
	_, mpp, err := req.frame()
	if err != nil {
		return core.Result{}, err
	}
	zonePx := int(math.Ceil(s.zones.ZoneSizeM / mpp))
	z, ok := s.sel.Select(req.Scene, zonePx)
	if !ok {
		return core.Result{State: core.Aborted}, nil
	}
	return core.Result{
		Confirmed:      true,
		State:          core.Landing,
		CandidateCount: 1,
		Zone: core.Candidate{
			X0: z.X0, Y0: z.Y0, SizePx: z.Size,
			// Baseline scores rank low-is-better; negate so higher stays
			// better like the pipeline's.
			Score: -z.Score,
		},
	}, nil
}
