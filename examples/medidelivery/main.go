// Medidelivery replays the paper's case study end to end: a defibrillator
// delivery flight across a city loses its navigation capability mid-route;
// the Figure 1 safety switch engages Emergency Landing, the monitored
// pipeline picks a zone, and the casualty model assesses the touchdown.
// A second run without EL shows the Flight Termination alternative.
//
//	go run ./examples/medidelivery
package main

import (
	"fmt"
	"os"

	"safeland"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

func main() {
	fmt.Fprintln(os.Stderr, "training the EL engine...")
	eng, err := safeland.NewEngine(
		safeland.WithSeed(3),
		safeland.WithTraining(4, 350, 192),
		safeland.WithMonitorSamples(10),
		safeland.WithWorkers(1), // the safety switch plans one landing at a time
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "medidelivery:", err)
		os.Exit(1)
	}

	cfg := urban.DefaultConfig()
	scene := urban.Generate(cfg, urban.DefaultConditions(), 777)
	spec := eng.System().Spec
	fmt.Printf("vehicle: %s — %.0f kg, %.0f m span, cruising at %.0f m\n",
		spec.Name, spec.MTOWKg, spec.SpanM, spec.CruiseAltM)
	fmt.Printf("ballistic impact energy if uncontrolled: %.2f kJ (paper: 8.23 kJ)\n\n",
		uav.BallisticImpactEnergy(spec.MTOWKg, spec.CruiseAltM)/1000)

	mission := func(planner uav.LandingPlanner, label string) {
		m := &uav.Mission{
			Spec:  spec,
			Scene: scene,
			Waypoints: [][2]float64{
				{scene.Layout.WorldW * 0.05, scene.Layout.WorldH * 0.05},
				{scene.Layout.WorldW * 0.95, scene.Layout.WorldH * 0.95},
			},
			Base:     [2]float64{scene.Layout.WorldW * 0.05, scene.Layout.WorldH * 0.05},
			Wind:     uav.NewWind(2.5, 0.5, 0.8, 11),
			Planner:  planner,
			Hour:     18, // rush hour: the worst time to fall on a road
			Failures: []uav.TimedFailure{{AtS: 6, Kind: uav.NavigationLoss}},
		}
		out := m.Run()
		fmt.Printf("--- %s ---\n", label)
		for _, line := range out.Log {
			fmt.Println(" ", line)
		}
		if out.Impacted {
			fmt.Printf("  => severity %s, expected fatalities %.4f\n\n",
				out.Assessment.Severity, out.Assessment.ExpectedFatalities)
		} else {
			fmt.Printf("  => completed safely\n\n")
		}
	}

	mission(eng, "with Emergency Landing (paper's proposal)")
	mission(nil, "without EL: flight termination from cruise altitude")
}
