// Oodmonitor reproduces the paper's Figure 4b story: the segmentation
// model, excellent in its training distribution, fails silently on a sunset
// scene — and the Bayesian runtime monitor catches the failure through
// inflated Monte-Carlo dropout uncertainty.
//
//	go run ./examples/oodmonitor
package main

import (
	"fmt"
	"os"

	"safeland"
	"safeland/internal/monitor"
	"safeland/internal/segment"
	"safeland/internal/urban"
)

func main() {
	fmt.Fprintln(os.Stderr, "training...")
	eng, err := safeland.NewEngine(
		safeland.WithSeed(5),
		safeland.WithTraining(4, 350, 160),
		safeland.WithMonitorSamples(10),
		safeland.WithWorkers(1),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oodmonitor:", err)
		os.Exit(1)
	}
	// This walkthrough probes the engine's building blocks directly — the
	// deterministic model and its Bayesian wrapper — which the facade
	// exposes through the source system.
	model := eng.System().Pipeline.Model
	bayes := eng.System().Pipeline.Monitor

	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 160, 160
	day := urban.Generate(cfg, urban.DefaultConditions(), 31)
	sunset := urban.Generate(cfg, urban.SunsetConditions(), 31)

	fmt.Println("deterministic model (the monitored 'core function'):")
	for _, c := range []struct {
		name  string
		scene *urban.Scene
	}{{"day (in-distribution)", day}, {"sunset (out-of-distribution)", sunset}} {
		conf := segment.Evaluate(model, []*urban.Scene{c.scene})
		fmt.Printf("  %-30s pixel acc %.3f, busy-road recall %.3f\n",
			c.name, conf.PixelAccuracy(), conf.BusyRoadRecall())
	}

	fmt.Println("\nBayesian monitor (10 MC-dropout samples, µ+3σ ≤ 0.125 per busy-road class):")
	rule := monitor.DefaultRule()
	for _, c := range []struct {
		name  string
		scene *urban.Scene
	}{{"day", day}, {"sunset", sunset}} {
		q := monitor.Evaluate(bayes, []*urban.Scene{c.scene}, rule)
		fmt.Printf("  %-10s %s\n", c.name, q)
	}

	fmt.Println("\nReading: on sunset imagery the core model misses essentially all roads")
	fmt.Println("(recall ≈ 0) — a silent, catastrophic failure mode. The monitor's 'miss")
	fmt.Println("coverage' is the fraction of those missed road pixels it still flags:")
	fmt.Println("the paper's claim that the monitor 'discards large road areas unseen by")
	fmt.Println("the model', and the reason Table IV makes runtime monitoring mandatory")
	fmt.Println("for ML-based emergency landing.")
}
