// Quickstart: build a small emergency-landing engine, feed it a batch of
// on-board frames, and watch the Figure 2 pipeline pick and verify a
// landing zone — with the frames verified concurrently across the engine's
// worker pool.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"safeland"
	"safeland/internal/urban"
)

func main() {
	// 1. Train a compact engine (a few seconds on a laptop). Real
	// deployments would load a checkpoint produced by cmd/eltrain via
	// safeland.WithCheckpoint instead.
	fmt.Fprintln(os.Stderr, "training a compact EL engine...")
	eng, err := safeland.NewEngine(
		safeland.WithSeed(1),
		safeland.WithTraining(5, 500, 192),
		safeland.WithMonitorSamples(10),
		safeland.WithWorkers(4),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}

	// 2. Emergency! The vehicle keeps streaming frames while no zone is
	// confirmed. Batch them through the engine: each frame runs the full
	// Figure 2 pipeline (segmentation -> zone proposals -> Bayesian
	// monitor -> decision module) on its own worker, and the responses
	// come back in request order.
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 192, 192
	var reqs []safeland.SelectRequest
	var scenes []*urban.Scene
	for frame := int64(0); frame < 4; frame++ {
		scene := urban.Generate(cfg, urban.DefaultConditions(), 4242+frame)
		scenes = append(scenes, scene)
		reqs = append(reqs, safeland.SelectRequest{Image: scene.Image, MPP: scene.MPP})
	}

	fmt.Printf("verifying %d frames on %d workers (%s backend)...\n",
		len(reqs), eng.Workers(), eng.SelectorName())
	resps := eng.SelectBatch(context.Background(), reqs)

	for i, resp := range resps {
		scene := scenes[i]
		fmt.Printf("\n--- frame %d: %.0fx%.0f m city block at %.2f m/px (%.0f ms on-worker) ---\n",
			i+1, scene.Layout.WorldW, scene.Layout.WorldH, scene.MPP,
			float64(resp.Elapsed.Microseconds())/1000)
		if resp.Err != nil {
			fmt.Println("  request failed:", resp.Err)
			continue
		}
		res := resp.Result
		for j, tr := range res.Trials {
			fmt.Printf("  trial %d: zone (%3d,%3d) road-dist %5.1f m, safe %.2f -> flagged %.3f, confirmed=%v\n",
				j+1, tr.Candidate.X0, tr.Candidate.Y0, tr.Candidate.MinRoadDistM,
				tr.Candidate.SafeFraction, tr.Verdict.FlaggedFraction, tr.Verdict.Confirmed)
		}
		fmt.Printf("  pipeline: %s\n", res.Describe())
		if !res.Confirmed {
			fmt.Println("  no zone confirmed in this frame: keep flying, try the next frame")
			continue
		}
		x, y := res.Zone.CenterM(scene.MPP)
		fmt.Println("\nground truth of the frame ('='road, '#'building, '\"'vegetation, 'T'tree):")
		fmt.Print(urban.AsciiRender(scene.Labels, 64))
		fmt.Printf("\nconfirmed landing zone center: (%.0f, %.0f) m — truth class there: %s\n",
			x, y, scene.Labels.At(int(x/scene.MPP), int(y/scene.MPP)))
		return
	}
	fmt.Println("\nno zone confirmed in any frame: the decision module aborts to flight")
	fmt.Println("termination (engines stop, parachute opens) — the safe default.")
}
