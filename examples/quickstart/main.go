// Quickstart: build a small emergency-landing system, point it at an urban
// scene, and watch the Figure 2 pipeline pick and verify a landing zone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"safeland"
	"safeland/internal/urban"
)

func main() {
	// 1. Train a compact system (a few seconds on a laptop). Real
	// deployments would load a checkpoint produced by cmd/eltrain instead.
	fmt.Fprintln(os.Stderr, "training a compact EL system...")
	sys := safeland.NewSystem(safeland.Options{
		Seed:        1,
		TrainScenes: 5,
		TrainSteps:  500,
		SceneSize:   192,
		MCSamples:   10,
	})

	// 2. Emergency! Run the Figure 2 pipeline on successive on-board frames
	// (the vehicle keeps flying while no zone is confirmed): segmentation
	// -> zone proposals -> Bayesian monitor -> decision module.
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 192, 192
	for frame := int64(0); frame < 4; frame++ {
		scene := urban.Generate(cfg, urban.DefaultConditions(), 4242+frame)
		fmt.Printf("\n--- frame %d: %.0fx%.0f m city block at %.2f m/px ---\n",
			frame+1, scene.Layout.WorldW, scene.Layout.WorldH, scene.MPP)
		res := sys.SelectLandingZone(scene.Image, scene.MPP)
		for i, tr := range res.Trials {
			fmt.Printf("  trial %d: zone (%3d,%3d) road-dist %5.1f m, safe %.2f -> flagged %.3f, confirmed=%v\n",
				i+1, tr.Candidate.X0, tr.Candidate.Y0, tr.Candidate.MinRoadDistM,
				tr.Candidate.SafeFraction, tr.Verdict.FlaggedFraction, tr.Verdict.Confirmed)
		}
		fmt.Printf("  pipeline: %s\n", res.Describe())
		if !res.Confirmed {
			fmt.Println("  no zone confirmed in this frame: keep flying, try the next frame")
			continue
		}
		x, y := res.Zone.CenterM(scene.MPP)
		fmt.Println("\nground truth of the frame ('='road, '#'building, '\"'vegetation, 'T'tree):")
		fmt.Print(urban.AsciiRender(scene.Labels, 64))
		fmt.Printf("\nconfirmed landing zone center: (%.0f, %.0f) m — truth class there: %s\n",
			x, y, scene.Labels.At(int(x/scene.MPP), int(y/scene.MPP)))
		return
	}
	fmt.Println("\nno zone confirmed in any frame: the decision module aborts to flight")
	fmt.Println("termination (engines stop, parachute opens) — the safe default.")
}
