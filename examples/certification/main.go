// Certification walks the paper's Section III-D argument: the SORA
// assessment of MEDI DELIVERY is prohibitive without new mitigations, and
// accepting Emergency Landing as an active-M1 mitigation (Tables III/IV)
// lowers the SAIL. No model training needed — this is the pure
// risk-assessment side of the reproduction.
//
//	go run ./examples/certification
package main

import (
	"fmt"

	"safeland"
	"safeland/internal/core"
	"safeland/internal/sora"
	"safeland/internal/uav"
)

func main() {
	spec := uav.MediDelivery()
	op := safeland.Operation(spec)
	fmt.Printf("case study: %s — %.1f m span, %.0f kg, %.0f m AGL over a city, BVLOS\n",
		spec.Name, spec.SpanM, spec.MTOWKg, spec.CruiseAltM)
	fmt.Printf("ballistic speed %.1f m/s, kinetic energy %.2f kJ\n\n",
		uav.BallisticImpactSpeed(spec.CruiseAltM), op.KineticEnergyJ/1000)

	// Step 1: the paper's finding — without applicable mitigations the
	// operation sits at SAIL V/VI.
	fmt.Println("1) SORA with the standard mitigations only:")
	op.Mitigations = nil
	fmt.Print(sora.Assess(op).Report("no mitigation"))
	op.Mitigations = []sora.Mitigation{{Type: sora.M3, Integrity: sora.Medium, Assurance: sora.Medium}}
	fmt.Print(sora.Assess(op).Report("M3 (ERP) at medium robustness"))

	// Step 2: the paper's proposal — EL as active-M1. The robustness this
	// implementation can claim follows from its evidence against Tables
	// III/IV.
	fmt.Println("\n2) EL self-assessment against the proposed criteria (Tables III/IV):")
	claims := core.Claims{
		InContextTesting:      true, // E7 in-distribution evaluation
		OODValidation:         true, // E7 sunset study + E10 ablations
		AuthorityVerifiedData: true, // assumed granted for this walkthrough
	}
	integ, assur := sora.EvaluateEL(core.SelfAssessment(claims))
	elMit := core.MitigationClaim(claims)
	fmt.Printf("   integrity %s, assurance %s -> robustness %s\n", integ, assur, elMit.Robustness())

	fmt.Println("\n3) SORA with EL accepted as an active-M1 mitigation:")
	// safeland.Certify bundles the M3 medium emergency response plan with
	// the EL claim — the same assessment Engine.Certify runs for a trained
	// engine.
	fmt.Print(safeland.Certify(spec, claims).Report("M3 medium + EL (active-M1)"))

	fmt.Println("\nThe SAIL drop (V -> IV) shrinks the high-robustness OSO burden — the")
	fmt.Println("certification relief the paper argues EL can provide.")
}
