package safeland

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safeland/internal/baseline"
	"safeland/internal/core"
	"safeland/internal/nn"
	"safeland/internal/segment"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

// stubSystem builds an untrained system: cheap enough for engine plumbing
// tests that never run the perception stack.
func stubSystem() *System {
	return &System{Pipeline: core.NewPipeline(segment.New(segment.DefaultConfig()), 1), Spec: uav.MediDelivery()}
}

// stubSelector records calls and echoes the request's MPP back as the
// candidate count, so tests can match responses to requests.
type stubSelector struct {
	calls *atomic.Int32
	delay func(req SelectRequest) time.Duration
}

func (s *stubSelector) Name() string { return "stub" }

func (s *stubSelector) Select(ctx context.Context, req SelectRequest) (core.Result, error) {
	s.calls.Add(1)
	if s.delay != nil {
		select {
		case <-time.After(s.delay(req)):
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
	return core.Result{Confirmed: true, State: core.Landing, CandidateCount: int(req.MPP)}, nil
}

// stubFactory shares one call counter across all workers.
func stubFactory(calls *atomic.Int32, delay func(SelectRequest) time.Duration) SelectorFactory {
	return func(*System) (Selector, error) {
		return &stubSelector{calls: calls, delay: delay}, nil
	}
}

func TestEngineOptionDefaults(t *testing.T) {
	cases := []struct {
		name        string
		opts        []Option
		wantWorkers int
		wantSel     string
	}{
		{"defaults", nil, DefaultWorkers(), "msdnet-monitor"},
		{"workers clamped to one", []Option{WithWorkers(-3)}, 1, "msdnet-monitor"},
		{"workers explicit", []Option{WithWorkers(6)}, 6, "msdnet-monitor"},
		{"hybrid backend", []Option{WithWorkers(1), WithSelector(HybridSelector())}, 1, "hybrid-gis"},
		{"baseline backend", []Option{WithWorkers(1), WithSelector(BaselineSelector(baseline.NewCanny()))},
			1, "baseline-canny-edge-density"},
		{"nil selector falls back", []Option{WithWorkers(1), WithSelector(nil)}, 1, "msdnet-monitor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine(append([]Option{WithSystem(stubSystem())}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if eng.Workers() != tc.wantWorkers {
				t.Errorf("workers = %d, want %d", eng.Workers(), tc.wantWorkers)
			}
			if eng.SelectorName() != tc.wantSel {
				t.Errorf("selector = %q, want %q", eng.SelectorName(), tc.wantSel)
			}
		})
	}
}

func TestEngineMonitorSamplesOverride(t *testing.T) {
	sys := stubSystem()
	sys.Pipeline.Monitor.Samples = 10
	eng, err := NewEngine(WithSystem(sys), WithWorkers(1), WithMonitorSamples(3))
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := eng.pool.tryAcquire()
	if !ok {
		t.Fatal("no free replica in a fresh pool")
	}
	defer eng.pool.release(sel)
	rep, ok := sel.(*pipelineSelector)
	if !ok {
		t.Fatalf("default selector is %T, want *pipelineSelector", sel)
	}
	if rep.pipe.Monitor.Samples != 3 {
		t.Errorf("replica MC samples = %d, want 3", rep.pipe.Monitor.Samples)
	}
	if sys.Pipeline.Monitor.Samples != 10 {
		t.Errorf("source system mutated: MC samples = %d, want 10", sys.Pipeline.Monitor.Samples)
	}
	if rep.pipe.Model == sys.Pipeline.Model {
		t.Error("worker shares the source model; want a replica")
	}
}

// errSelector fails requests with negative MPP — a cheap way to route some
// of a batch through the error path.
type errSelector struct{}

func (errSelector) Name() string { return "err-stub" }

func (errSelector) Select(_ context.Context, req SelectRequest) (core.Result, error) {
	if req.MPP < 0 {
		return core.Result{}, fmt.Errorf("negative MPP")
	}
	return core.Result{Confirmed: true, State: core.Landing}, nil
}

func TestEngineStatsCounters(t *testing.T) {
	eng, err := NewEngine(
		WithSystem(stubSystem()), WithWorkers(2),
		WithSelector(func(*System) (Selector, error) { return errSelector{}, nil }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st != (EngineStats{}) {
		t.Fatalf("fresh engine stats = %+v, want zero", st)
	}

	// 4 served OK, 2 served with a backend error.
	reqs := []SelectRequest{{MPP: 1}, {MPP: -1}, {MPP: 2}, {MPP: 3}, {MPP: -2}, {MPP: 4}}
	for i, resp := range eng.SelectBatch(context.Background(), reqs) {
		if wantErr := reqs[i].MPP < 0; (resp.Err != nil) != wantErr {
			t.Fatalf("response %d err = %v, want error %v", i, resp.Err, wantErr)
		}
	}
	st := eng.Stats()
	if st.Requests != 6 || st.Served != 6 || st.Failed != 2 {
		t.Errorf("after batch: stats = %+v, want 6 requests / 6 served / 2 failed", st)
	}

	// A request cancelled while queued counts as accepted and failed, but
	// never as served.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if resp := eng.Select(ctx, SelectRequest{MPP: 1}); !errors.Is(resp.Err, context.Canceled) {
		t.Fatalf("cancelled select err = %v", resp.Err)
	}
	st = eng.Stats()
	if st.Requests != 7 || st.Served != 6 || st.Failed != 3 {
		t.Errorf("after cancelled select: stats = %+v, want 7 requests / 6 served / 3 failed", st)
	}
	if st.Corpus != (CorpusStats{}) {
		t.Errorf("engine without a corpus source reports %+v", st.Corpus)
	}
}

// TestEngineStatsCountsServeDrops pins the Serve side of the accounting: a
// request the dispatcher consumed from in but dropped at cancellation must
// count as accepted and failed, exactly what the same cancellation costs a
// queued SelectBatch request. Whichever way the cancellation race resolves
// for the second request — dropped by the dispatcher, or tagged and then
// failed fast on a worker — the totals are identical, so the assertions
// are deterministic.
func TestEngineStatsCountsServeDrops(t *testing.T) {
	started := make(chan struct{})
	blocking := func(*System) (Selector, error) {
		return &stubSelector{calls: new(atomic.Int32), delay: func(SelectRequest) time.Duration {
			close(started)
			return time.Hour // released by cancellation
		}}, nil
	}
	eng, err := NewEngine(WithSystem(stubSystem()), WithWorkers(1), WithSelector(blocking))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan SelectRequest)
	out := eng.Serve(ctx, in)

	in <- SelectRequest{MPP: 1} // reaches the single worker and blocks
	<-started
	in <- SelectRequest{MPP: 2} // consumed by the dispatcher, never served
	cancel()
	close(in)
	resps := Gather(out, 2)

	if !errors.Is(resps[0].Err, context.Canceled) {
		t.Fatalf("first request err = %v, want context.Canceled", resps[0].Err)
	}
	if resps[1].Err == nil {
		t.Fatal("second request reported success despite cancellation")
	}
	st := eng.Stats()
	if st.Requests != 2 || st.Served != 1 || st.Failed != 2 {
		t.Errorf("stats after cancelled Serve = %+v, want 2 requests / 1 served / 2 failed", st)
	}
}

func TestEngineStatsSurfacesCorpusSource(t *testing.T) {
	src := CorpusStats{Generated: 27, Hits: 216, DiskHits: 3, Resident: 27}
	var snapshots atomic.Int32
	eng, err := NewEngine(
		WithSystem(stubSystem()), WithWorkers(1),
		WithCorpusStats(func() CorpusStats { snapshots.Add(1); return src }),
	)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Corpus != src {
		t.Errorf("corpus stats = %+v, want %+v", st.Corpus, src)
	}
	if got := st.Corpus.Lookups(); got != 27+216+3 {
		t.Errorf("lookups = %d, want %d", got, 27+216+3)
	}
	if snapshots.Load() != 1 {
		t.Errorf("stats source sampled %d times for one Stats call", snapshots.Load())
	}
}

func TestEngineBatchOrderMatchesInput(t *testing.T) {
	var calls atomic.Int32
	// Earlier requests sleep longer, so completion order inverts input
	// order; the response slice must still line up with the requests.
	const n = 8
	delay := func(req SelectRequest) time.Duration {
		return time.Duration(n-int(req.MPP)) * 5 * time.Millisecond
	}
	eng, err := NewEngine(WithSystem(stubSystem()), WithWorkers(4), WithSelector(stubFactory(&calls, delay)))
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]SelectRequest, n)
	for i := range reqs {
		reqs[i] = SelectRequest{MPP: float64(i + 1)}
	}
	resps := eng.SelectBatch(context.Background(), reqs)
	if len(resps) != n {
		t.Fatalf("got %d responses for %d requests", len(resps), n)
	}
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("response %d: %v", i, resp.Err)
		}
		if resp.Index != i || resp.Result.CandidateCount != i+1 {
			t.Errorf("response %d carries index %d / payload %d", i, resp.Index, resp.Result.CandidateCount)
		}
		if resp.Selector != "stub" {
			t.Errorf("response %d selector = %q", i, resp.Selector)
		}
	}
	if got := calls.Load(); got != n {
		t.Errorf("backend ran %d times, want %d", got, n)
	}
}

// cancelSelector confirms its first request and cancels the batch context
// from inside it, so every later request observes a dead context.
type cancelSelector struct {
	cancel context.CancelFunc
	calls  atomic.Int32
}

func (s *cancelSelector) Name() string { return "cancel-stub" }

func (s *cancelSelector) Select(ctx context.Context, _ SelectRequest) (core.Result, error) {
	if s.calls.Add(1) == 1 {
		s.cancel()
		return core.Result{Confirmed: true, State: core.Landing}, nil
	}
	return core.Result{}, ctx.Err()
}

func TestEngineContextCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sel := &cancelSelector{cancel: cancel}
	eng, err := NewEngine(WithSystem(stubSystem()), WithWorkers(1),
		WithSelector(func(*System) (Selector, error) { return sel, nil }))
	if err != nil {
		t.Fatal(err)
	}
	resps := eng.SelectBatch(ctx, make([]SelectRequest, 6))
	var ok, cancelled int
	for _, resp := range resps {
		switch resp.Err {
		case nil:
			ok++
		case context.Canceled:
			cancelled++
		default:
			t.Errorf("unexpected error: %v", resp.Err)
		}
	}
	if ok != 1 || cancelled != 5 {
		t.Errorf("got %d completed / %d cancelled, want 1 / 5", ok, cancelled)
	}
}

func TestEngineRequestDeadline(t *testing.T) {
	var calls atomic.Int32
	eng, err := NewEngine(WithSystem(stubSystem()), WithWorkers(1), WithSelector(stubFactory(&calls, nil)))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		req     SelectRequest
		wantErr error
	}{
		{"expired deadline", SelectRequest{MPP: 1, Deadline: time.Now().Add(-time.Second)}, context.DeadlineExceeded},
		{"no deadline", SelectRequest{MPP: 1}, nil},
		{"future deadline", SelectRequest{MPP: 1, Deadline: time.Now().Add(time.Minute)}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := eng.Select(context.Background(), tc.req)
			if resp.Err != tc.wantErr {
				t.Errorf("err = %v, want %v", resp.Err, tc.wantErr)
			}
		})
	}
}

func TestEngineServeStreams(t *testing.T) {
	var calls atomic.Int32
	eng, err := NewEngine(WithSystem(stubSystem()), WithWorkers(3), WithSelector(stubFactory(&calls, nil)))
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan SelectRequest)
	out := eng.Serve(context.Background(), in)
	const n = 7
	go func() {
		for i := 0; i < n; i++ {
			in <- SelectRequest{MPP: float64(i + 1)}
		}
		close(in)
	}()
	seen := map[int]bool{}
	for resp := range out {
		if resp.Err != nil {
			t.Fatalf("response error: %v", resp.Err)
		}
		if seen[resp.Index] {
			t.Fatalf("index %d delivered twice", resp.Index)
		}
		seen[resp.Index] = true
		// Index must record arrival order: the i-th streamed request
		// carried MPP i+1, which the stub echoes back.
		if resp.Result.CandidateCount != resp.Index+1 {
			t.Errorf("index %d tagged onto request %d", resp.Index, resp.Result.CandidateCount-1)
		}
	}
	if len(seen) != n {
		t.Fatalf("got %d responses, want %d (indices %v)", len(seen), n, seen)
	}
}

func TestEngineServeDeliversCompletedOnCancel(t *testing.T) {
	var calls atomic.Int32
	delay := func(SelectRequest) time.Duration { return 20 * time.Millisecond }
	eng, err := NewEngine(WithSystem(stubSystem()), WithWorkers(2), WithSelector(stubFactory(&calls, delay)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan SelectRequest)
	out := eng.Serve(ctx, in)
	go func() {
		defer close(in)
		for i := 0; ; i++ {
			select {
			case in <- SelectRequest{MPP: float64(i + 1)}:
			case <-ctx.Done():
				return
			}
		}
	}()
	first, ok := <-out
	if !ok || first.Err != nil {
		t.Fatalf("first response: ok=%v err=%v", ok, first.Err)
	}
	cancel()
	// The channel must still close, delivering every dequeued request's
	// response on the way; go test's timeout guards against a hang.
	for range out {
	}
}

// TestEngineSelectCancelsMidTrial pins the ctx-aware perception stack: a
// context cancelled while the pipeline is mid-selection (not merely queued)
// must surface ctx.Err() promptly instead of running the remaining
// Monte-Carlo trials to completion.
func TestEngineSelectCancelsMidTrial(t *testing.T) {
	sys := quickSystem(t)
	eng, err := NewEngine(WithSystem(sys), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	scene := urban.Generate(cfg, urban.DefaultConditions(), 55)

	// Uncancelled baseline: how long a full selection takes, and its result.
	full := eng.Select(context.Background(), SelectRequest{Image: scene.Image, MPP: scene.MPP})
	if full.Err != nil {
		t.Fatal(full.Err)
	}

	// A timeout of a small fraction of the full selection lands mid-trial:
	// the worker is free, so the request dequeues immediately and the
	// deadline expires inside the perception stack.
	timeout := full.Elapsed / 20
	if timeout < time.Millisecond {
		timeout = time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	resp := eng.Select(ctx, SelectRequest{Image: scene.Image, MPP: scene.MPP})
	if resp.Err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", resp.Err)
	}
	// "Promptly": well under the full selection time. One network layer is
	// the cancellation granularity; allow half the full run as slack.
	if waited := time.Since(start); waited > full.Elapsed/2+50*time.Millisecond {
		t.Errorf("cancelled select took %v of a %v full run", waited, full.Elapsed)
	}

	// The engine stays serviceable and deterministic after a cancellation.
	again := eng.Select(context.Background(), SelectRequest{Image: scene.Image, MPP: scene.MPP})
	if again.Err != nil {
		t.Fatal(again.Err)
	}
	if !reflect.DeepEqual(full.Result, again.Result) {
		t.Error("result after a cancelled request diverged from the baseline")
	}
}

// TestEngineReplicasShareWeights pins the replica-pool memory guarantee:
// every worker's model aliases the source system's parameter tensors.
func TestEngineReplicasShareWeights(t *testing.T) {
	sys := stubSystem()
	eng, err := NewEngine(WithSystem(sys), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	src := sys.Pipeline.Model.Net.Params()
	for w := 0; w < eng.Workers(); w++ {
		sel, free := eng.pool.tryAcquire()
		if !free {
			t.Fatalf("worker %d: no free replica in a fresh pool", w)
		}
		rep, ok := sel.(*pipelineSelector)
		if !ok {
			t.Fatalf("worker %d selector is %T", w, sel)
		}
		if rep.pipe.Model == sys.Pipeline.Model {
			t.Fatalf("worker %d shares the model instance (must be a clone)", w)
		}
		if !rep.pipe.Model.Frozen() {
			t.Errorf("worker %d replica not marked frozen", w)
		}
		got := rep.pipe.Model.Net.Params()
		for i := range src {
			if src[i].Value != got[i].Value {
				t.Fatalf("worker %d param %d (%s) copied instead of shared", w, i, src[i].Name)
			}
		}
		defer eng.pool.release(sel)
	}
}

func TestEngineSelectorInterchangeability(t *testing.T) {
	sys := quickSystem(t)
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	scene := urban.Generate(cfg, urban.DefaultConditions(), 64)

	cases := []struct {
		name     string
		factory  SelectorFactory
		wantPred bool // monitored backends expose the segmentation
	}{
		{"pipeline", PipelineSelector(), true},
		{"hybrid", HybridSelector(), true},
		{"baseline canny", BaselineSelector(baseline.NewCanny()), false},
		{"baseline flatness", BaselineSelector(baseline.Flatness{}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine(WithSystem(sys), WithWorkers(1), WithSelector(tc.factory))
			if err != nil {
				t.Fatal(err)
			}
			resp := eng.Select(context.Background(), SelectRequest{Scene: scene})
			if resp.Err != nil {
				t.Fatalf("select: %v", resp.Err)
			}
			res := resp.Result
			if tc.wantPred != (res.Pred != nil) {
				t.Errorf("prediction attached = %v, want %v", res.Pred != nil, tc.wantPred)
			}
			if res.Confirmed {
				z := res.Zone
				if z.SizePx <= 0 || z.X0 < 0 || z.Y0 < 0 ||
					z.X0+z.SizePx > scene.Image.W || z.Y0+z.SizePx > scene.Image.H {
					t.Errorf("confirmed zone out of bounds: %+v", z)
				}
			} else if res.State != core.Aborted {
				t.Errorf("unconfirmed result in state %v, want aborted", res.State)
			}
		})
	}

	t.Run("scene-requiring backends reject frame-only requests", func(t *testing.T) {
		for _, factory := range []SelectorFactory{HybridSelector(), BaselineSelector(baseline.NewCanny())} {
			eng, err := NewEngine(WithSystem(sys), WithWorkers(1), WithSelector(factory))
			if err != nil {
				t.Fatal(err)
			}
			resp := eng.Select(context.Background(), SelectRequest{Image: scene.Image, MPP: scene.MPP})
			if resp.Err == nil {
				t.Errorf("%s accepted a request without a scene", eng.SelectorName())
			}
		}
	})
}

// TestEngineBatchMatchesSequential is the API-redesign acceptance check:
// a concurrent batch over 4 workers must reproduce the sequential facade
// bit for bit, scene by scene.
func TestEngineBatchMatchesSequential(t *testing.T) {
	sys := quickSystem(t)
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128

	const n = 8
	reqs := make([]SelectRequest, n)
	seq := make([]core.Result, n)
	for i := 0; i < n; i++ {
		scene := urban.Generate(cfg, urban.DefaultConditions(), 100+int64(i))
		reqs[i] = SelectRequest{Image: scene.Image, MPP: scene.MPP}
		seq[i] = sys.Pipeline.SelectAndVerify(scene.Image, scene.MPP)
	}

	eng, err := NewEngine(WithSystem(sys), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	resps := eng.SelectBatch(context.Background(), reqs)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("scene %d: %v", i, resp.Err)
		}
		if !reflect.DeepEqual(resp.Result, seq[i]) {
			t.Errorf("scene %d diverged from sequential run:\n  batch: %s\n  seq  : %s",
				i, describeForDiff(resp.Result), describeForDiff(seq[i]))
		}
	}
}

// TestServeMatchesSelectBatch is the streaming-parity acceptance check: a
// request stream served through Serve must reproduce SelectBatch bit for
// bit, request for request, at 1 worker and at a full pool — the property
// that lets the experiment fleets move to the pipelined path without any
// report drifting.
func TestServeMatchesSelectBatch(t *testing.T) {
	sys := quickSystem(t)
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	const n = 6
	reqs := make([]SelectRequest, n)
	for i := range reqs {
		scene := urban.Generate(cfg, urban.DefaultConditions(), 700+int64(i))
		reqs[i] = SelectRequest{Image: scene.Image, MPP: scene.MPP}
	}

	refEng, err := NewEngine(WithSystem(sys), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ref := refEng.SelectBatch(context.Background(), reqs)

	for _, workers := range []int{1, 4} {
		eng, err := NewEngine(WithSystem(sys), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		in := make(chan SelectRequest)
		go func() {
			defer close(in)
			for _, req := range reqs {
				in <- req
			}
		}()
		resps := Gather(eng.Serve(context.Background(), in), n)
		if len(resps) != n {
			t.Fatalf("%d workers: gathered %d responses, want %d", workers, len(resps), n)
		}
		for i, resp := range resps {
			if resp.Err != nil {
				t.Fatalf("%d workers, request %d: %v", workers, i, resp.Err)
			}
			if resp.Index != i {
				t.Fatalf("%d workers: slot %d holds index %d", workers, i, resp.Index)
			}
			if !reflect.DeepEqual(resp.Result, ref[i].Result) {
				t.Errorf("%d workers, request %d diverged from SelectBatch:\n  serve: %s\n  batch: %s",
					workers, i, describeForDiff(resp.Result), describeForDiff(ref[i].Result))
			}
		}
	}
}

// TestGatherMarksMissingResponses pins Gather's post-cancellation
// contract: slots whose requests never produced a response carry an error
// instead of a zero value masquerading as success.
func TestGatherMarksMissingResponses(t *testing.T) {
	out := make(chan SelectResponse, 1)
	out <- SelectResponse{Index: 2, Selector: "stub"}
	close(out)
	resps := Gather(out, 4)
	if len(resps) != 4 {
		t.Fatalf("gathered %d slots, want 4", len(resps))
	}
	for i, resp := range resps {
		if resp.Index != i {
			t.Errorf("slot %d holds index %d", i, resp.Index)
		}
		if i == 2 {
			if resp.Err != nil {
				t.Errorf("delivered slot carries error %v", resp.Err)
			}
			continue
		}
		if !errors.Is(resp.Err, ErrNoResponse) {
			t.Errorf("undelivered slot %d carries %v, want ErrNoResponse", i, resp.Err)
		}
	}
	// Responses beyond n grow the slice.
	out2 := make(chan SelectResponse, 1)
	out2 <- SelectResponse{Index: 3}
	close(out2)
	if got := Gather(out2, 0); len(got) != 4 || got[3].Err != nil || got[0].Err == nil {
		t.Errorf("growth path wrong: %+v", got)
	}
}

func describeForDiff(r core.Result) string {
	return fmt.Sprintf("%s (state %v, candidates %d, buffer %.1f m)",
		r.Describe(), r.State, r.CandidateCount, r.UsedBufferM)
}

func TestSystemReplicaIsIndependentAndIdentical(t *testing.T) {
	sys := quickSystem(t)
	rep, err := sys.Replica()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pipeline.Model == sys.Pipeline.Model || rep.Pipeline.Monitor == sys.Pipeline.Monitor {
		t.Fatal("replica shares perception state with the original")
	}
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	scene := urban.Generate(cfg, urban.DefaultConditions(), 77)
	a := sys.Pipeline.Model.Predict(scene.Image)
	b := rep.Pipeline.Model.Predict(scene.Image)
	if !reflect.DeepEqual(a.Pix, b.Pix) {
		t.Error("replica predicts differently from the original")
	}
}

// TestTwoEnginesShareParallelismRegistry is the regression test for the
// process-wide nn.SetParallelism clobber: a second Engine used to overwrite
// the first's per-op cap, and closing either removed the cap entirely. With
// the ReserveWorkers registry the pools' worker counts add, each operation
// takes a share of the machine proportional to the total, and Close returns
// exactly the closing engine's share.
func TestTwoEnginesShareParallelismRegistry(t *testing.T) {
	sys := quickSystem(t)
	// The container may expose a single CPU, which would collapse every
	// share to 1; pin a machine large enough for distinct shares.
	prevProcs := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prevProcs)

	// Other tests may hold reservations of their own; assert deltas from
	// this base and derive expected shares from the asserted totals.
	base := nn.ReservedWorkers()
	expectShare := func(reserved int) int {
		eff := runtime.GOMAXPROCS(0)
		if reserved > 0 {
			eff /= reserved
			if eff < 1 {
				eff = 1
			}
		}
		return eff
	}
	check := func(stage string, wantReserved int) {
		t.Helper()
		if got := nn.ReservedWorkers(); got != wantReserved {
			t.Fatalf("%s: reserved workers = %d, want %d", stage, got, wantReserved)
		}
		if got, want := nn.Parallelism(), expectShare(wantReserved); got != want {
			t.Fatalf("%s: per-op parallelism = %d, want %d", stage, got, want)
		}
	}

	eng1, err := NewEngine(WithSystem(sys), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng1.Close()
	check("after first engine", base+2)

	eng2, err := NewEngine(WithSystem(sys), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	// The old clobber would report GOMAXPROCS/4 here regardless of eng1.
	check("after second engine", base+6)

	// Both pools serving at once — the -race run guards the registry and
	// the shared frozen weights under genuine concurrent perception work.
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	scene := urban.Generate(cfg, urban.DefaultConditions(), 91)
	reqs := []SelectRequest{
		{Image: scene.Image, MPP: scene.MPP},
		{Image: scene.Image, MPP: scene.MPP},
	}
	var wg sync.WaitGroup
	for _, eng := range []*Engine{eng1, eng2} {
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			for i, resp := range eng.SelectBatch(context.Background(), reqs) {
				if resp.Err != nil {
					t.Errorf("concurrent batch request %d: %v", i, resp.Err)
				}
			}
		}(eng)
	}
	wg.Wait()

	// Closing one engine restores the other's share — the old code reset
	// the cap to "unlimited" for everyone instead.
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	check("after closing second engine", base+2)
	if err := eng2.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	check("after double-close", base+2)
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}
	check("after closing both", base)
}
