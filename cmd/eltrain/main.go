// Command eltrain trains the MSDnet segmentation model on procedurally
// generated urban scenes and writes a checkpoint usable by elsim and the
// safeland.WithCheckpoint engine option.
//
//	eltrain -out model.ckpt -steps 500 -scenes 6
package main

import (
	"flag"
	"fmt"
	"os"

	"safeland"
	"safeland/internal/segment"
	"safeland/internal/urban"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out    = flag.String("out", "model.ckpt", "checkpoint output path")
		steps  = flag.Int("steps", 800, "training steps")
		scenes = flag.Int("scenes", 6, "training scenes")
		size   = flag.Int("size", 192, "scene side in pixels")
		seed   = flag.Int64("seed", 2021, "generation and training seed")
		eval   = flag.Bool("eval", true, "evaluate on held-out scenes after training")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "training MSDnet on %d scenes (%dpx, %d steps)...\n", *scenes, *size, *steps)
	eng, err := safeland.NewEngine(
		safeland.WithSeed(*seed),
		safeland.WithTraining(*scenes, *steps, *size),
		safeland.WithProgress(os.Stderr),
		safeland.WithWorkers(1),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eltrain: %v\n", err)
		return 1
	}

	if *eval {
		ucfg := urban.DefaultConfig()
		ucfg.W, ucfg.H = *size, *size
		test := urban.GenerateSet(ucfg, urban.DefaultConditions(), 2, *seed+1000)
		conf := segment.Evaluate(eng.System().Pipeline.Model, test)
		fmt.Printf("held-out: %s\n", conf)
	}
	if err := eng.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "eltrain: %v\n", err)
		return 1
	}
	fmt.Printf("checkpoint written to %s\n", *out)
	return 0
}
