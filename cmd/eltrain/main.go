// Command eltrain trains the MSDnet segmentation model on procedurally
// generated urban scenes and writes a checkpoint usable by elsim and the
// safeland.Load facade.
//
//	eltrain -out model.ckpt -steps 500 -scenes 6
package main

import (
	"flag"
	"fmt"
	"os"

	"safeland/internal/segment"
	"safeland/internal/urban"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out    = flag.String("out", "model.ckpt", "checkpoint output path")
		steps  = flag.Int("steps", 800, "training steps")
		scenes = flag.Int("scenes", 6, "training scenes")
		size   = flag.Int("size", 192, "scene side in pixels")
		seed   = flag.Int64("seed", 2021, "generation and training seed")
		eval   = flag.Bool("eval", true, "evaluate on held-out scenes after training")
	)
	flag.Parse()

	ucfg := urban.DefaultConfig()
	ucfg.W, ucfg.H = *size, *size
	fmt.Fprintf(os.Stderr, "generating %d training scenes (%dpx)...\n", *scenes, *size)
	train := urban.GenerateSet(ucfg, urban.DefaultConditions(), *scenes, *seed)

	mcfg := segment.DefaultConfig()
	mcfg.Seed = *seed
	model := segment.New(mcfg)
	fmt.Fprintf(os.Stderr, "training MSDnet (%d parameters, %d steps)...\n", model.ParamCount(), *steps)
	tcfg := segment.DefaultTrainConfig()
	tcfg.Steps = *steps
	tcfg.Seed = *seed + 1
	tcfg.Log = os.Stderr
	stats := segment.Train(model, train, tcfg)
	fmt.Fprintf(os.Stderr, "loss %.3f -> %.3f\n", stats.FirstLoss, stats.FinalLoss)

	if *eval {
		test := urban.GenerateSet(ucfg, urban.DefaultConditions(), 2, *seed+1000)
		conf := segment.Evaluate(model, test)
		fmt.Printf("held-out: %s\n", conf)
	}
	if err := model.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "eltrain: %v\n", err)
		return 1
	}
	fmt.Printf("checkpoint written to %s\n", *out)
	return 0
}
