package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"safeland/internal/scenario"
)

// TestRunModelFreeExperiment smoke-tests the binary entry point on an
// experiment that needs no trained model: flag parsing, env construction
// and report plumbing, without paying the training fixture.
func TestRunModelFreeExperiment(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-quick", "-run", "E1", "-workers", "2"}, &out, &errs); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errs.String())
	}
	for _, want := range []string{"seed 2021", "scale quick", "2 fleet workers", "E1", "Catastrophic"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunUnknownExperimentFails(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-quick", "-run", "E99"}, &out, io.Discard); code != 1 {
		t.Fatalf("exit code %d for unknown experiment, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-bogus"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("exit code %d for bad flag, want 2", code)
	}
}

func TestGridFromFlags(t *testing.T) {
	if _, shaped, err := gridFromFlags(0, ""); err != nil || shaped {
		t.Fatalf("no grid flags must leave the grid unshaped (shaped=%v, err=%v)", shaped, err)
	}

	axes, shaped, err := gridFromFlags(2, "winds=1, hours=2")
	if err != nil || !shaped {
		t.Fatalf("gridFromFlags(2, winds=1,hours=2) = shaped %v, err %v", shaped, err)
	}
	if got := []int{len(axes.Layouts), len(axes.Densities), len(axes.Winds), len(axes.Failures), len(axes.Hours)}; !(got[0] == 2 && got[1] == 2 && got[2] == 1 && got[3] == 2 && got[4] == 2) {
		t.Fatalf("shaped grid has axis lengths %v, want [2 2 1 2 2]", got)
	}

	// -axes applies against the full default grid, so it can hold an axis
	// wider than the -grid truncation: -grid 1 -axes winds=3 keeps all
	// three wind regimes.
	axes, _, err = gridFromFlags(1, "winds=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(axes.Winds) != 3 || len(axes.Layouts) != 1 || len(axes.Hours) != 1 {
		t.Fatalf("-grid 1 -axes winds=3 yields %d winds / %d layouts / %d hours, want 3 / 1 / 1",
			len(axes.Winds), len(axes.Layouts), len(axes.Hours))
	}

	// A -grid wider than every axis keeps the full default grid.
	axes, _, err = gridFromFlags(99, "")
	if err != nil {
		t.Fatal(err)
	}
	if axes.Scenarios() != scenario.DefaultAxes().Scenarios() {
		t.Fatalf("-grid 99 yields %d scenarios, want the full %d", axes.Scenarios(), scenario.DefaultAxes().Scenarios())
	}

	for _, spec := range []string{"bogus", "winds", "winds=x", "winds=0", "nosuch=1", "winds=9", "winds=1,winds=2"} {
		if _, _, err := gridFromFlags(0, spec); err == nil {
			t.Errorf("-axes %q must be rejected", spec)
		}
	}
	if _, _, err := gridFromFlags(-1, ""); err == nil {
		t.Error("-grid -1 must be rejected")
	}
}

// TestRunBadAxesSpecFails pins the flag-validation exit path of the binary.
func TestRunBadAxesSpecFails(t *testing.T) {
	var errs bytes.Buffer
	if code := run([]string{"-quick", "-run", "E1", "-axes", "bogus"}, io.Discard, &errs); code != 2 {
		t.Fatalf("exit code %d for bad -axes spec, want 2", code)
	}
	if !strings.Contains(errs.String(), "bogus") {
		t.Errorf("error does not name the bad entry:\n%s", errs.String())
	}
}

func TestRunSeedOverride(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-quick", "-run", "E1", "-seed", "99"}, &out, io.Discard); code != 0 {
		t.Fatal("seed override run failed")
	}
	if !strings.Contains(out.String(), "seed 99") {
		t.Errorf("seed override not reflected:\n%s", out.String())
	}
}
