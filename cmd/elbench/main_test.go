package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestRunModelFreeExperiment smoke-tests the binary entry point on an
// experiment that needs no trained model: flag parsing, env construction
// and report plumbing, without paying the training fixture.
func TestRunModelFreeExperiment(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-quick", "-run", "E1", "-workers", "2"}, &out, &errs); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errs.String())
	}
	for _, want := range []string{"seed 2021", "scale quick", "2 fleet workers", "E1", "Catastrophic"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunUnknownExperimentFails(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-quick", "-run", "E99"}, &out, io.Discard); code != 1 {
		t.Fatalf("exit code %d for unknown experiment, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-bogus"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("exit code %d for bad flag, want 2", code)
	}
}

func TestRunSeedOverride(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-quick", "-run", "E1", "-seed", "99"}, &out, io.Discard); code != 0 {
		t.Fatal("seed override run failed")
	}
	if !strings.Contains(out.String(), "seed 99") {
		t.Errorf("seed override not reflected:\n%s", out.String())
	}
}
