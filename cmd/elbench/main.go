// Command elbench regenerates every table and figure of the paper
// (experiments E1–E10, see DESIGN.md). The model-dependent experiments
// (E5, E7–E10) run as scenario fleets streamed through the safeland.Engine
// worker pool, drawing every scene from the shared content-addressed
// corpus; -workers sizes the pool without changing any reported number
// (per-scene seeding keeps fleet output byte-identical across worker
// counts), and -scenecache persists the corpus on disk so repeated runs
// skip scene generation entirely. Typical use:
//
//	elbench                 # run everything at full scale
//	elbench -run E7,E9      # run selected experiments
//	elbench -quick          # smoke-test scale
//	elbench -workers 8      # wider Engine pool for the fleets
//	elbench -scenecache /tmp/scenes   # on-disk scene corpus across runs
//	elbench -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"safeland/internal/experiments"
	"safeland/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags are parsed from args, reports go
// to stdout, progress and errors to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("elbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs  = fs.String("run", "all", "comma-separated experiment IDs (E1..E10) or 'all'")
		quick   = fs.Bool("quick", false, "reduced scale for smoke testing")
		outPth  = fs.String("out", "", "also write output to this file")
		seed    = fs.Int64("seed", 0, "override the experiment seed (0 keeps the default)")
		workers = fs.Int("workers", 0, "Engine worker-pool size for the experiment fleets (0 = auto)")
		cache   = fs.String("scenecache", "", "directory for the on-disk scene corpus (empty = in-memory only)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	var w io.Writer = stdout
	if *outPth != "" {
		f, err := os.Create(*outPth)
		if err != nil {
			fmt.Fprintf(stderr, "elbench: %v\n", err)
			return 1
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	env := experiments.NewEnv(cfg, stderr)
	if *cache != "" {
		env.Corpus = scenario.NewDiskCorpus(*cache)
	}
	fmt.Fprintf(w, "safeland experiment suite — seed %d, scale %s, %d fleet workers\n",
		cfg.Seed, scaleName(*quick), env.Workers())
	defer func() {
		st := env.Corpus.Stats()
		fmt.Fprintf(stderr, "[corpus] %d scenes generated, %d cache hits, %d disk hits\n",
			st.Generated, st.Hits, st.DiskHits)
	}()

	if *runIDs == "all" {
		if err := experiments.RunAll(env, w); err != nil {
			fmt.Fprintf(stderr, "elbench: %v\n", err)
			return 1
		}
		return 0
	}
	for _, id := range strings.Split(*runIDs, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if err := experiments.RunByID(id, env, w); err != nil {
			fmt.Fprintf(stderr, "elbench: %v\n", err)
			return 1
		}
	}
	return 0
}

func scaleName(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}
