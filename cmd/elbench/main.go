// Command elbench regenerates every table and figure of the paper
// (experiments E1–E10, see DESIGN.md) plus the E11 grid-coverage
// experiment over the scenario axes, the E12 full-frame monitoring
// study (crop-only vs whole-frame Bayesian verdicts over a shared
// per-frame stem), the E13 descent-session fleet study (per-frame
// recompute vs session temporal reuse) and the E14 chaos drill (the
// descent fleet under a published fault schedule with degraded-mode
// serving and health-aware failover). The model-dependent experiments
// (E5, E7–E14) run as scenario fleets streamed through the safeland.Engine
// worker pool, drawing every scene from the shared content-addressed
// corpus; -workers sizes the pool without changing any reported number
// (per-scene seeding keeps fleet output byte-identical across worker
// counts), and -scenecache persists the corpus on disk so repeated runs
// skip scene generation entirely. -grid and -axes shape the E11 scenario
// grid. Typical use:
//
//	elbench                 # run everything at full scale
//	elbench -run E7,E9      # run selected experiments
//	elbench -quick          # smoke-test scale
//	elbench -workers 8      # wider Engine pool for the fleets
//	elbench -scenecache /tmp/scenes   # on-disk scene corpus across runs
//	elbench -run E11 -grid 2          # E11 on a 2-variant-per-axis sub-grid
//	elbench -run E11 -axes winds=1,hours=2   # shape individual axes
//	elbench -run E12 -quick           # full-frame monitoring study, quick scale
//	elbench -run E13 -quick           # descent-session fleet study, quick scale
//	elbench -run E14 -quick           # chaos drill, quick scale
//	elbench -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"safeland/internal/experiments"
	"safeland/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags are parsed from args, reports go
// to stdout, progress and errors to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("elbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs  = fs.String("run", "all", "comma-separated experiment IDs (E1..E14) or 'all'")
		quick   = fs.Bool("quick", false, "reduced scale for smoke testing")
		outPth  = fs.String("out", "", "also write output to this file")
		seed    = fs.Int64("seed", 0, "override the experiment seed (0 keeps the default)")
		workers = fs.Int("workers", 0, "Engine worker-pool size for the experiment fleets (0 = auto)")
		cache   = fs.String("scenecache", "", "directory for the on-disk scene corpus (empty = in-memory only)")
		grid    = fs.Int("grid", 0, "truncate every E11 scenario axis to its first N variants (0 = full grid)")
		axesStr = fs.String("axes", "", "shape individual E11 axes, e.g. layouts=2,winds=1 (axes: layouts, densities, winds, failures, hours)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	if axes, shaped, err := gridFromFlags(*grid, *axesStr); err != nil {
		fmt.Fprintf(stderr, "elbench: %v\n", err)
		return 2
	} else if shaped {
		cfg.Grid = axes
	}

	var w io.Writer = stdout
	if *outPth != "" {
		f, err := os.Create(*outPth)
		if err != nil {
			fmt.Fprintf(stderr, "elbench: %v\n", err)
			return 1
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	env := experiments.NewEnv(cfg, stderr)
	if *cache != "" {
		env.Corpus = scenario.NewDiskCorpus(*cache)
	}
	fmt.Fprintf(w, "safeland experiment suite — seed %d, scale %s, %d fleet workers\n",
		cfg.Seed, scaleName(*quick), env.Workers())
	defer func() {
		st := env.Corpus.Stats()
		fmt.Fprintf(stderr, "[corpus] %d scenes generated, %d cache hits, %d disk hits\n",
			st.Generated, st.Hits, st.DiskHits)
	}()

	if *runIDs == "all" {
		if err := experiments.RunAll(env, w); err != nil {
			fmt.Fprintf(stderr, "elbench: %v\n", err)
			return 1
		}
		return 0
	}
	for _, id := range strings.Split(*runIDs, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if err := experiments.RunByID(id, env, w); err != nil {
			fmt.Fprintf(stderr, "elbench: %v\n", err)
			return 1
		}
	}
	return 0
}

func scaleName(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}

// gridFromFlags builds the E11 scenario grid from -grid/-axes. Each
// "axis=n" entry of -axes selects the first n variants of that axis of the
// *full* default grid (asking beyond the axis length errors); -grid then
// truncates only the axes -axes did not name, so "-grid 1 -axes winds=3"
// means exactly what it says: every axis at one variant except all three
// wind regimes. shaped is false when neither flag was given (the
// experiment falls back to the full default grid on its own).
func gridFromFlags(grid int, axesSpec string) (axes scenario.Axes, shaped bool, err error) {
	if grid < 0 {
		return scenario.Axes{}, false, fmt.Errorf("-grid must be >= 0 (got %d)", grid)
	}
	if grid == 0 && axesSpec == "" {
		return scenario.Axes{}, false, nil
	}
	axes = scenario.DefaultAxes()
	named := map[string]bool{}
	for _, part := range strings.Split(axesSpec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rawName, val, ok := strings.Cut(part, "=")
		if !ok {
			return scenario.Axes{}, false, fmt.Errorf("-axes entry %q is not axis=count", part)
		}
		name := strings.TrimSpace(rawName)
		if named[name] {
			return scenario.Axes{}, false, fmt.Errorf("-axes names axis %q twice", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return scenario.Axes{}, false, fmt.Errorf("-axes entry %q: count %q is not an integer", part, val)
		}
		if axes, err = axes.TruncateAxis(name, n); err != nil {
			return scenario.Axes{}, false, err
		}
		named[name] = true
	}
	if grid > 0 {
		for _, name := range scenario.AxisNames() {
			if named[name] {
				continue
			}
			// -grid clamps like Truncate: beyond-length means "keep all",
			// so the explicit-request overflow error is ignored here.
			if cut, err := axes.TruncateAxis(name, grid); err == nil {
				axes = cut
			}
		}
	}
	return axes, true, nil
}
