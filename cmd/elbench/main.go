// Command elbench regenerates every table and figure of the paper
// (experiments E1–E10, see DESIGN.md). Typical use:
//
//	elbench                 # run everything at full scale
//	elbench -run E7,E9      # run selected experiments
//	elbench -quick          # smoke-test scale
//	elbench -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"safeland/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runIDs = flag.String("run", "all", "comma-separated experiment IDs (E1..E10) or 'all'")
		quick  = flag.Bool("quick", false, "reduced scale for smoke testing")
		outPth = flag.String("out", "", "also write output to this file")
		seed   = flag.Int64("seed", 0, "override the experiment seed (0 keeps the default)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var w io.Writer = os.Stdout
	if *outPth != "" {
		f, err := os.Create(*outPth)
		if err != nil {
			fmt.Fprintf(os.Stderr, "elbench: %v\n", err)
			return 1
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	env := experiments.NewEnv(cfg, os.Stderr)
	fmt.Fprintf(w, "safeland experiment suite — seed %d, scale %s\n", cfg.Seed, scaleName(*quick))

	if *runIDs == "all" {
		if err := experiments.RunAll(env, w); err != nil {
			fmt.Fprintf(os.Stderr, "elbench: %v\n", err)
			return 1
		}
		return 0
	}
	for _, id := range strings.Split(*runIDs, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if err := experiments.RunByID(id, env, w); err != nil {
			fmt.Fprintf(os.Stderr, "elbench: %v\n", err)
			return 1
		}
	}
	return 0
}

func scaleName(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}
