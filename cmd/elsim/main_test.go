package main

import (
	"testing"

	"safeland/internal/uav"
)

func TestFailureByNameCoversAllKinds(t *testing.T) {
	names := []string{
		"none", "comm-temporary", "comm-permanent", "motor",
		"navigation", "battery", "engine", "control",
	}
	seen := map[uav.FailureKind]bool{}
	for _, n := range names {
		k, ok := failureByName(n)
		if !ok {
			t.Fatalf("name %q not recognized", n)
		}
		if seen[k] {
			t.Fatalf("name %q duplicates a failure kind", n)
		}
		seen[k] = true
	}
	for k := uav.NoFailure; k <= uav.FlightControlFault; k++ {
		if !seen[k] {
			t.Errorf("failure kind %v has no CLI name", k)
		}
	}
	if _, ok := failureByName("bogus"); ok {
		t.Error("bogus name accepted")
	}
}
