// Command elsim flies simulated MEDI DELIVERY missions over procedural
// cities with injected failures, exercising the Figure 1 safety switch and
// — when a model checkpoint is supplied or -train is set — the full
// monitored Emergency Landing pipeline.
//
//	elsim -failure navigation -train
//	elsim -failure engine -wind 4
//	elsim -failure comm-permanent -model model.ckpt
package main

import (
	"flag"
	"fmt"
	"os"

	"safeland"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

func main() {
	os.Exit(run())
}

func failureByName(name string) (uav.FailureKind, bool) {
	m := map[string]uav.FailureKind{
		"none":           uav.NoFailure,
		"comm-temporary": uav.CommLossTemporary,
		"comm-permanent": uav.CommLossPermanent,
		"motor":          uav.MotorDegraded,
		"navigation":     uav.NavigationLoss,
		"battery":        uav.BatteryCritical,
		"engine":         uav.EngineFailure,
		"control":        uav.FlightControlFault,
	}
	k, ok := m[name]
	return k, ok
}

func run() int {
	var (
		failure = flag.String("failure", "navigation", "failure to inject: none|comm-temporary|comm-permanent|motor|navigation|battery|engine|control")
		atS     = flag.Float64("at", 5, "injection time (s)")
		wind    = flag.Float64("wind", 2, "mean wind speed (m/s)")
		seed    = flag.Int64("seed", 1, "scene and wind seed")
		size    = flag.Int("size", 192, "scene side (px)")
		model   = flag.String("model", "", "trained model checkpoint for EL")
		train   = flag.Bool("train", false, "train a model in-process for EL (slower start)")
		hour    = flag.Float64("hour", 18, "local time of day")
		verbose = flag.Bool("v", true, "print the event log")
	)
	flag.Parse()

	fk, ok := failureByName(*failure)
	if !ok {
		fmt.Fprintf(os.Stderr, "elsim: unknown failure %q\n", *failure)
		return 2
	}

	ucfg := urban.DefaultConfig()
	ucfg.W, ucfg.H = *size, *size
	scene := urban.Generate(ucfg, urban.DefaultConditions(), *seed)

	// The mission simulator calls the planner from a single goroutine, so
	// one engine worker is enough; the Engine still owns the model replica,
	// keeping the pipeline re-entrant for any embedding that probes it.
	var planner uav.LandingPlanner
	switch {
	case *model != "":
		eng, err := safeland.NewEngine(
			safeland.WithCheckpoint(*model),
			safeland.WithSeed(*seed),
			safeland.WithWorkers(1),
		)
		if err != nil {
			fmt.Fprintf(os.Stderr, "elsim: %v\n", err)
			return 1
		}
		planner = eng
	case *train:
		fmt.Fprintln(os.Stderr, "training EL model in-process...")
		eng, err := safeland.NewEngine(
			safeland.WithSeed(*seed),
			safeland.WithTraining(4, 400, *size),
			safeland.WithMonitorSamples(10),
			safeland.WithProgress(os.Stderr),
			safeland.WithWorkers(1),
		)
		if err != nil {
			fmt.Fprintf(os.Stderr, "elsim: %v\n", err)
			return 1
		}
		planner = eng
	}

	spec := uav.MediDelivery()
	m := &uav.Mission{
		Spec:  spec,
		Scene: scene,
		Waypoints: [][2]float64{
			{scene.Layout.WorldW * 0.08, scene.Layout.WorldH * 0.08},
			{scene.Layout.WorldW * 0.92, scene.Layout.WorldH * 0.92},
		},
		Base:    [2]float64{scene.Layout.WorldW * 0.08, scene.Layout.WorldH * 0.08},
		Wind:    uav.NewWind(*wind, *wind/4, *wind/3, *seed+7),
		Planner: planner,
		Hour:    *hour,
	}
	if fk != uav.NoFailure {
		clear := 0.0
		if fk.Temporary() {
			clear = *atS + 12
		}
		m.Failures = []uav.TimedFailure{{AtS: *atS, Kind: fk, ClearAtS: clear}}
	}

	out := m.Run()
	if *verbose {
		for _, line := range out.Log {
			fmt.Println(line)
		}
	}
	fmt.Printf("\nmaneuver : %s\n", out.Maneuver)
	fmt.Printf("completed: %v\n", out.Completed)
	if out.Impacted {
		fmt.Printf("impact   : %s at (%.0f, %.0f) m with %.0f J\n",
			out.ImpactSurface, out.ImpactX, out.ImpactY, out.ImpactEnergyJ)
		fmt.Printf("severity : %s (E[fatalities] %.4f)\n",
			out.Assessment.Severity, out.Assessment.ExpectedFatalities)
	}
	return 0
}
