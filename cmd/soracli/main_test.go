package main

import (
	"testing"

	"safeland"
	"safeland/internal/sora"
)

func TestScenarioByNameCoversAllScenarios(t *testing.T) {
	names := []string{
		"controlled", "vlos-sparse", "bvlos-sparse", "vlos-populated",
		"bvlos-populated", "vlos-gathering", "bvlos-gathering",
	}
	seen := map[sora.OperationalScenario]bool{}
	for _, n := range names {
		s, ok := scenarioByName(n)
		if !ok {
			t.Fatalf("scenario %q not recognized", n)
		}
		seen[s] = true
	}
	for s := sora.ControlledGround; s <= sora.BVLOSGathering; s++ {
		if !seen[s] {
			t.Errorf("scenario %v unreachable from the CLI", s)
		}
	}
	if _, ok := scenarioByName("mars"); ok {
		t.Error("bogus scenario accepted")
	}
}

func TestRobustnessByName(t *testing.T) {
	for name, want := range map[string]sora.Robustness{
		"none": sora.None, "low": sora.Low, "medium": sora.Medium, "high": sora.High,
	} {
		got, ok := robustnessByName(name)
		if !ok || got != want {
			t.Errorf("robustnessByName(%q) = %v/%v", name, got, ok)
		}
	}
	if _, ok := robustnessByName("extreme"); ok {
		t.Error("bogus robustness accepted")
	}
}

func TestUrbanScenario(t *testing.T) {
	urban := func(sc sora.OperationalScenario) bool {
		return safeland.CustomOperation("t", 1, 7, 120, sc).Airspace.Urban
	}
	if !urban(sora.BVLOSPopulated) || !urban(sora.VLOSGathering) {
		t.Error("populated scenarios should be urban")
	}
	if urban(sora.VLOSSparse) || urban(sora.ControlledGround) {
		t.Error("sparse scenarios should not be urban")
	}
}
