// Command soracli runs the SORA v2.0 ground/air risk assessment for a UAV
// operation, with optional mitigation claims including the paper's
// active-M1 Emergency Landing.
//
//	soracli                                  # the paper's MEDI DELIVERY
//	soracli -el medium                       # with EL at medium robustness
//	soracli -span 3 -mtow 12 -alt 90 -scenario vlos-populated
package main

import (
	"flag"
	"fmt"
	"os"

	"safeland"
	"safeland/internal/sora"
)

func main() {
	os.Exit(run())
}

func scenarioByName(name string) (sora.OperationalScenario, bool) {
	m := map[string]sora.OperationalScenario{
		"controlled":      sora.ControlledGround,
		"vlos-sparse":     sora.VLOSSparse,
		"bvlos-sparse":    sora.BVLOSSparse,
		"vlos-populated":  sora.VLOSPopulated,
		"bvlos-populated": sora.BVLOSPopulated,
		"vlos-gathering":  sora.VLOSGathering,
		"bvlos-gathering": sora.BVLOSGathering,
	}
	s, ok := m[name]
	return s, ok
}

func robustnessByName(name string) (sora.Robustness, bool) {
	m := map[string]sora.Robustness{
		"none": sora.None, "low": sora.Low, "medium": sora.Medium, "high": sora.High,
	}
	r, ok := m[name]
	return r, ok
}

func run() int {
	var (
		span     = flag.Float64("span", 1.0, "UAV characteristic dimension (m)")
		mtow     = flag.Float64("mtow", 7.0, "maximum take-off weight (kg)")
		alt      = flag.Float64("alt", 120, "cruise altitude (m AGL)")
		scenario = flag.String("scenario", "bvlos-populated", "operational scenario")
		m3       = flag.String("m3", "medium", "M3 emergency response plan robustness: none|low|medium|high")
		m2       = flag.String("m2", "none", "M2 impact-reduction robustness")
		el       = flag.String("el", "none", "EL active-M1 robustness (the paper's proposal)")
		criteria = flag.Bool("criteria", false, "print the EL integrity/assurance criteria tables")
	)
	flag.Parse()

	if *criteria {
		fmt.Println(sora.CriteriaTable(sora.Integrity))
		fmt.Println(sora.CriteriaTable(sora.Assurance))
	}

	sc, ok := scenarioByName(*scenario)
	if !ok {
		fmt.Fprintf(os.Stderr, "soracli: unknown scenario %q\n", *scenario)
		return 2
	}
	op := safeland.CustomOperation("custom operation", *span, *mtow, *alt, sc)
	ke := op.KineticEnergyJ
	for _, claim := range []struct {
		flagV string
		typ   sora.MitigationType
	}{{*m3, sora.M3}, {*m2, sora.M2}, {*el, sora.ActiveM1}} {
		r, ok := robustnessByName(claim.flagV)
		if !ok {
			fmt.Fprintf(os.Stderr, "soracli: unknown robustness %q\n", claim.flagV)
			return 2
		}
		if r != sora.None {
			op.Mitigations = append(op.Mitigations, sora.Mitigation{Type: claim.typ, Integrity: r, Assurance: r})
		}
	}

	fmt.Printf("operation: span %.1f m, %.1f kg, %.0f m AGL, ballistic energy %.2f kJ\n",
		*span, *mtow, *alt, ke/1000)
	fmt.Printf("scenario : %s\n\n", sc)
	fmt.Print(sora.Assess(op).Report(op.Name))
	return 0
}
