package safeland

import (
	"context"
	"errors"
	"fmt"
	"image"
	"sync"
	"time"

	"safeland/internal/core"
	"safeland/internal/faults"
	"safeland/internal/imaging"
	"safeland/internal/monitor"
)

// ErrSessionLimit is returned by NewSession when the engine's admission
// limit (WithMaxSessions) is reached. The rejection is immediate — sessions
// are never queued — so the fleet layer can shed the vehicle to another
// shard or fall back to stateless Select calls.
var ErrSessionLimit = errors.New("safeland: session limit reached")

// ErrPreempted is the cause a routine session advance is cancelled with
// when a safety-class advance needs its worker replica. Match it with
// errors.Is on SessionResponse.Err; the caller retries the frame (its
// trigger has usually fired by then, promoting the retry to safety class).
var ErrPreempted = errors.New("safeland: routine selection preempted by a safety-class request")

// ErrSessionClosed is returned by Advance on a closed session.
var ErrSessionClosed = errors.New("safeland: session is closed")

// SafetyTrigger is a thread-safe latch that promotes a session to the
// safety priority class: once any goroutine fires it — a failure monitor, a
// geofence breach, the mission safety switch — every subsequent Advance on
// sessions bound to it runs in the safety class, and one in-flight routine
// advance on the engine is preempted to free a replica immediately. The
// first Trigger wins; later calls are no-ops that keep the first reason.
type SafetyTrigger struct {
	mu     sync.Mutex
	fired  bool
	reason string
	done   chan struct{}
}

// NewSafetyTrigger returns an unfired trigger.
func NewSafetyTrigger() *SafetyTrigger {
	return &SafetyTrigger{done: make(chan struct{})}
}

// Trigger latches the trigger with the given reason and reports whether
// this call fired it (false when it was already fired; the original reason
// is kept).
func (t *SafetyTrigger) Trigger(reason string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fired {
		return false
	}
	t.fired = true
	t.reason = reason
	close(t.done)
	return true
}

// Triggered reports whether the trigger has fired.
func (t *SafetyTrigger) Triggered() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired
}

// Reason returns the reason of the first Trigger call, "" while unfired.
func (t *SafetyTrigger) Reason() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reason
}

// Done returns a channel closed when the trigger fires; an in-flight
// routine advance on a bound session watches it to abort mid-trial.
func (t *SafetyTrigger) Done() <-chan struct{} { return t.done }

// DefaultDiffTile is the frame-diff granularity (pixels) sessions use when
// WithDiffTile is not given.
const DefaultDiffTile = 32

// sessionConfig collects the SessionOption values.
type sessionConfig struct {
	reuse    bool
	diffTile int
	trigger  *SafetyTrigger
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig)

// WithSessionReuse toggles temporal reuse (default on). With reuse off,
// every Advance runs the full selection from a cold frame context and is
// byte-identical to an independent Engine.Select of the same request; with
// reuse on, only changed tiles are re-primed and an unchanged confirmed
// zone is re-verified without a new candidate search.
func WithSessionReuse(on bool) SessionOption {
	return func(c *sessionConfig) { c.reuse = on }
}

// WithDiffTile sets the tile size (pixels) of the frame diff that decides
// which stem regions to re-prime between consecutive frames. Values below 1
// keep DefaultDiffTile.
func WithDiffTile(px int) SessionOption {
	return func(c *sessionConfig) {
		if px >= 1 {
			c.diffTile = px
		}
	}
}

// WithSessionTrigger binds a safety trigger to the session; see
// SafetyTrigger. One trigger may be shared by several sessions of the same
// vehicle's subsystems.
func WithSessionTrigger(t *SafetyTrigger) SessionOption {
	return func(c *sessionConfig) { c.trigger = t }
}

// Session is a per-vehicle descent stream over an Engine: a sequence of
// Advance calls over consecutive frames of one vehicle's descent, carrying
// the previous frame's primed stem forward so each frame pays only for what
// changed. A session owns a private System replica (weights shared with the
// engine's under the frozen-weights invariant, scratch state private), so
// its cached stem survives between frames without holding a pool slot; the
// replica only computes while Advance holds one of the engine's worker
// slots, so the pool still bounds total CPU. Monitor verdicts are reseeded
// per call, so session verdicts are byte-identical to the engine's
// stateless path on the same pixels.
//
// A Session is safe for concurrent use, but Advance calls serialize on the
// session — streams are per-vehicle and ordered by construction.
type Session struct {
	eng     *Engine
	vehicle string
	cfg     sessionConfig
	pipe    *core.Pipeline

	mu      sync.Mutex
	closed  bool
	fc      *monitor.FrameContext
	prevImg *imaging.Image
	prev    core.Result
	hasPrev bool

	// frameSeq numbers the stream's frames as fault-injection coordinates;
	// curFrame/curAttempt mirror the in-flight advance for the perception
	// fault hook (read under s.mu, which compute holds).
	frameSeq   int
	curFrame   int
	curAttempt int
}

// NewSession opens a descent stream for a vehicle. It is subject to
// admission control: when the engine already has its maximum number of open
// sessions (WithMaxSessions), NewSession fails immediately with
// ErrSessionLimit, and while the engine's circuit breaker is open it fails
// immediately with ErrShardUnhealthy — it never blocks — and either
// rejection is counted in EngineStats.SessionRejects. Close the session
// when the descent ends.
func (e *Engine) NewSession(vehicleID string, opts ...SessionOption) (*Session, error) {
	cfg := sessionConfig{reuse: true, diffTile: DefaultDiffTile}
	for _, o := range opts {
		o(&cfg)
	}
	if !e.health.admit() {
		e.sessionRejects.Add(1)
		return nil, fmt.Errorf("%w: shard %q refusing vehicle %q", ErrShardUnhealthy, e.name, vehicleID)
	}
	if n := e.sessions.Add(1); n > int64(e.maxSessions) {
		e.sessions.Add(-1)
		e.sessionRejects.Add(1)
		return nil, fmt.Errorf("%w: engine at %d open sessions, vehicle %q rejected", ErrSessionLimit, e.maxSessions, vehicleID)
	}
	rep, err := e.sys.Replica()
	if err != nil {
		e.sessions.Add(-1)
		return nil, fmt.Errorf("safeland: building session replica for %q: %w", vehicleID, err)
	}
	if e.samples > 0 {
		rep.Pipeline.Monitor.Samples = e.samples
	}
	return &Session{eng: e, vehicle: vehicleID, cfg: cfg, pipe: rep.Pipeline}, nil
}

// Vehicle returns the vehicle ID the session was opened for.
func (s *Session) Vehicle() string { return s.vehicle }

// Trigger returns the bound safety trigger, nil when none.
func (s *Session) Trigger() *SafetyTrigger { return s.cfg.trigger }

// Close ends the stream, releases the cached frame state and frees the
// session's admission slot. Idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.resetState()
	s.eng.sessions.Add(-1)
	return nil
}

// resetState drops the temporal state so the next Advance starts cold.
// Called with s.mu held.
func (s *Session) resetState() {
	if s.fc != nil {
		s.fc.Close()
		s.fc = nil
	}
	s.prevImg = nil
	s.prev = core.Result{}
	s.hasPrev = false
}

// SessionResponse wraps one Advance outcome with trace metadata.
type SessionResponse struct {
	// Result is the selection outcome; meaningful only when Err is nil.
	// On the temporal fast path (Reused) it re-confirms the previous zone:
	// Trials holds the single re-verification, CandidateCount is 1 and Pred
	// is nil — the candidate search was skipped, so there is no fresh
	// full-frame segmentation to report.
	Result core.Result
	// Safety is true when the advance ran in the safety priority class
	// (the bound trigger had fired when the advance started).
	Safety bool
	// Reused is true when the frame was served by the temporal fast path:
	// changed tiles re-primed, previous confirmed zone re-verified.
	Reused bool
	// Changed is the number of changed regions re-primed on this frame
	// (0 on a cold or reuse-disabled frame).
	Changed int
	// Retried counts how many extra attempts this frame took after a
	// transient fault (always 0 outside degraded mode).
	Retried int
	// Degraded is true when the frame's compute budget was exhausted and
	// Result carries the fault-tolerant fallback zone: Result.State is
	// core.Degraded and Result.Confirmed is false — a degraded frame never
	// claims a verified zone. Err is nil on a degraded response.
	Degraded bool
	// DegradedCause names the budget-exhausting fault; "" unless Degraded.
	DegradedCause string
	// Queued is how long the advance waited for a worker slot.
	Queued time.Duration
	// Elapsed is the processing time, excluding queueing.
	Elapsed time.Duration
	// Err is non-nil when the advance was cancelled, timed out while
	// queued, preempted (ErrPreempted), or the request was malformed.
	Err error
}

// Advance serves the next frame of the descent. The request is the same
// shape Select takes; the frame must keep its size across the stream for
// reuse to engage (a size change restarts the stream cold, it is not an
// error). When the bound trigger has fired, the advance runs in the safety
// class: it may preempt a routine advance to get a replica and it jumps the
// routine queue. On any error the temporal state is dropped, so the next
// Advance starts from a clean full computation.
func (s *Session) Advance(ctx context.Context, req SelectRequest) SessionResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := SessionResponse{}
	if s.closed {
		resp.Err = ErrSessionClosed
		return resp
	}
	img, mpp, err := req.frame()
	if err != nil {
		resp.Err = err
		return resp
	}
	e := s.eng
	frame := s.frameSeq
	s.frameSeq++
	s.curFrame = frame

	// Like Engine.run, the request deadline bounds queueing — and, in
	// degraded mode, the frame's whole compute budget including retries.
	waitCtx := ctx
	if !req.Deadline.IsZero() {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithDeadline(ctx, req.Deadline)
		defer cancel()
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			e.retried.Add(1)
			resp.Retried++
			if err := sleepCtx(waitCtx, e.retryDelay(s.vehicle, frame, attempt)); err != nil {
				lastErr = err
				break
			}
		}
		s.curAttempt = attempt
		err := s.advanceOnce(ctx, waitCtx, img, mpp, req, frame, attempt, &resp)
		if err == nil {
			e.health.observe(true)
			e.frames.Add(1)
			if resp.Reused {
				e.framesReused.Add(1)
			}
			s.prevImg = img
			s.prev = resp.Result
			s.hasPrev = true
			return resp
		}
		lastErr = err
		// Any error drops the temporal state, so a retry (and the next
		// frame) starts from a clean full computation.
		s.resetState()
		if attempt >= e.retryBudget() || !e.retryableFault(err) || waitCtx.Err() != nil {
			break
		}
	}
	if shardFault(lastErr, ctx) {
		e.health.observe(false)
	}
	if e.degrade && degradable(lastErr, ctx) {
		e.degraded.Add(1)
		e.frames.Add(1)
		resp.Degraded = true
		resp.DegradedCause = degradedCause(lastErr)
		resp.Result = e.ftFallback(req, img, mpp)
		resp.Reused, resp.Changed = false, 0
		resp.Err = nil
		return resp
	}
	resp.Err = lastErr
	return resp
}

// advanceOnce runs one attempt at serving the frame: blackout check, slot
// acquisition (with safety-class preemption), preemption registration,
// transient injection (first attempts only), compute. Queued/Elapsed
// accumulate across attempts on resp; Safety reflects the last attempt
// (a trigger can fire between attempts and promote the retry).
func (s *Session) advanceOnce(ctx, waitCtx context.Context, img *imaging.Image, mpp float64, req SelectRequest, frame, attempt int, resp *SessionResponse) error {
	e := s.eng
	safety := s.cfg.trigger != nil && s.cfg.trigger.Triggered()
	resp.Safety = safety

	// A blacked-out shard fails every attempt of the frame — retries
	// included — so a blackout frame resolves by degrading, not retrying.
	if err := e.blackedOut(frame); err != nil {
		return err
	}

	enqueued := time.Now()
	var slot Selector
	var err error
	if safety {
		if got, ok := e.pool.tryAcquire(); ok {
			slot = got
		} else {
			// No free replica: preempt the oldest routine advance, then
			// wait at safety priority for the first release (the preempted
			// advance aborts within one layer's work).
			e.preemptOneRoutine()
		}
	}
	if slot == nil {
		slot, err = e.pool.acquire(waitCtx, safety)
		if err != nil {
			resp.Queued += time.Since(enqueued)
			return err
		}
	}
	resp.Queued += time.Since(enqueued)
	defer e.pool.release(slot)
	if err := waitCtx.Err(); err != nil {
		return err
	}

	// In degraded mode the budget bounds the compute too; otherwise the
	// deadline keeps guarding queueing only.
	base := ctx
	if e.degrade {
		base = waitCtx
	}
	// Routine advances are preemptible: register a cancel-with-cause so a
	// safety-class advance can take the slot, and watch the session's own
	// trigger so a mid-frame activation aborts this frame too.
	cctx := base
	if !safety {
		var cancel context.CancelCauseFunc
		cctx, cancel = context.WithCancelCause(base)
		defer cancel(nil)
		id := e.registerPreemptible(cancel)
		defer e.unregisterPreemptible(id)
		if s.cfg.trigger != nil {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-s.cfg.trigger.Done():
					cancel(ErrPreempted)
				case <-stop:
				}
			}()
		}
	}

	start := time.Now()
	defer func() { resp.Elapsed += time.Since(start) }()
	if attempt == 0 {
		if err := e.injectTransient(cctx, s.vehicle, frame); err != nil {
			return err
		}
	}
	res, reused, changed, err := s.compute(cctx, img, mpp, req)
	resp.Result, resp.Reused, resp.Changed = res, reused, changed
	if err != nil && errors.Is(context.Cause(cctx), ErrPreempted) {
		err = fmt.Errorf("%w (vehicle %q)", ErrPreempted, s.vehicle)
	}
	return err
}

// stemFaultHook is the "reprime" perception chaos point: it corrupts the
// carried stem of the current frame's first attempt when the injector
// schedules StemCorrupt for this vehicle/frame. The frame context detects
// the corruption, resets cold, and surfaces the error — the bounded retry
// then recomputes the frame from scratch. Called by
// monitor.FrameContext.Advance inside compute, with s.mu held.
func (s *Session) stemFaultHook(string) error {
	e := s.eng
	if s.curAttempt == 0 && e.inj.Fire(faults.StemCorrupt, s.vehicle, s.curFrame) {
		return e.inj.Errorf(faults.StemCorrupt, s.vehicle, s.curFrame)
	}
	return nil
}

// compute runs one frame's selection. It returns the result, whether the
// temporal fast path served it, and how many changed regions were
// re-primed. Called with s.mu held and a pool slot acquired.
func (s *Session) compute(ctx context.Context, img *imaging.Image, mpp float64, req SelectRequest) (core.Result, bool, int, error) {
	zones := s.pipe.Zones
	zones.HomeX, zones.HomeY = req.HomeX, req.HomeY

	if !s.cfg.reuse {
		// Stateless path: exactly what the engine's pipeline backend runs
		// for an independent Select — the parity tests pin this.
		res, err := s.pipe.SelectWithConfigCtx(ctx, img, mpp, zones)
		return res, false, 0, err
	}

	warm := s.fc != nil && s.hasPrev && s.prevImg != nil &&
		s.prevImg.W == img.W && s.prevImg.H == img.H
	if !warm {
		if s.fc != nil {
			s.fc.Close()
		}
		s.fc = s.pipe.Monitor.NewFrameContext(img)
		s.fc.FaultHook = s.stemFaultHook
		res, err := s.pipe.SelectInFrame(ctx, s.fc, mpp, zones)
		return res, false, 0, err
	}

	changed := diffFrames(s.prevImg, img, s.cfg.diffTile)
	if err := s.fc.Advance(ctx, img, changed); err != nil {
		return core.Result{}, false, len(changed), err
	}
	if s.prev.Confirmed {
		// Re-verify the previously confirmed zone first: on a quiet frame
		// this is the whole cost — one monitored crop over a stem that only
		// re-primed the changed tiles.
		x0, y0, size := s.prev.Zone.CropRect(img.W, img.H)
		v, err := s.fc.VerifyZoneCtx(ctx, x0, y0, size, size, s.pipe.Rule)
		if err != nil {
			return core.Result{}, false, len(changed), err
		}
		if v.Confirmed {
			res := core.Result{
				Confirmed:      true,
				Zone:           s.prev.Zone,
				Trials:         []core.Trial{{Candidate: s.prev.Zone, Verdict: v}},
				CandidateCount: 1,
				State:          core.Landing,
				UsedBufferM:    s.prev.UsedBufferM,
			}
			return res, true, len(changed), nil
		}
	}
	// Previous zone disputed (or none confirmed): fall back to the full
	// selection over the advanced context — same bytes as a fresh selection
	// on this frame, the stem reuse only saves the recompute.
	res, err := s.pipe.SelectInFrame(ctx, s.fc, mpp, zones)
	return res, false, len(changed), err
}

// Run turns the session into a streaming service over its descent: it
// consumes requests from in until in closes or ctx is cancelled, Advances
// over each in arrival order (streams are per-vehicle, so ordering is the
// session's contract), and delivers every response on the returned channel,
// which closes when the stream ends. Like Engine.Serve, a response whose
// Advance completed is always delivered, even when ctx is cancelled
// concurrently — callers must drain the channel until it closes (at most
// one in-flight response remains after cancellation, so the drain is
// short). Cancelling ctx stops consumption and fails the in-flight Advance
// fast; closing in is the clean shutdown. Run does not close the session —
// the caller still owns its lifetime.
func (s *Session) Run(ctx context.Context, in <-chan SelectRequest) <-chan SessionResponse {
	out := make(chan SessionResponse)
	go func() {
		defer close(out)
		for {
			select {
			case <-ctx.Done():
				return
			case req, ok := <-in:
				if !ok {
					return
				}
				// Unconditional send: a served frame is never dropped on
				// cancellation; the loop head stops further consumption.
				out <- s.Advance(ctx, req)
			}
		}
	}()
	return out
}

// registerPreemptible enters a routine advance's cancel into the engine's
// preemption registry and returns its id.
func (e *Engine) registerPreemptible(cancel context.CancelCauseFunc) int64 {
	e.preemptMu.Lock()
	defer e.preemptMu.Unlock()
	e.preemptSeq++
	e.preemptible[e.preemptSeq] = cancel
	return e.preemptSeq
}

func (e *Engine) unregisterPreemptible(id int64) {
	e.preemptMu.Lock()
	delete(e.preemptible, id)
	e.preemptMu.Unlock()
}

// preemptOneRoutine cancels the oldest in-flight routine session advance
// with cause ErrPreempted, freeing its replica for a safety-class advance
// within one layer's work. It reports whether an advance was preempted.
func (e *Engine) preemptOneRoutine() bool {
	e.preemptMu.Lock()
	best := int64(-1)
	for id := range e.preemptible {
		if best < 0 || id < best {
			best = id
		}
	}
	var cancel context.CancelCauseFunc
	if best >= 0 {
		cancel = e.preemptible[best]
		delete(e.preemptible, best)
	}
	e.preemptMu.Unlock()
	if cancel == nil {
		return false
	}
	cancel(ErrPreempted)
	e.preempted.Add(1)
	return true
}

// diffFrames returns tile-aligned rectangles covering every pixel where
// prev and next differ (exact float32 RGB comparison). Horizontally
// adjacent changed tiles merge into one rectangle per tile row; the frames
// must have equal dimensions.
func diffFrames(prev, next *imaging.Image, tile int) []image.Rectangle {
	if tile < 1 {
		tile = 1
	}
	var out []image.Rectangle
	for y0 := 0; y0 < next.H; y0 += tile {
		y1 := y0 + tile
		if y1 > next.H {
			y1 = next.H
		}
		runStart := -1
		flush := func(end int) {
			if runStart >= 0 {
				out = append(out, image.Rect(runStart, y0, end, y1))
				runStart = -1
			}
		}
		for x0 := 0; x0 < next.W; x0 += tile {
			x1 := x0 + tile
			if x1 > next.W {
				x1 = next.W
			}
			if tileChanged(prev, next, x0, y0, x1, y1) {
				if runStart < 0 {
					runStart = x0
				}
			} else {
				flush(x0)
			}
		}
		flush(next.W)
	}
	return out
}

func tileChanged(prev, next *imaging.Image, x0, y0, x1, y1 int) bool {
	for y := y0; y < y1; y++ {
		a := prev.Pix[y*prev.W+x0 : y*prev.W+x1]
		b := next.Pix[y*next.W+x0 : y*next.W+x1]
		for i := range a {
			if a[i] != b[i] {
				return true
			}
		}
	}
	return false
}
