package safeland

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"safeland/internal/imaging"
	"safeland/internal/urban"
)

// cloneImage deep-copies a frame so descent tests can mutate it.
func cloneImage(img *imaging.Image) *imaging.Image {
	out := imaging.NewImage(img.W, img.H)
	copy(out.Pix, img.Pix)
	return out
}

// descentFrames synthesizes n consecutive frames of a descent over base:
// each frame clones its predecessor and mildly perturbs a small patch whose
// position advances with the frame index — consecutive frames differ in a
// locality-bounded region (the shape session reuse is built for) without
// the perturbation looking like an anomaly to the monitor.
func descentFrames(base *imaging.Image, n int, seed int64) []*imaging.Image {
	rng := rand.New(rand.NewSource(seed))
	clamp := func(v float32) float32 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	frames := make([]*imaging.Image, n)
	prev := base
	for k := range frames {
		f := cloneImage(prev)
		const patch = 10
		x0 := (7 + 13*k) % (f.W - patch)
		y0 := (11 + 9*k) % (f.H - patch)
		for y := y0; y < y0+patch; y++ {
			for x := x0; x < x0+patch; x++ {
				p := &f.Pix[y*f.W+x]
				p.R = clamp(p.R + (rng.Float32()-0.5)*0.06)
				p.G = clamp(p.G + (rng.Float32()-0.5)*0.06)
				p.B = clamp(p.B + (rng.Float32()-0.5)*0.06)
			}
		}
		frames[k] = f
		prev = f
	}
	return frames
}

func descentScene(seed int64) *urban.Scene {
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 128, 128
	return urban.Generate(cfg, urban.DefaultConditions(), seed)
}

// TestSessionReuseDisabledMatchesSelect pins the stateless-parity contract:
// with reuse off, an N-frame session is byte-identical to N independent
// Engine.Select calls of the same requests.
func TestSessionReuseDisabledMatchesSelect(t *testing.T) {
	sys := quickSystem(t)
	scene := descentScene(42)
	eng, err := NewEngine(WithSystem(sys), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess, err := eng.NewSession("uav-parity", WithSessionReuse(false))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	ctx := context.Background()
	for k, f := range descentFrames(scene.Image, 3, 5) {
		req := SelectRequest{Image: f, MPP: scene.MPP, HomeX: 30, HomeY: 40}
		resp := sess.Advance(ctx, req)
		if resp.Err != nil {
			t.Fatalf("frame %d: %v", k, resp.Err)
		}
		if resp.Reused {
			t.Fatalf("frame %d: reuse-disabled session served a reused frame", k)
		}
		want := eng.Select(ctx, req)
		if want.Err != nil {
			t.Fatalf("frame %d baseline: %v", k, want.Err)
		}
		if !reflect.DeepEqual(resp.Result, want.Result) {
			t.Fatalf("frame %d: session result diverged from independent Select", k)
		}
	}
	if st := eng.Stats(); st.Frames != 3 || st.FramesReused != 0 {
		t.Errorf("stats Frames=%d FramesReused=%d, want 3/0", st.Frames, st.FramesReused)
	}
}

// TestSessionReuseVerdictParity pins the temporal fast path: a reused
// frame's re-verification verdict is byte-identical to verifying the same
// zone on a completely fresh frame context, and non-reused frames stay
// byte-identical to independent selects.
func TestSessionReuseVerdictParity(t *testing.T) {
	sys := quickSystem(t)
	// Seed 44 is a scene where the quick-trained system confirms a zone, so
	// the temporal fast path has a previous confirmation to re-verify.
	scene := descentScene(44)
	eng, err := NewEngine(WithSystem(sys), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess, err := eng.NewSession("uav-reuse")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// A private replica provides the fresh-context baseline verdicts.
	ref, err := sys.Replica()
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var prevZone [3]int
	reused := 0
	for k, f := range descentFrames(scene.Image, 4, 9) {
		req := SelectRequest{Image: f, MPP: scene.MPP}
		resp := sess.Advance(ctx, req)
		if resp.Err != nil {
			t.Fatalf("frame %d: %v", k, resp.Err)
		}
		if resp.Reused {
			reused++
			if len(resp.Result.Trials) != 1 || resp.Result.CandidateCount != 1 {
				t.Fatalf("frame %d: fast path reported %d trials / %d candidates",
					k, len(resp.Result.Trials), resp.Result.CandidateCount)
			}
			x0, y0, size := resp.Result.Zone.CropRect(f.W, f.H)
			if [3]int{x0, y0, size} != prevZone {
				t.Fatalf("frame %d: fast path verified a different zone than the previous frame confirmed", k)
			}
			fc := ref.Pipeline.Monitor.NewFrameContext(f)
			want, err := fc.VerifyZoneCtx(ctx, x0, y0, size, size, ref.Pipeline.Rule)
			fc.Close()
			if err != nil {
				t.Fatalf("frame %d baseline verify: %v", k, err)
			}
			if !reflect.DeepEqual(resp.Result.Trials[0].Verdict, want) {
				t.Fatalf("frame %d: reused verdict diverged from fresh-context verification", k)
			}
		} else {
			baseline := eng.Select(ctx, req)
			if baseline.Err != nil {
				t.Fatalf("frame %d baseline: %v", k, baseline.Err)
			}
			if !reflect.DeepEqual(resp.Result, baseline.Result) {
				t.Fatalf("frame %d: full-path session result diverged from independent Select", k)
			}
		}
		if resp.Result.Confirmed {
			x0, y0, size := resp.Result.Zone.CropRect(f.W, f.H)
			prevZone = [3]int{x0, y0, size}
		}
	}
	st := eng.Stats()
	if int(st.FramesReused) != reused {
		t.Errorf("stats FramesReused=%d, responses reported %d", st.FramesReused, reused)
	}
	if reused == 0 {
		t.Error("temporal fast path never engaged; the test exercised nothing")
	}
	t.Logf("reused %d/4 frames", reused)
}

// waitForPreemptible blocks until a routine advance has registered in the
// engine's preemption registry (i.e. is mid-compute on a worker replica).
func waitForPreemptible(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		e.preemptMu.Lock()
		n := len(e.preemptible)
		e.preemptMu.Unlock()
		if n > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no routine advance registered for preemption")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSessionSafetyPreemptsRoutine pins the two priority classes: on a
// saturated pool, a safety-class advance preempts an in-flight routine
// advance mid-trial (the routine caller sees ErrPreempted) and is served on
// the freed replica.
func TestSessionSafetyPreemptsRoutine(t *testing.T) {
	sys := quickSystem(t)
	scene := descentScene(42)
	eng, err := NewEngine(WithSystem(sys), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	routine, err := eng.NewSession("uav-routine")
	if err != nil {
		t.Fatal(err)
	}
	defer routine.Close()
	trig := NewSafetyTrigger()
	urgent, err := eng.NewSession("uav-urgent", WithSessionTrigger(trig))
	if err != nil {
		t.Fatal(err)
	}
	defer urgent.Close()

	req := SelectRequest{Image: scene.Image, MPP: scene.MPP}
	done := make(chan SessionResponse, 1)
	go func() { done <- routine.Advance(context.Background(), req) }()
	waitForPreemptible(t, eng)

	trig.Trigger("motor failure")
	resp := urgent.Advance(context.Background(), req)
	if resp.Err != nil {
		t.Fatalf("safety advance failed: %v", resp.Err)
	}
	if !resp.Safety {
		t.Error("safety advance not marked Safety")
	}

	victim := <-done
	if !errors.Is(victim.Err, ErrPreempted) {
		t.Fatalf("routine advance err = %v, want ErrPreempted", victim.Err)
	}
	if st := eng.Stats(); st.Preempted != 1 {
		t.Errorf("stats Preempted = %d, want 1", st.Preempted)
	}
}

// TestSessionTriggerAbortsOwnAdvance pins the mid-trial activation path: a
// trigger firing while its own session's routine advance is in flight
// aborts that advance, and the retry runs in the safety class.
func TestSessionTriggerAbortsOwnAdvance(t *testing.T) {
	sys := quickSystem(t)
	scene := descentScene(42)
	eng, err := NewEngine(WithSystem(sys), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	trig := NewSafetyTrigger()
	sess, err := eng.NewSession("uav-own", WithSessionTrigger(trig))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	req := SelectRequest{Image: scene.Image, MPP: scene.MPP}
	done := make(chan SessionResponse, 1)
	go func() { done <- sess.Advance(context.Background(), req) }()
	waitForPreemptible(t, eng)

	if !trig.Trigger("geofence breach") {
		t.Fatal("first Trigger call reported already fired")
	}
	if trig.Trigger("other") {
		t.Error("second Trigger call claimed to fire the latch")
	}
	if got := trig.Reason(); got != "geofence breach" {
		t.Errorf("Reason = %q, want first reason", got)
	}

	aborted := <-done
	if !errors.Is(aborted.Err, ErrPreempted) {
		t.Fatalf("in-flight advance err = %v, want ErrPreempted", aborted.Err)
	}
	retry := sess.Advance(context.Background(), req)
	if retry.Err != nil {
		t.Fatalf("safety retry failed: %v", retry.Err)
	}
	if !retry.Safety {
		t.Error("retry after trigger not in safety class")
	}
}

// TestSessionAdmissionControl pins the backpressure contract: the
// admission limit rejects immediately with ErrSessionLimit, the rejection
// is counted, and closing a session frees its slot.
func TestSessionAdmissionControl(t *testing.T) {
	eng, err := NewEngine(WithSystem(stubSystem()), WithWorkers(1), WithMaxSessions(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	s1, err := eng.NewSession("v1")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := eng.NewSession("v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.NewSession("v3"); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("third session err = %v, want ErrSessionLimit", err)
	}
	st := eng.Stats()
	if st.Sessions != 2 || st.SessionRejects != 1 {
		t.Fatalf("stats Sessions=%d SessionRejects=%d, want 2/1", st.Sessions, st.SessionRejects)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	s3, err := eng.NewSession("v3")
	if err != nil {
		t.Fatalf("session after Close rejected: %v", err)
	}
	defer s3.Close()
	defer s1.Close()

	if resp := s2.Advance(context.Background(), SelectRequest{}); !errors.Is(resp.Err, ErrSessionClosed) {
		t.Errorf("Advance on closed session err = %v, want ErrSessionClosed", resp.Err)
	}
}

// TestRouterShardsByVehicle pins the shard router: vehicle→engine mapping
// is deterministic, sessions land on the mapped shard, and both shards see
// traffic from a spread of vehicle IDs.
func TestRouterShardsByVehicle(t *testing.T) {
	if _, err := NewRouter(); err == nil {
		t.Error("NewRouter() with no engines did not fail")
	}
	e1, err := NewEngine(WithSystem(stubSystem()), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(WithSystem(stubSystem()), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Shards() != 2 {
		t.Fatalf("Shards = %d, want 2", r.Shards())
	}

	hit := map[*Engine]int{}
	for i := 0; i < 16; i++ {
		id := string(rune('a'+i)) + "-uav"
		shard := r.Engine(id)
		if again := r.Engine(id); again != shard {
			t.Fatalf("vehicle %q routed to two different shards", id)
		}
		hit[shard]++
		sess, err := r.NewSession(id)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
	}
	if len(hit) != 2 {
		t.Errorf("16 vehicles all hashed to one shard; want both used")
	}
	stats := r.Stats()
	if got := int(stats[0].Sessions + stats[1].Sessions); got != 16 {
		t.Errorf("open sessions across shards = %d, want 16", got)
	}
	if int(stats[0].Sessions) != hit[e1] || int(stats[1].Sessions) != hit[e2] {
		t.Errorf("per-shard sessions (%d,%d) disagree with routing (%d,%d)",
			stats[0].Sessions, stats[1].Sessions, hit[e1], hit[e2])
	}
}
