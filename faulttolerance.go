package safeland

import (
	"context"
	"errors"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"safeland/internal/baseline"
	"safeland/internal/core"
	"safeland/internal/faults"
	"safeland/internal/imaging"
)

// ErrShardUnhealthy is returned by NewSession while the engine's circuit
// breaker is open: the shard has failed too many consecutive serves and is
// refusing new placements until it proves itself on a half-open probe. Like
// ErrSessionLimit the rejection is immediate — the fleet layer (Router)
// reacts by spilling the vehicle to a healthy shard.
var ErrShardUnhealthy = errors.New("safeland: shard circuit breaker open")

// WithFaultInjector attaches a chaos injector to the engine: the named
// injection points of the serving and perception layers (selector error,
// replica stall, stem corruption on re-prime, shard blackout) consult it
// per frame. The injector is deterministic and seed-keyed (internal/faults),
// so a chaos run against the engine is reproducible byte-for-byte. nil (the
// default) injects nothing and costs nothing.
func WithFaultInjector(inj *faults.Injector) Option {
	return func(c *engineConfig) { c.inj = inj }
}

// WithShardName names the engine as a fault-injection point and breaker
// identity — "shard0", "shard1" in a Router fleet. Shard-scoped faults
// (blackout) key on this name, so two shards under one injector fail
// independently. The default is "engine".
func WithShardName(name string) Option {
	return func(c *engineConfig) {
		if name != "" {
			c.name = name
		}
	}
}

// WithDegradedFallback toggles degraded-mode serving (default off, which
// preserves the fail-hard contract). When on:
//
//   - the request deadline (SelectRequest.Deadline) becomes a per-request
//     compute budget — it bounds the selection itself, not just queueing;
//   - transient faults (injected selector errors, replica stalls, stem
//     corruption, a preempted routine advance) get one bounded retry with
//     deterministic-jitter exponential backoff (WithRetryBackoff);
//   - on budget exhaustion the engine answers with the paper's
//     fault-tolerant baseline zone (FT-center, or flatness when the request
//     carries a Scene) instead of an error: the response is marked Degraded
//     with its cause, Result.State is core.Degraded, and Result.Confirmed
//     is always false — the monitor's refusal semantics survive the
//     fallback, a degraded zone never claims verification.
//
// Caller-initiated cancellation and malformed requests still surface as
// errors: degradation answers for the shard's failures, not the caller's.
func WithDegradedFallback(on bool) Option {
	return func(c *engineConfig) { c.degrade = on }
}

// WithRetryBackoff bounds the exponential backoff between transient-fault
// retry attempts in degraded mode: the first retry waits ~base (plus a
// deterministic jitter keyed on vehicle and frame, so a fleet's retries
// decorrelate without losing reproducibility), doubling up to max. Values
// <= 0 keep the defaults (2ms base, 50ms cap).
func WithRetryBackoff(base, max time.Duration) Option {
	return func(c *engineConfig) {
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithBreaker shapes the engine's circuit breaker: threshold consecutive
// serve failures open it (new sessions rejected with ErrShardUnhealthy),
// and after cooldown recovery observations — successful serves by sticky
// sessions, or rejected placement attempts — it half-opens for a probe
// placement whose outcome closes or re-opens it. Values below 1 keep the
// defaults (threshold DefaultBreakerThreshold, cooldown
// DefaultBreakerCooldown).
func WithBreaker(threshold, cooldown int) Option {
	return func(c *engineConfig) {
		if threshold >= 1 {
			c.breakerThreshold = threshold
		}
		if cooldown >= 1 {
			c.breakerCooldown = cooldown
		}
	}
}

// Breaker defaults: three consecutive failures open a shard, four recovery
// observations earn the half-open probe. Small numbers on purpose — a
// descent frame is ~100ms of compute, so a shard that failed three frames
// in a row should stop taking new vehicles *now*.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 4
)

// breakerState is the circuit-breaker position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the per-shard circuit breaker guarding session placement.
// It is event-driven, not clock-driven: opening takes `threshold`
// consecutive serve failures, and the open state cools down per recovery
// observation (a successful serve by a sticky session, or a rejected
// placement attempt) rather than per wall-clock second — so breaker
// trajectories in a chaos run are a pure function of the fault schedule,
// reproducible byte-for-byte. After `cooldown` observations the breaker
// half-opens: placements are admitted again as probes, the first observed
// serve outcome closing it (success) or re-opening it (failure).
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  int
	opened    *atomic.Int64 // engine's BreakerOpen counter

	state     breakerState
	consec    int
	remaining int
}

func newBreaker(threshold, cooldown int, opened *atomic.Int64) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, opened: opened}
}

// trip opens the breaker; b.mu held.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.remaining = b.cooldown
	b.consec = 0
	b.opened.Add(1)
}

// admit gates one placement attempt. While open it rejects — and counts
// the rejection toward cooldown, so a drained shard with no sticky
// sessions still heals: enough knocking earns the half-open probe.
func (b *breaker) admit() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return true
	}
	b.remaining--
	if b.remaining <= 0 {
		b.state = breakerHalfOpen
	}
	return false
}

// healthy peeks at the state without consuming a cooldown observation —
// the Router's spillover-target check.
func (b *breaker) healthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerOpen
}

// observe feeds one serve outcome.
func (b *breaker) observe(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		switch b.state {
		case breakerOpen:
			b.remaining--
			if b.remaining <= 0 {
				b.state = breakerHalfOpen
			}
		default:
			b.state = breakerClosed
			b.consec = 0
		}
		return
	}
	switch b.state {
	case breakerClosed:
		b.consec++
		if b.consec >= b.threshold {
			b.trip()
		}
	case breakerHalfOpen:
		b.trip()
	case breakerOpen:
		// Still failing: push the half-open probe back out.
		b.remaining = b.cooldown
	}
}

// Healthy reports whether the engine's circuit breaker currently admits
// new session placements (closed or half-open). The Router consults it
// when picking a spillover shard; operators can poll it as a liveness
// signal. It never mutates breaker state.
func (e *Engine) Healthy() bool { return e.health.healthy() }

// Name returns the engine's shard name (WithShardName).
func (e *Engine) Name() string { return e.name }

// retryBudget returns how many retries a request gets past its first
// attempt: the bounded single retry in degraded mode, none otherwise.
func (e *Engine) retryBudget() int {
	if e.degrade {
		return 1
	}
	return 0
}

// retryDelay computes the backoff before retry attempt (1-based) of the
// work keyed by point/frame.
func (e *Engine) retryDelay(point string, frame, attempt int) time.Duration {
	key := point + "#" + strconv.Itoa(frame)
	return faults.Backoff(e.inj.Seed(), key, attempt-1, e.backoffBase, e.backoffMax)
}

// retryableFault classifies errors a second attempt can outrun: the
// attempt-scoped injected faults, and a routine advance preempted by a
// safety-class request (the replica comes back after the safety frame).
// Shard blackouts are frame-wide — the retry would hit the same wall — and
// everything else (caller cancellation, malformed requests, budget
// exhaustion) is not a fault retries fix.
func (e *Engine) retryableFault(err error) bool {
	if fe := faults.AsInjected(err); fe != nil {
		return fe.Kind.Transient()
	}
	return errors.Is(err, ErrPreempted)
}

// shardFault classifies failures attributable to the shard itself — the
// ones the circuit breaker should count: injected chaos faults, preempted
// advances, and a blown compute budget while the caller was still waiting.
// Caller cancellation and malformed requests are the caller's, not the
// shard's.
func shardFault(err error, callerCtx context.Context) bool {
	if err == nil {
		return false
	}
	if faults.AsInjected(err) != nil || errors.Is(err, ErrPreempted) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) && callerCtx.Err() == nil
}

// degradable classifies failures the FT fallback may answer for: anything
// the shard did to the request. The caller's own cancellation and a
// session closed underneath it stay errors — degrading those would invent
// an answer nobody is waiting for.
func degradable(err error, callerCtx context.Context) bool {
	if err == nil {
		return false
	}
	if callerCtx.Err() != nil {
		return false
	}
	return !errors.Is(err, ErrSessionClosed)
}

// degradedCause renders the budget-exhausting fault for the response
// marker (SelectResponse.DegradedCause).
func degradedCause(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return "budget-exhausted"
	case errors.Is(err, ErrPreempted):
		return "preempted"
	}
	if fe := faults.AsInjected(err); fe != nil {
		return fe.Kind.String()
	}
	return err.Error()
}

// injectTransient fires the attempt-scoped chaos faults at the given
// injection point: a replica stall (optionally burning the injector's
// configured wall-clock delay — outputs are identical either way) and a
// selector error. The serving layers call it on first attempts only: the
// schedule says a transient fault occurs at this frame, and the bounded
// retry models it clearing.
func (e *Engine) injectTransient(ctx context.Context, point string, frame int) error {
	if e.inj == nil {
		return nil
	}
	if e.inj.Fire(faults.ReplicaStall, point, frame) {
		if d := e.inj.Stall(); d > 0 {
			_ = sleepCtx(ctx, d)
		}
		return e.inj.Errorf(faults.ReplicaStall, point, frame)
	}
	if e.inj.Fire(faults.SelectorError, point, frame) {
		return e.inj.Errorf(faults.SelectorError, point, frame)
	}
	return nil
}

// blackedOut reports the frame-wide shard-blackout fault, which holds
// across retries of the frame.
func (e *Engine) blackedOut(frame int) error {
	if e.inj.Fire(faults.ShardBlackout, e.name, frame) {
		return e.inj.Errorf(faults.ShardBlackout, e.name, frame)
	}
	return nil
}

// ftFallback builds the degraded-mode answer: the paper's fault-tolerant
// baseline zone, selected by pure geometry with no perception in the loop,
// so it cannot itself fail under the faults that exhausted the budget.
// With a Scene attached the flatness baseline picks the flattest window
// (SafeUAV's criterion); an image-only request gets the FT-center zone —
// terminate under the current position, the Figure 1 floor. The result is
// explicitly unverified: State core.Degraded, Confirmed false, no trials,
// no prediction.
func (e *Engine) ftFallback(req SelectRequest, img *imaging.Image, mpp float64) core.Result {
	zones := core.DefaultZoneConfig()
	if e.sys != nil && e.sys.Pipeline != nil {
		zones = e.sys.Pipeline.Zones
	}
	zonePx := int(math.Ceil(zones.ZoneSizeM / mpp))
	if zonePx < 2 {
		zonePx = 2
	}
	if req.Scene != nil {
		if z, ok := (baseline.Flatness{}).Select(req.Scene, zonePx); ok {
			return degradedResult(z.X0, z.Y0, z.Size, -z.Score)
		}
		if z, ok := (baseline.FTCenter{}).Select(req.Scene, zonePx); ok {
			return degradedResult(z.X0, z.Y0, z.Size, -z.Score)
		}
	}
	// Image-only request: the FT-center geometry applied to the frame
	// itself — terminate under the current position.
	if zonePx > img.W {
		zonePx = img.W
	}
	if zonePx > img.H {
		zonePx = img.H
	}
	return degradedResult((img.W-zonePx)/2, (img.H-zonePx)/2, zonePx, 0)
}

// degradedResult wraps a fallback zone in the degraded result shape: one
// best-effort candidate, never confirmed.
func degradedResult(x0, y0, size int, score float64) core.Result {
	return core.Result{
		Confirmed:      false,
		State:          core.Degraded,
		CandidateCount: 1,
		Zone:           core.Candidate{X0: x0, Y0: y0, SizePx: size, Score: score},
	}
}

// sleepCtx waits d, honoring ctx; a zero or negative d only polls ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
