package safeland

import (
	"fmt"
	"hash/fnv"
)

// Router shards descent sessions across several Engines by vehicle ID, so a
// fleet service scales past one replica pool: every vehicle hashes to a
// fixed shard (FNV-1a mod shard count), keeping all frames of one descent —
// and therefore the session's cached stem — on the same engine. Admission
// control stays per-shard: a saturated shard rejects with ErrSessionLimit
// even when another shard has room, which keeps placement deterministic;
// callers who want spillover handle the rejection themselves.
type Router struct {
	engines []*Engine
}

// NewRouter builds a router over the given shards; at least one engine is
// required and none may be nil. The router does not own the engines —
// closing them remains the caller's job unless Close is used.
func NewRouter(engines ...*Engine) (*Router, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("safeland: router needs at least one engine")
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("safeland: router engine %d is nil", i)
		}
	}
	return &Router{engines: append([]*Engine(nil), engines...)}, nil
}

// Shards returns the number of engines behind the router.
func (r *Router) Shards() int { return len(r.engines) }

// Engine returns the shard serving vehicleID; the mapping is stable for the
// router's lifetime.
func (r *Router) Engine(vehicleID string) *Engine {
	h := fnv.New32a()
	h.Write([]byte(vehicleID))
	return r.engines[h.Sum32()%uint32(len(r.engines))]
}

// NewSession opens a descent stream on the vehicle's shard; see
// Engine.NewSession for the admission contract.
func (r *Router) NewSession(vehicleID string, opts ...SessionOption) (*Session, error) {
	return r.Engine(vehicleID).NewSession(vehicleID, opts...)
}

// Stats returns per-shard snapshots, index-aligned with the engines the
// router was built over.
func (r *Router) Stats() []EngineStats {
	out := make([]EngineStats, len(r.engines))
	for i, e := range r.engines {
		out[i] = e.Stats()
	}
	return out
}

// Close releases every shard's parallelism reservation (Engine.Close).
func (r *Router) Close() error {
	for _, e := range r.engines {
		e.Close()
	}
	return nil
}
