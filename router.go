package safeland

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Router shards descent sessions across several Engines by vehicle ID, so a
// fleet service scales past one replica pool: every vehicle hashes to a
// fixed home shard (FNV-1a mod shard count), keeping all frames of one
// descent — and therefore the session's cached stem — on the same engine.
//
// Placement is health-aware: when the home shard rejects the vehicle —
// saturated (ErrSessionLimit) or breaker-open (ErrShardUnhealthy) — the
// router spills the session to the least-loaded healthy shard instead of
// surfacing the rejection. A spilled session is sticky for its lifetime
// (the Session binds to the engine that admitted it), so the descent's
// cached stem never migrates mid-stream; the home shard's
// EngineStats.Spilled counts the vehicles it shed. Only when every shard
// rejects does NewSession fail, with the home shard's error.
type Router struct {
	engines []*Engine
}

// NewRouter builds a router over the given shards; at least one engine is
// required and none may be nil. The router does not own the engines —
// closing them remains the caller's job unless Close is used.
func NewRouter(engines ...*Engine) (*Router, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("safeland: router needs at least one engine")
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("safeland: router engine %d is nil", i)
		}
	}
	return &Router{engines: append([]*Engine(nil), engines...)}, nil
}

// Shards returns the number of engines behind the router.
func (r *Router) Shards() int { return len(r.engines) }

// Engine returns the home shard of vehicleID; the mapping is stable for the
// router's lifetime. Spillover (NewSession) can place a vehicle's session
// elsewhere — Session.Vehicle plus the session's own engine binding track
// where it actually landed.
func (r *Router) Engine(vehicleID string) *Engine {
	h := fnv.New32a()
	h.Write([]byte(vehicleID))
	return r.engines[h.Sum32()%uint32(len(r.engines))]
}

// NewSession opens a descent stream on the vehicle's home shard, spilling
// to the least-loaded healthy shard when the home shard rejects it; see the
// Router doc for the placement contract and Engine.NewSession for the
// per-shard admission contract.
func (r *Router) NewSession(vehicleID string, opts ...SessionOption) (*Session, error) {
	home := r.Engine(vehicleID)
	sess, homeErr := home.NewSession(vehicleID, opts...)
	if homeErr == nil {
		return sess, nil
	}
	if !errors.Is(homeErr, ErrSessionLimit) && !errors.Is(homeErr, ErrShardUnhealthy) {
		return nil, homeErr
	}
	// Spillover: candidate shards ordered by open-session count (ties by
	// index, for determinism), unhealthy shards skipped without consuming
	// their breaker's cooldown observations.
	type cand struct {
		eng  *Engine
		load int64
		idx  int
	}
	cands := make([]cand, 0, len(r.engines)-1)
	for i, e := range r.engines {
		if e == home || !e.Healthy() {
			continue
		}
		cands = append(cands, cand{eng: e, load: e.sessions.Load(), idx: i})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].load != cands[b].load {
			return cands[a].load < cands[b].load
		}
		return cands[a].idx < cands[b].idx
	})
	for _, c := range cands {
		s, err := c.eng.NewSession(vehicleID, opts...)
		if err == nil {
			home.spilled.Add(1)
			return s, nil
		}
		if !errors.Is(err, ErrSessionLimit) && !errors.Is(err, ErrShardUnhealthy) {
			return nil, err
		}
	}
	// Every shard rejected: surface the home shard's rejection, which is
	// the one the vehicle's operator can reason about.
	return nil, homeErr
}

// Stats returns per-shard snapshots, index-aligned with the engines the
// router was built over.
func (r *Router) Stats() []EngineStats {
	out := make([]EngineStats, len(r.engines))
	for i, e := range r.engines {
		out[i] = e.Stats()
	}
	return out
}

// Close releases every shard's parallelism reservation (Engine.Close),
// closing all shards even when one fails and returning the per-shard
// errors joined.
func (r *Router) Close() error {
	var errs []error
	for i, e := range r.engines {
		if err := e.Close(); err != nil {
			errs = append(errs, fmt.Errorf("safeland: closing router shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
