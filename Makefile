# Developer workflow for the safeland reproduction.
#
#   make check       # tier-1 gate + race detector (shuffled) + bench smoke
#   make bench       # benchmarks; engine + fleet + hot-path numbers land in BENCH_*.json
#   make bench-smoke # one iteration of each perception benchmark (keeps the harness honest)
#   make grid        # E11 grid coverage standalone (quick scale)
#   make e12         # E12 full-frame monitoring standalone (quick scale)
#   make e13         # E13 descent-session fleet study standalone (quick scale)
#   make chaos       # E14 chaos drill standalone (quick scale)
#   make fuzz-smoke  # a few seconds of each fuzz target

GO ?= go

# The perception hot-path benchmarks: conv forward (interior fast path +
# scratch arena), conv backward, Monte-Carlo statistics (prefix reuse) and
# the full monitor verdict. One regex so bench and bench-smoke never drift.
NN_BENCH = ^(BenchmarkConvForwardSmall|BenchmarkConvForwardE8Scene|BenchmarkConvBackward|BenchmarkMCStats|BenchmarkVerifyRegion)$$

# The frame-context benchmarks: a crop verdict served from an already-primed
# frame stem, and the tiled whole-frame verdict E12's acceptance budget is
# written against — BenchmarkFullFrameVerdict's "crop-verdicts" metric
# (whole frame measured against an interleaved single-crop MCStats pass,
# so machine-load drift cancels out of the ratio) must stay < 10.
MONITOR_BENCH = ^(BenchmarkMCStats|BenchmarkCropVerdictCachedStem|BenchmarkFullFrameVerdict)$$

.PHONY: check fmt vet build test race race-experiments bench bench-smoke grid e12 e13 chaos fuzz-smoke

check: fmt vet build race bench-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The Engine serves requests concurrently over per-worker model replicas,
# the experiment fleets (E5, E7-E10) stream scenes through that pool from
# the shared scenario corpus, and the corpus itself dedups concurrent
# generation; every change to those paths must survive the race detector.
# -shuffle=on keeps test-order coupling from hiding behind fixture reuse.
# The race instrumentation slows the training fixtures by an order of
# magnitude, hence the generous timeout.
race:
	$(GO) test -race -shuffle=on -timeout 120m ./...

# Focused loop for fleet work: vet plus the quick-config experiment fleets
# (parity, cancellation, full E-suite) under the race detector, without
# paying for the whole repo's race sweep.
race-experiments:
	$(GO) vet ./internal/experiments ./internal/scenario
	$(GO) test -race -timeout 120m ./internal/experiments ./internal/scenario

# One pass over every benchmark, split so nothing runs twice: the
# paper-artifact benchmarks (BenchmarkE1..E10*) print human-readably, the
# Engine batch scaling curve (BenchmarkEngineBatch{1,4,8}Workers) lands in
# BENCH_engine.json, the descent-session fleet curve
# (BenchmarkSessionFleet{100,1000}, reuse vs full-recompute arms with
# ns/frame metrics, plus BenchmarkSessionFleetChaos — the same fleet under
# injected faults with degraded-mode serving) in BENCH_serve.json, the
# strategy-fleet curve
# (BenchmarkExperimentE8Workers{1,4,8}) in BENCH_experiments.json and the
# E11 grid-fleet curve (BenchmarkExperimentE11Workers{1,4,8}) in
# BENCH_grid.json as test2json events, so the perf trajectory is tracked
# per-PR.
bench:
	$(GO) test -bench='^BenchmarkE[0-9]' -benchtime=1x -run=^$$ .
	$(GO) test -bench=BenchmarkEngineBatch -benchtime=1x -run=^$$ -json . > BENCH_engine.json
	$(GO) test -bench=BenchmarkSessionFleet -benchtime=1x -run=^$$ -timeout 60m -json . > BENCH_serve.json
	$(GO) test -bench=BenchmarkExperimentE8 -benchtime=1x -run=^$$ -json ./internal/experiments > BENCH_experiments.json
	$(GO) test -bench=BenchmarkExperimentE11 -benchtime=1x -run=^$$ -json ./internal/experiments > BENCH_grid.json
	$(GO) test -bench='$(NN_BENCH)' -benchmem -run=^$$ -json ./internal/nn ./internal/monitor > BENCH_nn.json
	$(GO) test -bench='$(MONITOR_BENCH)' -benchmem -benchtime=10x -run=^$$ -json ./internal/monitor > BENCH_monitor.json

# One short iteration of each perception benchmark: cheap enough for every
# check run, and it keeps the bench harness itself from rotting.
bench-smoke:
	$(GO) test -bench='$(NN_BENCH)' -benchmem -benchtime=1x -run=^$$ ./internal/nn ./internal/monitor
	$(GO) test -bench='$(MONITOR_BENCH)' -benchmem -benchtime=1x -run=^$$ ./internal/monitor

# E11 grid coverage standalone: the full scenario-axes mission fleet at
# quick scale (trains the quick model, then streams all 243 scenarios).
grid:
	$(GO) run ./cmd/elbench -quick -run E11

# E12 full-frame monitoring standalone: crop-only vs whole-frame Bayesian
# verdicts over a shared per-frame stem, at quick scale.
e12:
	$(GO) run ./cmd/elbench -quick -run E12

# E13 descent-session fleet study standalone: per-frame recompute vs
# session temporal reuse over synthetic descents, at quick scale.
e13:
	$(GO) run ./cmd/elbench -quick -run E13

# E14 chaos drill standalone: the descent fleet under a published fault
# schedule — degraded-mode serving, breaker failover — at quick scale.
chaos:
	$(GO) run ./cmd/elbench -quick -run E14

# A few seconds of coverage-guided input generation per fuzz target — the
# cheap regression pass; leave the long campaigns to dedicated runs.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzZoneSelection -fuzztime=5s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzSpecKey -fuzztime=5s ./internal/scenario
	$(GO) test -run=^$$ -fuzz=FuzzAxesEnumerate -fuzztime=5s ./internal/scenario
	$(GO) test -run=^$$ -fuzz=FuzzConvForwardMatchesReference -fuzztime=5s ./internal/nn
	$(GO) test -run=^$$ -fuzz=FuzzCropStemMatchesPrefix -fuzztime=5s ./internal/nn
	$(GO) test -run=^$$ -fuzz=FuzzStemReprimeMatchesPrime -fuzztime=5s ./internal/nn
	$(GO) test -run=^$$ -fuzz=FuzzInjectorDeterminism -fuzztime=5s ./internal/faults
