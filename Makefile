# Developer workflow for the safeland reproduction.
#
#   make check   # tier-1 gate + race detector over the concurrent paths
#   make bench   # one pass over the experiment benchmarks (E1-E10 + Engine)

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The Engine serves requests concurrently over per-worker model replicas;
# every change to those paths must survive the race detector. The race
# instrumentation slows the training fixtures by an order of magnitude,
# hence the generous timeout.
race:
	$(GO) test -race -timeout 120m ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
