# Developer workflow for the safeland reproduction.
#
#   make check   # tier-1 gate + race detector over the concurrent paths
#   make bench   # experiment benchmarks; fleet numbers land in BENCH_experiments.json

GO ?= go

.PHONY: check fmt vet build test race race-experiments bench

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The Engine serves requests concurrently over per-worker model replicas,
# and the experiment fleets (E5, E7-E10) fan scenes out across that pool;
# every change to those paths must survive the race detector. The race
# instrumentation slows the training fixtures by an order of magnitude,
# hence the generous timeout.
race:
	$(GO) test -race -timeout 120m ./...

# Focused loop for fleet work: vet plus the quick-config experiment fleets
# (parity, cancellation, full E-suite) under the race detector, without
# paying for the whole repo's race sweep.
race-experiments:
	$(GO) vet ./internal/experiments
	$(GO) test -race -timeout 120m ./internal/experiments

# One pass over every benchmark; the experiment-fleet scaling curve
# (BenchmarkExperimentE8Workers{1,4,8}) is captured as test2json events in
# BENCH_experiments.json for machine consumption.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) test -bench=BenchmarkExperiment -benchtime=1x -run=^$$ -json ./internal/experiments > BENCH_experiments.json
