module safeland

go 1.24
