package safeland_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"safeland"
	"safeland/internal/faults"
	"safeland/internal/imaging"
	"safeland/internal/scenario"
	"safeland/internal/urban"
)

// serveSys trains one small shared system for the fleet benchmarks; the
// external test package cannot reach the in-package quickSystem fixture.
var serveSys struct {
	sync.Once
	sys *safeland.System
}

func serveSystem() *safeland.System {
	serveSys.Do(func() {
		serveSys.sys = safeland.NewSystem(safeland.Options{
			Seed:        7,
			TrainScenes: 2,
			TrainSteps:  100,
			SceneSize:   96,
			MCSamples:   3,
		})
	})
	return serveSys.sys
}

// sessionFleetStreams builds the per-vehicle descent frame streams the
// fleet benchmarks fly: a probe pass keeps corpus scenes the model
// actually confirms on (deterministic: same model, same scenes, every
// run), then each vehicle gets a seeded descent over one of them.
func sessionFleetStreams(b *testing.B, vehicles, framesPerVehicle int) ([][]*imaging.Image, []float64) {
	b.Helper()
	sys := serveSystem()
	corpus := scenario.NewCorpus()
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 96, 96
	const scenes = 8

	// A descent session stream models the continuous-descent loop, which
	// only starts once a zone is confirmed — so the fleet flies over scenes
	// the model actually confirms on.
	probe, err := safeland.NewEngine(safeland.WithSystem(sys), safeland.WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	var bases []*urban.Scene
	for _, sp := range scenario.Set(cfg, urban.DefaultConditions(), 32, 4200) {
		if len(bases) == scenes {
			break
		}
		s := corpus.Scene(sp)
		resp := probe.Select(context.Background(), safeland.SelectRequest{Scene: s})
		if resp.Err != nil {
			b.Fatal(resp.Err)
		}
		if resp.Result.Confirmed {
			bases = append(bases, s)
		}
	}
	probe.Close()
	if len(bases) == 0 {
		b.Fatal("no probe scene confirmed a zone; the fleet would never exercise reuse")
	}

	streams := make([][]*imaging.Image, vehicles)
	mpps := make([]float64, vehicles)
	for v := range streams {
		base := bases[v%len(bases)]
		streams[v] = scenario.DescentFrames(base.Image, scenario.Descent{
			Frames: framesPerVehicle,
			Seed:   int64(1000 + v),
		})
		mpps[v] = base.MPP
	}
	return streams, mpps
}

// benchmarkSessionFleet serves a synthetic fleet of staggered descents —
// `vehicles` sessions sharded over a two-engine router, each advancing a
// deterministic per-vehicle frame stream over a corpus scene, frames
// interleaved round-robin across the fleet so every session's temporal
// state survives arbitrary interleaving. The reuse arm carries the frame
// stem across frames; the full arm recomputes every frame (reuse
// disabled). The headline metric is ns/frame; make bench lands both arms
// in BENCH_serve.json.
func benchmarkSessionFleet(b *testing.B, vehicles int) {
	sys := serveSystem()
	const framesPerVehicle = 3
	streams, mpps := sessionFleetStreams(b, vehicles, framesPerVehicle)

	for _, arm := range []struct {
		name  string
		reuse bool
	}{{"reuse", true}, {"full", false}} {
		b.Run(arm.name, func(b *testing.B) {
			ctx := context.Background()
			frames := 0
			reused := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				newShard := func() *safeland.Engine {
					e, err := safeland.NewEngine(
						safeland.WithSystem(sys),
						safeland.WithWorkers(1),
						safeland.WithMaxSessions(vehicles),
					)
					if err != nil {
						b.Fatal(err)
					}
					return e
				}
				shard0, shard1 := newShard(), newShard()
				router, err := safeland.NewRouter(shard0, shard1)
				if err != nil {
					b.Fatal(err)
				}
				sessions := make([]*safeland.Session, vehicles)
				for v := range sessions {
					sessions[v], err = router.NewSession(
						fmt.Sprintf("uav-%04d", v),
						safeland.WithSessionReuse(arm.reuse),
					)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for k := 0; k < framesPerVehicle; k++ {
					for v, sess := range sessions {
						resp := sess.Advance(ctx, safeland.SelectRequest{
							Image: streams[v][k], MPP: mpps[v],
						})
						if resp.Err != nil {
							b.Fatalf("vehicle %d frame %d: %v", v, k, resp.Err)
						}
						frames++
						if resp.Reused {
							reused++
						}
					}
				}
				b.StopTimer()
				for _, sess := range sessions {
					sess.Close()
				}
				router.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(frames), "ns/frame")
			b.ReportMetric(100*float64(reused)/float64(frames), "reused-%")
		})
	}
}

func BenchmarkSessionFleet100(b *testing.B)  { benchmarkSessionFleet(b, 100) }
func BenchmarkSessionFleet1000(b *testing.B) { benchmarkSessionFleet(b, 1000) }

// BenchmarkSessionFleetChaos flies the 100-vehicle fleet of the reuse arm
// under a deterministic fault injector — transient selector errors and
// stem corruption at the vehicle points, shard0 blacked out for frame 1 —
// with degraded-mode serving on, measuring what the fault-tolerance
// machinery costs per frame next to the clean arms in BENCH_serve.json.
// The serving contract is enforced, not just measured: a hard-failed
// frame fails the benchmark, and every frame must resolve as served,
// retried, or explicitly Degraded.
func BenchmarkSessionFleetChaos(b *testing.B) {
	sys := serveSystem()
	const vehicles = 100
	const framesPerVehicle = 3
	streams, mpps := sessionFleetStreams(b, vehicles, framesPerVehicle)
	inj := faults.NewInjector(99, faults.Rates{
		SelectorError: 0.05,
		StemCorrupt:   0.05,
	}).ScheduleFault(faults.ShardBlackout, "shard0", 1)

	ctx := context.Background()
	var frames, degraded, retried int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		newShard := func(name string) *safeland.Engine {
			e, err := safeland.NewEngine(
				safeland.WithSystem(sys),
				safeland.WithWorkers(1),
				safeland.WithMaxSessions(vehicles),
				safeland.WithShardName(name),
				safeland.WithFaultInjector(inj),
				safeland.WithDegradedFallback(true),
				safeland.WithRetryBackoff(time.Microsecond, 10*time.Microsecond),
			)
			if err != nil {
				b.Fatal(err)
			}
			return e
		}
		shard0, shard1 := newShard("shard0"), newShard("shard1")
		router, err := safeland.NewRouter(shard0, shard1)
		if err != nil {
			b.Fatal(err)
		}
		sessions := make([]*safeland.Session, vehicles)
		for v := range sessions {
			sessions[v], err = router.NewSession(fmt.Sprintf("uav-%04d", v))
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for k := 0; k < framesPerVehicle; k++ {
			for v, sess := range sessions {
				resp := sess.Advance(ctx, safeland.SelectRequest{
					Image: streams[v][k], MPP: mpps[v],
				})
				if resp.Err != nil {
					b.Fatalf("vehicle %d frame %d hard-failed under chaos: %v", v, k, resp.Err)
				}
				frames++
				retried += resp.Retried
				if resp.Degraded {
					if resp.Result.Confirmed {
						b.Fatalf("vehicle %d frame %d: degraded verdict claims a confirmed zone", v, k)
					}
					degraded++
				}
			}
		}
		b.StopTimer()
		for _, sess := range sessions {
			sess.Close()
		}
		router.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(frames), "ns/frame")
	b.ReportMetric(100*float64(degraded)/float64(frames), "degraded-%")
	b.ReportMetric(100*float64(retried)/float64(frames), "retried-%")
}
