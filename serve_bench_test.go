package safeland_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"safeland"
	"safeland/internal/imaging"
	"safeland/internal/scenario"
	"safeland/internal/urban"
)

// serveSys trains one small shared system for the fleet benchmarks; the
// external test package cannot reach the in-package quickSystem fixture.
var serveSys struct {
	sync.Once
	sys *safeland.System
}

func serveSystem() *safeland.System {
	serveSys.Do(func() {
		serveSys.sys = safeland.NewSystem(safeland.Options{
			Seed:        7,
			TrainScenes: 2,
			TrainSteps:  100,
			SceneSize:   96,
			MCSamples:   3,
		})
	})
	return serveSys.sys
}

// benchmarkSessionFleet serves a synthetic fleet of staggered descents —
// `vehicles` sessions sharded over a two-engine router, each advancing a
// deterministic per-vehicle frame stream over a corpus scene, frames
// interleaved round-robin across the fleet so every session's temporal
// state survives arbitrary interleaving. The reuse arm carries the frame
// stem across frames; the full arm recomputes every frame (reuse
// disabled). The headline metric is ns/frame; make bench lands both arms
// in BENCH_serve.json.
func benchmarkSessionFleet(b *testing.B, vehicles int) {
	sys := serveSystem()
	corpus := scenario.NewCorpus()
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 96, 96
	const scenes = 8
	const framesPerVehicle = 3

	// A descent session stream models the continuous-descent loop, which
	// only starts once a zone is confirmed — so the fleet flies over scenes
	// the model actually confirms on. Probe a candidate pool and keep the
	// confirming ones (deterministic: same model, same scenes, every run).
	probe, err := safeland.NewEngine(safeland.WithSystem(sys), safeland.WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	var bases []*urban.Scene
	for _, sp := range scenario.Set(cfg, urban.DefaultConditions(), 32, 4200) {
		if len(bases) == scenes {
			break
		}
		s := corpus.Scene(sp)
		resp := probe.Select(context.Background(), safeland.SelectRequest{Scene: s})
		if resp.Err != nil {
			b.Fatal(resp.Err)
		}
		if resp.Result.Confirmed {
			bases = append(bases, s)
		}
	}
	probe.Close()
	if len(bases) == 0 {
		b.Fatal("no probe scene confirmed a zone; the fleet would never exercise reuse")
	}

	streams := make([][]*imaging.Image, vehicles)
	mpps := make([]float64, vehicles)
	for v := range streams {
		base := bases[v%len(bases)]
		streams[v] = scenario.DescentFrames(base.Image, scenario.Descent{
			Frames: framesPerVehicle,
			Seed:   int64(1000 + v),
		})
		mpps[v] = base.MPP
	}

	for _, arm := range []struct {
		name  string
		reuse bool
	}{{"reuse", true}, {"full", false}} {
		b.Run(arm.name, func(b *testing.B) {
			ctx := context.Background()
			frames := 0
			reused := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				newShard := func() *safeland.Engine {
					e, err := safeland.NewEngine(
						safeland.WithSystem(sys),
						safeland.WithWorkers(1),
						safeland.WithMaxSessions(vehicles),
					)
					if err != nil {
						b.Fatal(err)
					}
					return e
				}
				shard0, shard1 := newShard(), newShard()
				router, err := safeland.NewRouter(shard0, shard1)
				if err != nil {
					b.Fatal(err)
				}
				sessions := make([]*safeland.Session, vehicles)
				for v := range sessions {
					sessions[v], err = router.NewSession(
						fmt.Sprintf("uav-%04d", v),
						safeland.WithSessionReuse(arm.reuse),
					)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for k := 0; k < framesPerVehicle; k++ {
					for v, sess := range sessions {
						resp := sess.Advance(ctx, safeland.SelectRequest{
							Image: streams[v][k], MPP: mpps[v],
						})
						if resp.Err != nil {
							b.Fatalf("vehicle %d frame %d: %v", v, k, resp.Err)
						}
						frames++
						if resp.Reused {
							reused++
						}
					}
				}
				b.StopTimer()
				for _, sess := range sessions {
					sess.Close()
				}
				router.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(frames), "ns/frame")
			b.ReportMetric(100*float64(reused)/float64(frames), "reused-%")
		})
	}
}

func BenchmarkSessionFleet100(b *testing.B)  { benchmarkSessionFleet(b, 100) }
func BenchmarkSessionFleet1000(b *testing.B) { benchmarkSessionFleet(b, 1000) }
