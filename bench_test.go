package safeland

// One benchmark per reproduced paper artifact (see DESIGN.md §4): the
// E-numbers match the experiment registry in internal/experiments, so
// `go test -bench=E9 .` regenerates the timing argument behind the paper's
// Section V-B, etc. Model-dependent benchmarks share one quick-trained
// system (training time is excluded via b.ResetTimer-free lazy setup at
// first use; the fixture cost is paid once per `go test -bench` run).

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"safeland/internal/baseline"
	"safeland/internal/core"
	"safeland/internal/hazard"
	"safeland/internal/imaging"
	"safeland/internal/monitor"
	"safeland/internal/riskmap"
	"safeland/internal/sora"
	"safeland/internal/uav"
	"safeland/internal/urban"
)

var benchFix struct {
	sync.Once
	sys   *System
	scene *urban.Scene
	ood   *urban.Scene
}

func benchSystem(b *testing.B) (*System, *urban.Scene, *urban.Scene) {
	b.Helper()
	benchFix.Do(func() {
		benchFix.sys = NewSystem(Options{
			Seed: 11, TrainScenes: 3, TrainSteps: 200, SceneSize: 128, MCSamples: 10,
		})
		cfg := urban.DefaultConfig()
		cfg.W, cfg.H = 192, 192
		benchFix.scene = urban.Generate(cfg, urban.DefaultConditions(), 500)
		benchFix.ood = urban.Generate(cfg, urban.SunsetConditions(), 501)
	})
	return benchFix.sys, benchFix.scene, benchFix.ood
}

// BenchmarkE1SeverityModel measures the casualty assessment behind Table I.
func BenchmarkE1SeverityModel(b *testing.B) {
	im := hazard.Impact{
		Surface: imaging.Road, KineticEnergyJ: 8230, SpanM: 1,
		PeoplePerM2: 0.015, TrafficFactor: 1.2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hazard.Assess(im)
	}
}

// BenchmarkE2ImpactMonteCarlo measures Table II's Monte-Carlo impact batch.
func BenchmarkE2ImpactMonteCarlo(b *testing.B) {
	_, scene, _ := benchSystem(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 100; k++ {
			x, y := rng.Intn(scene.Labels.W), rng.Intn(scene.Labels.H)
			c := scene.Labels.At(x, y)
			hazard.Assess(hazard.Impact{
				Surface: c, KineticEnergyJ: 8230, SpanM: 1,
				PeoplePerM2:   urban.ClassDensity(c, 18),
				TrafficFactor: urban.TrafficFactor(18),
			})
		}
	}
}

// BenchmarkE3SORA measures the full SORA assessment chain of Section III-D.
func BenchmarkE3SORA(b *testing.B) {
	op := Operation(uav.MediDelivery())
	op.Mitigations = []sora.Mitigation{
		{Type: sora.M3, Integrity: sora.Medium, Assurance: sora.Medium},
		{Type: sora.ActiveM1, Integrity: sora.Medium, Assurance: sora.Medium},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sora.Assess(op)
	}
}

// BenchmarkE4ELAssessment measures the Table III/IV evidence evaluation.
func BenchmarkE4ELAssessment(b *testing.B) {
	claims := core.Claims{InContextTesting: true, OODValidation: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.MitigationClaim(claims)
	}
}

// BenchmarkE5SafetySwitch measures a full failure-injected mission (Figure
// 1 loop) without the perception stack.
func BenchmarkE5SafetySwitch(b *testing.B) {
	_, scene, _ := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &uav.Mission{
			Spec:      uav.MediDelivery(),
			Scene:     scene,
			Waypoints: [][2]float64{{5, 5}, {90, 90}},
			Base:      [2]float64{5, 5},
			Failures:  []uav.TimedFailure{{AtS: 3, Kind: uav.EngineFailure}},
			Hour:      18,
		}
		m.Run()
	}
}

// BenchmarkE6SceneGen measures procedural scene generation (Figure 3 data).
func BenchmarkE6SceneGen(b *testing.B) {
	cfg := urban.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		urban.Generate(cfg, urban.DefaultConditions(), int64(i))
	}
}

// BenchmarkE7SegmentForward measures one deterministic segmentation pass.
func BenchmarkE7SegmentForward(b *testing.B) {
	sys, scene, _ := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Pipeline.Model.Predict(scene.Image)
	}
}

// BenchmarkE7MonitorVerifyZone measures Bayesian verification of one
// landing-zone crop (the Figure 2 monitor path).
func BenchmarkE7MonitorVerifyZone(b *testing.B) {
	sys, scene, _ := benchSystem(b)
	sub := scene.Image.Crop(0, 0, 24, 24)
	rule := monitor.DefaultRule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Pipeline.Monitor.VerifyRegion(sub, rule)
	}
}

// BenchmarkE8 selectors: one zone pick per iteration for each strategy.
func BenchmarkE8SelectorCanny(b *testing.B) {
	_, scene, _ := benchSystem(b)
	sel := baseline.NewCanny()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Select(scene, 24)
	}
}

// BenchmarkE8SelectorFlatness measures the depth-flatness baseline.
func BenchmarkE8SelectorFlatness(b *testing.B) {
	_, scene, _ := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Flatness{}.Select(scene, 24)
	}
}

// BenchmarkE8SelectorStaticMap measures the GIS risk-map baseline.
func BenchmarkE8SelectorStaticMap(b *testing.B) {
	_, scene, _ := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		risk := riskmap.BuildStatic(scene.Layout, scene.Labels.W, scene.Labels.H,
			scene.MPP, riskmap.DefaultStaticConfig())
		riskmap.SelectZone(risk, 24)
	}
}

// BenchmarkE8SelectorEL measures the full monitored EL plan.
func BenchmarkE8SelectorEL(b *testing.B) {
	sys, scene, _ := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Pipeline.PlanLanding(scene, scene.Layout.WorldW/2, scene.Layout.WorldH/2)
	}
}

// BenchmarkE9MonitorSubImage and BenchmarkE9MonitorFullFrame regenerate the
// Section V-B timing argument: the full frame is the paper's 3840×2160
// scaled to 384×216; the sub-image keeps the paper's 1024/3840 linear
// fraction (102→102 px, rounded even). Expected time ratio ≈ pixel ratio
// ≈ 7.9×.
func BenchmarkE9MonitorSubImage(b *testing.B) {
	sys, _, _ := benchSystem(b)
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 384, 216
	frame := urban.Generate(cfg, urban.DefaultConditions(), 900)
	sub := frame.Image.Crop(0, 0, 102, 102)
	rule := monitor.DefaultRule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Pipeline.Monitor.VerifyRegion(sub, rule)
	}
}

// BenchmarkE9MonitorFullFrame is E9's full-frame counterpart.
func BenchmarkE9MonitorFullFrame(b *testing.B) {
	sys, _, _ := benchSystem(b)
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 384, 216
	frame := urban.Generate(cfg, urban.DefaultConditions(), 900)
	rule := monitor.DefaultRule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Pipeline.Monitor.VerifyRegion(frame.Image, rule)
	}
}

// benchmarkEngineBatch measures Engine.SelectBatch over 8 synthetic
// emergency scenes at the given worker-pool size, recording the parallel
// throughput trajectory of the request/response API next to the
// single-call E7–E9 numbers.
func benchmarkEngineBatch(b *testing.B, workers int) {
	sys, _, _ := benchSystem(b)
	eng, err := NewEngine(WithSystem(sys), WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	cfg := urban.DefaultConfig()
	cfg.W, cfg.H = 192, 192
	reqs := make([]SelectRequest, 8)
	for i := range reqs {
		scene := urban.Generate(cfg, urban.DefaultConditions(), 600+int64(i))
		reqs[i] = SelectRequest{Image: scene.Image, MPP: scene.MPP}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, resp := range eng.SelectBatch(ctx, reqs) {
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
		}
	}
}

// BenchmarkEngineBatch1Worker is the sequential floor of the batch path.
func BenchmarkEngineBatch1Worker(b *testing.B) { benchmarkEngineBatch(b, 1) }

// BenchmarkEngineBatch4Workers is the default-scale worker pool.
func BenchmarkEngineBatch4Workers(b *testing.B) { benchmarkEngineBatch(b, 4) }

// BenchmarkEngineBatch8Workers oversubscribes most CPUs; it bounds the
// scaling curve where the internally-parallel forward passes start to
// contend.
func BenchmarkEngineBatch8Workers(b *testing.B) { benchmarkEngineBatch(b, 8) }

// BenchmarkE10TauSweep measures the monitor ROC sweep on one OOD scene.
func BenchmarkE10TauSweep(b *testing.B) {
	sys, _, ood := benchSystem(b)
	taus := []float32{0.05, 0.125, 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		monitor.SweepTau(sys.Pipeline.Monitor, []*urban.Scene{ood}, taus, 3)
	}
}
